// Policy comparison: the §3.2 shoot-out on a single mixed workload. Shows
// why coordination matters: the single-knob policies leave system energy on
// the table, Uncoordinated blows through the performance bound, and
// Semi-coordinated oscillates into local minima.
package main

import (
	"fmt"
	"log"

	"coscale"
)

func main() {
	const workload = "MIX2" // milc, gobmk, facerec, perlbmk — phase changes included

	fmt.Printf("policy comparison on %s (10%% bound, 100M instructions/app)\n\n", workload)
	fmt.Printf("%-18s %10s %10s %10s %12s\n", "policy", "full", "memory", "CPU", "worst-slowdn")

	for _, pol := range []string{
		coscale.PolicyMemScale,
		coscale.PolicyCPUOnly,
		coscale.PolicyUncoordinated,
		coscale.PolicySemi,
		coscale.PolicyCoScale,
		coscale.PolicyOffline,
	} {
		cmp, err := coscale.Compare(coscale.Config{Workload: workload, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if cmp.WorstDegradation() > 0.10 {
			marker = "  <-- bound violated"
		}
		fmt.Printf("%-18s %9.1f%% %9.1f%% %9.1f%% %11.1f%%%s\n",
			pol, cmp.FullSavings()*100, cmp.MemSavings()*100, cmp.CPUSavings()*100,
			cmp.WorstDegradation()*100, marker)
	}
}
