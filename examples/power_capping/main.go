// Power capping: the §2.3 extension. Instead of "save energy within an SLO",
// run "stay under a watt budget while losing as little performance as
// possible" — the rack-level problem when a branch circuit or cooling zone
// is oversubscribed. Sweeps the cap from generous to harsh and reports what
// each budget costs in throughput.
package main

import (
	"fmt"
	"log"

	"coscale"
)

func main() {
	const workload = "MID1"

	base, err := coscale.Run(coscale.Config{Workload: workload, Policy: coscale.PolicyBaseline})
	if err != nil {
		log.Fatal(err)
	}
	basePower := base.Energy.Total() / base.WallTime
	fmt.Printf("%s uncapped: %.0f W average, %.3f s\n\n", workload, basePower, base.WallTime)
	fmt.Printf("%-12s %12s %12s %12s\n", "cap", "avg power", "slowdown", "within cap")

	for _, frac := range []float64{0.95, 0.85, 0.75, 0.65} {
		capW := basePower * frac
		res, err := coscale.Run(coscale.Config{
			Workload:      workload,
			Policy:        coscale.PolicyPowerCap,
			PowerCapWatts: capW,
		})
		if err != nil {
			log.Fatal(err)
		}
		avg := res.Energy.Total() / res.WallTime
		fmt.Printf("%4.0f%% (%3.0fW) %10.0f W %11.1f%% %12v\n",
			frac*100, capW, avg, (res.WallTime/base.WallTime-1)*100, avg <= capW*1.02)
	}
	fmt.Println("\nThe controller sheds the cheapest watts first (the same marginal-utility")
	fmt.Println("walk CoScale uses), so harsh caps cost far less performance than naive")
	fmt.Println("uniform frequency reduction would.")
}
