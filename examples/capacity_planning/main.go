// Capacity planning: using the library as an operator would — how much
// cluster energy does coordinated DVFS buy at different SLO budgets? For a
// fleet running a balanced (MID-class) mix, sweep the allowed slowdown and
// report fleet-level savings, the trade the paper's Figure 10 quantifies.
package main

import (
	"fmt"
	"log"

	"coscale"
)

const (
	fleetServers = 2000
	serverPeakW  = 415.0 // calibrated full-system peak of the modelled server
	hoursPerYear = 8760.0
)

func main() {
	fmt.Printf("fleet: %d servers, ~%.0f W each at peak\n\n", fleetServers, serverPeakW)
	fmt.Printf("%-10s %12s %14s %16s\n", "SLO bound", "savings", "worst slowdn", "fleet MWh/year")

	for _, bound := range []float64{0.01, 0.05, 0.10, 0.15, 0.20} {
		var savings, worst float64
		mixes := []string{"MID1", "MID2", "MID3", "MID4"}
		for _, mix := range mixes {
			cmp, err := coscale.Compare(coscale.Config{
				Workload:         mix,
				Policy:           coscale.PolicyCoScale,
				PerformanceBound: bound,
			})
			if err != nil {
				log.Fatal(err)
			}
			savings += cmp.FullSavings() / float64(len(mixes))
			if w := cmp.WorstDegradation(); w > worst {
				worst = w
			}
		}
		// Fleet-level annualized energy, assuming the MID mix is
		// representative of steady-state load.
		mwh := savings * serverPeakW * float64(fleetServers) * hoursPerYear / 1e6 * 0.8 // ~80% avg utilization of peak
		fmt.Printf("%9.0f%% %11.1f%% %13.2f%% %16.0f\n", bound*100, savings*100, worst*100, mwh)
	}
	fmt.Println("\nEvery bound holds: CoScale converts exactly the slack you grant into energy.")
}
