// Quickstart: run CoScale on one memory-intensive workload and compare it
// against the no-DVFS baseline.
package main

import (
	"fmt"
	"log"

	"coscale"
)

func main() {
	cmp, err := coscale.Compare(coscale.Config{
		Workload: "MEM1",                // swim, applu, galgel, equake (x4 each)
		Policy:   coscale.PolicyCoScale, // coordinated CPU + memory DVFS
		// Everything else defaults to the paper's setup: 16 cores at
		// 2.2-4.0 GHz, DDR3 bus at 200-800 MHz, 10% performance bound,
		// 5 ms epochs, 100M instructions per application.
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s under %s\n", cmp.Run.Mix, cmp.Run.Policy)
	fmt.Printf("  baseline: %.3f s, %.0f J\n", cmp.Base.WallTime, cmp.Base.Energy.Total())
	fmt.Printf("  coscale : %.3f s, %.0f J\n", cmp.Run.WallTime, cmp.Run.Energy.Total())
	fmt.Printf("  full-system energy savings: %.1f%%\n", cmp.FullSavings()*100)
	fmt.Printf("  CPU savings %.1f%%, memory savings %.1f%%\n",
		cmp.CPUSavings()*100, cmp.MemSavings()*100)
	fmt.Printf("  worst program slowdown: %.1f%% (bound 10%%)\n", cmp.WorstDegradation()*100)
}
