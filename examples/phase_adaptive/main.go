// Phase adaptation: the Figure 7 study as a library client. milc (in MIX2)
// moves through three phases — light memory traffic, a transition, then
// strongly memory-bound. CoScale tracks the phase changes by re-balancing
// core versus memory frequency every 5 ms epoch; this example renders the
// timeline as ASCII sparklines.
package main

import (
	"fmt"
	"log"
	"strings"

	"coscale"
)

func main() {
	res, err := coscale.Run(coscale.Config{
		Workload:       "MIX2",
		Policy:         coscale.PolicyCoScale,
		RecordTimeline: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CoScale on MIX2: %d epochs\n\n", res.Epochs)
	fmt.Println("epoch | memory bus            | milc core (core 0)")
	for _, rec := range res.Timeline {
		memFrac := (rec.MemHz/1e6 - 206) / (800 - 206)
		coreFrac := (rec.CoreHz[0]/1e9 - 2.2) / (4.0 - 2.2)
		fmt.Printf("%5d | %-21s | %-21s\n",
			rec.Index+1,
			bar(memFrac, rec.MemHz/1e6, "MHz"),
			bar(coreFrac, rec.CoreHz[0]/1e9, "GHz"))
	}
	fmt.Println("\nmilc's late memory-bound phase pulls the bus back up while its core scales down.")
}

func bar(frac, value float64, unit string) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*12 + 0.5)
	format := "%s%s %4.0f%s"
	if unit == "GHz" {
		format = "%s%s %4.1f%s"
	}
	return fmt.Sprintf(format, strings.Repeat("#", n), strings.Repeat(".", 12-n), value, unit)
}
