// Package coscale is a full reproduction of "CoScale: Coordinating CPU and
// Memory System DVFS in Server Systems" (Deng, Meisner, Bhattacharjee,
// Wenisch, Bianchini — MICRO 2012): the first controller to coordinate
// per-core and memory-subsystem dynamic voltage/frequency scaling under a
// per-program performance bound.
//
// The package exposes a façade over the complete simulation stack:
//
//   - a trace-driven 16-core server model with a shared LLC and a DDR3
//     memory subsystem (4 channels, frequency-scalable 200-800 MHz),
//   - calibrated CPU and memory power models (60/30/10 CPU:Mem:Rest at peak),
//   - the CoScale controller (greedy gradient-descent over per-core and
//     memory frequencies, Figures 2-3 of the paper), and
//   - the five comparison policies of §3.2 (MemScale, CPUOnly,
//     Uncoordinated, Semi-coordinated, Offline).
//
// Quick start:
//
//	res, err := coscale.Run(coscale.Config{Workload: "MEM1", Policy: coscale.PolicyCoScale})
//	if err != nil { ... }
//	fmt.Printf("energy: %.1f J over %.3f s\n", res.Energy.Total(), res.WallTime)
//
// To compare against the no-DVFS baseline in one call:
//
//	cmp, err := coscale.Compare(coscale.Config{Workload: "MEM1", Policy: coscale.PolicyCoScale})
//	fmt.Printf("savings %.1f%%, worst slowdown %.1f%%\n",
//	        cmp.FullSavings()*100, cmp.WorstDegradation()*100)
//
// The experiment harnesses that regenerate every table and figure of the
// paper's evaluation live in internal/experiments and are driven by the
// cmd/coscale-experiments binary and the repository-root benchmarks.
package coscale

import (
	"fmt"
	"time"

	"coscale/internal/core"
	"coscale/internal/experiments"
	"coscale/internal/freq"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// Policy names accepted by Config.Policy.
const (
	PolicyBaseline      = "Baseline"      // no energy management (maximum frequencies)
	PolicyCoScale       = "CoScale"       // the paper's coordinated controller
	PolicyMemScale      = "MemScale"      // memory-subsystem DVFS only
	PolicyCPUOnly       = "CPUOnly"       // per-core DVFS only
	PolicyUncoordinated = "Uncoordinated" // independent CPU and memory managers
	PolicySemi          = "Semi-coordinated"
	PolicyOffline       = "Offline" // idealized oracle-fed upper bound
	// PolicyPowerCap is the §2.3 extension: maximize performance under a
	// full-system power budget (set Config.PowerCapWatts).
	PolicyPowerCap = "CoScale-PowerCap"
)

// Workloads returns the names of the 16 Table 1 workload mixes, in the
// paper's presentation order (MEM, MID, ILP, MIX).
func Workloads() []string { return workload.Names() }

// Config configures a simulation run. Zero values select the paper's
// defaults (Table 2 and §4.1).
type Config struct {
	// Workload names a Table 1 mix, e.g. "MEM1", "MIX3".
	Workload string
	// Policy selects the controller; see the Policy* constants.
	// Empty selects PolicyCoScale.
	Policy string

	// PerformanceBound is the maximum allowed per-program slowdown
	// (default 0.10 = 10%).
	PerformanceBound float64
	// EpochLength is the control period (default 5 ms).
	EpochLength time.Duration
	// ProfileLength is the counter-profiling window (default 300 µs).
	ProfileLength time.Duration
	// InstructionBudget is per-application work (default 100M, the
	// paper's SimPoint length). Reduce it for faster runs.
	InstructionBudget uint64

	// CoreFrequencySteps / MemFrequencySteps resize the DVFS ladders
	// (default 10 each; the Figure 15 study uses 4 and 7).
	CoreFrequencySteps int
	MemFrequencySteps  int
	// HalfVoltageRange confines core voltage to 0.95-1.2 V (Figure 14).
	HalfVoltageRange bool

	// Prefetch enables the next-line prefetcher (Figure 16).
	Prefetch bool
	// OutOfOrder emulates a 128-instruction MLP window (Figures 17-18).
	OutOfOrder bool

	// RecordTimeline retains per-epoch frequency records (Figure 7).
	RecordTimeline bool

	// PowerCapWatts is the full-system budget for PolicyPowerCap.
	PowerCapWatts float64

	// MigrateEvery rotates software threads across cores every N epochs
	// (0 = pinned); per-thread slack follows each thread (§3.3).
	MigrateEvery int
}

// Result re-exports the simulator result type.
type Result = sim.Result

// Comparison pairs a policy run with its no-DVFS baseline.
type Comparison = experiments.Outcome

func (c Config) toSim() (sim.Config, error) {
	if c.Workload == "" {
		return sim.Config{}, fmt.Errorf("coscale: Config.Workload is required (one of %v)", Workloads())
	}
	mix, err := workload.Get(c.Workload)
	if err != nil {
		return sim.Config{}, err
	}
	out := sim.Config{
		Mix:            mix,
		Gamma:          c.PerformanceBound,
		EpochLen:       c.EpochLength,
		ProfileLen:     c.ProfileLength,
		InstrBudget:    c.InstructionBudget,
		Prefetch:       c.Prefetch,
		OoO:            c.OutOfOrder,
		RecordTimeline: c.RecordTimeline,
		MigrateEvery:   c.MigrateEvery,
	}
	if c.CoreFrequencySteps > 0 {
		l, err := freq.CoreLadderN(c.CoreFrequencySteps)
		if err != nil {
			return sim.Config{}, err
		}
		out.CoreLadder = l
	}
	if c.HalfVoltageRange {
		if c.CoreFrequencySteps > 0 && c.CoreFrequencySteps != freq.DefaultCoreSteps {
			return sim.Config{}, fmt.Errorf("coscale: HalfVoltageRange cannot be combined with CoreFrequencySteps")
		}
		out.CoreLadder = freq.HalfVoltageCoreLadder()
	}
	if c.MemFrequencySteps > 0 {
		l, err := freq.MemLadderN(c.MemFrequencySteps)
		if err != nil {
			return sim.Config{}, err
		}
		out.MemLadder = l
	}
	return out, nil
}

// Run executes one simulation and returns its result.
func Run(c Config) (*Result, error) {
	sc, err := c.toSim()
	if err != nil {
		return nil, err
	}
	name := c.Policy
	if name == "" {
		name = PolicyCoScale
	}
	switch name {
	case PolicyBaseline:
	case PolicyPowerCap:
		if c.PowerCapWatts <= 0 {
			return nil, fmt.Errorf("coscale: PolicyPowerCap requires PowerCapWatts > 0")
		}
		p, err := core.NewPowerCap(sc.PolicyConfig(), c.PowerCapWatts)
		if err != nil {
			return nil, err
		}
		sc.Policy = p
	default:
		p, err := experiments.NewPolicy(experiments.PolicyName(name), sc.PolicyConfig())
		if err != nil {
			return nil, err
		}
		sc.Policy = p
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// Compare runs the configured policy and the no-DVFS baseline on the same
// workload and returns both, with savings/degradation accessors.
func Compare(c Config) (*Comparison, error) {
	base := c
	base.Policy = PolicyBaseline
	baseRes, err := Run(base)
	if err != nil {
		return nil, err
	}
	runRes, err := Run(c)
	if err != nil {
		return nil, err
	}
	return &Comparison{Base: baseRes, Run: runRes}, nil
}
