package coscale

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the §3.1 search-cost measurements and the design
// ablations. Each figure benchmark regenerates the corresponding rows/series
// and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Benchmarks use a reduced per-application
// instruction budget (the paper's 100M SimPoints shrink to 50M) so the full
// suite completes in a couple of minutes; EXPERIMENTS.md records full-budget
// numbers.

import (
	"math"
	"testing"

	"coscale/internal/core"
	"coscale/internal/dram"
	"coscale/internal/experiments"
	"coscale/internal/policy"
	"coscale/internal/sim"
	"coscale/internal/trace"
)

const benchBudget = 50_000_000

func BenchmarkTable1_WorkloadCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var worst float64
			for _, row := range rows {
				rel := math.Abs(row.MPKI-row.PaperMPKI) / row.PaperMPKI
				if rel > worst {
					worst = rel
				}
			}
			b.ReportMetric(worst*100, "worst-MPKI-err-%")
		}
	}
}

func BenchmarkFigure5_CoScaleEnergySavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			avg := 0.0
			for _, row := range rows {
				avg += row.Full / float64(len(rows))
			}
			b.ReportMetric(avg*100, "avg-savings-%")
			b.Logf("\n%s", experiments.FormatFig5(rows))
		}
	}
}

func BenchmarkFigure6_CoScalePerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for _, row := range rows {
				if row.Worst > worst {
					worst = row.Worst
				}
			}
			b.ReportMetric(worst*100, "worst-degradation-%")
			b.Logf("\n%s", experiments.FormatFig6(rows))
		}
	}
}

func BenchmarkFigure7_MilcTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		series, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(series[experiments.CoScaleName])), "epochs")
			b.Logf("\n%s", experiments.FormatFig7(series))
		}
	}
}

func BenchmarkFigure8_PolicyEnergyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure8And9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				if row.Policy == experiments.CoScaleName {
					b.ReportMetric(row.Full*100, "coscale-savings-%")
				}
			}
			b.Logf("\n%s", experiments.FormatFig8And9(rows))
		}
	}
}

func BenchmarkFigure9_PolicyPerformanceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure8And9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				if row.Policy == experiments.UncoordName {
					b.ReportMetric(row.WorstDeg*100, "uncoordinated-worst-%")
				}
			}
		}
	}
}

func reportSweep(b *testing.B, rows []experiments.SensitivityRow, err error, first bool, title string) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if first {
		// Per-variant savings averaged over the four mixes of each sweep,
		// surfaced as benchmark metrics so sensitivity regressions show up
		// in plain -bench output (not just the formatted log).
		avg := map[string]float64{}
		variants := []string{}
		for _, row := range rows {
			if _, seen := avg[row.Variant]; !seen {
				variants = append(variants, row.Variant)
			}
			avg[row.Variant] += row.Full / 4
		}
		for _, v := range variants {
			b.ReportMetric(avg[v]*100, "avg-full-savings-%["+v+"]")
		}
		b.Logf("\n%s", experiments.FormatSensitivity(title, rows))
	}
}

func BenchmarkFigure10_PerformanceBoundSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure10()
		reportSweep(b, rows, err, i == 0, "Figure 10: performance-bound sensitivity (MID)")
	}
}

func BenchmarkFigure11_RestOfSystemPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure11()
		reportSweep(b, rows, err, i == 0, "Figure 11: rest-of-system power share (MID)")
	}
}

func BenchmarkFigure12_PowerRatioMID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure12()
		reportSweep(b, rows, err, i == 0, "Figure 12: CPU:Mem power ratio (MID)")
	}
}

func BenchmarkFigure13_PowerRatioMEM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure13()
		reportSweep(b, rows, err, i == 0, "Figure 13: CPU:Mem power ratio (MEM)")
	}
}

func BenchmarkFigure14_VoltageRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure14()
		reportSweep(b, rows, err, i == 0, "Figure 14: CPU voltage range (MID)")
	}
}

func BenchmarkFigure15_FrequencyGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure15()
		reportSweep(b, rows, err, i == 0, "Figure 15: number of frequency steps (MID)")
	}
}

func BenchmarkFigure16_Prefetching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig16(rows))
		}
	}
}

func BenchmarkFigure17_OutOfOrderCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure17And18()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].CPIOoO, "MEM-OoO-CPI-norm")
			b.Logf("\n%s", experiments.FormatFig17And18(rows))
		}
	}
}

func BenchmarkFigure18_OutOfOrderEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Figure17And18()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].EPIOoOCoScale, "MEM-OoO+CoScale-EPI-norm")
		}
	}
}

func BenchmarkAblation_CoreGroupingAndCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				b.Logf("%-22s savings %5.1f%% worst-deg %5.2f%%", row.Variant, row.Full*100, row.WorstDeg*100)
			}
		}
	}
}

func BenchmarkAblation_ProfilingWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchBudget)
		rows, err := r.ProfilingWindowSweep()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rows {
				b.Logf("window %-8v savings %5.1f%% worst-deg %5.2f%%", row.Window, row.Full*100, row.WorstDeg*100)
			}
		}
	}
}

// --- §3.1 search-cost benchmarks: the frequency-selection algorithm alone,
// on synthetic profiling observations, at 16/64/128 cores. The paper
// measures <5 µs at 16 cores and projects 83/360 µs at 64/128 cores.

func searchBenchObs(n int) (policy.Config, policy.Observation) {
	return experiments.SearchBenchObs(n)
}

func benchSearch(b *testing.B, n int) {
	cfg, obs := searchBenchObs(n)
	cs := must(core.New(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Decide(obs)
	}
	b.StopTimer()
	reportPerMove(b, cs)
}

// reportPerMove surfaces the per-step cost of the search walk: the number of
// committed frequency moves grows with the core count, so ns/op alone
// conflates walk length with per-move cost. ns/move is the sub-linear-scaling
// figure of merit (DESIGN.md §10).
func reportPerMove(b *testing.B, cs *core.CoScale) {
	if st := cs.SearchStats(); st.Moves > 0 {
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(perOp/float64(st.Moves), "ns/move")
		b.ReportMetric(float64(st.Moves), "moves")
	}
}

func BenchmarkSearch16Cores(b *testing.B)   { benchSearch(b, 16) }
func BenchmarkSearch64Cores(b *testing.B)   { benchSearch(b, 64) }
func BenchmarkSearch128Cores(b *testing.B)  { benchSearch(b, 128) }
func BenchmarkSearch256Cores(b *testing.B)  { benchSearch(b, 256) }
func BenchmarkSearch512Cores(b *testing.B)  { benchSearch(b, 512) }
func BenchmarkSearch1024Cores(b *testing.B) { benchSearch(b, 1024) }

// benchSearchWarm measures the warm-hit decision path (DESIGN.md §14): the
// controller is primed with one cold decision on the same observation, so
// every timed Decide classifies the epoch as stable, seeds from the previous
// solution and serves its marginals from the snapshot table. The delta to
// the Search rows above is the warm-start saving on a perfectly stable
// phase — its upper bound.
func benchSearchWarm(b *testing.B, n int) {
	cfg, obs := searchBenchObs(n)
	cs := must(core.NewWithOptions(cfg, core.Options{WarmStart: true}))
	cs.Decide(obs) // cold prime: populates the snapshot table and phase signature
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Decide(obs)
	}
	b.StopTimer()
	st := cs.SearchStats()
	if st.WarmHits != 1 {
		b.Fatalf("warm benchmark fell back to the cold search: %+v", st)
	}
	b.ReportMetric(float64(st.CoreEvals), "evals")
	reportPerMove(b, cs)
}

func BenchmarkSearchWarm128Cores(b *testing.B)  { benchSearchWarm(b, 128) }
func BenchmarkSearchWarm512Cores(b *testing.B)  { benchSearchWarm(b, 512) }
func BenchmarkSearchWarm1024Cores(b *testing.B) { benchSearchWarm(b, 1024) }

// benchSearchParallel measures the sharded marginal scans (DESIGN.md §11):
// the same decision as benchSearch, with candidate scoring fanned across
// Options.Parallelism worker lanes. Decisions are bit-identical to the
// serial walk, so the delta against BenchmarkSearchNNNCores is pure
// scan-execution cost — a speedup on multicore hosts, a channel-handshake
// tax on GOMAXPROCS=1 (where resolveLanes keeps the serial path anyway
// under the default Parallelism 0; the explicit lane counts here force the
// fan-out machinery so it gets measured everywhere).
func benchSearchParallel(b *testing.B, n, lanes int) {
	cfg, obs := searchBenchObs(n)
	cs := must(core.NewWithOptions(cfg, core.Options{Parallelism: lanes}))
	defer cs.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Decide(obs)
	}
	b.StopTimer()
	reportPerMove(b, cs)
}

func BenchmarkSearchParallel512Cores(b *testing.B)  { benchSearchParallel(b, 512, 4) }
func BenchmarkSearchParallel1024Cores(b *testing.B) { benchSearchParallel(b, 1024, 4) }

// BenchmarkDecideAll8x128 measures the batched entry point: eight 128-core
// controllers (distinct observations, identical platform) deciding one
// epoch through a persistent Batcher — coscale-serve's worker-pool shape.
// The shared policy.TableCache means the platform tables behind all eight
// controllers were built once, before the timer.
func BenchmarkDecideAll8x128(b *testing.B) {
	var tables policy.TableCache
	items := make([]core.DecideItem, 8)
	for j := range items {
		cfg, obs := experiments.SearchBenchObsSeed(128, 11+uint64(j))
		cfg.Tables = &tables
		items[j] = core.DecideItem{C: must(core.New(cfg)), Obs: obs}
	}
	batch := core.NewBatcher(0)
	defer batch.Close()
	batch.Run(items) // warm: builds shared tables, sizes every scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Run(items)
	}
	b.StopTimer()
	if builds, _ := tables.Stats(); builds != 1 {
		b.Fatalf("platform builds = %d, want 1 (identical platforms share one build)", builds)
	}
}

// BenchmarkSearchNoTables quantifies the memoized prediction tables
// (DESIGN.md §10) by running the same search with direct model evaluation.
func BenchmarkSearchNoTables128Cores(b *testing.B) {
	cfg, obs := searchBenchObs(128)
	cs := must(core.NewWithOptions(cfg, core.Options{DisableTables: true}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Decide(obs)
	}
	b.StopTimer()
	reportPerMove(b, cs)
}

// BenchmarkSearchNoCache quantifies the Figure 2 marginal-caching savings.
func BenchmarkSearchNoCache16Cores(b *testing.B) {
	cfg, obs := searchBenchObs(16)
	cs := must(core.NewWithOptions(cfg, core.Options{DisableMarginalCache: true}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Decide(obs)
	}
}

// BenchmarkRowBufferPolicy reproduces the §4.1 methodology claim that
// closed-page row-buffer management outperforms open-page for multicore
// traffic, on the cycle-level DDR3 simulator.
func BenchmarkRowBufferPolicy(b *testing.B) {
	latency := func(pol dram.RowPolicy) float64 {
		cfg := dram.DefaultConfig()
		cfg.RowPolicy = pol
		m, err := dram.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := trace.NewRand(7)
		for i := 0; i < 30000; i++ {
			if i%3 == 0 {
				m.Enqueue(dram.Request{Addr: rng.Uint64() % (1 << 30) / 64 * 64})
			}
			m.Tick(1)
		}
		m.Tick(500)
		return m.Stats().AvgReadLatency()
	}
	for i := 0; i < b.N; i++ {
		closed := latency(dram.ClosedPage)
		open := latency(dram.OpenPage)
		if i == 0 {
			b.ReportMetric(closed, "closed-page-cycles")
			b.ReportMetric(open, "open-page-cycles")
		}
	}
}

// BenchmarkPowerCap measures the §2.3 power-capping extension.
func BenchmarkPowerCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := Run(Config{Workload: "MID1", Policy: PolicyBaseline, InstructionBudget: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		capW := base.Energy.Total() / base.WallTime * 0.75
		res, err := Run(Config{Workload: "MID1", Policy: PolicyPowerCap, PowerCapWatts: capW,
			InstructionBudget: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Energy.Total()/res.WallTime, "avg-watts")
			b.ReportMetric(capW, "cap-watts")
		}
	}
}

// BenchmarkEpochSimulation measures raw fast-backend throughput in steady
// state: the engine and controller are built once and rewound per iteration
// (both Resets are bit-identity-preserving), so the number is simulation
// throughput rather than per-run construction — trace parsing, ladder
// building and scratch growth all happen before the timer starts.
func BenchmarkEpochSimulation(b *testing.B) {
	sc, err := Config{Workload: "MID1", InstructionBudget: benchBudget}.toSim()
	if err != nil {
		b.Fatal(err)
	}
	cs := must(core.New(sc.PolicyConfig()))
	sc.Policy = cs
	eng, err := sim.New(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		cs.Reset()
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
