// Command coscale-lint runs the repository's domain-invariant static
// analyzers over the given package patterns and exits non-zero on findings.
// The per-package rules (floateq, unitliteral, determinism, nopanic,
// noprint, hotalloc) are joined by interprocedural rules built on a
// repo-wide call graph: hotprop (transitive //hot:path allocation
// discipline), dettaint (nondeterminism reachable from determinism-critical
// packages), and ctxprop (dropped context threading in the serving layer).
//
// Usage:
//
//	go run ./cmd/coscale-lint ./...
//	go run ./cmd/coscale-lint -json ./internal/policy
//	go run ./cmd/coscale-lint -list
//	go run ./cmd/coscale-lint -escapes [-update]
//
// Naming a package subset still loads its transitive module-internal
// imports (so call-graph rules see whole chains) but reports findings only
// in the named packages. -json emits diagnostics as a JSON array; -v prints
// load/graph/analysis timings to stderr. -escapes runs the escape-analysis
// regression gate: compiler heap escapes inside the transitive //hot:path
// closure are diffed against ESCAPES_baseline.json (regenerate with
// -escapes -update, or `make escapes-baseline`).
//
// Diagnostics print as "file:line: rule: message". Individual findings can
// be suppressed with a "//lint:ignore <rule> <reason>" comment on the
// offending line or the line above; see internal/lint for the rules and
// their rationale.
package main

import (
	"fmt"
	"os"

	"coscale/internal/buildinfo"
	"coscale/internal/lint"
)

func main() {
	// lint.Main owns the real flag parsing; -version is intercepted here so
	// every coscale binary answers it uniformly.
	if len(os.Args) > 1 && (os.Args[1] == "-version" || os.Args[1] == "--version") {
		fmt.Println(buildinfo.Version("coscale-lint"))
		return
	}
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
