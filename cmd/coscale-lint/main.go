// Command coscale-lint runs the repository's domain-invariant static
// analyzers (floateq, unitliteral, determinism, nopanic, noprint) over the
// given package patterns and exits non-zero on findings.
//
// Usage:
//
//	go run ./cmd/coscale-lint ./...
//	go run ./cmd/coscale-lint -list
//
// Diagnostics print as "file:line: rule: message". Individual findings can
// be suppressed with a "//lint:ignore <rule> <reason>" comment on the
// offending line or the line above; see internal/lint for the rules and
// their rationale.
package main

import (
	"fmt"
	"os"

	"coscale/internal/buildinfo"
	"coscale/internal/lint"
)

func main() {
	// lint.Main owns the real flag parsing; -version is intercepted here so
	// every coscale binary answers it uniformly.
	if len(os.Args) > 1 && (os.Args[1] == "-version" || os.Args[1] == "--version") {
		fmt.Println(buildinfo.Version("coscale-lint"))
		return
	}
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
