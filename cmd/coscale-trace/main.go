// Command coscale-trace dumps per-epoch frequency timelines (the Figure 7
// study) for a workload under several policies, as tab-separated series
// ready for plotting.
//
// Usage:
//
//	coscale-trace -workload MIX2 -policies CoScale,Uncoordinated,Semi-coordinated
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"coscale"
	"coscale/internal/buildinfo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-trace: ")

	var (
		workloadName = flag.String("workload", "MIX2", "Table 1 mix name")
		policies     = flag.String("policies", "CoScale,Uncoordinated,Semi-coordinated", "comma-separated policy names")
		budget       = flag.Uint64("instructions", 100_000_000, "instructions per application")
		core         = flag.Int("core", 0, "core whose frequency to report (0 = first copy of the first app)")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-trace"))
		return
	}

	for _, pol := range strings.Split(*policies, ",") {
		pol = strings.TrimSpace(pol)
		res, err := coscale.Run(coscale.Config{
			Workload:          *workloadName,
			Policy:            pol,
			InstructionBudget: *budget,
			RecordTimeline:    true,
		})
		if err != nil {
			log.Print(err)
			os.Exit(1)
		}
		fmt.Printf("# %s on %s (%d epochs)\n", pol, *workloadName, res.Epochs)
		fmt.Println("epoch\tmem_ghz\tcore_ghz")
		for _, rec := range res.Timeline {
			if *core >= len(rec.CoreHz) {
				log.Printf("core %d out of range", *core)
				os.Exit(1)
			}
			fmt.Printf("%d\t%.3f\t%.2f\n", rec.Index+1, rec.MemHz/1e9, rec.CoreHz[*core]/1e9)
		}
		fmt.Println()
	}
}
