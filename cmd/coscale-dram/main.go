// Command coscale-dram drives the cycle-level DDR3 simulator directly,
// sweeping bus frequency and load to print latency/bandwidth/power curves —
// the microbenchmark view of what memory DVFS trades away.
//
// Usage:
//
//	coscale-dram                      # frequency x load sweep, closed-page
//	coscale-dram -policy open         # open-page row management
//	coscale-dram -cycles 200000       # longer measurement window
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coscale/internal/buildinfo"
	"coscale/internal/dram"
	"coscale/internal/freq"
	"coscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-dram: ")

	var (
		policy  = flag.String("policy", "closed", "row-buffer policy: closed or open")
		cycles  = flag.Int("cycles", 100_000, "measurement window in bus cycles")
		local   = flag.Float64("locality", 0.0, "fraction of sequential (same-row) accesses")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-dram"))
		return
	}

	var rp dram.RowPolicy
	switch *policy {
	case "closed":
		rp = dram.ClosedPage
	case "open":
		rp = dram.OpenPage
	default:
		log.Printf("unknown policy %q", *policy)
		os.Exit(2)
	}

	ladder := freq.DefaultMemLadder()
	fmt.Printf("DDR3 sweep: %s-page, %d bus cycles per point, locality %.0f%%\n\n",
		*policy, *cycles, *local*100)
	fmt.Printf("%8s %10s %12s %12s %10s %10s\n",
		"bus MHz", "load", "latency ns", "GB/s", "bus util", "row hits")

	for step := 0; step < ladder.Steps(); step += 3 {
		hz := ladder.Hz(step)
		for _, gap := range []int{16, 6, 3} { // light, moderate, heavy
			stats, err := sweep(rp, hz, gap, *cycles, *local)
			if err != nil {
				log.Print(err)
				os.Exit(1)
			}
			reads := stats.Reads + stats.Writes
			secs := float64(*cycles) / hz
			fmt.Printf("%8.0f %10s %12.1f %12.2f %9.1f%% %9.1f%%\n",
				hz/1e6, label(gap),
				stats.AvgReadLatency()/hz*1e9,
				float64(reads*64)/secs/1e9,
				stats.BusUtilization(4)*100,
				stats.RowHitRate()*100)
		}
	}
}

func label(gap int) string {
	switch gap {
	case 16:
		return "light"
	case 6:
		return "moderate"
	default:
		return "heavy"
	}
}

// sweep applies an open-loop request stream: one request per gap cycles per
// channel, addresses random or sequential per the locality fraction.
func sweep(rp dram.RowPolicy, hz float64, gap, cycles int, locality float64) (dram.Stats, error) {
	cfg := dram.DefaultConfig()
	cfg.RowPolicy = rp
	cfg.BusHz = hz
	m, err := dram.New(cfg)
	if err != nil {
		return dram.Stats{}, err
	}
	rng := trace.NewRand(42)
	addr := uint64(0)
	for i := 0; i < cycles; i++ {
		if i%gap == 0 {
			if rng.Float64() < locality {
				addr += 64
			} else {
				addr = rng.Uint64() % (1 << 30) / 64 * 64
			}
			m.Enqueue(dram.Request{Addr: addr})
		}
		m.Tick(1)
	}
	m.Tick(1000) // drain tail
	return m.Stats(), nil
}
