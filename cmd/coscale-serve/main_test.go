package main

import (
	"bytes"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestBootServeDrain boots the daemon on an ephemeral port, round-trips a
// simulate request, then delivers SIGTERM and verifies a clean drain.
func TestBootServeDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	logger := log.New(io.Discard, "", 0)

	done := make(chan error, 1)
	go func() { done <- run(ln, logger, 2, 8, 8, 10*time.Second, fleetJoin{}) }()

	// Wait for the listener to answer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/simulate?wait=1", "application/json",
		bytes.NewReader([]byte(`{"workload":"MEM1","instructions":2000000}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("simulate response not done: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete within 30s of SIGTERM")
	}
}
