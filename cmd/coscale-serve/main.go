// Command coscale-serve exposes the simulation stack as a long-running
// HTTP/JSON service: a bounded worker pool executes simulate and sweep jobs
// from an admission-controlled queue, results are cached by canonical
// request hash, and per-epoch progress streams as NDJSON. Results are
// bit-identical to the CLIs. See DESIGN.md §9.
//
// Usage:
//
//	coscale-serve -addr :8080
//	curl -s localhost:8080/v1/simulate?wait=1 -d '{"workload":"MEM1"}'
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/stream (NDJSON), DELETE /v1/jobs/{id}, GET /healthz,
// GET /metrics.
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused with 503,
// in-flight jobs get -drain-timeout to finish, then stragglers are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coscale/internal/buildinfo"
	"coscale/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-serve: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admitted-but-not-started job bound (0 = 64)")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = 256)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-serve"))
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	logger := log.New(os.Stderr, "coscale-serve: ", 0)
	if err := run(ln, logger, *workers, *queueDepth, *cacheSize, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

// run serves on ln until SIGINT/SIGTERM, then drains. It owns closing ln.
func run(ln net.Listener, logger *log.Logger, workers, queueDepth, cacheSize int, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := server.New(server.Config{
		Workers:    workers,
		QueueDepth: queueDepth,
		CacheSize:  cacheSize,
		Logger:     logger,
	})
	httpSrv := &http.Server{Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err // listener failure; nothing to drain
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (timeout %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first so jobs finish (or are cancelled at the deadline), then
	// close the listener and let straggling responses flush.
	drainErr := s.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		logger.Printf("drain deadline hit; in-flight jobs were cancelled")
	}
	logger.Printf("bye")
	return nil
}
