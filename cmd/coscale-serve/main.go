// Command coscale-serve exposes the simulation stack as a long-running
// HTTP/JSON service: a bounded worker pool executes simulate and sweep jobs
// from an admission-controlled queue, results are cached by canonical
// request hash, and per-epoch progress streams as NDJSON. Results are
// bit-identical to the CLIs. See DESIGN.md §9.
//
// Usage:
//
//	coscale-serve -addr :8080
//	curl -s localhost:8080/v1/simulate?wait=1 -d '{"workload":"MEM1"}'
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/stream (NDJSON), DELETE /v1/jobs/{id},
// POST /v1/lease/execute (fleet), GET /healthz, GET /readyz, GET /metrics.
//
// With -join, the process also enrolls as a worker in a coscale-fleet
// coordinator: it registers, heartbeats its readiness, and executes sweep
// cells leased to it via POST /v1/lease/execute. See DESIGN.md §12.
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused with 503,
// in-flight jobs get -drain-timeout to finish, then stragglers are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coscale/internal/buildinfo"
	"coscale/internal/fleet"
	"coscale/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-serve: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admitted-but-not-started job bound (0 = 64)")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = 256)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		join         = flag.String("join", "", "coordinator base URL to enroll with (e.g. http://fleet:8090)")
		joinID       = flag.String("join-id", "", "stable worker identity for the fleet (default host:port)")
		advertise    = flag.String("advertise", "", "base URL the coordinator should dial this worker at (default derived from -addr)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-serve"))
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	logger := log.New(os.Stderr, "coscale-serve: ", 0)
	if *pprofAddr != "" {
		go servePprof(*pprofAddr, logger)
	}
	fj := fleetJoin{coordinator: *join, id: *joinID, advertise: *advertise}
	if fj.coordinator != "" {
		if fj.id == "" {
			fj.id = workerID(ln.Addr())
		}
		if fj.advertise == "" {
			fj.advertise = advertiseURL(ln.Addr())
		}
	}
	if err := run(ln, logger, *workers, *queueDepth, *cacheSize, *drainTimeout, fj); err != nil {
		log.Fatal(err)
	}
}

// servePprof exposes net/http/pprof on its own listener, opt-in via -pprof
// and never mounted on the service mux: the profiling endpoints can stay on
// loopback while the API listener is reachable from the fleet. Serving
// errors are logged, not fatal — losing profiling must not take the service
// down.
func servePprof(addr string, logger *log.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Printf("pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Printf("pprof: %v", err)
	}
}

// fleetJoin carries the resolved -join options.
type fleetJoin struct {
	coordinator string // coordinator base URL ("" = standalone)
	id          string // stable worker identity
	advertise   string // dialable base URL for this worker
}

// workerID derives a stable fleet identity from the listen address: the
// hostname plus the bound port, so restarts keep their place on the ring.
func workerID(a net.Addr) string {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	_, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return host
	}
	return host + ":" + port
}

// advertiseURL turns the listen address into a dialable base URL, mapping
// wildcard binds to loopback (single-host default; -advertise overrides).
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	if strings.Contains(host, ":") {
		host = "[" + host + "]"
	}
	return "http://" + host + ":" + port
}

// run serves on ln until SIGINT/SIGTERM, then drains. It owns closing ln.
func run(ln net.Listener, logger *log.Logger, workers, queueDepth, cacheSize int, drainTimeout time.Duration, fj fleetJoin) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := server.New(server.Config{
		Workers:    workers,
		QueueDepth: queueDepth,
		CacheSize:  cacheSize,
		Logger:     logger,
		WorkerID:   fj.id,
	})
	httpSrv := &http.Server{Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()

	if fj.coordinator != "" {
		agent := &fleet.Agent{
			ID:          fj.id,
			Addr:        fj.advertise,
			Coordinator: fj.coordinator,
			Ready:       s.Ready,
			OnBudget:    s.SetPowerCap,
			Logger:      logger,
		}
		go func() {
			if err := agent.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Printf("fleet agent: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err // listener failure; nothing to drain
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (timeout %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first so jobs finish (or are cancelled at the deadline), then
	// close the listener and let straggling responses flush.
	drainErr := s.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		logger.Printf("drain deadline hit; in-flight jobs were cancelled")
	}
	logger.Printf("bye")
	return nil
}
