// Command coscale-sim runs one workload under one DVFS policy and reports
// energy, performance and (optionally) the per-epoch frequency timeline.
//
// Usage:
//
//	coscale-sim -workload MEM1 -policy CoScale -bound 0.10
//	coscale-sim -workload MIX2 -policy Semi-coordinated -timeline
//	coscale-sim -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coscale"
	"coscale/internal/buildinfo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-sim: ")

	var (
		workloadName = flag.String("workload", "MID1", "Table 1 mix name")
		policyName   = flag.String("policy", coscale.PolicyCoScale, "policy: Baseline, CoScale, MemScale, CPUOnly, Uncoordinated, Semi-coordinated, Offline")
		bound        = flag.Float64("bound", 0.10, "allowed per-program slowdown")
		budget       = flag.Uint64("instructions", 100_000_000, "instructions per application")
		prefetch     = flag.Bool("prefetch", false, "enable the next-line prefetcher")
		ooo          = flag.Bool("ooo", false, "emulate the 128-instruction OoO window")
		timeline     = flag.Bool("timeline", false, "print the per-epoch frequency timeline")
		list         = flag.Bool("list", false, "list workloads and exit")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-sim"))
		return
	}

	if *list {
		for _, w := range coscale.Workloads() {
			fmt.Println(w)
		}
		return
	}

	cfg := coscale.Config{
		Workload:          *workloadName,
		Policy:            *policyName,
		PerformanceBound:  *bound,
		InstructionBudget: *budget,
		Prefetch:          *prefetch,
		OutOfOrder:        *ooo,
		RecordTimeline:    *timeline,
	}
	cmp, err := coscale.Compare(cfg)
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}

	res, base := cmp.Run, cmp.Base
	fmt.Printf("workload %s, policy %s: %d epochs, %.4f s (baseline %.4f s)\n",
		res.Mix, res.Policy, res.Epochs, res.WallTime, base.WallTime)
	fmt.Printf("energy: %.1f J vs baseline %.1f J -> %.1f%% full-system savings\n",
		res.Energy.Total(), base.Energy.Total(), cmp.FullSavings()*100)
	fmt.Printf("  CPU %.1f%%  memory %.1f%%  (breakdown: cpu %.1f, l2 %.1f, mem %.1f, rest %.1f J)\n",
		cmp.CPUSavings()*100, cmp.MemSavings()*100,
		res.Energy.CPU, res.Energy.L2, res.Energy.Mem, res.Energy.Rest)
	fmt.Printf("performance: average degradation %.2f%%, worst program %.2f%% (bound %.0f%%)\n",
		cmp.AvgDegradation()*100, cmp.WorstDegradation()*100, *bound*100)

	if *timeline {
		fmt.Println("\nepoch  mem-MHz  core0-GHz  worst-slowdown  power-W")
		for _, rec := range res.Timeline {
			worst := 0.0
			for _, s := range rec.Slowdowns {
				if s > worst {
					worst = s
				}
			}
			fmt.Printf("%5d  %7.0f  %9.2f  %14.3f  %7.0f\n",
				rec.Index+1, rec.MemHz/1e6, rec.CoreHz[0]/1e9, worst, rec.PowerW)
		}
	}
}
