package main

import (
	"bytes"
	"io"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"coscale/internal/fleet"
)

// TestBootShedShutdown boots the coordinator on an ephemeral port with no
// workers, verifies liveness, the not-ready readiness signal, and the
// 503/Retry-After shed for a sweep with zero live workers, then delivers
// SIGTERM and requires a clean shutdown.
func TestBootShedShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	logger := log.New(io.Discard, "", 0)

	done := make(chan error, 1)
	go func() {
		done <- run(ln, logger, fleet.Config{
			JournalPath: filepath.Join(t.TempDir(), "fleet.journal"),
			Logger:      logger,
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// No workers: not ready, and sweeps are shed with a retry hint.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/fleet/sweeps", "application/json",
		bytes.NewReader([]byte(`{"workloads":["MEM1"],"instructions":2000000}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep with no workers: status %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(string(body), "no live workers") {
		t.Fatalf("shed body %q does not explain the degraded mode", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown did not complete within 30s of SIGTERM")
	}
}
