// Command coscale-fleet coordinates a fleet of coscale-serve workers: it
// registers workers by heartbeat TTL lease, shards sweep cells across them
// by consistent hashing over the canonical request hash, retries failed or
// reclaimed leases with exponential backoff, and journals every job
// transition to a crash-safe append-only log so a coordinator restart
// resumes in-flight sweeps without recomputing finished cells. See
// DESIGN.md §12.
//
// Usage:
//
//	coscale-fleet -addr :8090 -journal fleet.journal
//	coscale-serve -addr :8081 -join http://localhost:8090
//	curl -s localhost:8090/v1/fleet/sweeps -d '{"workloads":["MEM1"]}'
//
// Endpoints: POST /v1/fleet/sweeps, GET /v1/fleet/sweeps,
// GET /v1/fleet/sweeps/{id} (?wait=1 blocks until terminal),
// POST /v1/fleet/workers/join, POST /v1/fleet/workers/{id}/heartbeat,
// GET /v1/fleet/workers, GET /healthz, GET /readyz, GET /metrics.
//
// With zero live workers the coordinator sheds new sweeps with
// 503/Retry-After; partial results of a running sweep are queryable at any
// time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coscale/internal/buildinfo"
	"coscale/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-fleet: ")

	var (
		addr        = flag.String("addr", ":8090", "listen address")
		journal     = flag.String("journal", "", "crash-safe job journal path (empty = in-memory only)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "worker heartbeat interval")
		jobTimeout  = flag.Duration("job-timeout", 60*time.Second, "per-attempt lease execution timeout")
		maxAttempts = flag.Int("max-attempts", 4, "lease attempts per job before terminal failure")
		inflight    = flag.Int("max-inflight", 4, "concurrent leases per worker")
		budget      = flag.Float64("budget", 0, "fleet power budget in watts, split across live workers (0 = uncapped)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		version     = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-fleet"))
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	logger := log.New(os.Stderr, "coscale-fleet: ", 0)
	if *pprofAddr != "" {
		go servePprof(*pprofAddr, logger)
	}
	if err := run(ln, logger, fleet.Config{
		HeartbeatInterval:    *heartbeat,
		JobTimeout:           *jobTimeout,
		MaxAttempts:          *maxAttempts,
		MaxInflightPerWorker: *inflight,
		PowerBudgetWatts:     *budget,
		JournalPath:          *journal,
		Logger:               logger,
	}); err != nil {
		log.Fatal(err)
	}
}

// servePprof exposes net/http/pprof on its own listener, opt-in via -pprof
// and never mounted on the coordinator mux: the profiling endpoints can stay
// on loopback while the API listener is reachable from the fleet. Serving
// errors are logged, not fatal — losing profiling must not take the
// coordinator down.
func servePprof(addr string, logger *log.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Printf("pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Printf("pprof: %v", err)
	}
}

// run serves the coordinator on ln until SIGINT/SIGTERM. It owns closing ln.
func run(ln net.Listener, logger *log.Logger, cfg fleet.Config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: c.Handler()}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (journal %q)", ln.Addr(), cfg.JournalPath)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		_ = c.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("signal received; shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		_ = c.Close()
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	logger.Printf("bye")
	return nil
}
