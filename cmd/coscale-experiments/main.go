// Command coscale-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	coscale-experiments                  # everything (full 100M budget)
//	coscale-experiments -exp fig5,fig8   # selected experiments
//	coscale-experiments -budget 25000000 # faster, reduced budget
//
// Experiment names: table1 table2 fig5 fig6 fig7 fig8 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 fig17 ablations faults fastcap warmstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"coscale/internal/buildinfo"
	"coscale/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-experiments: ")

	var (
		expList  = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		budget   = flag.Uint64("budget", 100_000_000, "instructions per application")
		fcNodes  = flag.Int("fastcap-nodes", 0, "fastcap: simulated fleet size (0 = default 6)")
		fcEpochs = flag.Int("fastcap-epochs", 0, "fastcap: rebalancing epochs (0 = default 36)")
		version  = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-experiments"))
		return
	}

	// SIGINT/SIGTERM cancel the runner's base context: in-flight simulations
	// unwind within one epoch and the current experiment returns a
	// cancellation error, which is reported as a partial-results exit below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := experiments.NewRunner(*budget)
	r.Ctx = ctx
	wanted := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	want := func(name string) bool { return all || wanted[name] }
	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			log.Print("interrupted: results printed so far are partial; rerun to regenerate the remaining experiments")
		}
		log.Print(err)
		os.Exit(1)
	}

	if want("table1") {
		rows, err := r.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if want("table2") {
		fmt.Println(experiments.Table2())
	}
	if want("fig5") {
		rows, err := r.Figure5()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig5(rows))
	}
	if want("fig6") {
		rows, err := r.Figure6()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig6(rows))
	}
	if want("fig7") {
		series, err := r.Figure7()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig7(series))
	}
	if want("fig8") || want("fig9") {
		rows, err := r.Figure8And9()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig8And9(rows))
	}
	type sweep struct {
		name  string
		run   func() ([]experiments.SensitivityRow, error)
		title string
	}
	for _, s := range []sweep{
		{"fig10", r.Figure10, "Figure 10: performance-bound sensitivity (MID)"},
		{"fig11", r.Figure11, "Figure 11: rest-of-system power share (MID)"},
		{"fig12", r.Figure12, "Figure 12: CPU:Mem power ratio (MID)"},
		{"fig13", r.Figure13, "Figure 13: CPU:Mem power ratio (MEM)"},
		{"fig14", r.Figure14, "Figure 14: CPU voltage range (MID)"},
		{"fig15", r.Figure15, "Figure 15: number of frequency steps (MID)"},
	} {
		if !want(s.name) {
			continue
		}
		rows, err := s.run()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatSensitivity(s.title, rows))
	}
	if want("fig16") {
		rows, err := r.Figure16()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig16(rows))
	}
	if want("fig17") || want("fig18") {
		rows, err := r.Figure17And18()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig17And18(rows))
	}
	if want("faults") {
		rows, err := r.ErrorTolerance()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatErrorTolerance(rows))
	}
	if want("fastcap") {
		rows, err := r.FastCap(*fcNodes, *fcEpochs)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFastCap(rows))
	}
	if want("warmstart") {
		rows, err := r.WarmStart(nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatWarmStart(rows))
	}
	if want("ablations") {
		rows, err := r.Ablations()
		if err != nil {
			fail(err)
		}
		fmt.Println("Ablations (MID mixes):")
		for _, row := range rows {
			fmt.Printf("  %-22s savings %5.1f%%  worst-deg %5.2f%%\n", row.Variant, row.Full*100, row.WorstDeg*100)
		}
	}
}
