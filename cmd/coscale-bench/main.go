// Command coscale-bench runs the headline performance benchmarks — the §3.1
// search cost at 16/64/128 cores and the raw epoch-simulation throughput —
// plus a timed figure regeneration, and writes the numbers as machine-readable
// JSON. The committed BENCH_baseline.json at the repository root is this
// program's output; regenerate it with `make bench-json` and compare against
// the committed copy to spot hot-path regressions.
//
// Usage:
//
//	coscale-bench                      # print JSON to stdout
//	coscale-bench -out BENCH_baseline.json
//	coscale-bench -benchtime 2s -figure-budget 10000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"coscale"
	"coscale/internal/buildinfo"
	"coscale/internal/core"
	"coscale/internal/experiments"
)

// Report is the BENCH_*.json schema (see DESIGN.md §7 for how to read it).
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOARCH     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []BenchRow  `json:"benchmarks"`
	Figures    []FigureRow `json:"figures"`
}

// BenchRow records one testing.Benchmark result.
type BenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// FigureRow records the wall time of one figure regeneration.
type FigureRow struct {
	Name        string  `json:"name"`
	InstrBudget uint64  `json:"instr_budget"`
	Seconds     float64 `json:"seconds"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-bench: ")

	var (
		out          = flag.String("out", "", "write JSON here instead of stdout")
		benchtime    = flag.Duration("benchtime", time.Second, "minimum measurement time per benchmark")
		epochBudget  = flag.Uint64("epoch-budget", 50_000_000, "instructions per app for the epoch-simulation benchmark")
		figureBudget = flag.Uint64("figure-budget", 10_000_000, "instructions per app for the timed figure regeneration")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	testing.Init() // registers -test.* flags so benchtime can be set below
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-bench"))
		return
	}
	// testing.Benchmark respects the -test.benchtime flag value.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		log.Fatal(err)
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}

	for _, n := range []int{16, 64, 128} {
		n := n
		rep.Benchmarks = append(rep.Benchmarks, bench(fmt.Sprintf("Search%dCores", n), func(b *testing.B) {
			cfg, obs := experiments.SearchBenchObs(n)
			cs, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.Decide(obs)
			}
		}))
	}
	rep.Benchmarks = append(rep.Benchmarks, bench("EpochSimulation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coscale.Run(coscale.Config{Workload: "MID1", InstructionBudget: *epochBudget}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Figure 8/9: the six-policy sweep whose shared-baseline caching this
	// file's numbers guard (one baseline simulation per mix, not six).
	r := experiments.NewRunner(*figureBudget)
	start := time.Now()
	if _, err := r.Figure8And9(); err != nil {
		log.Fatal(err)
	}
	rep.Figures = append(rep.Figures, FigureRow{
		Name:        "Figure8And9",
		InstrBudget: *figureBudget,
		Seconds:     time.Since(start).Seconds(),
	})

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
}

// bench runs one benchmark function under the standard harness and flattens
// the result into a BenchRow.
func bench(name string, fn func(b *testing.B)) BenchRow {
	res := testing.Benchmark(fn)
	return BenchRow{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}
