// Command coscale-bench runs the headline performance benchmarks — the §3.1
// search cost at 16-1024 cores (serial and sharded across -parallelism
// worker lanes), batched DecideAll over the shared platform-table cache,
// and the raw epoch-simulation throughput — plus a timed figure
// regeneration, and writes the numbers as machine-readable JSON. The committed BENCH_baseline.json at the repository root is this
// program's output; regenerate it with `make bench-json`.
//
// Diff mode compares a fresh run against a previous report and exits
// non-zero on regression, so CI can gate hot-path changes:
//
//	coscale-bench -compare BENCH_baseline.json
//
// Allocation counts are deterministic and gate strictly (any increase over
// the baseline fails). Nanosecond timings vary across machines, so they gate
// loosely: a benchmark fails only when it exceeds the baseline by the
// -threshold factor (default 3x), which catches algorithmic regressions
// without flaking on hardware differences.
//
// Usage:
//
//	coscale-bench                      # print JSON to stdout
//	coscale-bench -out BENCH_baseline.json
//	coscale-bench -benchtime 2s -figure-budget 10000000
//	coscale-bench -compare BENCH_baseline.json -threshold 2.5
//	coscale-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"coscale/internal/buildinfo"
	"coscale/internal/core"
	"coscale/internal/experiments"
	"coscale/internal/policy"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// Report is the BENCH_*.json schema (see DESIGN.md §7 for how to read it).
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOARCH     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []BenchRow  `json:"benchmarks"`
	Figures    []FigureRow `json:"figures"`
}

// BenchRow records one testing.Benchmark result. For the search benchmarks,
// Moves and NsPerMove expose per-step cost: the walk takes more moves at
// higher core counts, so ns/op alone conflates walk length with per-move
// cost; ns/move is the sub-linear-scaling figure of merit (DESIGN.md §10).
type BenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Moves       int     `json:"moves,omitempty"`
	NsPerMove   float64 `json:"ns_per_move,omitempty"`
}

// FigureRow records the wall time of one figure regeneration.
type FigureRow struct {
	Name        string  `json:"name"`
	InstrBudget uint64  `json:"instr_budget"`
	Seconds     float64 `json:"seconds"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coscale-bench: ")

	var (
		out          = flag.String("out", "", "write JSON here instead of stdout")
		benchtime    = flag.Duration("benchtime", time.Second, "minimum measurement time per benchmark")
		epochBudget  = flag.Uint64("epoch-budget", 50_000_000, "instructions per app for the epoch-simulation benchmark")
		figureBudget = flag.Uint64("figure-budget", 10_000_000, "instructions per app for the timed figure regeneration")
		compare      = flag.String("compare", "", "previous report to diff against; exit 1 on regression")
		threshold    = flag.Float64("threshold", 3.0, "ns/op regression factor tolerated in -compare mode")
		parallelism  = flag.Int("parallelism", 0, "worker lanes for the SearchParallel/DecideAll rows (0 = GOMAXPROCS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run here")
		memprofile   = flag.String("memprofile", "", "write an allocation profile of the benchmark run here")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	testing.Init() // registers -test.* flags so benchtime can be set below
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("coscale-bench"))
		return
	}
	// testing.Benchmark respects the -test.benchtime flag value.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}

	for _, n := range []int{16, 64, 128, 256, 512, 1024} {
		cfg, obs := experiments.SearchBenchObs(n)
		cs, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		row := bench(fmt.Sprintf("Search%dCores", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.Decide(obs)
			}
		})
		if st := cs.SearchStats(); st.Moves > 0 {
			row.Moves = st.Moves
			row.NsPerMove = row.NsPerOp / float64(st.Moves)
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
	}

	// Warm-started decisions (DESIGN.md §14): the same observations with one
	// cold prime, so every timed decision is a warm hit on a perfectly
	// stable phase. The delta to the Search rows is the warm-start ceiling.
	for _, n := range []int{128, 512, 1024} {
		cfg, obs := experiments.SearchBenchObs(n)
		cs, err := core.NewWithOptions(cfg, core.Options{WarmStart: true})
		if err != nil {
			log.Fatal(err)
		}
		cs.Decide(obs) // cold prime: snapshot table and phase signature
		row := bench(fmt.Sprintf("SearchWarm%dCores", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.Decide(obs)
			}
		})
		st := cs.SearchStats()
		if st.WarmHits != 1 {
			log.Fatalf("SearchWarm%dCores fell back to the cold search: %+v", n, st)
		}
		if st.Moves > 0 {
			row.Moves = st.Moves
			row.NsPerMove = row.NsPerOp / float64(st.Moves)
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
	}

	// Sharded marginal scans (DESIGN.md §11): the same 512- and 1024-core
	// decisions with candidate scoring fanned across -parallelism lanes.
	// Bit-identical to the serial rows above, so the delta is pure scan
	// execution: a speedup on multicore hosts, a handshake tax at one lane.
	for _, n := range []int{512, 1024} {
		cfg, obs := experiments.SearchBenchObs(n)
		cs, err := core.NewWithOptions(cfg, core.Options{Parallelism: *parallelism})
		if err != nil {
			log.Fatal(err)
		}
		row := bench(fmt.Sprintf("SearchParallel%dCores", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.Decide(obs)
			}
		})
		if st := cs.SearchStats(); st.Moves > 0 {
			row.Moves = st.Moves
			row.NsPerMove = row.NsPerOp / float64(st.Moves)
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		cs.Close()
	}

	// Batched decisions over the shared per-platform table cache: eight
	// 128-core controllers (distinct observations, one platform) deciding an
	// epoch through a persistent Batcher — the coscale-serve worker shape.
	rep.Benchmarks = append(rep.Benchmarks, bench("DecideAll8x128", func(b *testing.B) {
		var tables policy.TableCache
		items := make([]core.DecideItem, 8)
		for j := range items {
			cfg, obs := experiments.SearchBenchObsSeed(128, 11+uint64(j))
			cfg.Tables = &tables
			cs, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			items[j] = core.DecideItem{C: cs, Obs: obs}
		}
		batch := core.NewBatcher(*parallelism)
		defer batch.Close()
		batch.Run(items) // warm: builds the shared tables, sizes scratch
		if builds, _ := tables.Stats(); builds != 1 {
			b.Fatalf("platform builds = %d, want 1", builds)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch.Run(items)
		}
	}))
	rep.Benchmarks = append(rep.Benchmarks, bench("EpochSimulation", func(b *testing.B) {
		// Steady-state form: engine and controller are built once and
		// rewound per iteration, so the measurement is simulation
		// throughput, not per-run construction (trace parsing, ladder
		// building, scratch growth).
		mix, err := workload.Get("MID1")
		if err != nil {
			b.Fatal(err)
		}
		sc := sim.Config{Mix: mix, InstrBudget: *epochBudget}
		cs, err := core.New(sc.PolicyConfig())
		if err != nil {
			b.Fatal(err)
		}
		sc.Policy = cs
		eng, err := sim.New(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Reset()
			cs.Reset()
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Figure 8/9: the six-policy sweep whose shared-baseline caching this
	// file's numbers guard (one baseline simulation per mix, not six).
	r := experiments.NewRunner(*figureBudget)
	start := time.Now()
	if _, err := r.Figure8And9(); err != nil {
		log.Fatal(err)
	}
	rep.Figures = append(rep.Figures, FigureRow{
		Name:        "Figure8And9",
		InstrBudget: *figureBudget,
		Seconds:     time.Since(start).Seconds(),
	})

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
	case *compare == "": // diff mode logs the comparison instead of the report
		os.Stdout.Write(buf)
	}

	if *compare != "" {
		old, err := readReport(*compare)
		if err != nil {
			log.Fatal(err)
		}
		if failures := diff(old, rep, *threshold); len(failures) > 0 {
			for _, f := range failures {
				log.Print(f)
			}
			log.Fatalf("%d regression(s) against %s", len(failures), *compare)
		}
		log.Printf("no regressions against %s (threshold %.2fx)", *compare, *threshold)
	}
}

// bench runs one benchmark function under the standard harness and flattens
// the result into a BenchRow.
func bench(name string, fn func(b *testing.B)) BenchRow {
	res := testing.Benchmark(fn)
	return BenchRow{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}

func readReport(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// diff reports regressions of new against old: any allocs/op increase
// (deterministic, so strict), and ns/op beyond threshold x the old value
// (loose, to absorb machine differences). Benchmarks present on only one
// side are reported informationally by the caller's JSON, not gated.
func diff(old, new Report, threshold float64) []string {
	prev := make(map[string]BenchRow, len(old.Benchmarks))
	for _, row := range old.Benchmarks {
		prev[row.Name] = row
	}
	var failures []string
	for _, row := range new.Benchmarks {
		base, ok := prev[row.Name]
		if !ok {
			continue
		}
		if row.AllocsPerOp > base.AllocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"REGRESSION %s: allocs/op %d -> %d", row.Name, base.AllocsPerOp, row.AllocsPerOp))
		}
		if base.NsPerOp > 0 && row.NsPerOp > base.NsPerOp*threshold {
			failures = append(failures, fmt.Sprintf(
				"REGRESSION %s: ns/op %.0f -> %.0f (%.2fx > %.2fx allowed)",
				row.Name, base.NsPerOp, row.NsPerOp, row.NsPerOp/base.NsPerOp, threshold))
		} else {
			log.Printf("%-20s ns/op %10.0f -> %10.0f (%.2fx)  allocs/op %d -> %d",
				row.Name, base.NsPerOp, row.NsPerOp, row.NsPerOp/base.NsPerOp,
				base.AllocsPerOp, row.AllocsPerOp)
		}
	}
	return failures
}
