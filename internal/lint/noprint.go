package lint

import (
	"go/ast"
	"go/types"
)

// NoPrint forbids writing to process-global output streams from internal/
// library code: fmt.Print/Printf/Println, the print/println builtins, and
// any reference to os.Stdout. Experiment tables and figures are rendered
// through injected io.Writers so that CLIs, tests and golden-file
// comparisons all capture exactly the same bytes; a stray Printf corrupts
// that stream.
var NoPrint = &Analyzer{
	Name:  "noprint",
	Doc:   "forbid fmt.Print*/os.Stdout in internal library code; inject io.Writer",
	Match: internalPackages,
	Run:   runNoPrint,
}

// printFuncs are the fmt functions hard-wired to os.Stdout.
var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoPrint(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Pkg().Path() == "fmt" && printFuncs[obj.Name()]:
					pass.Reportf(n.Pos(),
						"fmt.%s writes to os.Stdout; render through an injected io.Writer", obj.Name())
				case obj.Pkg().Path() == "os" && obj.Name() == "Stdout":
					pass.Reportf(n.Pos(),
						"os.Stdout referenced in library code; accept an io.Writer instead")
				}
			case *ast.Ident:
				if n.Name != "print" && n.Name != "println" {
					return true
				}
				if _, ok := pass.Info.Uses[n].(*types.Builtin); ok {
					pass.Reportf(n.Pos(),
						"builtin %s writes to stderr; render through an injected io.Writer", n.Name)
				}
			}
			return true
		})
	}
}
