// Package lint implements coscale-lint, the repository's domain-invariant
// static-analysis suite. It is built entirely on the standard library's
// go/ast, go/parser, go/token and go/types packages (no external analysis
// frameworks, preserving the repo's stdlib-only constraint).
//
// The suite enforces invariants that go build and go vet cannot: the
// CoScale controller's greedy search compares full-system energy estimates
// that differ by fractions of a percent, and EXPERIMENTS.md regenerates
// paper figures that must be bit-reproducible run to run. Exact float
// comparison, Hz-vs-MHz unit confusion, wall-clock or global-rand
// nondeterminism, and stray panics/prints in library code are therefore
// first-class bugs here, and each gets its own analyzer (see Analyzers).
//
// Findings can be suppressed one line at a time with
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical "file:line: rule: message"
// form the driver prints and the golden tests compare against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// An Analyzer checks one named rule over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by coscale-lint -list.
	Doc string
	// Match reports whether the rule applies to a package import path;
	// nil means every package.
	Match func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer. Prog, when
// non-nil, exposes the whole program for rules that refine their package-
// local judgement with call-graph facts (unitliteral's frequency-
// constructor whitelist).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A ProgramAnalyzer checks one named rule over the whole program at once.
// Where an Analyzer sees one package, a ProgramAnalyzer sees the call
// graph; the interprocedural rules (hotprop, dettaint, ctxprop) live here.
type ProgramAnalyzer struct {
	// Name is the rule name used in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by coscale-lint -list.
	Doc string
	// Run inspects the program and reports findings through the pass.
	Run func(*ProgramPass)
}

// ProgramPass carries the program through one interprocedural analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's rule name.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the per-package suite in stable presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{FloatEq, UnitLiteral, Determinism, NoPanic, NoPrint, HotAlloc}
}

// ProgramAnalyzers returns the interprocedural suite in stable
// presentation order.
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{HotProp, DetTaint, CtxProp}
}

// internalPackages scopes a rule to library code under internal/.
func internalPackages(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

// Check runs the full suite over the program: every applicable per-package
// analyzer over each target package, then every interprocedural analyzer
// over the program as a whole. Diagnostics are confined to the target
// packages (interprocedural rules may traverse imported helpers, but only
// findings whose position lies in a target file are reported), //lint:ignore
// suppressions are applied, and the survivors come back sorted by position.
// Malformed ignore directives are reported under the "lint" rule.
func Check(prog *Program, analyzers []*Analyzer, progAnalyzers []*ProgramAnalyzer) []Diagnostic {
	var diags []Diagnostic
	fset := prog.Fset()
	for _, pkg := range prog.Targets {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			})
		}
	}
	for _, a := range progAnalyzers {
		a.Run(&ProgramPass{Analyzer: a, Prog: prog, Fset: fset, diags: &diags})
	}

	inTarget := prog.targetFiles()
	var ignores map[ignoreKey]bool
	var kept []Diagnostic
	for _, pkg := range prog.Targets {
		ig, malformed := collectIgnores(pkg.Fset, pkg.Files)
		if ignores == nil {
			ignores = ig
		} else {
			for k := range ig {
				ignores[k] = true
			}
		}
		kept = append(kept, malformed...)
	}
	for _, d := range diags {
		if !inTarget[d.Pos.Filename] {
			continue
		}
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept
}

// ignoreKey addresses one suppressed rule on one source line.
type ignoreKey struct {
	file string
	line int
	rule string
}

// collectIgnores scans the files' comments for //lint:ignore directives. A
// directive suppresses the named rule on its own line (trailing comment)
// and on the following line (directive on its own line). Directives missing
// a rule or a reason are returned as "lint" diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) (map[ignoreKey]bool, []Diagnostic) {
	ignores := map[ignoreKey]bool{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Rule:    "lint",
						Message: `malformed directive: want "//lint:ignore <rule> <reason>"`,
					})
					continue
				}
				for _, rule := range strings.Split(fields[0], ",") {
					ignores[ignoreKey{pos.Filename, pos.Line, rule}] = true
					ignores[ignoreKey{pos.Filename, pos.Line + 1, rule}] = true
				}
			}
		}
	}
	return ignores, malformed
}
