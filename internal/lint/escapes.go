package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The escapes gate wires the compiler's own escape analysis into the hot-
// path perf story: `coscale-lint -escapes` runs `go build -gcflags=-m`,
// keeps every heap-escape diagnostic that falls inside a (transitively)
// //hot:path function — the same closure hotprop checks — and compares the
// result against the committed ESCAPES_baseline.json. A hot function that
// gains a heap escape fails the gate before any benchmark has to notice the
// allocation; `coscale-lint -escapes -update` (make escapes-baseline)
// re-records the baseline after a reviewed change.
//
// Records are matched by (file, function, message) with multiplicity, not
// by line number, so unrelated edits that shift lines do not churn the
// gate. Escape analysis results legitimately differ between compiler
// versions; the baseline records the go version that produced it, and a
// mismatched toolchain downgrades failures to warnings so the gate only
// bites where its baseline is comparable.

// An EscapeRecord is one compiler heap-escape diagnostic attributed to a
// transitively hot function.
type EscapeRecord struct {
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Func    string `json:"func"`    // display name, e.g. "perf.(*StepTable).Reset"
	Message string `json:"message"` // e.g. "make([]float64, n) escapes to heap"
}

func (r EscapeRecord) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", r.File, r.Line, r.Func, r.Message)
}

// escapeKey identifies a record for baseline matching, deliberately
// ignoring the line number.
type escapeKey struct{ File, Func, Message string }

// EscapeBaseline is the schema of ESCAPES_baseline.json.
type EscapeBaseline struct {
	Go      string         `json:"go"` // runtime.Version() that produced the records
	Escapes []EscapeRecord `json:"escapes"`
}

// escapeLine matches one compiler diagnostic line.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+)$`)

// isEscapeMessage keeps the heap-escape diagnostics and drops inlining and
// does-not-escape chatter.
func isEscapeMessage(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// hotRanges maps each (root-relative) file to the hot-closure functions it
// holds, as line intervals in ascending order.
type hotRange struct {
	start, end int
	fn         *FuncInfo
}

// collectHotRanges indexes the hot closure's function bodies by file and
// line span.
func collectHotRanges(prog *Program, root string) map[string][]hotRange {
	reach := hotClosure(prog)
	ranges := map[string][]hotRange{}
	for _, f := range reach.Order() {
		start := prog.Fset().Position(f.Decl.Pos())
		end := prog.Fset().Position(f.Decl.End())
		file := start.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		ranges[file] = append(ranges[file], hotRange{start: start.Line, end: end.Line, fn: f})
	}
	for file := range ranges {
		rs := ranges[file]
		sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
		ranges[file] = rs
	}
	return ranges
}

// compilerEscapes runs the compiler's escape analysis over the whole module
// and returns the raw diagnostics. The -m output is replayed from the build
// cache on repeat runs, so the gate costs one real build at most.
func compilerEscapes(root string) ([]string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return strings.Split(string(out), "\n"), nil
}

// hotEscapes filters compiler diagnostics down to heap escapes inside the
// hot closure, in (file, line) order.
func hotEscapes(lines []string, ranges map[string][]hotRange) []EscapeRecord {
	var recs []EscapeRecord
	for _, line := range lines {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !isEscapeMessage(m[3]) {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		for _, r := range ranges[file] {
			if lineNo >= r.start && lineNo <= r.end {
				recs = append(recs, EscapeRecord{File: file, Line: lineNo, Func: r.fn.Name(), Message: m[3]})
				break
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
	return recs
}

// runEscapes implements the -escapes mode. With update it rewrites the
// baseline; otherwise it diffs current hot-closure escapes against the
// baseline and fails on new ones.
func runEscapes(prog *Program, root, baselinePath string, update bool, stdout, stderr io.Writer) int {
	ranges := collectHotRanges(prog, root)
	lines, err := compilerEscapes(root)
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	recs := hotEscapes(lines, ranges)

	if update {
		data, err := json.MarshalIndent(EscapeBaseline{Go: runtime.Version(), Escapes: recs}, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		fmt.Fprintf(stdout, "wrote %s: %d hot-closure escapes under %s\n",
			baselinePath, len(recs), runtime.Version())
		return ExitClean
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "coscale-lint: no escapes baseline: %v (run coscale-lint -escapes -update)\n", err)
		return ExitError
	}
	var base EscapeBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "coscale-lint: %s: %v\n", baselinePath, err)
		return ExitError
	}

	allowed := map[escapeKey]int{}
	for _, r := range base.Escapes {
		allowed[escapeKey{r.File, r.Func, r.Message}]++
	}
	var fresh []EscapeRecord
	for _, r := range recs {
		k := escapeKey{r.File, r.Func, r.Message}
		if allowed[k] > 0 {
			allowed[k]--
			continue
		}
		fresh = append(fresh, r)
	}
	var gone int
	for _, n := range allowed {
		gone += n
	}

	versionMismatch := base.Go != runtime.Version()
	if versionMismatch {
		fmt.Fprintf(stderr, "coscale-lint: warning: escapes baseline was built with %s, running %s; escape analysis differs across compilers — reporting only (regenerate with make escapes-baseline)\n",
			base.Go, runtime.Version())
	}
	for _, r := range fresh {
		fmt.Fprintf(stdout, "%s (new heap escape in hot closure)\n", r)
	}
	if gone > 0 {
		fmt.Fprintf(stderr, "coscale-lint: note: %d baseline escape(s) no longer present; tighten with make escapes-baseline\n", gone)
	}
	if len(fresh) > 0 && !versionMismatch {
		fmt.Fprintf(stderr, "coscale-lint: %d new heap escape(s) in the //hot:path closure (baseline %s)\n", len(fresh), baselinePath)
		return ExitFindings
	}
	fmt.Fprintf(stdout, "escapes: %d hot-closure escapes, baseline %d, no regressions\n", len(recs), len(base.Escapes))
	return ExitClean
}
