package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureGroups maps each golden file to the fixture packages it covers.
// Directories are relative to testdata/src; import paths are derived the
// same way the driver derives them, so path-scoped rules fire exactly as
// they would on real packages. Each group is checked as one program, so the
// interprocedural analyzers see all of its packages at once.
var fixtureGroups = []struct {
	golden string
	dirs   []string
}{
	{"floateq", []string{"floateq/bad", "floateq/clean"}},
	{"unitliteral", []string{"unitliteral/bad", "unitliteral/clean"}},
	{"determinism", []string{"sim/determbad", "sim/determclean", "fault/determbad", "fault/determclean", "dram/determexempt"}},
	{"nopanic", []string{"nopanic/bad", "nopanic/clean", "server/handlerbad", "server/handlerclean"}},
	{"noprint", []string{"noprint/bad", "noprint/clean"}},
	{"hotalloc", []string{"hotalloc/bad", "hotalloc/clean"}},
	{"hotprop", []string{"hotprop/bad", "hotprop/clean"}},
	{"dettaint", []string{"sim/taintbad", "sim/taintclean", "dtutil/clock"}},
	{"ctxprop", []string{"server/ctxbad", "server/ctxclean"}},
	{"ignore", []string{"ignore/bad"}},
}

// fixtureLoader returns a loader whose fixture fallback lets fixture
// packages import each other under the coscale/internal/ convention
// (dettaint's scoped caller imports its out-of-scope helper this way).
func fixtureLoader(root, testdata string) *Loader {
	loader := NewLoader(root, "coscale")
	loader.FixtureDirs = []string{filepath.Join(testdata, "src")}
	return loader
}

// fixtureDiags loads the fixture dirs as one program through a shared
// loader and runs the full suite — per-package and interprocedural — over
// it.
func fixtureDiags(t *testing.T, loader *Loader, testdata string, dirs []string) []Diagnostic {
	t.Helper()
	targets := make([]*Package, 0, len(dirs))
	for _, rel := range dirs {
		dir := filepath.Join(testdata, "src", rel)
		pkg, err := loader.LoadDir(dir, "coscale/internal/"+rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		targets = append(targets, pkg)
	}
	return Check(BuildProgram(loader, targets), Analyzers(), ProgramAnalyzers())
}

// checkFixtures renders a group's diagnostics with testdata-relative paths.
func checkFixtures(t *testing.T, loader *Loader, testdata string, dirs []string) string {
	t.Helper()
	var out strings.Builder
	for _, d := range fixtureDiags(t, loader, testdata, dirs) {
		if r, err := filepath.Rel(testdata, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(r)
		}
		fmt.Fprintln(&out, d)
	}
	return out.String()
}

func TestAnalyzersGolden(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := fixtureLoader(root, testdata)
	for _, g := range fixtureGroups {
		t.Run(g.golden, func(t *testing.T) {
			got := checkFixtures(t, loader, testdata, g.dirs)
			goldenFile := filepath.Join(testdata, "golden", g.golden+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenFile)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestBadFixturesFindEachRule asserts every analyzer actually fires on its
// bad fixture — a golden file of the wrong shape cannot mask a silent
// analyzer.
func TestBadFixturesFindEachRule(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := fixtureLoader(root, testdata)
	cases := map[string]string{
		"floateq":     "floateq/bad",
		"unitliteral": "unitliteral/bad",
		"determinism": "sim/determbad",
		"nopanic":     "nopanic/bad",
		"noprint":     "noprint/bad",
		"hotalloc":    "hotalloc/bad",
		"hotprop":     "hotprop/bad",
		"dettaint":    "sim/taintbad",
		"ctxprop":     "server/ctxbad",
		"lint":        "ignore/bad",
	}
	for rule, rel := range cases {
		dirs := []string{rel}
		if rule == "dettaint" {
			dirs = append(dirs, "dtutil/clock") // taint source lives in the helper package
		}
		found := false
		for _, d := range fixtureDiags(t, loader, testdata, dirs) {
			if d.Rule == rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rule %s reported nothing on %s", rule, rel)
		}
	}
}

// TestHotPropChains pins the interprocedural diagnostics to their call
// chains: the multi-hop static chain and the interface-dispatch hop must
// both be spelled out.
func TestHotPropChains(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := fixtureLoader(root, testdata)
	diags := fixtureDiags(t, loader, testdata, []string{"hotprop/bad"})
	wantChains := []string{
		"bad.step → bad.total → bad.fill",
		"bad.reduce → (bad.summer).sum → bad.sliceSummer.sum",
	}
	for _, want := range wantChains {
		found := false
		for _, d := range diags {
			if d.Rule == "hotprop" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no hotprop diagnostic carries chain %q; got %v", want, diags)
		}
	}
}

// TestCallGraphConservative pins the function-value policy: a call of a
// function value produces an unknown site, not invented edges, so the
// callback's allocation stays unreported.
func TestCallGraphConservative(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := fixtureLoader(root, testdata)
	dir := filepath.Join(testdata, "src", "hotprop/clean")
	pkg, err := loader.LoadDir(dir, "coscale/internal/hotprop/clean")
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildProgram(loader, []*Package{pkg})
	graph := prog.CallGraph()
	var apply, callback *FuncInfo
	for _, f := range prog.FuncsInOrder() {
		switch f.Obj.Name() {
		case "apply":
			apply = f
		case "callback":
			callback = f
		}
	}
	if apply == nil || callback == nil {
		t.Fatal("fixture functions not indexed")
	}
	if len(graph.Unknown[apply]) == 0 {
		t.Error("apply's function-value call was not recorded as unknown")
	}
	for _, e := range graph.Out[apply] {
		if e.Callee == callback {
			t.Error("call graph invented an edge through a function value")
		}
	}
	if hotClosure(prog).Contains(callback) {
		t.Error("callback must not be in the hot closure")
	}
}

// TestDriverExitCodes runs the real driver entry point over each fixture:
// every violating package must fail the build, every clean one must pass.
// The dettaint fixtures are absent here — their cross-package import only
// resolves through the test loader's fixture fallback, not the CLI.
func TestDriverExitCodes(t *testing.T) {
	testdata := testdataDir(t)
	bad := []string{"floateq/bad", "unitliteral/bad", "sim/determbad", "fault/determbad", "nopanic/bad", "server/handlerbad", "noprint/bad", "hotalloc/bad", "hotprop/bad", "server/ctxbad", "ignore/bad"}
	for _, rel := range bad {
		var out, errOut bytes.Buffer
		if code := Main([]string{filepath.Join(testdata, "src", rel)}, &out, &errOut); code != ExitFindings {
			t.Errorf("Main(%s) = %d, want %d\nstdout: %s\nstderr: %s",
				rel, code, ExitFindings, out.String(), errOut.String())
		}
	}
	clean := []string{"floateq/clean", "unitliteral/clean", "sim/determclean", "fault/determclean", "dram/determexempt", "nopanic/clean", "server/handlerclean", "noprint/clean", "hotalloc/clean", "hotprop/clean", "server/ctxclean"}
	args := make([]string, len(clean))
	for i, rel := range clean {
		args[i] = filepath.Join(testdata, "src", rel)
	}
	var out, errOut bytes.Buffer
	if code := Main(args, &out, &errOut); code != ExitClean {
		t.Errorf("Main(clean fixtures) = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitClean, out.String(), errOut.String())
	}
}

// TestRepoIsClean lints the entire repository — per-package and
// interprocedural suites both — the gate that CI runs, kept inside go test
// so plain `go test ./...` enforces it too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	var out, errOut bytes.Buffer
	code := Main([]string{filepath.Join(repoRoot(t), "...")}, &out, &errOut)
	if code != ExitClean {
		t.Errorf("repository is not lint-clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

// TestEscapesGate runs the escape-analysis gate against the committed
// baseline (must pass regardless of toolchain: a version mismatch
// downgrades to warnings), then drops one baseline record and checks the
// gate actually fails on the reappeared escape when versions match.
func TestEscapesGate(t *testing.T) {
	if testing.Short() {
		t.Skip("escape gate skipped in -short mode")
	}
	root := repoRoot(t)
	var out, errOut bytes.Buffer
	if code := Main([]string{"-escapes"}, &out, &errOut); code != ExitClean {
		t.Fatalf("escapes gate failed against committed baseline (exit %d):\n%s%s",
			code, out.String(), errOut.String())
	}

	data, err := os.ReadFile(filepath.Join(root, "ESCAPES_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var base EscapeBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Go != runtime.Version() {
		t.Skipf("baseline built with %s, running %s; regression path not comparable", base.Go, runtime.Version())
	}
	if len(base.Escapes) == 0 {
		t.Skip("baseline records no hot-closure escapes; nothing to drop")
	}
	trimmed := EscapeBaseline{Go: base.Go, Escapes: base.Escapes[:len(base.Escapes)-1]}
	tdata, err := json.Marshal(trimmed)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(tmp, tdata, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-escapes", "-baseline", tmp}, &out, &errOut); code != ExitFindings {
		t.Errorf("gate with a trimmed baseline = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitFindings, out.String(), errOut.String())
	}
}

// TestEscapeLineParsing pins the compiler diagnostic formats the gate
// consumes.
func TestEscapeLineParsing(t *testing.T) {
	cases := []struct {
		line string
		file string
		keep bool
	}{
		{"internal/perf/perf.go:326:14: make([]float64, n) escapes to heap", "internal/perf/perf.go", true},
		{"internal/sim/engine.go:100:6: moved to heap: cfg", "internal/sim/engine.go", true},
		{"internal/perf/perf.go:10:6: can inline GrowFloats", "internal/perf/perf.go", false},
		{"internal/perf/perf.go:12:2: n does not escape", "internal/perf/perf.go", false},
		{"# coscale/internal/perf", "", false},
	}
	for _, c := range cases {
		m := escapeLine.FindStringSubmatch(c.line)
		keep := m != nil && isEscapeMessage(m[3])
		if keep != c.keep {
			t.Errorf("line %q: keep = %v, want %v", c.line, keep, c.keep)
		}
		if c.keep && m[1] != c.file {
			t.Errorf("line %q: file = %q, want %q", c.line, m[1], c.file)
		}
	}
}

func TestMainList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Main([]string{"-list"}, &out, &errOut); code != ExitClean {
		t.Fatalf("Main(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
	for _, a := range ProgramAnalyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing program analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

// TestMainJSON checks the machine-readable output: a decodable array whose
// entries carry file, line, rule and message.
func TestMainJSON(t *testing.T) {
	testdata := testdataDir(t)
	var out, errOut bytes.Buffer
	code := Main([]string{"-json", filepath.Join(testdata, "src", "hotprop/bad")}, &out, &errOut)
	if code != ExitFindings {
		t.Fatalf("Main(-json hotprop/bad) = %d, want %d\nstderr: %s", code, ExitFindings, errOut.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output is empty for a violating package")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestImportPathFor(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("home", "x", "repo")
	cases := []struct {
		dir, want string
	}{
		{root, "coscale"},
		{filepath.Join(root, "internal", "sim"), "coscale/internal/sim"},
		{filepath.Join(root, "internal", "lint", "testdata", "src", "sim", "determbad"), "coscale/internal/sim/determbad"},
	}
	for _, c := range cases {
		got, err := importPathFor(root, "coscale", c.dir)
		if err != nil {
			t.Fatalf("importPathFor(%s): %v", c.dir, err)
		}
		if got != c.want {
			t.Errorf("importPathFor(%s) = %q, want %q", c.dir, got, c.want)
		}
	}
	if _, err := importPathFor(root, "coscale", filepath.Dir(root)); err == nil {
		t.Error("importPathFor accepted a directory outside the module")
	}
}

// repoRoot locates the module root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "coscale" {
		t.Fatalf("unexpected module path %q", modPath)
	}
	return root
}

func testdataDir(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(cwd, "testdata")
}
