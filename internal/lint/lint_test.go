package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureGroups maps each golden file to the fixture packages it covers.
// Directories are relative to testdata/src; import paths are derived the
// same way the driver derives them, so path-scoped rules fire exactly as
// they would on real packages.
var fixtureGroups = []struct {
	golden string
	dirs   []string
}{
	{"floateq", []string{"floateq/bad", "floateq/clean"}},
	{"unitliteral", []string{"unitliteral/bad", "unitliteral/clean"}},
	{"determinism", []string{"sim/determbad", "sim/determclean", "fault/determbad", "fault/determclean", "dram/determexempt"}},
	{"nopanic", []string{"nopanic/bad", "nopanic/clean", "server/handlerbad", "server/handlerclean"}},
	{"noprint", []string{"noprint/bad", "noprint/clean"}},
	{"hotalloc", []string{"hotalloc/bad", "hotalloc/clean"}},
	{"ignore", []string{"ignore/bad"}},
}

// checkFixtures loads every fixture dir of a group through a shared loader
// and renders the full suite's diagnostics with testdata-relative paths.
func checkFixtures(t *testing.T, loader *Loader, testdata string, dirs []string) string {
	t.Helper()
	var out strings.Builder
	for _, rel := range dirs {
		dir := filepath.Join(testdata, "src", rel)
		pkg, err := loader.LoadDir(dir, "coscale/internal/"+rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		for _, d := range CheckPackage(pkg, Analyzers()) {
			if r, err := filepath.Rel(testdata, d.Pos.Filename); err == nil {
				d.Pos.Filename = filepath.ToSlash(r)
			}
			fmt.Fprintln(&out, d)
		}
	}
	return out.String()
}

func TestAnalyzersGolden(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := NewLoader(root, "coscale")
	for _, g := range fixtureGroups {
		t.Run(g.golden, func(t *testing.T) {
			got := checkFixtures(t, loader, testdata, g.dirs)
			goldenFile := filepath.Join(testdata, "golden", g.golden+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenFile)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestBadFixturesFindEachRule asserts every analyzer actually fires on its
// bad fixture — a golden file of the wrong shape cannot mask a silent
// analyzer.
func TestBadFixturesFindEachRule(t *testing.T) {
	root, testdata := repoRoot(t), testdataDir(t)
	loader := NewLoader(root, "coscale")
	cases := map[string]string{
		"floateq":     "floateq/bad",
		"unitliteral": "unitliteral/bad",
		"determinism": "sim/determbad",
		"nopanic":     "nopanic/bad",
		"noprint":     "noprint/bad",
		"hotalloc":    "hotalloc/bad",
		"lint":        "ignore/bad",
	}
	for rule, rel := range cases {
		pkg, err := loader.LoadDir(filepath.Join(testdata, "src", rel), "coscale/internal/"+rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		found := false
		for _, d := range CheckPackage(pkg, Analyzers()) {
			if d.Rule == rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rule %s reported nothing on %s", rule, rel)
		}
	}
}

// TestDriverExitCodes runs the real driver entry point over each fixture:
// every violating package must fail the build, every clean one must pass.
func TestDriverExitCodes(t *testing.T) {
	testdata := testdataDir(t)
	bad := []string{"floateq/bad", "unitliteral/bad", "sim/determbad", "fault/determbad", "nopanic/bad", "server/handlerbad", "noprint/bad", "hotalloc/bad", "ignore/bad"}
	for _, rel := range bad {
		var out, errOut bytes.Buffer
		if code := Main([]string{filepath.Join(testdata, "src", rel)}, &out, &errOut); code != ExitFindings {
			t.Errorf("Main(%s) = %d, want %d\nstdout: %s\nstderr: %s",
				rel, code, ExitFindings, out.String(), errOut.String())
		}
	}
	clean := []string{"floateq/clean", "unitliteral/clean", "sim/determclean", "fault/determclean", "dram/determexempt", "nopanic/clean", "server/handlerclean", "noprint/clean", "hotalloc/clean"}
	args := make([]string, len(clean))
	for i, rel := range clean {
		args[i] = filepath.Join(testdata, "src", rel)
	}
	var out, errOut bytes.Buffer
	if code := Main(args, &out, &errOut); code != ExitClean {
		t.Errorf("Main(clean fixtures) = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitClean, out.String(), errOut.String())
	}
}

// TestRepoIsClean lints the entire repository: the gate that CI runs, kept
// inside go test so plain `go test ./...` enforces it too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	var out, errOut bytes.Buffer
	code := Main([]string{filepath.Join(repoRoot(t), "...")}, &out, &errOut)
	if code != ExitClean {
		t.Errorf("repository is not lint-clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

func TestMainList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Main([]string{"-list"}, &out, &errOut); code != ExitClean {
		t.Fatalf("Main(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestImportPathFor(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("home", "x", "repo")
	cases := []struct {
		dir, want string
	}{
		{root, "coscale"},
		{filepath.Join(root, "internal", "sim"), "coscale/internal/sim"},
		{filepath.Join(root, "internal", "lint", "testdata", "src", "sim", "determbad"), "coscale/internal/sim/determbad"},
	}
	for _, c := range cases {
		got, err := importPathFor(root, "coscale", c.dir)
		if err != nil {
			t.Fatalf("importPathFor(%s): %v", c.dir, err)
		}
		if got != c.want {
			t.Errorf("importPathFor(%s) = %q, want %q", c.dir, got, c.want)
		}
	}
	if _, err := importPathFor(root, "coscale", filepath.Dir(root)); err == nil {
		t.Error("importPathFor accepted a directory outside the module")
	}
}

// repoRoot locates the module root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "coscale" {
		t.Fatalf("unexpected module path %q", modPath)
	}
	return root
}

func testdataDir(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(cwd, "testdata")
}
