package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EdgeKind distinguishes how a call site resolves to its callee.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a known function or concrete method.
	EdgeStatic EdgeKind = iota
	// EdgeDispatch is a call through an interface method, resolved
	// conservatively to every method in the program whose receiver type
	// implements the interface (implements-matching).
	EdgeDispatch
)

// An Edge is one resolved call from a caller's body.
type Edge struct {
	Callee *FuncInfo
	Kind   EdgeKind
	Via    string    // for EdgeDispatch, the interface method, e.g. "(policy.Policy).Decide"
	Pos    token.Pos // call site
}

// Graph is the program's call graph: static call and method edges plus
// conservative interface-dispatch edges. Calls of function values (fields,
// parameters, locals of function type) have no statically known target;
// they are recorded per caller in Unknown so analyzers can stay
// deliberately conservative about them rather than silently guessing.
type Graph struct {
	prog    *Program
	Out     map[*FuncInfo][]Edge
	Unknown map[*FuncInfo][]token.Pos
}

// CallGraph builds (once, memoized) the program's call graph. Edges are
// appended in source order, so every traversal that respects slice order is
// deterministic.
func (p *Program) CallGraph() *Graph {
	if p.graph != nil {
		return p.graph
	}
	g := &Graph{
		prog:    p,
		Out:     map[*FuncInfo][]Edge{},
		Unknown: map[*FuncInfo][]token.Pos{},
	}
	dispatchCache := map[*types.Func][]*FuncInfo{}
	for _, f := range p.funcs {
		if f.Decl.Body == nil {
			continue
		}
		info := f.Pkg.Info
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.addCall(f, info, call, dispatchCache)
			return true
		})
	}
	p.graph = g
	return g
}

// addCall resolves one call site into zero or more edges out of caller.
// Function literals invoked where they are written contribute their body's
// calls to the enclosing function (ast.Inspect walks into them), so a
// direct `func(){...}()` needs no edge of its own.
func (g *Graph) addCall(caller *FuncInfo, info *types.Info, call *ast.CallExpr, dispatchCache map[*types.Func][]*FuncInfo) {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if e, ok := unwrapFunExpr(ix.X); ok {
			fun = e
		}
	case *ast.IndexListExpr:
		if e, ok := unwrapFunExpr(ix.X); ok {
			fun = e
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			g.addStatic(caller, obj, call.Pos())
		case *types.Builtin, *types.TypeName, nil:
			// builtins allocate or convert; no user code runs
		default:
			g.addUnknown(caller, call.Pos()) // function-valued variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				g.addUnknown(caller, call.Pos())
				return
			}
			if types.IsInterface(sel.Recv()) {
				g.addDispatch(caller, sel.Recv(), m, call.Pos(), dispatchCache)
				return
			}
			g.addStatic(caller, m, call.Pos())
			return
		}
		// Qualified reference: pkg.Func, pkg.Var, or pkg.Type (conversion).
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			g.addStatic(caller, obj, call.Pos())
		case *types.TypeName, nil:
		default:
			g.addUnknown(caller, call.Pos()) // pkg-level function variable, struct field
		}
	case *ast.FuncLit:
		// Direct invocation of a literal: its body is part of the caller.
	default:
		g.addUnknown(caller, call.Pos()) // call of a call's result, map/slice element, ...
	}
}

func (g *Graph) addStatic(caller *FuncInfo, callee *types.Func, pos token.Pos) {
	if target, ok := g.prog.Funcs[origin(callee)]; ok {
		g.Out[caller] = append(g.Out[caller], Edge{Callee: target, Kind: EdgeStatic, Pos: pos})
	}
}

func (g *Graph) addUnknown(caller *FuncInfo, pos token.Pos) {
	g.Unknown[caller] = append(g.Unknown[caller], pos)
}

// addDispatch adds one edge per program method implementing the called
// interface method. Candidates come from the program's named-type index in
// deterministic order; pointer method sets are used so both value and
// pointer receivers match.
func (g *Graph) addDispatch(caller *FuncInfo, recv types.Type, m *types.Func, pos token.Pos, cache map[*types.Func][]*FuncInfo) {
	key := origin(m)
	targets, ok := cache[key]
	if !ok {
		iface, isIface := recv.Underlying().(*types.Interface)
		if !isIface {
			return
		}
		for _, named := range g.prog.named {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
			impl, isFunc := obj.(*types.Func)
			if !isFunc {
				continue
			}
			if target, inProg := g.prog.Funcs[origin(impl)]; inProg {
				targets = append(targets, target)
			}
		}
		cache[key] = targets
	}
	via := "(" + ifaceDisplayName(recv, m) + ")." + m.Name()
	for _, t := range targets {
		g.Out[caller] = append(g.Out[caller], Edge{Callee: t, Kind: EdgeDispatch, Via: via, Pos: pos})
	}
}

// ifaceDisplayName names the dispatching interface for diagnostics:
// "policy.Policy" for named interfaces, "interface" for anonymous ones.
func ifaceDisplayName(recv types.Type, m *types.Func) string {
	if named, ok := recv.(*types.Named); ok {
		name := named.Obj().Name()
		if p := named.Obj().Pkg(); p != nil {
			return p.Name() + "." + name
		}
		return name
	}
	if p := m.Pkg(); p != nil {
		return p.Name() + ".interface"
	}
	return "interface"
}

// A Reach is the result of a reachability sweep: every function reachable
// from the root set, with the first-discovered (breadth-first, so shortest)
// call chain back to a root.
type Reach struct {
	parent map[*FuncInfo]*FuncInfo
	via    map[*FuncInfo]Edge
	order  []*FuncInfo // BFS discovery order, roots first
}

// ReachableFrom runs a breadth-first sweep from roots. Roots must already
// be in deterministic order; edge slices are in source order, so discovery
// order — and therefore every reported chain — is reproducible.
func (g *Graph) ReachableFrom(roots []*FuncInfo) *Reach {
	r := &Reach{parent: map[*FuncInfo]*FuncInfo{}, via: map[*FuncInfo]Edge{}}
	queue := make([]*FuncInfo, 0, len(roots))
	for _, root := range roots {
		if _, ok := r.parent[root]; ok {
			continue
		}
		r.parent[root] = nil
		r.order = append(r.order, root)
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range g.Out[f] {
			if _, ok := r.parent[e.Callee]; ok {
				continue
			}
			r.parent[e.Callee] = f
			r.via[e.Callee] = e
			r.order = append(r.order, e.Callee)
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Contains reports whether f was reached.
func (r *Reach) Contains(f *FuncInfo) bool {
	_, ok := r.parent[f]
	return ok
}

// Order returns every reached function in BFS discovery order.
func (r *Reach) Order() []*FuncInfo { return r.order }

// Chain renders the shortest discovered call chain from a root to f, e.g.
// "sim.(*Engine).advance → perf.(*Solver).SolveTable → perf.GrowFloats".
// Interface-dispatch hops name the interface method they pass through.
func (r *Reach) Chain(f *FuncInfo) string {
	var parts []string
	for cur := f; cur != nil; cur = r.parent[cur] {
		name := cur.Name()
		if e, ok := r.via[cur]; ok && e.Kind == EdgeDispatch {
			name = e.Via + " → " + name
		}
		parts = append(parts, name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

// Root returns the root of f's discovered chain.
func (r *Reach) Root(f *FuncInfo) *FuncInfo {
	cur := f
	for r.parent[cur] != nil {
		cur = r.parent[cur]
	}
	return cur
}
