// Package bad holds floateq violations: exact equality on computed floats.
package bad

type energy float64

func cmp(a, b float64, e energy) int {
	n := 0
	if a == b {
		n++
	}
	if a != 0 {
		n++
	}
	if e == 0.5 {
		n++
	}
	return n
}
