// Package clean holds code floateq must accept: constant folding, the NaN
// self-test, integer equality, ordered comparisons, and a suppressed site.
package clean

const half = 0.5
const ratio = 1.0 / 2.0

func ok(x float64, n int) bool {
	if half == ratio {
		return true
	}
	if x != x {
		return true // NaN
	}
	if n == 3 {
		return true
	}
	if x <= 0 {
		return true
	}
	//lint:ignore floateq demonstrating the escape hatch
	return x == 1.0
}
