// Package bad holds a malformed suppression directive: it names a rule but
// gives no reason, so the driver reports the directive itself.
package bad

//lint:ignore floateq
func compare(a, b float64) bool { return a < b }
