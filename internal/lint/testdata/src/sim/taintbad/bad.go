// Package bad holds dettaint violations: a determinism-scoped package that
// reaches nondeterminism through an out-of-scope helper, and a goroutine
// fan-out whose completion order is scheduler-dependent.
package bad

import "coscale/internal/dtutil/clock"

// step pulls a wall-clock stamp into simulated state through a helper the
// per-package determinism rule never inspects.
func step() int64 {
	return clock.Stamp()
}

// fanOut folds results in goroutine completion order.
func fanOut(n int) {
	for i := 0; i < n; i++ {
		go work(i)
	}
}

func work(int) {}

// pool mirrors internal/core's persistent worker set: start launches lanes
// without a reasoned ignore, so dettaint must flag the go statement even
// though the shard protocol could well be deterministic.
type pool struct {
	job chan int
}

func (p *pool) start(lanes int) {
	for i := 0; i < lanes; i++ {
		go p.worker()
	}
}

func (p *pool) worker() {
	for range p.job {
	}
}
