// Package determclean holds deterministic code the analyzer must accept: a
// locally seeded generator and sorted map iteration.
package determclean

import (
	"math/rand"
	"sort"
)

func epoch(weights map[string]float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sum := rng.Float64()
	keys := make([]string, 0, len(weights))
	//lint:ignore determinism keys are sorted before use
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}
