// Package determbad holds determinism violations inside a bit-reproducible
// package path (coscale/internal/sim/...).
package determbad

import (
	"math/rand"
	"time"
)

func epoch(weights map[string]float64) float64 {
	start := time.Now()
	_ = start
	sum := rand.Float64()
	for _, w := range weights {
		sum += w
	}
	return sum
}
