// Package clean uses only the deterministic surface of an out-of-scope
// helper; dettaint must stay silent.
package clean

import "coscale/internal/dtutil/clock"

// step sorts through the helper; no taint source is reachable.
func step(xs []int) []int {
	return clock.Sorted(xs)
}

// pool mirrors internal/core's persistent worker set; the go statement
// carries the reasoned ignore the rule demands, so dettaint stays silent.
type pool struct {
	job chan int
}

func (p *pool) start(lanes int) {
	for i := 0; i < lanes; i++ {
		//lint:ignore dettaint fixed index shards merged in index order after the channel join
		go p.worker()
	}
}

func (p *pool) worker() {
	for range p.job {
	}
}
