// Package clean uses only the deterministic surface of an out-of-scope
// helper; dettaint must stay silent.
package clean

import "coscale/internal/dtutil/clock"

// step sorts through the helper; no taint source is reachable.
func step(xs []int) []int {
	return clock.Sorted(xs)
}
