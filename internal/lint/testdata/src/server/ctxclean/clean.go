// Package clean threads cancellation correctly: derived contexts stay in
// the chain, the Context-variant sibling is chosen when a ctx is in scope,
// and Background is fine in functions with no ctx of their own.
package clean

import "context"

type store struct{}

// Flush writes everything out with no way to stop early.
func (s *store) Flush() {}

// FlushContext is the cancellable variant.
func (s *store) FlushContext(ctx context.Context) { _ = ctx }

// runJob derives from its caller's ctx and keeps the chain intact.
func runJob(ctx context.Context, s *store) {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	execute(ctx2)
	s.FlushContext(ctx)
}

// boot has no ctx of its own; creating the root context here is the
// legitimate use of Background.
func boot(s *store) {
	execute(context.Background())
	s.Flush()
}

func execute(ctx context.Context) { _ = ctx }
