// Package handlerclean is the error-returning counterpart of handlerbad:
// the serving layer's sanctioned shape, where every failure travels up as
// an error and is rendered as a JSON response by the wrap adapter.
package handlerclean

import (
	"errors"
	"net/http"
)

var errMissingWorkload = errors.New("workload is required")

type request struct {
	Workload string
}

func (q request) normalized() (request, error) {
	if q.Workload == "" {
		return q, errMissingWorkload
	}
	return q, nil
}

func handleSimulate(w http.ResponseWriter, r *http.Request) error {
	q, err := request{}.normalized()
	if err != nil {
		return err
	}
	_ = q
	w.WriteHeader(http.StatusOK)
	return nil
}
