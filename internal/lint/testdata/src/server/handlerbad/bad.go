// Package handlerbad holds nopanic violations in serving-layer shape: HTTP
// handlers must report failures as errors for the wrap adapter to render,
// never panic — a panic tears down the connection mid-response and skips
// the job-state bookkeeping.
package handlerbad

import "net/http"

type request struct {
	Workload string
}

func handleSimulate(w http.ResponseWriter, r *http.Request) error {
	q := request{}
	if q.Workload == "" {
		panic("workload is required")
	}
	w.WriteHeader(http.StatusOK)
	return nil
}

func mustNormalize(q request) request {
	if q.Workload == "" {
		panic(q)
	}
	return q
}
