// Package bad holds ctxprop violations: a function with its own ctx in
// scope that severs the cancellation chain, both by passing
// context.Background into a ctx-capable callee and by picking the
// uncancellable sibling of a Context-variant pair.
package bad

import "context"

type store struct{}

// Flush writes everything out with no way to stop early.
func (s *store) Flush() {}

// FlushContext is the cancellable variant callers should prefer.
func (s *store) FlushContext(ctx context.Context) { _ = ctx }

// runJob receives the request's ctx and then drops it twice.
func runJob(ctx context.Context, s *store) {
	execute(context.Background())
	s.Flush()
}

func execute(ctx context.Context) { _ = ctx }
