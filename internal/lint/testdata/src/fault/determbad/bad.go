// Package determbad holds determinism violations inside the fault-injection
// package path (coscale/internal/fault/...): injected faults must replay
// bit-identically from their seed, so wall-clock reads, the global rand
// source, and map iteration are all forbidden here too.
package determbad

import (
	"math/rand"
	"time"
)

func perturb(counters map[string]uint64) uint64 {
	jitter := uint64(time.Now().UnixNano())
	if rand.Intn(2) == 0 {
		jitter++
	}
	for _, c := range counters {
		jitter ^= c
	}
	return jitter
}
