// Package determclean holds deterministic fault-injection code the analyzer
// must accept: a seeded counter-mode generator, mirroring how the real
// internal/fault package derives every perturbation from its configured seed.
package determclean

import "sort"

func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func perturb(counters map[string]uint64, seed uint64) uint64 {
	names := make([]string, 0, len(counters))
	//lint:ignore determinism keys are sorted before use
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := seed
	for _, n := range names {
		out ^= counters[n] + splitmix(&seed)
	}
	return out
}
