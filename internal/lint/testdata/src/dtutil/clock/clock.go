// Package clock is a helper outside the determinism-scoped packages. Its
// own package path exempts it from the per-package determinism rule; it
// becomes determinism-critical only when a scoped package calls into it,
// which is exactly the hole dettaint closes.
package clock

import (
	"sort"
	"time"
)

// Stamp leaks wall-clock time to whoever calls it.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Sorted is deterministic and safe to call from anywhere.
func Sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
