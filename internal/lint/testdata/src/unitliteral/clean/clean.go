// Package clean holds code unitliteral must accept: unit-constant
// multiples, large literals outside frequency contexts, small literals, and
// a suppressed site.
package clean

import "coscale/internal/freq"

type cfg struct {
	BusHz    float64
	RowBytes int
}

func build() cfg {
	c := cfg{BusHz: 800 * freq.MHz, RowBytes: 8000000}
	coreHz := 4 * freq.GHz
	_ = coreHz
	step := 66
	_ = step
	//lint:ignore unitliteral demonstrating the escape hatch
	rawHz := 123456789.0
	_ = rawHz
	return c
}
