// Package clean holds code unitliteral must accept: unit-constant
// multiples, large literals outside frequency contexts, small literals, a
// suppressed site, and literal arguments to the ladder constructors —
// boundary-validated by freq.NewLadder itself, directly or through a
// forwarding helper the call graph whitelists.
package clean

import "coscale/internal/freq"

type cfg struct {
	BusHz    float64
	RowBytes int
}

func build() cfg {
	c := cfg{BusHz: 800 * freq.MHz, RowBytes: 8000000}
	coreHz := 4 * freq.GHz
	_ = coreHz
	step := 66
	_ = step
	//lint:ignore unitliteral demonstrating the escape hatch
	rawHz := 123456789.0
	_ = rawHz
	return c
}

// ladders passes raw Hz literals straight into the constructors that
// validate them; the call-graph whitelist keeps unitliteral quiet here.
func ladders() {
	l1, _ := freq.NewLadder(200000000, 4000000000, 0.6, 1.0, 16)
	l2, _ := mkLadder(800000000, 3200000000)
	_, _ = l1, l2
}

// mkLadder forwards its own frequency parameters directly into NewLadder,
// which makes it boundary-validated by fixpoint.
func mkLadder(loHz, hiHz float64) (*freq.Ladder, error) {
	return freq.NewLadder(loHz, hiHz, 0.6, 1.0, 16)
}
