// Package bad holds unitliteral violations: raw >= 1e6 literals in
// frequency contexts.
package bad

type cfg struct {
	BusHz float64
	Label string
}

func setFreq(coreHz float64) {}

func build() cfg {
	c := cfg{BusHz: 800e6}
	memFreq := 2.0e8
	_ = memFreq
	setFreq(4e9)
	var busHz float64 = 1333333333
	if busHz > 1e9 {
		c.Label = "fast"
	}
	return c
}
