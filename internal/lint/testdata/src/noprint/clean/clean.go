// Package clean holds output code noprint must accept: everything renders
// through an injected io.Writer, and Sprintf builds strings without a
// stream.
package clean

import (
	"fmt"
	"io"
)

func report(w io.Writer, rows []string) error {
	if _, err := fmt.Fprintf(w, "%d rows\n", len(rows)); err != nil {
		return err
	}
	_ = fmt.Sprintf("%v", rows)
	return nil
}
