// Package bad holds noprint violations: global-stream writes from library
// code.
package bad

import (
	"fmt"
	"os"
)

func report(rows []string) {
	fmt.Println("rows:")
	fmt.Printf("%d\n", len(rows))
	fmt.Print(rows)
	fmt.Fprintln(os.Stdout, rows)
	println("debug")
}
