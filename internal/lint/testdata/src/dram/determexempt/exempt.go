// Package determexempt proves the determinism rule is path-scoped: dram is
// not one of the bit-reproducible packages, so a wall-clock read here is
// not flagged.
package determexempt

import "time"

func stamp() int64 { return time.Now().UnixNano() }
