// Package clean holds code nopanic must accept: error returns, a suppressed
// Must* helper, and a shadowed panic identifier.
package clean

import "errors"

var errBad = errors.New("bad input")

func check(ok bool) error {
	if !ok {
		return errBad
	}
	return nil
}

func mustCheck(ok bool) {
	if err := check(ok); err != nil {
		//lint:ignore nopanic Must* variant for statically known inputs
		panic(err)
	}
}

func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
