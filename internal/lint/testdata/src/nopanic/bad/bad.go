// Package bad holds nopanic violations.
package bad

import "errors"

var errBoom = errors.New("boom")

func explode(ok bool) {
	if !ok {
		panic("invariant violated")
	}
	panic(errBoom)
}
