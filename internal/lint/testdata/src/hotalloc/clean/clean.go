// Package clean holds hotalloc-conforming code: scratch reuse on hot paths,
// justified cold-path growth, and free allocation off the hot paths.
package clean

type engine struct {
	scratch []float64
}

// step reuses the engine's scratch buffer; growth happens only on a
// capacity miss, which the directive licenses.
//
//hot:path
func (e *engine) step(n int) float64 {
	if cap(e.scratch) < n {
		e.scratch = make([]float64, n) //hot:alloc-ok capacity miss: runs once until warm
	}
	e.scratch = e.scratch[:n]
	total := 0.0
	for i := range e.scratch {
		e.scratch[i] = float64(i)
		total += e.scratch[i]
	}
	return total
}

// grow carries the directive on its own line above the make.
//
//hot:path
func grow(dst []int, n int) []int {
	if cap(dst) < n {
		//hot:alloc-ok capacity miss: amortized to zero in steady state
		dst = make([]int, n)
	}
	return dst[:n]
}

// cold is not marked and may allocate freely.
func cold(n int) []float64 {
	return make([]float64, n)
}
