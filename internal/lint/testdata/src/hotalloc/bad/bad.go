// Package bad holds hotalloc violations: raw allocations inside //hot:path
// functions.
package bad

// sum adds per-core weights every epoch.
//
//hot:path
func sum(n int) float64 {
	buf := make([]float64, n) // unjustified allocation on a hot path
	total := 0.0
	for i := range buf {
		buf[i] = float64(i)
		total += buf[i]
	}
	return total
}

// index builds a lookup table inside the decision loop.
//
//hot:path
func index(keys []int) map[int]int {
	m := make(map[int]int, len(keys))
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// noted has a directive without the mandatory reason, which is itself a
// finding (and does not suppress the make).
//
//hot:path
func noted(n int) []int {
	//hot:alloc-ok
	return make([]int, n)
}
