// Package bad holds hotprop violations: allocations in unmarked helpers
// that the call graph proves are reachable from //hot:path roots.
package bad

// step is the marked epoch root; the real work is two calls down.
//
//hot:path
func step(n int) float64 {
	return total(n)
}

// total is one hop below the root and unmarked.
func total(n int) float64 {
	return fill(n)
}

// fill allocates two hops below the root; the diagnostic must carry the
// step -> total -> fill chain.
func fill(n int) float64 {
	buf := make([]float64, n)
	sum := 0.0
	for i := range buf {
		buf[i] = float64(i)
		sum += buf[i]
	}
	return sum
}

// A summer abstracts the per-epoch reduction.
type summer interface {
	sum(n int) float64
}

type sliceSummer struct{}

// sum allocates behind an interface the hot loop dispatches through;
// implements-matching must still reach it.
func (sliceSummer) sum(n int) float64 {
	m := make([]int, n)
	return float64(len(m))
}

// reduce is a marked root that only ever calls through the interface.
//
//hot:path
func reduce(s summer, n int) float64 {
	return s.sum(n)
}
