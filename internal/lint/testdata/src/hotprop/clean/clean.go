// Package clean holds hotprop-conforming code: justified growth in a
// transitively hot helper, allocation behind a function value (statically
// unknown target, deliberately not propagated), and an allocator no hot
// root reaches.
package clean

type engine struct {
	scratch []float64
}

// step delegates to an unmarked helper that follows the scratch discipline.
//
//hot:path
func step(e *engine, n int) float64 {
	return e.fill(n)
}

// fill is transitively hot but justifies its capacity-miss growth exactly
// like a marked function would.
func (e *engine) fill(n int) float64 {
	if cap(e.scratch) < n {
		e.scratch = make([]float64, n) //hot:alloc-ok capacity miss: runs once until warm
	}
	e.scratch = e.scratch[:n]
	sum := 0.0
	for i := range e.scratch {
		e.scratch[i] = float64(i)
		sum += e.scratch[i]
	}
	return sum
}

// apply invokes a function value from a hot root; the target is statically
// unknown, so nothing downstream is propagated (conservative by design).
//
//hot:path
func apply(f func(int) []int, n int) []int {
	return f(n)
}

// callback allocates but is only ever reached through a function value, so
// hotprop must not flag it.
func callback(n int) []int {
	return make([]int, n)
}

// cold allocates and is unreachable from any //hot:path root.
func cold(n int) []byte {
	return make([]byte, n)
}
