package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxProp guards cancellation threading in the serving layer
// (internal/server, internal/experiments): a function that receives a
// context.Context (or an *http.Request, whose Context() carries one) must
// not sever the cancellation chain when calling context-capable callees.
// This is exactly the class of bug the coscale-serve cancellation work
// fixed by hand — a handler that runs a simulation with a background
// context keeps burning a worker slot after its client has gone away.
//
// Two precise checks, both restricted to module-internal callees so the
// rule stays conservative:
//
//   - a call that passes context.Background() or context.TODO() into a
//     ctx-typed parameter while the caller has its own ctx in scope drops
//     cancellation on the floor;
//   - a call to a callee with no ctx parameter, when a sibling
//     <Name>Context variant (same package, or same receiver type) accepts
//     one, silently selects the uncancellable path.
//
// Passing a ctx derived from the caller's (context.WithCancel(ctx),
// r.Context(), ...) is fine; so is Background() in functions with no ctx
// of their own (servers creating their root context). Calls through
// function values are not resolved and never reported.
var CtxProp = &ProgramAnalyzer{
	Name: "ctxprop",
	Doc:  "flag dropped context threading in internal/server and internal/experiments",
	Run:  runCtxProp,
}

// ctxScope matches the serving-layer packages where cancellation threading
// is load-bearing.
func ctxScope(path string) bool {
	_, after, ok := strings.Cut(path, "/internal/")
	if !ok {
		return false
	}
	for _, p := range []string{"server", "experiments"} {
		if after == p || strings.HasPrefix(after, p+"/") {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// ctxParamIndex returns the index of the first context.Context parameter of
// sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

func runCtxProp(pass *ProgramPass) {
	for _, f := range pass.Prog.FuncsInOrder() {
		if !ctxScope(f.Pkg.Path) || f.Decl.Body == nil {
			continue
		}
		checkCtxFunc(pass, f)
	}
}

// checkCtxFunc analyzes one function body. carriers is the set of objects
// the caller's cancellation flows through: ctx and *http.Request parameters
// plus every ctx-typed local assigned from an expression that mentions a
// carrier (ctx2, cancel := context.WithTimeout(ctx, d) keeps ctx2 in the
// chain).
func checkCtxFunc(pass *ProgramPass, f *FuncInfo) {
	info := f.Pkg.Info
	carriers := map[types.Object]bool{}
	if f.Decl.Type.Params != nil {
		for _, field := range f.Decl.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if isContextType(obj.Type()) || isHTTPRequestPtr(obj.Type()) {
					carriers[obj] = true
				}
			}
		}
	}
	if len(carriers) == 0 {
		return
	}
	// One pass in source order: assignments extend the carrier set before
	// later call sites consult it (Go declarations precede uses within a
	// body in source order for the locals we care about).
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			rhsCarries := false
			for _, rhs := range n.Rhs {
				if mentionsCarrier(info, rhs, carriers) {
					rhsCarries = true
					break
				}
			}
			if !rhsCarries {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && isContextType(obj.Type()) {
					carriers[obj] = true
				}
			}
		case *ast.CallExpr:
			checkCtxCall(pass, f, n, carriers)
		}
		return true
	})
}

// checkCtxCall applies the two ctx rules to one call site.
func checkCtxCall(pass *ProgramPass, f *FuncInfo, call *ast.CallExpr, carriers map[types.Object]bool) {
	info := f.Pkg.Info
	callee := staticCallee(info, call)
	if callee == nil {
		return // builtin, conversion, or function value: unknown target
	}
	target, inProgram := pass.Prog.Funcs[callee]
	if !inProgram || target == f {
		return // module-internal callees only; self-recursion is the caller's business
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	if i := ctxParamIndex(sig); i >= 0 {
		if i >= len(call.Args) {
			return
		}
		arg := ast.Unparen(call.Args[i])
		if isBackgroundOrTODO(info, arg) {
			pass.Reportf(call.Pos(),
				"%s passes context.Background to %s while the caller's ctx is in scope; thread the caller's ctx (or derive from it)",
				f.Name(), target.Name())
		}
		return
	}
	// No ctx parameter: does a <Name>Context sibling accept one?
	sibling := contextSibling(callee)
	if sibling == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%s calls %s, which cannot be cancelled, while the caller's ctx is in scope; call %s and pass ctx",
		f.Name(), target.Name(), funcDisplayName(sibling))
}

// isBackgroundOrTODO reports whether e is context.Background() or
// context.TODO().
func isBackgroundOrTODO(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// mentionsCarrier reports whether any identifier under e resolves to a
// carrier object (directly, or via a method call on one, like r.Context()).
func mentionsCarrier(info *types.Info, e ast.Expr, carriers map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && carriers[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}

// contextSibling looks for a <Name>Context variant of fn that accepts a
// context.Context: a method on the same receiver type, or a package-level
// function in the same package.
func contextSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		obj, _, _ := types.LookupFieldOrMethod(t, true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && ctxParamIndex(msig) >= 0 {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
		if msig, ok := m.Type().(*types.Signature); ok && ctxParamIndex(msig) >= 0 {
			return m
		}
	}
	return nil
}
