package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A FuncInfo pairs a declared function or method with its syntax and the
// package it lives in. Program indexes every function declared in the
// analyzed packages; FuncInfos are the nodes of the call graph.
type FuncInfo struct {
	Obj  *types.Func   // the canonical (Origin) object
	Decl *ast.FuncDecl // declaration syntax; Body may be nil (assembly stubs)
	File *ast.File     // the file holding Decl, for directive lookups
	Pkg  *Package      // the package Decl belongs to
}

// Name renders the function as it appears in diagnostics: package-qualified
// with its receiver, e.g. "perf.GrowFloats" or "sim.(*Engine).advance".
func (f *FuncInfo) Name() string { return funcDisplayName(f.Obj) }

// funcDisplayName renders fn as pkg.Func, pkg.T.Method or pkg.(*T).Method.
func funcDisplayName(fn *types.Func) string {
	prefix := ""
	if p := fn.Pkg(); p != nil {
		prefix = p.Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return prefix + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, isPtr := t.(*types.Pointer); isPtr {
		t, ptr = p.Elem(), true
	}
	name := "?"
	if n, isNamed := t.(*types.Named); isNamed {
		name = n.Obj().Name()
	}
	if ptr {
		return prefix + "(*" + name + ")." + fn.Name()
	}
	return prefix + name + "." + fn.Name()
}

// A Program is the unit of interprocedural analysis: the packages named on
// the command line (Targets, where diagnostics are reported) plus every
// module-internal package they transitively import, so call edges into
// shared helpers are always visible even when linting a subset. All
// packages come from one Loader, so files are parsed and type-checked
// exactly once per invocation regardless of how many analyzers run.
type Program struct {
	ModPath string
	fset    *token.FileSet
	Pkgs    []*Package // targets + transitive module imports, sorted by path
	Targets []*Package // packages diagnostics are reported for

	Funcs map[*types.Func]*FuncInfo // canonical object -> info
	funcs []*FuncInfo               // source order: by package path, then position

	named []*types.Named // named non-interface types, for dispatch matching

	graph     *Graph
	freqCtors map[*types.Func]bool
}

// BuildProgram assembles a Program from the target packages, pulling their
// transitive module-internal imports out of the loader's cache.
func BuildProgram(loader *Loader, targets []*Package) *Program {
	prog := &Program{
		ModPath: loader.ModPath,
		fset:    loader.Fset,
		Targets: targets,
		Funcs:   map[*types.Func]*FuncInfo{},
	}
	seen := map[string]*Package{}
	var walk func(p *Package)
	walk = func(p *Package) {
		if seen[p.Path] != nil {
			return
		}
		seen[p.Path] = p
		for _, imp := range p.Types.Imports() {
			path := imp.Path()
			if path != prog.ModPath && !strings.HasPrefix(path, prog.ModPath+"/") {
				continue
			}
			if ip, ok := loader.Cached(path); ok {
				walk(ip)
			}
		}
	}
	for _, t := range targets {
		walk(t)
	}
	for _, p := range seen {
		prog.Pkgs = append(prog.Pkgs, p)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })

	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &FuncInfo{Obj: origin(obj), Decl: fd, File: f, Pkg: p}
				prog.Funcs[info.Obj] = info
				prog.funcs = append(prog.funcs, info)
			}
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			prog.named = append(prog.named, named)
		}
	}
	return prog
}

// origin maps a possibly-instantiated function object to its generic origin
// so instantiations and their declaration share one call-graph node.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// FuncsInOrder returns every declared function in deterministic source
// order (package path, then file position).
func (p *Program) FuncsInOrder() []*FuncInfo { return p.funcs }

// Fset returns the program's shared file set.
func (p *Program) Fset() *token.FileSet { return p.fset }

// targetFiles returns the set of file names belonging to target packages
// (the scope diagnostics are reported for).
func (p *Program) targetFiles() map[string]bool {
	files := map[string]bool{}
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			files[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}
	return files
}

// FreqConstructors returns the set of functions whose frequency-named
// parameters are validated at a ladder boundary: freq.NewLadder and
// freq.NewLadderSteps themselves, plus (by fixpoint over the call graph)
// any function that forwards one of its own parameters directly into such
// a constructor. unitliteral exempts literal arguments to these functions —
// the constructor's min/max/step validation owns the unit discipline there.
func (p *Program) FreqConstructors() map[*types.Func]bool {
	if p.freqCtors != nil {
		return p.freqCtors
	}
	set := map[*types.Func]bool{}
	for _, f := range p.funcs {
		if strings.HasSuffix(f.Pkg.Path, "/freq") && strings.HasPrefix(f.Obj.Name(), "NewLadder") {
			set[f.Obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range p.funcs {
			if set[f.Obj] || f.Decl.Body == nil {
				continue
			}
			params := map[types.Object]bool{}
			if f.Decl.Type.Params != nil {
				for _, field := range f.Decl.Type.Params.List {
					for _, name := range field.Names {
						if obj := f.Pkg.Info.Defs[name]; obj != nil {
							params[obj] = true
						}
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			forwards := false
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if forwards {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(f.Pkg.Info, call)
				if callee == nil || !set[callee] {
					return true
				}
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok && params[f.Pkg.Info.Uses[id]] {
						forwards = true
						return false
					}
				}
				return true
			})
			if forwards {
				set[f.Obj] = true
				changed = true
			}
		}
	}
	p.freqCtors = set
	return set
}

// staticCallee resolves a call expression to the called *types.Func when
// the callee is statically known: a package-level function, a qualified
// pkg.Func reference, or a method call on a concrete or interface value
// (for interfaces this is the interface method object, not an
// implementation). Returns nil for builtins, conversions, and calls of
// function values, whose targets are not statically known.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: F[T](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if id, ok := unwrapFunExpr(ix.X); ok {
			fun = id
		}
	case *ast.IndexListExpr:
		if id, ok := unwrapFunExpr(ix.X); ok {
			fun = id
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return origin(f)
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return origin(f)
		}
	}
	return nil
}

// unwrapFunExpr strips parentheses and reports whether e is an identifier
// or selector (the only instantiable function forms).
func unwrapFunExpr(e ast.Expr) (ast.Expr, bool) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return e, true
	}
	return e, false
}
