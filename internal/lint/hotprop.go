package lint

import (
	"go/ast"
)

// HotProp propagates the //hot:path marker transitively: every function
// reachable through the call graph from a marked root runs on the epoch or
// decision hot path too, whether or not its author remembered to mark it.
// HotProp re-runs the hotalloc make() check over that closure, so the
// allocation discipline of DESIGN.md §7 cannot be escaped by moving the
// allocation one call down. Each diagnostic carries the discovered call
// chain (root → ... → offender), making the finding actionable without
// re-deriving the path by hand.
//
// Interface-dispatch call sites are treated conservatively: an interface
// method call propagates hotness to every method in the program whose
// receiver type implements the interface. Calls of function values
// (fields, parameters, locals) have no statically known target and
// propagate nothing — the marked-unknown edges keep the rule free of
// false positives at the cost of not seeing through callbacks.
//
// Functions explicitly marked //hot:path are checked by hotalloc and
// skipped here, so each make() is reported exactly once. Capacity-miss
// grow paths justify themselves with //hot:alloc-ok <reason> at the make
// site, the same escape hatch hotalloc honours.
var HotProp = &ProgramAnalyzer{
	Name: "hotprop",
	Doc:  "propagate //hot:path through the call graph and forbid make() in the closure",
	Run:  runHotProp,
}

// hotRoots returns the program's //hot:path-marked functions in source
// order.
func hotRoots(prog *Program) []*FuncInfo {
	var roots []*FuncInfo
	for _, f := range prog.FuncsInOrder() {
		if isHotPath(f.Decl) {
			roots = append(roots, f)
		}
	}
	return roots
}

// hotClosure computes the reachability sweep from every //hot:path root.
// The escapes gate shares it with hotprop.
func hotClosure(prog *Program) *Reach {
	return prog.CallGraph().ReachableFrom(hotRoots(prog))
}

func runHotProp(pass *ProgramPass) {
	reach := hotClosure(pass.Prog)
	allocOK := map[*ast.File]map[int]bool{}
	for _, f := range reach.Order() {
		if isHotPath(f.Decl) || f.Decl.Body == nil || !internalPackages(f.Pkg.Path) {
			continue
		}
		allowed, ok := allocOK[f.File]
		if !ok {
			allowed, _ = allocOKLines(pass.Fset, f.File) // malformed reported by hotalloc
			allocOK[f.File] = allowed
		}
		chain := reach.Chain(f)
		scanMakes(f.Pkg.Info, f.Decl.Body, func(call *ast.CallExpr) {
			if allowed[pass.Fset.Position(call.Pos()).Line] {
				return
			}
			pass.Reportf(call.Pos(),
				"make() in %s, which is transitively hot: %s; reuse a scratch buffer, or justify the cold path with //hot:alloc-ok <reason>",
				f.Name(), chain)
		})
	}
}
