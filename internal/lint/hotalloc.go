package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the allocation discipline of DESIGN.md §7: functions whose
// doc comment carries a //hot:path marker run every epoch (the engine's step
// chain) or every decision (the CoScale search chain) and must not allocate
// in steady state. A make() call inside such a function is reported unless
// the line (or the line above) carries a //hot:alloc-ok <reason> directive —
// the escape hatch for capacity-miss grow paths, which by construction run
// only until the scratch buffers are warm.
//
// The marker is matched in the function's doc comment as a standalone
// //hot:path line, exactly the convention the hand-marked hot paths already
// follow. Allocation via helpers (perf.ResizeFloats and friends) is the
// sanctioned pattern and is untouched: the make lives in the helper, which
// is deliberately not marked.
var HotAlloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "forbid make() in //hot:path functions without a //hot:alloc-ok justification",
	Match: internalPackages,
	Run:   runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		allowed, malformed := collectAllocOK(pass, f)
		for _, d := range malformed {
			pass.Reportf(d, `malformed directive: want "//hot:alloc-ok <reason>"`)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "make" {
					return true
				}
				if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				if allowed[pass.Fset.Position(call.Pos()).Line] {
					return true
				}
				pass.Reportf(call.Pos(),
					"make() in //hot:path function %s; reuse a scratch buffer, or justify the cold path with //hot:alloc-ok <reason>",
					fn.Name.Name)
				return true
			})
		}
	}
}

// isHotPath reports whether the function's doc comment contains a standalone
// //hot:path marker line.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//hot:path" {
			return true
		}
	}
	return false
}

// collectAllocOK gathers //hot:alloc-ok directives: each one licenses
// allocations on its own line and on the following line. Directives missing
// a reason are returned for reporting.
func collectAllocOK(pass *Pass, f *ast.File) (map[int]bool, []token.Pos) {
	allowed := map[int]bool{}
	var malformed []token.Pos
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//hot:alloc-ok")
			if !ok {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				malformed = append(malformed, c.Pos())
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			allowed[line] = true
			allowed[line+1] = true
		}
	}
	return allowed, malformed
}
