package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the allocation discipline of DESIGN.md §7: functions whose
// doc comment carries a //hot:path marker run every epoch (the engine's step
// chain) or every decision (the CoScale search chain) and must not allocate
// in steady state. A make() call inside such a function is reported unless
// the line (or the line above) carries a //hot:alloc-ok <reason> directive —
// the escape hatch for capacity-miss grow paths, which by construction run
// only until the scratch buffers are warm.
//
// The marker is matched in the function's doc comment as a standalone
// //hot:path line, exactly the convention the hand-marked hot paths already
// follow. HotAlloc itself checks only explicitly marked functions; the
// interprocedural hotprop rule extends the same make() check to every
// function reachable from a hot root through the call graph, so unmarked
// helpers (perf.ResizeFloats and friends) justify their capacity-miss
// allocations with //hot:alloc-ok at the make site.
var HotAlloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "forbid make() in //hot:path functions without a //hot:alloc-ok justification",
	Match: internalPackages,
	Run:   runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		allowed, malformed := allocOKLines(pass.Fset, f)
		for _, d := range malformed {
			pass.Reportf(d, `malformed directive: want "//hot:alloc-ok <reason>"`)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			scanMakes(pass.Info, fn.Body, func(call *ast.CallExpr) {
				if allowed[pass.Fset.Position(call.Pos()).Line] {
					return
				}
				pass.Reportf(call.Pos(),
					"make() in //hot:path function %s; reuse a scratch buffer, or justify the cold path with //hot:alloc-ok <reason>",
					fn.Name.Name)
			})
		}
	}
}

// scanMakes calls fn for every call of the make builtin under root.
func scanMakes(info *types.Info, root ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, ok := info.Uses[id].(*types.Builtin); !ok {
			return true
		}
		fn(call)
		return true
	})
}

// isHotPath reports whether the function's doc comment contains a standalone
// //hot:path marker line.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//hot:path" {
			return true
		}
	}
	return false
}

// allocOKLines gathers //hot:alloc-ok directives: each one licenses
// allocations on its own line and on the following line. Directives missing
// a reason are returned for reporting.
func allocOKLines(fset *token.FileSet, f *ast.File) (map[int]bool, []token.Pos) {
	allowed := map[int]bool{}
	var malformed []token.Pos
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//hot:alloc-ok")
			if !ok {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				malformed = append(malformed, c.Pos())
				continue
			}
			line := fset.Position(c.Pos()).Line
			allowed[line] = true
			allowed[line+1] = true
		}
	}
	return allowed, malformed
}
