package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoGoFiles is returned when a directory holds no analyzable Go files.
var ErrNoGoFiles = errors.New("lint: no non-test Go files")

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "coscale/internal/sim"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library.
// Imports inside the module are resolved from source relative to the module
// root; everything else (the standard library) goes through go/importer's
// source importer, which type-checks GOROOT source directly — no export
// data, no go/packages dependency.
type Loader struct {
	ModPath string
	Root    string // module root directory
	Fset    *token.FileSet

	// FixtureDirs are extra roots posing as <module>/internal/ trees, tried
	// when a module-internal import has no Go files at its real directory.
	// The lint tests point this at testdata/src so fixture packages can
	// import each other (interprocedural fixtures need a caller package and
	// a callee package), following the same path convention importPathFor
	// applies to fixtures.
	FixtureDirs []string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module rooted at root with module path
// modPath.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		Root:    root,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer for the type-checker: module-internal
// paths load from source under Root, all others defer to the standard
// library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.dirFor(path)
		if _, err := goFiles(dir); err != nil {
			if alt, ok := l.fixtureDirFor(path); ok {
				dir = alt
			}
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// Cached returns the already-loaded package for the import path, if any.
func (l *Loader) Cached(path string) (*Package, bool) {
	p, ok := l.pkgs[path]
	return p, ok
}

// fixtureDirFor maps a <module>/internal/... import path onto the
// FixtureDirs roots, returning the first directory that holds Go files.
func (l *Loader) fixtureDirFor(path string) (string, bool) {
	rel, ok := strings.CutPrefix(path, l.ModPath+"/internal/")
	if !ok {
		return "", false
	}
	for _, root := range l.FixtureDirs {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if _, err := goFiles(dir); err == nil {
			return dir, true
		}
	}
	return "", false
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (*_test.go) are skipped: every lint rule targets library
// code, and tests legitimately assert exact golden values, print, and
// panic. Results are cached by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFiles returns the sorted non-test .go files in dir.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, ErrNoGoFiles
	}
	sort.Strings(names)
	return names, nil
}
