package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic calls in internal/ library code: callers up the
// stack (the sim engine, the experiment runner, CLIs) are built to
// propagate errors, and a panic inside a long figure-regeneration run
// throws away every completed simulation. Return an error instead.
//
// Init-time registry validation and Must* helpers for statically known
// names are the sanctioned exceptions; each such site carries a
// //lint:ignore nopanic directive stating why it cannot fail at runtime.
var NoPanic = &Analyzer{
	Name:  "nopanic",
	Doc:   "forbid panic in internal library code; return errors",
	Match: internalPackages,
	Run:   runNoPanic,
}

func runNoPanic(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
				return true // a local function shadowing the builtin
			}
			pass.Reportf(call.Pos(), "panic in library code; return an error")
			return true
		})
	}
}
