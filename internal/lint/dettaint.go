package lint

import (
	"go/ast"
	"go/token"
)

// DetTaint extends the determinism rule across call edges. The per-package
// determinism analyzer covers internal/{sim,trace,policy,core,fault}
// intra-procedurally, but a helper in perf, power, memsys, counters, cache
// or even server can sit on a bit-reproducibility-critical path the moment
// a policy decision or an engine step calls into it — a per-file walk never
// sees that. DetTaint computes the closure of every function reachable from
// the determinism-scoped packages and reports, with the discovered call
// chain:
//
//   - nondeterminism sources (time.Now, global math/rand, map iteration) in
//     closure functions outside the determinism-scoped packages — exactly
//     the checks the determinism analyzer applies inside them, so the two
//     rules partition the closure without double-reporting;
//   - goroutine launches anywhere in the closure: goroutine completion
//     order is scheduler-dependent, so results folded in arrival order
//     diverge run to run. Parallelism on a determinism-critical path needs
//     a fixed reduction order and a reasoned //lint:ignore.
//
// The same conservative call-graph treatment as hotprop applies: interface
// calls taint every implements-matching method, function-value calls taint
// nothing.
var DetTaint = &ProgramAnalyzer{
	Name: "dettaint",
	Doc:  "taint-track nondeterminism sources into code reachable from determinism-critical packages",
	Run:  runDetTaint,
}

func runDetTaint(pass *ProgramPass) {
	var roots []*FuncInfo
	for _, f := range pass.Prog.FuncsInOrder() {
		if determinismScope(f.Pkg.Path) {
			roots = append(roots, f)
		}
	}
	reach := pass.Prog.CallGraph().ReachableFrom(roots)
	for _, f := range reach.Order() {
		if f.Decl.Body == nil {
			continue
		}
		chain := reach.Chain(f)
		if !determinismScope(f.Pkg.Path) {
			scanNondeterminism(f.Pkg.Info, f.Decl.Body, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format+"; %s is on a determinism-critical path: %s",
					append(args, f.Name(), chain)...)
			})
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine launched on a determinism-critical path (%s); completion order is scheduler-dependent — use a fixed reduction order", chain)
			return true
		})
	}
}
