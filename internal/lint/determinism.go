package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism forbids the three classic sources of run-to-run divergence in
// the packages whose output must be bit-reproducible — epoch-level
// simulation state feeds both checkpoint/resume and figure regeneration, so
// two runs of the same configuration must produce identical bits:
//
//   - time.Now: wall-clock reads leak host time into simulated state;
//     simulated time must advance explicitly.
//   - global math/rand functions (rand.Intn, rand.Float64, ...): they draw
//     from the process-wide source, whose state depends on every other
//     caller; use a locally seeded *rand.Rand.
//   - for range over a map: Go randomizes map iteration order by design;
//     collect and sort the keys first.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid time.Now, global math/rand, and map iteration in sim/trace/policy/core/fault/fleet/fastcap",
	Match: determinismScope,
	Run:   runDeterminism,
}

// determinismPackages are the bit-reproducible packages, relative to
// <module>/internal/. fault is included because injected faults must replay
// bit-identically from their seed (same seed + scenario -> same Result);
// fleet because chaos injection, retry backoff, and routing must replay the
// same way (the coordinator's one wall-clock read is an explicit, reasoned
// ignore); fastcap because the budget allocator pins Float64bits-identical
// assignments across replays and node orderings.
var determinismPackages = []string{"sim", "trace", "policy", "core", "fault", "fleet", "fastcap"}

// determinismScope matches the reproducibility-critical packages and their
// subpackages.
func determinismScope(path string) bool {
	_, after, ok := strings.Cut(path, "/internal/")
	if !ok {
		return false
	}
	for _, p := range determinismPackages {
		if after == p || strings.HasPrefix(after, p+"/") {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand package-level functions that build
// locally seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		scanNondeterminism(pass.Info, f, pass.Reportf)
	}
}

// scanNondeterminism reports every wall-clock read, global rand draw, and
// map iteration under root. It is shared between the package-scoped
// determinism analyzer and the interprocedural dettaint analyzer, so both
// flag exactly the same source constructs.
func scanNondeterminism(info *types.Info, root ast.Node, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := info.Uses[n.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					report(n.Pos(),
						"time.Now is nondeterministic; advance simulated time explicitly")
				}
			case "math/rand", "math/rand/v2":
				sig, ok := fn.Type().(*types.Signature)
				if ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
					report(n.Pos(),
						"global rand.%s draws from the shared process-wide source; use a seeded *rand.Rand",
						fn.Name())
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n.Range,
						"map iteration order is nondeterministic; collect and sort the keys first")
				}
			}
		}
		return true
	})
}
