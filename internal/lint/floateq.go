package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != between floating-point operands in internal/
// library code. The CoScale search compares energy estimates that differ by
// fractions of a percent; exact equality on such values is either a bug or
// an accident waiting for a refactor. Comparisons must go through
// coscale/internal/approx (approx.Close, approx.Equal, approx.Zero).
//
// Two idioms stay legal: comparing two compile-time constants (folded
// exactly by the compiler) and the x != x NaN test.
var FloatEq = &Analyzer{
	Name:  "floateq",
	Doc:   "forbid ==/!= on floating-point operands; compare via internal/approx",
	Match: internalPackages,
	Run:   runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.Info.Types[be.X]
			ty := pass.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // both constant: folded exactly at compile time
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x is the idiomatic NaN test
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use approx.Close/Equal/Zero", be.Op)
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
