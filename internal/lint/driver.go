package lint

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Exit codes returned by Main.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitError    = 2 // usage, load, parse or type-check failure
)

// Main is the coscale-lint entry point. It expands package patterns
// (./... style), loads and type-checks every named package plus its
// transitive module-internal imports exactly once, builds the call graph,
// runs the per-package and interprocedural analyzer suites, prints
// "file:line: rule: message" diagnostics (or a JSON array with -json) and
// returns an exit code. Diagnostics are confined to the named packages even
// though analysis sees the whole program. With -escapes it instead runs the
// escape-analysis regression gate against the committed baseline.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped by pattern expansion, matching go tooling conventions.
func Main(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("coscale-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	list := fl.Bool("list", false, "list analyzers and exit")
	jsonOut := fl.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	verbose := fl.Bool("v", false, "report load/graph/analysis wall time and program size to stderr")
	escapes := fl.Bool("escapes", false, "run the escape-analysis regression gate for the //hot:path closure")
	update := fl.Bool("update", false, "with -escapes: rewrite the baseline instead of checking against it")
	baseline := fl.String("baseline", "ESCAPES_baseline.json", "with -escapes: baseline file, relative to the module root")
	fl.Usage = func() {
		fmt.Fprintln(stderr, "usage: coscale-lint [-list] [-json] [-v] [packages]")
		fmt.Fprintln(stderr, "       coscale-lint -escapes [-update] [-baseline file]")
		fmt.Fprintln(stderr, "packages are directory patterns like ./... or ./internal/sim (default ./...)")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range ProgramAnalyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	if *escapes {
		// The gate compares whole-module state against a whole-module
		// baseline; a package subset would silently shrink the hot closure.
		patterns = []string{filepath.Join(root, "...")}
	}

	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "coscale-lint: no packages match", strings.Join(patterns, " "))
		return ExitError
	}

	start := time.Now()
	loader := NewLoader(root, modPath)
	targets := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		path, err := importPathFor(root, modPath, dir)
		if err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		targets = append(targets, pkg)
	}
	prog := BuildProgram(loader, targets)
	loadTime := time.Since(start)

	graphStart := time.Now()
	graph := prog.CallGraph()
	graphTime := time.Since(graphStart)

	if *verbose {
		edges := 0
		for _, out := range graph.Out {
			edges += len(out)
		}
		fmt.Fprintf(stderr, "coscale-lint: loaded %d packages (%d targets), %d functions in %v; call graph %d edges in %v\n",
			len(prog.Pkgs), len(prog.Targets), len(prog.FuncsInOrder()), loadTime.Round(time.Millisecond),
			edges, graphTime.Round(time.Millisecond))
	}

	if *escapes {
		bl := *baseline
		if !filepath.IsAbs(bl) {
			bl = filepath.Join(root, bl)
		}
		return runEscapes(prog, root, bl, *update, stdout, stderr)
	}

	analysisStart := time.Now()
	diags := Check(prog, Analyzers(), ProgramAnalyzers())
	if *verbose {
		fmt.Fprintf(stderr, "coscale-lint: analysis %v, total %v, %d findings\n",
			time.Since(analysisStart).Round(time.Millisecond), time.Since(start).Round(time.Millisecond), len(diags))
	}
	for i := range diags {
		diags[i].Pos.Filename = relativize(cwd, diags[i].Pos.Filename)
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits the diagnostics as an indented JSON array ([] when clean,
// so consumers can always json-decode the output).
func writeJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    filepath.ToSlash(d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if _, serr := os.Stat(gomod); serr == nil {
			mp, merr := moduleLine(gomod)
			if merr != nil {
				return "", "", merr
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", errors.New("no go.mod found above " + dir)
		}
		d = parent
	}
}

// moduleLine extracts the module path from a go.mod file.
func moduleLine(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if mp, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(mp), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", errors.New(gomod + ": no module line")
}

// expandPatterns resolves "./...", "dir/..." and plain directory patterns
// into the sorted set of package directories containing non-test Go files.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		switch {
		case pat == "...":
			pat, recursive = ".", true
		case strings.HasSuffix(pat, "/..."):
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		case strings.HasSuffix(pat, string(filepath.Separator)+"..."):
			pat, recursive = strings.TrimSuffix(pat, string(filepath.Separator)+"..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			if _, err := goFiles(base); err != nil {
				return nil, fmt.Errorf("%s: %w", pat, err)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if _, err := goFiles(p); err == nil {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a package directory to its import path. Fixture
// packages under a testdata/src/ tree pose as packages under
// <module>/internal/ — the convention (borrowed from x/tools analysistest)
// that lets fixtures exercise path-scoped rules like determinism, which
// only fires inside specific internal packages.
func importPathFor(root, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return modPath, nil
	}
	if rel == ".." || strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, root)
	}
	if _, after, ok := strings.Cut(rel+"/", "/testdata/src/"); ok {
		return modPath + "/internal/" + strings.TrimSuffix(after, "/"), nil
	}
	return modPath + "/" + rel, nil
}

// relativize shortens filename to a cwd-relative path when that is shorter.
func relativize(cwd, filename string) string {
	if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
