package lint

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Exit codes returned by Main.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitError    = 2 // usage, load, parse or type-check failure
)

// Main is the coscale-lint entry point: it expands package patterns
// (./... style), loads and type-checks each package, runs the analyzer
// suite, prints "file:line: rule: message" diagnostics to stdout and
// returns an exit code. Directories named testdata, vendor, or starting
// with "." or "_" are skipped by pattern expansion, matching go tooling
// conventions.
func Main(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("coscale-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	list := fl.Bool("list", false, "list analyzers and exit")
	fl.Usage = func() {
		fmt.Fprintln(stderr, "usage: coscale-lint [-list] [packages]")
		fmt.Fprintln(stderr, "packages are directory patterns like ./... or ./internal/sim (default ./...)")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	root, modPath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}

	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "coscale-lint:", err)
		return ExitError
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "coscale-lint: no packages match", strings.Join(patterns, " "))
		return ExitError
	}

	loader := NewLoader(root, modPath)
	var diags []Diagnostic
	for _, dir := range dirs {
		path, err := importPathFor(root, modPath, dir)
		if err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			fmt.Fprintln(stderr, "coscale-lint:", err)
			return ExitError
		}
		diags = append(diags, CheckPackage(pkg, Analyzers())...)
	}
	for _, d := range diags {
		d.Pos.Filename = relativize(cwd, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if _, serr := os.Stat(gomod); serr == nil {
			mp, merr := moduleLine(gomod)
			if merr != nil {
				return "", "", merr
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", errors.New("no go.mod found above " + dir)
		}
		d = parent
	}
}

// moduleLine extracts the module path from a go.mod file.
func moduleLine(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if mp, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(mp), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", errors.New(gomod + ": no module line")
}

// expandPatterns resolves "./...", "dir/..." and plain directory patterns
// into the sorted set of package directories containing non-test Go files.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		switch {
		case pat == "...":
			pat, recursive = ".", true
		case strings.HasSuffix(pat, "/..."):
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			if _, err := goFiles(base); err != nil {
				return nil, fmt.Errorf("%s: %w", pat, err)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if _, err := goFiles(p); err == nil {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a package directory to its import path. Fixture
// packages under a testdata/src/ tree pose as packages under
// <module>/internal/ — the convention (borrowed from x/tools analysistest)
// that lets fixtures exercise path-scoped rules like determinism, which
// only fires inside specific internal packages.
func importPathFor(root, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return modPath, nil
	}
	if rel == ".." || strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, root)
	}
	if _, after, ok := strings.Cut(rel+"/", "/testdata/src/"); ok {
		return modPath + "/internal/" + strings.TrimSuffix(after, "/"), nil
	}
	return modPath + "/" + rel, nil
}

// relativize shortens filename to a cwd-relative path when that is shorter.
func relativize(cwd, filename string) string {
	if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
