package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitLiteral flags raw numeric literals >= 1e6 used where a frequency is
// expected: assigned to, compared against, or passed as a value whose name
// mentions Hz or freq. Such literals are where MHz-vs-Hz confusion is born
// (the paper's ladders span 200 MHz to 4 GHz — six orders of magnitude of
// possible silent error). Spell frequencies as multiples of freq.KHz,
// freq.MHz or freq.GHz instead: 800 * freq.MHz, not 800000000.
//
// The freq package itself, which defines those constants, is exempt, and so
// are literal arguments to the ladder constructors (freq.NewLadder,
// freq.NewLadderSteps) and — via the call graph — to any function that
// forwards its parameters directly into one: the constructor validates
// min/max/step ordering and magnitude at the boundary, so a literal there
// is checked where it lands rather than ignored line by line.
var UnitLiteral = &Analyzer{
	Name: "unitliteral",
	Doc:  "flag raw literals >= 1e6 in frequency contexts; use freq.KHz/MHz/GHz",
	Match: func(path string) bool {
		return internalPackages(path) && !strings.HasSuffix(path, "/freq")
	},
	Run: runUnitLiteral,
}

// rawLiteralFloor is the smallest literal value worth flagging: 1e6 (1 MHz)
// is the lowest magnitude at which a frequency literal appears in practice.
const rawLiteralFloor = 1e6

func runUnitLiteral(pass *Pass) {
	check := func(e ast.Expr) {
		lit, ok := rawBigLiteral(pass, e)
		if !ok {
			return
		}
		pass.Reportf(lit.Pos(),
			"raw literal %s in a frequency context; use freq.KHz/MHz/GHz multiples", lit.Value)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && isFreqName(id.Name) {
					check(n.Value)
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if isFreqName(exprName(n.Lhs[i])) {
						check(n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if isFreqName(name.Name) && i < len(n.Values) {
						check(n.Values[i])
					}
				}
			case *ast.BinaryExpr:
				switch n.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					if isFreqName(exprName(n.X)) {
						check(n.Y)
					}
					if isFreqName(exprName(n.Y)) {
						check(n.X)
					}
				}
			case *ast.CallExpr:
				sig, ok := pass.Info.TypeOf(n.Fun).(*types.Signature)
				if !ok {
					return true
				}
				if pass.Prog != nil {
					if callee := staticCallee(pass.Info, n); callee != nil && pass.Prog.FreqConstructors()[callee] {
						return true // boundary-validated ladder constructor
					}
				}
				for i, arg := range n.Args {
					if p := paramAt(sig, i); p != nil && isFreqName(p.Name()) {
						check(arg)
					}
				}
			}
			return true
		})
	}
}

// rawBigLiteral reports whether e is a bare numeric literal with value
// >= rawLiteralFloor, unwrapping parentheses.
func rawBigLiteral(pass *Pass, e ast.Expr) (*ast.BasicLit, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return nil, false
	}
	tv := pass.Info.Types[lit]
	if tv.Value == nil {
		return nil, false
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return lit, v >= rawLiteralFloor
}

// isFreqName reports whether a name denotes a frequency-typed value.
func isFreqName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "hz") || strings.Contains(l, "freq")
}

// exprName extracts the rightmost identifier of an expression: x, p.Hz,
// l.MaxHz() all name the value being produced.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	}
	return ""
}

// paramAt returns the signature parameter matched by argument i, folding
// trailing arguments onto a variadic final parameter.
func paramAt(sig *types.Signature, i int) *types.Var {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i >= params.Len() {
		if sig.Variadic() {
			return params.At(params.Len() - 1)
		}
		return nil
	}
	return params.At(i)
}
