package core

import (
	"fmt"
	"math"

	"coscale/internal/policy"
)

// PowerCap is the §2.3 extension the paper sketches: "CoScale can be readily
// extended to cap power with appropriate changes to its decision algorithm".
// Instead of minimizing SER within a performance bound, PowerCap maximizes
// performance subject to a full-system power budget (and still honours the
// per-program slack bound when one is configured).
//
// The decision algorithm reuses the Figure 2 walk: starting from maximum
// frequencies, it greedily takes the moves with the best marginal utility
// (Δpower/Δperformance — the cheapest watts in performance terms) until the
// predicted power fits under the cap. If the cap is unreachable even at
// minimum frequencies, the lowest-power configuration is used.
type PowerCap struct {
	cfg   policy.Config
	capW  float64
	slack *policy.SlackBook
}

// NewPowerCap builds a power-capping controller with the given full-system
// budget in watts, or an error for an invalid configuration or budget.
func NewPowerCap(cfg policy.Config, capWatts float64) (*PowerCap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capWatts <= 0 || math.IsNaN(capWatts) {
		return nil, fmt.Errorf("core: power cap %g W must be positive", capWatts)
	}
	return &PowerCap{
		cfg:   cfg,
		capW:  capWatts,
		slack: policy.NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve),
	}, nil
}

// Name implements policy.Policy.
func (p *PowerCap) Name() string { return "CoScale-PowerCap" }

// Cap returns the configured budget in watts.
func (p *PowerCap) Cap() float64 { return p.capW }

// Observe implements policy.Policy.
func (p *PowerCap) Observe(epoch policy.Observation) {
	tMax := policy.TMaxForEpoch(p.cfg, epoch, policy.ZeroSteps(p.cfg.NCores), 0)
	p.slack.RecordEpochFor(epoch.CoreThreads(), tMax, epoch.Window)
}

// Decide implements policy.Policy: descend until the cap is met, preferring
// the moves that buy the most watts per unit of performance; among
// cap-satisfying configurations choose the fastest (lowest worst slowdown).
func (p *PowerCap) Decide(obs policy.Observation) policy.Decision {
	ev := policy.NewEvaluator(p.cfg, obs)
	n := p.cfg.NCores

	// Performance limits still apply when Gamma > 0: a cap should shed
	// watts, not starve one program beyond its SLO if avoidable.
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))

	steps := policy.ZeroSteps(n)
	memStep := 0
	cur := ev.Evaluate(steps, memStep)

	best := policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
	bestSlow := math.Inf(1)
	bestPower := cur.Power.Total
	found := cur.Power.Total <= p.capW
	if found {
		bestSlow = cur.MaxSlow
	}

	maxIters := p.cfg.MemLadder.Steps() + p.cfg.CoreLadder.Steps()*n
	for iter := 0; iter < maxIters && cur.Power.Total > p.capW; iter++ {
		move, ok := p.bestMove(ev, steps, memStep, cur, limits)
		if !ok {
			break
		}
		steps, memStep, cur = move.steps, move.memStep, move.eval
		under := cur.Power.Total <= p.capW
		switch {
		case under && cur.MaxSlow < bestSlow:
			bestSlow = cur.MaxSlow
			best = policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
			found = true
		case !found && cur.Power.Total < bestPower:
			// Track the lowest-power configuration as a fallback.
			bestPower = cur.Power.Total
			best = policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
		}
	}
	return best
}

type capMove struct {
	steps   []int
	memStep int
	eval    policy.Eval
}

// bestMove evaluates one memory step down and one step down for the most
// scalable core, taking whichever sheds the most power per unit slowdown.
// Slack limits are ignored once the system is over cap with no compliant
// move available — capping takes precedence over the SLO.
func (p *PowerCap) bestMove(ev *policy.Evaluator, steps []int, memStep int, cur policy.Eval, limits []float64) (capMove, bool) {
	var cands []capMove
	if !p.cfg.MemLadder.Bottom(memStep) {
		cands = append(cands, capMove{steps: append([]int(nil), steps...), memStep: memStep + 1})
	}
	for i := range steps {
		if p.cfg.CoreLadder.Bottom(steps[i]) {
			continue
		}
		s := append([]int(nil), steps...)
		s[i]++
		cands = append(cands, capMove{steps: s, memStep: memStep})
	}
	if len(cands) == 0 {
		return capMove{}, false
	}
	bestU := math.Inf(-1)
	var best capMove
	var bestOK bool
	// Prefer moves within the slack bound; fall back to any move if the
	// cap cannot otherwise be met.
	for pass := 0; pass < 2 && !bestOK; pass++ {
		for _, c := range cands {
			e := ev.Evaluate(c.steps, c.memStep)
			if pass == 0 && !policy.WithinBound(e, limits) {
				continue
			}
			dPower := cur.Power.Total - e.Power.Total
			dPerf := e.MaxSlow - cur.MaxSlow
			u := utility(dPower, dPerf)
			if u > bestU {
				bestU = u
				c.eval = e
				best = c
				bestOK = true
			}
		}
	}
	return best, bestOK
}
