package core

import (
	"errors"
	"fmt"
	"math"

	"coscale/internal/policy"
)

// ErrCapInfeasible reports a power budget below the platform's minimum
// achievable power: even with every core and the memory bus at their lowest
// frequency the predicted power exceeds the cap. The decision returned
// alongside it is the all-minimum-frequency clamp — the closest physically
// reachable point — so callers can actuate it while surfacing the violation.
var ErrCapInfeasible = errors.New("core: power cap infeasible")

// PowerCap is the §2.3 extension the paper sketches: "CoScale can be readily
// extended to cap power with appropriate changes to its decision algorithm".
// Instead of minimizing SER within a performance bound, PowerCap maximizes
// performance subject to a full-system power budget (and still honours the
// per-program slack bound when one is configured).
//
// The decision algorithm reuses the Figure 2 walk: starting from maximum
// frequencies, it greedily takes the moves with the best marginal utility
// (Δpower/Δperformance — the cheapest watts in performance terms) until the
// predicted power fits under the cap. An infeasible cap — below the power of
// the all-minimum configuration — is detected up front: the controller clamps
// to all-minimum frequencies and DecideCapped surfaces ErrCapInfeasible
// instead of walking the whole ladder just to rediscover the floor.
type PowerCap struct {
	cfg   policy.Config
	capW  float64
	slack *policy.SlackBook

	// minScratch is the reusable all-minimum step vector for the
	// feasibility pre-check; it is cloned only on the cold infeasible
	// return, keeping the hot Decide path free of per-call allocation.
	minScratch []int
}

// NewPowerCap builds a power-capping controller with the given full-system
// budget in watts, or an error for an invalid configuration or budget.
func NewPowerCap(cfg policy.Config, capWatts float64) (*PowerCap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capWatts <= 0 || math.IsNaN(capWatts) {
		return nil, fmt.Errorf("core: power cap %g W must be positive", capWatts)
	}
	return &PowerCap{
		cfg:   cfg,
		capW:  capWatts,
		slack: policy.NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve),
	}, nil
}

// Name implements policy.Policy.
func (p *PowerCap) Name() string { return "CoScale-PowerCap" }

// Cap returns the configured budget in watts.
func (p *PowerCap) Cap() float64 { return p.capW }

// SetCap replaces the budget for subsequent decisions. This is the epoch
// rebalancing hook (internal/fastcap): one PowerCap per node persists across
// epochs while its assigned slice of the global budget moves.
func (p *PowerCap) SetCap(capWatts float64) error {
	if capWatts <= 0 || math.IsNaN(capWatts) {
		return fmt.Errorf("core: power cap %g W must be positive", capWatts)
	}
	p.capW = capWatts
	return nil
}

// Observe implements policy.Policy.
func (p *PowerCap) Observe(epoch policy.Observation) {
	tMax := policy.TMaxForEpoch(p.cfg, epoch, policy.ZeroSteps(p.cfg.NCores), 0)
	p.slack.RecordEpochFor(epoch.CoreThreads(), tMax, epoch.Window)
}

// Decide implements policy.Policy: descend until the cap is met, preferring
// the moves that buy the most watts per unit of performance; among
// cap-satisfying configurations choose the fastest (lowest worst slowdown).
// Infeasibility is swallowed — the all-minimum clamp is still the right
// actuation — so use DecideCapped when the violation itself matters.
func (p *PowerCap) Decide(obs policy.Observation) policy.Decision {
	d, _ := p.DecideCapped(obs)
	return d
}

// DecideCapped is Decide surfacing infeasibility: when the cap lies below the
// platform's minimum achievable power for this observation, the returned
// decision is the all-minimum-frequency configuration and the error wraps
// ErrCapInfeasible (carrying the cap and the floor). A feasible cap returns
// a nil error.
func (p *PowerCap) DecideCapped(obs policy.Observation) (policy.Decision, error) {
	// The evaluator runs on the memoized-table path (bit-identical to the
	// direct path, DESIGN.md §10): with Cfg.Tables wired in, sibling nodes
	// of a capped fleet share one platform-column build per process.
	ev := &policy.Evaluator{UseTables: true}
	ev.Reset(p.cfg, obs)
	n := p.cfg.NCores

	// Feasibility pre-check at the ladder floor. Below it the old walk
	// thrashed through every intermediate configuration only to fall back;
	// now the clamp is immediate and typed.
	if cap(p.minScratch) < n {
		p.minScratch = make([]int, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	minSteps := p.minScratch[:n]
	for i := range minSteps {
		minSteps[i] = p.cfg.CoreLadder.Steps() - 1
	}
	minMem := p.cfg.MemLadder.Steps() - 1
	minEval := ev.Evaluate(minSteps, minMem)
	if minEval.Power.Total > p.capW {
		return policy.Decision{CoreSteps: append([]int(nil), minSteps...), MemStep: minMem},
			fmt.Errorf("%w: cap %g W below minimum achievable %g W",
				ErrCapInfeasible, p.capW, minEval.Power.Total)
	}

	// Performance limits still apply when Gamma > 0: a cap should shed
	// watts, not starve one program beyond its SLO if avoidable.
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))

	steps := policy.ZeroSteps(n)
	memStep := 0
	cur := ev.Evaluate(steps, memStep)

	best := policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
	bestSlow := math.Inf(1)
	bestPower := cur.Power.Total
	found := cur.Power.Total <= p.capW
	if found {
		bestSlow = cur.MaxSlow
	}

	maxIters := p.cfg.MemLadder.Steps() + p.cfg.CoreLadder.Steps()*n
	for iter := 0; iter < maxIters && cur.Power.Total > p.capW; iter++ {
		move, ok := p.bestMove(ev, steps, memStep, cur, limits)
		if !ok {
			break
		}
		steps, memStep, cur = move.steps, move.memStep, move.eval
		under := cur.Power.Total <= p.capW
		switch {
		case under && cur.MaxSlow < bestSlow:
			bestSlow = cur.MaxSlow
			best = policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
			found = true
		case !found && cur.Power.Total < bestPower:
			// Track the lowest-power configuration as a fallback.
			bestPower = cur.Power.Total
			best = policy.Decision{CoreSteps: append([]int(nil), steps...), MemStep: memStep}
		}
	}
	return best, nil
}

type capMove struct {
	steps   []int
	memStep int
	eval    policy.Eval
}

// bestMove evaluates one memory step down and one step down for the most
// scalable core, taking whichever sheds the most power per unit slowdown.
// Slack limits are ignored once the system is over cap with no compliant
// move available — capping takes precedence over the SLO.
func (p *PowerCap) bestMove(ev *policy.Evaluator, steps []int, memStep int, cur policy.Eval, limits []float64) (capMove, bool) {
	var cands []capMove
	if !p.cfg.MemLadder.Bottom(memStep) {
		cands = append(cands, capMove{steps: append([]int(nil), steps...), memStep: memStep + 1})
	}
	for i := range steps {
		if p.cfg.CoreLadder.Bottom(steps[i]) {
			continue
		}
		s := append([]int(nil), steps...)
		s[i]++
		cands = append(cands, capMove{steps: s, memStep: memStep})
	}
	if len(cands) == 0 {
		return capMove{}, false
	}
	bestU := math.Inf(-1)
	var best capMove
	var bestOK bool
	// Prefer moves within the slack bound; fall back to any move if the
	// cap cannot otherwise be met.
	for pass := 0; pass < 2 && !bestOK; pass++ {
		for _, c := range cands {
			e := ev.Evaluate(c.steps, c.memStep)
			if pass == 0 && !policy.WithinBound(e, limits) {
				continue
			}
			dPower := cur.Power.Total - e.Power.Total
			dPerf := e.MaxSlow - cur.MaxSlow
			u := utility(dPower, dPerf)
			if u > bestU {
				bestU = u
				c.eval = e
				best = c
				bestOK = true
			}
		}
	}
	return best, bestOK
}
