package core

import (
	"math"

	"coscale/internal/perf"
	"coscale/internal/policy"
)

// Warm-start incremental search (DESIGN.md §14).
//
// The cold search redoes, every epoch, the same walk the previous epoch
// already made: server workloads spend most epochs inside stable phases
// where the counters — and therefore the accepted configuration — barely
// move. Behind Options.WarmStart the controller keeps two kinds of memory
// between epochs:
//
//   - warmTab, a (core, step)-indexed table of marginal snapshots. Every
//     time the scan kernel scores a core the result is recorded together
//     with the counter signature it was scored under (CPI, memory traffic
//     per instruction, modelled memory latency). Observed IPS is kept out
//     of the signatures deliberately: it tracks the applied frequency, so
//     the controller's own decisions would read as phase changes. A snapshot is reused
//     only while the current signature still matches its anchor within
//     PhaseEpsilon, so staleness cannot accumulate across epochs: drifting
//     cores are re-scored and their anchor refreshed.
//   - the previous decision (c.last, already kept for transitions) as the
//     warm seed, plus the previous epoch's per-core counter signature for
//     the phase detector.
//
// A warm decision first classifies the epoch (phaseStable): if too many
// cores moved, or the aggregate memory traffic/latency shifted, the phase
// broke and the cold search runs. On a stable phase the walk seeds from the
// previous solution, re-validated against THIS epoch's slowdown bound with
// one full-model evaluation — warm-starting never trusts last epoch's
// feasibility — and the eligibility list is assembled from the snapshot
// table, re-scoring only cores whose counters moved. The walk then descends
// exactly as the cold search would.
//
// Bound-safety argument: the seed is accepted only if the full evaluator
// proves it inside the scaled limits; every committed move of the descent
// runs the same full evaluation and the WithinBoundScaled backstop breaks
// the walk on any violation before `best` advances. A stale reused marginal
// can therefore only misorder the walk (costing optimality, bounded by the
// ablation's energy gate), never violate the slowdown bound.
//
// Determinism: the snapshot table is written by the same kernel that
// computes the scan outputs — one slot per (core, step), each scan item
// touching exactly one core, so sharded lanes write disjoint slots — and
// the warm list is assembled serially in core-index order. The decision
// sequence stays a pure function of (trace, options) at any lane count,
// and Reset clears the table and the phase signature so replays are
// bit-identical to a fresh controller.

// defaultPhaseEpsilon is the phase detector's relative counter-delta
// threshold when Options.PhaseEpsilon is zero. 5% absorbs sampling noise
// within a program phase while real phase transitions in the trace mixes
// move CPI/MPKI by far more.
const defaultPhaseEpsilon = 0.05

// Snapshot states of a warmTab entry.
const (
	warmNone         = uint8(iota) // never scored (or cleared by Reset)
	warmEligible                   // scored inside the bound: dTPI, dPower, tpiNext valid
	warmBoundLimited               // scored over the bound: tpiNext valid, dPower never computed
)

// warmEntry is one (core, step) cell of the marginal snapshot table: the
// kernel's outputs plus the counter signature they were scored under.
type warmEntry struct {
	dTPI    float64 // seconds/instruction added by one step down
	dPower  float64 // watts saved by one step down (warmEligible only)
	tpiNext float64 // predicted TPI after the step (for bound rechecks)
	sigCPI  float64 // CoreStats.CPIBase at scoring time
	sigMPI  float64 // CoreStats.MemPerInstr at scoring time
	sigLat  float64 // modelled memory latency at scoring time
	flags   uint8
}

// initWarm sizes the warm-start state so the warm path allocates nothing in
// steady state. Called from NewWithOptions.
func (c *CoScale) initWarm() {
	if !c.opts.WarmStart {
		return
	}
	c.warmRec = true
	c.phaseEps = c.opts.PhaseEpsilon
	if c.phaseEps <= 0 {
		c.phaseEps = defaultPhaseEpsilon
	}
	n := c.cfg.NCores
	c.warmStride = c.cfg.CoreLadder.Steps()
	c.warmTab = make([]warmEntry, n*c.warmStride)
	c.prevCPI = make([]float64, n)
	c.prevMPI = make([]float64, n)
}

// resetWarm forgets everything warm-started decisions could carry across a
// Reset: the snapshot table and the phase signature. Without this a replay
// after Reset would reuse snapshots the fresh run has not scored yet.
func (c *CoScale) resetWarm() {
	if !c.opts.WarmStart {
		return
	}
	c.prevValid = false
	clear(c.warmTab)
}

// relDelta is the symmetric relative difference |a-b| / max(|a|, |b|):
// 0 when both are zero, 1 when one of them is.
//
//hot:path
func relDelta(a, b float64) float64 {
	m := math.Abs(a)
	if bb := math.Abs(b); bb > m {
		m = bb
	}
	//lint:ignore floateq exact both-zero gate: two literal-zero counters are identical, and any nonzero m is a safe divisor
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// decideWarm is the WarmStart decision flow: classify the epoch, try the
// warm seed on a stable phase, fall back to the cold search otherwise. The
// one-hot outcome counters are documented on SearchStats.
//
//hot:path
func (c *CoScale) decideWarm(obs policy.Observation) policy.Decision {
	stable := c.phaseStable(obs)
	c.snapshotPhase(obs)
	if stable {
		if d, ok := c.searchWarm(c.ev); ok {
			c.stats.WarmHits = 1
			return d
		}
		c.stats.WarmFallbacks = 1
	}
	c.stats.ColdSearches = 1
	return c.search(c.ev)
}

// phaseStable classifies the new epoch against the previous Decide's
// signature: stable means the previous solution's shape still applies. The
// aggregate memory traffic/latency shift and the fraction of cores whose
// per-core signature moved are both phase breaks — a quarter of the cores
// changing is a program phase transition, not sampling noise.
//
//hot:path
func (c *CoScale) phaseStable(obs policy.Observation) bool {
	n := c.cfg.NCores
	if !c.prevValid || len(obs.Cores) != n {
		return false
	}
	eps := c.phaseEps
	if relDelta(c.prevMemRate, obs.MemRate) > eps ||
		relDelta(c.prevMemLat, obs.MemLatency) > eps {
		return false
	}
	moved := 0
	for i := range obs.Cores {
		co := &obs.Cores[i]
		if relDelta(c.prevCPI[i], co.Stats.CPIBase) > eps ||
			relDelta(c.prevMPI[i], co.Stats.MemPerInstr) > eps {
			moved++
		}
	}
	return moved*4 <= n
}

// snapshotPhase records this epoch's counter signature for the next
// Decide's phase classification.
//
//hot:path
func (c *CoScale) snapshotPhase(obs policy.Observation) {
	n := len(obs.Cores)
	c.prevCPI = perf.GrowFloats(c.prevCPI, n)
	c.prevMPI = perf.GrowFloats(c.prevMPI, n)
	for i := range obs.Cores {
		co := &obs.Cores[i]
		c.prevCPI[i] = co.Stats.CPIBase
		c.prevMPI[i] = co.Stats.MemPerInstr
	}
	c.prevMemRate = obs.MemRate
	c.prevMemLat = obs.MemLatency
	c.prevValid = true
}

// recordWarm snapshots a just-scored marginal into the (core, step) slot,
// anchored to the counter signature it was scored under. Race-free under
// sharded scans: every scan item maps to exactly one core, so lanes write
// disjoint slots.
//
//hot:path
func (c *CoScale) recordWarm(i, step int, tpiCur, tpiNext, dPower float64, flags uint8) {
	sc := &c.sc
	e := &c.warmTab[i*c.warmStride+step]
	e.dTPI = tpiNext - tpiCur
	e.dPower = dPower
	e.tpiNext = tpiNext
	e.sigCPI = sc.stats[i].CPIBase
	e.sigMPI = sc.stats[i].MemPerInstr
	e.sigLat = sc.lat
	e.flags = flags
}

// searchWarm seeds the walk from the previous accepted configuration. The
// seed is re-validated with the full evaluator against this epoch's limits;
// a violation returns ok = false and the caller falls back to the cold
// search. On acceptance the walk descends exactly as the cold search would
// — the savings come from the kernel-level snapshot reuse (warmReuse),
// which serves both the initial eligibility rebuild at the seed and the
// repair scans of the descent's tail from the table.
//
//hot:path
func (c *CoScale) searchWarm(ev *policy.Evaluator) (policy.Decision, bool) {
	n := c.cfg.NCores
	if len(c.last.CoreSteps) != n {
		return policy.Decision{}, false
	}
	st := &c.st
	st.steps = perf.ResizeInts(st.steps, n)
	copy(st.steps, c.last.CoreSteps)
	st.memStep = c.last.MemStep
	c.stats.Evals++
	ev.EvaluateInto(&st.cur, st.steps, st.memStep)
	if !policy.WithinBoundScaled(st.cur, c.scaled) {
		return policy.Decision{}, false
	}
	st.memValid, st.coreValid = false, false
	return c.descend(ev, st), true
}

// warmReuse is the scan kernel's cross-epoch memoization: if the (core,
// step) snapshot's counter signature still matches the current counters
// within PhaseEpsilon, the recorded marginal is served instead of re-scored
// — after rechecking the slowdown bound against THIS epoch's limits using
// the snapshot's predicted post-step TPI, so stale eligibility can never
// leak through. Cores recorded as bound-limited skip for free while they
// stay ineligible; one that becomes eligible again is not handled here
// (its dPower was never computed) and falls through to a full re-score,
// which refreshes the snapshot anchor. Deterministic at any lane count:
// the reuse decision is a pure per-item function of the table and the
// scan snapshot, and it writes nothing.
//
//hot:path
func (c *CoScale) warmReuse(i, step int, pos int32) (coreMarg, bool) {
	sc := &c.sc
	e := &c.warmTab[i*c.warmStride+step]
	eps := c.phaseEps
	if e.flags == warmNone ||
		relDelta(e.sigCPI, sc.stats[i].CPIBase) > eps ||
		relDelta(e.sigMPI, sc.stats[i].MemPerInstr) > eps ||
		relDelta(e.sigLat, sc.lat) > eps {
		return coreMarg{}, false
	}
	if e.tpiNext/sc.base[i] > c.scaled[i] {
		return coreMarg{core: -1}, true
	}
	if e.flags == warmEligible {
		return coreMarg{
			core:   int32(i),
			pos:    pos,
			dTPI:   e.dTPI,
			dPerf:  e.dTPI / sc.base[i],
			dPower: e.dPower,
		}, true
	}
	return coreMarg{}, false
}
