package core

// Property test for the memoized per-epoch prediction tables (DESIGN.md §10):
// the table path must be *bit-identical* to direct model evaluation — not
// approximately equal, identical — across core counts, ladder sizes, and
// randomized profiling observations. The tables are rebuilt from the same
// model with the same operation order, so any divergence is a bug in the
// memoization, and the first diverging seed is reproducible from the
// iteration number printed on failure.

import (
	"math"
	"testing"
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// propCfg builds a config with coreSteps/memSteps-point ladders.
func propCfg(n, coreSteps, memSteps int) policy.Config {
	return policy.Config{
		NCores:     n,
		CoreLadder: must(freq.CoreLadderN(coreSteps)),
		MemLadder:  must(freq.MemLadderN(memSteps)),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(n),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
	}
}

// randObs draws a random but physically plausible profiling observation:
// per-core intensities spanning compute-bound to memory-bound, MLP both at
// the ==1 fast path and above it, and varied aggregate memory traffic.
func randObs(rng *trace.Rand, n int) policy.Observation {
	obs := policy.Observation{
		Window:     100e-6 + rng.Float64()*400e-6,
		CoreSteps:  policy.ZeroSteps(n),
		Cores:      make([]policy.CoreObs, n),
		MemRate:    1e8 + rng.Float64()*4e8,
		MemLatency: 40e-9 + rng.Float64()*80e-9,
		UtilBus:    0.1 + rng.Float64()*0.6,
		BusyFrac:   0.2 + rng.Float64()*0.7,
	}
	for i := range obs.Cores {
		beta := 0.0002 + rng.Float64()*0.02
		mlp := 1.0
		if rng.Float64() < 0.3 {
			mlp = 1 + rng.Float64()*3
		}
		obs.Cores[i] = policy.CoreObs{
			Instructions: 100_000 + rng.Uint64()%2_000_000,
			Stats: perf.CoreStats{
				CPIBase:     0.9 + rng.Float64()*0.8,
				Alpha:       0.002 + rng.Float64()*0.03,
				StallL2:     7.5e-9,
				Beta:        beta,
				MemPerInstr: beta * (1.1 + rng.Float64()),
				MLP:         mlp,
			},
			L2PerInstr: 0.005 + rng.Float64()*0.03,
			Mix: trace.InstrMix{ALU: 0.2 + rng.Float64()*0.2, FPU: rng.Float64() * 0.3,
				Branch: 0.05 + rng.Float64()*0.1, LoadStore: 0.2 + rng.Float64()*0.2},
			IPS: 1e9 + rng.Float64()*3e9,
		}
	}
	return obs
}

// requireBitsEqual compares two predictions field by field with
// math.Float64bits — the bit pattern, not tolerance-based closeness.
func requireBitsEqual(t *testing.T, ctx string, tab, dir policy.Eval) {
	t.Helper()
	eq := func(field string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %s diverges: table %v (%#x) vs direct %v (%#x)",
				ctx, field, a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
	eq("SER", tab.SER, dir.SER)
	eq("MaxSlow", tab.MaxSlow, dir.MaxSlow)
	eq("Power.CPU", tab.Power.CPU, dir.Power.CPU)
	eq("Power.L2", tab.Power.L2, dir.Power.L2)
	eq("Power.Mem", tab.Power.Mem, dir.Power.Mem)
	eq("Power.Rest", tab.Power.Rest, dir.Power.Rest)
	eq("Power.Total", tab.Power.Total, dir.Power.Total)
	eq("MemLoad.Latency", tab.MemLoad.Latency, dir.MemLoad.Latency)
	eq("MemLoad.XiBus", tab.MemLoad.XiBus, dir.MemLoad.XiBus)
	eq("MemLoad.XiBank", tab.MemLoad.XiBank, dir.MemLoad.XiBank)
	eq("MemLoad.UtilBus", tab.MemLoad.UtilBus, dir.MemLoad.UtilBus)
	eq("MemLoad.UtilBank", tab.MemLoad.UtilBank, dir.MemLoad.UtilBank)
	if len(tab.TPI) != len(dir.TPI) {
		t.Fatalf("%s: TPI length %d vs %d", ctx, len(tab.TPI), len(dir.TPI))
	}
	for i := range dir.TPI {
		if math.Float64bits(tab.TPI[i]) != math.Float64bits(dir.TPI[i]) {
			t.Fatalf("%s: TPI[%d] diverges: %v vs %v", ctx, i, tab.TPI[i], dir.TPI[i])
		}
		if math.Float64bits(tab.Slowdown[i]) != math.Float64bits(dir.Slowdown[i]) {
			t.Fatalf("%s: Slowdown[%d] diverges: %v vs %v", ctx, i, tab.Slowdown[i], dir.Slowdown[i])
		}
	}
}

// TestTablesBitIdenticalToDirect is the memoization cross-check: a CoScale
// controller on the table path and one with DisableTables must choose the
// exact same frequencies (steps, not approximately equal Hz) on every random
// observation, and the evaluators behind them must predict bit-identical
// energy at both the chosen point and a random off-decision point. Both
// controllers also Observe every epoch so accumulated slack — and with it
// the search's feasibility frontier — varies across iterations.
func TestTablesBitIdenticalToDirect(t *testing.T) {
	rng := trace.NewRand(2026)
	const perCombo = 35
	iters := 0
	for _, n := range []int{4, 16, 64, 128} {
		for _, lad := range []struct{ core, mem int }{{10, 10}, {5, 3}, {16, 8}} {
			cfg := propCfg(n, lad.core, lad.mem)
			csTab := must(New(cfg))
			csDir := must(NewWithOptions(cfg, Options{DisableTables: true}))
			evTab := &policy.Evaluator{UseTables: true}
			evDir := &policy.Evaluator{}
			for k := 0; k < perCombo; k++ {
				iters++
				obs := randObs(rng, n)
				dTab := csTab.Decide(obs)
				dDir := csDir.Decide(obs)
				if dTab.MemStep != dDir.MemStep {
					t.Fatalf("iter %d (n=%d ladders %d/%d): MemStep %d vs %d",
						iters, n, lad.core, lad.mem, dTab.MemStep, dDir.MemStep)
				}
				for i := range dDir.CoreSteps {
					if dTab.CoreSteps[i] != dDir.CoreSteps[i] {
						t.Fatalf("iter %d (n=%d ladders %d/%d): CoreSteps[%d] %d vs %d",
							iters, n, lad.core, lad.mem, i, dTab.CoreSteps[i], dDir.CoreSteps[i])
					}
				}

				evTab.Reset(cfg, obs)
				evDir.Reset(cfg, obs)
				var eTab, eDir policy.Eval
				evTab.EvaluateInto(&eTab, dTab.CoreSteps, dTab.MemStep)
				evDir.EvaluateInto(&eDir, dDir.CoreSteps, dDir.MemStep)
				requireBitsEqual(t, "decision point", eTab, eDir)

				steps := make([]int, n)
				for i := range steps {
					steps[i] = int(rng.Intn(uint64(cfg.CoreLadder.Steps())))
				}
				memStep := int(rng.Intn(uint64(cfg.MemLadder.Steps())))
				evTab.EvaluateInto(&eTab, steps, memStep)
				evDir.EvaluateInto(&eDir, steps, memStep)
				requireBitsEqual(t, "random point", eTab, eDir)

				// Keep both controllers' slack books in lockstep.
				csTab.Observe(obs)
				csDir.Observe(obs)
			}
		}
	}
	if iters < 400 {
		t.Fatalf("only %d property iterations, want >= 400", iters)
	}
}

// TestTablePathZeroAllocWarm gates the memoized path's steady state directly
// at the controller level: once the per-epoch tables and scratch are warm,
// Decide on the table path must not allocate, even across *changing*
// observations (table Reset reuses its backing arrays).
func TestTablePathZeroAllocWarm(t *testing.T) {
	cfg := propCfg(64, 10, 10)
	cs := must(New(cfg))
	rng := trace.NewRand(7)
	a := randObs(rng, 64)
	b := randObs(rng, 64)
	cs.Decide(a) // warm-up sizes every scratch buffer and table
	cs.Decide(b)
	obs := [2]policy.Observation{a, b}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		cs.Decide(obs[i&1])
		i++
	})
	if avg != 0 {
		t.Errorf("warm table-path Decide allocates %.1f times per call, want 0", avg)
	}
}

// TestResetBitIdentity pins CoScale.Reset's contract: a reset controller
// must replay a decision/observation sequence bit-identically to a fresh
// one, with warm scratch invisible in the output.
func TestResetBitIdentity(t *testing.T) {
	cfg := propCfg(16, 10, 10)
	cs := must(New(cfg))
	run := func(c *CoScale) []policy.Decision {
		rng := trace.NewRand(99)
		var out []policy.Decision
		for k := 0; k < 5; k++ {
			obs := randObs(rng, 16)
			out = append(out, c.Decide(obs).Clone())
			c.Observe(obs)
		}
		return out
	}
	first := run(cs)
	cs.Reset()
	second := run(cs)
	fresh := run(must(New(cfg)))
	for k := range first {
		for _, got := range []struct {
			name string
			d    policy.Decision
		}{{"reset", second[k]}, {"fresh", fresh[k]}} {
			if got.d.MemStep != first[k].MemStep {
				t.Fatalf("epoch %d (%s): MemStep %d vs %d", k, got.name, got.d.MemStep, first[k].MemStep)
			}
			for i := range first[k].CoreSteps {
				if got.d.CoreSteps[i] != first[k].CoreSteps[i] {
					t.Fatalf("epoch %d (%s): CoreSteps[%d] %d vs %d",
						k, got.name, i, got.d.CoreSteps[i], first[k].CoreSteps[i])
				}
			}
		}
	}
}

// TestSearchStatsCounts sanity-checks the per-decision work counters the
// benchmarks and the serving layer report: a non-trivial decision commits
// at least one move, and every committed group move plus every candidate
// memory evaluation contributes to Evals.
func TestSearchStatsCounts(t *testing.T) {
	cfg := propCfg(16, 10, 10)
	cs := must(New(cfg))
	obs := randObs(trace.NewRand(3), 16)
	d := cs.Decide(obs)
	st := cs.SearchStats()
	total := d.MemStep
	for _, s := range d.CoreSteps {
		total += s
	}
	if total > 0 && st.Moves == 0 {
		t.Errorf("decision scaled %d steps but SearchStats.Moves = 0", total)
	}
	if st.Evals < st.Moves {
		t.Errorf("Evals %d < Moves %d: every group move runs the joint model", st.Evals, st.Moves)
	}
	if st.Moves < d.MemStep {
		t.Errorf("Moves %d < MemStep %d: each memory step is one move", st.Moves, d.MemStep)
	}
}
