package core

import (
	"runtime"

	"coscale/internal/policy"
)

// DecideItem is one controller decision in a batch: controller, its epoch
// observation, and the slot its decision lands in. As with Decide, Out
// aliases the controller's scratch and is valid until that controller's
// next decision; retain with Clone.
type DecideItem struct {
	C   *CoScale
	Obs policy.Observation
	Out policy.Decision
}

// Batcher runs batches of independent controller decisions across a
// persistent set of worker lanes — coscale-serve's epoch fan-out and the
// multi-engine sweeps, batched so the lanes and their scratch are reused
// every epoch (zero steady-state allocations).
//
// Determinism needs no merge argument here: items are mutually independent
// (each decision reads and writes only its own controller and its fixed
// item slot), so lane scheduling cannot affect any output. The one rule is
// that a controller must appear at most once per batch — two concurrent
// Decide calls on one controller race on its scratch. Controllers inside a
// batch should be serial (Options.Parallelism 1): the batch already fills
// the machine with one decision per lane, and nested fan-out just adds
// signalling. Results are unchanged either way.
type Batcher struct {
	pool  *workerPool
	items []DecideItem // batch in flight; nil between runs
	lanes int          // lanes participating in the current run
}

// NewBatcher returns a batcher with resolveLanes(parallelism) worker lanes
// (0 = GOMAXPROCS; <= 1 decides inline). Lanes start lazily on the first
// parallel Run; release them with Close (a finalizer backstops leaks).
func NewBatcher(parallelism int) *Batcher {
	b := &Batcher{}
	if lanes := resolveLanes(parallelism); lanes > 1 {
		b.pool = newWorkerPool(lanes)
		runtime.SetFinalizer(b, (*Batcher).Close)
	}
	return b
}

// Close releases the batcher's worker lanes. Idempotent; must not be called
// concurrently with Run.
func (b *Batcher) Close() {
	if b.pool != nil {
		b.pool.close()
		runtime.SetFinalizer(b, nil)
	}
}

// Run decides every item, filling each item's Out slot. Inline when the
// batcher is serial or the batch is trivial; otherwise each lane runs a
// fixed contiguous item range.
//
//hot:path
func (b *Batcher) Run(items []DecideItem) {
	if b.pool == nil || len(items) < 2 {
		for i := range items {
			items[i].Out = items[i].C.Decide(items[i].Obs)
		}
		return
	}
	lanes := b.pool.lanes
	if lanes > len(items) {
		lanes = len(items)
	}
	b.items, b.lanes = items, lanes
	b.pool.scatter(b, lanes)
	b.items = nil // lanes must not pin the batch between runs
}

// runShard implements shardRunner: lane s decides its fixed contiguous item
// range [s·len/lanes, (s+1)·len/lanes).
//
//hot:path
func (b *Batcher) runShard(s int) {
	items, lanes := b.items, b.lanes
	for j := s * len(items) / lanes; j < (s+1)*len(items)/lanes; j++ {
		items[j].Out = items[j].C.Decide(items[j].Obs)
	}
}

// DecideAll is the one-shot convenience over Batcher: decide every item
// with a transient worker set. Callers deciding every epoch should hold a
// Batcher instead, so the lanes persist.
func DecideAll(items []DecideItem, parallelism int) {
	b := NewBatcher(parallelism)
	defer b.Close()
	b.Run(items)
}
