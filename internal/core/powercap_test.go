package core

import (
	"errors"
	"testing"

	"coscale/internal/policy"
	"coscale/internal/power"
)

func TestPowerCapValidation(t *testing.T) {
	if _, err := NewPowerCap(testCfg(4), 0); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestPowerCapName(t *testing.T) {
	p := must(NewPowerCap(testCfg(4), 200))
	if p.Name() != "CoScale-PowerCap" || p.Cap() != 200 {
		t.Errorf("Name/Cap = %s/%g", p.Name(), p.Cap())
	}
}

func TestPowerCapMeetsBudget(t *testing.T) {
	cfg := testCfg(16)
	cfg.Gamma = 0.10
	obs := synthObs(cfg, uniform(16, compute))
	ev := policy.NewEvaluator(cfg, obs)
	full := ev.Baseline().Power.Total

	for _, frac := range []float64{0.9, 0.75, 0.6} {
		cap := full * frac
		d := must(NewPowerCap(cfg, cap)).Decide(obs)
		e := ev.Evaluate(d.CoreSteps, d.MemStep)
		if e.Power.Total > cap*1.001 {
			t.Errorf("cap %.0f W (%.0f%%): predicted power %.0f W over budget", cap, frac*100, e.Power.Total)
		}
	}
}

func TestPowerCapPrefersFastestCompliantPoint(t *testing.T) {
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(8, compute))
	ev := policy.NewEvaluator(cfg, obs)
	full := ev.Baseline().Power.Total

	// A generous cap should not slow the system at all.
	d := must(NewPowerCap(cfg, full*1.05)).Decide(obs)
	e := ev.Evaluate(d.CoreSteps, d.MemStep)
	if e.MaxSlow > 1.0001 {
		t.Errorf("generous cap caused slowdown %.4f", e.MaxSlow)
	}

	// A tighter cap slows things, but monotonically: a lower cap must not
	// give a faster system.
	d90 := must(NewPowerCap(cfg, full*0.9)).Decide(obs)
	d70 := must(NewPowerCap(cfg, full*0.7)).Decide(obs)
	s90 := ev.Evaluate(d90.CoreSteps, d90.MemStep).MaxSlow
	s70 := ev.Evaluate(d70.CoreSteps, d70.MemStep).MaxSlow
	if s70 < s90-1e-9 {
		t.Errorf("tighter cap produced faster system: %.4f vs %.4f", s70, s90)
	}
}

func TestPowerCapUnreachableFallsBackToMinimumPower(t *testing.T) {
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(8, memory))
	ev := policy.NewEvaluator(cfg, obs)
	d := must(NewPowerCap(cfg, 1)).Decide(obs) // 1 W: impossible
	e := ev.Evaluate(d.CoreSteps, d.MemStep)
	// Must be at or near the ladder bottoms.
	if d.MemStep != cfg.MemLadder.Steps()-1 {
		t.Errorf("memory not at bottom: step %d", d.MemStep)
	}
	for i, s := range d.CoreSteps {
		if s != cfg.CoreLadder.Steps()-1 {
			t.Errorf("core %d not at bottom: step %d", i, s)
		}
	}
	if e.Power.Total >= ev.Baseline().Power.Total {
		t.Error("fallback did not reduce power")
	}
}

func TestPowerCapInfeasibleClampsToMinimum(t *testing.T) {
	// A cap below the all-minimum-frequency power must clamp to the ladder
	// floor and surface the typed error instead of silently thrashing.
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(8, memory))
	ev := policy.NewEvaluator(cfg, obs)
	minSteps := make([]int, 8)
	for i := range minSteps {
		minSteps[i] = cfg.CoreLadder.Steps() - 1
	}
	minMem := cfg.MemLadder.Steps() - 1
	floor := ev.Evaluate(minSteps, minMem).Power.Total

	p := must(NewPowerCap(cfg, floor*0.5))
	d, err := p.DecideCapped(obs)
	if !errors.Is(err, ErrCapInfeasible) {
		t.Fatalf("DecideCapped(cap %.1f W < floor %.1f W) err = %v, want ErrCapInfeasible", floor*0.5, floor, err)
	}
	if d.MemStep != minMem {
		t.Errorf("memory not clamped to bottom: step %d", d.MemStep)
	}
	for i, s := range d.CoreSteps {
		if s != cfg.CoreLadder.Steps()-1 {
			t.Errorf("core %d not clamped to bottom: step %d", i, s)
		}
	}
	// Decide (the policy.Policy form) returns the same clamp, error swallowed.
	d2 := p.Decide(obs)
	if d2.MemStep != d.MemStep || len(d2.CoreSteps) != len(d.CoreSteps) {
		t.Error("Decide disagrees with DecideCapped on the infeasible clamp")
	}
}

func TestPowerCapFeasibleAtExactFloor(t *testing.T) {
	// The boundary: a cap exactly at (or a hair above) the minimum
	// achievable power is feasible — no error, and the cap is met.
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(8, memory))
	ev := policy.NewEvaluator(cfg, obs)
	minSteps := make([]int, 8)
	for i := range minSteps {
		minSteps[i] = cfg.CoreLadder.Steps() - 1
	}
	floor := ev.Evaluate(minSteps, cfg.MemLadder.Steps()-1).Power.Total

	p := must(NewPowerCap(cfg, floor))
	d, err := p.DecideCapped(obs)
	if err != nil {
		t.Fatalf("cap exactly at the floor reported infeasible: %v", err)
	}
	if e := ev.Evaluate(d.CoreSteps, d.MemStep); e.Power.Total > floor*(1+1e-9) {
		t.Errorf("decision power %.3f W exceeds the floor cap %.3f W", e.Power.Total, floor)
	}
}

func TestPowerCapSetCap(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewPowerCap(cfg, 300))
	if err := p.SetCap(0); err == nil {
		t.Error("SetCap(0) accepted")
	}
	if err := p.SetCap(-5); err == nil {
		t.Error("SetCap(-5) accepted")
	}
	if p.Cap() != 300 {
		t.Errorf("rejected SetCap mutated the cap: %g", p.Cap())
	}
	if err := p.SetCap(150); err != nil {
		t.Fatalf("SetCap(150): %v", err)
	}
	if p.Cap() != 150 {
		t.Errorf("Cap after SetCap = %g, want 150", p.Cap())
	}
	// The new cap governs subsequent decisions.
	obs := synthObs(cfg, uniform(4, compute))
	ev := policy.NewEvaluator(cfg, obs)
	d := p.Decide(obs)
	if e := ev.Evaluate(d.CoreSteps, d.MemStep); e.Power.Total > 150*1.001 {
		t.Errorf("decision ignores SetCap: %.1f W > 150 W", e.Power.Total)
	}
}

func TestPowerCapObserveAccumulatesSlack(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewPowerCap(cfg, 300))
	obs := synthObs(cfg, uniform(4, compute))
	obs.Window = cfg.EpochLen.Seconds()
	p.Observe(obs) // must not panic; slack bookkeeping exercised
}

func TestPowerCapRespectsCapOverSLO(t *testing.T) {
	// When the cap and the SLO conflict, the cap wins (capping exists to
	// protect the branch circuit, not the workload).
	cfg := testCfg(8)
	cfg.Gamma = 0.01 // very tight SLO
	obs := synthObs(cfg, uniform(8, compute))
	ev := policy.NewEvaluator(cfg, obs)
	full := ev.Baseline().Power.Total
	cap := full * 0.65
	d := must(NewPowerCap(cfg, cap)).Decide(obs)
	e := ev.Evaluate(d.CoreSteps, d.MemStep)
	if e.Power.Total > cap*1.001 {
		t.Errorf("cap not met under tight SLO: %.0f W > %.0f W", e.Power.Total, cap)
	}
}

func TestPowerCapWithRescaledSystem(t *testing.T) {
	// Works under non-default power calibrations too (Fig. 12/13 knobs).
	cfg := testCfg(8)
	cfg.Power = power.CalibratedSystem(8, 0.3, 0.6, 0.1)
	obs := synthObs(cfg, uniform(8, memory))
	ev := policy.NewEvaluator(cfg, obs)
	cap := ev.Baseline().Power.Total * 0.8
	d := must(NewPowerCap(cfg, cap)).Decide(obs)
	if e := ev.Evaluate(d.CoreSteps, d.MemStep); e.Power.Total > cap*1.001 {
		t.Errorf("cap not met on rescaled system: %.0f > %.0f", e.Power.Total, cap)
	}
}
