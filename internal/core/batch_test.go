package core

import (
	"testing"

	"coscale/internal/trace"
)

// TestBatchDecideMatchesSequential checks the Batcher's contract: a batch
// of independent controllers decided across worker lanes produces exactly
// the decisions a sequential loop over twin controllers produces, epoch
// after epoch (slack state advancing in lockstep on both sides).
func TestBatchDecideMatchesSequential(t *testing.T) {
	cfg := propCfg(32, 10, 8)
	const k = 6
	items := make([]DecideItem, k)
	seq := make([]*CoScale, k)
	for j := 0; j < k; j++ {
		items[j] = DecideItem{C: must(NewWithOptions(cfg, Options{Parallelism: 1}))}
		seq[j] = must(NewWithOptions(cfg, Options{Parallelism: 1}))
	}
	b := NewBatcher(4)
	defer b.Close()
	// Two identically seeded streams generate the same observation sequence
	// for the batched and the sequential side.
	rngA := trace.NewRand(77)
	rngB := trace.NewRand(77)
	for e := 0; e < 4; e++ {
		for j := range items {
			items[j].Obs = randObs(rngA, 32)
		}
		b.Run(items)
		for j := 0; j < k; j++ {
			obs := randObs(rngB, 32)
			want := seq[j].Decide(obs)
			requireSameDecision(t, "epoch "+itoa(e)+" item "+itoa(j), want, items[j].Out)
			seq[j].Observe(obs)
			items[j].C.Observe(items[j].Obs)
		}
	}
}

// TestBatchRunZeroAllocWarm gates the batched steady state: a persistent
// Batcher re-running a warm batch must not allocate — each item's Decide is
// already zero-alloc warm, and the batch fan-out adds only channel
// handshakes on persistent lanes.
func TestBatchRunZeroAllocWarm(t *testing.T) {
	cfg := propCfg(32, 10, 8)
	const k = 4
	rng := trace.NewRand(9)
	items := make([]DecideItem, k)
	for j := range items {
		items[j] = DecideItem{
			C:   must(NewWithOptions(cfg, Options{Parallelism: 1})),
			Obs: randObs(rng, 32),
		}
	}
	b := NewBatcher(2)
	defer b.Close()
	b.Run(items) // warm-up: starts lanes, sizes every controller's scratch
	b.Run(items)
	avg := testing.AllocsPerRun(50, func() { b.Run(items) })
	if avg != 0 {
		t.Errorf("warm Batcher.Run allocates %.1f times per call, want 0", avg)
	}
}

// TestDecideAllOneShot covers the transient convenience wrapper, including
// the inline small-batch path.
func TestDecideAllOneShot(t *testing.T) {
	cfg := propCfg(16, 10, 8)
	rng := trace.NewRand(5)
	obs := randObs(rng, 16)
	ref := must(New(cfg))
	want := ref.Decide(obs)
	for _, par := range []int{1, 4} {
		items := []DecideItem{{C: must(New(cfg)), Obs: obs}}
		DecideAll(items, par)
		requireSameDecision(t, "parallelism "+itoa(par), want, items[0].Out)
	}
}

// TestSearchStatsUnderBatch pins that batching does not perturb per-
// controller work counters: each controller's SearchStats after a batched
// run equals its twin's after a sequential run.
func TestSearchStatsUnderBatch(t *testing.T) {
	cfg := propCfg(32, 10, 8)
	const k = 3
	items := make([]DecideItem, k)
	seq := make([]*CoScale, k)
	rngA := trace.NewRand(13)
	rngB := trace.NewRand(13)
	for j := 0; j < k; j++ {
		items[j] = DecideItem{C: must(New(cfg)), Obs: randObs(rngA, 32)}
		seq[j] = must(New(cfg))
	}
	b := NewBatcher(3)
	defer b.Close()
	b.Run(items)
	for j := 0; j < k; j++ {
		want := seq[j].Decide(randObs(rngB, 32))
		_ = want
		if got, exp := items[j].C.SearchStats(), seq[j].SearchStats(); got != exp {
			t.Errorf("item %d: SearchStats %+v vs sequential %+v", j, got, exp)
		}
	}
}
