package core

import (
	"math"
	"testing"
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// must unwraps a constructor's (value, error) pair for test setup; a
// non-nil error is a broken fixture, reported by panicking (Go forbids
// f(t, g()) with a multi-valued g, so the helper cannot also take t).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func testCfg(n int) policy.Config {
	return policy.Config{
		NCores:     n,
		CoreLadder: freq.DefaultCoreLadder(),
		MemLadder:  freq.DefaultMemLadder(),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(n),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
	}
}

func synthObs(cfg policy.Config, perCore []perf.CoreStats) policy.Observation {
	sv := perf.NewSolver(cfg.Mem)
	hz := make([]float64, len(perCore))
	for i := range hz {
		hz[i] = cfg.CoreLadder.MaxHz()
	}
	res := sv.Solve(perCore, hz, cfg.MemLadder.MaxHz())
	obs := policy.Observation{
		Window:     300e-6,
		CoreSteps:  policy.ZeroSteps(len(perCore)),
		Cores:      make([]policy.CoreObs, len(perCore)),
		MemRate:    res.MemRate,
		MemLatency: res.Mem.Latency,
		UtilBus:    res.Mem.UtilBus,
		BusyFrac:   math.Min(1, res.Mem.UtilBank*8),
	}
	for i := range perCore {
		obs.Cores[i] = policy.CoreObs{
			Instructions: uint64(300e-6 / res.TPI[i]),
			Stats:        perCore[i],
			L2PerInstr:   perCore[i].Alpha,
			Mix:          trace.InstrMix{ALU: 0.3, FPU: 0.2, Branch: 0.1, LoadStore: 0.3},
			IPS:          1 / res.TPI[i],
		}
	}
	return obs
}

func uniform(n int, s perf.CoreStats) []perf.CoreStats {
	out := make([]perf.CoreStats, n)
	for i := range out {
		out[i] = s
	}
	return out
}

var (
	compute = perf.CoreStats{CPIBase: 1.1, Alpha: 0.003, StallL2: 7.5e-9, Beta: 0.0003,
		MemPerInstr: 0.0005, MLP: 1}
	memory = perf.CoreStats{CPIBase: 1.4, Alpha: 0.03, StallL2: 7.5e-9, Beta: 0.017,
		MemPerInstr: 0.022, MLP: 1}
)

func TestNewValidates(t *testing.T) {
	if _, err := New(policy.Config{}); err == nil {
		t.Error("New with invalid config returned no error")
	}
}

func TestName(t *testing.T) {
	cfg := testCfg(4)
	if got := must(New(cfg)).Name(); got != "CoScale" {
		t.Errorf("Name() = %s", got)
	}
	if got := must(NewWithOptions(cfg, Options{DisableGrouping: true})).Name(); got != "CoScale-NoGrouping" {
		t.Errorf("Name() = %s", got)
	}
	if got := must(NewWithOptions(cfg, Options{DisableMarginalCache: true})).Name(); got != "CoScale-NoCache" {
		t.Errorf("Name() = %s", got)
	}
}

func TestDecideRespectsPredictedBound(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stats perf.CoreStats
	}{{"compute", compute}, {"memory", memory}} {
		cfg := testCfg(8)
		cs := must(New(cfg))
		obs := synthObs(cfg, uniform(8, tc.stats))
		d := cs.Decide(obs)
		ev := policy.NewEvaluator(cfg, obs)
		e := ev.Evaluate(d.CoreSteps, d.MemStep)
		if e.MaxSlow > 1.10+1e-9 {
			t.Errorf("%s: predicted slowdown %.4f exceeds bound", tc.name, e.MaxSlow)
		}
		if e.SER >= 1 {
			t.Errorf("%s: decision SER %.4f does not save energy", tc.name, e.SER)
		}
	}
}

func TestDecidePicksTheRightKnob(t *testing.T) {
	cfg := testCfg(8)

	// Compute-bound: memory should be scaled deep, cores barely.
	d := must(New(cfg)).Decide(synthObs(cfg, uniform(8, compute)))
	if d.MemStep < 5 {
		t.Errorf("compute-bound: memory only scaled to step %d", d.MemStep)
	}

	// Memory-bound: memory should stay high, cores scale deep.
	d = must(New(cfg)).Decide(synthObs(cfg, uniform(8, memory)))
	if d.MemStep > 3 {
		t.Errorf("memory-bound: memory scaled to step %d, should stay high", d.MemStep)
	}
	sum := 0
	for _, s := range d.CoreSteps {
		sum += s
	}
	if sum < 8 {
		t.Errorf("memory-bound: cores barely scaled (steps %v)", d.CoreSteps)
	}
}

func TestHeterogeneousCoresGetDifferentSteps(t *testing.T) {
	// Half the cores compute-bound, half memory-bound: CoScale should
	// scale the memory-bound cores further down (their marginal
	// performance cost is lower).
	cfg := testCfg(8)
	perCore := append(uniform(4, compute), uniform(4, memory)...)
	d := must(New(cfg)).Decide(synthObs(cfg, perCore))
	avgCompute, avgMemory := 0.0, 0.0
	for i := 0; i < 4; i++ {
		avgCompute += float64(d.CoreSteps[i]) / 4
		avgMemory += float64(d.CoreSteps[i+4]) / 4
	}
	if avgMemory <= avgCompute {
		t.Errorf("memory-bound cores (avg step %.1f) should scale below compute-bound (%.1f): %v",
			avgMemory, avgCompute, d.CoreSteps)
	}
}

func TestGroupingEscapesLocalMinimum(t *testing.T) {
	// §3.1: without group moves the heuristic always lowers memory first
	// and can get stuck. With many identical cores, grouping should find
	// an equal-or-better SER.
	cfg := testCfg(16)
	obs := synthObs(cfg, uniform(16, perf.CoreStats{CPIBase: 1.25, Alpha: 0.008,
		StallL2: 7.5e-9, Beta: 0.0022, MemPerInstr: 0.004, MLP: 1}))
	ev := policy.NewEvaluator(cfg, obs)

	with := must(New(cfg)).Decide(obs)
	without := must(NewWithOptions(cfg, Options{DisableGrouping: true})).Decide(obs)
	serWith := ev.Evaluate(with.CoreSteps, with.MemStep).SER
	serWithout := ev.Evaluate(without.CoreSteps, without.MemStep).SER
	if serWith > serWithout+1e-9 {
		t.Errorf("grouping made things worse: %.5f > %.5f", serWith, serWithout)
	}
	t.Logf("SER with grouping %.5f, without %.5f", serWith, serWithout)
}

func TestMarginalCacheMatchesUncached(t *testing.T) {
	// The Figure 2 caching is an efficiency device; decisions with and
	// without it should produce very similar energy outcomes.
	cfg := testCfg(8)
	perCore := append(uniform(4, compute), uniform(4, memory)...)
	obs := synthObs(cfg, perCore)
	ev := policy.NewEvaluator(cfg, obs)
	cached := must(New(cfg)).Decide(obs)
	uncached := must(NewWithOptions(cfg, Options{DisableMarginalCache: true})).Decide(obs)
	a := ev.Evaluate(cached.CoreSteps, cached.MemStep).SER
	b := ev.Evaluate(uncached.CoreSteps, uncached.MemStep).SER
	if math.Abs(a-b) > 0.02 {
		t.Errorf("cached SER %.4f vs uncached %.4f differ too much", a, b)
	}
}

func TestNegativeSlackForcesMaxFrequency(t *testing.T) {
	cfg := testCfg(4)
	cs := must(New(cfg))
	obs := synthObs(cfg, uniform(4, compute))
	// Deliver epochs that ran way over bound so slack goes deeply negative.
	slow := obs
	slow.Window = cfg.EpochLen.Seconds() * 2
	cs.Observe(slow)
	cs.Observe(slow)
	d := cs.Decide(obs)
	for i, s := range d.CoreSteps {
		if s != 0 {
			t.Errorf("core %d at step %d despite negative slack", i, s)
		}
	}
	if d.MemStep != 0 {
		t.Errorf("memory at step %d despite negative slack", d.MemStep)
	}
}

func TestSlackAccumulationAllowsDeeperScaling(t *testing.T) {
	cfg := testCfg(4)
	cs := must(New(cfg))
	obs := synthObs(cfg, uniform(4, compute))
	d1 := cs.Decide(obs)
	// Several fast epochs bank slack...
	fast := obs
	fast.Window = cfg.EpochLen.Seconds() * 0.999
	for i := range fast.Cores {
		fast.Cores[i].Instructions = uint64(cfg.EpochLen.Seconds() / 3e-10)
	}
	for k := 0; k < 5; k++ {
		cs.Observe(fast)
	}
	d2 := cs.Decide(obs)
	sum := func(d policy.Decision) int {
		s := d.MemStep
		for _, c := range d.CoreSteps {
			s += c
		}
		return s
	}
	if sum(d2) < sum(d1) {
		t.Errorf("banked slack should allow at least as deep scaling: %v/%d vs %v/%d",
			d2.CoreSteps, d2.MemStep, d1.CoreSteps, d1.MemStep)
	}
}

func TestDecideDeterministic(t *testing.T) {
	cfg := testCfg(8)
	obs := synthObs(cfg, append(uniform(4, compute), uniform(4, memory)...))
	d1 := must(New(cfg)).Decide(obs)
	d2 := must(New(cfg)).Decide(obs)
	if d1.MemStep != d2.MemStep {
		t.Error("decisions differ across identical controllers")
	}
	for i := range d1.CoreSteps {
		if d1.CoreSteps[i] != d2.CoreSteps[i] {
			t.Error("core steps differ across identical controllers")
		}
	}
}

func TestSearchHandlesSingleCore(t *testing.T) {
	cfg := testCfg(1)
	d := must(New(cfg)).Decide(synthObs(cfg, uniform(1, compute)))
	if len(d.CoreSteps) != 1 {
		t.Fatalf("decision has %d cores", len(d.CoreSteps))
	}
}

func TestSearchHandlesTinyLadders(t *testing.T) {
	cfg := testCfg(4)
	cl, err := freq.CoreLadderN(2)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := freq.MemLadderN(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CoreLadder, cfg.MemLadder = cl, ml
	d := must(New(cfg)).Decide(synthObs(cfg, uniform(4, compute)))
	if d.MemStep < 0 || d.MemStep > 1 {
		t.Errorf("MemStep %d out of ladder", d.MemStep)
	}
}
