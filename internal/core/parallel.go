package core

import (
	"runtime"

	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
)

// Parallel candidate scoring: rebuildCoreList/repairCoreList shard their
// per-core marginal evaluation across a persistent set of worker lanes.
//
// Determinism argument (DESIGN.md §11): a scan's shard boundaries are a pure
// function of (item count, lane count) — never of timing — and every item j
// is evaluated by exactly one lane into the fixed output slot out[j], by the
// same marginalFor kernel the serial path runs over the same read-only
// snapshot. The coordinator compacts the slots in index order after the
// channel join, which reproduces exactly the serial path's append order, so
// the list handed to the single sort — and therefore every later decision —
// is identical at any parallelism, bit for bit.

// Scan modes: what the item index j denotes.
const (
	scanRebuild = iota // j is a core index (full eligibility rebuild)
	scanRepair         // j indexes the moved prefix of st.coreList
)

// minParallelItems is the default fan-out threshold: below it the coordinator
// runs the whole scan inline — per-scan channel signalling costs more than a
// few hundred kernel evaluations. The threshold only chooses who executes the
// kernel, never what it computes, so crossing it cannot change results.
// Options.MinParallelItems overrides it at construction (DESIGN.md §11
// documents the tuning procedure); tests lower CoScale.minParallel directly
// to force fan-out at small core counts.
const minParallelItems = 192

// scanCtx is the per-scan snapshot every lane reads: the walk state the
// kernel scores against, hoisted once by setupScan. All fields are read-only
// between the coordinator's fan-out and the channel join; lanes write only
// their own scanOut slots and scanEvals counter.
type scanCtx struct {
	mode  int
	items int
	lanes int // lanes participating in the current scan (1 = inline)

	steps     []int     // st.steps (current per-core ladder positions)
	base      []float64 // all-max baseline TPI per core
	lat       float64   // current joint memory latency
	cpuScale  float64
	useTables bool
	tbl       *perf.StepTable
	ptbl      *power.CoreTable
	ev        *policy.Evaluator // direct-path model access (DisableTables)

	// Warm-start signature source (warm.go), hoisted only when the
	// controller records marginal snapshots (Options.WarmStart).
	stats []perf.CoreStats // ev.Stats(): per-core counter-derived statistics
}

// shardRunner is what a worker lane executes: one fixed shard of the
// current scan. CoScale (marginal scans) and Batcher (batched decisions)
// implement it.
type shardRunner interface {
	runShard(shard int)
}

// workerPool is a persistent set of worker goroutines executing fixed
// shards on demand. The pool is owned by its controller (or Batcher) but
// the lanes reference only the pool — never the owner — so an owner that is
// dropped without Close can still be collected; its finalizer releases the
// lanes. Lanes are started lazily on the first fan-out.
type workerPool struct {
	lanes   int
	job     chan int      // shard assignments to the worker lanes
	done    chan struct{} // one completion token per assigned shard
	stop    chan struct{} // closed to terminate the lanes
	run     shardRunner   // the scan in flight; nil between scans
	started bool
	closed  bool
}

func newWorkerPool(lanes int) *workerPool {
	return &workerPool{
		lanes: lanes,
		job:   make(chan int),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
}

// resolveLanes maps an Options.Parallelism value to a lane count:
// 0 means GOMAXPROCS at construction time, anything below 1 is serial.
func resolveLanes(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// scatter runs r.runShard(s) for every shard 0..shards-1 (shards <= lanes):
// shards 1.. on the worker lanes, shard 0 on the calling goroutine,
// returning only after one completion token per assigned shard. The channel
// send happens-before the lane's read of the scan state, and the lane's
// writes happen-before the coordinator's receive — the only synchronization
// a scan needs.
//
//hot:path
func (p *workerPool) scatter(r shardRunner, shards int) {
	p.run = r
	if !p.started {
		p.start()
	}
	for s := 1; s < shards; s++ {
		p.job <- s
	}
	r.runShard(0)
	for s := 1; s < shards; s++ {
		<-p.done
	}
	p.run = nil // lanes must not pin the owner between scans
}

// start launches the persistent worker lanes (once per pool).
func (p *workerPool) start() {
	p.started = true
	for i := 1; i < p.lanes; i++ {
		//lint:ignore dettaint deterministic by construction: every lane evaluates a fixed index shard of a read-only snapshot into fixed per-index output slots, and the coordinator merges the slots in index order only after the channel join — scheduling order cannot reach any output bit (DESIGN.md §11)
		go p.worker()
	}
}

// worker is one lane's loop: execute assigned shards until the pool closes.
func (p *workerPool) worker() {
	for {
		select {
		case s := <-p.job:
			p.run.runShard(s)
			p.done <- struct{}{}
		case <-p.stop:
			return
		}
	}
}

// close terminates the lanes. Idempotent; must not race an in-flight
// scatter (owners call it from Close, after their last decision).
func (p *workerPool) close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	close(p.stop)
}

// attachPool equips a freshly constructed controller with its worker lanes
// (started lazily, on the first fan-out). A finalizer backstops Close so a
// controller dropped without closing cannot leak its lanes — safe because
// the lanes reference only the pool, never the controller (scatter clears
// run between scans), so the controller itself stays collectible.
func (c *CoScale) attachPool(parallelism int) {
	lanes := resolveLanes(parallelism)
	if lanes <= 1 {
		return
	}
	c.pool = newWorkerPool(lanes)
	c.scanEvals = make([]int, lanes)
	runtime.SetFinalizer(c, (*CoScale).Close)
}

// Close releases the controller's worker lanes. Safe on a serial controller
// and idempotent; must not be called concurrently with Decide.
func (c *CoScale) Close() {
	if c.pool != nil {
		c.pool.close()
		runtime.SetFinalizer(c, nil)
	}
}

// runScan evaluates the per-core marginals for the given scan over items
// slots: inline when the pool is absent or the scan is small, sharded
// across the lanes otherwise. Either way every slot of c.scanOut[:items]
// holds item j's marginal (core < 0 = ineligible) on return, and
// stats.CoreEvals grows by the number of kernel evaluations — summed over
// the per-lane counters after the join, so the count is race-free and
// identical to the serial path's.
//
//hot:path
func (c *CoScale) runScan(ev *policy.Evaluator, st *searchState, mode, items int) {
	c.setupScan(ev, st, mode, items)
	c.scanOut = growMargs(c.scanOut, items)
	p := c.pool
	min := c.minParallel
	if min <= 0 {
		min = minParallelItems
	}
	if p == nil || items < min {
		c.sc.lanes = 1
		c.stats.CoreEvals += c.scanRange(0, items)
		return
	}
	if c.sc.useTables {
		// The lazy first-use column build in TPIPairAt is a data race under
		// fan-out; materialize every column up front. Column contents are a
		// pure function of the epoch's statistics, so eager building is
		// bit-identical (perf.StepTable.Prebuild).
		c.sc.tbl.Prebuild()
	}
	lanes := p.lanes
	if lanes > items {
		lanes = items
	}
	c.sc.lanes = lanes
	c.scanEvals = growInts(c.scanEvals, lanes)
	p.scatter(c, lanes)
	total := 0
	for _, e := range c.scanEvals[:lanes] {
		total += e
	}
	c.stats.CoreEvals += total
}

// setupScan hoists the walk state the kernel reads into the per-scan
// snapshot. Within one scan every hoisted value is constant (the walk
// mutates st only between scans), so hoisting is exact.
//
//hot:path
func (c *CoScale) setupScan(ev *policy.Evaluator, st *searchState, mode, items int) {
	sc := &c.sc
	sc.mode = mode
	sc.items = items
	sc.steps = st.steps
	sc.base = ev.BaselineTPI()
	sc.lat = st.cur.MemLoad.Latency
	cpuScale := c.cfg.Power.CPUScale
	if cpuScale <= 0 {
		cpuScale = 1
	}
	sc.cpuScale = cpuScale
	sc.useTables = ev.UseTables
	sc.ev = ev
	if ev.UseTables {
		sc.tbl, sc.ptbl = ev.Tables()
	}
	if c.warmRec {
		sc.stats = ev.Stats()
	}
}

// runShard implements shardRunner: lane s evaluates its fixed contiguous
// index range [s·items/lanes, (s+1)·items/lanes) into the fixed output
// slots, depositing its private evaluation count in scanEvals[s].
//
//hot:path
func (c *CoScale) runShard(s int) {
	items, lanes := c.sc.items, c.sc.lanes
	c.scanEvals[s] = c.scanRange(s*items/lanes, (s+1)*items/lanes)
}

// scanRange runs the marginal kernel over items [lo, hi), writing each
// result (or the core = -1 ineligible sentinel) into its fixed slot and
// returning how many items were actually evaluated (non-bottom steps).
//
//hot:path
func (c *CoScale) scanRange(lo, hi int) int {
	out := c.scanOut
	evals := 0
	if c.sc.mode == scanRepair {
		list := c.st.coreList
		for j := lo; j < hi; j++ {
			m, evaluated := c.marginalFor(int(list[j].core), int32(j))
			out[j] = m
			if evaluated {
				evals++
			}
		}
		return evals
	}
	for j := lo; j < hi; j++ {
		m, evaluated := c.marginalFor(j, 0)
		out[j] = m
		if evaluated {
			evals++
		}
	}
	return evals
}

// growMargs and growInts are perf.GrowFloats for the scan scratch: resize
// without zeroing (every slot is written before it is read).
func growMargs(s []coreMarg, n int) []coreMarg {
	if cap(s) < n {
		return make([]coreMarg, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}
