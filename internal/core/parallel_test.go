package core

// Property tests for the sharded marginal scans (DESIGN.md §11): parallel
// candidate scoring must be *bit-identical* to the serial walk — same step
// vectors, same predicted energy bits, same work counters — across core
// counts, ladder shapes, lane counts, and randomized observations. The
// fan-out threshold is forced to 1 so even 16-core configs exercise real
// cross-goroutine scans; run under -race this doubles as the data-race
// proof for the shared scan snapshot.

import (
	"math"
	"testing"

	"coscale/internal/policy"
	"coscale/internal/trace"
)

// parCS builds a controller with the given lane count, forcing the fan-out
// threshold down so every scan shards regardless of core count.
func parCS(t *testing.T, cfg policy.Config, parallelism int) *CoScale {
	t.Helper()
	cs := must(NewWithOptions(cfg, Options{Parallelism: parallelism}))
	cs.minParallel = 1
	t.Cleanup(cs.Close)
	return cs
}

func requireSameDecision(t *testing.T, ctx string, want, got policy.Decision) {
	t.Helper()
	if got.MemStep != want.MemStep {
		t.Fatalf("%s: MemStep %d vs serial %d", ctx, got.MemStep, want.MemStep)
	}
	for i := range want.CoreSteps {
		if got.CoreSteps[i] != want.CoreSteps[i] {
			t.Fatalf("%s: CoreSteps[%d] %d vs serial %d",
				ctx, i, got.CoreSteps[i], want.CoreSteps[i])
		}
	}
}

// TestParallelBitIdenticalToSerial drives serial, 2-lane, and 8-lane
// controllers through identical decision/observation sequences and requires
// exact agreement: the chosen steps, the Float64bits of the predicted
// energy at the chosen point, and the SearchStats work counters (CoreEvals
// is summed from per-lane counters, so equality here is the no-undercount
// check). Slack accumulates across iterations, so later epochs search from
// shifted feasibility frontiers rather than repeating the first walk.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	rng := trace.NewRand(4242)
	combos := []struct{ n, core, mem, iters int }{
		{16, 10, 8, 120},
		{16, 5, 3, 80},
		{64, 10, 8, 70},
		{64, 16, 12, 50},
		{128, 10, 8, 40},
		{256, 7, 5, 30},
		{1024, 10, 8, 12},
	}
	var eval policy.Evaluator // referee for the energy-bits comparison
	iters := 0
	for _, cb := range combos {
		cfg := propCfg(cb.n, cb.core, cb.mem)
		serial := parCS(t, cfg, 1)
		p2 := parCS(t, cfg, 2)
		p8 := parCS(t, cfg, 8)
		for k := 0; k < cb.iters; k++ {
			iters++
			obs := randObs(rng, cb.n)
			dS := serial.Decide(obs)
			d2 := p2.Decide(obs)
			d8 := p8.Decide(obs)
			ctx := "iter " + itoa(iters) + " n=" + itoa(cb.n)
			requireSameDecision(t, ctx+" lanes=2", dS, d2)
			requireSameDecision(t, ctx+" lanes=8", dS, d8)
			sS := serial.SearchStats()
			if s2 := p2.SearchStats(); s2 != sS {
				t.Fatalf("%s: SearchStats diverge: lanes=2 %+v vs serial %+v", ctx, s2, sS)
			}
			if s8 := p8.SearchStats(); s8 != sS {
				t.Fatalf("%s: SearchStats diverge: lanes=8 %+v vs serial %+v", ctx, s8, sS)
			}
			if sS.Moves > 0 && sS.CoreEvals == 0 {
				t.Fatalf("%s: committed %d moves with zero core evaluations", ctx, sS.Moves)
			}

			eval.Reset(cfg, obs)
			var eS, e8 policy.Eval
			eval.EvaluateInto(&eS, dS.CoreSteps, dS.MemStep)
			eval.EvaluateInto(&e8, d8.CoreSteps, d8.MemStep)
			if math.Float64bits(eS.SER) != math.Float64bits(e8.SER) {
				t.Fatalf("%s: SER bits diverge: serial %v (%#x) vs lanes=8 %v (%#x)",
					ctx, eS.SER, math.Float64bits(eS.SER), e8.SER, math.Float64bits(e8.SER))
			}

			serial.Observe(obs)
			p2.Observe(obs)
			p8.Observe(obs)
		}
	}
	if iters < 400 {
		t.Fatalf("only %d property iterations, want >= 400", iters)
	}
}

// itoa avoids pulling fmt into every failure message the hot assertion loop
// constructs (strconv-free: test-only, small positive ints).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestParallelDecideZeroAllocWarm gates the fan-out path's steady state:
// once the lanes are running and every scratch is sized, a sharded Decide
// must not allocate — the scan snapshot, output slots, and per-lane
// counters are all reused, and the channel handshakes are allocation-free.
func TestParallelDecideZeroAllocWarm(t *testing.T) {
	cfg := propCfg(64, 10, 10)
	cs := parCS(t, cfg, 2)
	rng := trace.NewRand(7)
	a := randObs(rng, 64)
	b := randObs(rng, 64)
	cs.Decide(a) // warm-up: starts lanes, sizes scratch and tables
	cs.Decide(b)
	obs := [2]policy.Observation{a, b}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		cs.Decide(obs[i&1])
		i++
	})
	if avg != 0 {
		t.Errorf("warm parallel Decide allocates %.1f times per call, want 0", avg)
	}
}

// TestParallelDisableTablesAgrees covers the direct-evaluation kernel under
// fan-out (the ablation nobody runs in production but the cross-check
// property depends on): serial and sharded NoTables controllers must agree
// exactly, and both must agree with the serial tables controller.
func TestParallelDisableTablesAgrees(t *testing.T) {
	cfg := propCfg(48, 10, 8)
	ser := must(NewWithOptions(cfg, Options{DisableTables: true}))
	par := must(NewWithOptions(cfg, Options{DisableTables: true, Parallelism: 4}))
	par.minParallel = 1
	t.Cleanup(par.Close)
	tab := parCS(t, cfg, 4)
	rng := trace.NewRand(31)
	for k := 0; k < 25; k++ {
		obs := randObs(rng, 48)
		dS := ser.Decide(obs)
		dP := par.Decide(obs)
		dT := tab.Decide(obs)
		ctx := "iter " + itoa(k)
		requireSameDecision(t, ctx+" notables-parallel", dS, dP)
		requireSameDecision(t, ctx+" tables-parallel", dS, dT)
		ser.Observe(obs)
		par.Observe(obs)
		tab.Observe(obs)
	}
}
