// Package core implements CoScale, the paper's contribution: a greedy
// gradient-descent search over per-core and memory-subsystem frequency
// settings that minimizes full-system energy (SER, Eq. 2) while keeping
// every program inside its accumulated performance slack.
//
// The search is the algorithm of Figure 2. Starting with every component at
// maximum frequency, it repeatedly estimates the marginal utility
// (Δpower/Δperformance) of lowering either the memory subsystem or a group
// of cores by one step and greedily takes the most beneficial move, as long
// as some move keeps every program within its slack. Core groups are formed
// by the sub-algorithm of Figure 3: cores eligible for scaling are kept in a
// list sorted ascending by the performance cost of their next step, and the
// N prefixes of that list are the candidate groups. Group moves are what
// keep the search out of the local minimum where memory frequency — whose
// first step usually beats scaling any single core — is always taken first.
//
// Marginal utilities are cached exactly as in Figure 2: the memory marginal
// is recomputed only when the memory frequency changed, and core marginals
// only for cores whose frequency changed, giving the paper's
// O(M + C·N²) complexity instead of the brute-force M·C^N.
package core

import (
	"math"
	"sort"

	"coscale/internal/policy"
)

// Options tune CoScale variants used by the ablation studies.
type Options struct {
	// DisableGrouping restricts core moves to single cores (group size
	// 1), demonstrating the local-minimum pathology §3.1 warns about.
	DisableGrouping bool
	// DisableMarginalCache recomputes every marginal on every iteration,
	// for measuring the value of the Figure 2 caching.
	DisableMarginalCache bool
}

// CoScale is the coordinated CPU+memory DVFS controller.
type CoScale struct {
	cfg   policy.Config
	opts  Options
	slack *policy.SlackBook

	// last decision, re-used as the "settings in effect" for transitions.
	last policy.Decision
}

// New returns a CoScale controller for the given system.
func New(cfg policy.Config) *CoScale { return NewWithOptions(cfg, Options{}) }

// NewWithOptions returns a CoScale controller with ablation options.
func NewWithOptions(cfg policy.Config, opts Options) *CoScale {
	if err := cfg.Validate(); err != nil {
		//lint:ignore nopanic constructor contract: configs come from PolicyConfig, already validated by sim.New
		panic(err)
	}
	return &CoScale{
		cfg:   cfg,
		opts:  opts,
		slack: policy.NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve),
		last:  policy.Decision{CoreSteps: policy.ZeroSteps(cfg.NCores)},
	}
}

// Name implements policy.Policy.
func (c *CoScale) Name() string {
	switch {
	case c.opts.DisableGrouping:
		return "CoScale-NoGrouping"
	case c.opts.DisableMarginalCache:
		return "CoScale-NoCache"
	default:
		return "CoScale"
	}
}

// Slack exposes the per-program slack trackers (for tests and telemetry).
func (c *CoScale) Slack() *policy.SlackBook { return c.slack }

// Observe implements policy.Policy: end-of-epoch slack accounting against
// the all-max reference, per §3 "Overall operation".
func (c *CoScale) Observe(epoch policy.Observation) {
	tMax := policy.TMaxForEpoch(c.cfg, epoch, policy.ZeroSteps(c.cfg.NCores), 0)
	c.slack.RecordEpochFor(epoch.CoreThreads(), tMax, epoch.Window)
}

// Decide implements policy.Policy: the Figure 2 search.
func (c *CoScale) Decide(obs policy.Observation) policy.Decision {
	ev := policy.NewEvaluator(c.cfg, obs)
	limits := c.cfg.Limits(c.slack.AvailableFor(obs.CoreThreads()))
	d := c.search(ev, limits)
	c.last = d.Clone()
	return d
}

// searchState carries the walk's mutable state.
type searchState struct {
	steps   []int
	memStep int
	cur     policy.Eval

	// Cached marginals (Figure 2 lines 4-8).
	memValid  bool
	memMarg   marginal
	coreValid bool
	coreList  []coreMarg // eligible cores sorted ascending by dTPI
}

// marginal is a candidate move's cost/benefit.
type marginal struct {
	utility  float64 // Δpower / Δperformance
	dPower   float64
	dPerf    float64
	feasible bool
	eval     policy.Eval // post-move prediction (memory moves only)
}

// coreMarg is the locally estimated marginal of stepping one core down.
type coreMarg struct {
	core      int
	dTPI      float64 // seconds/instruction added by one step down
	dPerf     float64 // dTPI / baseline TPI (relative slowdown added)
	dPower    float64 // watts saved by one step down
	slowAfter float64 // predicted slowdown vs baseline after the step
}

func (c *CoScale) search(ev *policy.Evaluator, limits []float64) policy.Decision {
	n := c.cfg.NCores
	st := &searchState{steps: policy.ZeroSteps(n)}
	st.cur = ev.Evaluate(st.steps, 0)

	best := policy.Decision{CoreSteps: append([]int(nil), st.steps...), MemStep: 0}
	bestSER := st.cur.SER

	maxIters := (c.cfg.MemLadder.Steps() + c.cfg.CoreLadder.Steps()*n) + 4
	for iter := 0; iter < maxIters; iter++ {
		if c.opts.DisableMarginalCache {
			st.memValid, st.coreValid = false, false
		}

		// Figure 2 lines 4-5: memory marginal, recomputed only on change.
		if !st.memValid {
			st.memMarg = c.memoryMarginal(ev, st, limits)
			st.memValid = true
		}
		// Figure 2 lines 6-8 / Figure 3: core-group marginal.
		if !st.coreValid {
			st.coreList = c.rebuildCoreList(ev, st, limits)
			st.coreValid = true
		}
		group, groupMarg := c.bestGroup(ev, st, limits)

		memOK := st.memMarg.feasible
		coreOK := len(group) > 0

		switch {
		case memOK && coreOK:
			if st.memMarg.utility >= groupMarg.utility {
				c.applyMemory(st)
			} else {
				c.applyGroup(ev, st, group, limits)
			}
		case memOK:
			c.applyMemory(st)
		case coreOK:
			c.applyGroup(ev, st, group, limits)
		default:
			// Line 2: nothing can scale further.
			iter = maxIters
			continue
		}

		// Joint feasibility backstop: local core estimates are
		// conservative, but re-verify and revert if the joint model
		// disagrees (can happen right after a stale-cache move).
		if !policy.WithinBound(st.cur, limits) {
			break
		}
		// Line 20: record SER for the configuration just reached.
		if st.cur.SER < bestSER {
			bestSER = st.cur.SER
			best = policy.Decision{CoreSteps: append([]int(nil), st.steps...), MemStep: st.memStep}
		}
	}
	// Line 21-22: the combination with the smallest SER wins.
	return best
}

// memoryMarginal evaluates one memory step down from the current state
// (full joint model — memory affects every core).
func (c *CoScale) memoryMarginal(ev *policy.Evaluator, st *searchState, limits []float64) marginal {
	if c.cfg.MemLadder.Bottom(st.memStep) {
		return marginal{}
	}
	cand := ev.Evaluate(st.steps, st.memStep+1)
	if !policy.WithinBound(cand, limits) {
		return marginal{}
	}
	dPower := st.cur.Power.Total - cand.Power.Total
	// Δperformance: the highest performance loss of any core (§3.1).
	dPerf := 0.0
	for i := range cand.Slowdown {
		if d := cand.Slowdown[i] - st.cur.Slowdown[i]; d > dPerf {
			dPerf = d
		}
	}
	return marginal{utility: utility(dPower, dPerf), dPower: dPower, dPerf: dPerf,
		feasible: true, eval: cand}
}

// rebuildCoreList recomputes the Figure 3 eligibility list from scratch.
// (Incremental repair after a group move is handled by repairCoreList; a
// full rebuild happens only on the first iteration or with caching
// disabled.)
func (c *CoScale) rebuildCoreList(ev *policy.Evaluator, st *searchState, limits []float64) []coreMarg {
	list := make([]coreMarg, 0, c.cfg.NCores)
	for i := 0; i < c.cfg.NCores; i++ {
		if m, ok := c.coreMarginal(ev, st, limits, i); ok {
			list = append(list, m)
		}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].dTPI < list[b].dTPI })
	return list
}

// coreMarginal locally estimates the effect of stepping core i down once,
// holding the memory system at its current modelled latency.
func (c *CoScale) coreMarginal(ev *policy.Evaluator, st *searchState, limits []float64, i int) (coreMarg, bool) {
	step := st.steps[i]
	if c.cfg.CoreLadder.Bottom(step) {
		return coreMarg{}, false
	}
	stats := ev.Stats()[i]
	lat := st.cur.MemLoad.Latency
	hzCur, hzNext := c.cfg.CoreLadder.Hz(step), c.cfg.CoreLadder.Hz(step+1)
	tpiCur := stats.TPI(hzCur, lat)
	tpiNext := stats.TPI(hzNext, lat)
	base := ev.Baseline().TPI[i]
	slowAfter := tpiNext / base
	if slowAfter > limits[i]*(1+1e-12) {
		return coreMarg{}, false
	}
	mix := ev.ObsCore(i).Mix
	pCur := c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step), hzCur, 1/tpiCur, mix)
	pNext := c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step+1), hzNext, 1/tpiNext, mix)
	cpuScale := c.cfg.Power.CPUScale
	if cpuScale <= 0 {
		cpuScale = 1
	}
	return coreMarg{
		core:      i,
		dTPI:      tpiNext - tpiCur,
		dPerf:     (tpiNext - tpiCur) / base,
		dPower:    (pCur - pNext) * cpuScale,
		slowAfter: slowAfter,
	}, true
}

// bestGroup runs Figure 3 lines 3-7: consider the prefixes of the sorted
// eligibility list as groups and return the one with the largest marginal
// utility.
func (c *CoScale) bestGroup(ev *policy.Evaluator, st *searchState, limits []float64) ([]int, marginal) {
	if len(st.coreList) == 0 {
		return nil, marginal{}
	}
	limit := len(st.coreList)
	if c.opts.DisableGrouping {
		limit = 1
	}
	bestU := math.Inf(-1)
	bestI := -1
	sumPower := 0.0
	var bestMarg marginal
	for i := 0; i < limit; i++ {
		sumPower += st.coreList[i].dPower
		dPerf := st.coreList[i].dPerf // worst in group: list is sorted ascending
		u := utility(sumPower, dPerf)
		if u > bestU {
			bestU, bestI = u, i
			bestMarg = marginal{utility: u, dPower: sumPower, dPerf: dPerf, feasible: true}
		}
	}
	group := make([]int, 0, bestI+1)
	for i := 0; i <= bestI; i++ {
		group = append(group, st.coreList[i].core)
	}
	return group, bestMarg
}

// applyMemory commits a one-step memory reduction (already evaluated).
func (c *CoScale) applyMemory(st *searchState) {
	st.memStep++
	st.cur = st.memMarg.eval
	st.memValid = false // memory frequency changed: marginal stale
	// Core marginals are deliberately NOT invalidated (Figure 2 line 6
	// recomputes them only when a core frequency changes) — but their
	// latency assumption is refreshed lazily through the joint st.cur.
}

// applyGroup commits a one-step reduction for every core in group, then
// repairs the sorted list (Figure 3 lines 1-2).
func (c *CoScale) applyGroup(ev *policy.Evaluator, st *searchState, group []int, limits []float64) {
	for _, i := range group {
		st.steps[i]++
	}
	st.cur = ev.Evaluate(st.steps, st.memStep)
	st.memValid = false // traffic changed; memory marginal must be re-evaluated
	c.repairCoreList(ev, st, group, limits)
}

// repairCoreList removes the moved cores and re-inserts their fresh
// marginals, keeping the ascending dTPI order without a full sort.
func (c *CoScale) repairCoreList(ev *policy.Evaluator, st *searchState, moved []int, limits []float64) {
	movedSet := make(map[int]bool, len(moved))
	for _, i := range moved {
		movedSet[i] = true
	}
	kept := st.coreList[:0]
	for _, m := range st.coreList {
		if !movedSet[m.core] {
			kept = append(kept, m)
		}
	}
	st.coreList = kept
	for _, i := range moved {
		if m, ok := c.coreMarginal(ev, st, limits, i); ok {
			pos := sort.Search(len(st.coreList), func(j int) bool { return st.coreList[j].dTPI >= m.dTPI })
			st.coreList = append(st.coreList, coreMarg{})
			copy(st.coreList[pos+1:], st.coreList[pos:])
			st.coreList[pos] = m
		}
	}
	st.coreValid = true
}

// utility is Δpower/Δperformance with the degenerate cases pinned: a free
// move (no performance loss) has infinite utility; a move that saves no
// power has negative utility proportional to its cost.
func utility(dPower, dPerf float64) float64 {
	if dPerf <= 1e-15 {
		if dPower > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return dPower / dPerf
}
