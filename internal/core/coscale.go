// Package core implements CoScale, the paper's contribution: a greedy
// gradient-descent search over per-core and memory-subsystem frequency
// settings that minimizes full-system energy (SER, Eq. 2) while keeping
// every program inside its accumulated performance slack.
//
// The search is the algorithm of Figure 2. Starting with every component at
// maximum frequency, it repeatedly estimates the marginal utility
// (Δpower/Δperformance) of lowering either the memory subsystem or a group
// of cores by one step and greedily takes the most beneficial move, as long
// as some move keeps every program within its slack. Core groups are formed
// by the sub-algorithm of Figure 3: cores eligible for scaling are kept in a
// list sorted ascending by the performance cost of their next step, and the
// N prefixes of that list are the candidate groups. Group moves are what
// keep the search out of the local minimum where memory frequency — whose
// first step usually beats scaling any single core — is always taken first.
//
// Marginal utilities are cached exactly as in Figure 2: the memory marginal
// is recomputed only when the memory frequency changed, and core marginals
// only for cores whose frequency changed, giving the paper's
// O(M + C·N²) complexity instead of the brute-force M·C^N.
package core

import (
	"math"
	"slices"

	"coscale/internal/perf"
	"coscale/internal/policy"
)

// Options tune CoScale variants used by the ablation studies.
type Options struct {
	// DisableGrouping restricts core moves to single cores (group size
	// 1), demonstrating the local-minimum pathology §3.1 warns about.
	DisableGrouping bool
	// DisableMarginalCache recomputes every marginal on every iteration,
	// for measuring the value of the Figure 2 caching.
	DisableMarginalCache bool
	// DisableTables evaluates candidates directly instead of through the
	// memoized per-epoch prediction tables (DESIGN.md §10) — bit-identical
	// by construction, so this exists for the cross-check property test and
	// for measuring the tables' speedup, not as a behavioral variant.
	DisableTables bool
	// Parallelism is the number of lanes the marginal scans shard across
	// (DESIGN.md §11): 0 resolves to runtime.GOMAXPROCS(0) at construction,
	// and any value <= 1 keeps the serial path — the ablation baseline and
	// the right setting for many controllers sharing a machine (the serve
	// worker pool already fills the cores with concurrent decisions).
	// Decisions are bit-identical at every setting.
	Parallelism int
	// MinParallelItems is the fan-out floor for the sharded scans: scans
	// with fewer items run inline on the caller because the per-scan
	// channel handshake costs more than a few hundred kernel evaluations.
	// 0 keeps the built-in default (192, estimated on a single-CPU box —
	// DESIGN.md §11 documents the re-tuning procedure for multicore
	// hosts). The floor only chooses who executes the kernel, never what
	// it computes, so any setting is bit-identical.
	MinParallelItems int
	// WarmStart seeds each epoch's search from the previous epoch's
	// accepted solution when the phase detector classifies the epoch as
	// stable, re-scoring only cores whose counters moved (warm.go;
	// DESIGN.md §14). The warm seed is always re-validated against the
	// slowdown bound with the full evaluator; a failed validation or a
	// phase break falls back to the cold full search.
	WarmStart bool
	// PhaseEpsilon is the relative counter-delta threshold of the warm-
	// start phase detector: a per-core signature (CPI, memory traffic per
	// instruction) moving by more than this fraction marks the core
	// as changed, and too many changed cores (or an aggregate memory
	// traffic/latency shift) breaks the phase. 0 means the default 0.05.
	PhaseEpsilon float64
}

// SearchStats counts the work of the most recent Decide call's search walk,
// for benchmarks and telemetry. Moves is the number of committed frequency
// moves (iterations that applied a core-group or memory step); Evals is the
// number of full joint-model evaluations the walk ran (one per candidate
// memory marginal and one per committed group move). Per-move cost —
// ns/op divided by Moves — is the scaling figure of merit: the number of
// moves grows with the core count, so total Decide time conflates walk
// length with per-step cost (DESIGN.md §10). CoreEvals is the number of
// per-core local marginal evaluations the eligibility scans ran (rebuild +
// repair, bottom-step cores excluded); under parallel scans it is summed
// from per-lane counters after the join, so it is race-free and equal to
// the serial path's count at any parallelism.
// The warm-start counters record the decision's outcome when
// Options.WarmStart is on (warm.go): per Decide at most one of WarmHits and
// ColdSearches is 1, and WarmFallbacks additionally marks a cold search that
// was preceded by a failed warm attempt (the seed failed re-validation), so
// WarmFallbacks is a subset of ColdSearches. Controllers without WarmStart
// count every decision in ColdSearches. Consumers aggregate by summing
// across decisions (the serve layer exports the sums at /metrics).
type SearchStats struct {
	Moves     int
	Evals     int
	CoreEvals int

	WarmHits      int
	WarmFallbacks int
	ColdSearches  int
}

// SearchStats returns counters for the last Decide call's search.
func (c *CoScale) SearchStats() SearchStats { return c.stats }

// CoScale is the coordinated CPU+memory DVFS controller.
//
// A controller owns its decision-time scratch — evaluators, search state,
// slack/limit arrays — so Decide and Observe allocate nothing in steady
// state (DESIGN.md §7). The Decision returned by Decide aliases that
// scratch and is valid until the next Decide call.
type CoScale struct {
	cfg   policy.Config
	opts  Options
	slack *policy.SlackBook

	// last decision, re-used as the "settings in effect" for transitions.
	last policy.Decision

	// Steady-state scratch reused every epoch.
	ev       *policy.Evaluator // Decide-time evaluator, reset per call
	obsEv    *policy.Evaluator // Observe-time evaluator for the all-max reference
	st       searchState
	avail    []float64  // per-core slack
	limits   []float64  // per-core slowdown limits
	scaled   []float64  // limits with the WithinBound epsilon pre-applied
	best     []int      // best step vector found by the walk
	fresh    []coreMarg // repairCoreList scratch: moved cores' new marginals
	merged   []coreMarg // repairCoreList scratch: merge output
	tmax     []float64  // all-max reference times for slack accounting
	identity []int      // thread mapping fallback when ThreadIDs is nil

	// Parallel marginal scans (parallel.go). pool is nil when the
	// controller is serial (Options.Parallelism resolved to one lane).
	pool        *workerPool
	sc          scanCtx    // per-scan snapshot the lanes read
	scanOut     []coreMarg // fixed per-item output slots
	scanEvals   []int      // per-lane kernel-evaluation counts
	minParallel int        // fan-out threshold; 0 = minParallelItems (tests lower it)

	// Warm-start state (warm.go; active when opts.WarmStart).
	warmRec     bool        // record marginal snapshots during the scans
	phaseEps    float64     // resolved Options.PhaseEpsilon
	warmStride  int         // CoreLadder.Steps(): warmTab row width
	warmTab     []warmEntry // (core, step)-indexed marginal snapshots
	prevCPI     []float64   // previous Decide's per-core phase signature
	prevMPI     []float64
	prevMemRate float64 // previous Decide's aggregate memory signature
	prevMemLat  float64
	prevValid   bool // a previous signature exists (false after Reset)

	stats SearchStats // work counters for the last Decide's search
}

// New returns a CoScale controller for the given system, or the
// configuration's validation error.
func New(cfg policy.Config) (*CoScale, error) { return NewWithOptions(cfg, Options{}) }

// NewWithOptions returns a CoScale controller with ablation options, or the
// configuration's validation error.
func NewWithOptions(cfg policy.Config, opts Options) (*CoScale, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NCores
	c := &CoScale{
		cfg:   cfg,
		opts:  opts,
		slack: policy.NewSlackBook(n, cfg.Gamma, cfg.Reserve),
		last:  policy.Decision{CoreSteps: policy.ZeroSteps(n)},
		ev:    &policy.Evaluator{UseTables: !opts.DisableTables},
		obsEv: &policy.Evaluator{UseTables: !opts.DisableTables},
		st: searchState{
			steps:    make([]int, n),
			coreList: make([]coreMarg, 0, n),
		},
		avail:    make([]float64, n),
		limits:   make([]float64, n),
		best:     make([]int, n),
		fresh:    make([]coreMarg, 0, n),
		merged:   make([]coreMarg, 0, n),
		tmax:     make([]float64, n),
		identity: make([]int, n),
		scanOut:  make([]coreMarg, n),
	}
	c.minParallel = opts.MinParallelItems
	c.initWarm()
	c.attachPool(opts.Parallelism)
	return c, nil
}

// Name implements policy.Policy.
func (c *CoScale) Name() string {
	switch {
	case c.opts.WarmStart:
		return "CoScale-Warm"
	case c.opts.DisableGrouping:
		return "CoScale-NoGrouping"
	case c.opts.DisableMarginalCache:
		return "CoScale-NoCache"
	case c.opts.DisableTables:
		return "CoScale-NoTables"
	default:
		return "CoScale"
	}
}

// Slack exposes the per-program slack trackers (for tests and telemetry).
func (c *CoScale) Slack() *policy.SlackBook { return c.slack }

// Reset returns the controller to its freshly constructed state — slack
// bookkeeping forgotten, last decision back at all-max — while keeping every
// scratch buffer, so repeated runs over one controller are bit-identical to
// runs over fresh controllers without reallocating (the Engine.Reset
// pattern; benchmarks use it to rewind between iterations).
func (c *CoScale) Reset() {
	c.slack.Reset()
	c.last.CoreSteps = perf.ResizeInts(c.last.CoreSteps, c.cfg.NCores)
	c.last.MemStep = 0
	c.resetWarm()
}

// threadsFor returns the thread-on-core mapping without allocating
// (Observation.CoreThreads builds a fresh identity slice when ThreadIDs is
// nil; the controller keeps its own).
//
//hot:path
func (c *CoScale) threadsFor(obs policy.Observation) []int {
	if obs.ThreadIDs != nil {
		return obs.ThreadIDs
	}
	c.identity = perf.ResizeInts(c.identity, len(obs.Cores))
	for i := range c.identity {
		c.identity[i] = i
	}
	return c.identity
}

// Observe implements policy.Policy: end-of-epoch slack accounting against
// the all-max reference, per §3 "Overall operation". The reference times are
// the evaluator's all-max baseline — the same numbers TMaxForEpoch computes,
// via the controller's persistent evaluator instead of a fresh one.
//
//hot:path
func (c *CoScale) Observe(epoch policy.Observation) {
	c.obsEv.Reset(c.cfg, epoch)
	base := c.obsEv.BaselineTPI()
	c.tmax = perf.ResizeFloats(c.tmax, len(epoch.Cores))
	for i := range epoch.Cores {
		c.tmax[i] = float64(epoch.Cores[i].Instructions) * base[i]
	}
	c.slack.RecordEpochFor(c.threadsFor(epoch), c.tmax, epoch.Window)
}

// Decide implements policy.Policy: the Figure 2 search. The returned
// Decision aliases the controller's scratch and is valid until the next
// Decide call; retain with Clone.
//
//hot:path
func (c *CoScale) Decide(obs policy.Observation) policy.Decision {
	c.ev.Reset(c.cfg, obs)
	c.avail = c.slack.AvailableInto(c.avail, c.threadsFor(obs))
	c.limits = c.cfg.LimitsInto(c.limits, c.avail)
	c.scaled = policy.ScaleLimits(c.scaled, c.limits)
	c.stats = SearchStats{}
	var d policy.Decision
	if c.opts.WarmStart {
		d = c.decideWarm(obs)
	} else {
		c.stats.ColdSearches = 1
		d = c.search(c.ev)
	}
	c.last.CoreSteps = perf.ResizeInts(c.last.CoreSteps, len(d.CoreSteps))
	copy(c.last.CoreSteps, d.CoreSteps)
	c.last.MemStep = d.MemStep
	return d
}

// searchState carries the walk's mutable state, persisting across decisions
// so its buffers are reused.
type searchState struct {
	steps   []int
	memStep int
	cur     policy.Eval

	// Cached marginals (Figure 2 lines 4-8).
	memValid  bool
	memMarg   marginal
	memEval   policy.Eval // post-move prediction backing the memory marginal
	coreValid bool
	coreList  []coreMarg // eligible cores sorted ascending by dTPI
}

// marginal is a candidate move's cost/benefit. A feasible memory marginal's
// post-move prediction lives in searchState.memEval.
type marginal struct {
	utility  float64 // Δpower / Δperformance
	dPower   float64
	dPerf    float64
	feasible bool
}

// coreMarg is the locally estimated marginal of stepping one core down.
// Kept to 32 bytes — the eligibility list is sorted and merged wholesale
// every group move, so element copies are on the search hot path.
type coreMarg struct {
	core   int32
	pos    int32   // repairCoreList tie-break key (insertion position)
	dTPI   float64 // seconds/instruction added by one step down
	dPerf  float64 // dTPI / baseline TPI (relative slowdown added)
	dPower float64 // watts saved by one step down
}

// search is the cold path: the full Figure 2 walk from the all-max point.
//
//hot:path
func (c *CoScale) search(ev *policy.Evaluator) policy.Decision {
	n := c.cfg.NCores
	st := &c.st
	st.steps = perf.ResizeInts(st.steps, n)
	st.memStep = 0
	st.memValid, st.coreValid = false, false
	// The walk starts at the all-max point the evaluator already solved for
	// its baseline; copying it is bit-identical to re-evaluating zeros.
	ev.EvaluateBaselineInto(&st.cur)
	return c.descend(ev, st)
}

// descend runs the greedy walk from wherever st stands — the all-max point
// for the cold search, the re-validated previous solution for a warm start —
// and returns the minimum-SER configuration it reaches.
//
//hot:path
func (c *CoScale) descend(ev *policy.Evaluator, st *searchState) policy.Decision {
	n := c.cfg.NCores
	c.best = perf.ResizeInts(c.best, n)
	copy(c.best, st.steps)
	bestMem := st.memStep
	bestSER := st.cur.SER

	maxIters := (c.cfg.MemLadder.Steps() + c.cfg.CoreLadder.Steps()*n) + 4
	for iter := 0; iter < maxIters; iter++ {
		if c.opts.DisableMarginalCache {
			st.memValid, st.coreValid = false, false
		}

		// Figure 2 lines 4-5: memory marginal, recomputed only on change.
		if !st.memValid {
			st.memMarg = c.memoryMarginal(ev, st)
			st.memValid = true
		}
		// Figure 2 lines 6-8 / Figure 3: core-group marginal.
		if !st.coreValid {
			c.rebuildCoreList(ev, st)
			st.coreValid = true
		}
		groupLen, groupMarg := c.bestGroup(st)

		memOK := st.memMarg.feasible
		coreOK := groupLen > 0

		switch {
		case memOK && coreOK:
			if st.memMarg.utility >= groupMarg.utility {
				c.applyMemory(st)
			} else {
				c.applyGroup(ev, st, groupLen)
			}
		case memOK:
			c.applyMemory(st)
		case coreOK:
			c.applyGroup(ev, st, groupLen)
		default:
			// Line 2: nothing can scale further.
			iter = maxIters
			continue
		}

		// Joint feasibility backstop: local core estimates are
		// conservative, but re-verify and revert if the joint model
		// disagrees (can happen right after a stale-cache move).
		if !policy.WithinBoundScaled(st.cur, c.scaled) {
			break
		}
		// Line 20: record SER for the configuration just reached.
		if st.cur.SER < bestSER {
			bestSER = st.cur.SER
			copy(c.best, st.steps)
			bestMem = st.memStep
		}
	}
	// Line 21-22: the combination with the smallest SER wins.
	return policy.Decision{CoreSteps: c.best, MemStep: bestMem}
}

// memoryMarginal evaluates one memory step down from the current state
// (full joint model — memory affects every core). The candidate prediction
// is left in st.memEval for applyMemory.
//
//hot:path
func (c *CoScale) memoryMarginal(ev *policy.Evaluator, st *searchState) marginal {
	if c.cfg.MemLadder.Bottom(st.memStep) {
		return marginal{}
	}
	c.stats.Evals++
	ev.EvaluateInto(&st.memEval, st.steps, st.memStep+1)
	if !policy.WithinBoundScaled(st.memEval, c.scaled) {
		return marginal{}
	}
	dPower := st.cur.Power.Total - st.memEval.Power.Total
	// Δperformance: the highest performance loss of any core (§3.1).
	dPerf := 0.0
	for i := range st.memEval.Slowdown {
		if d := st.memEval.Slowdown[i] - st.cur.Slowdown[i]; d > dPerf {
			dPerf = d
		}
	}
	return marginal{utility: utility(dPower, dPerf), dPower: dPower, dPerf: dPerf,
		feasible: true}
}

// rebuildCoreList recomputes the Figure 3 eligibility list from scratch into
// st.coreList. (Incremental repair after a group move is handled by
// repairCoreList; a full rebuild happens only on the first iteration or with
// caching disabled.) The marginal scan runs through runScan — serial or
// sharded per Options.Parallelism — into fixed per-core slots; compacting
// the slots in core-index order below reproduces exactly the serial append
// order, so the sort input is identical at any parallelism.
//
//hot:path
func (c *CoScale) rebuildCoreList(ev *policy.Evaluator, st *searchState) {
	n := c.cfg.NCores
	c.runScan(ev, st, scanRebuild, n)
	list := st.coreList[:0]
	for j := 0; j < n; j++ {
		if c.scanOut[j].core >= 0 {
			list = append(list, c.scanOut[j])
		}
	}
	st.coreList = list
	// Unstable sort ascending by dTPI. cmpDTPI's less-than outcomes are
	// exactly the comparisons sort.Sort's Less-based pdqsort would make, and
	// both run the same pdqsort template, so the resulting permutation —
	// including how dTPI ties land — is unchanged; SortFunc just avoids the
	// interface-dispatch Swap/Less of a sort.Interface.
	slices.SortFunc(st.coreList, cmpDTPI)
}

// cmpDTPI orders core marginals ascending by dTPI (ties compare equal).
func cmpDTPI(a, b coreMarg) int {
	switch {
	case a.dTPI < b.dTPI:
		return -1
	case b.dTPI < a.dTPI:
		return 1
	default:
		return 0
	}
}

// marginalFor is the marginal-scan kernel: it locally estimates the effect
// of stepping core i down once, holding the memory system at the scan
// snapshot's modelled latency (c.sc, hoisted by setupScan). Both the serial
// and the sharded executors run exactly this kernel over exactly this
// snapshot, which is what makes the parallel scan bit-identical. An
// ineligible core returns the core = -1 sentinel so the result can occupy a
// fixed output slot; the bool reports whether the kernel evaluated the core
// at all (false only at the ladder bottom), which feeds SearchStats.CoreEvals.
//
//hot:path
func (c *CoScale) marginalFor(i int, pos int32) (coreMarg, bool) {
	sc := &c.sc
	step := sc.steps[i]
	if c.cfg.CoreLadder.Bottom(step) {
		return coreMarg{core: -1}, false
	}
	if c.warmRec {
		// Kernel-level memoization across epochs (warm.go): a snapshot of
		// this (core, step) whose counter signature still matches is reused
		// — with a fresh bound recheck — instead of re-scored.
		if m, handled := c.warmReuse(i, step, pos); handled {
			return m, false
		}
	}
	lat := sc.lat
	var tpiCur, tpiNext, pCur, pNext float64
	if sc.useTables {
		// Memoized path: the pair lookup computes the shared latency term
		// once and is bit-identical to the direct CoreStats.TPI/
		// CoreModel.Power calls below (DESIGN.md §10).
		tpiCur, tpiNext = sc.tbl.TPIPairAt(i, step, lat)
	} else {
		stats := sc.ev.Stats()[i]
		tpiCur = stats.TPI(c.cfg.CoreLadder.Hz(step), lat)
		tpiNext = stats.TPI(c.cfg.CoreLadder.Hz(step+1), lat)
	}
	base := sc.base[i]
	slowAfter := tpiNext / base
	if slowAfter > c.scaled[i] {
		if c.warmRec {
			c.recordWarm(i, step, tpiCur, tpiNext, 0, warmBoundLimited)
		}
		return coreMarg{core: -1}, true
	}
	if sc.useTables {
		pCur = sc.ptbl.PowerAt(step, i, 1/tpiCur)
		pNext = sc.ptbl.PowerAt(step+1, i, 1/tpiNext)
	} else {
		mix := sc.ev.ObsCore(i).Mix
		pCur = c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step), c.cfg.CoreLadder.Hz(step), 1/tpiCur, mix)
		pNext = c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step+1), c.cfg.CoreLadder.Hz(step+1), 1/tpiNext, mix)
	}
	dPower := (pCur - pNext) * sc.cpuScale
	if c.warmRec {
		c.recordWarm(i, step, tpiCur, tpiNext, dPower, warmEligible)
	}
	return coreMarg{
		core:   int32(i),
		pos:    pos,
		dTPI:   tpiNext - tpiCur,
		dPerf:  (tpiNext - tpiCur) / base,
		dPower: dPower,
	}, true
}

// bestGroup runs Figure 3 lines 3-7: consider the prefixes of the sorted
// eligibility list as groups and return the length of the one with the
// largest marginal utility (0 = no eligible group).
//
//hot:path
func (c *CoScale) bestGroup(st *searchState) (int, marginal) {
	if len(st.coreList) == 0 {
		return 0, marginal{}
	}
	limit := len(st.coreList)
	if c.opts.DisableGrouping {
		limit = 1
	}
	bestU := math.Inf(-1)
	bestI := -1
	sumPower := 0.0
	var bestMarg marginal
	for i := 0; i < limit; i++ {
		sumPower += st.coreList[i].dPower
		dPerf := st.coreList[i].dPerf // worst in group: list is sorted ascending
		u := utility(sumPower, dPerf)
		if u > bestU {
			bestU, bestI = u, i
			bestMarg = marginal{utility: u, dPower: sumPower, dPerf: dPerf, feasible: true}
		}
	}
	return bestI + 1, bestMarg
}

// applyMemory commits a one-step memory reduction (already evaluated):
// the candidate prediction in st.memEval becomes the current state, and the
// old current Eval's buffers are recycled as the next candidate scratch.
//
//hot:path
func (c *CoScale) applyMemory(st *searchState) {
	c.stats.Moves++
	st.memStep++
	st.cur, st.memEval = st.memEval, st.cur
	st.memValid = false // memory frequency changed: marginal stale
	// Core marginals are deliberately NOT invalidated (Figure 2 line 6
	// recomputes them only when a core frequency changes) — but their
	// latency assumption is refreshed lazily through the joint st.cur.
}

// applyGroup commits a one-step reduction for the first groupLen cores of
// the sorted eligibility list, then repairs the list (Figure 3 lines 1-2).
//
//hot:path
func (c *CoScale) applyGroup(ev *policy.Evaluator, st *searchState, groupLen int) {
	for i := 0; i < groupLen; i++ {
		st.steps[int(st.coreList[i].core)]++
	}
	c.stats.Moves++
	c.stats.Evals++
	ev.EvaluateInto(&st.cur, st.steps, st.memStep)
	st.memValid = false // traffic changed; memory marginal must be re-evaluated
	c.repairCoreList(ev, st, groupLen)
}

// repairCoreList removes the moved cores and re-inserts their fresh
// marginals, keeping the ascending dTPI order without a full sort. The
// moved cores are always the first groupLen entries of the list (groups are
// prefixes of the sorted eligibility list, Figure 3), so the kept survivors
// are simply the tail beyond the prefix — no membership flags or compaction
// pass needed. The result is element-for-element identical to inserting
// each fresh marginal (in prefix order) at the first position whose dTPI is
// >= its own — the original one-at-a-time repair — but costs one merge pass
// instead of an O(moved·cores) cascade of insertion copies: under that
// insertion rule a fresh marginal lands before every equal-dTPI element
// already present, so equal-dTPI fresh marginals end up in reverse moved
// order and ahead of equal-dTPI kept ones, which is exactly what the
// reversed-order stable sort plus the fresh-first-on-ties merge below
// produce.
//
//hot:path
func (c *CoScale) repairCoreList(ev *policy.Evaluator, st *searchState, groupLen int) {
	kept := st.coreList[groupLen:]
	// Scan the moved prefix through the same fixed-slot machinery as the
	// rebuild (the kernel reads st.coreList[j].core and stamps pos = j);
	// compacting in slot order reproduces the serial append order exactly.
	c.runScan(ev, st, scanRepair, groupLen)
	fresh := c.fresh[:0]
	for j := 0; j < groupLen; j++ {
		if c.scanOut[j].core >= 0 {
			fresh = append(fresh, c.scanOut[j])
		}
	}
	c.fresh = fresh
	if len(fresh) == 0 {
		// Shift the survivors down in place; order is already correct.
		st.coreList = append(st.coreList[:0], kept...)
		st.coreValid = true
		return
	}
	// (dTPI asc, pos desc) is a strict total order over the fresh marginals,
	// so the unstable sort is deterministic — and moved order tracks the old
	// ascending-dTPI list, leaving fresh nearly sorted already.
	slices.SortFunc(fresh, func(a, b coreMarg) int {
		switch {
		case a.dTPI < b.dTPI:
			return -1
		case a.dTPI > b.dTPI:
			return 1
		default:
			return int(b.pos) - int(a.pos)
		}
	})
	if len(kept) == 0 {
		// The whole list moved (a full-prefix group): the sorted fresh
		// marginals ARE the new list. Swap backing arrays instead of copying.
		old := st.coreList
		st.coreList = fresh
		c.fresh = old[:0]
		st.coreValid = true
		return
	}
	out := c.merged[:0]
	ki := 0
	for _, f := range fresh {
		for ki < len(kept) && kept[ki].dTPI < f.dTPI {
			out = append(out, kept[ki])
			ki++
		}
		out = append(out, f)
	}
	out = append(out, kept[ki:]...)
	// The merged scratch becomes the live list; the old list's backing array
	// becomes the next repair's merge scratch.
	old := st.coreList
	st.coreList = out
	c.merged = old[:0]
	st.coreValid = true
}

// utility is Δpower/Δperformance with the degenerate cases pinned: a free
// move (no performance loss) has infinite utility; a move that saves no
// power has negative utility proportional to its cost.
func utility(dPower, dPerf float64) float64 {
	if dPerf <= 1e-15 {
		if dPower > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return dPower / dPerf
}
