// Package core implements CoScale, the paper's contribution: a greedy
// gradient-descent search over per-core and memory-subsystem frequency
// settings that minimizes full-system energy (SER, Eq. 2) while keeping
// every program inside its accumulated performance slack.
//
// The search is the algorithm of Figure 2. Starting with every component at
// maximum frequency, it repeatedly estimates the marginal utility
// (Δpower/Δperformance) of lowering either the memory subsystem or a group
// of cores by one step and greedily takes the most beneficial move, as long
// as some move keeps every program within its slack. Core groups are formed
// by the sub-algorithm of Figure 3: cores eligible for scaling are kept in a
// list sorted ascending by the performance cost of their next step, and the
// N prefixes of that list are the candidate groups. Group moves are what
// keep the search out of the local minimum where memory frequency — whose
// first step usually beats scaling any single core — is always taken first.
//
// Marginal utilities are cached exactly as in Figure 2: the memory marginal
// is recomputed only when the memory frequency changed, and core marginals
// only for cores whose frequency changed, giving the paper's
// O(M + C·N²) complexity instead of the brute-force M·C^N.
package core

import (
	"math"
	"sort"

	"coscale/internal/perf"
	"coscale/internal/policy"
)

// Options tune CoScale variants used by the ablation studies.
type Options struct {
	// DisableGrouping restricts core moves to single cores (group size
	// 1), demonstrating the local-minimum pathology §3.1 warns about.
	DisableGrouping bool
	// DisableMarginalCache recomputes every marginal on every iteration,
	// for measuring the value of the Figure 2 caching.
	DisableMarginalCache bool
}

// CoScale is the coordinated CPU+memory DVFS controller.
//
// A controller owns its decision-time scratch — evaluators, search state,
// slack/limit arrays — so Decide and Observe allocate nothing in steady
// state (DESIGN.md §7). The Decision returned by Decide aliases that
// scratch and is valid until the next Decide call.
type CoScale struct {
	cfg   policy.Config
	opts  Options
	slack *policy.SlackBook

	// last decision, re-used as the "settings in effect" for transitions.
	last policy.Decision

	// Steady-state scratch reused every epoch.
	ev       *policy.Evaluator // Decide-time evaluator, reset per call
	obsEv    *policy.Evaluator // Observe-time evaluator for the all-max reference
	st       searchState
	avail    []float64 // per-core slack
	limits   []float64 // per-core slowdown limits
	best     []int     // best step vector found by the walk
	group    []int     // cores moved by the chosen group
	moved    []bool    // membership scratch for repairCoreList
	tmax     []float64 // all-max reference times for slack accounting
	identity []int     // thread mapping fallback when ThreadIDs is nil
}

// New returns a CoScale controller for the given system, or the
// configuration's validation error.
func New(cfg policy.Config) (*CoScale, error) { return NewWithOptions(cfg, Options{}) }

// NewWithOptions returns a CoScale controller with ablation options, or the
// configuration's validation error.
func NewWithOptions(cfg policy.Config, opts Options) (*CoScale, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NCores
	return &CoScale{
		cfg:   cfg,
		opts:  opts,
		slack: policy.NewSlackBook(n, cfg.Gamma, cfg.Reserve),
		last:  policy.Decision{CoreSteps: policy.ZeroSteps(n)},
		ev:    &policy.Evaluator{},
		obsEv: &policy.Evaluator{},
		st: searchState{
			steps:    make([]int, n),
			coreList: make([]coreMarg, 0, n),
		},
		avail:    make([]float64, n),
		limits:   make([]float64, n),
		best:     make([]int, n),
		group:    make([]int, 0, n),
		moved:    make([]bool, n),
		tmax:     make([]float64, n),
		identity: make([]int, n),
	}, nil
}

// Name implements policy.Policy.
func (c *CoScale) Name() string {
	switch {
	case c.opts.DisableGrouping:
		return "CoScale-NoGrouping"
	case c.opts.DisableMarginalCache:
		return "CoScale-NoCache"
	default:
		return "CoScale"
	}
}

// Slack exposes the per-program slack trackers (for tests and telemetry).
func (c *CoScale) Slack() *policy.SlackBook { return c.slack }

// threadsFor returns the thread-on-core mapping without allocating
// (Observation.CoreThreads builds a fresh identity slice when ThreadIDs is
// nil; the controller keeps its own).
//
//hot:path
func (c *CoScale) threadsFor(obs policy.Observation) []int {
	if obs.ThreadIDs != nil {
		return obs.ThreadIDs
	}
	c.identity = perf.ResizeInts(c.identity, len(obs.Cores))
	for i := range c.identity {
		c.identity[i] = i
	}
	return c.identity
}

// Observe implements policy.Policy: end-of-epoch slack accounting against
// the all-max reference, per §3 "Overall operation". The reference times are
// the evaluator's all-max baseline — the same numbers TMaxForEpoch computes,
// via the controller's persistent evaluator instead of a fresh one.
//
//hot:path
func (c *CoScale) Observe(epoch policy.Observation) {
	c.obsEv.Reset(c.cfg, epoch)
	base := c.obsEv.Baseline()
	c.tmax = perf.ResizeFloats(c.tmax, len(epoch.Cores))
	for i := range epoch.Cores {
		c.tmax[i] = float64(epoch.Cores[i].Instructions) * base.TPI[i]
	}
	c.slack.RecordEpochFor(c.threadsFor(epoch), c.tmax, epoch.Window)
}

// Decide implements policy.Policy: the Figure 2 search. The returned
// Decision aliases the controller's scratch and is valid until the next
// Decide call; retain with Clone.
//
//hot:path
func (c *CoScale) Decide(obs policy.Observation) policy.Decision {
	c.ev.Reset(c.cfg, obs)
	c.avail = c.slack.AvailableInto(c.avail, c.threadsFor(obs))
	c.limits = c.cfg.LimitsInto(c.limits, c.avail)
	d := c.search(c.ev, c.limits)
	c.last.CoreSteps = perf.ResizeInts(c.last.CoreSteps, len(d.CoreSteps))
	copy(c.last.CoreSteps, d.CoreSteps)
	c.last.MemStep = d.MemStep
	return d
}

// searchState carries the walk's mutable state, persisting across decisions
// so its buffers are reused.
type searchState struct {
	steps   []int
	memStep int
	cur     policy.Eval

	// Cached marginals (Figure 2 lines 4-8).
	memValid  bool
	memMarg   marginal
	memEval   policy.Eval // post-move prediction backing the memory marginal
	coreValid bool
	coreList  []coreMarg // eligible cores sorted ascending by dTPI
}

// marginal is a candidate move's cost/benefit. A feasible memory marginal's
// post-move prediction lives in searchState.memEval.
type marginal struct {
	utility  float64 // Δpower / Δperformance
	dPower   float64
	dPerf    float64
	feasible bool
}

// coreMarg is the locally estimated marginal of stepping one core down.
type coreMarg struct {
	core      int
	dTPI      float64 // seconds/instruction added by one step down
	dPerf     float64 // dTPI / baseline TPI (relative slowdown added)
	dPower    float64 // watts saved by one step down
	slowAfter float64 // predicted slowdown vs baseline after the step
}

// coreMargList sorts ascending by dTPI. It is sorted through a pointer so
// the interface conversion does not copy (or allocate for) the slice header.
type coreMargList []coreMarg

func (l *coreMargList) Len() int           { return len(*l) }
func (l *coreMargList) Less(a, b int) bool { return (*l)[a].dTPI < (*l)[b].dTPI }
func (l *coreMargList) Swap(a, b int)      { (*l)[a], (*l)[b] = (*l)[b], (*l)[a] }

//hot:path
func (c *CoScale) search(ev *policy.Evaluator, limits []float64) policy.Decision {
	n := c.cfg.NCores
	st := &c.st
	st.steps = perf.ResizeInts(st.steps, n)
	st.memStep = 0
	st.memValid, st.coreValid = false, false
	// The walk starts at the all-max point the evaluator already solved for
	// its baseline; copying it is bit-identical to re-evaluating zeros.
	ev.EvaluateBaselineInto(&st.cur)

	c.best = perf.ResizeInts(c.best, n)
	copy(c.best, st.steps)
	bestMem := 0
	bestSER := st.cur.SER

	maxIters := (c.cfg.MemLadder.Steps() + c.cfg.CoreLadder.Steps()*n) + 4
	for iter := 0; iter < maxIters; iter++ {
		if c.opts.DisableMarginalCache {
			st.memValid, st.coreValid = false, false
		}

		// Figure 2 lines 4-5: memory marginal, recomputed only on change.
		if !st.memValid {
			st.memMarg = c.memoryMarginal(ev, st, limits)
			st.memValid = true
		}
		// Figure 2 lines 6-8 / Figure 3: core-group marginal.
		if !st.coreValid {
			c.rebuildCoreList(ev, st, limits)
			st.coreValid = true
		}
		groupLen, groupMarg := c.bestGroup(st)

		memOK := st.memMarg.feasible
		coreOK := groupLen > 0

		switch {
		case memOK && coreOK:
			if st.memMarg.utility >= groupMarg.utility {
				c.applyMemory(st)
			} else {
				c.applyGroup(ev, st, groupLen, limits)
			}
		case memOK:
			c.applyMemory(st)
		case coreOK:
			c.applyGroup(ev, st, groupLen, limits)
		default:
			// Line 2: nothing can scale further.
			iter = maxIters
			continue
		}

		// Joint feasibility backstop: local core estimates are
		// conservative, but re-verify and revert if the joint model
		// disagrees (can happen right after a stale-cache move).
		if !policy.WithinBound(st.cur, limits) {
			break
		}
		// Line 20: record SER for the configuration just reached.
		if st.cur.SER < bestSER {
			bestSER = st.cur.SER
			copy(c.best, st.steps)
			bestMem = st.memStep
		}
	}
	// Line 21-22: the combination with the smallest SER wins.
	return policy.Decision{CoreSteps: c.best, MemStep: bestMem}
}

// memoryMarginal evaluates one memory step down from the current state
// (full joint model — memory affects every core). The candidate prediction
// is left in st.memEval for applyMemory.
//
//hot:path
func (c *CoScale) memoryMarginal(ev *policy.Evaluator, st *searchState, limits []float64) marginal {
	if c.cfg.MemLadder.Bottom(st.memStep) {
		return marginal{}
	}
	ev.EvaluateInto(&st.memEval, st.steps, st.memStep+1)
	if !policy.WithinBound(st.memEval, limits) {
		return marginal{}
	}
	dPower := st.cur.Power.Total - st.memEval.Power.Total
	// Δperformance: the highest performance loss of any core (§3.1).
	dPerf := 0.0
	for i := range st.memEval.Slowdown {
		if d := st.memEval.Slowdown[i] - st.cur.Slowdown[i]; d > dPerf {
			dPerf = d
		}
	}
	return marginal{utility: utility(dPower, dPerf), dPower: dPower, dPerf: dPerf,
		feasible: true}
}

// rebuildCoreList recomputes the Figure 3 eligibility list from scratch into
// st.coreList. (Incremental repair after a group move is handled by
// repairCoreList; a full rebuild happens only on the first iteration or with
// caching disabled.)
//
//hot:path
func (c *CoScale) rebuildCoreList(ev *policy.Evaluator, st *searchState, limits []float64) {
	list := st.coreList[:0]
	for i := 0; i < c.cfg.NCores; i++ {
		if m, ok := c.coreMarginal(ev, st, limits, i); ok {
			list = append(list, m)
		}
	}
	st.coreList = list
	sort.Sort((*coreMargList)(&st.coreList))
}

// coreMarginal locally estimates the effect of stepping core i down once,
// holding the memory system at its current modelled latency.
//
//hot:path
func (c *CoScale) coreMarginal(ev *policy.Evaluator, st *searchState, limits []float64, i int) (coreMarg, bool) {
	step := st.steps[i]
	if c.cfg.CoreLadder.Bottom(step) {
		return coreMarg{}, false
	}
	stats := ev.Stats()[i]
	lat := st.cur.MemLoad.Latency
	hzCur, hzNext := c.cfg.CoreLadder.Hz(step), c.cfg.CoreLadder.Hz(step+1)
	tpiCur := stats.TPI(hzCur, lat)
	tpiNext := stats.TPI(hzNext, lat)
	base := ev.Baseline().TPI[i]
	slowAfter := tpiNext / base
	if slowAfter > limits[i]*(1+1e-12) {
		return coreMarg{}, false
	}
	mix := ev.ObsCore(i).Mix
	pCur := c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step), hzCur, 1/tpiCur, mix)
	pNext := c.cfg.Power.Core.Power(c.cfg.CoreLadder.Volts(step+1), hzNext, 1/tpiNext, mix)
	cpuScale := c.cfg.Power.CPUScale
	if cpuScale <= 0 {
		cpuScale = 1
	}
	return coreMarg{
		core:      i,
		dTPI:      tpiNext - tpiCur,
		dPerf:     (tpiNext - tpiCur) / base,
		dPower:    (pCur - pNext) * cpuScale,
		slowAfter: slowAfter,
	}, true
}

// bestGroup runs Figure 3 lines 3-7: consider the prefixes of the sorted
// eligibility list as groups and return the length of the one with the
// largest marginal utility (0 = no eligible group).
//
//hot:path
func (c *CoScale) bestGroup(st *searchState) (int, marginal) {
	if len(st.coreList) == 0 {
		return 0, marginal{}
	}
	limit := len(st.coreList)
	if c.opts.DisableGrouping {
		limit = 1
	}
	bestU := math.Inf(-1)
	bestI := -1
	sumPower := 0.0
	var bestMarg marginal
	for i := 0; i < limit; i++ {
		sumPower += st.coreList[i].dPower
		dPerf := st.coreList[i].dPerf // worst in group: list is sorted ascending
		u := utility(sumPower, dPerf)
		if u > bestU {
			bestU, bestI = u, i
			bestMarg = marginal{utility: u, dPower: sumPower, dPerf: dPerf, feasible: true}
		}
	}
	return bestI + 1, bestMarg
}

// applyMemory commits a one-step memory reduction (already evaluated):
// the candidate prediction in st.memEval becomes the current state, and the
// old current Eval's buffers are recycled as the next candidate scratch.
//
//hot:path
func (c *CoScale) applyMemory(st *searchState) {
	st.memStep++
	st.cur, st.memEval = st.memEval, st.cur
	st.memValid = false // memory frequency changed: marginal stale
	// Core marginals are deliberately NOT invalidated (Figure 2 line 6
	// recomputes them only when a core frequency changes) — but their
	// latency assumption is refreshed lazily through the joint st.cur.
}

// applyGroup commits a one-step reduction for the first groupLen cores of
// the sorted eligibility list, then repairs the list (Figure 3 lines 1-2).
//
//hot:path
func (c *CoScale) applyGroup(ev *policy.Evaluator, st *searchState, groupLen int, limits []float64) {
	c.group = c.group[:0]
	for i := 0; i < groupLen; i++ {
		c.group = append(c.group, st.coreList[i].core)
	}
	for _, i := range c.group {
		st.steps[i]++
	}
	ev.EvaluateInto(&st.cur, st.steps, st.memStep)
	st.memValid = false // traffic changed; memory marginal must be re-evaluated
	c.repairCoreList(ev, st, c.group, limits)
}

// repairCoreList removes the moved cores and re-inserts their fresh
// marginals, keeping the ascending dTPI order without a full sort.
//
//hot:path
func (c *CoScale) repairCoreList(ev *policy.Evaluator, st *searchState, moved []int, limits []float64) {
	for i := range c.moved {
		c.moved[i] = false
	}
	for _, i := range moved {
		c.moved[i] = true
	}
	kept := st.coreList[:0]
	for _, m := range st.coreList {
		if !c.moved[m.core] {
			kept = append(kept, m)
		}
	}
	st.coreList = kept
	for _, i := range moved {
		if m, ok := c.coreMarginal(ev, st, limits, i); ok {
			// First position whose dTPI is >= m.dTPI (inline binary
			// search: the sort.Search closure would allocate).
			lo, hi := 0, len(st.coreList)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if st.coreList[mid].dTPI >= m.dTPI {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			st.coreList = append(st.coreList, coreMarg{})
			copy(st.coreList[lo+1:], st.coreList[lo:])
			st.coreList[lo] = m
		}
	}
	st.coreValid = true
}

// utility is Δpower/Δperformance with the degenerate cases pinned: a free
// move (no performance loss) has infinite utility; a move that saves no
// power has negative utility proportional to its cost.
func utility(dPower, dPerf float64) float64 {
	if dPerf <= 1e-15 {
		if dPower > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return dPower / dPerf
}
