package core

import (
	"math"
	"testing"

	"coscale/internal/policy"
)

// warmCS builds a WarmStart controller with the given parallelism, forcing
// fan-out at test-sized core counts, and registers cleanup.
func warmCS(t *testing.T, cfg policy.Config, parallelism int) *CoScale {
	t.Helper()
	cs, err := NewWithOptions(cfg, Options{WarmStart: true, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	cs.minParallel = 1
	t.Cleanup(cs.Close)
	return cs
}

// checkBound re-evaluates a decision with a fresh evaluator and requires it
// inside the controller's own scaled limits for the deciding epoch.
func checkBound(t *testing.T, cs *CoScale, cfg policy.Config, obs policy.Observation, d policy.Decision) {
	t.Helper()
	e := policy.NewEvaluator(cfg, obs).Evaluate(d.CoreSteps, d.MemStep)
	if !policy.WithinBoundScaled(e, cs.scaled) {
		t.Fatalf("decision %v mem %d violates the scaled bound: MaxSlow %v", d.CoreSteps, d.MemStep, e.MaxSlow)
	}
}

func TestWarmName(t *testing.T) {
	cfg := testCfg(4)
	cs := must(NewWithOptions(cfg, Options{WarmStart: true}))
	if got := cs.Name(); got != "CoScale-Warm" {
		t.Fatalf("Name() = %q, want CoScale-Warm", got)
	}
}

// TestWarmStableHit is the tentpole's contract on a stable phase: the first
// decision is cold (no previous signature), repeats of the same observation
// warm-hit, the warm decisions stay inside the slowdown bound, and the
// warm-hit epochs run far fewer per-core marginal evaluations than the cold
// search.
func TestWarmStableHit(t *testing.T) {
	cfg := testCfg(16)
	obs := synthObs(cfg, uniform(cfg.NCores, compute))
	cs := warmCS(t, cfg, 0)

	d := cs.Decide(obs)
	s := cs.SearchStats()
	if s.ColdSearches != 1 || s.WarmHits != 0 || s.WarmFallbacks != 0 {
		t.Fatalf("first decide stats = %+v, want one cold search", s)
	}
	coldEvals := s.CoreEvals
	checkBound(t, cs, cfg, obs, d)

	for i := 0; i < 5; i++ {
		d = cs.Decide(obs)
		s = cs.SearchStats()
		if s.WarmHits != 1 || s.ColdSearches != 0 || s.WarmFallbacks != 0 {
			t.Fatalf("repeat %d stats = %+v, want one warm hit", i, s)
		}
		if coldEvals > 0 && s.CoreEvals*3 > coldEvals {
			t.Errorf("repeat %d: warm CoreEvals %d vs cold %d, want >=3x reduction",
				i, s.CoreEvals, coldEvals)
		}
		checkBound(t, cs, cfg, obs, d)
	}
}

// TestWarmPhaseBreakFallsBack: an observation whose counters moved far past
// PhaseEpsilon must be classified as a phase break and decided cold — with
// no WarmFallbacks, since no warm attempt was made.
func TestWarmPhaseBreakFallsBack(t *testing.T) {
	cfg := testCfg(16)
	cs := warmCS(t, cfg, 0)

	a := synthObs(cfg, uniform(cfg.NCores, compute))
	cs.Decide(a)
	cs.Decide(a)
	if s := cs.SearchStats(); s.WarmHits != 1 {
		t.Fatalf("stable repeat stats = %+v, want a warm hit", s)
	}

	b := synthObs(cfg, uniform(cfg.NCores, memory)) // a genuinely different program phase
	d := cs.Decide(b)
	s := cs.SearchStats()
	if s.ColdSearches != 1 || s.WarmHits != 0 || s.WarmFallbacks != 0 {
		t.Fatalf("phase-break stats = %+v, want one cold search without a fallback", s)
	}
	checkBound(t, cs, cfg, b, d)

	// The new phase is itself stable once seen: the next repeat warm-hits.
	cs.Decide(b)
	if s := cs.SearchStats(); s.WarmHits != 1 {
		t.Fatalf("post-break repeat stats = %+v, want a warm hit", s)
	}
}

// TestWarmSeedViolationFallsBack: shrink the slack between two identical
// epochs (phase detector sees a stable phase) so the previous solution no
// longer fits the bound — the warm seed must fail its full-evaluator
// re-validation and the decision fall back cold, counted as a fallback.
func TestWarmSeedViolationFallsBack(t *testing.T) {
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(cfg.NCores, compute))
	cs := warmCS(t, cfg, 0)

	d := cs.Decide(obs)
	scaledSome := false
	for _, s := range d.CoreSteps {
		if s > 0 {
			scaledSome = true
		}
	}
	if !scaledSome && d.MemStep == 0 {
		t.Fatal("fixture decided all-max; the seed-violation scenario needs a scaled seed")
	}

	// An epoch twice as long as allotted drives every program's slack
	// negative: the next limits allow no slowdown at all.
	slow := obs
	slow.Window = cfg.EpochLen.Seconds() * 2
	cs.Observe(slow)

	d = cs.Decide(obs)
	s := cs.SearchStats()
	if s.WarmFallbacks != 1 || s.ColdSearches != 1 || s.WarmHits != 0 {
		t.Fatalf("post-shrink stats = %+v, want a warm fallback into a cold search", s)
	}
	for i, step := range d.CoreSteps {
		if step != 0 {
			t.Errorf("core %d at step %d after slack exhaustion, want all-max", i, step)
		}
	}
	if d.MemStep != 0 {
		t.Errorf("mem at step %d after slack exhaustion, want 0", d.MemStep)
	}
}

// TestWarmResetBitIdentity: after Reset a warm controller must replay a
// decision sequence bit-identically to a fresh controller — the snapshot
// table and phase signature are part of the state Reset forgets.
func TestWarmResetBitIdentity(t *testing.T) {
	cfg := testCfg(12)
	a := synthObs(cfg, uniform(cfg.NCores, compute))
	b := synthObs(cfg, uniform(cfg.NCores, memory))
	seq := []policy.Observation{a, a, a, b, b, a, a}

	run := func(cs *CoScale) ([]policy.Decision, []SearchStats) {
		ds := make([]policy.Decision, 0, len(seq))
		ss := make([]SearchStats, 0, len(seq))
		for _, obs := range seq {
			ds = append(ds, cs.Decide(obs).Clone())
			ss = append(ss, cs.SearchStats())
			cs.Observe(obs)
		}
		return ds, ss
	}

	cs := warmCS(t, cfg, 0)
	first, firstStats := run(cs)
	cs.Reset()
	replay, replayStats := run(cs)
	fresh, freshStats := run(warmCS(t, cfg, 0))

	check := func(name string, ds []policy.Decision, ss []SearchStats) {
		t.Helper()
		for k := range first {
			if ss[k] != firstStats[k] {
				t.Errorf("%s epoch %d stats = %+v, want %+v", name, k, ss[k], firstStats[k])
			}
			if ds[k].MemStep != first[k].MemStep {
				t.Errorf("%s epoch %d MemStep = %d, want %d", name, k, ds[k].MemStep, first[k].MemStep)
			}
			for i := range first[k].CoreSteps {
				if ds[k].CoreSteps[i] != first[k].CoreSteps[i] {
					t.Errorf("%s epoch %d core %d = %d, want %d",
						name, k, i, ds[k].CoreSteps[i], first[k].CoreSteps[i])
				}
			}
		}
	}
	check("replay after Reset", replay, replayStats)
	check("fresh controller", fresh, freshStats)
}

// TestWarmParallelBitIdentical: with WarmStart on, sharded marginal scans
// must not reach a single decision or counter bit — warm snapshots are
// written to disjoint (core, step) slots by whichever lane scores the core,
// and the warm list is assembled serially.
func TestWarmParallelBitIdentical(t *testing.T) {
	cfg := testCfg(16)
	a := synthObs(cfg, uniform(cfg.NCores, compute))
	b := synthObs(cfg, uniform(cfg.NCores, memory))
	seq := []policy.Observation{a, a, b, a, a, a}

	run := func(par int) ([]policy.Decision, []SearchStats) {
		cs := warmCS(t, cfg, par)
		ds := make([]policy.Decision, 0, len(seq))
		ss := make([]SearchStats, 0, len(seq))
		for _, obs := range seq {
			ds = append(ds, cs.Decide(obs).Clone())
			ss = append(ss, cs.SearchStats())
			cs.Observe(obs)
		}
		return ds, ss
	}

	wantD, wantS := run(-1) // forced serial
	for _, par := range []int{2, 8} {
		gotD, gotS := run(par)
		for k := range wantD {
			if gotS[k] != wantS[k] {
				t.Errorf("par=%d epoch %d stats = %+v, want %+v", par, k, gotS[k], wantS[k])
			}
			if gotD[k].MemStep != wantD[k].MemStep {
				t.Errorf("par=%d epoch %d MemStep = %d, want %d", par, k, gotD[k].MemStep, wantD[k].MemStep)
			}
			for i := range wantD[k].CoreSteps {
				if gotD[k].CoreSteps[i] != wantD[k].CoreSteps[i] {
					t.Errorf("par=%d epoch %d core %d = %d, want %d",
						par, k, i, gotD[k].CoreSteps[i], wantD[k].CoreSteps[i])
				}
			}
		}
	}
}

// TestWarmDecideZeroAllocSteadyState is the warm path's AllocsPerRun gate:
// once the first (cold) decision has sized the scratch and the snapshot
// table, warm-hit decisions must not allocate.
func TestWarmDecideZeroAllocSteadyState(t *testing.T) {
	cfg := testCfg(16)
	obs := synthObs(cfg, uniform(cfg.NCores, compute))
	cs := must(NewWithOptions(cfg, Options{WarmStart: true}))
	cs.Decide(obs) // cold warm-up sizes every buffer
	cs.Decide(obs) // first warm hit
	if s := cs.SearchStats(); s.WarmHits != 1 {
		t.Fatalf("fixture does not warm-hit: stats = %+v", s)
	}
	avg := testing.AllocsPerRun(100, func() { cs.Decide(obs) })
	if avg != 0 {
		t.Errorf("warm Decide allocates %.1f times per call in steady state, want 0", avg)
	}
}

// TestWarmDefaultEpsilonAndOverride pins the PhaseEpsilon resolution rule.
func TestWarmDefaultEpsilonAndOverride(t *testing.T) {
	cfg := testCfg(4)
	cs := must(NewWithOptions(cfg, Options{WarmStart: true}))
	if cs.phaseEps != defaultPhaseEpsilon {
		t.Errorf("default phaseEps = %v, want %v", cs.phaseEps, defaultPhaseEpsilon)
	}
	cs = must(NewWithOptions(cfg, Options{WarmStart: true, PhaseEpsilon: 0.2}))
	if cs.phaseEps != 0.2 {
		t.Errorf("phaseEps = %v, want 0.2", cs.phaseEps)
	}
}

// TestMinParallelItemsOption: the promoted fan-out floor must reach the
// scan threshold and must not change decisions (it only chooses who
// executes the kernel).
func TestMinParallelItemsOption(t *testing.T) {
	cfg := testCfg(8)
	obs := synthObs(cfg, uniform(cfg.NCores, compute))

	low := must(NewWithOptions(cfg, Options{Parallelism: 4, MinParallelItems: 1}))
	t.Cleanup(low.Close)
	if low.minParallel != 1 {
		t.Fatalf("minParallel = %d, want 1", low.minParallel)
	}
	serial := must(New(cfg))

	want := serial.Decide(obs)
	got := low.Decide(obs) // 8 items >= floor 1: the scan fans out
	if got.MemStep != want.MemStep {
		t.Errorf("MemStep = %d, want %d", got.MemStep, want.MemStep)
	}
	for i := range want.CoreSteps {
		if got.CoreSteps[i] != want.CoreSteps[i] {
			t.Errorf("core %d = %d, want %d", i, got.CoreSteps[i], want.CoreSteps[i])
		}
	}
	if s, w := low.SearchStats(), serial.SearchStats(); s != w {
		t.Errorf("stats = %+v, want %+v", s, w)
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{1, 1, 0},
		{1, 0, 1},
		{0, 2, 1},
		{1, 1.05, 0.05 / 1.05},
		{-1, 1, 2},
	}
	for _, tc := range cases {
		if got := relDelta(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("relDelta(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
