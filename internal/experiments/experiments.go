// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment has a function returning structured rows
// (so benchmarks and CLIs can assert on or print them) and knows the paper's
// published numbers for the EXPERIMENTS.md paper-vs-measured record.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"coscale/internal/cache"
	"coscale/internal/core"
	"coscale/internal/policy"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// PolicyName selects one of the §3.2 controllers.
type PolicyName string

// The six policies of the evaluation.
const (
	Baseline        PolicyName = "Baseline"
	MemScaleName    PolicyName = "MemScale"
	CPUOnlyName     PolicyName = "CPUOnly"
	UncoordName     PolicyName = "Uncoordinated"
	SemiName        PolicyName = "Semi-coordinated"
	CoScaleName     PolicyName = "CoScale"
	OfflineName     PolicyName = "Offline"
	SemiOoPName     PolicyName = "Semi-coordinated-OoP"
	NoGroupingName  PolicyName = "CoScale-NoGrouping"
	NoMarginalCache PolicyName = "CoScale-NoCache"
	// HardenedName is CoScale wrapped in the graceful-degradation watchdog
	// (policy.Harden), for the error-tolerance study.
	HardenedName PolicyName = "CoScale-Hardened"
	// WarmName is CoScale with warm-started search (core.Options.WarmStart):
	// stable phases seed the walk from the previous epoch's solution and
	// re-score only moved cores, for the warm-start ablation.
	WarmName PolicyName = "CoScale-Warm"
)

// PracticalPolicies is the Figure 8/9 comparison set in presentation order.
var PracticalPolicies = []PolicyName{MemScaleName, CPUOnlyName, UncoordName, SemiName, CoScaleName, OfflineName}

// NewPolicy instantiates a controller by name (nil for Baseline). Unknown
// names and invalid configurations are returned as errors: both reach this
// point from user input (CLI flags, experiment tables).
func NewPolicy(name PolicyName, cfg policy.Config) (policy.Policy, error) {
	switch name {
	case Baseline:
		return nil, nil
	case MemScaleName:
		return policy.NewMemScale(cfg)
	case CPUOnlyName:
		return policy.NewCPUOnly(cfg)
	case UncoordName:
		return policy.NewUncoordinated(cfg)
	case SemiName:
		return policy.NewSemiCoordinated(cfg)
	case SemiOoPName:
		p, err := policy.NewSemiCoordinated(cfg)
		if err != nil {
			return nil, err
		}
		p.OutOfPhase = true
		return p, nil
	case CoScaleName:
		return core.New(cfg)
	case OfflineName:
		return policy.NewOffline(cfg)
	case NoGroupingName:
		return core.NewWithOptions(cfg, core.Options{DisableGrouping: true})
	case NoMarginalCache:
		return core.NewWithOptions(cfg, core.Options{DisableMarginalCache: true})
	case HardenedName:
		p, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return policy.Harden(cfg, p)
	case WarmName:
		return core.NewWithOptions(cfg, core.Options{WarmStart: true})
	}
	return nil, fmt.Errorf("experiments: unknown policy %q", name)
}

// Runner executes experiments. The zero value uses the paper's full settings;
// reduce InstrBudget for fast test/bench runs.
type Runner struct {
	// InstrBudget overrides the per-application instruction budget
	// (default 100M, the paper's SimPoint length).
	InstrBudget uint64
	// Parallel bounds concurrent simulation runs (default NumCPU).
	Parallel int
	// Ctx, when non-nil, is the base context every context-free call
	// (Execute, the figure generators) derives from — the hook that lets
	// cmd/coscale-experiments cancel a whole figure regeneration on SIGINT.
	// Per-call contexts via ExecuteContext take precedence.
	Ctx context.Context

	// cache memoizes (mix, policy, keyExtra) outcomes and baselines
	// memoizes the shared no-DVFS run per (mix, keyExtra), both with
	// singleflight dedup (cache.Flight). Errors are memoized too —
	// simulations are deterministic, so a retry would fail the same way —
	// except context cancellations, which are forgotten so an interrupted
	// key can be recomputed.
	cache     cache.Flight[string, *Outcome]
	baselines cache.Flight[string, *sim.Result]

	// tables is the shared per-platform table cache (policy.TableCache)
	// every policy the runner constructs draws from: a sweep of many
	// policies and workloads over one platform builds the ladder columns
	// and memory queueing models once, not once per evaluator.
	tables policy.TableCache

	baselineRuns atomic.Int64 // baseline simulations actually executed
}

// NewRunner returns a Runner with the given instruction budget (0 = paper
// default).
func NewRunner(budget uint64) *Runner {
	return &Runner{InstrBudget: budget}
}

// Tables exposes the runner's shared per-platform table cache, for callers
// (the serving layer) that construct policies themselves but should still
// share one platform build with the runner's own simulations.
func (r *Runner) Tables() *policy.TableCache { return &r.tables }

// BaselineRuns reports how many baseline simulations the runner actually
// executed (as opposed to served from the shared per-(mix, keyExtra) cache) —
// telemetry for tests asserting the Figure 8/9 sweep runs one baseline per
// mix, not one per policy.
func (r *Runner) BaselineRuns() int64 { return r.baselineRuns.Load() }

// Outcome pairs a policy run with its matching baseline.
type Outcome struct {
	Base *sim.Result
	Run  *sim.Result
}

// FullSavings returns 1 − E_policy/E_base for total system energy.
func (o *Outcome) FullSavings() float64 {
	return 1 - o.Run.Energy.Total()/o.Base.Energy.Total()
}

// MemSavings returns memory-subsystem energy savings.
func (o *Outcome) MemSavings() float64 { return 1 - o.Run.Energy.Mem/o.Base.Energy.Mem }

// CPUSavings returns CPU (cores + L2) energy savings.
func (o *Outcome) CPUSavings() float64 {
	return 1 - (o.Run.Energy.CPU+o.Run.Energy.L2)/(o.Base.Energy.CPU+o.Base.Energy.L2)
}

// Degradations returns per-program slowdowns of the policy run versus the
// baseline run.
func (o *Outcome) Degradations() []float64 {
	out := make([]float64, len(o.Run.Apps))
	for i := range out {
		out[i] = o.Run.Apps[i].FinishTime/o.Base.Apps[i].FinishTime - 1
	}
	return out
}

// AvgDegradation returns the multiprogram-average slowdown.
func (o *Outcome) AvgDegradation() float64 {
	d := o.Degradations()
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	return sum / float64(len(d))
}

// WorstDegradation returns the worst-program slowdown.
func (o *Outcome) WorstDegradation() float64 {
	worst := 0.0
	for _, v := range o.Degradations() {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Execute runs (and caches) a policy against its baseline under cfg. The
// mix, policy and every cfg field that alters behaviour participate in the
// cache key via keyExtra.
//
// The no-DVFS baseline does not depend on the policy, so it is computed once
// per (mix, keyExtra) and shared — a six-policy sweep over a mix runs one
// baseline simulation, not six, and every Outcome for that mix holds the
// same *sim.Result pointer in Base. Concurrent Executes on overlapping keys
// are deduplicated singleflight-style: one goroutine simulates, the rest
// wait for its result.
func (r *Runner) Execute(mixName string, pol PolicyName, mutate func(*sim.Config), keyExtra string) (*Outcome, error) {
	return r.ExecuteContext(r.baseCtx(), mixName, pol, mutate, keyExtra)
}

// ExecuteContext is Execute with cancellation: the context is threaded down
// into the engine's epoch loop, so a long simulation stops within one epoch
// of ctx being done. A cancelled key is not memoized — the next caller
// recomputes it — but concurrent callers already sharing the in-flight slot
// receive the cancellation error.
func (r *Runner) ExecuteContext(ctx context.Context, mixName string, pol PolicyName, mutate func(*sim.Config), keyExtra string) (*Outcome, error) {
	return r.executeVsBase(ctx, mixName, pol, mutate, keyExtra, mutate, keyExtra)
}

// baseCtx resolves the context used by the context-free entry points.
func (r *Runner) baseCtx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// isCancellation reports whether err stems from context cancellation or
// timeout rather than a deterministic simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// executeVsBase is Execute with an independently keyed baseline: the policy
// run is built with mutate under keyExtra while the comparison baseline uses
// (baseMutate, baseKey). The fault-tolerance study uses this to compare
// every fault scenario against the one fault-free baseline — the true
// maximum-frequency performance — instead of simulating an identical
// baseline per scenario.
func (r *Runner) executeVsBase(ctx context.Context, mixName string, pol PolicyName, mutate func(*sim.Config), keyExtra string, baseMutate func(*sim.Config), baseKey string) (*Outcome, error) {
	key := mixName + "/" + string(pol) + "/" + keyExtra
	out, err := r.cache.Do(key, func() (*Outcome, error) {
		return r.execute(ctx, mixName, pol, mutate, baseMutate, baseKey)
	})
	if err != nil && isCancellation(err) {
		r.cache.Forget(key)
	}
	return out, err
}

// execute performs the (cache-miss) simulation work behind Execute.
func (r *Runner) execute(ctx context.Context, mixName string, pol PolicyName, mutate, baseMutate func(*sim.Config), baseKey string) (*Outcome, error) {
	base, err := r.baseline(ctx, mixName, baseMutate, baseKey)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline %s: %w", mixName, err)
	}
	run := base
	if pol != Baseline {
		run, err = r.runOne(ctx, mixName, pol, mutate)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", pol, mixName, err)
		}
	}
	return &Outcome{Base: base, Run: run}, nil
}

// BaselineContext returns the shared no-DVFS run for (mixName, keyExtra),
// simulating it at most once across all policies and goroutines. It is
// exported for the serving layer (internal/server), which runs policy
// simulations itself — to stream per-epoch records — but still shares one
// baseline per workload configuration with every other request.
func (r *Runner) BaselineContext(ctx context.Context, mixName string, mutate func(*sim.Config), keyExtra string) (*sim.Result, error) {
	return r.baseline(ctx, mixName, mutate, keyExtra)
}

// baseline implements BaselineContext.
func (r *Runner) baseline(ctx context.Context, mixName string, mutate func(*sim.Config), keyExtra string) (*sim.Result, error) {
	key := mixName + "/" + keyExtra
	res, err := r.baselines.Do(key, func() (*sim.Result, error) {
		r.baselineRuns.Add(1)
		return r.runOne(ctx, mixName, Baseline, mutate)
	})
	if err != nil && isCancellation(err) {
		r.baselines.Forget(key)
	}
	return res, err
}

// runOne simulates a single (mix, policy) configuration.
func (r *Runner) runOne(ctx context.Context, mixName string, pol PolicyName, mutate func(*sim.Config)) (*sim.Result, error) {
	cfg := sim.Config{Mix: workload.MustGet(mixName), InstrBudget: r.InstrBudget}
	if mutate != nil {
		mutate(&cfg)
	}
	pcfg := cfg.PolicyConfig()
	pcfg.Tables = &r.tables
	p, err := NewPolicy(pol, pcfg)
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.RunContext(ctx)
}

// forEach runs fn for every item with bounded parallelism, collecting the
// first error.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	par := r.Parallel
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > n {
		par = n
	}
	sem := make(chan struct{}, par)
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errc <- fn(i)
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}
	return nil
}
