package experiments

import (
	"sync"
	"testing"

	"coscale/internal/sim"
	"coscale/internal/workload"
)

// raceBudget is deliberately tiny: these tests exist to put the runner's
// cache and the engine's state under the race detector, not to produce
// meaningful figures.
const raceBudget = 1_000_000

// TestRunnerConcurrentExecute hammers one Runner from many goroutines with
// overlapping keys: every goroutine races on the shared result cache, both
// on the hit and the miss path.
func TestRunnerConcurrentExecute(t *testing.T) {
	t.Parallel()
	r := NewRunner(raceBudget)
	r.Parallel = 2
	mixes := []string{"ILP1", "MID1"}
	policies := []PolicyName{MemScaleName, CoScaleName}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := r.Execute(mixes[g%len(mixes)], policies[g%len(policies)], nil, "race-smoke")
			errc <- err
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBaselineSharedUnderConcurrency runs every practical policy on one mix
// from concurrent goroutines and asserts the no-DVFS baseline was simulated
// exactly once and is shared by pointer: every Outcome.Base must be the SAME
// *sim.Result, not merely an equal one. This is the dedup behind the Figure
// 8/9 sweep running one baseline per mix instead of one per policy.
func TestBaselineSharedUnderConcurrency(t *testing.T) {
	t.Parallel()
	r := NewRunner(raceBudget)
	r.Parallel = 2
	outcomes := make([]*Outcome, len(PracticalPolicies))
	errs := make([]error, len(PracticalPolicies))
	var wg sync.WaitGroup
	for i, pol := range PracticalPolicies {
		wg.Add(1)
		go func(i int, pol PolicyName) {
			defer wg.Done()
			outcomes[i], errs[i] = r.Execute("MID1", pol, nil, "race-shared")
		}(i, pol)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", PracticalPolicies[i], err)
		}
	}
	for i, o := range outcomes {
		if o.Base != outcomes[0].Base {
			t.Errorf("%s: baseline pointer %p differs from %p — baseline not shared",
				PracticalPolicies[i], o.Base, outcomes[0].Base)
		}
	}
	if got := r.BaselineRuns(); got != 1 {
		t.Errorf("baseline simulated %d times, want exactly 1", got)
	}
	// A different keyExtra must NOT share the baseline (mutate may differ).
	o2, err := r.Execute("MID1", CoScaleName, nil, "race-shared-2")
	if err != nil {
		t.Fatal(err)
	}
	if o2.Base == outcomes[0].Base {
		t.Error("baseline shared across distinct keyExtra values")
	}
	if got := r.BaselineRuns(); got != 2 {
		t.Errorf("baseline runs after second keyExtra = %d, want 2", got)
	}
}

// TestRunnerForEachParallel drives the bounded-parallelism sweep helper the
// way the figure generators do: each worker writes its own row while
// sharing the runner's cache.
func TestRunnerForEachParallel(t *testing.T) {
	t.Parallel()
	r := NewRunner(raceBudget)
	r.Parallel = 4
	mixes := []string{"ILP1", "MID1", "MEM1", "MIX1"}
	savings := make([]float64, len(mixes))
	err := r.forEach(len(mixes), func(i int) error {
		o, err := r.Execute(mixes[i], CoScaleName, nil, "race-foreach")
		if err != nil {
			return err
		}
		savings[i] = o.FullSavings()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range savings {
		if s < -1 || s > 1 {
			t.Errorf("%s: implausible savings %v", mixes[i], s)
		}
	}
}

// TestEnginesConcurrentDeterministic runs independent engines on the same
// configuration from several goroutines: no engine state may be shared, and
// every run must produce bit-identical energy and finish times — the
// reproducibility contract behind checkpoint/resume and figure
// regeneration.
func TestEnginesConcurrentDeterministic(t *testing.T) {
	t.Parallel()
	const n = 4
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := sim.Config{Mix: workload.MustGet("MEM1"), InstrBudget: raceBudget}
			eng, err := sim.New(cfg)
			if err != nil {
				errs[g] = err
				return
			}
			results[g], errs[g] = eng.Run()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	ref := results[0]
	for g := 1; g < n; g++ {
		// Exact comparison is intentional: identical configurations must
		// produce identical bits (test files are outside floateq's scope).
		if results[g].Energy != ref.Energy {
			t.Errorf("goroutine %d energy %+v differs from %+v", g, results[g].Energy, ref.Energy)
		}
		for i := range ref.Apps {
			if results[g].Apps[i].FinishTime != ref.Apps[i].FinishTime {
				t.Errorf("goroutine %d app %d finish %v differs from %v",
					g, i, results[g].Apps[i].FinishTime, ref.Apps[i].FinishTime)
			}
		}
	}
}
