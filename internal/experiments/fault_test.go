package experiments

import (
	"context"
	"testing"

	"coscale/internal/fault"
)

// biasScenario is the headline degradation mechanism: a uniform counter
// bias survives every per-instruction ratio the controller derives (the
// ratios cancel) but inflates the instruction counts feeding the slack
// accounting, so the controller banks slack the programs never earned and
// spends it as a real bound violation.
func biasScenario(b float64) fault.Config {
	return fault.Config{Seed: 0xB1A5, Counters: fault.CounterFaults{Bias: b}}
}

// TestCounterBiasBreaksUnhardenedCoScale: under a 20% uniform counter bias,
// bare CoScale violates the 10% bound against the true (fault-free)
// baseline, while the Hardened wrapper detects the implausible counters,
// rides maximum frequency, and keeps the bound.
func TestCounterBiasBreaksUnhardenedCoScale(t *testing.T) {
	r := NewRunner(testBudget)
	scen := biasScenario(0.2)

	bare, err := r.executeVsBase(context.Background(), ErrorToleranceMix, CoScaleName,
		faultMutator(scen), "fault:test-bias", nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	hard, err := r.executeVsBase(context.Background(), ErrorToleranceMix, HardenedName,
		faultMutator(scen), "fault:test-bias", nil, "default")
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("bias 0.2: CoScale worst-deg %.1f%% (savings %.1f%%), Hardened worst-deg %.1f%% (savings %.1f%%)",
		bare.WorstDegradation()*100, bare.FullSavings()*100,
		hard.WorstDegradation()*100, hard.FullSavings()*100)

	if w := bare.WorstDegradation(); w <= ViolationThreshold {
		t.Errorf("unhardened CoScale under 20%% counter bias degraded only %.1f%%; expected a bound violation (> %.1f%%)",
			w*100, ViolationThreshold*100)
	}
	if w := hard.WorstDegradation(); w > ViolationThreshold {
		t.Errorf("Hardened CoScale violated the bound under 20%% counter bias: worst degradation %.1f%%", w*100)
	}
}

// TestHardenedTransparentFaultFree: with no faults injected the watchdog
// must not interfere — the hardened controller still meets the bound and
// saves essentially the same energy as bare CoScale.
func TestHardenedTransparentFaultFree(t *testing.T) {
	r := NewRunner(testBudget)
	bare, err := r.Execute(ErrorToleranceMix, CoScaleName, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	hard, err := r.Execute(ErrorToleranceMix, HardenedName, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fault-free: CoScale savings %.1f%%, Hardened savings %.1f%%",
		bare.FullSavings()*100, hard.FullSavings()*100)
	if w := hard.WorstDegradation(); w > ViolationThreshold {
		t.Errorf("fault-free Hardened run violated the bound: %.1f%%", w*100)
	}
	if hard.FullSavings() < bare.FullSavings()-0.02 {
		t.Errorf("watchdog cost too much energy fault-free: %.1f%% vs CoScale's %.1f%%",
			hard.FullSavings()*100, bare.FullSavings()*100)
	}
}
