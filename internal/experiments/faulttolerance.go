// Error-tolerance study (DESIGN.md §8): how CoScale degrades when the
// counters and actuators it trusts start lying, and how the Hardened
// watchdog wrapper (policy.Harden) restores graceful degradation. Not a
// paper figure — the paper assumes ideal sensors — but the natural
// robustness companion to its evaluation.

package experiments

import (
	"fmt"

	"coscale/internal/fault"
	"coscale/internal/sim"
)

// ErrorToleranceMix is the workload the robustness study runs on: a MID mix,
// where CoScale actively trades both knobs and therefore has the most slack
// to mis-spend when its inputs go bad.
const ErrorToleranceMix = "MID1"

// ViolationThreshold is the worst-program degradation above which a run is
// counted as a bound violation: the 10% bound plus the repository-wide 1.5
// point measurement tolerance used by the tier-1 tests.
const ViolationThreshold = 0.115

// FaultRow is one (scenario, policy) cell of the error-tolerance study.
type FaultRow struct {
	Scenario  string  // scenario id, e.g. "counter-bias-0.05"
	Magnitude float64 // scenario strength (probability, bias, epochs...)
	Policy    PolicyName
	Savings   float64 // full-system energy savings vs the fault-free baseline
	AvgDeg    float64
	WorstDeg  float64
	Violation bool // WorstDeg > ViolationThreshold
}

// faultCase is one named injection scenario.
type faultCase struct {
	id  string
	mag float64
	cfg fault.Config
}

// faultCases enumerates the study's scenarios. Every scenario uses a fixed
// seed so the study is reproducible run to run; the fault-free reference
// case comes first.
func faultCases() []faultCase {
	const seed = 0xC05CA1EFA017
	cases := []faultCase{{id: "none", mag: 0}}
	counters := func(kind string, mag float64, c fault.CounterFaults) {
		cases = append(cases, faultCase{
			id: fmt.Sprintf("counter-%s-%g", kind, mag), mag: mag,
			cfg: fault.Config{Seed: seed, Counters: c},
		})
	}
	for _, b := range []float64{0.01, 0.05, 0.2} {
		counters("bias", b, fault.CounterFaults{Bias: b})
	}
	for _, n := range []float64{0.01, 0.05, 0.2} {
		counters("noise", n, fault.CounterFaults{Noise: n})
	}
	for _, p := range []float64{0.1, 0.3} {
		counters("stale", p, fault.CounterFaults{StaleProb: p})
	}
	for _, p := range []float64{0.05, 0.2} {
		counters("drop", p, fault.CounterFaults{DropProb: p})
	}
	for _, b := range []float64{0.1, 0.3} {
		cases = append(cases, faultCase{
			id: fmt.Sprintf("power-bias-%g", b), mag: b,
			cfg: fault.Config{Seed: seed, PowerBias: b},
		})
	}
	for _, lag := range []int{1, 3} {
		cases = append(cases, faultCase{
			id: fmt.Sprintf("actuation-lag-%d", lag), mag: float64(lag),
			cfg: fault.Config{Seed: seed, Actuation: fault.ActuationFaults{LagEpochs: lag}},
		})
	}
	for _, p := range []float64{0.2, 0.5} {
		cases = append(cases, faultCase{
			id: fmt.Sprintf("actuation-drop-%g", p), mag: p,
			cfg: fault.Config{Seed: seed, Actuation: fault.ActuationFaults{DropProb: p}},
		})
	}
	cases = append(cases, faultCase{
		id: "actuation-stuck-0.05", mag: 0.05,
		cfg: fault.Config{Seed: seed, Actuation: fault.ActuationFaults{StuckProb: 0.05, StuckEpochs: 5}},
	})
	cases = append(cases, faultCase{
		id: "thermal-0.02", mag: 0.02,
		cfg: fault.Config{Seed: seed, Actuation: fault.ActuationFaults{
			ThermalProb: 0.02, ThermalEpochs: 10, ThermalMinCoreStep: 5,
		}},
	})
	return cases
}

// faultMutator returns a config mutator installing one scenario. The
// zero-value scenario installs no injector at all, keeping the reference
// run on the golden-compatible engine path.
func faultMutator(cfg fault.Config) func(*sim.Config) {
	if cfg == (fault.Config{}) {
		return nil
	}
	return func(c *sim.Config) {
		f := cfg
		c.Faults = &f
	}
}

// ErrorTolerance runs CoScale and CoScale-Hardened under every fault
// scenario on ErrorToleranceMix. Degradation and savings are measured
// against the fault-free baseline (the true maximum-frequency run), so a
// controller misled into over-slowing the system shows up as a genuine
// bound violation.
func (r *Runner) ErrorTolerance() ([]FaultRow, error) {
	cases := faultCases()
	pols := []PolicyName{CoScaleName, HardenedName}
	rows := make([]FaultRow, len(cases)*len(pols))
	err := r.forEach(len(rows), func(k int) error {
		ci, pi := k/len(pols), k%len(pols)
		row, err := r.errorToleranceOne(cases[ci], pols[pi])
		if err != nil {
			return err
		}
		rows[k] = row
		return nil
	})
	return rows, err
}

// errorToleranceOne runs one (scenario, policy) cell against the shared
// fault-free baseline.
func (r *Runner) errorToleranceOne(fc faultCase, pol PolicyName) (FaultRow, error) {
	o, err := r.executeVsBase(r.baseCtx(), ErrorToleranceMix, pol, faultMutator(fc.cfg),
		"fault:"+fc.id, nil, "default")
	if err != nil {
		return FaultRow{}, err
	}
	worst := o.WorstDegradation()
	return FaultRow{
		Scenario:  fc.id,
		Magnitude: fc.mag,
		Policy:    pol,
		Savings:   o.FullSavings(),
		AvgDeg:    o.AvgDegradation(),
		WorstDeg:  worst,
		Violation: worst > ViolationThreshold,
	}, nil
}

// FormatErrorTolerance renders the study as a scenario × policy table.
func FormatErrorTolerance(rows []FaultRow) string {
	s := "Error tolerance (MID1): CoScale vs CoScale-Hardened under injected faults\n"
	s += fmt.Sprintf("%-22s %-18s %9s %9s %9s  %s\n",
		"scenario", "policy", "savings", "avg-deg", "worst", "bound")
	for _, r := range rows {
		verdict := "ok"
		if r.Violation {
			verdict = "VIOLATED"
		}
		s += fmt.Sprintf("%-22s %-18s %8.1f%% %8.1f%% %8.1f%%  %s\n",
			r.Scenario, r.Policy, r.Savings*100, r.AvgDeg*100, r.WorstDeg*100, verdict)
	}
	return s
}
