package experiments

import (
	"fmt"
	"time"

	"coscale/internal/freq"
	"coscale/internal/power"
	"coscale/internal/sim"
	"coscale/internal/trace"
	"coscale/internal/workload"
)

// SensitivityRow is one (mix, variant) cell of a §4.2.4 sensitivity study.
type SensitivityRow struct {
	Mix      string
	Variant  string
	Full     float64 // full-system energy savings
	WorstDeg float64
}

// classMixNames returns the four mixes of one class.
func classMixNames(class trace.Class) []string {
	ms := workload.ByClass(class)
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

// sweep runs CoScale over the given mixes × variants. id namespaces the
// run-cache keys so different sweeps with identical variant labels (e.g.
// Figure 10's "5%" bound vs Figure 11's "5%" rest-power) never collide.
func (r *Runner) sweep(id string, mixes []string, variants []string, mutate func(variant string, c *sim.Config)) ([]SensitivityRow, error) {
	rows := make([]SensitivityRow, len(mixes)*len(variants))
	err := r.forEach(len(rows), func(k int) error {
		mi, vi := k/len(variants), k%len(variants)
		v := variants[vi]
		o, err := r.Execute(mixes[mi], CoScaleName,
			func(c *sim.Config) { mutate(v, c) }, id+"="+v)
		if err != nil {
			return err
		}
		rows[k] = SensitivityRow{Mix: mixes[mi], Variant: v,
			Full: o.FullSavings(), WorstDeg: o.WorstDegradation()}
		return nil
	})
	return rows, err
}

// Figure10 varies the allowable performance bound (1, 5, 10, 15, 20%) on
// the MID mixes.
func (r *Runner) Figure10() ([]SensitivityRow, error) {
	bounds := map[string]float64{"1%": 0.01, "5%": 0.05, "10%": 0.10, "15%": 0.15, "20%": 0.20}
	return r.sweep("bound", classMixNames(trace.MID), []string{"1%", "5%", "10%", "15%", "20%"},
		func(v string, c *sim.Config) { c.Gamma = bounds[v] })
}

// Figure11 varies the rest-of-system power share (5, 10, 15, 20%) on the
// MID mixes.
func (r *Runner) Figure11() ([]SensitivityRow, error) {
	rest := map[string]float64{"5%": 0.05, "10%": 0.10, "15%": 0.15, "20%": 0.20}
	return r.sweep("rest", classMixNames(trace.MID), []string{"5%", "10%", "15%", "20%"},
		func(v string, c *sim.Config) {
			f := rest[v]
			// Hold the 2:1 CPU:Mem ratio, re-weight the rest share.
			cpu := (1 - f) * 2 / 3
			mem := (1 - f) / 3
			c.Power = power.CalibratedSystem(c.Mix.Cores(), cpu, mem, f)
		})
}

// powerRatioFractions maps a Figure 12/13 CPU:Mem label to calibration
// fractions with the rest share fixed at 10%. The label reaches this point
// from sweep tables and (eventually) CLI surfaces, so an unknown one is a
// returned error, not a panic.
func powerRatioFractions(v string) (cpu, mem, rest float64, err error) {
	switch v {
	case "2:1":
		return 0.60, 0.30, 0.10, nil
	case "1:1":
		return 0.45, 0.45, 0.10, nil
	case "1:2":
		return 0.30, 0.60, 0.10, nil
	}
	return 0, 0, 0, fmt.Errorf("experiments: unknown power ratio %q", v)
}

// ratioSweep runs the CPU:Mem power-ratio sweep over one mix class,
// resolving every ratio label before any simulation starts.
func (r *Runner) ratioSweep(id string, mixes, variants []string) ([]SensitivityRow, error) {
	type fractions struct{ cpu, mem, rest float64 }
	built := make(map[string]fractions, len(variants))
	for _, v := range variants {
		cpu, mem, rest, err := powerRatioFractions(v)
		if err != nil {
			return nil, err
		}
		built[v] = fractions{cpu, mem, rest}
	}
	return r.sweep(id, mixes, variants,
		func(v string, c *sim.Config) {
			f := built[v]
			c.Power = power.CalibratedSystem(c.Mix.Cores(), f.cpu, f.mem, f.rest)
		})
}

// Figure12 varies the CPU:Mem power ratio on the MID mixes (savings should
// increase as memory power grows).
func (r *Runner) Figure12() ([]SensitivityRow, error) {
	return r.ratioSweep("ratio-mid", classMixNames(trace.MID), []string{"2:1", "1:1", "1:2"})
}

// Figure13 is the same sweep on the MEM mixes (trend reverses: most savings
// come from scaling the CPU).
func (r *Runner) Figure13() ([]SensitivityRow, error) {
	return r.ratioSweep("ratio-mem", classMixNames(trace.MEM), []string{"2:1", "1:1", "1:2"})
}

// Figure14 compares the full CPU voltage range (0.65-1.2 V) against a
// half-width range (0.95-1.2 V) on the MID mixes.
func (r *Runner) Figure14() ([]SensitivityRow, error) {
	return r.sweep("vrange", classMixNames(trace.MID), []string{"full", "half"},
		func(v string, c *sim.Config) {
			if v == "half" {
				c.CoreLadder = freq.HalfVoltageCoreLadder()
			}
		})
}

// Figure15 varies the number of available frequency steps (4, 7, 10) for
// both CPU and memory on the MID mixes.
func (r *Runner) Figure15() ([]SensitivityRow, error) {
	type ladders struct{ core, mem *freq.Ladder }
	variants := []string{"4", "7", "10"}
	steps := map[string]int{"4": 4, "7": 7, "10": 10}
	built := make(map[string]ladders, len(variants))
	for _, v := range variants {
		cl, err := freq.CoreLadderN(steps[v])
		if err != nil {
			return nil, fmt.Errorf("experiments: %d-step core ladder: %w", steps[v], err)
		}
		ml, err := freq.MemLadderN(steps[v])
		if err != nil {
			return nil, fmt.Errorf("experiments: %d-step mem ladder: %w", steps[v], err)
		}
		built[v] = ladders{core: cl, mem: ml}
	}
	return r.sweep("nfreq", classMixNames(trace.MID), variants,
		func(v string, c *sim.Config) {
			c.CoreLadder, c.MemLadder = built[v].core, built[v].mem
		})
}

// AblationRow compares CoScale variants (design-choice ablations called out
// in DESIGN.md).
type AblationRow struct {
	Variant  PolicyName
	Full     float64
	WorstDeg float64
}

// Ablations runs CoScale, CoScale without core grouping, CoScale without
// marginal caching, and the out-of-phase Semi-coordinated variant on the
// MID mixes.
func (r *Runner) Ablations() ([]AblationRow, error) {
	variants := []PolicyName{CoScaleName, NoGroupingName, NoMarginalCache, SemiName, SemiOoPName}
	mixes := classMixNames(trace.MID)
	rows := make([]AblationRow, len(variants))
	type acc struct{ full, worst float64 }
	accs := make([]acc, len(variants))
	// Pre-warm the run cache in parallel; the serial aggregation below
	// then hits the cache.
	err := r.forEach(len(variants)*len(mixes), func(k int) error {
		vi, mi := k/len(mixes), k%len(mixes)
		_, err := r.Execute(mixes[mi], variants[vi], nil, "default")
		return err
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		for _, m := range mixes {
			o, err := r.Execute(m, v, nil, "default")
			if err != nil {
				return nil, err
			}
			accs[vi].full += o.FullSavings() / float64(len(mixes))
			if w := o.WorstDegradation(); w > accs[vi].worst {
				accs[vi].worst = w
			}
		}
		rows[vi] = AblationRow{Variant: v, Full: accs[vi].full, WorstDeg: accs[vi].worst}
	}
	return rows, nil
}

// ProfilingWindowRow measures sensitivity to the profiling-window length
// (the paper's 300 µs default).
type ProfilingWindowRow struct {
	Window   time.Duration
	Full     float64
	WorstDeg float64
}

// ProfilingWindowSweep runs CoScale on the MID mixes with different
// profiling windows.
func (r *Runner) ProfilingWindowSweep() ([]ProfilingWindowRow, error) {
	windows := []time.Duration{100 * time.Microsecond, 300 * time.Microsecond, 1 * time.Millisecond}
	mixes := classMixNames(trace.MID)
	rows := make([]ProfilingWindowRow, len(windows))
	for wi, w := range windows {
		row := ProfilingWindowRow{Window: w}
		for _, m := range mixes {
			o, err := r.Execute(m, CoScaleName,
				func(c *sim.Config) { c.ProfileLen = w }, fmt.Sprintf("prof=%s", w))
			if err != nil {
				return nil, err
			}
			row.Full += o.FullSavings() / float64(len(mixes))
			if d := o.WorstDegradation(); d > row.WorstDeg {
				row.WorstDeg = d
			}
		}
		rows[wi] = row
	}
	return rows, nil
}

// FormatSensitivity renders a sensitivity sweep grouped by variant.
func FormatSensitivity(title string, rows []SensitivityRow) string {
	s := title + "\n"
	s += fmt.Sprintf("%-6s %-8s %10s %10s\n", "mix", "variant", "savings", "worst-deg")
	for _, r := range rows {
		s += fmt.Sprintf("%-6s %-8s %9.1f%% %9.1f%%\n", r.Mix, r.Variant, r.Full*100, r.WorstDeg*100)
	}
	return s
}
