package experiments

import (
	"sync"
	"testing"

	"coscale/internal/workload"
)

// TestFaultFreeBoundInvariant is the repository's bound property test: with
// ideal sensors and actuators, every bound-respecting policy must keep every
// program's worst-case degradation within gamma plus the measurement
// tolerance, on every mix in the workload registry.
//
// Uncoordinated is the documented exception — its CPU and memory managers
// each spend the full slack independently (the paper's Figs. 1 and 9
// motivation), so its violation is expected; the invariant only caps it at
// double-spending (2γ) plus tolerance.
func TestFaultFreeBoundInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy × mix sweep")
	}
	r := NewRunner(testBudget)
	policies := append(append([]PolicyName{}, PracticalPolicies...), HardenedName, WarmName)
	mixes := workload.Names()

	type cell struct {
		pol   PolicyName
		mix   string
		worst float64
		limit float64
	}
	cells := make([]cell, 0, len(policies)*len(mixes))
	var mu sync.Mutex
	err := r.forEach(len(policies)*len(mixes), func(k int) error {
		pol, mix := policies[k/len(mixes)], mixes[k%len(mixes)]
		o, err := r.Execute(mix, pol, nil, "default")
		if err != nil {
			return err
		}
		limit := ViolationThreshold
		if pol == UncoordName {
			limit = 2*0.10 + 0.015
		}
		mu.Lock()
		cells = append(cells, cell{pol, mix, o.WorstDegradation(), limit})
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.worst > c.limit {
			t.Errorf("%s on %s: worst degradation %.1f%% exceeds limit %.1f%%",
				c.pol, c.mix, c.worst*100, c.limit*100)
		}
	}
}
