package experiments

import (
	"fmt"

	"coscale/internal/cache"
	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/sim"
	"coscale/internal/trace"
	"coscale/internal/workload"
)

// Fig16Row is one workload class of Figure 16: full-system energy per
// instruction, normalized to the no-prefetch no-DVFS baseline.
type Fig16Row struct {
	Class        trace.Class
	Base         float64 // always 1.0
	BasePref     float64
	BaseCoScale  float64
	BothCombined float64 // Base+Pref+CoScale
}

// Figure16 regenerates the prefetching study: energy per instruction of
// Base, Base+Pref, Base+CoScale and Base+Pref+CoScale per workload class.
func (r *Runner) Figure16() ([]Fig16Row, error) {
	classes := []trace.Class{trace.MEM, trace.MID, trace.ILP, trace.MIX}
	rows := make([]Fig16Row, len(classes))

	type variant struct {
		pol  PolicyName
		pref bool
		key  string
	}
	variants := []variant{
		{Baseline, false, "default"},
		{Baseline, true, "pref"},
		{CoScaleName, false, "default"},
		{CoScaleName, true, "pref"},
	}

	// Pre-warm in parallel across all (class-mix, variant) cells.
	var cells []func() error
	for _, cl := range classes {
		for _, m := range classMixNames(cl) {
			for _, v := range variants {
				m, v := m, v
				cells = append(cells, func() error {
					_, err := r.Execute(m, v.pol, func(c *sim.Config) { c.Prefetch = v.pref }, v.key)
					return err
				})
			}
		}
	}
	if err := r.forEach(len(cells), func(i int) error { return cells[i]() }); err != nil {
		return nil, err
	}

	for ci, cl := range classes {
		row := Fig16Row{Class: cl, Base: 1}
		var epi [4]float64 // base, base+pref, base+coscale, both
		for _, m := range classMixNames(cl) {
			for vi, v := range variants {
				o, err := r.Execute(m, v.pol, func(c *sim.Config) { c.Prefetch = v.pref }, v.key)
				if err != nil {
					return nil, err
				}
				epi[vi] += o.Run.EnergyPerInstruction() / 4
			}
		}
		row.BasePref = epi[1] / epi[0]
		row.BaseCoScale = epi[2] / epi[0]
		row.BothCombined = epi[3] / epi[0]
		rows[ci] = row
	}
	return rows, nil
}

// Fig17Row is one class of Figures 17 and 18: average CPI and energy per
// instruction for In-order, OoO, In-order+CoScale and OoO+CoScale,
// normalized to the in-order baseline.
type Fig17Row struct {
	Class trace.Class
	// Normalized CPI (Figure 17).
	CPIInOrder, CPIOoO, CPIInOrderCoScale, CPIOoOCoScale float64
	// Normalized energy per instruction (Figure 18).
	EPIInOrder, EPIOoO, EPIInOrderCoScale, EPIOoOCoScale float64
}

// Figure17And18 regenerates the out-of-order study. The OoO configuration
// emulates a 128-instruction window by giving each application its profiled
// memory-level parallelism.
func (r *Runner) Figure17And18() ([]Fig17Row, error) {
	classes := []trace.Class{trace.MEM, trace.MID, trace.ILP, trace.MIX}
	rows := make([]Fig17Row, len(classes))

	type variant struct {
		pol PolicyName
		ooo bool
		key string
	}
	variants := []variant{
		{Baseline, false, "default"},
		{Baseline, true, "ooo"},
		{CoScaleName, false, "default"},
		{CoScaleName, true, "ooo"},
	}
	var cells []func() error
	for _, cl := range classes {
		for _, m := range classMixNames(cl) {
			for _, v := range variants {
				m, v := m, v
				cells = append(cells, func() error {
					_, err := r.Execute(m, v.pol, func(c *sim.Config) { c.OoO = v.ooo }, v.key)
					return err
				})
			}
		}
	}
	if err := r.forEach(len(cells), func(i int) error { return cells[i]() }); err != nil {
		return nil, err
	}

	for ci, cl := range classes {
		var timePer [4]float64 // proxy for CPI: wall time per instruction
		var epi [4]float64
		for _, m := range classMixNames(cl) {
			for vi, v := range variants {
				o, err := r.Execute(m, v.pol, func(c *sim.Config) { c.OoO = v.ooo }, v.key)
				if err != nil {
					return nil, err
				}
				timePer[vi] += o.Run.WallTime / float64(o.Run.TotalInstructions) / 4
				epi[vi] += o.Run.EnergyPerInstruction() / 4
			}
		}
		rows[ci] = Fig17Row{
			Class:             cl,
			CPIInOrder:        1,
			CPIOoO:            timePer[1] / timePer[0],
			CPIInOrderCoScale: timePer[2] / timePer[0],
			CPIOoOCoScale:     timePer[3] / timePer[0],
			EPIInOrder:        1,
			EPIOoO:            epi[1] / epi[0],
			EPIInOrderCoScale: epi[2] / epi[0],
			EPIOoOCoScale:     epi[3] / epi[0],
		}
	}
	return rows, nil
}

// Table1Row is one mix of Table 1: measured vs published MPKI/WPKI.
type Table1Row struct {
	Mix                  string
	MPKI, WPKI           float64 // measured under the contention model
	PaperMPKI, PaperWPKI float64
	Apps                 []string
}

// Table1 regenerates the workload characteristics.
func (r *Runner) Table1() ([]Table1Row, error) {
	llc := cache.NewShareModel(cache.DefaultSizeMB)
	names := workload.Names()
	rows := make([]Table1Row, len(names))
	for i, n := range names {
		m := workload.MustGet(n)
		ch, err := m.Characterize(llc)
		if err != nil {
			return nil, err
		}
		rows[i] = Table1Row{Mix: n, MPKI: ch.MPKI, WPKI: ch.WPKI,
			PaperMPKI: m.PaperMPKI, PaperWPKI: m.PaperWPKI, Apps: m.Apps}
	}
	return rows, nil
}

// Table2 renders the main system settings actually configured in this
// implementation, mirroring the paper's Table 2.
func Table2() string {
	mem := memsys.DefaultParams()
	cl := freq.DefaultCoreLadder()
	ml := freq.DefaultMemLadder()
	s := "Table 2: main system settings\n"
	s += fmt.Sprintf("  CPU cores           16 in-order, single thread, %.1f GHz max\n", cl.MaxHz()/freq.GHz)
	s += fmt.Sprintf("  Core DVFS           %s, %.2f-%.2f V\n", cl, cl.Volts(cl.Steps()-1), cl.Volts(0))
	s += fmt.Sprintf("  L2 cache (shared)   %d MB, %d-way, %d CPU-cycle hit, %d B blocks\n",
		cache.DefaultSizeMB, cache.DefaultWays, cache.DefaultHitCycles, cache.DefaultBlockSize)
	s += fmt.Sprintf("  Memory              %d DDR3 channels, %d banks/channel\n", mem.Channels, mem.BanksPerChannel)
	s += fmt.Sprintf("  Memory DVFS         %s (MC at 2x bus)\n", ml)
	s += fmt.Sprintf("  tRCD, tCL, tRP      %.0f ns, %.0f ns, %.0f ns\n", mem.TRCDNs, mem.TCLNs, mem.TRPNs)
	s += fmt.Sprintf("  Transition costs    core %v; memory %d cycles + %v\n",
		freq.DefaultCoreTransition, freq.MemTransitionCycles, freq.MemTransitionFixed)
	return s
}

// FormatFig16 renders Figure 16.
func FormatFig16(rows []Fig16Row) string {
	s := "Figure 16: prefetching — normalized energy per instruction\n"
	s += fmt.Sprintf("%-5s %8s %10s %12s %16s\n", "class", "Base", "Base+Pref", "Base+CoScale", "Base+Pref+CoScale")
	for _, r := range rows {
		s += fmt.Sprintf("%-5s %8.2f %10.2f %12.2f %16.2f\n", r.Class, r.Base, r.BasePref, r.BaseCoScale, r.BothCombined)
	}
	return s
}

// FormatFig17And18 renders Figures 17 and 18.
func FormatFig17And18(rows []Fig17Row) string {
	s := "Figure 17: in-order vs OoO — normalized average CPI\n"
	s += fmt.Sprintf("%-5s %9s %8s %12s %12s\n", "class", "In-order", "OoO", "InOrd+CoSc", "OoO+CoSc")
	for _, r := range rows {
		s += fmt.Sprintf("%-5s %9.2f %8.2f %12.2f %12.2f\n", r.Class, r.CPIInOrder, r.CPIOoO, r.CPIInOrderCoScale, r.CPIOoOCoScale)
	}
	s += "Figure 18: in-order vs OoO — normalized energy per instruction\n"
	s += fmt.Sprintf("%-5s %9s %8s %12s %12s\n", "class", "In-order", "OoO", "InOrd+CoSc", "OoO+CoSc")
	for _, r := range rows {
		s += fmt.Sprintf("%-5s %9.2f %8.2f %12.2f %12.2f\n", r.Class, r.EPIInOrder, r.EPIOoO, r.EPIInOrderCoScale, r.EPIOoOCoScale)
	}
	return s
}

// FormatTable1 renders Table 1 with paper values alongside.
func FormatTable1(rows []Table1Row) string {
	s := "Table 1: workload characteristics (measured vs paper)\n"
	s += fmt.Sprintf("%-6s %10s %10s %10s %10s  %s\n", "mix", "MPKI", "paper", "WPKI", "paper", "applications (x4 each)")
	for _, r := range rows {
		s += fmt.Sprintf("%-6s %10.2f %10.2f %10.2f %10.2f  %v\n", r.Mix, r.MPKI, r.PaperMPKI, r.WPKI, r.PaperWPKI, r.Apps)
	}
	return s
}
