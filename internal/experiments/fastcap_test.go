package experiments

import (
	"math"
	"strings"
	"testing"
)

func fastCapRow(t *testing.T, rows []FastCapRow, strategy, segment string) FastCapRow {
	t.Helper()
	for _, r := range rows {
		if r.Strategy == strategy && r.Segment == segment {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", strategy, segment)
	return FastCapRow{}
}

// TestFastCapFairBeatsGreedyUnderCut pins the study's headline result on
// the committed default grid: under the 20% budget cut, fair max-min
// water-filling beats greedy on worst-node slowdown at equal-or-better
// energy, and is no less fair by Jain's index.
func TestFastCapFairBeatsGreedyUnderCut(t *testing.T) {
	rows, err := NewRunner(0).FastCap(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fair := fastCapRow(t, rows, "fair", "cut")
	greedy := fastCapRow(t, rows, "greedy", "cut")
	if !(fair.WorstSlow < greedy.WorstSlow) {
		t.Errorf("fair worst-node slowdown %.4f not better than greedy %.4f under the cut",
			fair.WorstSlow, greedy.WorstSlow)
	}
	if fair.EnergyJ > greedy.EnergyJ {
		t.Errorf("fair energy %.4f J exceeds greedy %.4f J under the cut", fair.EnergyJ, greedy.EnergyJ)
	}
	if fair.Jain < greedy.Jain {
		t.Errorf("fair Jain %.4f below greedy %.4f under the cut", fair.Jain, greedy.Jain)
	}
	// The dip stresses harder; fairness must not invert there either.
	fairDip := fastCapRow(t, rows, "fair", "dip")
	greedyDip := fastCapRow(t, rows, "greedy", "dip")
	if fairDip.Spread > greedyDip.Spread {
		t.Errorf("fair spread %.4f exceeds greedy %.4f in the dip", fairDip.Spread, greedyDip.Spread)
	}
}

func TestFastCapSegmentsPartitionEpochs(t *testing.T) {
	rows, err := NewRunner(0).FastCap(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9 (3 strategies × 3 segments)", len(rows))
	}
	for _, strat := range []string{"fair", "greedy", "uniform"} {
		total := 0
		for _, seg := range []string{"steady", "cut", "dip"} {
			r := fastCapRow(t, rows, strat, seg)
			total += r.Epochs
			if r.Epochs == 0 {
				t.Errorf("%s/%s has no epochs", strat, seg)
			}
			if !(r.WorstSlow >= 1) {
				t.Errorf("%s/%s worst slowdown %.4f below 1", strat, seg, r.WorstSlow)
			}
			if r.Jain <= 0 || r.Jain > 1+1e-9 {
				t.Errorf("%s/%s Jain %.4f outside (0,1]", strat, seg, r.Jain)
			}
		}
		if total != 12 {
			t.Errorf("%s: segments cover %d epochs, want 12", strat, total)
		}
	}
}

// TestFastCapReplayBitIdentical replays the reduced grid and requires
// bit-identical rows: the study is a pure function of (seed, nodes, epochs)
// even though the three strategies run concurrently.
func TestFastCapReplayBitIdentical(t *testing.T) {
	a, err := NewRunner(0).FastCap(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(0).FastCap(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Strategy != b[i].Strategy || a[i].Segment != b[i].Segment ||
			a[i].Epochs != b[i].Epochs || a[i].Clamped != b[i].Clamped ||
			math.Float64bits(a[i].EnergyJ) != math.Float64bits(b[i].EnergyJ) ||
			math.Float64bits(a[i].WorstSlow) != math.Float64bits(b[i].WorstSlow) ||
			math.Float64bits(a[i].Spread) != math.Float64bits(b[i].Spread) ||
			math.Float64bits(a[i].Jain) != math.Float64bits(b[i].Jain) {
			t.Fatalf("row %d diverged across replays:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestFastCapValidatesGrid(t *testing.T) {
	if _, err := NewRunner(0).FastCap(-1, 12); err == nil {
		t.Error("negative fleet accepted")
	}
	if _, err := NewRunner(0).FastCap(3, 3); err == nil {
		t.Error("too few epochs accepted")
	}
}

func TestFormatFastCap(t *testing.T) {
	rows, err := NewRunner(0).FastCap(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFastCap(rows)
	for _, want := range []string{"strategy", "fair", "greedy", "uniform", "cut", "dip", "jain"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}
