package experiments

import (
	"strings"
	"testing"

	"coscale/internal/trace"
)

func TestFormatters(t *testing.T) {
	fig5 := FormatFig5([]Fig5Row{{Mix: "MEM1", Full: 0.141, Memory: -0.052, CPU: 0.366}})
	for _, want := range []string{"MEM1", "14.1%", "-5.2%", "36.6%"} {
		if !strings.Contains(fig5, want) {
			t.Errorf("FormatFig5 missing %q:\n%s", want, fig5)
		}
	}

	fig6 := FormatFig6([]Fig6Row{{Mix: "ILP2", Avg: 0.089, Worst: 0.092}})
	if !strings.Contains(fig6, "ILP2") || !strings.Contains(fig6, "9.2%") {
		t.Errorf("FormatFig6 output wrong:\n%s", fig6)
	}

	fig7 := FormatFig7(map[PolicyName][]TimelinePoint{
		CoScaleName: {{Epoch: 1, MemGHz: 0.8, CoreGHz: 4.0}},
		UncoordName: {},
		SemiName:    {},
	})
	if !strings.Contains(fig7, "CoScale") || !strings.Contains(fig7, "0.800 / 4.00") {
		t.Errorf("FormatFig7 output wrong:\n%s", fig7)
	}

	fig8 := FormatFig8And9([]Fig8Row{{Policy: UncoordName, Full: 0.145, WorstDeg: 0.166}})
	if !strings.Contains(fig8, "Uncoordinated") || !strings.Contains(fig8, "16.6%") {
		t.Errorf("FormatFig8And9 output wrong:\n%s", fig8)
	}

	sens := FormatSensitivity("title", []SensitivityRow{{Mix: "MID1", Variant: "5%", Full: 0.074, WorstDeg: 0.045}})
	if !strings.Contains(sens, "title") || !strings.Contains(sens, "MID1") {
		t.Errorf("FormatSensitivity output wrong:\n%s", sens)
	}

	fig16 := FormatFig16([]Fig16Row{{Class: trace.MEM, Base: 1, BasePref: 0.83, BaseCoScale: 0.87, BothCombined: 0.74}})
	if !strings.Contains(fig16, "MEM") || !strings.Contains(fig16, "0.74") {
		t.Errorf("FormatFig16 output wrong:\n%s", fig16)
	}

	fig17 := FormatFig17And18([]Fig17Row{{Class: trace.ILP, CPIInOrder: 1, CPIOoO: 0.99,
		EPIInOrder: 1, EPIOoO: 1.0}})
	if !strings.Contains(fig17, "Figure 17") || !strings.Contains(fig17, "Figure 18") {
		t.Errorf("FormatFig17And18 output wrong:\n%s", fig17)
	}

	table1 := FormatTable1([]Table1Row{{Mix: "MIX1", MPKI: 2.98, PaperMPKI: 2.93,
		WPKI: 2.60, PaperWPKI: 2.56, Apps: []string{"applu", "hmmer", "gap", "gzip"}}})
	if !strings.Contains(table1, "MIX1") || !strings.Contains(table1, "applu") {
		t.Errorf("FormatTable1 output wrong:\n%s", table1)
	}
}

func TestProfilingWindowSweep(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.ProfilingWindowSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		t.Logf("window %v: savings %.1f%%, worst %.2f%%", row.Window, row.Full*100, row.WorstDeg*100)
		if row.Full <= 0 {
			t.Errorf("window %v saved nothing", row.Window)
		}
		if row.WorstDeg > 0.10 {
			t.Errorf("window %v violated the bound: %.2f%%", row.Window, row.WorstDeg*100)
		}
	}
	// The paper's 300 µs default should be within a point of the best.
	best := rows[0].Full
	for _, row := range rows {
		if row.Full > best {
			best = row.Full
		}
	}
	if best-rows[1].Full > 0.01 {
		t.Errorf("300 µs window %.3f more than a point below best %.3f", rows[1].Full, best)
	}
}

func TestOutcomeAccessors(t *testing.T) {
	r := NewRunner(testBudget)
	o, err := r.Execute("ILP2", CoScaleName, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Degradations()) != 16 {
		t.Errorf("Degradations length %d", len(o.Degradations()))
	}
	if o.WorstDegradation() < o.AvgDegradation() {
		t.Error("worst < average")
	}
	if o.FullSavings() <= 0 || o.CPUSavings() == 0 {
		t.Errorf("savings accessors degenerate: %g %g", o.FullSavings(), o.CPUSavings())
	}
	// Baseline outcome: run == base, zero degradation and savings.
	b, err := r.Execute("ILP2", Baseline, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	if b.FullSavings() != 0 || b.WorstDegradation() != 0 {
		t.Error("baseline vs itself should be zero savings/degradation")
	}
}

func TestExecuteCaches(t *testing.T) {
	r := NewRunner(testBudget)
	a, err := r.Execute("ILP2", CoScaleName, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Execute("ILP2", CoScaleName, nil, "default")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical Execute calls did not hit the cache")
	}
	c, err := r.Execute("ILP2", CoScaleName, nil, "other-key")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different cache keys returned the same outcome")
	}
}
