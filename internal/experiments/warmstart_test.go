package experiments

import (
	"math"
	"testing"
)

// warmTestBudget is larger than testBudget because the ablation's per-hit
// statistics need enough decision epochs for the snapshot table to amortize:
// at 50M instructions the compute-bound mixes see only a handful of warm
// hits, each still paying the table's cold misses. The runs are analytic, so
// the sweep stays well under a second.
const warmTestBudget = 400_000_000

// TestWarmStartAblationGates holds the warm-start ablation to the numbers
// the optimization promises (DESIGN.md §14): on every mix class the warm
// path must hit, cut per-epoch core evaluations by at least 3× on warm-hit
// epochs, move total energy by under 0.5%, and keep the slowdown bound.
func TestWarmStartAblationGates(t *testing.T) {
	r := NewRunner(warmTestBudget)
	rows, err := r.WarmStart(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.WarmHits == 0 {
			t.Errorf("%s: warm path never hit (%d epochs, %d fallbacks)",
				row.Mix, row.Epochs, row.WarmFallbacks)
			continue
		}
		if row.EvalsRatio < 3 {
			t.Errorf("%s: evals ratio %.1fx below the 3x gate (cold %.1f/epoch, warm %.1f/hit)",
				row.Mix, row.EvalsRatio, row.ColdEvalsPerEpoch, row.WarmEvalsPerHit)
		}
		if math.Abs(row.EnergyDeltaPct) > 0.5 {
			t.Errorf("%s: warm energy delta %+.3f%% outside +/-0.5%%",
				row.Mix, row.EnergyDeltaPct)
		}
		if row.WorstDegWarm > ViolationThreshold {
			t.Errorf("%s: warm worst degradation %.2f%% exceeds threshold %.2f%%",
				row.Mix, row.WorstDegWarm*100, ViolationThreshold*100)
		}
	}
	if t.Failed() {
		t.Log("\n" + FormatWarmStart(rows))
	}
}

// TestWarmStartCounterConservation checks the one-hot outcome accounting:
// every decision epoch is exactly one warm hit or one cold search, and
// fallbacks are a subset of the cold searches.
func TestWarmStartCounterConservation(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.WarmStart(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.WarmHits+row.ColdSearches != row.Epochs {
			t.Errorf("%s: hits %d + colds %d != epochs %d",
				row.Mix, row.WarmHits, row.ColdSearches, row.Epochs)
		}
		if row.WarmFallbacks > row.ColdSearches {
			t.Errorf("%s: fallbacks %d exceed cold searches %d",
				row.Mix, row.WarmFallbacks, row.ColdSearches)
		}
	}
}
