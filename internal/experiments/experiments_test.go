package experiments

import (
	"testing"

	"coscale/internal/trace"
)

// testBudget keeps experiment tests fast while leaving enough epochs for
// controller dynamics to matter.
const testBudget = 50_000_000

func TestFigure5ShapesHold(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("Figure5 returned %d rows", len(rows))
	}
	var classFull = map[string]float64{}
	for _, row := range rows {
		t.Logf("%-5s full %5.1f%% mem %6.1f%% cpu %5.1f%%", row.Mix, row.Full*100, row.Memory*100, row.CPU*100)
		if row.Full < 0.05 {
			t.Errorf("%s: full-system savings %.1f%% too low", row.Mix, row.Full*100)
		}
		classFull[row.Mix[:3]] += row.Full / 4
	}
	// Paper shape: ILP achieves the highest memory savings and at least
	// as much full-system savings as the other classes.
	if classFull["ILP"] < classFull["MEM"] || classFull["ILP"] < classFull["MID"] {
		t.Errorf("ILP class savings %.3f should lead (MEM %.3f, MID %.3f)",
			classFull["ILP"], classFull["MEM"], classFull["MID"])
	}
	for _, row := range rows {
		if row.Mix[:3] == "ILP" && row.Memory < 0.30 {
			t.Errorf("%s: ILP memory savings %.1f%% should be large", row.Mix, row.Memory*100)
		}
		if row.Mix[:3] == "MEM" && row.Memory > 0.10 {
			t.Errorf("%s: MEM memory savings %.1f%% should be near zero", row.Mix, row.Memory*100)
		}
	}
}

func TestFigure6NeverViolates(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Worst > 0.10 {
			t.Errorf("%s: worst degradation %.2f%% exceeds the 10%% bound", row.Mix, row.Worst*100)
		}
		if row.Avg < 0.05 {
			t.Errorf("%s: average degradation %.2f%% — CoScale is leaving slack unused", row.Mix, row.Avg*100)
		}
	}
}

func TestFigure7Timelines(t *testing.T) {
	r := NewRunner(testBudget)
	series, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	co := series[CoScaleName]
	if len(co) < 4 {
		t.Fatalf("CoScale timeline too short: %d epochs", len(co))
	}
	// milc's late memory-bound phase: CoScale should raise memory
	// frequency in the last third relative to the first third, while
	// lowering milc's core frequency.
	third := len(co) / 3
	avg := func(pts []TimelinePoint, f func(TimelinePoint) float64) float64 {
		s := 0.0
		for _, p := range pts {
			s += f(p)
		}
		return s / float64(len(pts))
	}
	earlyMem := avg(co[:third], func(p TimelinePoint) float64 { return p.MemGHz })
	lateMem := avg(co[len(co)-third:], func(p TimelinePoint) float64 { return p.MemGHz })
	if lateMem <= earlyMem {
		t.Errorf("CoScale should raise memory frequency for milc's late phase: early %.3f late %.3f", earlyMem, lateMem)
	}

	// Semi-coordinated should oscillate more than CoScale: count memory
	// frequency direction changes.
	flips := func(pts []TimelinePoint) int {
		n, dir := 0, 0
		for i := 1; i < len(pts); i++ {
			d := 0
			if pts[i].MemGHz > pts[i-1].MemGHz {
				d = 1
			} else if pts[i].MemGHz < pts[i-1].MemGHz {
				d = -1
			}
			if d != 0 && dir != 0 && d != dir {
				n++
			}
			if d != 0 {
				dir = d
			}
		}
		return n
	}
	t.Logf("mem-frequency direction flips: CoScale %d, Semi %d, Uncoord %d",
		flips(co), flips(series[SemiName]), flips(series[UncoordName]))
	if flips(series[SemiName]) < flips(co) {
		t.Errorf("Semi-coordinated (%d flips) should oscillate at least as much as CoScale (%d)",
			flips(series[SemiName]), flips(co))
	}
}

func TestFigure8And9PolicyOrdering(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure8And9()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[PolicyName]Fig8Row{}
	for _, row := range rows {
		byName[row.Policy] = row
		t.Logf("%-18s full %5.1f%% mem %6.1f%% cpu %5.1f%% avg-deg %5.2f%% worst %5.2f%%",
			row.Policy, row.Full*100, row.Memory*100, row.CPU*100, row.AvgDeg*100, row.WorstDeg*100)
	}
	co := byName[CoScaleName]
	// CoScale beats both single-knob policies and Semi-coordinated on
	// full-system energy.
	for _, other := range []PolicyName{MemScaleName, CPUOnlyName, SemiName} {
		if co.Full <= byName[other].Full {
			t.Errorf("CoScale (%.3f) should beat %s (%.3f)", co.Full, other, byName[other].Full)
		}
	}
	// Offline is the upper bound; CoScale comes close (within 3 points).
	if co.Full < byName[OfflineName].Full-0.03 {
		t.Errorf("CoScale (%.3f) too far below Offline (%.3f)", co.Full, byName[OfflineName].Full)
	}
	// Uncoordinated violates the bound; every coordinated policy holds it.
	if byName[UncoordName].WorstDeg <= 0.10 {
		t.Errorf("Uncoordinated worst degradation %.2f%% should exceed the bound", byName[UncoordName].WorstDeg*100)
	}
	for _, p := range []PolicyName{MemScaleName, CPUOnlyName, SemiName, CoScaleName, OfflineName} {
		if byName[p].WorstDeg > 0.103 {
			t.Errorf("%s violated the bound: %.2f%%", p, byName[p].WorstDeg*100)
		}
	}
}

func TestFigure10BoundSensitivity(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// Savings must increase with the bound, and the bound must hold at
	// every setting.
	bounds := map[string]float64{"1%": 0.01, "5%": 0.05, "10%": 0.10, "15%": 0.15, "20%": 0.20}
	avg := map[string]float64{}
	for _, row := range rows {
		avg[row.Variant] += row.Full / 4
		if row.WorstDeg > bounds[row.Variant] {
			t.Errorf("%s @%s: degradation %.2f%% exceeds bound", row.Mix, row.Variant, row.WorstDeg*100)
		}
	}
	t.Logf("avg savings by bound: 1%%=%.3f 5%%=%.3f 10%%=%.3f 15%%=%.3f 20%%=%.3f",
		avg["1%"], avg["5%"], avg["10%"], avg["15%"], avg["20%"])
	if !(avg["1%"] < avg["5%"] && avg["5%"] < avg["10%"] && avg["10%"] <= avg["15%"] && avg["15%"] <= avg["20%"]+0.005) {
		t.Errorf("savings not increasing with bound: %v", avg)
	}
	if avg["1%"] <= 0 {
		t.Errorf("even a 1%% bound should save energy (got %.3f)", avg["1%"])
	}
}

func TestFigure12And13RatioTrends(t *testing.T) {
	r := NewRunner(testBudget)
	mid, err := r.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := r.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	avgBy := func(rows []SensitivityRow) map[string]float64 {
		m := map[string]float64{}
		for _, row := range rows {
			m[row.Variant] += row.Full / 4
		}
		return m
	}
	midAvg, memAvg := avgBy(mid), avgBy(mem)
	t.Logf("MID: 2:1=%.3f 1:1=%.3f 1:2=%.3f", midAvg["2:1"], midAvg["1:1"], midAvg["1:2"])
	t.Logf("MEM: 2:1=%.3f 1:1=%.3f 1:2=%.3f", memAvg["2:1"], memAvg["1:1"], memAvg["1:2"])
	// Paper: MID savings increase as memory power share grows; MEM
	// savings decrease (the CPU knob is where MEM savings come from).
	if !(midAvg["1:2"] > midAvg["2:1"]) {
		t.Errorf("MID savings should increase with memory power share: %v", midAvg)
	}
	if !(memAvg["1:2"] < memAvg["2:1"]) {
		t.Errorf("MEM savings should decrease with memory power share: %v", memAvg)
	}
}

func TestFigure14VoltageRange(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	avg := map[string]float64{}
	for _, row := range rows {
		avg[row.Variant] += row.Full / 4
		if row.WorstDeg > 0.10 {
			t.Errorf("%s @%s voltage: bound violated (%.2f%%)", row.Mix, row.Variant, row.WorstDeg*100)
		}
	}
	t.Logf("full range %.3f, half range %.3f", avg["full"], avg["half"])
	if avg["half"] >= avg["full"] {
		t.Errorf("half voltage range (%.3f) should save less than full (%.3f)", avg["half"], avg["full"])
	}
	if avg["half"] < 0.05 {
		t.Errorf("half range should still save meaningful energy (got %.3f)", avg["half"])
	}
}

func TestFigure15FrequencyGranularity(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	avg := map[string]float64{}
	for _, row := range rows {
		avg[row.Variant] += row.Full / 4
		if row.WorstDeg > 0.10 {
			t.Errorf("%s @%s freqs: bound violated (%.2f%%)", row.Mix, row.Variant, row.WorstDeg*100)
		}
	}
	t.Logf("4 freqs %.3f, 7 freqs %.3f, 10 freqs %.3f", avg["4"], avg["7"], avg["10"])
	// Coarser ladders save somewhat less, but CoScale adapts (the drop
	// should be modest).
	if avg["4"] > avg["10"]+0.005 {
		t.Errorf("4 frequencies (%.3f) should not beat 10 (%.3f)", avg["4"], avg["10"])
	}
	if avg["4"] < avg["10"]-0.08 {
		t.Errorf("savings collapse with 4 frequencies: %.3f vs %.3f", avg["4"], avg["10"])
	}
}

func TestFigure16Prefetching(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Logf("%-4v base %.2f pref %.2f coscale %.2f both %.2f",
			row.Class, row.Base, row.BasePref, row.BaseCoScale, row.BothCombined)
		// CoScale always reduces energy per instruction.
		if row.BaseCoScale >= 1 {
			t.Errorf("%v: Base+CoScale EPI %.2f should be < 1", row.Class, row.BaseCoScale)
		}
		if row.BothCombined >= row.BasePref {
			t.Errorf("%v: adding CoScale to prefetching should reduce EPI (%.2f vs %.2f)",
				row.Class, row.BothCombined, row.BasePref)
		}
	}
	// Paper: prefetching alone helps MEM the most (EPI below 1).
	if rows[0].Class != trace.MEM {
		t.Fatal("row order changed")
	}
	if rows[0].BasePref >= 1.0 {
		t.Errorf("MEM: prefetching should reduce EPI (got %.2f)", rows[0].BasePref)
	}
}

func TestFigure17And18OutOfOrder(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Figure17And18()
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[trace.Class]Fig17Row{}
	for _, row := range rows {
		byClass[row.Class] = row
		t.Logf("%-4v CPI: ooo %.2f in+co %.2f ooo+co %.2f | EPI: ooo %.2f in+co %.2f ooo+co %.2f",
			row.Class, row.CPIOoO, row.CPIInOrderCoScale, row.CPIOoOCoScale,
			row.EPIOoO, row.EPIInOrderCoScale, row.EPIOoOCoScale)
	}
	// Paper: OoO drastically improves MEM CPI; ILP gains almost nothing.
	if byClass[trace.MEM].CPIOoO > 0.75 {
		t.Errorf("MEM OoO CPI %.2f should drop substantially below 1", byClass[trace.MEM].CPIOoO)
	}
	if byClass[trace.ILP].CPIOoO < 0.93 {
		t.Errorf("ILP OoO CPI %.2f should be near 1", byClass[trace.ILP].CPIOoO)
	}
	// OoO+CoScale stays within 10% of OoO.
	for cl, row := range byClass {
		if row.CPIOoOCoScale > row.CPIOoO*1.10*1.01 {
			t.Errorf("%v: OoO+CoScale CPI %.3f violates bound vs OoO %.3f", cl, row.CPIOoOCoScale, row.CPIOoO)
		}
		// OoO never hurts energy (no OoO power overhead is modelled).
		if row.EPIOoO > 1.02 {
			t.Errorf("%v: OoO EPI %.2f should not exceed in-order", cl, row.EPIOoO)
		}
	}
}

func TestTable1(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("Table1 returned %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MPKI <= 0 || len(row.Apps) != 4 {
			t.Errorf("degenerate row %+v", row)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	s := Table2()
	for _, want := range []string{"DDR3", "16 in-order", "tRCD", "Transition"} {
		if !contains(s, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestNewPolicyUnknownErrors(t *testing.T) {
	r := NewRunner(testBudget)
	if _, err := r.Execute("MID1", PolicyName("Nope"), nil, "x"); err == nil {
		t.Error("unknown policy did not return an error")
	}
}

func TestAblations(t *testing.T) {
	r := NewRunner(testBudget)
	rows, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[PolicyName]AblationRow{}
	for _, row := range rows {
		byName[row.Variant] = row
		t.Logf("%-20s full %5.1f%% worst %5.2f%%", row.Variant, row.Full*100, row.WorstDeg*100)
	}
	// Grouping should not hurt; removing it must not help.
	if byName[NoGroupingName].Full > byName[CoScaleName].Full+0.01 {
		t.Errorf("removing grouping improved savings: %.3f vs %.3f",
			byName[NoGroupingName].Full, byName[CoScaleName].Full)
	}
	// The out-of-phase Semi variant should not beat CoScale (§4.2.2:
	// "does not improve results").
	if byName[SemiOoPName].Full > byName[CoScaleName].Full+0.005 {
		t.Errorf("out-of-phase Semi (%.3f) should not beat CoScale (%.3f)",
			byName[SemiOoPName].Full, byName[CoScaleName].Full)
	}
}
