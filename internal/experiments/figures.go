package experiments

import (
	"fmt"

	"coscale/internal/sim"
	"coscale/internal/workload"
)

// Fig5Row is one bar group of Figure 5: CoScale energy savings per mix at
// the 10% bound.
type Fig5Row struct {
	Mix    string
	Full   float64 // full-system energy savings
	Memory float64
	CPU    float64
	Epochs int
}

// Figure5 regenerates "CoScale energy savings" across all 16 mixes.
func (r *Runner) Figure5() ([]Fig5Row, error) {
	names := workload.Names()
	rows := make([]Fig5Row, len(names))
	err := r.forEach(len(names), func(i int) error {
		o, err := r.Execute(names[i], CoScaleName, nil, "default")
		if err != nil {
			return err
		}
		rows[i] = Fig5Row{
			Mix:    names[i],
			Full:   o.FullSavings(),
			Memory: o.MemSavings(),
			CPU:    o.CPUSavings(),
			Epochs: o.Run.Epochs,
		}
		return nil
	})
	return rows, err
}

// Fig6Row is one bar group of Figure 6: CoScale performance degradation.
type Fig6Row struct {
	Mix   string
	Avg   float64 // multiprogram average degradation
	Worst float64 // worst program in mix
}

// Figure6 regenerates "CoScale performance" across all 16 mixes.
func (r *Runner) Figure6() ([]Fig6Row, error) {
	names := workload.Names()
	rows := make([]Fig6Row, len(names))
	err := r.forEach(len(names), func(i int) error {
		o, err := r.Execute(names[i], CoScaleName, nil, "default")
		if err != nil {
			return err
		}
		rows[i] = Fig6Row{Mix: names[i], Avg: o.AvgDegradation(), Worst: o.WorstDegradation()}
		return nil
	})
	return rows, err
}

// TimelinePoint is one epoch of the Figure 7 milc/MIX2 timeline.
type TimelinePoint struct {
	Epoch  int
	MemGHz float64
	// CoreGHz is the frequency of milc's first copy (core 0 of MIX2).
	CoreGHz float64
}

// Figure7 regenerates the dynamic-behaviour timelines of milc in MIX2 under
// CoScale, Uncoordinated and Semi-coordinated.
func (r *Runner) Figure7() (map[PolicyName][]TimelinePoint, error) {
	out := map[PolicyName][]TimelinePoint{}
	policies := []PolicyName{CoScaleName, UncoordName, SemiName}
	series := make([][]TimelinePoint, len(policies))
	err := r.forEach(len(policies), func(i int) error {
		o, err := r.Execute("MIX2", policies[i], func(c *sim.Config) { c.RecordTimeline = true }, "timeline")
		if err != nil {
			return err
		}
		pts := make([]TimelinePoint, len(o.Run.Timeline))
		for k, rec := range o.Run.Timeline {
			pts[k] = TimelinePoint{Epoch: rec.Index + 1, MemGHz: rec.MemHz / 1e9, CoreGHz: rec.CoreHz[0] / 1e9}
		}
		series[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range policies {
		out[p] = series[i]
	}
	return out, nil
}

// Fig8Row is one policy's averages across all 16 mixes (Figures 8 and 9
// share the runs: energy savings and performance degradation).
type Fig8Row struct {
	Policy   PolicyName
	Full     float64 // average full-system energy savings
	Memory   float64
	CPU      float64
	AvgDeg   float64 // average of per-mix multiprogram-average degradation
	WorstDeg float64 // worst program across all mixes
}

// Figure8And9 regenerates the policy comparison: average energy savings
// (Fig. 8) and performance degradation (Fig. 9) for the five practical
// policies plus Offline.
func (r *Runner) Figure8And9() ([]Fig8Row, error) {
	names := workload.Names()
	type cell struct{ o *Outcome }
	grid := make([][]cell, len(PracticalPolicies))
	for i := range grid {
		grid[i] = make([]cell, len(names))
	}
	err := r.forEach(len(PracticalPolicies)*len(names), func(k int) error {
		pi, mi := k/len(names), k%len(names)
		o, err := r.Execute(names[mi], PracticalPolicies[pi], nil, "default")
		if err != nil {
			return err
		}
		grid[pi][mi] = cell{o}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, len(PracticalPolicies))
	for pi, pol := range PracticalPolicies {
		row := Fig8Row{Policy: pol}
		for mi := range names {
			o := grid[pi][mi].o
			row.Full += o.FullSavings() / float64(len(names))
			row.Memory += o.MemSavings() / float64(len(names))
			row.CPU += o.CPUSavings() / float64(len(names))
			row.AvgDeg += o.AvgDegradation() / float64(len(names))
			if w := o.WorstDegradation(); w > row.WorstDeg {
				row.WorstDeg = w
			}
		}
		rows[pi] = row
	}
	return rows, nil
}

// FormatFig5 renders Figure 5 rows as the paper's bar-chart series.
func FormatFig5(rows []Fig5Row) string {
	s := "Figure 5: CoScale energy savings (10% bound)\n"
	s += fmt.Sprintf("%-6s %12s %12s %12s\n", "mix", "full-system", "memory", "CPU")
	for _, r := range rows {
		s += fmt.Sprintf("%-6s %11.1f%% %11.1f%% %11.1f%%\n", r.Mix, r.Full*100, r.Memory*100, r.CPU*100)
	}
	return s
}

// FormatFig6 renders Figure 6 rows.
func FormatFig6(rows []Fig6Row) string {
	s := "Figure 6: CoScale performance degradation (bound 10%)\n"
	s += fmt.Sprintf("%-6s %10s %10s\n", "mix", "average", "worst")
	for _, r := range rows {
		s += fmt.Sprintf("%-6s %9.1f%% %9.1f%%\n", r.Mix, r.Avg*100, r.Worst*100)
	}
	return s
}

// FormatFig8And9 renders the policy comparison.
func FormatFig8And9(rows []Fig8Row) string {
	s := "Figures 8+9: policy comparison (averages over 16 mixes)\n"
	s += fmt.Sprintf("%-18s %8s %8s %8s %8s %8s\n", "policy", "full", "memory", "CPU", "avg-deg", "worst")
	for _, r := range rows {
		s += fmt.Sprintf("%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Policy, r.Full*100, r.Memory*100, r.CPU*100, r.AvgDeg*100, r.WorstDeg*100)
	}
	return s
}

// FormatFig7 renders the milc timeline series.
func FormatFig7(series map[PolicyName][]TimelinePoint) string {
	s := "Figure 7: milc in MIX2 — frequency timeline\n"
	for _, pol := range []PolicyName{CoScaleName, UncoordName, SemiName} {
		s += fmt.Sprintf("%s:\n  epoch: mem GHz / core GHz\n", pol)
		for _, p := range series[pol] {
			s += fmt.Sprintf("  %3d: %.3f / %.2f\n", p.Epoch, p.MemGHz, p.CoreGHz)
		}
	}
	return s
}
