package experiments

import (
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// SearchBenchObs builds the synthetic profiling observation behind the §3.1
// search-cost benchmarks (BenchmarkSearch16/64/128Cores) and cmd/coscale-bench:
// n cores with deterministic pseudo-random memory intensities on the paper's
// default system. One definition keeps `go test -bench Search` and the
// BENCH_baseline.json generator measuring the same workload.
func SearchBenchObs(n int) (policy.Config, policy.Observation) {
	return SearchBenchObsSeed(n, 11)
}

// SearchBenchObsSeed is SearchBenchObs with the intensity-drawing seed
// exposed, for batched-decision benchmarks that want each controller in the
// batch deciding over a distinct (but still deterministic) observation.
// Seed 11 reproduces SearchBenchObs exactly.
func SearchBenchObsSeed(n int, seed uint64) (policy.Config, policy.Observation) {
	cfg := policy.Config{
		NCores:     n,
		CoreLadder: freq.DefaultCoreLadder(),
		MemLadder:  freq.DefaultMemLadder(),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(n),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
	}
	obs := policy.Observation{
		Window:    300e-6,
		CoreSteps: policy.ZeroSteps(n),
		Cores:     make([]policy.CoreObs, n),
		MemRate:   2e8, MemLatency: 60e-9, UtilBus: 0.3, BusyFrac: 0.6,
	}
	rng := trace.NewRand(seed)
	for i := range obs.Cores {
		beta := 0.0005 + rng.Float64()*0.01
		obs.Cores[i] = policy.CoreObs{
			Instructions: 1_000_000,
			Stats: perf.CoreStats{CPIBase: 1.1 + rng.Float64()*0.4, Alpha: 0.01,
				StallL2: 7.5e-9, Beta: beta, MemPerInstr: beta * 1.4, MLP: 1},
			L2PerInstr: 0.01,
			Mix:        trace.InstrMix{ALU: 0.3, FPU: 0.2, Branch: 0.1, LoadStore: 0.3},
			IPS:        2.5e9,
		}
	}
	return cfg, obs
}
