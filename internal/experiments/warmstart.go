// Warm-start ablation (DESIGN.md §14): the same trace-driven simulations run
// with the cold full search and with core.Options.WarmStart, comparing the
// per-epoch search work (SearchStats.CoreEvals) and the resulting energy.
// The claim under test: on stable phases the warm path re-scores a small
// fraction of the cores (≥3× fewer per-core marginal evaluations) while the
// decisions stay close enough that total energy moves by well under 1%, and
// the slowdown bound holds throughout (the bound property test covers every
// mix; the rows here record the worst degradation for the table).

package experiments

import (
	"fmt"

	"coscale/internal/core"
	"coscale/internal/policy"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// WarmStartMixes is the ablation's default mix set: one mix per paper class,
// so the study covers memory-bound, balanced, compute-bound and mixed phase
// behaviour.
var WarmStartMixes = []string{"MEM1", "MID1", "ILP1", "MIX1"}

// WarmStartRow is one mix of the warm-start ablation.
type WarmStartRow struct {
	Mix           string
	Epochs        int // decision epochs of the warm run
	WarmHits      int
	WarmFallbacks int
	ColdSearches  int

	ColdEvalsPerEpoch float64 // cold run: CoreEvals per epoch
	WarmEvalsPerHit   float64 // warm run: CoreEvals per warm-hit epoch
	EvalsRatio        float64 // ColdEvalsPerEpoch / WarmEvalsPerHit (0 if no hits)

	EnergyDeltaPct float64 // warm vs cold total energy, percent (positive = warm spent more)
	WorstDegCold   float64 // worst program degradation vs no-DVFS baseline
	WorstDegWarm   float64
}

// searchProbe wraps a controller to accumulate its per-decision SearchStats
// across an engine run. The engine sees an ordinary policy; the probe adds
// nothing to the decision path but the counter reads.
type searchProbe struct {
	cs *core.CoScale

	epochs       int
	coreEvals    int
	warmHitEvals int // CoreEvals summed over warm-hit epochs only
	hits         int
	fallbacks    int
	colds        int
}

func (p *searchProbe) Name() string { return p.cs.Name() }

func (p *searchProbe) Decide(obs policy.Observation) policy.Decision {
	d := p.cs.Decide(obs)
	s := p.cs.SearchStats()
	p.epochs++
	p.coreEvals += s.CoreEvals
	p.hits += s.WarmHits
	p.fallbacks += s.WarmFallbacks
	p.colds += s.ColdSearches
	if s.WarmHits > 0 {
		p.warmHitEvals += s.CoreEvals
	}
	return d
}

func (p *searchProbe) Observe(epoch policy.Observation) { p.cs.Observe(epoch) }

// warmRun simulates one (mix, warm?) configuration with a probed controller.
func (r *Runner) warmRun(mixName string, warm bool) (*sim.Result, *searchProbe, error) {
	cfg := sim.Config{Mix: workload.MustGet(mixName), InstrBudget: r.InstrBudget}
	pcfg := cfg.PolicyConfig()
	pcfg.Tables = &r.tables
	cs, err := core.NewWithOptions(pcfg, core.Options{WarmStart: warm})
	if err != nil {
		return nil, nil, err
	}
	probe := &searchProbe{cs: cs}
	cfg.Policy = probe
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.RunContext(r.baseCtx())
	return res, probe, err
}

// WarmStart runs the ablation over the given mixes (nil selects
// WarmStartMixes). Both controllers replay identical trace-driven
// simulations, so every difference between the cold and warm columns is the
// warm path's doing. Deterministic: same (mixes, budget) ⇒ identical rows.
func (r *Runner) WarmStart(mixes []string) ([]WarmStartRow, error) {
	if len(mixes) == 0 {
		mixes = WarmStartMixes
	}
	rows := make([]WarmStartRow, len(mixes))
	err := r.forEach(len(mixes), func(i int) error {
		mix := mixes[i]
		base, err := r.baseline(r.baseCtx(), mix, nil, "default")
		if err != nil {
			return err
		}
		coldRes, coldProbe, err := r.warmRun(mix, false)
		if err != nil {
			return err
		}
		warmRes, warmProbe, err := r.warmRun(mix, true)
		if err != nil {
			return err
		}

		row := WarmStartRow{
			Mix:           mix,
			Epochs:        warmProbe.epochs,
			WarmHits:      warmProbe.hits,
			WarmFallbacks: warmProbe.fallbacks,
			ColdSearches:  warmProbe.colds,
		}
		if coldProbe.epochs > 0 {
			row.ColdEvalsPerEpoch = float64(coldProbe.coreEvals) / float64(coldProbe.epochs)
		}
		if warmProbe.hits > 0 {
			row.WarmEvalsPerHit = float64(warmProbe.warmHitEvals) / float64(warmProbe.hits)
			if row.WarmEvalsPerHit > 0 {
				row.EvalsRatio = row.ColdEvalsPerEpoch / row.WarmEvalsPerHit
			}
		}
		row.EnergyDeltaPct = (warmRes.Energy.Total()/coldRes.Energy.Total() - 1) * 100
		row.WorstDegCold = (&Outcome{Base: base, Run: coldRes}).WorstDegradation()
		row.WorstDegWarm = (&Outcome{Base: base, Run: warmRes}).WorstDegradation()
		rows[i] = row
		return nil
	})
	return rows, err
}

// FormatWarmStart renders the warm-start ablation as a per-mix table.
func FormatWarmStart(rows []WarmStartRow) string {
	s := "Warm-start ablation: cold full search vs warm-started incremental search\n"
	s += fmt.Sprintf("%-6s %7s %5s %5s %5s %11s %10s %7s %9s %10s %10s\n",
		"mix", "epochs", "hits", "fall", "cold",
		"evals/cold", "evals/hit", "ratio", "dE%", "worstC", "worstW")
	for _, r := range rows {
		s += fmt.Sprintf("%-6s %7d %5d %5d %5d %11.1f %10.1f %6.1fx %+8.3f%% %9.2f%% %9.2f%%\n",
			r.Mix, r.Epochs, r.WarmHits, r.WarmFallbacks, r.ColdSearches,
			r.ColdEvalsPerEpoch, r.WarmEvalsPerHit, r.EvalsRatio,
			r.EnergyDeltaPct, r.WorstDegCold*100, r.WorstDegWarm*100)
	}
	return s
}
