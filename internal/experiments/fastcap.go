// Fleet power-capping study (DESIGN.md §13): a global power budget split
// across N simulated 16-core nodes by the internal/fastcap allocator, under
// a datacenter cap-event trace — steady 100% of provisioned power, a step
// down to 80%, and a transient 60% dip. Fair max-min water-filling is
// compared against greedy watts-per-slowdown spending and a uniform static
// split on total energy, worst-node slowdown, slowdown spread, and Jain's
// fairness index.

package experiments

import (
	"fmt"
	"math"
	"time"

	"coscale/internal/cache"
	"coscale/internal/fastcap"
	"coscale/internal/fault"
	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/workload"
)

// FastCapSeed fixes the study's phase offsets and drift rates; the whole
// study is a pure function of (seed, nodes, epochs).
const FastCapSeed = 0xFA57CA9C05CA1E

// fastCapMixes is the rotation node workloads are drawn from: one mix per
// paper class so the fleet always holds heterogeneous demand (a MEM-heavy
// node has far more to gain per watt than an ILP one — the allocation
// problem the study exists to exercise).
var fastCapMixes = []string{"MEM1", "MID1", "ILP1", "MIX1", "MEM2", "MID2", "ILP2", "MIX2"}

// FastCapRow is one (strategy, budget segment) cell of the study.
type FastCapRow struct {
	Strategy  string  // fair | greedy | uniform
	Segment   string  // steady (100%) | cut (80%) | dip (60%)
	Epochs    int     // epochs in this segment
	EnergyJ   float64 // total fleet energy over the segment
	WorstSlow float64 // mean over epochs of the worst node's slowdown
	Spread    float64 // mean over epochs of max−min node slowdown
	Jain      float64 // mean over epochs of Jain's index over node speeds
	Clamped   int     // node-epochs clamped to the all-min floor
}

// fastCapSegment labels epoch e of the budget trace and returns the budget
// as a fraction of the fleet's provisioned (all-max) power: the first third
// runs uncapped, then a step down to 80%, with a transient dip to 60% for
// epochs/6 epochs starting at the final third.
func fastCapSegment(e, epochs int) (string, float64) {
	third := epochs / 3
	dipStart := 2 * third
	dipLen := epochs / 6
	switch {
	case e < third:
		return "steady", 1.0
	case e >= dipStart && e < dipStart+dipLen:
		return "dip", 0.6
	default:
		return "cut", 0.8
	}
}

// fastCapNodeCfg is the per-node platform: the paper's 16-core defaults,
// sharing the runner's table cache so the whole fleet reuses one
// platform-column build per process.
func (r *Runner) fastCapNodeCfg(nCores int) policy.Config {
	return policy.Config{
		NCores:     nCores,
		CoreLadder: freq.DefaultCoreLadder(),
		MemLadder:  freq.DefaultMemLadder(),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(nCores),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
		Tables:     r.Tables(),
	}
}

// fastCapObs synthesizes one node's epoch observation: every core samples
// its application profile at the node's current phase fraction, the shared
// LLC splits capacity by access weight, and the queueing solver at maximum
// frequencies provides the counter values a real profiling epoch would
// deliver.
func fastCapObs(cfg policy.Config, mix workload.Mix, llc *cache.ShareModel, sv *perf.Solver, frac float64) (policy.Observation, error) {
	n := cfg.NCores
	weights := make([]float64, n)
	stats := make([]perf.CoreStats, n)
	for i := 0; i < n; i++ {
		p, err := mix.AppForCore(i)
		if err != nil {
			return policy.Observation{}, err
		}
		weights[i] = p.At(frac).L2APKI
	}
	shares := llc.Shares(weights)
	for i := 0; i < n; i++ {
		p, err := mix.AppForCore(i)
		if err != nil {
			return policy.Observation{}, err
		}
		s := p.At(frac)
		mpki := p.MPKIAt(frac, shares[i])
		wb := mpki * s.DirtyFrac
		stats[i] = perf.CoreStats{
			CPIBase:     s.CPIBase,
			Alpha:       s.L2APKI / 1000,
			StallL2:     cache.DefaultHitTime,
			Beta:        mpki / 1000,
			MemPerInstr: (mpki + wb) / 1000,
			MLP:         s.MLP,
		}
	}
	hz := make([]float64, n)
	for i := range hz {
		hz[i] = cfg.CoreLadder.MaxHz()
	}
	res := sv.Solve(stats, hz, cfg.MemLadder.MaxHz())
	obs := policy.Observation{
		Window:     cfg.EpochLen.Seconds(),
		CoreSteps:  policy.ZeroSteps(n),
		Cores:      make([]policy.CoreObs, n),
		MemRate:    res.MemRate,
		MemLatency: res.Mem.Latency,
		UtilBus:    res.Mem.UtilBus,
		BusyFrac:   math.Min(1, res.Mem.UtilBank*8),
	}
	for i := 0; i < n; i++ {
		p, err := mix.AppForCore(i)
		if err != nil {
			return policy.Observation{}, err
		}
		obs.Cores[i] = policy.CoreObs{
			Instructions: uint64(obs.Window / res.TPI[i]),
			Stats:        stats[i],
			L2PerInstr:   stats[i].Alpha,
			Mix:          p.At(frac).Mix,
			IPS:          1 / res.TPI[i],
		}
	}
	return obs, nil
}

// unit maps a 64-bit hash to [0,1).
func fastCapUnit(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}

// FastCap runs the fleet capping study over the given fleet size and epoch
// count (0 selects the committed defaults: 6 nodes, 36 epochs). The three
// strategies replay identical observations and budget traces, so every
// difference between rows is the allocator's doing. Deterministic: same
// (nodes, epochs) ⇒ bit-identical rows.
func (r *Runner) FastCap(nodes, epochs int) ([]FastCapRow, error) {
	if nodes == 0 {
		nodes = 6
	}
	if epochs == 0 {
		epochs = 36
	}
	if nodes < 1 || epochs < 6 {
		return nil, fmt.Errorf("experiments: fastcap needs ≥1 node and ≥6 epochs, got %d/%d", nodes, epochs)
	}

	// Per-node workload mixes and phase trajectories.
	nodeMixes := make([]workload.Mix, nodes)
	start := make([]float64, nodes)
	rate := make([]float64, nodes)
	var cfg policy.Config
	for n := 0; n < nodes; n++ {
		m, err := workload.Get(fastCapMixes[n%len(fastCapMixes)])
		if err != nil {
			return nil, err
		}
		nodeMixes[n] = m
		if n == 0 {
			cfg = r.fastCapNodeCfg(m.Cores())
		} else if m.Cores() != cfg.NCores {
			return nil, fmt.Errorf("experiments: mix %s has %d cores, fleet needs %d", m.Name, m.Cores(), cfg.NCores)
		}
		start[n] = fastCapUnit(fault.Mix64(FastCapSeed ^ uint64(n)<<1))
		rate[n] = 0.02 + 0.04*fastCapUnit(fault.Mix64(FastCapSeed^uint64(n)<<1^1))
	}

	// Observations are precomputed once and shared read-only by the three
	// strategy runs, so their inputs are identical by construction.
	llc := cache.NewShareModel(cache.DefaultSizeMB)
	sv := perf.NewSolver(cfg.Mem)
	obs := make([][]policy.Observation, epochs)
	for e := 0; e < epochs; e++ {
		obs[e] = make([]policy.Observation, nodes)
		for n := 0; n < nodes; n++ {
			frac := math.Mod(start[n]+rate[n]*float64(e), 1)
			o, err := fastCapObs(cfg, nodeMixes[n], llc, sv, frac)
			if err != nil {
				return nil, err
			}
			obs[e][n] = o
		}
	}

	// Provisioned power: the fleet running all-max at epoch 0.
	provisioned := 0.0
	for n := 0; n < nodes; n++ {
		provisioned += policy.NewEvaluator(cfg, obs[0][n]).Baseline().Power.Total
	}

	strategies := []fastcap.Strategy{fastcap.Fair, fastcap.Greedy, fastcap.Uniform}
	segments := []string{"steady", "cut", "dip"}
	rows := make([]FastCapRow, len(strategies)*len(segments))
	epochSec := cfg.EpochLen.Seconds()

	err := r.forEach(len(strategies), func(si int) error {
		reb := fastcap.NewRebalancer(strategies[si])
		for n := 0; n < nodes; n++ {
			if err := reb.AddNode(fmt.Sprintf("node-%02d", n), cfg); err != nil {
				return err
			}
		}
		acc := make(map[string]*FastCapRow, len(segments))
		for k, seg := range segments {
			rows[si*len(segments)+k] = FastCapRow{Strategy: strategies[si].String(), Segment: seg}
			acc[seg] = &rows[si*len(segments)+k]
		}
		var eps []fastcap.NodeEpoch
		speeds := make([]float64, nodes)
		for e := 0; e < epochs; e++ {
			seg, fracBudget := fastCapSegment(e, epochs)
			var err error
			eps, err = reb.Epoch(provisioned*fracBudget, obs[e], eps[:0])
			if err != nil {
				return err
			}
			worst, best, energy := math.Inf(-1), math.Inf(1), 0.0
			clamped := 0
			for i, ne := range eps {
				if ne.MaxSlow > worst {
					worst = ne.MaxSlow
				}
				if ne.MaxSlow < best {
					best = ne.MaxSlow
				}
				energy += ne.Power * epochSec
				speeds[i] = 1 / ne.MaxSlow
				if ne.Clamped {
					clamped++
				}
			}
			row := acc[seg]
			row.Epochs++
			row.EnergyJ += energy
			row.WorstSlow += worst
			row.Spread += worst - best
			row.Jain += fastcap.JainIndex(speeds)
			row.Clamped += clamped
		}
		for _, seg := range segments {
			if acc[seg].Epochs > 0 {
				acc[seg].WorstSlow /= float64(acc[seg].Epochs)
				acc[seg].Spread /= float64(acc[seg].Epochs)
				acc[seg].Jain /= float64(acc[seg].Epochs)
			}
		}
		return nil
	})
	return rows, err
}

// FormatFastCap renders the fleet capping study as a strategy × segment
// table.
func FormatFastCap(rows []FastCapRow) string {
	s := "Fleet power capping: fair water-filling vs greedy vs uniform split\n"
	s += fmt.Sprintf("%-8s %-7s %7s %10s %11s %8s %7s %8s\n",
		"strategy", "segment", "epochs", "energy-J", "worst-slow", "spread", "jain", "clamped")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %-7s %7d %10.4f %11.4f %8.4f %7.4f %8d\n",
			r.Strategy, r.Segment, r.Epochs, r.EnergyJ, r.WorstSlow, r.Spread, r.Jain, r.Clamped)
	}
	return s
}
