package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionAlwaysRenders(t *testing.T) {
	v := Version("coscale-test")
	if !strings.HasPrefix(v, "coscale-test ") {
		t.Fatalf("banner %q lacks binary name prefix", v)
	}
	if !strings.Contains(v, "go1") {
		t.Fatalf("banner %q lacks Go version", v)
	}
}

func TestRender(t *testing.T) {
	cases := []struct {
		name string
		bi   *debug.BuildInfo
		want string // substring after the binary name
	}{
		{"nil info", nil, "unknown"},
		{"module version", &debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}}, "v1.2.3"},
		{"devel no vcs", &debug.BuildInfo{Main: debug.Module{Version: "(devel)"}}, "unknown"},
		{
			"vcs revision",
			&debug.BuildInfo{Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			}},
			"0123456789ab-dirty",
		},
	}
	for _, c := range cases {
		got := render("bin", c.bi)
		if !strings.Contains(got, c.want) {
			t.Errorf("%s: render = %q, want substring %q", c.name, got, c.want)
		}
	}
}
