// Package buildinfo renders the version banner shared by every coscale
// binary's -version flag, from the build metadata the Go toolchain embeds
// (runtime/debug.ReadBuildInfo): module version when built as a versioned
// dependency, VCS revision and dirty flag when built from a checkout.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version returns a one-line "name version (go, os/arch)" banner for the
// named binary.
func Version(name string) string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		bi = nil
	}
	return render(name, bi)
}

// render is Version against explicit build info, separated for tests.
func render(name string, bi *debug.BuildInfo) string {
	version := "unknown"
	var details []string
	if bi != nil {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if version == "unknown" {
				version = rev + dirty
			} else {
				details = append(details, rev+dirty)
			}
		}
	}
	details = append(details, runtime.Version(), runtime.GOOS+"/"+runtime.GOARCH)
	return fmt.Sprintf("%s %s (%s)", name, version, strings.Join(details, ", "))
}
