package workload

import (
	"math"
	"testing"

	"coscale/internal/cache"
	"coscale/internal/trace"
)

func TestCatalogueShape(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("Names() returned %d mixes, want 16", len(names))
	}
	// Figure 5/6 presentation order: MEM, MID, ILP, MIX.
	want := []string{"MEM1", "MEM2", "MEM3", "MEM4", "MID1", "MID2", "MID3", "MID4",
		"ILP1", "ILP2", "ILP3", "ILP4", "MIX1", "MIX2", "MIX3", "MIX4"}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, n, want[i])
		}
	}
	for _, n := range names {
		m := MustGet(n)
		if m.Cores() != 16 {
			t.Errorf("%s occupies %d cores, want 16", n, m.Cores())
		}
		if len(m.Apps) != 4 || m.Copies != 4 {
			t.Errorf("%s shape = %d apps x %d copies", n, len(m.Apps), m.Copies)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("NOPE1"); err == nil {
		t.Error("Get(NOPE1) succeeded, want error")
	}
}

func TestAppForCore(t *testing.T) {
	m := MustGet("MEM1")
	// Core layout: app index = core/4.
	cases := map[int]string{0: "swim", 3: "swim", 4: "applu", 8: "galgel", 15: "equake"}
	for core, want := range cases {
		p, err := m.AppForCore(core)
		if err != nil {
			t.Fatalf("AppForCore(%d): %v", core, err)
		}
		if p.Name != want {
			t.Errorf("AppForCore(%d) = %s, want %s", core, p.Name, want)
		}
	}
	if _, err := m.AppForCore(16); err == nil {
		t.Error("AppForCore(16) succeeded, want error")
	}
	if _, err := m.AppForCore(-1); err == nil {
		t.Error("AppForCore(-1) succeeded, want error")
	}
}

func TestByClass(t *testing.T) {
	for _, c := range []trace.Class{trace.ILP, trace.MID, trace.MEM, trace.MIX} {
		ms := ByClass(c)
		if len(ms) != 4 {
			t.Errorf("ByClass(%v) returned %d mixes, want 4", c, len(ms))
		}
		for _, m := range ms {
			if m.Class != c {
				t.Errorf("ByClass(%v) returned %s of class %v", c, m.Name, m.Class)
			}
		}
	}
}

// TestTable1Reproduction checks that the synthetic profiles plus the
// shared-LLC contention model reproduce the published per-mix MPKI within a
// modest tolerance, and the class structure exactly. This is the Table 1
// experiment; EXPERIMENTS.md records the exact measured values.
func TestTable1Reproduction(t *testing.T) {
	llc := cache.NewShareModel(cache.DefaultSizeMB)
	classMPKI := map[trace.Class]float64{}
	for _, name := range Names() {
		m := MustGet(name)
		ch, err := m.Characterize(llc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		classMPKI[m.Class] += ch.MPKI / 4
		t.Logf("%-5s measured MPKI %6.2f (paper %6.2f)  WPKI %5.2f (paper %5.2f)",
			name, ch.MPKI, m.PaperMPKI, ch.WPKI, m.PaperWPKI)
		// MPKI within 25% relative or 0.12 absolute of Table 1.
		diff := math.Abs(ch.MPKI - m.PaperMPKI)
		if diff > 0.12 && diff/m.PaperMPKI > 0.25 {
			t.Errorf("%s: measured MPKI %.2f too far from paper %.2f", name, ch.MPKI, m.PaperMPKI)
		}
		// WPKI within a factor of 2.5 (secondary statistic; see DESIGN.md).
		if ch.WPKI > m.PaperWPKI*2.5 || ch.WPKI < m.PaperWPKI/2.5 {
			t.Errorf("%s: measured WPKI %.2f too far from paper %.2f", name, ch.WPKI, m.PaperWPKI)
		}
	}
	// Class ordering must hold strictly: ILP < MID < MIX < MEM.
	if !(classMPKI[trace.ILP] < classMPKI[trace.MID] &&
		classMPKI[trace.MID] < classMPKI[trace.MIX] &&
		classMPKI[trace.MIX] < classMPKI[trace.MEM]) {
		t.Errorf("class MPKI ordering violated: ILP %.2f MID %.2f MIX %.2f MEM %.2f",
			classMPKI[trace.ILP], classMPKI[trace.MID], classMPKI[trace.MIX], classMPKI[trace.MEM])
	}
}

// TestSwimContextSensitivity verifies the headline property of the
// contention model: swim is strongly memory-bound in MEM1 (small LLC share)
// but moderate in MIX4 (large share) — the same reconciliation the paper's
// Table 1 numbers exhibit.
func TestSwimContextSensitivity(t *testing.T) {
	llc := cache.NewShareModel(cache.DefaultSizeMB)
	share := func(mix Mix) float64 {
		profiles, err := mix.Profiles()
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]float64, len(profiles))
		for i, p := range profiles {
			weights[i] = p.L2APKI
		}
		shares := llc.Shares(weights)
		for i, p := range profiles {
			if p.Name == "swim" {
				return shares[i]
			}
		}
		t.Fatal("swim not found")
		return 0
	}
	swim := trace.MustLookup("swim")
	mem1 := swim.MRC.MPKI(share(MustGet("MEM1")), swim.L2APKI)
	mix4 := swim.MRC.MPKI(share(MustGet("MIX4")), swim.L2APKI)
	if mem1 <= 2*mix4 {
		t.Errorf("swim MPKI in MEM1 (%.2f) should be well above MIX4 (%.2f)", mem1, mix4)
	}
}
