// Package workload defines the 16 multiprogrammed workload mixes of Table 1.
// Each mix names four SPEC applications; four copies of each application run,
// one per core, occupying all 16 cores. A workload terminates when its
// slowest application has committed its full instruction budget (100M
// instructions in the paper).
package workload

import (
	"fmt"
	"sort"

	"coscale/internal/cache"
	"coscale/internal/trace"
)

// Mix is one Table 1 workload.
type Mix struct {
	Name   string
	Class  trace.Class
	Apps   []string // the four distinct applications
	Copies int      // copies of each app (4 in the paper)

	// PaperMPKI and PaperWPKI are the values published in Table 1,
	// retained for the Table 1 reproduction experiment.
	PaperMPKI float64
	PaperWPKI float64
}

// Cores returns the total core count the mix occupies.
func (m Mix) Cores() int { return len(m.Apps) * m.Copies }

// AppForCore returns the application profile running on the given core.
// Copies of the same app occupy consecutive cores: core = app*Copies + copy.
func (m Mix) AppForCore(core int) (*trace.AppProfile, error) {
	if core < 0 || core >= m.Cores() {
		return nil, fmt.Errorf("workload: core %d out of range [0,%d)", core, m.Cores())
	}
	return trace.Lookup(m.Apps[core/m.Copies])
}

// Profiles returns the per-core application profiles (length Cores()).
func (m Mix) Profiles() ([]*trace.AppProfile, error) {
	out := make([]*trace.AppProfile, m.Cores())
	for c := range out {
		p, err := m.AppForCore(c)
		if err != nil {
			return nil, err
		}
		out[c] = p
	}
	return out, nil
}

// Characteristics holds the measured whole-run statistics of a mix under the
// analytic cache-sharing model (the Table 1 columns).
type Characteristics struct {
	MPKI float64 // LLC misses per kilo-instruction, averaged over programs
	WPKI float64 // LLC writebacks per kilo-instruction
}

// Characterize computes the mix's MPKI/WPKI at nominal frequency under the
// shared-LLC contention model: each copy's cache share follows its L2 access
// weight, and its miss rate follows its miss-rate curve at that share.
// Statistics are instruction-weighted over each program's phases.
func (m Mix) Characterize(llc *cache.ShareModel) (Characteristics, error) {
	profiles, err := m.Profiles()
	if err != nil {
		return Characteristics{}, err
	}
	// Whole-run statistics: integrate over phases at a fixed set of
	// instruction-fraction sample points.
	const samples = 200
	var sumMPKI, sumWPKI float64
	weights := make([]float64, len(profiles))
	for s := 0; s < samples; s++ {
		frac := (float64(s) + 0.5) / samples
		for i, p := range profiles {
			weights[i] = p.At(frac).L2APKI
		}
		shares := llc.Shares(weights)
		for i, p := range profiles {
			mpki := p.MPKIAt(frac, shares[i])
			sumMPKI += mpki
			sumWPKI += mpki * p.DirtyFrac
		}
	}
	n := float64(samples * len(profiles))
	return Characteristics{MPKI: sumMPKI / n, WPKI: sumWPKI / n}, nil
}

// mixes is the Table 1 catalogue.
var mixes = map[string]Mix{}

func addMix(name string, class trace.Class, mpki, wpki float64, apps ...string) {
	if len(apps) != 4 {
		//lint:ignore nopanic init-time mix-table validation fails fast at process start
		panic("workload: mixes have exactly four applications")
	}
	for _, a := range apps {
		trace.MustLookup(a) // fail fast on typos at init
	}
	mixes[name] = Mix{Name: name, Class: class, Apps: apps, Copies: 4,
		PaperMPKI: mpki, PaperWPKI: wpki}
}

func init() {
	addMix("ILP1", trace.ILP, 0.37, 0.06, "vortex", "gcc", "sixtrack", "mesa")
	addMix("ILP2", trace.ILP, 0.16, 0.03, "perlbmk", "crafty", "gzip", "eon")
	addMix("ILP3", trace.ILP, 0.27, 0.07, "sixtrack", "mesa", "perlbmk", "crafty")
	addMix("ILP4", trace.ILP, 0.25, 0.04, "vortex", "mesa", "perlbmk", "crafty")
	addMix("MID1", trace.MID, 1.76, 0.74, "ammp", "gap", "wupwise", "vpr")
	addMix("MID2", trace.MID, 2.61, 0.89, "astar", "parser", "twolf", "facerec")
	addMix("MID3", trace.MID, 1.00, 0.60, "apsi", "bzip2", "ammp", "gap")
	addMix("MID4", trace.MID, 2.13, 0.90, "wupwise", "vpr", "astar", "parser")
	addMix("MEM1", trace.MEM, 18.2, 7.92, "swim", "applu", "galgel", "equake")
	addMix("MEM2", trace.MEM, 7.75, 2.53, "art", "milc", "mgrid", "fma3d")
	addMix("MEM3", trace.MEM, 7.93, 2.55, "fma3d", "mgrid", "galgel", "equake")
	addMix("MEM4", trace.MEM, 15.07, 7.31, "swim", "applu", "sphinx3", "lucas")
	addMix("MIX1", trace.MIX, 2.93, 2.56, "applu", "hmmer", "gap", "gzip")
	addMix("MIX2", trace.MIX, 2.34, 0.39, "milc", "gobmk", "facerec", "perlbmk")
	addMix("MIX3", trace.MIX, 2.55, 0.80, "equake", "ammp", "sjeng", "crafty")
	addMix("MIX4", trace.MIX, 2.35, 1.38, "swim", "ammp", "twolf", "sixtrack")
}

// Get returns a Table 1 mix by name (e.g. "MEM1").
func Get(name string) (Mix, error) {
	m, ok := mixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
	}
	return m, nil
}

// MustGet is Get for statically known names; it panics on failure.
func MustGet(name string) Mix {
	m, err := Get(name)
	if err != nil {
		//lint:ignore nopanic Must* variant for statically known names; Get is the error path
		panic(err)
	}
	return m
}

// Names returns all mix names in Table 1 order (ILP*, MID*, MEM*, MIX*,
// numerically within class).
func Names() []string {
	out := make([]string, 0, len(mixes))
	//lint:ignore dettaint only the key set is collected; the sort below erases iteration order
	for n := range mixes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := classOrder(out[i]), classOrder(out[j])
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
	return out
}

// ByClass returns the mixes of one class in numeric order.
func ByClass(c trace.Class) []Mix {
	var out []Mix
	for _, n := range Names() {
		if m := mixes[n]; m.Class == c {
			out = append(out, m)
		}
	}
	return out
}

func classOrder(name string) int {
	switch {
	case len(name) >= 3 && name[:3] == "MEM":
		return 0
	case len(name) >= 3 && name[:3] == "MID":
		return 1
	case len(name) >= 3 && name[:3] == "ILP":
		return 2
	default:
		return 3 // MIX
	}
}
