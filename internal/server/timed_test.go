package server

import (
	"strings"
	"testing"
	"time"

	"coscale/internal/core"
	"coscale/internal/policy"
)

// countingPolicy is a Policy stub recording delegation.
type countingPolicy struct {
	decides  int
	observes int
	oracle   bool
}

func (p *countingPolicy) Name() string { return "stub" }
func (p *countingPolicy) Decide(policy.Observation) policy.Decision {
	p.decides++
	return policy.Decision{}
}
func (p *countingPolicy) Observe(policy.Observation) { p.observes++ }
func (p *countingPolicy) WantsOracle() bool          { return p.oracle }

// plainPolicy hides WantsOracle so timed() sees a non-oracle policy.
type plainPolicy struct{ inner *countingPolicy }

func (p plainPolicy) Name() string                                { return p.inner.Name() }
func (p plainPolicy) Decide(o policy.Observation) policy.Decision { return p.inner.Decide(o) }
func (p plainPolicy) Observe(o policy.Observation)                { p.inner.Observe(o) }

func TestTimedPolicyFeedsSearchMetrics(t *testing.T) {
	var m metrics
	stub := &countingPolicy{}
	tp := timed(plainPolicy{stub}, &m)
	if _, ok := tp.(policy.OraclePolicy); ok {
		t.Fatal("wrapping a plain policy must not invent an oracle")
	}
	if tp.Name() != "stub" {
		t.Errorf("Name() = %q, want stub (results key on the inner policy's name)", tp.Name())
	}
	for i := 0; i < 5; i++ {
		tp.Decide(policy.Observation{})
	}
	tp.Observe(policy.Observation{})
	if stub.decides != 5 || stub.observes != 1 {
		t.Errorf("delegation: %d decides, %d observes, want 5 and 1", stub.decides, stub.observes)
	}
	if got := m.searchCount.Load(); got != 5 {
		t.Errorf("searchCount = %d, want 5", got)
	}
	if sum, max := m.searchSumNs.Load(), m.searchMaxNs.Load(); max > sum {
		t.Errorf("searchMaxNs %d exceeds searchSumNs %d", max, sum)
	}
}

// statsPolicy is a stub controller exporting per-decision SearchStats, the
// way the CoScale family does.
type statsPolicy struct {
	countingPolicy
	stats core.SearchStats
}

func (p *statsPolicy) SearchStats() core.SearchStats { return p.stats }

func TestTimedPolicyHarvestsWarmCounters(t *testing.T) {
	var m metrics
	stub := &statsPolicy{}
	tp := timed(stub, &m)

	stub.stats = core.SearchStats{WarmHits: 1}
	tp.Decide(policy.Observation{})
	tp.Decide(policy.Observation{})
	stub.stats = core.SearchStats{WarmFallbacks: 1, ColdSearches: 1}
	tp.Decide(policy.Observation{})

	if got := m.warmHits.Load(); got != 2 {
		t.Errorf("warmHits = %d, want 2", got)
	}
	if got := m.warmFallbacks.Load(); got != 1 {
		t.Errorf("warmFallbacks = %d, want 1", got)
	}
	if got := m.coldSearches.Load(); got != 1 {
		t.Errorf("coldSearches = %d, want 1", got)
	}

	var sb strings.Builder
	m.write(&sb, time.Second, 0, 0)
	out := sb.String()
	for _, want := range []string{
		"coscale_search_warm_hits_total 2\n",
		"coscale_search_warm_fallbacks_total 1\n",
		"coscale_search_cold_total 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}

	// A policy without SearchStats must keep the counters untouched.
	plain := timed(plainPolicy{&countingPolicy{}}, &m)
	plain.Decide(policy.Observation{})
	if got := m.coldSearches.Load(); got != 1 {
		t.Errorf("plain policy moved coldSearches to %d", got)
	}
}

func TestTimedPolicyPreservesOracle(t *testing.T) {
	var m metrics
	stub := &countingPolicy{oracle: true}
	tp := timed(stub, &m)
	op, ok := tp.(policy.OraclePolicy)
	if !ok || !op.WantsOracle() {
		t.Fatal("timing an oracle policy must keep WantsOracle visible to the engine")
	}
	tp.Decide(policy.Observation{})
	if stub.decides != 1 || m.searchCount.Load() != 1 {
		t.Errorf("oracle wrapper: %d decides, %d samples, want 1 and 1", stub.decides, m.searchCount.Load())
	}
}

func TestObserveSearchHighWaterMark(t *testing.T) {
	var m metrics
	for _, d := range []time.Duration{3 * time.Microsecond, 9 * time.Microsecond, 4 * time.Microsecond} {
		m.observeSearch(d)
	}
	if got := m.searchMaxNs.Load(); got != 9000 {
		t.Errorf("searchMaxNs = %d, want 9000", got)
	}
	if got := m.searchSumNs.Load(); got != 16000 {
		t.Errorf("searchSumNs = %d, want 16000", got)
	}
	var sb strings.Builder
	m.write(&sb, time.Second, 0, 0)
	out := sb.String()
	for _, want := range []string{
		"coscale_search_decisions_total 3\n",
		"coscale_search_duration_ns_sum 16000\n",
		"coscale_search_duration_ns_max 9000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics output missing %q:\n%s", want, out)
		}
	}
}
