package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coscale/internal/cache"
	"coscale/internal/experiments"
	"coscale/internal/fault"
	"coscale/internal/sim"
)

// Config sizes the serving subsystem. Zero values select defaults suited to
// one host: a worker per CPU, a queue a few bursts deep, and a result cache
// large enough for a dashboard's worth of distinct requests.
type Config struct {
	// Workers bounds concurrently executing jobs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-started jobs; a full queue
	// rejects with 429 and a Retry-After header (default 64).
	QueueDepth int
	// CacheSize bounds the LRU result cache, in completed requests
	// (default 256).
	CacheSize int
	// RetryAfterSeconds is the base backoff hint sent with 429s (default 1).
	RetryAfterSeconds int
	// RetryAfterJitterSeconds spreads each 429's Retry-After into
	// [base, base+jitter] seconds, deterministically sequenced, so a burst
	// of rejected clients does not return as one synchronized retry storm
	// (default 2; negative disables the jitter).
	RetryAfterJitterSeconds int
	// MaxJobs bounds retained terminal jobs for GET /v1/jobs/{id}
	// (default 1024); the oldest are forgotten first.
	MaxJobs int
	// StreamWriteTimeout bounds each write on an NDJSON stream response: a
	// client that stalls its receive window longer than this is dropped —
	// the job keeps running — instead of pinning the handler goroutine
	// forever (default 30s; negative disables the deadline). Drops surface
	// as coscale_streams_dropped_total in /metrics.
	StreamWriteTimeout time.Duration
	// WorkerID names this process in fleet lease responses (see
	// internal/fleet); empty outside a fleet.
	WorkerID string
	// Logger, when non-nil, receives one line per job transition.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	switch {
	case c.RetryAfterJitterSeconds == 0:
		c.RetryAfterJitterSeconds = 2
	case c.RetryAfterJitterSeconds < 0:
		c.RetryAfterJitterSeconds = 0
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	switch {
	case c.StreamWriteTimeout == 0:
		c.StreamWriteTimeout = 30 * time.Second
	case c.StreamWriteTimeout < 0:
		c.StreamWriteTimeout = 0
	}
	return c
}

// Server is the serving subsystem: admission control in front of a bounded
// job queue, a fixed worker pool running simulations, an LRU result cache
// with in-flight deduplication, and the HTTP API over all of it. Create
// with New, expose via Handler, stop with Drain.
type Server struct {
	cfg    Config
	runner *experiments.Runner
	lru    *cache.LRU[string, *cachedResult]

	mu          sync.Mutex
	queue       chan *Job
	queueClosed bool
	jobs        map[string]*Job // by ID (queued, running, retained terminal)
	inflight    map[string]*Job // by request hash (queued or running)
	doneOrder   []string        // terminal job IDs, oldest first

	metrics  metrics
	wg       sync.WaitGroup
	draining atomic.Bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	started  time.Time
	nextID   atomic.Int64
	retrySeq atomic.Int64 // sequences the deterministic Retry-After jitter
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		runner:   &experiments.Runner{},
		lru:      cache.NewLRU[string, *cachedResult](cfg.CacheSize),
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
		baseCtx:  ctx,
		cancel:   cancel,
		started:  time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Drain gracefully stops the server: new submissions are refused with 503,
// queued and running jobs finish, then the worker pool exits. If ctx
// expires first, running jobs are cancelled (they unwind within one epoch)
// and Drain returns ctx.Err after the pool exits.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.wrap(s.handleHealth))
	mux.HandleFunc("GET /readyz", s.wrap(s.handleReady))
	mux.HandleFunc("GET /metrics", s.wrap(s.handleMetrics))
	mux.HandleFunc("POST /v1/simulate", s.wrap(s.handleSimulate))
	mux.HandleFunc("POST /v1/sweep", s.wrap(s.handleSweep))
	mux.HandleFunc("POST /v1/lease/execute", s.wrap(s.handleLeaseExecute))
	mux.HandleFunc("GET /v1/jobs/{id}", s.wrap(s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.wrap(s.handleStream))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.wrap(s.handleCancel))
	return mux
}

// apiError carries an HTTP status (and optional Retry-After) up to wrap.
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// wrap adapts an error-returning handler: the nopanic discipline for the
// serving layer is that handlers report failures as errors, which are
// rendered as one JSON object with the mapped status.
func (s *Server) wrap(h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		err := h(w, r)
		if err == nil {
			return
		}
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(err, &ae) {
			status = ae.status
			if ae.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			}
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode left here
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// handleHealth is liveness only: the process is up and serving HTTP. It
// stays 200 through a drain — a draining worker is alive, just not ready —
// so supervisors do not kill a process that is finishing its queue.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	return nil
}

// ReadyState is the readiness snapshot behind GET /readyz, and the payload
// a fleet worker heartbeats to its coordinator: queue depth and drain state
// let the coordinator stop routing to a worker that is shutting down or
// saturated, instead of discovering it through lease timeouts.
type ReadyState struct {
	Ready         bool `json:"ready"`
	Draining      bool `json:"draining"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Running       int  `json:"running"`
	Workers       int  `json:"workers"`
}

// Ready reports the serving subsystem's readiness.
func (s *Server) Ready() ReadyState {
	draining := s.draining.Load()
	return ReadyState{
		Ready:         !draining,
		Draining:      draining,
		QueueDepth:    int(s.metrics.queued.Load()),
		QueueCapacity: s.cfg.QueueDepth,
		Running:       int(s.metrics.running.Load()),
		Workers:       s.cfg.Workers,
	}
}

// handleReady is readiness: 200 while accepting work, 503 while draining.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) error {
	st := s.Ready()
	status := http.StatusOK
	if !st.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
	return nil
}

// ExecutedJobs reports how many jobs this server actually simulated to
// completion (cache hits and deduped attaches excluded) — the counter the
// fleet tests use to prove a committed result is never recomputed.
func (s *Server) ExecutedJobs() int64 { return s.metrics.done.Load() }

// SetPowerCap publishes this worker's assigned slice of the fleet power
// budget (and the global budget it came from) at /metrics. The fleet
// agent's OnBudget hook calls it after the join and every heartbeat; only
// bit-changes count as rebalances.
func (s *Server) SetPowerCap(assigned, fleetBudget float64) {
	s.metrics.capBudgetBits.Store(math.Float64bits(fleetBudget))
	if s.metrics.capAssignedBits.Swap(math.Float64bits(assigned)) != math.Float64bits(assigned) {
		s.metrics.capRebalances.Add(1)
	}
}

// PowerCap returns the worker's currently assigned power budget slice and
// the fleet-wide budget (both 0 when uncapped).
func (s *Server) PowerCap() (assigned, fleetBudget float64) {
	return math.Float64frombits(s.metrics.capAssignedBits.Load()),
		math.Float64frombits(s.metrics.capBudgetBits.Load())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	builds, hits := s.runner.Tables().Stats()
	s.metrics.write(w, time.Since(s.started), builds, hits)
	return nil
}

// decodeJSON strictly decodes the request body (unknown fields are errors:
// a typoed option must not silently select a default).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errorf(http.StatusBadRequest, "invalid request body: %v", err)
	}
	if dec.More() {
		return errorf(http.StatusBadRequest, "invalid request body: trailing data")
	}
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	n, err := req.Normalized()
	if err != nil {
		return errorf(http.StatusBadRequest, "invalid simulate request: %v", err)
	}
	hash, err := hashTagged("simulate", n)
	if err != nil {
		return errorf(http.StatusInternalServerError, "hash request: %v", err)
	}
	return s.submit(w, r, &Job{Kind: "simulate", Hash: hash, simReq: &n})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	n, err := req.Normalized()
	if err != nil {
		return errorf(http.StatusBadRequest, "invalid sweep request: %v", err)
	}
	hash, err := hashTagged("sweep", n)
	if err != nil {
		return errorf(http.StatusInternalServerError, "hash request: %v", err)
	}
	return s.submit(w, r, &Job{Kind: "sweep", Hash: hash, sweepReq: &n})
}

// submit is the admission path shared by simulate and sweep: admit the
// prospective job, then render its state over HTTP.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, proto *Job) error {
	job, aerr := s.admit(proto)
	if aerr != nil {
		return aerr
	}
	return s.respondJob(w, r, job)
}

// admit resolves a prospective job against existing state — result cache,
// in-flight dedup — or registers and enqueues a real job built from it,
// with 429 backpressure when the bounded queue is full. proto carries the
// kind, hash and normalized request. It is shared by the HTTP submission
// handlers and the fleet lease-execution endpoint.
func (s *Server) admit(proto *Job) (*Job, *apiError) {
	if s.draining.Load() {
		return nil, &apiError{
			status:     http.StatusServiceUnavailable,
			msg:        "server is draining",
			retryAfter: s.retryAfterSeconds(),
		}
	}
	now := time.Now()
	if res, ok := s.lru.Get(proto.Hash); ok && res.kind == proto.Kind {
		s.metrics.cacheHits.Add(1)
		job := newJob(s.newID(proto.Hash), proto.Kind, proto.Hash, now)
		job.completeFromCache(res, now)
		s.register(job, true)
		s.logf("job %s: %s served from cache", job.ID, job.Kind)
		return job, nil
	}
	s.metrics.cacheMisses.Add(1)

	s.mu.Lock()
	if j, ok := s.inflight[proto.Hash]; ok {
		s.mu.Unlock()
		s.metrics.deduped.Add(1)
		s.logf("job %s: identical request attached (dedup)", j.ID)
		return j, nil
	}
	if s.queueClosed {
		s.mu.Unlock()
		return nil, &apiError{
			status:     http.StatusServiceUnavailable,
			msg:        "server is draining",
			retryAfter: s.retryAfterSeconds(),
		}
	}
	job := newJob(s.newID(proto.Hash), proto.Kind, proto.Hash, now)
	job.simReq, job.sweepReq = proto.simReq, proto.sweepReq
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, &apiError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("job queue full (%d deep); retry shortly", s.cfg.QueueDepth),
			retryAfter: s.retryAfterSeconds(),
		}
	}
	s.jobs[job.ID] = job
	s.inflight[job.Hash] = job
	s.mu.Unlock()
	s.metrics.queued.Add(1)
	s.logf("job %s: %s queued (hash %.8s)", job.ID, job.Kind, job.Hash)
	return job, nil
}

// retryAfterSeconds returns the next backpressure hint: the configured base
// plus a deterministic jitter in [0, jitter] seconds, sequenced by a
// splitmix64-scrambled counter. Rejected clients therefore spread their
// retries across the window instead of synchronizing on one boundary — and
// the shared fleet client honors the header (internal/fleet.Client).
func (s *Server) retryAfterSeconds() int {
	if s.cfg.RetryAfterJitterSeconds <= 0 {
		return s.cfg.RetryAfterSeconds
	}
	n := uint64(s.retrySeq.Add(1))
	return s.cfg.RetryAfterSeconds + int(fault.Mix64(n)%uint64(s.cfg.RetryAfterJitterSeconds+1))
}

func (s *Server) newID(hash string) string {
	n := s.nextID.Add(1)
	tag := hash
	if len(tag) > 8 {
		tag = tag[:8]
	}
	return fmt.Sprintf("j%d-%s", n, tag)
}

// register adds a job created outside the queue path (cache hits) to the
// registry, retiring old terminal jobs.
func (s *Server) register(j *Job, isTerminal bool) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	if isTerminal {
		s.retireLocked(j)
	}
	s.mu.Unlock()
}

// retire moves a finished job out of the in-flight table and trims the
// terminal-job retention window.
func (s *Server) retire(j *Job) {
	s.mu.Lock()
	s.retireLocked(j)
	s.mu.Unlock()
}

func (s *Server) retireLocked(j *Job) {
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.doneOrder = append(s.doneOrder, j.ID)
	for len(s.doneOrder) > s.cfg.MaxJobs {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, old)
	}
}

func (s *Server) jobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobJSON is the externally visible job state.
type jobJSON struct {
	ID             string          `json:"id"`
	Kind           string          `json:"kind"`
	State          string          `json:"state"`
	RequestHash    string          `json:"request_hash"`
	CacheHit       bool            `json:"cache_hit,omitempty"`
	EpochsStreamed int             `json:"epochs_streamed,omitempty"`
	Error          string          `json:"error,omitempty"`
	Result         json.RawMessage `json:"result,omitempty"`
}

func jobBody(j *Job, v jobView) jobJSON {
	body := jobJSON{
		ID:             j.ID,
		Kind:           j.Kind,
		State:          v.State,
		RequestHash:    j.Hash,
		CacheHit:       v.CacheHit,
		EpochsStreamed: v.Records,
		Result:         v.Result,
	}
	if v.Err != nil {
		body.Error = v.Err.Error()
	}
	return body
}

// respondJob renders a job's current state; with ?wait=1 it first blocks
// until the job is terminal (or the client gives up).
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *Job) error {
	v, _ := j.view()
	if waitRequested(r) && !terminal(v.State) {
		var err error
		v, err = j.wait(r.Context())
		if err != nil {
			return nil // client went away; nothing to respond to
		}
	}
	status := http.StatusAccepted
	if terminal(v.State) {
		status = http.StatusOK
	}
	writeJSON(w, status, jobBody(j, v))
	return nil
}

func waitRequested(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) error {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		return errorf(http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return s.respondJob(w, r, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) error {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		return errorf(http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	if !j.requestCancel() {
		v, _ := j.view()
		return errorf(http.StatusConflict, "job %s already %s", j.ID, v.State)
	}
	s.logf("job %s: cancellation requested", j.ID)
	v, _ := j.view()
	writeJSON(w, http.StatusAccepted, jobBody(j, v))
	return nil
}

// streamLine is one NDJSON line of GET /v1/jobs/{id}/stream: per-epoch
// progress while the job runs, then exactly one terminal line carrying the
// result (or error/cancellation).
type streamLine struct {
	Type      string          `json:"type"` // "epoch" | "result" | "error" | "cancelled"
	Epoch     int             `json:"epoch,omitempty"`
	Wall      float64         `json:"wall_seconds,omitempty"`
	CoreHz    []float64       `json:"core_hz,omitempty"`
	MemHz     float64         `json:"mem_hz,omitempty"`
	PowerW    float64         `json:"power_w,omitempty"`
	Slowdowns []float64       `json:"slowdowns,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func epochLine(rec sim.EpochRecord) streamLine {
	return streamLine{
		Type:      "epoch",
		Epoch:     rec.Index,
		Wall:      rec.Wall,
		CoreHz:    rec.CoreHz,
		MemHz:     rec.MemHz,
		PowerW:    rec.PowerW,
		Slowdowns: rec.Slowdowns,
	}
}

// handleStream replays the job's buffered epoch records and then follows
// live appends until the job is terminal, flushing each batch. A client
// disconnect simply ends the stream; the job keeps running (cancel it with
// DELETE /v1/jobs/{id}). Each write batch renews a write deadline
// (Config.StreamWriteTimeout): a client that stalls its receive window —
// connected but not reading — is dropped once the kernel buffers fill and
// the deadline trips, so it cannot pin this handler goroutine forever.
// Such drops are counted as coscale_streams_dropped_total.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) error {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		return errorf(http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	renewDeadline := func() {
		if s.cfg.StreamWriteTimeout > 0 {
			// Best effort: a transport without deadlines just keeps the old
			// blocking behaviour.
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		}
	}
	streamErr := func(err error) error {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.metrics.streamsDropped.Add(1)
			s.logf("job %s: stream dropped (client stalled past %s)", j.ID, s.cfg.StreamWriteTimeout)
		}
		return nil // in either case the stream is over; the job keeps running
	}
	enc := json.NewEncoder(w)
	sent := 0
	for {
		renewDeadline()
		for _, rec := range j.recordsFrom(sent) {
			if err := enc.Encode(epochLine(rec)); err != nil {
				return streamErr(err)
			}
			sent++
		}
		v, ch := j.view()
		if v.Records > sent {
			continue // more records arrived while snapshotting
		}
		if terminal(v.State) {
			final := streamLine{Type: "result", Result: v.Result}
			switch v.State {
			case StateFailed:
				final = streamLine{Type: "error", Error: v.Err.Error()}
			case StateCancelled:
				final = streamLine{Type: "cancelled"}
				if v.Err != nil {
					final.Error = v.Err.Error()
				}
			}
			if err := enc.Encode(final); err != nil {
				return streamErr(err)
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return nil
		case <-ch:
		}
	}
}

// worker drains the job queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one admitted job on this worker, handling the
// cancelled-while-queued fast path, terminal-state accounting, and result
// caching.
func (s *Server) runJob(j *Job) {
	s.metrics.queued.Add(-1)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		// Cancelled while queued: nothing ran, free the slot immediately.
		s.metrics.cancelled.Add(1)
		s.retire(j)
		s.logf("job %s: cancelled before start", j.ID)
		return
	}
	s.metrics.running.Add(1)
	s.logf("job %s: running", j.ID)

	var raw json.RawMessage
	var err error
	switch j.Kind {
	case "simulate":
		raw, err = s.executeSimulate(ctx, j)
	case "sweep":
		raw, err = s.executeSweep(ctx, j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.Kind)
	}

	state := StateDone
	switch {
	case err == nil:
		s.metrics.done.Add(1)
		s.lru.Add(j.Hash, &cachedResult{kind: j.Kind, result: raw, records: j.recordsFrom(0)})
	case isCancellation(err):
		state = StateCancelled
		s.metrics.cancelled.Add(1)
	default:
		state = StateFailed
		s.metrics.failed.Add(1)
	}
	now := time.Now()
	j.finish(state, raw, err, now)
	s.retire(j)
	s.metrics.running.Add(-1)
	s.metrics.observeLatency(now.Sub(j.created))
	s.logf("job %s: %s", j.ID, state)
}
