package server

import (
	"encoding/json"
	"net/http"
)

// LeaseExecuteRequest is the body of POST /v1/lease/execute: a fleet
// coordinator (internal/fleet) executing one leased sweep cell on this
// worker, synchronously. The cell rides as a full SimulateRequest; Hash,
// when set, must match the canonical hash this worker computes for it — a
// cheap end-to-end integrity check that the coordinator and worker agree
// on the routing key before any simulation runs.
type LeaseExecuteRequest struct {
	// JobID is the coordinator's job identity, echoed back verbatim.
	JobID string `json:"job_id"`
	// Attempt is the coordinator's 1-based attempt number (diagnostic).
	Attempt int `json:"attempt,omitempty"`
	// Hash is the canonical simulate hash the coordinator routed by.
	Hash string `json:"hash,omitempty"`
	// Simulate is the cell to execute.
	Simulate SimulateRequest `json:"simulate"`
}

// LeaseExecuteResponse is the worker's answer: terminal job state plus the
// marshaled SimulateResult. CacheHit reports that the result was served
// from the worker's LRU without re-simulation — how a retried lease whose
// first response was lost in flight avoids recomputing.
type LeaseExecuteResponse struct {
	JobID    string          `json:"job_id"`
	WorkerID string          `json:"worker_id,omitempty"`
	Hash     string          `json:"hash"`
	State    string          `json:"state"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// handleLeaseExecute admits the cell through the same path as
// POST /v1/simulate — result cache, in-flight dedup, bounded-queue
// admission with jittered 429 backpressure — and blocks until it is
// terminal. Cancellation of the coordinator's request abandons the wait
// but not the job: it finishes into the cache, so the inevitable retry is
// a hit, not a second simulation.
func (s *Server) handleLeaseExecute(w http.ResponseWriter, r *http.Request) error {
	var req LeaseExecuteRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	n, err := req.Simulate.Normalized()
	if err != nil {
		return errorf(http.StatusBadRequest, "invalid lease cell: %v", err)
	}
	hash, err := hashTagged("simulate", n)
	if err != nil {
		return errorf(http.StatusInternalServerError, "hash lease cell: %v", err)
	}
	if req.Hash != "" && req.Hash != hash {
		return errorf(http.StatusBadRequest,
			"lease hash mismatch: coordinator routed by %.12s but the cell hashes to %.12s", req.Hash, hash)
	}
	job, aerr := s.admit(&Job{Kind: "simulate", Hash: hash, simReq: &n})
	if aerr != nil {
		return aerr
	}
	s.logf("job %s: leased as %s (attempt %d)", job.ID, req.JobID, req.Attempt)
	v, err := job.wait(r.Context())
	if err != nil {
		return nil // coordinator went away; the job finishes into the cache
	}
	resp := LeaseExecuteResponse{
		JobID:    req.JobID,
		WorkerID: s.cfg.WorkerID,
		Hash:     hash,
		State:    v.State,
		CacheHit: v.CacheHit,
		Result:   v.Result,
	}
	if v.Err != nil {
		resp.Error = v.Err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
