package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"coscale/internal/sim"
)

// Job states. A job moves queued → running → one of the terminal states
// (done, failed, cancelled); a queued job may go straight to cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one admitted request. All mutable state is guarded by mu; the
// updated channel is closed and replaced on every state change or epoch
// append, giving streamers and waiters a select-able broadcast that
// composes with context cancellation.
type Job struct {
	ID   string
	Kind string // "simulate" or "sweep"
	Hash string

	mu       sync.Mutex
	state    string
	updated  chan struct{}
	records  []sim.EpochRecord // streamed epochs (simulate jobs with stream=true)
	result   json.RawMessage   // marshaled response, set in a terminal state
	err      error
	cancel   context.CancelFunc // set when the job starts running
	created  time.Time
	started  time.Time
	finished time.Time
	cacheHit bool

	// Exactly one of these is set, matching Kind: the normalized request
	// the worker executes.
	simReq   *SimulateRequest
	sweepReq *SweepRequest
}

func newJob(id, kind, hash string, now time.Time) *Job {
	return &Job{
		ID:      id,
		Kind:    kind,
		Hash:    hash,
		state:   StateQueued,
		updated: make(chan struct{}),
		created: now,
	}
}

// bump wakes every waiter; requires j.mu held.
func (j *Job) bump() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// start transitions queued → running and installs the cancel hook. It
// returns false if the job was cancelled while queued.
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = now
	j.bump()
	return true
}

// finish records the terminal state and result.
func (j *Job) finish(state string, result json.RawMessage, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.result = result
	j.err = err
	j.finished = now
	j.cancel = nil
	j.bump()
}

// completeFromCache marks a freshly created job done with a cached result.
func (j *Job) completeFromCache(res *cachedResult, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = res.result
	j.records = res.records
	j.cacheHit = true
	j.started = now
	j.finished = now
	j.bump()
}

// requestCancel cancels the job: a queued job is marked cancelled directly
// (the worker will skip it), a running one has its context cancelled and
// reaches the cancelled state when the engine unwinds. Returns false when
// the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.bump()
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// publishEpoch appends one streamed epoch record and wakes streamers. It is
// the engine's OnEpoch hook, called from the simulating goroutine.
func (j *Job) publishEpoch(rec sim.EpochRecord) {
	j.mu.Lock()
	j.records = append(j.records, rec)
	j.bump()
	j.mu.Unlock()
}

// terminal reports whether state is one of the final states.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// jobView is a consistent snapshot of a job's externally visible state.
type jobView struct {
	State    string
	Records  int
	Result   json.RawMessage
	Err      error
	CacheHit bool
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// view snapshots the job and returns the broadcast channel that will be
// closed on its next change, so callers can wait without polling.
func (j *Job) view() (jobView, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		State:    j.state,
		Records:  len(j.records),
		Result:   j.result,
		Err:      j.err,
		CacheHit: j.cacheHit,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}, j.updated
}

// recordsFrom copies the streamed records with index >= from.
func (j *Job) recordsFrom(from int) []sim.EpochRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from >= len(j.records) {
		return nil
	}
	out := make([]sim.EpochRecord, len(j.records)-from)
	copy(out, j.records[from:])
	return out
}

// wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) wait(ctx context.Context) (jobView, error) {
	for {
		v, ch := j.view()
		if terminal(v.State) {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-ch:
		}
	}
}

// cachedResult is the LRU value: the marshaled response plus any streamed
// epoch records, so a cache hit replays the stream identically.
type cachedResult struct {
	kind    string
	result  json.RawMessage
	records []sim.EpochRecord
}
