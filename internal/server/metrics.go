package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow bounds the sample set behind the p50/p99 job-latency
// quantiles: a ring of the most recent completions, large enough for stable
// percentiles and small enough to sort at scrape time.
const latencyWindow = 512

// metrics aggregates the serving counters exposed at /metrics. Counters are
// atomics (written from workers and handlers); the latency ring has its own
// lock.
type metrics struct {
	queued  atomic.Int64 // gauge: jobs admitted, not yet started
	running atomic.Int64 // gauge: jobs executing on a worker

	done      atomic.Int64 // terminal counts
	failed    atomic.Int64
	cancelled atomic.Int64

	rejected atomic.Int64 // 429s from a full queue
	deduped  atomic.Int64 // requests attached to an in-flight identical job

	streamsDropped atomic.Int64 // NDJSON streams cut by the write deadline

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	epochs atomic.Int64 // engine epochs simulated by this process

	// Power-cap state published by the fleet agent's budget hook
	// (Server.SetPowerCap): this worker's assigned slice and the fleet
	// budget it came from, stored as Float64bits, plus a counter of
	// assignments that actually changed the slice.
	capAssignedBits atomic.Uint64
	capBudgetBits   atomic.Uint64
	capRebalances   atomic.Int64

	// Per-decision search cost across every policy run this process has
	// executed (timedPolicy feeds these): call count, summed and maximum
	// Decide duration. sum/count is the mean; max is the tail spike.
	searchCount atomic.Int64
	searchSumNs atomic.Int64
	searchMaxNs atomic.Int64

	// Warm-start search outcomes (DESIGN.md §14), harvested by timedPolicy
	// from controllers that export core.SearchStats. Every decision is one
	// warm hit or one cold search; fallbacks count the cold searches that a
	// failed warm attempt preceded. Policies without warm-start report every
	// decision as a cold search, so the cold counter doubles as the
	// full-search rate of the whole process.
	warmHits      atomic.Int64
	warmFallbacks atomic.Int64
	coldSearches  atomic.Int64

	mu        sync.Mutex
	latencies [latencyWindow]float64 // seconds, ring buffer
	latN      int                    // total samples ever recorded
}

// observeLatency records one completed job's wall-clock latency.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latencies[m.latN%latencyWindow] = d.Seconds()
	m.latN++
	m.mu.Unlock()
}

// observeSearch records one policy decision's search duration. The maximum
// is a compare-and-swap high-water mark: concurrent workers race the update,
// and a loser retries only while its sample still exceeds the current max.
func (m *metrics) observeSearch(d time.Duration) {
	ns := d.Nanoseconds()
	m.searchCount.Add(1)
	m.searchSumNs.Add(ns)
	for {
		cur := m.searchMaxNs.Load()
		if ns <= cur || m.searchMaxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantiles returns the p50 and p99 job latency over the retained window
// (zeros when nothing has completed yet).
func (m *metrics) quantiles() (p50, p99 float64) {
	m.mu.Lock()
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]float64, n)
	copy(buf, m.latencies[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return buf[i]
	}
	return q(0.50), q(0.99)
}

// write renders the plaintext exposition format: one "name value" line per
// metric, Prometheus-compatible without client libraries. tablesBuilds and
// tablesHits come from the runner's shared platform-table cache
// (policy.TableCache.Stats) — the one serving counter not owned by this
// struct, passed in at scrape time.
func (m *metrics) write(w io.Writer, uptime time.Duration, tablesBuilds, tablesHits int64) {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	epochs := m.epochs.Load()
	eps := 0.0
	if s := uptime.Seconds(); s > 0 {
		eps = float64(epochs) / s
	}
	p50, p99 := m.quantiles()

	fmt.Fprintf(w, "coscale_jobs_queued %d\n", m.queued.Load())
	fmt.Fprintf(w, "coscale_jobs_running %d\n", m.running.Load())
	fmt.Fprintf(w, "coscale_jobs_done_total %d\n", m.done.Load())
	fmt.Fprintf(w, "coscale_jobs_failed_total %d\n", m.failed.Load())
	fmt.Fprintf(w, "coscale_jobs_cancelled_total %d\n", m.cancelled.Load())
	fmt.Fprintf(w, "coscale_jobs_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "coscale_jobs_deduped_total %d\n", m.deduped.Load())
	fmt.Fprintf(w, "coscale_streams_dropped_total %d\n", m.streamsDropped.Load())
	fmt.Fprintf(w, "coscale_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "coscale_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "coscale_cache_hit_rate %g\n", hitRate)
	fmt.Fprintf(w, "coscale_tables_builds_total %d\n", tablesBuilds)
	fmt.Fprintf(w, "coscale_tables_cache_hits_total %d\n", tablesHits)
	fmt.Fprintf(w, "coscale_job_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "coscale_job_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(w, "coscale_search_decisions_total %d\n", m.searchCount.Load())
	fmt.Fprintf(w, "coscale_search_duration_ns_sum %d\n", m.searchSumNs.Load())
	fmt.Fprintf(w, "coscale_search_duration_ns_max %d\n", m.searchMaxNs.Load())
	fmt.Fprintf(w, "coscale_search_warm_hits_total %d\n", m.warmHits.Load())
	fmt.Fprintf(w, "coscale_search_warm_fallbacks_total %d\n", m.warmFallbacks.Load())
	fmt.Fprintf(w, "coscale_search_cold_total %d\n", m.coldSearches.Load())
	fmt.Fprintf(w, "coscale_epochs_simulated_total %d\n", epochs)
	fmt.Fprintf(w, "coscale_epochs_per_second %g\n", eps)
	fmt.Fprintf(w, "coscale_powercap_budget_watts %g\n", math.Float64frombits(m.capBudgetBits.Load()))
	fmt.Fprintf(w, "coscale_powercap_assigned_watts %g\n", math.Float64frombits(m.capAssignedBits.Load()))
	fmt.Fprintf(w, "coscale_powercap_rebalances_total %d\n", m.capRebalances.Load())
	fmt.Fprintf(w, "coscale_uptime_seconds %g\n", uptime.Seconds())
}
