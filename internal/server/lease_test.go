package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestLeaseExecuteEndpoint drives the fleet worker protocol directly: a
// leased cell executes synchronously, a retried lease for the same cell is a
// cache hit rather than a second simulation, and a hash mismatch between the
// coordinator's routing key and the worker's canonical hash is rejected
// before anything runs.
func TestLeaseExecuteEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 16, WorkerID: "w-test"})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	cell := SimulateRequest{Workload: "ILP1", Instructions: 2_000_000}
	n, err := cell.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := hashTagged("simulate", n)
	if err != nil {
		t.Fatal(err)
	}

	lease := func(jobID string, attempt int, h string) (int, LeaseExecuteResponse, []byte) {
		t.Helper()
		resp, body := postJSON(t, client, ts.URL+"/v1/lease/execute", LeaseExecuteRequest{
			JobID: jobID, Attempt: attempt, Hash: h, Simulate: cell,
		})
		var out LeaseExecuteResponse
		if resp.StatusCode == http.StatusOK {
			out = decodeLease(t, body)
		}
		return resp.StatusCode, out, body
	}

	status, first, body := lease("job-1", 1, hash)
	if status != http.StatusOK {
		t.Fatalf("lease execute: status %d: %s", status, body)
	}
	if first.JobID != "job-1" || first.WorkerID != "w-test" || first.Hash != hash {
		t.Fatalf("lease response identity = %+v, want job-1/w-test/%.12s", first, hash)
	}
	if first.State != StateDone || first.CacheHit || len(first.Result) == 0 {
		t.Fatalf("first lease = state %s cacheHit %t result %d bytes, want fresh done result",
			first.State, first.CacheHit, len(first.Result))
	}

	// The retry path: the coordinator re-leases after losing the first
	// response in flight. The worker must serve its cached result, not
	// simulate again.
	status, second, body := lease("job-1", 2, hash)
	if status != http.StatusOK {
		t.Fatalf("re-lease: status %d: %s", status, body)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("re-lease = state %s cacheHit %t, want cached done", second.State, second.CacheHit)
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("cached lease result differs:\n%s\nvs\n%s", second.Result, first.Result)
	}
	if n := s.ExecutedJobs(); n != 1 {
		t.Fatalf("ExecutedJobs = %d after lease + retry, want exactly 1", n)
	}

	// A routing-key mismatch is an integrity failure, rejected up front.
	status, _, body = lease("job-2", 1, strings.Repeat("ab", 32))
	if status != http.StatusBadRequest || !strings.Contains(string(body), "hash mismatch") {
		t.Fatalf("mismatched hash: status %d body %s, want 400 hash mismatch", status, body)
	}
	// An invalid cell is rejected before hashing.
	resp, body := postJSON(t, client, ts.URL+"/v1/lease/execute", LeaseExecuteRequest{
		JobID: "job-3", Simulate: SimulateRequest{Workload: "NOPE"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid cell: status %d body %s, want 400", resp.StatusCode, body)
	}
	if n := s.ExecutedJobs(); n != 1 {
		t.Fatalf("ExecutedJobs = %d after rejected leases, want still 1", n)
	}
}

func decodeLease(t *testing.T, body []byte) LeaseExecuteResponse {
	t.Helper()
	var out LeaseExecuteResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode lease response %s: %v", body, err)
	}
	return out
}

// TestRetryAfterJitterSpread pins the 429/503 backpressure hint's behaviour:
// every hint lands in [base, base+jitter], the sequence actually spreads
// (rejected clients do not re-arrive as one synchronized storm), and the
// splitmix64 sequencing makes it reproducible across identically configured
// servers.
func TestRetryAfterJitterSpread(t *testing.T) {
	const base, jitter, samples = 1, 3, 64
	draw := func() []int {
		s := New(Config{Workers: 1, RetryAfterSeconds: base, RetryAfterJitterSeconds: jitter})
		defer s.Drain(context.Background())
		out := make([]int, samples)
		for i := range out {
			out[i] = s.retryAfterSeconds()
		}
		return out
	}
	a := draw()
	distinct := map[int]bool{}
	for i, v := range a {
		if v < base || v > base+jitter {
			t.Fatalf("hint %d = %d outside [%d, %d]", i, v, base, base+jitter)
		}
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("64 hints used only %d distinct values %v — not spread", len(distinct), distinct)
	}
	for i, v := range draw() {
		if v != a[i] {
			t.Fatalf("hint sequence not deterministic at %d: %d vs %d", i, v, a[i])
		}
	}

	// Negative jitter disables the spread entirely (the exact-header tests
	// rely on this).
	s := New(Config{Workers: 1, RetryAfterSeconds: 2, RetryAfterJitterSeconds: -1})
	defer s.Drain(context.Background())
	for i := 0; i < 8; i++ {
		if v := s.retryAfterSeconds(); v != 2 {
			t.Fatalf("jitter disabled but hint %d = %d, want 2", i, v)
		}
	}
}

// TestReadyzPayload checks the readiness snapshot a fleet coordinator keys
// off: capacity figures from config, and ready=true on a fresh server. (The
// draining flip to 503 is covered by the smoke test.)
func TestReadyzPayload(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 7})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := getJSON(t, ts.Client(), ts.URL+"/readyz")
	if status != http.StatusOK {
		t.Fatalf("readyz: status %d body %s", status, body)
	}
	var rs ReadyState
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatalf("decode readyz %s: %v", body, err)
	}
	if !rs.Ready || rs.Draining {
		t.Fatalf("fresh server readyz = %+v, want ready and not draining", rs)
	}
	if rs.Workers != 3 || rs.QueueCapacity != 7 {
		t.Fatalf("readyz capacity = %+v, want workers=3 queue_capacity=7", rs)
	}
}

// smallWriteBufListener shrinks each accepted connection's kernel send
// buffer so a non-reading client backs the server's writes up quickly.
type smallWriteBufListener struct{ net.Listener }

func (l smallWriteBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		_ = tc.SetWriteBuffer(4 << 10)
	}
	return c, err
}

// TestStreamWriteDeadlineDropsStalledClient connects a client that requests
// an NDJSON stream and then never reads it. Once the socket buffers fill,
// the per-write deadline must trip, the handler must exit (freeing its
// goroutine), and the drop must surface as coscale_streams_dropped_total.
// The job itself keeps running and stays cancellable.
func TestStreamWriteDeadlineDropsStalledClient(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, StreamWriteTimeout: 250 * time.Millisecond})
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener = smallWriteBufListener{ts.Listener}
	ts.Start()
	defer ts.Close()
	client := ts.Client()

	// A long streaming job produces epoch lines continuously.
	slow := SimulateRequest{Workload: "MID1", Instructions: slowBudget, MaxEpochs: slowMaxEpochs, Stream: true}
	resp, body := postJSON(t, client, ts.URL+"/v1/simulate", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, body)
	waitState(t, client, ts.URL, job.ID, StateRunning)

	// A raw connection that sends the stream request and then stalls: no
	// reads, tiny receive buffer, so backpressure reaches the server fast.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	fmt.Fprintf(conn, "GET /v1/jobs/%s/stream HTTP/1.1\r\nHost: stalled\r\n\r\n", job.ID)

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, mbody := getJSON(t, client, ts.URL+"/metrics")
		if metricValue(t, string(mbody), "coscale_streams_dropped_total") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never dropped: write deadline did not trip for a stalled client")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The drop severed the stream, not the job.
	if st := deleteJob(t, client, ts.URL, job.ID); st != http.StatusAccepted {
		t.Fatalf("cancel after drop: status %d, want job still running", st)
	}
	waitState(t, client, ts.URL, job.ID, StateCancelled)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
