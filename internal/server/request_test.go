package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"coscale/internal/fault"
	"coscale/internal/workload"
)

func hashOfJSON(t *testing.T, raw string) string {
	t.Helper()
	var q SimulateRequest
	if err := json.Unmarshal([]byte(raw), &q); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	h, err := q.Hash()
	if err != nil {
		t.Fatalf("hash %s: %v", raw, err)
	}
	return h
}

// TestSimulateHashSpellings pins hand-picked equivalent spellings: field
// order, defaults omitted versus spelled out, and degenerate options.
func TestSimulateHashSpellings(t *testing.T) {
	pairs := []struct{ a, b string }{
		// Defaults omitted vs filled in.
		{`{"workload":"MEM1"}`,
			`{"workload":"MEM1","policy":"CoScale","bound":0.1,"instructions":100000000}`},
		// JSON field order.
		{`{"workload":"MEM1","policy":"MemScale","bound":0.05}`,
			`{"bound":0.05,"policy":"MemScale","workload":"MEM1"}`},
		// A fault scenario that injects nothing collapses to no faults,
		// whatever its seed.
		{`{"workload":"MEM1","faults":{"Seed":7}}`, `{"workload":"MEM1"}`},
		// Explicit false is the zero value.
		{`{"workload":"MEM1","stream":false,"prefetch":false}`, `{"workload":"MEM1"}`},
		// Bound zero is the default sentinel.
		{`{"workload":"MEM1","bound":0.1}`, `{"workload":"MEM1","bound":0}`},
	}
	for _, p := range pairs {
		if ha, hb := hashOfJSON(t, p.a), hashOfJSON(t, p.b); ha != hb {
			t.Errorf("hashes differ:\n  %s -> %s\n  %s -> %s", p.a, ha, p.b, hb)
		}
	}
}

// TestSimulateHashDistinct verifies that changing any behavioural field
// changes the hash, and that the kind tag separates simulate from sweep.
func TestSimulateHashDistinct(t *testing.T) {
	variants := []string{
		`{"workload":"MEM1"}`,
		`{"workload":"MEM2"}`,
		`{"workload":"MEM1","policy":"MemScale"}`,
		`{"workload":"MEM1","bound":0.05}`,
		`{"workload":"MEM1","instructions":1000000}`,
		`{"workload":"MEM1","prefetch":true}`,
		`{"workload":"MEM1","ooo":true}`,
		`{"workload":"MEM1","migrate_every":8}`,
		`{"workload":"MEM1","max_epochs":8000}`,
		`{"workload":"MEM1","stream":true}`,
		`{"workload":"MEM1","faults":{"Seed":1,"Counters":{"Noise":0.05}}}`,
		`{"workload":"MEM1","faults":{"Seed":2,"Counters":{"Noise":0.05}}}`,
	}
	seen := map[string]string{}
	for _, v := range variants {
		h := hashOfJSON(t, v)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision: %s and %s both hash to %s", prev, v, h)
		}
		seen[h] = v
	}

	// The kind discriminator keeps a simulate request and a sweep request
	// with identical encodings apart.
	hs, err := hashTagged("simulate", struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := hashTagged("sweep", struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	if hs == hw {
		t.Error("simulate and sweep kinds hash identically")
	}
}

// randomRequest draws a request from a small grid of meaningful values.
func randomRequest(rng *rand.Rand) SimulateRequest {
	names := workload.Names()
	policies := []string{"", "CoScale", "MemScale", "CPUOnly", "Baseline", "CoScale-Hardened"}
	bounds := []float64{0, 0.05, DefaultBound, 0.2}
	budgets := []uint64{0, DefaultInstrBudget, 1_000_000, 2_000_000}
	q := SimulateRequest{
		Workload:     names[rng.Intn(len(names))],
		Policy:       policies[rng.Intn(len(policies))],
		Bound:        bounds[rng.Intn(len(bounds))],
		Instructions: budgets[rng.Intn(len(budgets))],
		Prefetch:     rng.Intn(2) == 0,
		OoO:          rng.Intn(2) == 0,
		MigrateEvery: []int{0, 0, 8}[rng.Intn(3)],
		MaxEpochs:    []int{0, 0, 8000}[rng.Intn(3)],
		Stream:       rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 1: // injects nothing: must canonicalize to no faults
		q.Faults = &fault.Config{Seed: uint64(rng.Intn(4))}
	case 2:
		q.Faults = &fault.Config{
			Seed:     uint64(rng.Intn(4)),
			Counters: fault.CounterFaults{Noise: 0.01 * float64(1+rng.Intn(3))},
		}
	}
	return q
}

// sparseSpelling re-encodes a normalized request by hand: fields equal to
// their defaults are omitted and the remaining fields are emitted in a
// shuffled order — a maximally different spelling of the same request.
func sparseSpelling(rng *rand.Rand, n SimulateRequest) string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add(`"workload":%q`, n.Workload)
	if n.Policy != DefaultPolicy {
		add(`"policy":%q`, n.Policy)
	}
	if n.Bound != DefaultBound {
		add(`"bound":%g`, n.Bound)
	}
	if n.Instructions != DefaultInstrBudget {
		add(`"instructions":%d`, n.Instructions)
	}
	if n.Prefetch {
		add(`"prefetch":true`)
	}
	if n.OoO {
		add(`"ooo":true`)
	}
	if n.MigrateEvery != 0 {
		add(`"migrate_every":%d`, n.MigrateEvery)
	}
	if n.MaxEpochs != 0 {
		add(`"max_epochs":%d`, n.MaxEpochs)
	}
	if n.Stream {
		add(`"stream":true`)
	}
	if n.Faults != nil {
		enc, err := json.Marshal(n.Faults)
		if err != nil {
			panic(err)
		}
		add(`"faults":%s`, enc)
	}
	rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	return "{" + strings.Join(parts, ",") + "}"
}

// TestSimulateHashProperty is the canonicalization property test: for a
// seeded stream of random requests, (a) the sparse shuffled spelling hashes
// identically to the original, and (b) distinct canonical forms never share
// a hash (and equal canonical forms never split).
func TestSimulateHashProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	hashToCanon := map[string]string{}
	canonToHash := map[string]string{}
	for i := 0; i < 400; i++ {
		q := randomRequest(rng)
		n, err := q.Normalized()
		if err != nil {
			t.Fatalf("iteration %d: normalize %+v: %v", i, q, err)
		}
		h1, err := q.Hash()
		if err != nil {
			t.Fatal(err)
		}

		sparse := sparseSpelling(rng, n)
		if h2 := hashOfJSON(t, sparse); h2 != h1 {
			t.Fatalf("iteration %d: sparse spelling hashes differently\n  request: %+v\n  sparse:  %s\n  %s vs %s",
				i, q, sparse, h1, h2)
		}

		canon, err := json.Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := hashToCanon[h1]; ok && prev != string(canon) {
			t.Fatalf("iteration %d: hash collision between\n  %s\n  %s", i, prev, canon)
		}
		if prev, ok := canonToHash[string(canon)]; ok && prev != h1 {
			t.Fatalf("iteration %d: canonical form %s hashed both %s and %s", i, canon, prev, h1)
		}
		hashToCanon[h1] = string(canon)
		canonToHash[string(canon)] = h1
	}
}

// TestSweepHash covers the sweep request's canonical form: empty lists mean
// the paper's full sets, order is semantic, duplicates are rejected.
func TestSweepHash(t *testing.T) {
	full := SweepRequest{
		Workloads: workload.Names(),
		Policies:  []string{"MemScale", "CPUOnly", "Uncoordinated", "Semi-coordinated", "CoScale", "Offline"},
	}
	hFull, err := full.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hEmpty, err := SweepRequest{}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hFull != hEmpty {
		t.Error("empty sweep lists should hash like the explicit full sets")
	}

	ab, err := SweepRequest{Workloads: []string{"MEM1", "MEM2"}}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := SweepRequest{Workloads: []string{"MEM2", "MEM1"}}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ab == ba {
		t.Error("workload order is row order, so it must affect the hash")
	}

	if _, err := (SweepRequest{Workloads: []string{"MEM1", "MEM1"}}).Hash(); err == nil {
		t.Error("duplicate workload accepted")
	}
	if _, err := (SweepRequest{Policies: []string{"CoScale", "CoScale"}}).Hash(); err == nil {
		t.Error("duplicate policy accepted")
	}
	if _, err := (SweepRequest{Workloads: []string{"NOPE"}}).Hash(); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestSimulateNormalizeErrors covers rejected requests.
func TestSimulateNormalizeErrors(t *testing.T) {
	bad := []SimulateRequest{
		{},                                              // missing workload
		{Workload: "NOPE"},                              // unknown workload
		{Workload: "MEM1", Policy: "Magic"},             // unknown policy
		{Workload: "MEM1", Bound: 1.5},                  // bound out of range
		{Workload: "MEM1", Bound: -0.1},                 // negative bound
		{Workload: "MEM1", MigrateEvery: -1},            // negative period
		{Workload: "MEM1", MaxEpochs: -1},               // negative cap
		{Workload: "MEM1", MaxEpochs: MaxEpochsCap + 1}, // cap exceeded
		{Workload: "MEM1", Faults: &fault.Config{Counters: fault.CounterFaults{Noise: 2}}}, // invalid scenario
	}
	for i, q := range bad {
		if _, err := q.Normalized(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, q)
		}
	}
}
