package server

import (
	"time"

	"coscale/internal/policy"
)

// timedPolicy wraps a job's policy so every Decide call — one frequency
// search per epoch — feeds the server-wide search-duration summary exposed
// at /metrics (count, sum, max in nanoseconds). Timing wraps only the
// decision, not Observe's slack accounting, so the numbers line up with the
// §3.1 search-cost benchmarks.
type timedPolicy struct {
	inner policy.Policy
	m     *metrics
}

// timed wraps pol with decision timing. Oracle policies keep their
// OraclePolicy identity — the engine type-asserts it to switch to oracle
// observations, so a plain wrapper would silently change their behaviour.
func timed(pol policy.Policy, m *metrics) policy.Policy {
	if op, ok := pol.(policy.OraclePolicy); ok {
		return &timedOracle{timedPolicy{inner: pol, m: m}, op}
	}
	return &timedPolicy{inner: pol, m: m}
}

func (t *timedPolicy) Name() string { return t.inner.Name() }

func (t *timedPolicy) Decide(obs policy.Observation) policy.Decision {
	//lint:ignore dettaint wall time feeds only the search-latency metric; the decision is delegated unchanged
	start := time.Now()
	d := t.inner.Decide(obs)
	t.m.observeSearch(time.Since(start))
	return d
}

func (t *timedPolicy) Observe(epoch policy.Observation) { t.inner.Observe(epoch) }

// timedOracle carries the wrapped policy's OraclePolicy assertion through
// the timing wrapper.
type timedOracle struct {
	timedPolicy
	op policy.OraclePolicy
}

func (t *timedOracle) WantsOracle() bool { return t.op.WantsOracle() }
