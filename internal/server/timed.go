package server

import (
	"time"

	"coscale/internal/core"
	"coscale/internal/policy"
)

// timedPolicy wraps a job's policy so every Decide call — one frequency
// search per epoch — feeds the server-wide search-duration summary exposed
// at /metrics (count, sum, max in nanoseconds). Timing wraps only the
// decision, not Observe's slack accounting, so the numbers line up with the
// §3.1 search-cost benchmarks. Controllers that export per-decision
// core.SearchStats (the CoScale family) additionally feed the warm-start
// outcome counters.
type timedPolicy struct {
	inner policy.Policy
	stats interface{ SearchStats() core.SearchStats }
	m     *metrics
}

// timed wraps pol with decision timing. Oracle policies keep their
// OraclePolicy identity — the engine type-asserts it to switch to oracle
// observations, so a plain wrapper would silently change their behaviour.
func timed(pol policy.Policy, m *metrics) policy.Policy {
	tp := timedPolicy{inner: pol, m: m}
	tp.stats, _ = pol.(interface{ SearchStats() core.SearchStats })
	if op, ok := pol.(policy.OraclePolicy); ok {
		return &timedOracle{tp, op}
	}
	return &tp
}

func (t *timedPolicy) Name() string { return t.inner.Name() }

func (t *timedPolicy) Decide(obs policy.Observation) policy.Decision {
	//lint:ignore dettaint wall time feeds only the search-latency metric; the decision is delegated unchanged
	start := time.Now()
	d := t.inner.Decide(obs)
	t.m.observeSearch(time.Since(start))
	if t.stats != nil {
		s := t.stats.SearchStats()
		t.m.warmHits.Add(int64(s.WarmHits))
		t.m.warmFallbacks.Add(int64(s.WarmFallbacks))
		t.m.coldSearches.Add(int64(s.ColdSearches))
	}
	return d
}

func (t *timedPolicy) Observe(epoch policy.Observation) { t.inner.Observe(epoch) }

// timedOracle carries the wrapped policy's OraclePolicy assertion through
// the timing wrapper.
type timedOracle struct {
	timedPolicy
	op policy.OraclePolicy
}

func (t *timedOracle) WantsOracle() bool { return t.op.WantsOracle() }
