// Package server is the serving layer on top of the simulation stack: a
// stdlib-only HTTP/JSON daemon (cmd/coscale-serve) that accepts simulation
// and sweep requests, runs them on a bounded worker pool, streams per-epoch
// progress as NDJSON, and caches results in an LRU keyed by the canonical
// request hash. Results are bit-identical to the CLIs: the policy run uses
// the same engine, and the no-DVFS baseline is shared through
// experiments.Runner exactly as the figure generators share it. See
// DESIGN.md §9.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"coscale/internal/experiments"
	"coscale/internal/fault"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// Defaults applied by normalization; they mirror the paper's settings so a
// minimal request reproduces the CLI defaults.
const (
	// DefaultBound is the per-program slowdown bound γ (§3: 10%).
	DefaultBound = 0.10
	// DefaultInstrBudget is the per-application instruction budget (the
	// paper's 100M SimPoint length).
	DefaultInstrBudget = 100_000_000
	// DefaultPolicy is the controller used when a request names none.
	DefaultPolicy = string(experiments.CoScaleName)
	// MaxEpochsCap bounds a request's max_epochs override; beyond it a
	// single job could monopolize a worker for hours.
	MaxEpochsCap = 10_000_000
)

// validPolicies is the full set of controller names a request may select —
// the §3.2 comparison set plus the ablations and the hardened wrapper.
var validPolicies = map[string]bool{
	string(experiments.Baseline):        true,
	string(experiments.MemScaleName):    true,
	string(experiments.CPUOnlyName):     true,
	string(experiments.UncoordName):     true,
	string(experiments.SemiName):        true,
	string(experiments.SemiOoPName):     true,
	string(experiments.CoScaleName):     true,
	string(experiments.OfflineName):     true,
	string(experiments.NoGroupingName):  true,
	string(experiments.NoMarginalCache): true,
	string(experiments.HardenedName):    true,
}

// SimulateRequest is the body of POST /v1/simulate: one workload under one
// policy, compared against the shared no-DVFS baseline. Zero values select
// the paper's defaults; Normalized fills them in so that semantically equal
// requests canonicalize — and therefore hash and cache — identically.
type SimulateRequest struct {
	// Workload names a Table 1 mix, e.g. "MEM1", "MIX3". Required.
	Workload string `json:"workload"`
	// Policy selects the controller (default "CoScale").
	Policy string `json:"policy,omitempty"`
	// Bound is the allowed per-program slowdown (default 0.10).
	Bound float64 `json:"bound,omitempty"`
	// Instructions is the per-application budget (default 100M).
	Instructions uint64 `json:"instructions,omitempty"`
	// Prefetch enables the next-line prefetcher (Fig. 16).
	Prefetch bool `json:"prefetch,omitempty"`
	// OoO emulates the 128-instruction MLP window (Figs. 17-18).
	OoO bool `json:"ooo,omitempty"`
	// MigrateEvery rotates threads across cores every N epochs (§3.3).
	MigrateEvery int `json:"migrate_every,omitempty"`
	// MaxEpochs overrides the engine's safety cap on simulated epochs
	// (default 4000). Large instruction budgets need a matching cap raise
	// or the run is aborted as non-terminating.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// Faults selects a deterministic fault-injection scenario for the
	// policy run (internal/fault). The baseline is never fault-injected:
	// faults perturb only what the controller sees, so the fault-free
	// baseline is the true reference, exactly as in the error-tolerance
	// study. A zero scenario canonicalizes to none.
	Faults *fault.Config `json:"faults,omitempty"`
	// Stream records per-epoch progress for GET /v1/jobs/{id}/stream.
	// It participates in the cache key: a streamed result retains its
	// epoch records for replay, an unstreamed one does not.
	Stream bool `json:"stream,omitempty"`
}

// Normalized returns the canonical form of the request: defaults filled,
// names validated, and degenerate option spellings collapsed (a zero fault
// scenario becomes nil). Two requests that simulate the same configuration
// normalize to the same value.
func (q SimulateRequest) Normalized() (SimulateRequest, error) {
	if q.Workload == "" {
		return q, fmt.Errorf("workload is required (one of %v)", workload.Names())
	}
	if _, err := workload.Get(q.Workload); err != nil {
		return q, err
	}
	if q.Policy == "" {
		q.Policy = DefaultPolicy
	}
	if !validPolicies[q.Policy] {
		return q, fmt.Errorf("unknown policy %q", q.Policy)
	}
	if q.Bound < 0 || q.Bound > 1 {
		return q, fmt.Errorf("bound %g outside [0, 1] (0 selects the default %g)", q.Bound, DefaultBound)
	}
	if q.Bound == 0 { //lint:ignore floateq zero is the documented default sentinel, not a computed value
		q.Bound = DefaultBound
	}
	if q.Instructions == 0 {
		q.Instructions = DefaultInstrBudget
	}
	if q.MigrateEvery < 0 {
		return q, fmt.Errorf("migrate_every must be non-negative")
	}
	if q.MaxEpochs < 0 || q.MaxEpochs > MaxEpochsCap {
		return q, fmt.Errorf("max_epochs %d outside [0, %d] (0 selects the engine default)", q.MaxEpochs, MaxEpochsCap)
	}
	if q.Faults != nil {
		if err := q.Faults.Validate(); err != nil {
			return q, err
		}
		if q.Faults.IsZero() {
			q.Faults = nil
		} else {
			// Copy so later mutations of the caller's scenario cannot
			// alias the canonical form.
			fc := *q.Faults
			q.Faults = &fc
		}
	}
	return q, nil
}

// Hash returns the canonical request hash: SHA-256 over a kind-tagged JSON
// encoding of the normalized request. Semantically equal requests (JSON
// field order, defaults omitted vs spelled out, zero fault scenario vs
// none) hash identically; any behavioural difference changes the hash.
func (q SimulateRequest) Hash() (string, error) {
	n, err := q.Normalized()
	if err != nil {
		return "", err
	}
	return hashTagged("simulate", n)
}

// mutate applies the request to a simulation configuration; base mutates
// only the fields that affect the no-DVFS baseline (faults and the bound
// steer the controller, which the baseline does not have).
func (q SimulateRequest) mutate(c *sim.Config) {
	q.mutateBase(c)
	c.Gamma = q.Bound
	if q.Faults != nil {
		fc := *q.Faults
		c.Faults = &fc
	}
}

func (q SimulateRequest) mutateBase(c *sim.Config) {
	c.InstrBudget = q.Instructions
	c.Prefetch = q.Prefetch
	c.OoO = q.OoO
	c.MigrateEvery = q.MigrateEvery
	c.MaxEpochs = q.MaxEpochs
}

// baselineKey keys the shared no-DVFS baseline in the experiments runner:
// everything that changes baseline behaviour, nothing that only changes the
// controller. Requests differing solely in policy, bound or fault scenario
// share one baseline simulation.
func (q SimulateRequest) baselineKey() string {
	return fmt.Sprintf("serve/i=%d/pf=%t/ooo=%t/mig=%d/me=%d", q.Instructions, q.Prefetch, q.OoO, q.MigrateEvery, q.MaxEpochs)
}

// SweepRequest is the body of POST /v1/sweep: the cross product of
// workloads × policies, each compared against its shared baseline — the
// serving form of the Figure 8/9 sweep. Empty lists select the paper's
// full sets.
type SweepRequest struct {
	// Workloads lists Table 1 mixes (empty = all 16, presentation order).
	Workloads []string `json:"workloads,omitempty"`
	// Policies lists controllers (empty = the six practical policies).
	Policies []string `json:"policies,omitempty"`
	// Bound, Instructions, Prefetch and OoO apply to every cell.
	Bound        float64 `json:"bound,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	Prefetch     bool    `json:"prefetch,omitempty"`
	OoO          bool    `json:"ooo,omitempty"`
}

// Normalized returns the canonical sweep: lists defaulted and validated
// (order is semantic — it is the row order of the response — so it is
// preserved, and duplicates are rejected rather than silently deduped).
func (q SweepRequest) Normalized() (SweepRequest, error) {
	if len(q.Workloads) == 0 {
		q.Workloads = workload.Names()
	} else {
		q.Workloads = append([]string(nil), q.Workloads...)
	}
	seenW := map[string]bool{}
	for _, w := range q.Workloads {
		if _, err := workload.Get(w); err != nil {
			return q, err
		}
		if seenW[w] {
			return q, fmt.Errorf("duplicate workload %q", w)
		}
		seenW[w] = true
	}
	if len(q.Policies) == 0 {
		q.Policies = make([]string, len(experiments.PracticalPolicies))
		for i, p := range experiments.PracticalPolicies {
			q.Policies[i] = string(p)
		}
	} else {
		q.Policies = append([]string(nil), q.Policies...)
	}
	seenP := map[string]bool{}
	for _, p := range q.Policies {
		if !validPolicies[p] {
			return q, fmt.Errorf("unknown policy %q", p)
		}
		if seenP[p] {
			return q, fmt.Errorf("duplicate policy %q", p)
		}
		seenP[p] = true
	}
	if q.Bound < 0 || q.Bound > 1 {
		return q, fmt.Errorf("bound %g outside [0, 1] (0 selects the default %g)", q.Bound, DefaultBound)
	}
	if q.Bound == 0 { //lint:ignore floateq zero is the documented default sentinel, not a computed value
		q.Bound = DefaultBound
	}
	if q.Instructions == 0 {
		q.Instructions = DefaultInstrBudget
	}
	return q, nil
}

// Hash returns the canonical sweep hash (see SimulateRequest.Hash).
func (q SweepRequest) Hash() (string, error) {
	n, err := q.Normalized()
	if err != nil {
		return "", err
	}
	return hashTagged("sweep", n)
}

// Cells expands a normalized sweep into its per-cell simulate requests in
// row (workloads-major) order — the unit the fleet coordinator shards
// across workers, each hashed with the canonical simulate hash.
func (q SweepRequest) Cells() []SimulateRequest {
	out := make([]SimulateRequest, 0, len(q.Workloads)*len(q.Policies))
	for _, w := range q.Workloads {
		for _, p := range q.Policies {
			out = append(out, q.cell(w, p))
		}
	}
	return out
}

// cell returns the per-cell simulate view of one sweep entry.
func (q SweepRequest) cell(w, p string) SimulateRequest {
	return SimulateRequest{
		Workload:     w,
		Policy:       p,
		Bound:        q.Bound,
		Instructions: q.Instructions,
		Prefetch:     q.Prefetch,
		OoO:          q.OoO,
	}
}

// hashTagged hashes a kind discriminator plus the canonical JSON encoding
// of v. encoding/json emits struct fields in declaration order, so the
// encoding of a normalized request is deterministic.
func hashTagged(kind string, v any) (string, error) {
	enc, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{'\n'})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}
