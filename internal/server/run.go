package server

import (
	"context"
	"encoding/json"
	"errors"

	"coscale/internal/experiments"
	"coscale/internal/sim"
	"coscale/internal/workload"
)

// EnergyJSON is the integrated energy breakdown of a run, in joules.
type EnergyJSON struct {
	CPU   float64 `json:"cpu"`
	L2    float64 `json:"l2"`
	Mem   float64 `json:"mem"`
	Rest  float64 `json:"rest"`
	Total float64 `json:"total"`
}

func energyJSON(e sim.Energy) EnergyJSON {
	return EnergyJSON{CPU: e.CPU, L2: e.L2, Mem: e.Mem, Rest: e.Rest, Total: e.Total()}
}

// AppJSON is one application's outcome within a run.
type AppJSON struct {
	Core         int     `json:"core"`
	App          string  `json:"app"`
	Instructions uint64  `json:"instructions"`
	FinishTime   float64 `json:"finish_time_seconds"`
}

// BaselineJSON summarizes the shared no-DVFS reference run.
type BaselineJSON struct {
	Epochs   int        `json:"epochs"`
	WallTime float64    `json:"wall_time_seconds"`
	Energy   EnergyJSON `json:"energy_joules"`
}

// SimulateResult is the response body of a completed simulate job: the
// policy run, its baseline, and the paper's headline metrics. Every float
// is carried through JSON bit-exactly (encoding/json round-trips float64),
// so results are diffable against the CLIs.
type SimulateResult struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`

	Epochs   int        `json:"epochs"`
	WallTime float64    `json:"wall_time_seconds"`
	Energy   EnergyJSON `json:"energy_joules"`
	Apps     []AppJSON  `json:"apps"`

	Baseline BaselineJSON `json:"baseline"`

	FullSavings      float64   `json:"full_savings"`
	CPUSavings       float64   `json:"cpu_savings"`
	MemSavings       float64   `json:"mem_savings"`
	Degradations     []float64 `json:"degradations"`
	AvgDegradation   float64   `json:"avg_degradation"`
	WorstDegradation float64   `json:"worst_degradation"`
}

// simulateResult builds the response from an outcome.
func simulateResult(q SimulateRequest, o *experiments.Outcome) SimulateResult {
	res := SimulateResult{
		Workload: q.Workload,
		Policy:   q.Policy,
		Epochs:   o.Run.Epochs,
		WallTime: o.Run.WallTime,
		Energy:   energyJSON(o.Run.Energy),
		Baseline: BaselineJSON{
			Epochs:   o.Base.Epochs,
			WallTime: o.Base.WallTime,
			Energy:   energyJSON(o.Base.Energy),
		},
		FullSavings:      o.FullSavings(),
		CPUSavings:       o.CPUSavings(),
		MemSavings:       o.MemSavings(),
		Degradations:     o.Degradations(),
		AvgDegradation:   o.AvgDegradation(),
		WorstDegradation: o.WorstDegradation(),
	}
	for _, a := range o.Run.Apps {
		res.Apps = append(res.Apps, AppJSON{
			Core:         a.Core,
			App:          a.App,
			Instructions: a.Instructions,
			FinishTime:   a.FinishTime,
		})
	}
	return res
}

// SweepRow is one (workload, policy) cell of a sweep response.
type SweepRow struct {
	Workload         string  `json:"workload"`
	Policy           string  `json:"policy"`
	Epochs           int     `json:"epochs"`
	FullSavings      float64 `json:"full_savings"`
	AvgDegradation   float64 `json:"avg_degradation"`
	WorstDegradation float64 `json:"worst_degradation"`
}

// SweepResult is the response body of a completed sweep job, rows in
// request (workloads-major) order.
type SweepResult struct {
	Bound        float64    `json:"bound"`
	Instructions uint64     `json:"instructions"`
	Rows         []SweepRow `json:"rows"`
}

// isCancellation reports whether err stems from context cancellation rather
// than a deterministic simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runCell executes one (workload, policy) configuration against its shared
// baseline. The baseline is memoized in the experiments runner — keyed only
// by the fields that change baseline behaviour — so concurrent and repeated
// requests over the same workload run one baseline simulation total, the
// same sharing the figure generators rely on. The policy run always
// executes here (never via the runner's outcome cache) so the per-epoch
// stream fires on every cache-missing job.
func (s *Server) runCell(ctx context.Context, q SimulateRequest, onEpoch func(sim.EpochRecord)) (*experiments.Outcome, error) {
	base, err := s.runner.BaselineContext(ctx, q.Workload, q.mutateBase, q.baselineKey())
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Mix: workload.MustGet(q.Workload)}
	q.mutate(&cfg)
	// Draw the platform tables from the runner's shared cache: a sweep's
	// worth of identical-platform cells builds the ladder columns and memory
	// models once across the whole worker pool, not once per evaluator.
	pcfg := cfg.PolicyConfig()
	pcfg.Tables = s.runner.Tables()
	pol, err := experiments.NewPolicy(experiments.PolicyName(q.Policy), pcfg)
	if err != nil {
		return nil, err
	}
	if pol != nil { // Baseline runs have no policy, hence no search to time
		cfg.Policy = timed(pol, &s.metrics)
	}
	cfg.OnEpoch = onEpoch
	eng, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := eng.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	s.metrics.epochs.Add(int64(res.Epochs))
	return &experiments.Outcome{Base: base, Run: res}, nil
}

// executeSimulate runs a simulate job to a marshaled SimulateResult.
func (s *Server) executeSimulate(ctx context.Context, j *Job) (json.RawMessage, error) {
	q := *j.simReq
	var onEpoch func(sim.EpochRecord)
	if q.Stream {
		onEpoch = j.publishEpoch
	}
	o, err := s.runCell(ctx, q, onEpoch)
	if err != nil {
		return nil, err
	}
	return json.Marshal(simulateResult(q, o))
}

// executeSweep runs every cell of a sweep job sequentially (the job itself
// is the unit of worker-pool scheduling; cells share baselines through the
// runner) to a marshaled SweepResult.
func (s *Server) executeSweep(ctx context.Context, j *Job) (json.RawMessage, error) {
	q := *j.sweepReq
	out := SweepResult{Bound: q.Bound, Instructions: q.Instructions}
	for _, w := range q.Workloads {
		for _, p := range q.Policies {
			o, err := s.runCell(ctx, q.cell(w, p), nil)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, SweepRow{
				Workload:         w,
				Policy:           p,
				Epochs:           o.Run.Epochs,
				FullSavings:      o.FullSavings(),
				AvgDegradation:   o.AvgDegradation(),
				WorstDegradation: o.WorstDegradation(),
			})
		}
	}
	return json.Marshal(out)
}
