package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"coscale/internal/experiments"
)

// goldenBudget keeps golden runs fast while still spanning several epochs.
const goldenBudget = 2_000_000

// bitsEqual compares float64s for bit identity (test files are outside the
// floateq lint scope; exactness is the point here).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeJob(t *testing.T, body []byte) jobJSON {
	t.Helper()
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("decode job: %v\nbody: %s", err, body)
	}
	return j
}

// TestServerSimulateGoldenVsRunner pins the serving contract: a simulate
// request answered over HTTP is bit-identical to the same configuration
// executed through experiments.Runner (the engine the CLIs use). Requests
// run concurrently to also exercise the admission path under load.
func TestServerSimulateGoldenVsRunner(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		workload string
		policy   experiments.PolicyName
	}{
		{"MID1", experiments.CoScaleName},
		{"ILP1", experiments.MemScaleName},
		{"MEM1", experiments.CoScaleName},
		{"MID1", experiments.Baseline},
	}

	// The reference: the same (mix, policy) cells through the experiments
	// runner, exactly as coscale-experiments would run them.
	ref := experiments.NewRunner(goldenBudget)
	want := make([]*experiments.Outcome, len(cases))
	for i, c := range cases {
		o, err := ref.Execute(c.workload, c.policy, nil, "golden")
		if err != nil {
			t.Fatal(err)
		}
		want[i] = o
	}

	results := make([]SimulateResult, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, workload string, policy experiments.PolicyName) {
			defer wg.Done()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate?wait=1", SimulateRequest{
				Workload:     workload,
				Policy:       string(policy),
				Instructions: goldenBudget,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s/%s: status %d: %s", workload, policy, resp.StatusCode, body)
				return
			}
			job := decodeJob(t, body)
			if job.State != StateDone {
				t.Errorf("%s/%s: job state %s (error %q)", workload, policy, job.State, job.Error)
				return
			}
			if err := json.Unmarshal(job.Result, &results[i]); err != nil {
				t.Errorf("%s/%s: decode result: %v", workload, policy, err)
			}
		}(i, c.workload, c.policy)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, c := range cases {
		got, o := results[i], want[i]
		name := fmt.Sprintf("%s/%s", c.workload, c.policy)
		checks := []struct {
			field    string
			got, ref float64
		}{
			{"energy.total", got.Energy.Total, o.Run.Energy.Total()},
			{"energy.cpu", got.Energy.CPU, o.Run.Energy.CPU},
			{"energy.l2", got.Energy.L2, o.Run.Energy.L2},
			{"energy.mem", got.Energy.Mem, o.Run.Energy.Mem},
			{"energy.rest", got.Energy.Rest, o.Run.Energy.Rest},
			{"wall_time", got.WallTime, o.Run.WallTime},
			{"baseline.wall_time", got.Baseline.WallTime, o.Base.WallTime},
			{"baseline.energy.total", got.Baseline.Energy.Total, o.Base.Energy.Total()},
			{"full_savings", got.FullSavings, o.FullSavings()},
			{"cpu_savings", got.CPUSavings, o.CPUSavings()},
			{"mem_savings", got.MemSavings, o.MemSavings()},
			{"avg_degradation", got.AvgDegradation, o.AvgDegradation()},
			{"worst_degradation", got.WorstDegradation, o.WorstDegradation()},
		}
		for _, ch := range checks {
			if !bitsEqual(ch.got, ch.ref) {
				t.Errorf("%s: %s = %v (bits %x), runner says %v (bits %x)",
					name, ch.field, ch.got, math.Float64bits(ch.got), ch.ref, math.Float64bits(ch.ref))
			}
		}
		if got.Epochs != o.Run.Epochs {
			t.Errorf("%s: epochs %d, runner says %d", name, got.Epochs, o.Run.Epochs)
		}
		if len(got.Apps) != len(o.Run.Apps) {
			t.Fatalf("%s: %d apps, runner says %d", name, len(got.Apps), len(o.Run.Apps))
		}
		for k := range got.Apps {
			if !bitsEqual(got.Apps[k].FinishTime, o.Run.Apps[k].FinishTime) {
				t.Errorf("%s: app %d finish %v, runner says %v",
					name, k, got.Apps[k].FinishTime, o.Run.Apps[k].FinishTime)
			}
			if got.Apps[k].Instructions != o.Run.Apps[k].Instructions {
				t.Errorf("%s: app %d instructions %d, runner says %d",
					name, k, got.Apps[k].Instructions, o.Run.Apps[k].Instructions)
			}
		}
	}
}

// TestServerSweepGoldenVsRunner pins the sweep endpoint against the same
// cells executed through the runner.
func TestServerSweepGoldenVsRunner(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{
		Workloads:    []string{"MID1", "ILP1"},
		Policies:     []string{"CoScale", "MemScale"},
		Instructions: goldenBudget,
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/sweep?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, body)
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q)", job.State, job.Error)
	}
	var got SweepResult
	if err := json.Unmarshal(job.Result, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(got.Rows))
	}

	ref := experiments.NewRunner(goldenBudget)
	i := 0
	for _, w := range req.Workloads {
		for _, p := range req.Policies {
			o, err := ref.Execute(w, experiments.PolicyName(p), nil, "golden-sweep")
			if err != nil {
				t.Fatal(err)
			}
			row := got.Rows[i]
			if row.Workload != w || row.Policy != p {
				t.Fatalf("row %d is %s/%s, want %s/%s", i, row.Workload, row.Policy, w, p)
			}
			if !bitsEqual(row.FullSavings, o.FullSavings()) {
				t.Errorf("%s/%s: full_savings %v, runner says %v", w, p, row.FullSavings, o.FullSavings())
			}
			if !bitsEqual(row.WorstDegradation, o.WorstDegradation()) {
				t.Errorf("%s/%s: worst_degradation %v, runner says %v", w, p, row.WorstDegradation, o.WorstDegradation())
			}
			i++
		}
	}
}
