package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// slowBudget with a raised max_epochs cap keeps a job running for tens of
// seconds (it would take ~500k epochs to finish), giving the test time to
// observe running state, queue overflow and mid-stream cancellation; every
// slow job is cancelled, never run to completion.
const (
	slowBudget    = 500_000_000_000
	slowMaxEpochs = 1_000_000
)

func getJSON(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(sb.String())
}

func deleteJob(t *testing.T, client *http.Client, base, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// waitState polls a job until it reaches want (fatal on timeout, or on a
// terminal state other than want).
func waitState(t *testing.T, client *http.Client, base, id, want string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, body := getJSON(t, client, base+"/v1/jobs/"+id)
		if status != http.StatusOK && status != http.StatusAccepted {
			t.Fatalf("job %s: status %d: %s", id, status, body)
		}
		j := decodeJob(t, body)
		if j.State == want {
			return j
		}
		if terminal(j.State) {
			t.Fatalf("job %s: reached %s while waiting for %s (error %q)", id, j.State, want, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: still %s after 60s waiting for %s", id, j.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue extracts one metric from the plaintext /metrics payload.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: parse %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestServeSmoke drives the acceptance scenario end to end on one server:
// a saturated worker pool, in-flight dedup, queue overflow with 429 and
// Retry-After, mid-stream cancellation that frees the worker slot, a cache
// hit on a repeated request reflected in /metrics, and graceful drain.
func TestServeSmoke(t *testing.T) {
	// Jitter is disabled so the Retry-After assertion below is exact; the
	// jittered spread has its own test in lease_test.go.
	s := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 16, RetryAfterJitterSeconds: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	slow := func(mig int) SimulateRequest {
		return SimulateRequest{Workload: "MID1", Instructions: slowBudget, MaxEpochs: slowMaxEpochs, MigrateEvery: mig, Stream: true}
	}

	// Occupy the single worker with a long streaming job.
	resp, body := postJSON(t, client, ts.URL+"/v1/simulate", slow(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: status %d: %s", resp.StatusCode, body)
	}
	jobA := decodeJob(t, body)
	waitState(t, client, ts.URL, jobA.ID, StateRunning)

	// An identical request while A is in flight attaches to A (dedup).
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate", slow(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dedup submit: status %d: %s", resp.StatusCode, body)
	}
	if dup := decodeJob(t, body); dup.ID != jobA.ID {
		t.Fatalf("dedup submit got job %s, want %s", dup.ID, jobA.ID)
	}

	// A distinct job fills the queue...
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate", slow(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: status %d: %s", resp.StatusCode, body)
	}
	jobB := decodeJob(t, body)

	// ...and the next distinct one overflows it: 429 plus a Retry-After hint.
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate", slow(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C: status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
	}

	// Stream A: read a couple of live epoch lines, cancel mid-stream, and
	// require the terminal "cancelled" line.
	streamResp, err := client.Get(ts.URL + "/v1/jobs/" + jobA.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	scanner := bufio.NewScanner(streamResp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	epochs, finals := 0, 0
	var finalType string
	for scanner.Scan() {
		var line streamLine
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("stream line %q: %v", scanner.Text(), err)
		}
		if line.Type == "epoch" {
			if line.CoreHz == nil || line.MemHz <= 0 {
				t.Fatalf("epoch line missing frequencies: %q", scanner.Text())
			}
			epochs++
			if epochs == 2 {
				if st := deleteJob(t, client, ts.URL, jobA.ID); st != http.StatusAccepted {
					t.Fatalf("cancel A: status %d", st)
				}
			}
			continue
		}
		finals++
		finalType = line.Type
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if epochs < 2 {
		t.Fatalf("saw %d epoch lines, want >= 2", epochs)
	}
	if finals != 1 || finalType != "cancelled" {
		t.Fatalf("stream ended with %d final lines (last %q), want one \"cancelled\"", finals, finalType)
	}
	waitState(t, client, ts.URL, jobA.ID, StateCancelled)

	// Cancelling A hands the worker to B; cancel that too.
	if st := deleteJob(t, client, ts.URL, jobB.ID); st != http.StatusAccepted {
		t.Fatalf("cancel B: status %d", st)
	}
	waitState(t, client, ts.URL, jobB.ID, StateCancelled)

	// A second cancel of a terminal job conflicts.
	if st := deleteJob(t, client, ts.URL, jobA.ID); st != http.StatusConflict {
		t.Fatalf("re-cancel A: status %d, want 409", st)
	}

	// The cancelled jobs freed the worker slot: a small job now completes.
	small := SimulateRequest{Workload: "ILP1", Instructions: 2_000_000}
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate?wait=1", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small job: status %d: %s", resp.StatusCode, body)
	}
	first := decodeJob(t, body)
	if first.State != StateDone || first.CacheHit {
		t.Fatalf("small job: state %s cacheHit %t, want fresh done", first.State, first.CacheHit)
	}

	// Repeating it is a cache hit with the identical result.
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate?wait=1", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat job: status %d: %s", resp.StatusCode, body)
	}
	second := decodeJob(t, body)
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("repeat job: state %s cacheHit %t, want cached done", second.State, second.CacheHit)
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("cached result differs from original:\n%s\nvs\n%s", second.Result, first.Result)
	}

	// A small sweep over two workloads on the identical default platform:
	// every cell's evaluators draw their platform tables from the runner's
	// shared cache, so the sweep adds cache hits but no new builds.
	sweep := SweepRequest{Workloads: []string{"ILP1", "MID1"}, Policies: []string{"CoScale"}, Instructions: 2_000_000}
	resp, body = postJSON(t, client, ts.URL+"/v1/sweep?wait=1", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep job: status %d: %s", resp.StatusCode, body)
	}

	// /metrics reflects all of the above.
	status, mbody := getJSON(t, client, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	m := string(mbody)
	for name, min := range map[string]float64{
		"coscale_cache_hits_total":       1,
		"coscale_cache_hit_rate":         0.01,
		"coscale_jobs_rejected_total":    1,
		"coscale_jobs_deduped_total":     1,
		"coscale_jobs_cancelled_total":   2,
		"coscale_jobs_done_total":        1,
		"coscale_epochs_simulated_total": 1,
		"coscale_search_decisions_total": 1,
		"coscale_search_duration_ns_sum": 1,
		"coscale_search_duration_ns_max": 1,
	} {
		if v := metricValue(t, m, name); v < min {
			t.Errorf("%s = %v, want >= %v", name, v, min)
		}
	}
	if v := metricValue(t, m, "coscale_jobs_running"); v != 0 {
		t.Errorf("coscale_jobs_running = %v, want 0", v)
	}
	// Every policy run above — the streamed jobs, the small simulate pair,
	// and the whole sweep — described the identical default platform, so the
	// shared table cache built it exactly once and served every other
	// evaluator from that build.
	if v := metricValue(t, m, "coscale_tables_builds_total"); v != 1 {
		t.Errorf("coscale_tables_builds_total = %v, want exactly 1 (identical platforms share one build)", v)
	}
	if v := metricValue(t, m, "coscale_tables_cache_hits_total"); v < 3 {
		t.Errorf("coscale_tables_cache_hits_total = %v, want >= 3", v)
	}

	// The fleet agent's budget hook publishes the power-cap gauges: the
	// assigned slice, the fleet budget it came from, and a counter that
	// moves only when the slice actually changes.
	s.SetPowerCap(120, 360)
	s.SetPowerCap(120, 360) // identical slice: no rebalance counted
	s.SetPowerCap(90, 360)
	_, mbody = getJSON(t, client, ts.URL+"/metrics")
	m = string(mbody)
	if v := metricValue(t, m, "coscale_powercap_budget_watts"); v != 360 {
		t.Errorf("coscale_powercap_budget_watts = %v, want 360", v)
	}
	if v := metricValue(t, m, "coscale_powercap_assigned_watts"); v != 90 {
		t.Errorf("coscale_powercap_assigned_watts = %v, want 90", v)
	}
	if v := metricValue(t, m, "coscale_powercap_rebalances_total"); v != 2 {
		t.Errorf("coscale_powercap_rebalances_total = %v, want 2 (one initial assignment, one change)", v)
	}
	if asg, fleetB := s.PowerCap(); asg != 90 || fleetB != 360 {
		t.Errorf("PowerCap() = (%v, %v), want (90, 360)", asg, fleetB)
	}

	// Graceful drain: returns once idle, and submissions refuse with 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, body = postJSON(t, client, ts.URL+"/v1/simulate", small)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d: %s", resp.StatusCode, body)
	}
	// Liveness stays green while draining; readiness flips to 503 and
	// reports the drain so a coordinator stops routing here.
	status, hbody := getJSON(t, client, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("post-drain healthz: status %d body %s", status, hbody)
	}
	status, rbody := getJSON(t, client, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(rbody), `"draining":true`) {
		t.Fatalf("post-drain readyz: status %d body %s", status, rbody)
	}
}

// TestServerValidation covers the API error paths.
func TestServerValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(path, body string) (int, string) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/simulate", `{"workload":"NOPE"}`, http.StatusBadRequest},
		{"/v1/simulate", `{}`, http.StatusBadRequest},
		{"/v1/simulate", `{"workload":"MEM1","policy":"Magic"}`, http.StatusBadRequest},
		{"/v1/simulate", `{"workload":"MEM1","typo_field":1}`, http.StatusBadRequest},
		{"/v1/simulate", `{"workload":"MEM1"} trailing`, http.StatusBadRequest},
		{"/v1/sweep", `{"workloads":["MEM1","MEM1"]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, body := post(c.path, c.body)
		if status != c.status {
			t.Errorf("POST %s %s: status %d, want %d (%s)", c.path, c.body, status, c.status, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("POST %s %s: error body %q lacks error field", c.path, c.body, body)
		}
	}

	if status, _ := getJSON(t, client, ts.URL+"/v1/jobs/nope"); status != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", status)
	}
	if st := deleteJob(t, client, ts.URL, "nope"); st != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", st)
	}
}
