package fastcap

import (
	"errors"
	"fmt"
	"math"
)

// Strategy selects how the Allocator splits the global budget.
type Strategy int

const (
	// Fair is max-min water-filling over normalized slowdown: repeatedly
	// buy the next frontier step for whichever node currently suffers the
	// worst slowdown, until no node's next step fits in the remaining
	// budget. This is the FastCap fairness guarantee — no node can be made
	// better off without making an already-worse node worse.
	Fair Strategy = iota
	// Greedy spends each remaining watt wherever it buys the most slowdown
	// reduction per watt anywhere in the fleet, ignoring who is worst off.
	// Efficient in aggregate, unfair under pressure.
	Greedy
	// Uniform is the static reference split: budget/N to every node, each
	// node independently picking its best point under its slice. A node
	// whose floor exceeds its slice is clamped to the floor, so unlike
	// Fair/Greedy the uniform split only conserves the total budget when
	// every node's floor fits in budget/N.
	Uniform
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Fair:
		return "fair"
	case Greedy:
		return "greedy"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ErrBudgetInfeasible reports a global budget below the sum of the nodes'
// minimum achievable powers: even with every node clamped to its
// all-minimum-frequency floor the fleet exceeds the cap. The assignments
// returned alongside it are those floors — the closest reachable split.
var ErrBudgetInfeasible = errors.New("fastcap: global budget infeasible")

// Node is one allocation target: a stable identifier and its current
// frontier. IDs must be unique; allocation arithmetic runs in sorted-ID
// order so results are independent of the slice order callers pass.
type Node struct {
	ID string
	F  *Frontier
}

// Assignment is one node's slice of the global budget: the watts granted
// and the frontier point that grant purchases. Assignments are returned in
// the same order as the input nodes.
type Assignment struct {
	Node  string
	Watts float64
	Point int
}

// Allocator splits a global power budget across node frontiers under one of
// the three strategies. It is not safe for concurrent use; its scratch
// state exists so that steady-state Allocate calls are allocation-free.
type Allocator struct {
	Strategy Strategy

	order  []int
	cur    []int
	frozen []bool
}

// Allocate splits budget across nodes, appending one Assignment per node to
// out (pass out[:0] to reuse its backing array). The result is
// Float64bits-deterministic: every floating-point reduction and every
// worst-node/best-gain selection scans nodes in sorted-ID order with
// first-wins ties, so permuting the input yields bit-identical watts for
// each node ID. When the budget cannot cover even the all-minimum floors,
// every node is assigned its floor and the error wraps ErrBudgetInfeasible.
func (a *Allocator) Allocate(budget float64, nodes []Node, out []Assignment) ([]Assignment, error) {
	if len(nodes) == 0 {
		return out, nil
	}
	if budget <= 0 || math.IsNaN(budget) {
		return out, fmt.Errorf("fastcap: budget %g W must be positive", budget)
	}
	for i := range nodes {
		if nodes[i].F == nil || nodes[i].F.Len() == 0 {
			return out, fmt.Errorf("fastcap: node %q has an empty frontier", nodes[i].ID)
		}
	}

	n := len(nodes)
	a.order = resizeInts(a.order, n)
	for i := range a.order {
		a.order[i] = i
	}
	// Insertion sort by node ID (sort.Slice's closure allocates; n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && nodes[a.order[j]].ID < nodes[a.order[j-1]].ID; j-- {
			a.order[j], a.order[j-1] = a.order[j-1], a.order[j]
		}
	}
	for k := 1; k < n; k++ {
		if nodes[a.order[k]].ID == nodes[a.order[k-1]].ID {
			return out, fmt.Errorf("fastcap: duplicate node ID %q", nodes[a.order[k]].ID)
		}
	}

	a.cur = resizeInts(a.cur, n)
	for i := range a.cur {
		a.cur[i] = 0
	}

	// Floors first, summed in ID order for permutation invariance. The sum
	// is formed before comparing so a budget exactly equal to the fleet
	// minimum is feasible (sequentially subtracting the floors instead
	// can go a ulp negative on the same inputs).
	floorSum := 0.0
	for _, i := range a.order {
		floorSum += nodes[i].F.MinWatts()
	}
	if floorSum > budget {
		for i := range nodes {
			out = append(out, Assignment{Node: nodes[i].ID, Watts: nodes[i].F.MinWatts(), Point: 0})
		}
		return out, fmt.Errorf("%w: %g W below the %g W fleet minimum",
			ErrBudgetInfeasible, budget, floorSum)
	}
	remaining := budget - floorSum

	switch a.Strategy {
	case Uniform:
		a.allocateUniform(budget, nodes)
	case Greedy:
		a.climb(remaining, nodes, greedyPick)
	default:
		a.climb(remaining, nodes, fairPick)
	}

	for i := range nodes {
		out = append(out, Assignment{
			Node:  nodes[i].ID,
			Watts: nodes[i].F.Watts[a.cur[i]],
			Point: a.cur[i],
		})
	}
	return out, nil
}

// pickFunc selects which node (index into order) should climb next, or -1
// to stop. Both implementations scan in sorted-ID order with strict
// comparisons so ties resolve to the first (lowest-ID) candidate.
type pickFunc func(a *Allocator, nodes []Node) int

// climb repeatedly advances the picked node one frontier point as long as
// the step's incremental watts fit in the remaining budget; a node whose
// next step does not fit is frozen (water level reached). Returns the
// unspent remainder.
func (a *Allocator) climb(remaining float64, nodes []Node, pick pickFunc) float64 {
	n := len(nodes)
	if cap(a.frozen) < n {
		a.frozen = make([]bool, n)
	}
	a.frozen = a.frozen[:n]
	for i := range a.frozen {
		a.frozen[i] = nodes[i].F.Len() == 1
	}
	for {
		i := pick(a, nodes)
		if i < 0 {
			return remaining
		}
		f := nodes[i].F
		step := f.Watts[a.cur[i]+1] - f.Watts[a.cur[i]]
		if step > remaining {
			a.frozen[i] = true
			continue
		}
		remaining -= step
		a.cur[i]++
		if a.cur[i]+1 >= f.Len() {
			a.frozen[i] = true
		}
	}
}

// fairPick returns the unfrozen node with the worst current slowdown —
// the max-min water-filling rule.
func fairPick(a *Allocator, nodes []Node) int {
	best, worst := -1, math.Inf(-1)
	for _, i := range a.order {
		if a.frozen[i] {
			continue
		}
		if s := nodes[i].F.Slow[a.cur[i]]; s > worst {
			worst = s
			best = i
		}
	}
	return best
}

// greedyPick returns the unfrozen node whose next frontier step buys the
// most slowdown reduction per watt.
func greedyPick(a *Allocator, nodes []Node) int {
	best, bestGain := -1, math.Inf(-1)
	for _, i := range a.order {
		if a.frozen[i] {
			continue
		}
		f := nodes[i].F
		dW := f.Watts[a.cur[i]+1] - f.Watts[a.cur[i]]
		dS := f.Slow[a.cur[i]] - f.Slow[a.cur[i]+1]
		gain := math.Inf(1)
		if dW > 0 {
			gain = dS / dW
		}
		if gain > bestGain {
			bestGain = gain
			best = i
		}
	}
	return best
}

// allocateUniform gives every node an equal budget/N slice and picks each
// node's highest frontier point under its slice (its floor if even that
// does not fit — feasibility of the total was already checked, but a
// uniform split can still starve an expensive node below its floor).
func (a *Allocator) allocateUniform(budget float64, nodes []Node) {
	slice := budget / float64(len(nodes))
	for _, i := range a.order {
		f := nodes[i].F
		p := 0
		for p+1 < f.Len() && f.Watts[p+1] <= slice {
			p++
		}
		a.cur[i] = p
	}
}
