package fastcap

import (
	"errors"
	"math"
	"testing"

	"coscale/internal/approx"
	"coscale/internal/fault"
)

// synthFrontier builds a deterministic monotone frontier from a seed:
// strictly increasing watts, strictly decreasing slowdown ending at 1.
func synthFrontier(seed uint64, npts int) *Frontier {
	f := &Frontier{
		Watts: make([]float64, npts),
		Slow:  make([]float64, npts),
	}
	w := 40 + float64(fault.Mix64(seed)%1000)/50 // floor 40..60 W
	s := 1.0
	// Fill from the top (all-max) down so the last point has slowdown 1.
	for i := npts - 1; i >= 0; i-- {
		f.Slow[i] = s
		s += 0.02 + float64(fault.Mix64(seed^uint64(i)*0x9e37)%1000)/10000
	}
	for i := 0; i < npts; i++ {
		f.Watts[i] = w
		w += 3 + float64(fault.Mix64(seed^uint64(i)*0xc2b2)%1000)/200
	}
	return f
}

func synthNodes(seed uint64, n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		id := []byte{'n', '0' + byte(i/10), '0' + byte(i%10)}
		nodes[i] = Node{ID: string(id), F: synthFrontier(seed^uint64(i)*0x85eb, 4+int(fault.Mix64(seed^uint64(i))%8))}
	}
	return nodes
}

func totalWatts(asg []Assignment) float64 {
	// Conservation is checked over an ID-ordered sum to match the
	// allocator's own arithmetic order (n is tiny; insertion sort).
	sorted := append([]Assignment(nil), asg...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Node < sorted[j-1].Node; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	sum := 0.0
	for _, a := range sorted {
		sum += a.Watts
	}
	return sum
}

func fleetFloor(nodes []Node) float64 {
	sum := 0.0
	for _, n := range nodes {
		sum += n.F.MinWatts()
	}
	return sum
}

func fleetMax(nodes []Node) float64 {
	sum := 0.0
	for _, n := range nodes {
		sum += n.F.Watts[n.F.Len()-1]
	}
	return sum
}

// TestAllocateBitIdenticalAcrossOrderingsAndReplays is the seeded property
// test the issue pins determinism on: for every strategy and node count,
// allocations are Float64bits-identical across replays and across input
// permutations (rotations and full reversal of the node slice).
func TestAllocateBitIdenticalAcrossOrderingsAndReplays(t *testing.T) {
	for _, strat := range []Strategy{Fair, Greedy, Uniform} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			for trial := 0; trial < 8; trial++ {
				seed := uint64(0xFA57CA9)*uint64(trial+1) ^ uint64(n)<<32
				nodes := synthNodes(seed, n)
				span := fleetMax(nodes) - fleetFloor(nodes)
				budget := fleetFloor(nodes) + span*float64(fault.Mix64(seed)%100)/100

				a := &Allocator{Strategy: strat}
				ref, err := a.Allocate(budget, nodes, nil)
				if err != nil {
					t.Fatalf("%v n=%d trial %d: %v", strat, n, trial, err)
				}
				want := make(map[string]uint64, n)
				for _, g := range ref {
					want[g.Node] = math.Float64bits(g.Watts)
				}

				check := func(label string, perm []Node) {
					t.Helper()
					got, err := a.Allocate(budget, perm, nil)
					if err != nil {
						t.Fatalf("%v n=%d trial %d %s: %v", strat, n, trial, label, err)
					}
					for _, g := range got {
						if math.Float64bits(g.Watts) != want[g.Node] {
							t.Fatalf("%v n=%d trial %d %s: node %s watts %x != %x",
								strat, n, trial, label, g.Node, math.Float64bits(g.Watts), want[g.Node])
						}
					}
				}

				check("replay", nodes)
				rev := make([]Node, n)
				for i := range nodes {
					rev[n-1-i] = nodes[i]
				}
				check("reversed", rev)
				for _, rot := range []int{1, n / 2} {
					perm := append(append([]Node(nil), nodes[rot%n:]...), nodes[:rot%n]...)
					check("rotated", perm)
				}
			}
		}
	}
}

func TestAllocateConservesBudget(t *testing.T) {
	for _, strat := range []Strategy{Fair, Greedy} {
		for trial := 0; trial < 16; trial++ {
			seed := uint64(0xB1D9E7)*uint64(trial+1) + 7
			nodes := synthNodes(seed, 6)
			budget := fleetFloor(nodes) + (fleetMax(nodes)-fleetFloor(nodes))*float64(trial)/16
			a := &Allocator{Strategy: strat}
			asg, err := a.Allocate(budget, nodes, nil)
			if err != nil {
				t.Fatalf("%v trial %d: %v", strat, trial, err)
			}
			if sum := totalWatts(asg); sum > budget*(1+1e-12) {
				t.Errorf("%v trial %d: assignments %.6f W exceed budget %.6f W", strat, trial, sum, budget)
			}
		}
	}
}

func TestAllocateInfeasibleBudgetClampsToFloors(t *testing.T) {
	nodes := synthNodes(42, 4)
	a := &Allocator{Strategy: Fair}
	asg, err := a.Allocate(fleetFloor(nodes)*0.5, nodes, nil)
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("err = %v, want ErrBudgetInfeasible", err)
	}
	for i, g := range asg {
		if g.Point != 0 {
			t.Errorf("node %s not at floor: point %d", g.Node, g.Point)
		}
		if !approx.Close(g.Watts, nodes[i].F.MinWatts()) {
			t.Errorf("node %s watts %.3f != floor %.3f", g.Node, g.Watts, nodes[i].F.MinWatts())
		}
	}
}

func TestAllocateRejectsBadInput(t *testing.T) {
	nodes := synthNodes(7, 2)
	a := &Allocator{}
	if _, err := a.Allocate(0, nodes, nil); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := a.Allocate(math.NaN(), nodes, nil); err == nil {
		t.Error("NaN budget accepted")
	}
	if _, err := a.Allocate(100, []Node{{ID: "x", F: &Frontier{}}}, nil); err == nil {
		t.Error("empty frontier accepted")
	}
	dup := []Node{nodes[0], nodes[0]}
	if _, err := a.Allocate(1000, dup, nil); err == nil {
		t.Error("duplicate node IDs accepted")
	}
	if got, err := a.Allocate(100, nil, nil); err != nil || len(got) != 0 {
		t.Errorf("empty fleet: %v, %d assignments", err, len(got))
	}
}

func TestAllocateUniformSlices(t *testing.T) {
	nodes := synthNodes(99, 4)
	budget := fleetMax(nodes) * 0.8
	slice := budget / 4
	a := &Allocator{Strategy: Uniform}
	asg, err := a.Allocate(budget, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range asg {
		floor := nodes[i].F.MinWatts()
		if g.Watts > slice*(1+1e-12) && g.Watts > floor*(1+1e-12) {
			t.Errorf("node %s assigned %.2f W over slice %.2f W and floor %.2f W", g.Node, g.Watts, slice, floor)
		}
	}
}

// TestFairBeatsGreedyOnWorstNode pins the fairness property on a crafted
// fleet: one node with steep, cheap gains and one stuck with expensive
// steps. Greedy showers the cheap node; Fair lifts the worst-off one.
func TestFairBeatsGreedyOnWorstNode(t *testing.T) {
	cheap := &Frontier{ // big slowdown relief per watt
		Watts: []float64{50, 52, 54, 56, 58},
		Slow:  []float64{1.30, 1.22, 1.14, 1.07, 1.00},
	}
	costly := &Frontier{ // worst off, and each step costs real watts
		Watts: []float64{50, 60, 70, 80, 90},
		Slow:  []float64{1.60, 1.45, 1.30, 1.15, 1.00},
	}
	nodes := []Node{{ID: "a", F: cheap}, {ID: "b", F: costly}}
	budget := 128.0 // enough for the cheap node plus ~2 costly steps

	worst := func(strat Strategy) float64 {
		a := &Allocator{Strategy: strat}
		asg, err := a.Allocate(budget, nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := 0.0
		for i, g := range asg {
			if s := nodes[i].F.Slow[g.Point]; s > w {
				w = s
			}
		}
		return w
	}
	fair, greedy := worst(Fair), worst(Greedy)
	if fair > greedy {
		t.Errorf("fair worst-node slowdown %.3f > greedy %.3f", fair, greedy)
	}
	if !(fair < greedy) {
		t.Logf("fair == greedy (%.3f) on this fleet; property still holds", fair)
	}
}

func TestAllocateSteadyStateAllocationFree(t *testing.T) {
	nodes := synthNodes(1234, 8)
	budget := (fleetFloor(nodes) + fleetMax(nodes)) / 2
	for _, strat := range []Strategy{Fair, Greedy, Uniform} {
		a := &Allocator{Strategy: strat}
		out := make([]Assignment, 0, len(nodes))
		var err error
		if out, err = a.Allocate(budget, nodes, out[:0]); err != nil { // warm scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			out, err = a.Allocate(budget, nodes, out[:0])
		})
		if err != nil {
			t.Fatal(err)
		}
		if allocs != 0 {
			t.Errorf("%v: %v allocs per steady-state Allocate, want 0", strat, allocs)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{3, 3, 3, 3}); !approx.Close(got, 1) {
		t.Errorf("equal shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !approx.Close(got, 0.25) {
		t.Errorf("single dominant: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero: %v, want 0", got)
	}
	uneven := JainIndex([]float64{1, 2, 3, 10})
	if !(uneven > 0.25 && uneven < 1) {
		t.Errorf("uneven shares: %v, want strictly between 1/n and 1", uneven)
	}
}
