package fastcap

import (
	"errors"
	"math"
	"testing"
	"time"

	"coscale/internal/approx"
	"coscale/internal/core"
	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/trace"
)

func testCfg(n int) policy.Config {
	return policy.Config{
		NCores:     n,
		CoreLadder: freq.DefaultCoreLadder(),
		MemLadder:  freq.DefaultMemLadder(),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(n),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
	}
}

func synthObs(cfg policy.Config, perCore []perf.CoreStats) policy.Observation {
	sv := perf.NewSolver(cfg.Mem)
	hz := make([]float64, len(perCore))
	for i := range hz {
		hz[i] = cfg.CoreLadder.MaxHz()
	}
	res := sv.Solve(perCore, hz, cfg.MemLadder.MaxHz())
	obs := policy.Observation{
		Window:     300e-6,
		CoreSteps:  policy.ZeroSteps(len(perCore)),
		Cores:      make([]policy.CoreObs, len(perCore)),
		MemRate:    res.MemRate,
		MemLatency: res.Mem.Latency,
		UtilBus:    res.Mem.UtilBus,
		BusyFrac:   math.Min(1, res.Mem.UtilBank*8),
	}
	for i := range perCore {
		obs.Cores[i] = policy.CoreObs{
			Instructions: uint64(300e-6 / res.TPI[i]),
			Stats:        perCore[i],
			L2PerInstr:   perCore[i].Alpha,
			Mix:          trace.InstrMix{ALU: 0.3, FPU: 0.2, Branch: 0.1, LoadStore: 0.3},
			IPS:          1 / res.TPI[i],
		}
	}
	return obs
}

var (
	compute = perf.CoreStats{CPIBase: 1.1, Alpha: 0.003, StallL2: 7.5e-9, Beta: 0.0003,
		MemPerInstr: 0.0005, MLP: 1}
	memory = perf.CoreStats{CPIBase: 1.4, Alpha: 0.03, StallL2: 7.5e-9, Beta: 0.017,
		MemPerInstr: 0.022, MLP: 1}
)

// blend interpolates between the compute-bound and memory-bound fixtures:
// frac 0 is pure compute, 1 pure memory.
func blend(frac float64) perf.CoreStats {
	lerp := func(a, b float64) float64 { return a + (b-a)*frac }
	return perf.CoreStats{
		CPIBase:     lerp(compute.CPIBase, memory.CPIBase),
		Alpha:       lerp(compute.Alpha, memory.Alpha),
		StallL2:     compute.StallL2,
		Beta:        lerp(compute.Beta, memory.Beta),
		MemPerInstr: lerp(compute.MemPerInstr, memory.MemPerInstr),
		MLP:         1,
	}
}

func mixObs(cfg policy.Config, frac float64) policy.Observation {
	perCore := make([]perf.CoreStats, cfg.NCores)
	for i := range perCore {
		perCore[i] = blend(frac)
	}
	return synthObs(cfg, perCore)
}

func TestBuilderFrontierInvariants(t *testing.T) {
	cfg := testCfg(8)
	obs := mixObs(cfg, 0.7)
	var b Builder
	var f Frontier
	if err := b.Build(&f, cfg, obs); err != nil {
		t.Fatal(err)
	}
	if f.Len() < 2 {
		t.Fatalf("frontier has %d points, want at least floor and all-max", f.Len())
	}
	for i := 1; i < f.Len(); i++ {
		if !(f.Watts[i] > f.Watts[i-1]) {
			t.Errorf("watts not strictly ascending at %d: %.4f then %.4f", i, f.Watts[i-1], f.Watts[i])
		}
		if f.Slow[i] > f.Slow[i-1] {
			t.Errorf("slowdown not non-increasing at %d: %.4f then %.4f", i, f.Slow[i-1], f.Slow[i])
		}
	}
	if !approx.Close(f.Slow[f.Len()-1], 1) {
		t.Errorf("all-max point slowdown %.6f, want 1", f.Slow[f.Len()-1])
	}
	steps, mem := f.Point(0)
	if mem != cfg.MemLadder.Steps()-1 {
		t.Errorf("floor memory step %d, want bottom %d", mem, cfg.MemLadder.Steps()-1)
	}
	for i, s := range steps {
		if s != cfg.CoreLadder.Steps()-1 {
			t.Errorf("floor core %d step %d, want bottom", i, s)
		}
	}
	// The top point is the cheapest configuration reaching best
	// performance; its steps need not be all-max (a free move can
	// dominate all-max at equal slowdown), but it must be valid.
	topSteps, topMem := f.Point(f.Len() - 1)
	if topMem < 0 || topMem >= cfg.MemLadder.Steps() || len(topSteps) != cfg.NCores {
		t.Errorf("top point invalid: mem=%d cores=%v", topMem, topSteps)
	}
}

// TestFrontierFloorMatchesPowerCapFloor pins the boundary contract the
// rebalancer relies on: the frontier's floor watts are bit-identical to
// the minimum-achievable power core.PowerCap checks feasibility against
// (both run the memoized table path), so an assignment at the floor is
// feasible rather than spuriously infeasible.
func TestFrontierFloorMatchesPowerCapFloor(t *testing.T) {
	cfg := testCfg(8)
	obs := mixObs(cfg, 0.5)
	var b Builder
	var f Frontier
	if err := b.Build(&f, cfg, obs); err != nil {
		t.Fatal(err)
	}
	pc, err := core.NewPowerCap(cfg, f.MinWatts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.DecideCapped(obs); err != nil {
		t.Errorf("cap at frontier floor %.6f W reported infeasible: %v", f.MinWatts(), err)
	}
	if err := pc.SetCap(math.Nextafter(f.MinWatts(), 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.DecideCapped(obs); !errors.Is(err, core.ErrCapInfeasible) {
		t.Errorf("cap one ulp below the floor: err = %v, want ErrCapInfeasible", err)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	var b Builder
	var f Frontier
	if err := b.Build(&f, policy.Config{}, policy.Observation{}); err == nil {
		t.Error("invalid config accepted")
	}
	cfg := testCfg(4)
	if err := b.Build(&f, cfg, mixObs(testCfg(8), 0.5)); err == nil {
		t.Error("core-count mismatch accepted")
	}
}

func TestRebalancerSingleNode(t *testing.T) {
	cfg := testCfg(4)
	r := NewRebalancer(Fair)
	if err := r.AddNode("solo", cfg); err != nil {
		t.Fatal(err)
	}
	obs := []policy.Observation{mixObs(cfg, 0.3)}

	full := policy.NewEvaluator(cfg, obs[0]).Baseline().Power.Total
	eps, err := r.Epoch(full*1.1, obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].ID != "solo" {
		t.Fatalf("epochs = %+v", eps)
	}
	if eps[0].Clamped {
		t.Error("generous budget clamped the only node")
	}
	if !approx.Close(eps[0].MaxSlow, 1) {
		t.Errorf("generous budget slowdown %.4f, want 1", eps[0].MaxSlow)
	}
	if r.Rebalances() != 1 {
		t.Errorf("rebalances after first epoch = %d, want 1", r.Rebalances())
	}
	// Same mix again: assignment unchanged, no new rebalance counted.
	if _, err := r.Epoch(full*1.1, obs, nil); err != nil {
		t.Fatal(err)
	}
	if r.Rebalances() != 1 {
		t.Errorf("identical epoch counted as a rebalance: %d", r.Rebalances())
	}
}

func TestRebalancerZeroHeadroom(t *testing.T) {
	cfg := testCfg(4)
	r := NewRebalancer(Fair)
	for _, id := range []string{"a", "b", "c"} {
		if err := r.AddNode(id, cfg); err != nil {
			t.Fatal(err)
		}
	}
	obs := []policy.Observation{mixObs(cfg, 0.2), mixObs(cfg, 0.5), mixObs(cfg, 0.9)}

	// Find the fleet floor by probing with an impossible budget.
	eps, err := r.Epoch(1e-3, obs, nil)
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("err = %v, want ErrBudgetInfeasible", err)
	}
	floor := 0.0
	for _, e := range eps {
		floor += e.Assigned
		if !e.Clamped {
			t.Errorf("node %s not marked clamped under infeasible budget", e.ID)
		}
	}

	// Zero headroom: exactly the floor is feasible, everyone at minimum.
	eps, err = r.Epoch(floor, obs, nil)
	if err != nil {
		t.Fatalf("budget exactly at fleet floor: %v", err)
	}
	sum := 0.0
	for _, e := range eps {
		sum += e.Assigned
		if e.Clamped {
			t.Errorf("node %s clamped at zero headroom", e.ID)
		}
	}
	if sum > floor*(1+1e-12) {
		t.Errorf("assignments %.6f W exceed zero-headroom budget %.6f W", sum, floor)
	}
}

func TestRebalancerJoinLeaveConservesBudget(t *testing.T) {
	cfg := testCfg(4)
	r := NewRebalancer(Fair)
	for _, id := range []string{"a", "b", "c"} {
		if err := r.AddNode(id, cfg); err != nil {
			t.Fatal(err)
		}
	}
	budget := 3.2 * policy.NewEvaluator(cfg, mixObs(cfg, 0.5)).Baseline().Power.Total

	obsFor := func(n int, epoch int) []policy.Observation {
		obs := make([]policy.Observation, n)
		for i := range obs {
			obs[i] = mixObs(cfg, math.Mod(0.2*float64(i+1)+0.1*float64(epoch), 1))
		}
		return obs
	}
	checkConserved := func(eps []NodeEpoch) {
		t.Helper()
		sum := 0.0
		for _, e := range eps {
			sum += e.Assigned
		}
		if sum > budget*(1+1e-12) {
			t.Errorf("assignments %.3f W exceed budget %.3f W", sum, budget)
		}
	}

	var eps []NodeEpoch
	var err error
	for epoch := 0; epoch < 2; epoch++ {
		if eps, err = r.Epoch(budget, obsFor(3, epoch), eps[:0]); err != nil {
			t.Fatal(err)
		}
		checkConserved(eps)
	}

	// A node joins mid-run.
	if err := r.AddNode("d", cfg); err != nil {
		t.Fatal(err)
	}
	if err := r.AddNode("d", cfg); err == nil {
		t.Error("duplicate join accepted")
	}
	before := r.Rebalances()
	if eps, err = r.Epoch(budget, obsFor(4, 2), eps[:0]); err != nil {
		t.Fatal(err)
	}
	checkConserved(eps)
	if len(eps) != 4 {
		t.Fatalf("%d epochs after join, want 4", len(eps))
	}
	if r.Rebalances() == before {
		t.Error("join did not register as a rebalance")
	}

	// A node leaves mid-run.
	if !r.RemoveNode("b") {
		t.Error("RemoveNode(b) reported absent")
	}
	if r.RemoveNode("b") {
		t.Error("double remove reported present")
	}
	if eps, err = r.Epoch(budget, obsFor(3, 3), eps[:0]); err != nil {
		t.Fatal(err)
	}
	checkConserved(eps)
	ids := r.NodeIDs(nil)
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "c" || ids[2] != "d" {
		t.Errorf("node IDs after leave = %v", ids)
	}
}

// TestRebalancerReplayBitIdentical drives two rebalancers through the same
// seeded epoch sequence — shifting mixes and a budget trace with a step
// down and a transient dip — and requires Float64bits-identical outcomes.
func TestRebalancerReplayBitIdentical(t *testing.T) {
	cfg := testCfg(4)
	const epochs = 8
	budgetAt := func(e int, full float64) float64 {
		switch {
		case e < 3:
			return full
		case e == 5:
			return full * 0.6 // transient dip
		default:
			return full * 0.8
		}
	}
	run := func() [][]NodeEpoch {
		r := NewRebalancer(Fair)
		for _, id := range []string{"n0", "n1", "n2"} {
			if err := r.AddNode(id, cfg); err != nil {
				t.Fatal(err)
			}
		}
		full := 3.0 * policy.NewEvaluator(cfg, mixObs(cfg, 0)).Baseline().Power.Total
		var hist [][]NodeEpoch
		for e := 0; e < epochs; e++ {
			obs := []policy.Observation{
				mixObs(cfg, math.Mod(0.13*float64(e), 1)),
				mixObs(cfg, math.Mod(0.31*float64(e)+0.4, 1)),
				mixObs(cfg, math.Mod(0.57*float64(e)+0.8, 1)),
			}
			eps, err := r.Epoch(budgetAt(e, full), obs, nil)
			if err != nil {
				t.Fatal(err)
			}
			hist = append(hist, eps)
		}
		return hist
	}
	h1, h2 := run(), run()
	for e := range h1 {
		for i := range h1[e] {
			a, b := h1[e][i], h2[e][i]
			if a.ID != b.ID || a.Clamped != b.Clamped ||
				math.Float64bits(a.Assigned) != math.Float64bits(b.Assigned) ||
				math.Float64bits(a.Power) != math.Float64bits(b.Power) ||
				math.Float64bits(a.MaxSlow) != math.Float64bits(b.MaxSlow) {
				t.Fatalf("epoch %d node %d diverged: %+v vs %+v", e, i, a, b)
			}
		}
	}
}

func TestRebalancerErrors(t *testing.T) {
	cfg := testCfg(4)
	r := NewRebalancer(Fair)
	if err := r.AddNode("", cfg); err == nil {
		t.Error("empty node ID accepted")
	}
	if err := r.AddNode("a", policy.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	if err := r.AddNode("a", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Epoch(100, nil, nil); err == nil {
		t.Error("observation-count mismatch accepted")
	}
	empty := NewRebalancer(Fair)
	if eps, err := empty.Epoch(100, nil, nil); err != nil || len(eps) != 0 {
		t.Errorf("empty fleet epoch: %v, %d entries", err, len(eps))
	}
}
