// Package fastcap allocates a global power budget across the nodes of a
// simulated fleet — the FastCap direction (Liu, Cox, Deng, Draper,
// Bianchini; PAPERS.md): efficient *and fair* power capping, promoted from
// the single-node core.PowerCap controller to a datacenter-scale problem.
//
// Each node is summarized by a power/performance Frontier: the Pareto menu
// of (watts, worst slowdown) operating points a PowerCap-style
// marginal-utility walk visits between all-max and all-min frequencies,
// built over the node's evaluator (and, through policy.Config.Tables, the
// shared per-platform table cache — one platform-column build per process
// for the whole fleet). The Allocator then splits the budget over those
// menus: Fair runs max-min water-filling over normalized slowdown —
// repeatedly buying the next frontier step for whichever node is currently
// worst off — Greedy spends each watt where it buys the most slowdown
// reduction anywhere in the fleet, and Uniform is the static budget/N
// reference split. The Rebalancer ties the pieces into the epoch loop:
// rebuild frontiers as workload mixes shift, reallocate, then run each
// node's core.PowerCap against its assigned slice.
//
// Determinism is load-bearing (the package is in the determinism lint
// scope): identical inputs produce Float64bits-identical assignments
// regardless of node input order — all budget arithmetic and all
// worst-node selections run in sorted-node-ID order — and the steady-state
// Allocate path is allocation-free, like the rest of the hot path.
package fastcap

import (
	"fmt"
	"math"

	"coscale/internal/policy"
)

// Frontier is one node's Pareto power/performance menu. Points are ordered
// by strictly increasing watts and strictly decreasing worst slowdown:
// point 0 is the all-minimum-frequency floor (cheapest, slowest), the last
// point is the cheapest configuration reaching the node's best slowdown
// (≈1, the all-max performance). Build one with a Builder.
type Frontier struct {
	Watts []float64 // predicted full-system power per point, ascending
	Slow  []float64 // predicted worst per-core slowdown per point, non-increasing

	steps [][]int // per-point core ladder steps
	mems  []int   // per-point memory ladder step
}

// Len returns the number of frontier points.
func (f *Frontier) Len() int { return len(f.Watts) }

// MinWatts returns the power of the all-minimum-frequency floor.
func (f *Frontier) MinWatts() float64 { return f.Watts[0] }

// Point returns the operating point behind frontier index i. The returned
// slice aliases the frontier's storage; callers must not mutate it.
func (f *Frontier) Point(i int) (coreSteps []int, memStep int) {
	return f.steps[i], f.mems[i]
}

// Builder constructs frontiers, reusing every work array across builds so a
// per-epoch rebuild settles into zero allocations once scratch is warm.
type Builder struct {
	ev policy.Evaluator

	cur   policy.Eval
	cand  policy.Eval
	best  policy.Eval
	steps []int
	trial []int

	// Walk recording (roughly descending watts); Pareto-filtered into the
	// Frontier.
	walkW     []float64
	walkS     []float64
	walkSteps [][]int
	walkMems  []int
	idx       []int
	keep      []int
}

// Build derives a node's frontier from its configuration and a profiling
// observation, writing into dst (grow-only scratch reuse). The walk is the
// PowerCap descent run to the very bottom with every visited configuration
// recorded: starting from all-max it repeatedly takes the move with the best
// Δpower/Δperformance utility, which yields the marginal-utility-ordered
// chain the water-filling allocator climbs back up.
func (b *Builder) Build(dst *Frontier, cfg policy.Config, obs policy.Observation) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("fastcap: %w", err)
	}
	if len(obs.Cores) != cfg.NCores {
		return fmt.Errorf("fastcap: observation has %d cores, config %d", len(obs.Cores), cfg.NCores)
	}
	// The table path is bit-identical to the direct path (DESIGN.md §10)
	// and turns each candidate evaluation into an incremental gather.
	b.ev.UseTables = true
	b.ev.Reset(cfg, obs)

	n := cfg.NCores
	b.steps = resizeInts(b.steps, n)
	for i := range b.steps {
		b.steps[i] = 0
	}
	memStep := 0
	b.ev.EvaluateBaselineInto(&b.cur)

	b.walkW = b.walkW[:0]
	b.walkS = b.walkS[:0]
	b.walkMems = b.walkMems[:0]
	nVisited := 0
	record := func(steps []int, mem int, e *policy.Eval) {
		b.walkW = append(b.walkW, e.Power.Total)
		b.walkS = append(b.walkS, e.MaxSlow)
		if nVisited < len(b.walkSteps) {
			b.walkSteps[nVisited] = resizeInts(b.walkSteps[nVisited], n)
		} else {
			b.walkSteps = append(b.walkSteps, make([]int, n))
		}
		copy(b.walkSteps[nVisited], steps)
		b.walkMems = append(b.walkMems, mem)
		nVisited++
	}
	record(b.steps, memStep, &b.cur)

	maxIters := cfg.MemLadder.Steps() + cfg.CoreLadder.Steps()*n
	for iter := 0; iter < maxIters; iter++ {
		mem, ok := b.bestMove(cfg, memStep)
		if !ok {
			break
		}
		memStep = mem
		b.cur, b.best = b.best, b.cur // adopt the chosen move's evaluation
		record(b.steps, memStep, &b.cur)
	}

	// Pareto-filter the visited set. The walk's watts are not strictly
	// monotone — shedding one core's frequency can relieve memory
	// contention enough to *improve* the worst slowdown — so visited
	// points are sorted by watts (stable insertion sort; the walk is
	// nearly sorted already) and swept keeping only strict improvements:
	// watts strictly ascending, slowdown strictly decreasing.
	b.idx = resizeInts(b.idx, nVisited)
	for i := range b.idx {
		b.idx[i] = nVisited - 1 - i // reverse: roughly ascending watts
	}
	for i := 1; i < nVisited; i++ {
		for j := i; j > 0 && b.walkW[b.idx[j]] < b.walkW[b.idx[j-1]]; j-- {
			b.idx[j], b.idx[j-1] = b.idx[j-1], b.idx[j]
		}
	}
	b.keep = b.keep[:0]
	for _, id := range b.idx {
		if len(b.keep) > 0 {
			last := b.keep[len(b.keep)-1]
			if b.walkW[id] <= b.walkW[last] || b.walkS[id] >= b.walkS[last] {
				continue
			}
		}
		b.keep = append(b.keep, id)
	}

	nPoints := len(b.keep)
	dst.Watts = resizeFloats(dst.Watts, nPoints)
	dst.Slow = resizeFloats(dst.Slow, nPoints)
	dst.mems = resizeInts(dst.mems, nPoints)
	if cap(dst.steps) < nPoints {
		dst.steps = make([][]int, nPoints)
	}
	dst.steps = dst.steps[:nPoints]
	for i, id := range b.keep {
		dst.Watts[i] = b.walkW[id]
		dst.Slow[i] = b.walkS[id]
		dst.mems[i] = b.walkMems[id]
		dst.steps[i] = resizeInts(dst.steps[i], n)
		copy(dst.steps[i], b.walkSteps[id])
	}
	return nil
}

// bestMove mutates b.steps (and returns the new memory step) to the
// single-step-down move with the best marginal utility, leaving its
// evaluation in b.best. Candidate order is fixed — memory first, then cores
// ascending — and ties keep the first candidate, so the walk is
// deterministic. It reports false when every ladder is at its bottom.
func (b *Builder) bestMove(cfg policy.Config, memStep int) (int, bool) {
	bestU := math.Inf(-1)
	bestCore := -1 // -1 = memory move
	found := false
	if !cfg.MemLadder.Bottom(memStep) {
		b.ev.EvaluateInto(&b.cand, b.steps, memStep+1)
		bestU = marginalUtility(b.cur.Power.Total-b.cand.Power.Total, b.cand.MaxSlow-b.cur.MaxSlow)
		b.best, b.cand = b.cand, b.best
		found = true
	}
	b.trial = resizeInts(b.trial, len(b.steps))
	copy(b.trial, b.steps)
	for i := range b.steps {
		if cfg.CoreLadder.Bottom(b.steps[i]) {
			continue
		}
		b.trial[i]++
		b.ev.EvaluateInto(&b.cand, b.trial, memStep)
		u := marginalUtility(b.cur.Power.Total-b.cand.Power.Total, b.cand.MaxSlow-b.cur.MaxSlow)
		if u > bestU || !found {
			bestU = u
			bestCore = i
			b.best, b.cand = b.cand, b.best
			found = true
		}
		b.trial[i]--
	}
	if !found {
		return memStep, false
	}
	if bestCore < 0 {
		return memStep + 1, true
	}
	b.steps[bestCore]++
	return memStep, true
}

// marginalUtility mirrors the CoScale search's Δpower/Δperformance score: a
// move that sheds power for free (no slowdown increase) has infinite
// utility; otherwise utility is watts saved per unit of slowdown added.
func marginalUtility(dPower, dPerf float64) float64 {
	if dPerf <= 1e-15 {
		if dPower > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return dPower / dPerf
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) over the given
// values: 1 when all are equal, approaching 1/n as one value dominates.
// An empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq <= 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// resizeFloats and resizeInts reuse scratch backing arrays without zeroing:
// every element is fully overwritten before it is read.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
