package fastcap

import (
	"errors"
	"fmt"
	"math"

	"coscale/internal/core"
	"coscale/internal/policy"
)

// NodeEpoch is one node's outcome for one rebalancing epoch: the watts it
// was assigned, the power and worst slowdown its PowerCap decision is
// predicted to realize under that assignment, and whether the node was
// clamped to its all-minimum floor because the assignment (or the global
// budget itself) was infeasible.
type NodeEpoch struct {
	ID       string
	Assigned float64
	Power    float64
	MaxSlow  float64
	Clamped  bool
}

// rbNode is one managed node. Nodes live in a slice in Add order — no maps,
// so iteration order is deterministic by construction.
type rbNode struct {
	id   string
	cfg  policy.Config
	cap  *core.PowerCap
	ev   *policy.Evaluator
	f    Frontier
	prev uint64 // Float64bits of last epoch's assignment
}

// Rebalancer runs the fleet-level epoch loop: each epoch it rebuilds every
// node's frontier from that node's fresh observation, reallocates the
// global budget across the frontiers, and drives each node's core.PowerCap
// against its assigned slice. One Rebalancer per strategy; it is not safe
// for concurrent use.
type Rebalancer struct {
	alloc Allocator
	b     Builder

	nodes []rbNode

	// Scratch reused across epochs.
	anodes  []Node
	assigns []Assignment
	eval    policy.Eval

	rebalances int64
	epochs     int64
}

// NewRebalancer returns a rebalancer allocating under the given strategy.
func NewRebalancer(s Strategy) *Rebalancer {
	return &Rebalancer{alloc: Allocator{Strategy: s}}
}

// Strategy returns the allocation strategy this rebalancer runs.
func (r *Rebalancer) Strategy() Strategy { return r.alloc.Strategy }

// Len returns the number of managed nodes.
func (r *Rebalancer) Len() int { return len(r.nodes) }

// Rebalances returns how many epochs changed at least one node's
// assignment (Float64bits comparison against the previous epoch).
func (r *Rebalancer) Rebalances() int64 { return r.rebalances }

// AddNode registers a node. The initial per-node cap is a placeholder —
// the first Epoch call overwrites it with the node's real assignment.
func (r *Rebalancer) AddNode(id string, cfg policy.Config) error {
	if id == "" {
		return errors.New("fastcap: empty node ID")
	}
	for i := range r.nodes {
		if r.nodes[i].id == id {
			return fmt.Errorf("fastcap: duplicate node ID %q", id)
		}
	}
	pc, err := core.NewPowerCap(cfg, math.MaxFloat64)
	if err != nil {
		return fmt.Errorf("fastcap: node %q: %w", id, err)
	}
	r.nodes = append(r.nodes, rbNode{
		id:  id,
		cfg: cfg,
		cap: pc,
		ev:  &policy.Evaluator{UseTables: true},
	})
	return nil
}

// RemoveNode drops a node (a worker leaving the fleet mid-run), reporting
// whether it was present. Remaining nodes keep their relative order.
func (r *Rebalancer) RemoveNode(id string) bool {
	for i := range r.nodes {
		if r.nodes[i].id == id {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			return true
		}
	}
	return false
}

// NodeIDs appends the managed node IDs, in Add order, to dst.
func (r *Rebalancer) NodeIDs(dst []string) []string {
	for i := range r.nodes {
		dst = append(dst, r.nodes[i].id)
	}
	return dst
}

// Epoch runs one rebalancing round: obs holds one observation per node in
// Add order (the workload mix each node profiled this epoch). One
// NodeEpoch per node is appended to out (pass out[:0] to reuse). When the
// budget cannot cover the fleet's all-minimum floors, every node is
// clamped to its floor and the error wraps ErrBudgetInfeasible; the
// returned epochs are still valid actuations.
func (r *Rebalancer) Epoch(budget float64, obs []policy.Observation, out []NodeEpoch) ([]NodeEpoch, error) {
	if len(obs) != len(r.nodes) {
		return out, fmt.Errorf("fastcap: %d observations for %d nodes", len(obs), len(r.nodes))
	}
	if len(r.nodes) == 0 {
		return out, nil
	}

	r.anodes = r.anodes[:0]
	for i := range r.nodes {
		n := &r.nodes[i]
		if err := r.b.Build(&n.f, n.cfg, obs[i]); err != nil {
			return out, fmt.Errorf("fastcap: node %q: %w", n.id, err)
		}
		r.anodes = append(r.anodes, Node{ID: n.id, F: &n.f})
	}

	var err error
	r.assigns, err = r.alloc.Allocate(budget, r.anodes, r.assigns[:0])
	if err != nil && !errors.Is(err, ErrBudgetInfeasible) {
		return out, err
	}

	changed := false
	for i := range r.nodes {
		n := &r.nodes[i]
		asg := r.assigns[i]
		clamped := err != nil // global infeasibility clamps everyone

		// Drive the node's controller against its slice. The frontier's
		// floor watts and PowerCap's own min-eval are bit-identical (both
		// run the memoized table path), so an assignment at the floor is
		// feasible at the boundary rather than spuriously infeasible.
		if serr := n.cap.SetCap(asg.Watts); serr != nil {
			return out, fmt.Errorf("fastcap: node %q: %w", n.id, serr)
		}
		d, derr := n.cap.DecideCapped(obs[i])
		if derr != nil {
			if !errors.Is(derr, core.ErrCapInfeasible) {
				return out, fmt.Errorf("fastcap: node %q: %w", n.id, derr)
			}
			clamped = true
		}
		n.ev.Reset(n.cfg, obs[i])
		n.ev.EvaluateInto(&r.eval, d.CoreSteps, d.MemStep)

		out = append(out, NodeEpoch{
			ID:       n.id,
			Assigned: asg.Watts,
			Power:    r.eval.Power.Total,
			MaxSlow:  r.eval.MaxSlow,
			Clamped:  clamped,
		})
		bits := math.Float64bits(asg.Watts)
		if r.epochs > 0 && bits != n.prev {
			changed = true
		}
		n.prev = bits
	}
	if r.epochs == 0 || changed {
		r.rebalances++
	}
	r.epochs++
	return out, err
}
