package fault

// rng is a splitmix64 pseudo-random generator (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). It is the
// package's only randomness source: a plain value type seeded explicitly, so
// identical (seed, scenario) pairs replay identical fault sequences and the
// determinism lint has nothing to flag. The generator passes BigCrush and is
// two multiplies plus shifts per draw — cheap enough for the per-epoch hot
// path.
type rng struct {
	state uint64
}

// seed rewinds the stream to the beginning of the sequence for s.
func (r *rng) seed(s uint64) { r.state = s }

// next returns the next 64 uniformly distributed bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Mix64 is the splitmix64 finalizer as a pure function: it scrambles x into
// 64 uniformly distributed bits. Besides backing the sequential generator
// above, it serves as a keyed hash for callers (internal/fleet) that need
// deterministic per-event draws independent of evaluation order — the draw
// for a (seed, event-key) pair is a pure function, so concurrent use cannot
// perturb replay.
func Mix64(x uint64) uint64 {
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MixFloat64 maps Mix64(x) to a uniform draw in [0, 1) with 53 bits of
// precision — the keyed-hash counterpart of rng.float64.
func MixFloat64(x uint64) float64 {
	return float64(Mix64(x)>>11) / (1 << 53)
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// symmetric returns a uniform draw in [-1, 1).
func (r *rng) symmetric() float64 {
	return 2*r.float64() - 1
}
