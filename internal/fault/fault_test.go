package fault

import (
	"errors"
	"testing"

	"coscale/internal/counters"
)

func TestValidateRejectsBadFields(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"noise>1", Config{Counters: CounterFaults{Noise: 1.5}}},
		{"noise<0", Config{Counters: CounterFaults{Noise: -0.1}}},
		{"bias<=-1", Config{Counters: CounterFaults{Bias: -1}}},
		{"staleprob", Config{Counters: CounterFaults{StaleProb: 2}}},
		{"dropprob", Config{Counters: CounterFaults{DropProb: -0.5}}},
		{"actdrop", Config{Actuation: ActuationFaults{DropProb: 1.1}}},
		{"lag<0", Config{Actuation: ActuationFaults{LagEpochs: -1}}},
		{"lag>max", Config{Actuation: ActuationFaults{LagEpochs: MaxLagEpochs + 1}}},
		{"stuck-no-len", Config{Actuation: ActuationFaults{StuckProb: 0.1}}},
		{"stuck<0", Config{Actuation: ActuationFaults{StuckEpochs: -3}}},
		{"thermal-no-len", Config{Actuation: ActuationFaults{ThermalProb: 0.1}}},
		{"thermal-step<0", Config{Actuation: ActuationFaults{ThermalMinCoreStep: -1}}},
		{"powerbias", Config{PowerBias: -1}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		}
	}
	if err := (&Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	t.Parallel()
	// Reference outputs for seed 1234567 from the splitmix64 reference
	// implementation (Vigna), pinning the stream across refactors.
	var r rng
	r.seed(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5}
	for i, w := range want {
		if got := r.next(); got != w {
			t.Errorf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
	for i := 0; i < 1000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 draw %d outside [0,1): %g", i, f)
		}
	}
}

// fill sets every counter field to a recognizable non-zero baseline.
func fill(sys *counters.System, base uint64) {
	for i := range sys.Cores {
		c := &sys.Cores[i]
		c.Cycles, c.TIC, c.TMS, c.TLA, c.TLM, c.TLS = base, base, base, base, base, base
		c.ALUOps, c.FPUOps, c.Branches, c.LoadStores = base, base, base, base
		c.StallCyclesL2, c.StallCyclesMem = base, base
		c.L2Writebacks, c.PrefetchFills = base, base
	}
	for i := range sys.Channels {
		ch := &sys.Channels[i]
		ch.BusCycles, ch.Reads, ch.Writes, ch.Prefetches = base, base, base, base
		ch.ReadQueueOccupancy, ch.BankOccupancy, ch.BusBusyCycles, ch.LatencyCycles = base, base, base, base
		ch.RowHits, ch.RowMisses, ch.ActiveCycles, ch.IdleCycles = base, base, base, base
		ch.PageOpens, ch.PageCloses = base, base
	}
}

func TestZeroConfigIsIdentity(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 42}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(2, 2)
	fill(sys, 1_000_000)
	want := sys.Snapshot()
	inj.PerturbCounters(ProfileWindow, sys)
	inj.PerturbCounters(EpochWindow, sys)
	for i := range sys.Cores {
		if sys.Cores[i] != want.Cores[i] {
			t.Fatalf("core %d perturbed by zero config", i)
		}
	}
	for i := range sys.Channels {
		if sys.Channels[i] != want.Channels[i] {
			t.Fatalf("channel %d perturbed by zero config", i)
		}
	}
	req := []int{3, 5}
	cur := []int{1, 2}
	out, mem := inj.Actuate(req, 4, cur, 0)
	if out[0] != 3 || out[1] != 5 || mem != 4 {
		t.Fatalf("zero config altered actuation: got %v/%d", out, mem)
	}
}

func TestBiasScalesCounters(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 1, Counters: CounterFaults{Bias: 0.5}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(1, 1)
	fill(sys, 1000)
	inj.PerturbCounters(ProfileWindow, sys)
	if got := sys.Cores[0].TIC; got != 1500 {
		t.Errorf("TIC: got %d, want 1500", got)
	}
	if got := sys.Channels[0].Reads; got != 1500 {
		t.Errorf("Reads: got %d, want 1500", got)
	}
}

func TestDeterministicReplayAfterReset(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Seed:      99,
		Counters:  CounterFaults{Noise: 0.2, StaleProb: 0.3, DropProb: 0.1},
		Actuation: ActuationFaults{DropProb: 0.2, LagEpochs: 2},
	}
	run := func(inj *Injector) []counters.System {
		var out []counters.System
		for epoch := 0; epoch < 20; epoch++ {
			sys := counters.NewSystem(2, 1)
			fill(sys, uint64(1000*(epoch+1)))
			inj.PerturbCounters(ProfileWindow, sys)
			cs, ms := inj.Actuate([]int{epoch % 3, epoch % 5}, epoch%4, []int{0, 0}, 0)
			sys.Cores[0].Cycles += uint64(cs[0]+cs[1]) + uint64(ms) // fold actuation into the fingerprint
			out = append(out, sys.Snapshot())
		}
		return out
	}
	inj, err := New(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := run(inj)
	inj.Reset()
	second := run(inj)
	inj2, err := New(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	third := run(inj2)
	for e := range first {
		for i := range first[e].Cores {
			if first[e].Cores[i] != second[e].Cores[i] || first[e].Cores[i] != third[e].Cores[i] {
				t.Fatalf("epoch %d core %d diverged across replays", e, i)
			}
		}
	}
}

func TestStaleWindowRepeatsPreviousReading(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 7, Counters: CounterFaults{StaleProb: 1}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(1, 1)
	fill(sys, 100)
	inj.PerturbCounters(ProfileWindow, sys) // first window can never be stale
	first := sys.Snapshot()
	fill(sys, 999)
	inj.PerturbCounters(ProfileWindow, sys)
	if sys.Cores[0] != first.Cores[0] {
		t.Fatal("stale window did not repeat the previous reading")
	}
	if inj.Stats().StaleWindows != 1 {
		t.Fatalf("StaleWindows = %d, want 1", inj.Stats().StaleWindows)
	}
	// The epoch window has its own staleness track: its first reading is
	// fresh even though the profile window already went stale.
	fill(sys, 555)
	inj.PerturbCounters(EpochWindow, sys)
	if sys.Cores[0].TIC != 555 {
		t.Fatal("epoch window inherited the profile window's stale state")
	}
}

func TestDropZeroesWholeBlocks(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 3, Counters: CounterFaults{DropProb: 1}}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(2, 2)
	fill(sys, 100)
	inj.PerturbCounters(ProfileWindow, sys)
	for i := range sys.Cores {
		if sys.Cores[i] != (counters.Core{}) {
			t.Fatalf("core %d not zeroed", i)
		}
	}
	for i := range sys.Channels {
		if sys.Channels[i] != (counters.Channel{}) {
			t.Fatalf("channel %d not zeroed", i)
		}
	}
	st := inj.Stats()
	if st.DroppedCores != 2 || st.DroppedChans != 2 {
		t.Fatalf("drop stats = %+v", st)
	}
}

func TestPowerBiasTouchesOnlyPowerCounters(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 5, PowerBias: 0.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(1, 1)
	fill(sys, 1000)
	inj.PerturbCounters(ProfileWindow, sys)
	c := sys.Cores[0]
	if c.ALUOps != 1500 || c.FPUOps != 1500 || c.Branches != 1500 || c.LoadStores != 1500 {
		t.Errorf("activity counters not biased: %+v", c)
	}
	if c.TIC != 1000 || c.Cycles != 1000 || c.TLM != 1000 {
		t.Errorf("performance counters perturbed by power bias: %+v", c)
	}
	ch := sys.Channels[0]
	if ch.ActiveCycles != 1500 || ch.IdleCycles != 1500 {
		t.Errorf("channel power counters not biased: %+v", ch)
	}
	if ch.Reads != 1000 || ch.LatencyCycles != 1000 {
		t.Errorf("channel performance counters perturbed: %+v", ch)
	}
}

func TestActuationLagDeliversLate(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 11, Actuation: ActuationFaults{LagEpochs: 2}}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur := []int{0, 0}
	reqs := [][]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	var got [][]int
	for i, rq := range reqs {
		cs, ms := inj.Actuate(rq, i+1, cur, 0)
		got = append(got, append([]int(nil), cs...))
		_ = ms
	}
	// Epochs 0-1: ring warming up, settings unchanged. Epoch k >= 2:
	// request from epoch k-2 delivered.
	want := [][]int{{0, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 3}}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("epoch %d: delivered %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestActuationStuckFreezesSettings(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 13, Actuation: ActuationFaults{StuckProb: 1, StuckEpochs: 3}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cs, ms := inj.Actuate([]int{9}, 9, []int{2}, 2)
		if cs[0] != 2 || ms != 2 {
			t.Fatalf("epoch %d: stuck actuator applied the request (%v/%d)", i, cs, ms)
		}
	}
	if inj.Stats().StuckEvents < 1 {
		t.Fatal("no stuck events recorded")
	}
}

func TestThermalClampsCoreSteps(t *testing.T) {
	t.Parallel()
	inj, err := New(Config{Seed: 17, Actuation: ActuationFaults{
		ThermalProb: 1, ThermalEpochs: 2, ThermalMinCoreStep: 4}}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, ms := inj.Actuate([]int{0, 7}, 0, []int{0, 0}, 0)
	if cs[0] != 4 || cs[1] != 7 || ms != 0 {
		t.Fatalf("thermal clamp wrong: %v/%d", cs, ms)
	}
	if inj.Stats().ThermalEvents != 1 {
		t.Fatalf("ThermalEvents = %d, want 1", inj.Stats().ThermalEvents)
	}
}

func TestPerturbAndActuateDoNotAllocate(t *testing.T) {
	cfg := Config{
		Seed:      21,
		Counters:  CounterFaults{Noise: 0.1, Bias: 0.05, StaleProb: 0.2, DropProb: 0.05},
		Actuation: ActuationFaults{DropProb: 0.1, LagEpochs: 3, StuckProb: 0.01, StuckEpochs: 2, ThermalProb: 0.01, ThermalEpochs: 2, ThermalMinCoreStep: 3},
		PowerBias: 0.1,
	}
	inj, err := New(cfg, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := counters.NewSystem(16, 4)
	req := make([]int, 16)
	cur := make([]int, 16)
	allocs := testing.AllocsPerRun(200, func() {
		fill(sys, 12345)
		inj.PerturbCounters(ProfileWindow, sys)
		inj.PerturbCounters(EpochWindow, sys)
		inj.Actuate(req, 1, cur, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocations per epoch = %v, want 0", allocs)
	}
}
