package fault

import "coscale/internal/counters"

// Window identifies which controller-facing counter reading is being
// perturbed; staleness is tracked independently per window kind so a stale
// profiling read repeats the previous profiling read, not the previous
// whole-epoch read.
type Window int

// The two counter windows the engine derives observations from.
const (
	ProfileWindow Window = iota // the 300 µs pre-decision profiling window
	EpochWindow                 // the whole-epoch window driving slack accounting
)

const numWindows = 2

// Stats counts injected events, for tests and experiment telemetry.
type Stats struct {
	StaleWindows  int // counter readings replaced by the previous reading
	DroppedCores  int // per-core counter blocks zeroed
	DroppedChans  int // per-channel counter blocks zeroed
	DroppedReqs   int // actuation requests silently ignored
	StuckEvents   int // actuator freeze events started
	ThermalEvents int // thermal-throttle events started
}

// Injector applies one fault scenario to a running simulation. All state —
// the PRNG, stale-reading buffers, the lagged-request ring, scratch step
// vectors — is preallocated in New, so the perturbation methods allocate
// nothing and the engine's per-epoch hot path stays allocation-free with
// injection enabled (DESIGN.md §7, §8).
//
// An Injector is owned by a single engine and is not safe for concurrent
// use.
type Injector struct {
	cfg Config
	rng rng

	stats Stats

	// Stale-reading state: the last reading the "sensor" reported for each
	// window kind (post-perturbation, so a stale repeat returns exactly
	// what the controller saw before).
	prev    [numWindows]counters.System
	hasPrev [numWindows]bool

	// Lagged-request ring: the last LagEpochs requested step vectors.
	lag     []laggedRequest
	lagFill int
	lagHead int

	stuckLeft   int
	thermalLeft int

	// outCore is the scratch the effective (post-fault) core steps are
	// assembled in; Actuate's return value aliases it.
	outCore []int
}

// laggedRequest is one in-flight actuation request.
type laggedRequest struct {
	coreSteps []int
	memStep   int
}

// New builds an injector for the given scenario and system shape.
func New(cfg Config, nCores, nChannels int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nCores <= 0 || nChannels <= 0 {
		return nil, &ConfigError{Field: "(shape)", Reason: "nCores and nChannels must be positive"}
	}
	inj := &Injector{
		cfg:     cfg,
		outCore: make([]int, nCores),
	}
	for w := range inj.prev {
		inj.prev[w] = *counters.NewSystem(nCores, nChannels)
	}
	if n := cfg.Actuation.LagEpochs; n > 0 {
		inj.lag = make([]laggedRequest, n)
		for i := range inj.lag {
			inj.lag[i].coreSteps = make([]int, nCores)
		}
	}
	inj.Reset()
	return inj, nil
}

// Reset rewinds the injector to its initial state (PRNG back to the seed,
// no stale readings, empty request ring, no active events), so a rerun after
// Engine.Reset replays the identical fault sequence.
func (inj *Injector) Reset() {
	inj.rng.seed(inj.cfg.Seed)
	inj.stats = Stats{}
	for w := range inj.hasPrev {
		inj.hasPrev[w] = false
	}
	inj.lagFill = 0
	inj.lagHead = 0
	inj.stuckLeft = 0
	inj.thermalLeft = 0
}

// Stats returns the injected-event counts since the last Reset.
func (inj *Injector) Stats() Stats { return inj.stats }

// factor draws one multiplicative perturbation factor, clamped non-negative
// (counters cannot go backwards).
//
//hot:path
func (inj *Injector) factor() float64 {
	f := 1 + inj.cfg.Counters.Bias
	if n := inj.cfg.Counters.Noise; n > 0 {
		f *= 1 + n*inj.rng.symmetric()
	}
	if f < 0 {
		f = 0
	}
	return f
}

// scale applies a multiplicative factor to one counter value.
func scale(v uint64, f float64) uint64 {
	//lint:ignore floateq exact passthrough gate: an unperturbed factor is the literal 1, and rounding through float64 would corrupt large counters
	if f == 1 {
		return v
	}
	return uint64(float64(v) * f)
}

// PerturbCounters perturbs one window's counter deltas in place: staleness
// first (a stale window repeats the previous perturbed reading verbatim),
// then per-field multiplicative bias/noise, per-block dropout, and the
// power-counter bias. The engine calls it on the delta handed to
// observationInto, never on its ground-truth accumulators.
//
//hot:path
func (inj *Injector) PerturbCounters(w Window, sys *counters.System) {
	c := &inj.cfg.Counters
	if c.StaleProb > 0 && inj.hasPrev[w] && inj.rng.float64() < c.StaleProb {
		inj.stats.StaleWindows++
		inj.prev[w].SnapshotInto(sys)
		return
	}
	//lint:ignore floateq exact enabled-check: a disabled fault is the literal zero value, not "approximately zero"
	if c.Bias != 0 || c.Noise > 0 {
		for i := range sys.Cores {
			inj.perturbCore(&sys.Cores[i])
		}
		for i := range sys.Channels {
			inj.perturbChannel(&sys.Channels[i])
		}
	}
	if c.DropProb > 0 {
		for i := range sys.Cores {
			if inj.rng.float64() < c.DropProb {
				inj.stats.DroppedCores++
				sys.Cores[i] = counters.Core{}
			}
		}
		for i := range sys.Channels {
			if inj.rng.float64() < c.DropProb {
				inj.stats.DroppedChans++
				sys.Channels[i] = counters.Channel{}
			}
		}
	}
	//lint:ignore floateq exact enabled-check: a disabled fault is the literal zero value, not "approximately zero"
	if b := inj.cfg.PowerBias; b != 0 {
		f := 1 + b
		for i := range sys.Cores {
			co := &sys.Cores[i]
			co.ALUOps = scale(co.ALUOps, f)
			co.FPUOps = scale(co.FPUOps, f)
			co.Branches = scale(co.Branches, f)
			co.LoadStores = scale(co.LoadStores, f)
		}
		for i := range sys.Channels {
			ch := &sys.Channels[i]
			ch.ActiveCycles = scale(ch.ActiveCycles, f)
			ch.IdleCycles = scale(ch.IdleCycles, f)
		}
	}
	if c.StaleProb > 0 {
		sys.SnapshotInto(&inj.prev[w])
		inj.hasPrev[w] = true
	}
}

// perturbCore scales every field of one core's counter block by an
// independently drawn factor.
//
//hot:path
func (inj *Injector) perturbCore(c *counters.Core) {
	c.Cycles = scale(c.Cycles, inj.factor())
	c.TIC = scale(c.TIC, inj.factor())
	c.TMS = scale(c.TMS, inj.factor())
	c.TLA = scale(c.TLA, inj.factor())
	c.TLM = scale(c.TLM, inj.factor())
	c.TLS = scale(c.TLS, inj.factor())
	c.ALUOps = scale(c.ALUOps, inj.factor())
	c.FPUOps = scale(c.FPUOps, inj.factor())
	c.Branches = scale(c.Branches, inj.factor())
	c.LoadStores = scale(c.LoadStores, inj.factor())
	c.StallCyclesL2 = scale(c.StallCyclesL2, inj.factor())
	c.StallCyclesMem = scale(c.StallCyclesMem, inj.factor())
	c.L2Writebacks = scale(c.L2Writebacks, inj.factor())
	c.PrefetchFills = scale(c.PrefetchFills, inj.factor())
}

// perturbChannel scales every field of one channel's counter block by an
// independently drawn factor.
//
//hot:path
func (inj *Injector) perturbChannel(c *counters.Channel) {
	c.BusCycles = scale(c.BusCycles, inj.factor())
	c.Reads = scale(c.Reads, inj.factor())
	c.Writes = scale(c.Writes, inj.factor())
	c.Prefetches = scale(c.Prefetches, inj.factor())
	c.ReadQueueOccupancy = scale(c.ReadQueueOccupancy, inj.factor())
	c.BankOccupancy = scale(c.BankOccupancy, inj.factor())
	c.BusBusyCycles = scale(c.BusBusyCycles, inj.factor())
	c.LatencyCycles = scale(c.LatencyCycles, inj.factor())
	c.RowHits = scale(c.RowHits, inj.factor())
	c.RowMisses = scale(c.RowMisses, inj.factor())
	c.ActiveCycles = scale(c.ActiveCycles, inj.factor())
	c.IdleCycles = scale(c.IdleCycles, inj.factor())
	c.PageOpens = scale(c.PageOpens, inj.factor())
	c.PageCloses = scale(c.PageCloses, inj.factor())
}

// Actuate maps the controller's requested steps to the steps the faulty
// actuator actually installs this epoch, given the settings currently in
// effect. Faults compose in pipeline order: the request enters the lag ring
// (a slow regulator), the delivered request may be dropped, a stuck actuator
// freezes everything, and an active thermal event clamps core frequency from
// above. The returned core-step slice aliases the injector's scratch and is
// valid until the next Actuate call.
//
//hot:path
func (inj *Injector) Actuate(reqCore []int, reqMem int, curCore []int, curMem int) ([]int, int) {
	a := &inj.cfg.Actuation
	outCore := inj.outCore[:len(curCore)]
	// Cores a short request leaves uncovered keep their current settings.
	copy(outCore, curCore)
	copy(outCore, reqCore)
	outMem := reqMem

	if a.LagEpochs > 0 {
		slot := &inj.lag[inj.lagHead]
		warm := inj.lagFill >= len(inj.lag)
		// Swap the fresh request (sitting in the scratch) into the ring
		// slot; the slot's previous contents — the request from LagEpochs
		// ago — become the scratch, i.e. the delivered request.
		deliveredMem := slot.memStep
		inj.outCore, slot.coreSteps = slot.coreSteps, inj.outCore
		slot.memStep = outMem
		outCore = inj.outCore[:len(curCore)]
		if warm {
			outMem = deliveredMem
		} else {
			// Ring still warming up: nothing has been delivered yet, so
			// the settings stay as they are.
			copy(outCore, curCore)
			outMem = curMem
			inj.lagFill++
		}
		inj.lagHead++
		if inj.lagHead == len(inj.lag) {
			inj.lagHead = 0
		}
	}

	if a.DropProb > 0 && inj.rng.float64() < a.DropProb {
		inj.stats.DroppedReqs++
		copy(outCore, curCore)
		outMem = curMem
	}

	if a.StuckProb > 0 {
		if inj.stuckLeft == 0 && inj.rng.float64() < a.StuckProb {
			inj.stats.StuckEvents++
			inj.stuckLeft = a.StuckEpochs
		}
		if inj.stuckLeft > 0 {
			inj.stuckLeft--
			copy(outCore, curCore)
			outMem = curMem
		}
	}

	if a.ThermalProb > 0 {
		if inj.thermalLeft == 0 && inj.rng.float64() < a.ThermalProb {
			inj.stats.ThermalEvents++
			inj.thermalLeft = a.ThermalEpochs
		}
		if inj.thermalLeft > 0 {
			inj.thermalLeft--
			for i := range outCore {
				if outCore[i] < a.ThermalMinCoreStep {
					outCore[i] = a.ThermalMinCoreStep
				}
			}
		}
	}

	return outCore, outMem
}
