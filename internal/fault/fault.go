// Package fault injects deterministic, seeded faults at the boundary between
// the simulated hardware substrate and the DVFS controllers: the performance
// counters a controller profiles, and the actuation path its frequency
// decisions travel through. Ground truth — the engine's own accumulation of
// instructions, energy and wall time — is never perturbed; only what the
// controller *sees* and what the actuator *applies* are.
//
// All randomness comes from a splitmix64 stream seeded by Config.Seed, so an
// identical (seed, scenario) pair replays an identical fault sequence and a
// simulation under injection stays bit-reproducible across runs and after
// Engine.Reset. The package is inside the determinism lint scope
// (internal/lint): no wall-clock reads, no global math/rand, no map
// iteration.
//
// The fault taxonomy follows the failure modes the CoScale paper's "model
// error" discussion and successor systems (FastCap, SysScale) treat as
// first-class: noisy/biased/stale/dropped counter readings, DVFS requests
// that are ignored, delayed, stuck or thermally clamped, and biased power
// estimates. See DESIGN.md §8.
package fault

import "fmt"

// ConfigError reports one rejected fault-configuration field.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("fault: invalid Config.%s: %s", e.Field, e.Reason)
}

// CounterFaults perturbs the counter deltas a controller derives its
// observations from. The zero value injects nothing.
type CounterFaults struct {
	// Noise is the amplitude of independent multiplicative noise applied
	// to every counter field: each field is scaled by 1 + Noise·U with U
	// uniform in [-1, 1). Models sampling jitter and read races in real
	// MSR-style counter drivers. Must be in [0, 1].
	Noise float64

	// Bias is a systematic multiplicative error applied to every counter
	// field (all fields scale by 1 + Bias). Models miscalibrated counters;
	// ratio-derived statistics cancel it, but absolute counts (committed
	// instructions, cycles) do not — which is exactly what corrupts slack
	// accounting. Must be > -1.
	Bias float64

	// StaleProb is the per-window probability that a reading repeats the
	// previous window's values verbatim (the driver returned cached
	// state). Must be in [0, 1].
	StaleProb float64

	// DropProb is the per-core (and per-channel) per-window probability
	// that a counter block reads all-zero (the sensor dropped out). Must
	// be in [0, 1].
	DropProb float64
}

// ActuationFaults perturbs the path between a controller's Decision and the
// frequencies actually installed. The zero value injects nothing.
type ActuationFaults struct {
	// DropProb is the per-epoch probability that the requested change is
	// silently ignored (settings stay as they were). Must be in [0, 1].
	DropProb float64

	// LagEpochs delays every request by N epochs (a slow voltage
	// regulator / PLL re-lock pipeline). Must be in [0, MaxLagEpochs].
	LagEpochs int

	// StuckProb is the per-epoch probability that the actuator freezes at
	// the current settings for StuckEpochs epochs. StuckEpochs must be
	// positive when StuckProb > 0.
	StuckProb   float64
	StuckEpochs int

	// ThermalProb is the per-epoch probability of a thermal-throttle
	// event: for ThermalEpochs epochs, core frequencies are clamped at or
	// below the ladder step ThermalMinCoreStep (steps count down from the
	// highest frequency, so the clamp forces step >= ThermalMinCoreStep).
	// ThermalEpochs must be positive when ThermalProb > 0.
	ThermalProb        float64
	ThermalEpochs      int
	ThermalMinCoreStep int
}

// MaxLagEpochs bounds ActuationFaults.LagEpochs (and the injector's
// preallocated request ring).
const MaxLagEpochs = 64

// Config is one fault scenario. The zero value (with any seed) injects
// nothing and is bit-identical to running without an injector at all.
type Config struct {
	// Seed seeds the scenario's private splitmix64 stream.
	Seed uint64

	// Counters perturbs profiled counter readings.
	Counters CounterFaults

	// Actuation perturbs applied DVFS decisions.
	Actuation ActuationFaults

	// PowerBias is a multiplicative error on the counters that feed only
	// the controller's power model (the per-class activity counters and
	// the DRAM active-cycle counter), biasing its power estimates while
	// leaving performance statistics untouched. Must be > -1.
	PowerBias float64
}

// IsZero reports whether the scenario (seed aside, the whole configuration)
// injects nothing — the identity configuration that is bit-identical to
// running without an injector. The serving layer canonicalizes zero
// scenarios to "no faults" so both spellings share one cache entry.
func (c *Config) IsZero() bool {
	cc := *c
	cc.Seed = 0
	return cc == Config{}
}

// prob validates a probability field.
func prob(field string, v float64) error {
	if v < 0 || v > 1 {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("probability %g outside [0, 1]", v)}
	}
	return nil
}

// Validate checks the scenario's fields.
func (c *Config) Validate() error {
	if c.Counters.Noise < 0 || c.Counters.Noise > 1 {
		return &ConfigError{Field: "Counters.Noise", Reason: fmt.Sprintf("amplitude %g outside [0, 1]", c.Counters.Noise)}
	}
	if c.Counters.Bias <= -1 {
		return &ConfigError{Field: "Counters.Bias", Reason: fmt.Sprintf("multiplier 1%+g not positive", c.Counters.Bias)}
	}
	if err := prob("Counters.StaleProb", c.Counters.StaleProb); err != nil {
		return err
	}
	if err := prob("Counters.DropProb", c.Counters.DropProb); err != nil {
		return err
	}
	if err := prob("Actuation.DropProb", c.Actuation.DropProb); err != nil {
		return err
	}
	if c.Actuation.LagEpochs < 0 || c.Actuation.LagEpochs > MaxLagEpochs {
		return &ConfigError{Field: "Actuation.LagEpochs", Reason: fmt.Sprintf("%d outside [0, %d]", c.Actuation.LagEpochs, MaxLagEpochs)}
	}
	if err := prob("Actuation.StuckProb", c.Actuation.StuckProb); err != nil {
		return err
	}
	if c.Actuation.StuckProb > 0 && c.Actuation.StuckEpochs <= 0 {
		return &ConfigError{Field: "Actuation.StuckEpochs", Reason: "must be positive when StuckProb > 0"}
	}
	if c.Actuation.StuckEpochs < 0 {
		return &ConfigError{Field: "Actuation.StuckEpochs", Reason: "must be non-negative"}
	}
	if err := prob("Actuation.ThermalProb", c.Actuation.ThermalProb); err != nil {
		return err
	}
	if c.Actuation.ThermalProb > 0 && c.Actuation.ThermalEpochs <= 0 {
		return &ConfigError{Field: "Actuation.ThermalEpochs", Reason: "must be positive when ThermalProb > 0"}
	}
	if c.Actuation.ThermalEpochs < 0 {
		return &ConfigError{Field: "Actuation.ThermalEpochs", Reason: "must be non-negative"}
	}
	if c.Actuation.ThermalMinCoreStep < 0 {
		return &ConfigError{Field: "Actuation.ThermalMinCoreStep", Reason: "must be non-negative"}
	}
	if c.PowerBias <= -1 {
		return &ConfigError{Field: "PowerBias", Reason: fmt.Sprintf("multiplier 1%+g not positive", c.PowerBias)}
	}
	return nil
}
