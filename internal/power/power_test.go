package power

import (
	"math"
	"testing"
	"testing/quick"

	"coscale/internal/trace"
)

func TestCorePowerScalesWithVoltageAndFrequency(t *testing.T) {
	t.Parallel()
	m := DefaultCoreModel()
	mix := refMix()
	high := m.Power(1.2, 4e9, 3.2e9, mix)
	lowF := m.Power(1.2, 2.2e9, 1.76e9, mix) // same IPC at lower clock
	lowVF := m.Power(0.65, 2.2e9, 1.76e9, mix)
	if !(lowVF < lowF && lowF < high) {
		t.Errorf("power ordering violated: %g, %g, %g", lowVF, lowF, high)
	}
	// Voltage scaling should give super-linear savings: the dynamic part
	// drops with V^2·f.
	if lowVF > high*0.45 {
		t.Errorf("V+F scaled power %g should be well under half of %g", lowVF, high)
	}
}

func TestCorePowerMagnitude(t *testing.T) {
	t.Parallel()
	m := DefaultCoreModel()
	p := m.Power(1.2, 4e9, 0.8*4e9, refMix())
	if p < 10 || p > 18 {
		t.Errorf("per-core power at reference = %.1f W, want ≈13-14 W", p)
	}
}

func TestEnergyPerInstrMixSensitivity(t *testing.T) {
	t.Parallel()
	m := DefaultCoreModel()
	fp := m.EnergyPerInstr(1.2, trace.InstrMix{FPU: 0.4, LoadStore: 0.3})
	intg := m.EnergyPerInstr(1.2, trace.InstrMix{ALU: 0.4, Branch: 0.2})
	if fp <= intg {
		t.Error("FP-heavy mix should cost more energy per instruction")
	}
	if m.EnergyPerInstr(0.6, trace.InstrMix{}) >= m.EnergyPerInstr(1.2, trace.InstrMix{}) {
		t.Error("energy must drop with voltage")
	}
}

func TestIdleCoreStillBurnsClockAndLeakage(t *testing.T) {
	t.Parallel()
	m := DefaultCoreModel()
	p := m.Power(1.2, 4e9, 0, refMix())
	if p < m.PLeak {
		t.Errorf("idle power %g below leakage %g", p, m.PLeak)
	}
	if p >= m.Power(1.2, 4e9, 3e9, refMix()) {
		t.Error("busy core should burn more than idle core")
	}
}

func TestL2Power(t *testing.T) {
	t.Parallel()
	m := DefaultL2Model()
	if m.Power(0) != m.PLeak {
		t.Error("idle L2 power should equal leakage")
	}
	if m.Power(1e9) <= m.Power(1e8) {
		t.Error("L2 power should grow with access rate")
	}
}

func TestMemPowerFrequencyScaling(t *testing.T) {
	t.Parallel()
	m := DefaultMemModel()
	use := func(hz, v float64) MemUsage {
		return MemUsage{BusHz: hz, MCVolts: v, ReadRate: 1e8, WriteRate: 3e7,
			ActRate: 1.3e8, UtilBus: 0.3, BusyFrac: 0.8}
	}
	hi := m.Power(use(800e6, 1.2)).Total()
	lo := m.Power(use(206e6, 0.65)).Total()
	if lo >= hi {
		t.Errorf("memory power did not drop with frequency: %g >= %g", lo, hi)
	}
	// Background power must persist at low frequency (DRAM can't gate it).
	if b := m.Power(use(206e6, 0.65)); b.Background < 0.3*m.Power(use(800e6, 1.2)).Background {
		t.Error("background power dropped too much with frequency")
	}
}

func TestMemPowerTrafficScaling(t *testing.T) {
	t.Parallel()
	m := DefaultMemModel()
	idle := m.Power(MemUsage{BusHz: 800e6, MCVolts: 1.2, BusyFrac: 0.1})
	busy := m.Power(MemUsage{BusHz: 800e6, MCVolts: 1.2, ReadRate: 3e8, WriteRate: 1e8,
		ActRate: 4e8, UtilBus: 0.9, BusyFrac: 1})
	if busy.Total() <= idle.Total()*1.5 {
		t.Errorf("busy memory %g W not well above idle %g W", busy.Total(), idle.Total())
	}
	if busy.Activate <= 0 || busy.ReadWrite <= 0 {
		t.Error("traffic components missing")
	}
	if idle.Activate != 0 || idle.ReadWrite != 0 {
		t.Error("idle memory should have zero activate/burst power")
	}
}

func TestMemPowerdownSavesBackground(t *testing.T) {
	t.Parallel()
	m := DefaultMemModel()
	busy := m.Power(MemUsage{BusHz: 800e6, MCVolts: 1.2, BusyFrac: 1})
	idle := m.Power(MemUsage{BusHz: 800e6, MCVolts: 1.2, BusyFrac: 0})
	if idle.Background >= busy.Background {
		t.Error("powerdown should reduce background power")
	}
}

func TestPLLRegAndMCBounds(t *testing.T) {
	t.Parallel()
	m := DefaultMemModel()
	max := m.Power(MemUsage{BusHz: 800e6, MCVolts: 1.2, UtilBus: 1, BusyFrac: 1})
	min := m.Power(MemUsage{BusHz: 0, MCVolts: 0.65, UtilBus: 0, BusyFrac: 0})
	// Paper: PLL/register 0.1..0.5 W per DIMM; MC 4.5..15 W.
	if got := max.PLLReg / float64(m.DIMMs); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("max PLL/reg per DIMM = %g, want 0.5", got)
	}
	if got := min.PLLReg / float64(m.DIMMs); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("min PLL/reg per DIMM = %g, want 0.1", got)
	}
	if math.Abs(max.MC-15) > 1e-9 {
		t.Errorf("max MC power = %g, want 15", max.MC)
	}
}

func TestDefaultSystemSplit(t *testing.T) {
	t.Parallel()
	s := DefaultSystem(16)
	cores := make([]CoreOp, 16)
	for i := range cores {
		cores[i] = CoreOp{Volts: 1.2, Hz: 4e9, IPS: 0.8 * 4e9, Mix: refMix()}
	}
	refRate := refUtilBus * 800e6
	u := MemUsage{BusHz: 800e6, MCVolts: 1.2, ReadRate: refRate * 0.75,
		WriteRate: refRate * 0.25, ActRate: refRate, UtilBus: refUtilBus, BusyFrac: refBusyFrac}
	sp := s.Total(cores, refRate, u)
	cpuFrac := (sp.CPU + sp.L2) / sp.Total
	memFrac := sp.Mem / sp.Total
	restFrac := sp.Rest / sp.Total
	if math.Abs(cpuFrac-0.6) > 0.005 || math.Abs(memFrac-0.3) > 0.005 || math.Abs(restFrac-0.1) > 0.005 {
		t.Errorf("split = %.3f/%.3f/%.3f, want 0.6/0.3/0.1 (total %.0f W)",
			cpuFrac, memFrac, restFrac, sp.Total)
	}
	t.Logf("calibrated system: total %.0f W = CPU %.0f + L2 %.0f + Mem %.0f + Rest %.0f",
		sp.Total, sp.CPU, sp.L2, sp.Mem, sp.Rest)
}

func TestCalibratedSystemRatios(t *testing.T) {
	t.Parallel()
	// Figure 12-13 knob: CPU:Mem = 1:2 must triple memory share vs 2:1.
	for _, tc := range []struct{ cpu, mem float64 }{{0.6, 0.3}, {0.45, 0.45}, {0.3, 0.6}} {
		s := CalibratedSystem(16, tc.cpu, tc.mem, 0.1)
		if s.MemScale <= 0 || s.Rest <= 0 {
			t.Errorf("CalibratedSystem(%v,%v): bad scales %+v", tc.cpu, tc.mem, s)
		}
	}
	a := CalibratedSystem(16, 0.6, 0.3, 0.1)
	b := CalibratedSystem(16, 0.3, 0.6, 0.1)
	if b.MemScale <= a.MemScale*3 {
		t.Errorf("1:2 MemScale %g should be > 4x the 2:1 MemScale %g", b.MemScale, a.MemScale)
	}
}

func TestSER(t *testing.T) {
	t.Parallel()
	if got := SER(1, 100, 1, 100); got != 1 {
		t.Errorf("SER identity = %g", got)
	}
	if got := SER(1.1, 80, 1.0, 100); math.Abs(got-0.88) > 1e-12 {
		t.Errorf("SER = %g, want 0.88", got)
	}
	if got := SER(1, 1, 0, 0); got != 1 {
		t.Errorf("SER with zero baseline = %g, want safe 1", got)
	}
}

// Property: every model is non-negative and monotone in its main driver.
func TestPowerProperties(t *testing.T) {
	t.Parallel()
	m := DefaultCoreModel()
	f := func(vRaw, fRaw, ipcRaw uint8) bool {
		v := 0.65 + float64(vRaw)/255.0*0.55
		hz := 2.2e9 + float64(fRaw)/255.0*1.8e9
		ips := float64(ipcRaw) / 255.0 * hz
		p := m.Power(v, hz, ips, refMix())
		return p > 0 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	mm := DefaultMemModel()
	g := func(fRaw, uRaw uint8) bool {
		hz := 200e6 + float64(fRaw)/255.0*600e6
		util := float64(uRaw) / 255.0
		b := mm.Power(MemUsage{BusHz: hz, MCVolts: 1.2, ReadRate: util * 8e8,
			ActRate: util * 8e8, UtilBus: util, BusyFrac: util})
		return b.Total() > 0 && !math.IsNaN(b.Total())
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
