package power

import "coscale/internal/trace"

// CoreTable memoizes CoreModel evaluation over a core-frequency ladder for
// one epoch's per-core instruction mixes. Reset fills every (step, core)
// entry eagerly — the mix-dependent energy factor is hoisted out of the
// voltage scaling, so a full fill is O(steps·cores) cheap multiplies —
// leaving PowerAt a branch-free three-lookup expression that reproduces
// CoreModel.Power's exact operation sequence, (dynClock + epi·ips) + leak.
// A table lookup is therefore bit-identical to a direct call with the same
// voltage, frequency, instruction rate and mix, and small enough to inline
// into the search's marginal-scoring loops.
//
// Backing arrays are reused across Resets, so the steady state allocates
// nothing. Per-instruction energies are stored struct-of-arrays: every
// step's column occupies a contiguous stride of one flat backing array, so
// scans over core ranges at a fixed step stay cache-line-friendly. Reset
// fills the table completely, so afterwards PowerAt is a pure read and safe
// to share across scanning goroutines until the next Reset.
type CoreTable struct {
	dynClock []float64 // [step] PClock·s²·(hz/FNom), s = volts/VNom
	leak     []float64 // [step] PLeak·s
	eMix     []float64 // [core] voltage-independent mix energy EBase + ΣEclass·mix
	epi      []float64 // flat [step*n + core] EnergyPerInstr(volts[step], mixes[core])
	n        int       // cores per column (the epi stride)
}

// Reset re-points the table at core model m, the candidate (hz, volts)
// ladder, and a new epoch's per-core instruction mixes, invalidating every
// memoized column. mixes is consumed during Reset (the table keeps only the
// derived per-core energies), so the caller may reuse the buffer afterwards.
//
//hot:path
func (t *CoreTable) Reset(m CoreModel, hz, volts []float64, mixes []trace.InstrMix) {
	steps := len(hz)
	if cap(t.dynClock) < steps {
		t.dynClock = make([]float64, steps) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	t.dynClock = t.dynClock[:steps]
	if cap(t.leak) < steps {
		t.leak = make([]float64, steps) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	t.leak = t.leak[:steps]
	t.n = len(mixes)
	if cap(t.epi) < steps*t.n {
		t.epi = make([]float64, steps*t.n) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	t.epi = t.epi[:steps*t.n]
	for s := 0; s < steps; s++ {
		sv := volts[s] / m.VNom
		t.dynClock[s] = m.PClock * sv * sv * (hz[s] / m.FNom)
		t.leak[s] = m.PLeak * sv
	}
	// The mix-dependent energy factor is voltage-independent, so hoist it out
	// of the per-step columns: EnergyPerInstr(v, mix) = e(mix)·s·s, and each
	// column entry below reproduces exactly that product order from eMix[i],
	// making it equal to EnergyPerInstr(volts[s], mixes[i]) bit for bit.
	if cap(t.eMix) < len(mixes) {
		t.eMix = make([]float64, len(mixes)) //hot:alloc-ok capacity miss: runs once until the core-count scratch is warm
	}
	t.eMix = t.eMix[:len(mixes)]
	for i, mix := range mixes {
		t.eMix[i] = m.EBase + m.EALU*mix.ALU + m.EFPU*mix.FPU + m.EBranch*mix.Branch + m.ELoadStore*mix.LoadStore
	}
	for s := 0; s < steps; s++ {
		col := t.epi[s*t.n : s*t.n+t.n]
		sv := volts[s] / m.VNom
		for i, e := range t.eMix {
			col[i] = e * sv * sv
		}
	}
}

// PowerAt predicts core i's power at ladder step s committing ips
// instructions per second — bit-identical to
// model.Power(volts[s], hz[s], ips, mixes[i]).
//
//hot:path
func (t *CoreTable) PowerAt(s, i int, ips float64) float64 {
	return t.dynClock[s] + t.epi[s*t.n+i]*ips + t.leak[s]
}
