// Package power implements the full-system energy model of §3.3 (Eq. 2-3):
//
//	P = P_NonCoreL2OrMem + P_L2 + P_Mem(f_mem) + Σ P_Core_i(f_core_i)
//
// Core power follows the activity-factor approach of the paper's references
// (Bellosa; Isci & Martonosi): per-instruction-class event energies scaled by
// V², plus clock/pipeline power proportional to V²·f, plus leakage roughly
// proportional to V. Memory power follows Micron's DDR3 power methodology:
// per-rank background (standby/powerdown), activate-precharge energy,
// read/write burst energy, plus PLL/register devices (0.1-0.5 W per DIMM;
// PLL scales with frequency and voltage, register with utilization) and the
// on-chip memory controller (4.5-15 W, linear in utilization, scaled by its
// own V²·f since it shares the cores' voltage range).
//
// Absolute constants are calibrated so the default system splits
// CPU:Mem:Rest ≈ 60:30:10 at maximum frequencies under a representative
// load, matching the paper's baseline (§4.1); the Figure 11-13 knobs
// (RestFraction, CPUScale/MemScale) re-weight those shares.
package power

import "coscale/internal/trace"

// CoreModel computes one core's power.
type CoreModel struct {
	VNom float64 // voltage at which event energies are specified (1.2 V)
	FNom float64 // nominal frequency for the clock-power term (4 GHz)

	// Per-instruction energies in joules at VNom; scaled by (V/VNom)^2.
	EBase      float64 // fetch/decode/retire energy common to every instruction
	EALU       float64
	EFPU       float64
	EBranch    float64
	ELoadStore float64

	// PClock is clock-tree + pipeline overhead power at (VNom, FNom),
	// scaling as V^2·f regardless of IPC.
	PClock float64
	// PLeak is leakage power at VNom, scaling linearly with V.
	PLeak float64
}

// DefaultCoreModel returns per-core constants yielding ≈13.7 W per core at
// 4 GHz / 1.2 V with IPC 0.8 on a floating-point mix (≈220 W for 16 cores).
func DefaultCoreModel() CoreModel {
	return CoreModel{
		VNom:       1.2,
		FNom:       4e9,
		EBase:      1.2e-9,
		EALU:       0.8e-9,
		EFPU:       2.4e-9,
		EBranch:    0.6e-9,
		ELoadStore: 1.6e-9,
		PClock:     4.0,
		PLeak:      1.75,
	}
}

// EnergyPerInstr returns the dynamic energy of one committed instruction at
// voltage v for the given instruction-class mix.
func (m CoreModel) EnergyPerInstr(v float64, mix trace.InstrMix) float64 {
	e := m.EBase + m.EALU*mix.ALU + m.EFPU*mix.FPU + m.EBranch*mix.Branch + m.ELoadStore*mix.LoadStore
	s := v / m.VNom
	return e * s * s
}

// Power returns the core's power at voltage v, frequency hz, committing ips
// instructions per second with the given mix.
func (m CoreModel) Power(v, hz, ips float64, mix trace.InstrMix) float64 {
	s := v / m.VNom
	dynClock := m.PClock * s * s * (hz / m.FNom)
	dynInstr := m.EnergyPerInstr(v, mix) * ips
	leak := m.PLeak * s
	return dynClock + dynInstr + leak
}

// L2Model computes the shared L2 power: leakage (its domain does not scale)
// plus access energy.
type L2Model struct {
	PLeak   float64 // W
	EAccess float64 // J per access
}

// DefaultL2Model returns constants for the 16 MB shared LLC (≈18 W leakage
// plus ≈2 W dynamic under load).
func DefaultL2Model() L2Model {
	return L2Model{PLeak: 18, EAccess: 2e-9}
}

// Power returns L2 power at the given access rate (accesses per second).
func (m L2Model) Power(accessRate float64) float64 {
	return m.PLeak + m.EAccess*accessRate
}

// MemUsage describes the memory subsystem's operating point for power
// purposes: everything the two MemScale power counters per channel provide.
type MemUsage struct {
	BusHz     float64 // memory bus frequency
	MCVolts   float64 // memory controller voltage (shares the core range)
	ReadRate  float64 // 64 B reads (incl. prefetch fills) per second, all channels
	WriteRate float64 // 64 B writebacks per second, all channels
	ActRate   float64 // row activates per second (== accesses under closed-page)
	UtilBus   float64 // data bus utilization [0,1]
	BusyFrac  float64 // fraction of time ranks are kept out of powerdown
}

// MemModel computes memory subsystem power.
type MemModel struct {
	DIMMs  int
	FMax   float64 // 800 MHz
	VNomMC float64 // 1.2 V

	// Per-DIMM background power in watts: active-standby when busy,
	// precharge-powerdown when idle, with a portion scaling with clock.
	PBGActive    float64
	PBGPowerdown float64
	BGFreqFrac   float64 // fraction of background power that scales with f/FMax

	EActivate float64 // J per activate-precharge pair (whole rank)
	ERW       float64 // J per 64 B transfer incl. I/O and termination

	// PLL/register per DIMM: PLLMin + PLLFreq·(f/FMax)·(V-ratio)^2 + Reg·util.
	PLLMin, PLLFreq, RegUtil float64

	// Memory controller: (MCMin + MCSpan·util) · (V/VNomMC)^2 · (f_mc/f_mcMax).
	MCMin, MCSpan float64
}

// DefaultMemModel returns constants for 8 registered dual-rank ECC DIMMs
// yielding ≈110 W at 800 MHz under heavy traffic.
func DefaultMemModel() MemModel {
	return MemModel{
		DIMMs:        8,
		PBGActive:    8.5,
		PBGPowerdown: 6.5,
		BGFreqFrac:   0.7,
		FMax:         800e6,
		VNomMC:       1.2,
		EActivate:    15e-9,
		ERW:          12e-9,
		PLLMin:       0.1,
		PLLFreq:      0.15,
		RegUtil:      0.25,
		MCMin:        4.5,
		MCSpan:       10.5,
	}
}

// Breakdown is the memory power decomposition.
type Breakdown struct {
	Background float64
	Activate   float64
	ReadWrite  float64
	PLLReg     float64
	MC         float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Background + b.Activate + b.ReadWrite + b.PLLReg + b.MC
}

// Power returns the memory subsystem power and its breakdown at usage u.
func (m MemModel) Power(u MemUsage) Breakdown {
	fr := 0.0
	if m.FMax > 0 {
		fr = u.BusHz / m.FMax
	}
	vr := 1.0
	if m.VNomMC > 0 {
		vr = u.MCVolts / m.VNomMC
	}
	busy := clamp01(u.BusyFrac)
	util := clamp01(u.UtilBus)

	perDIMMBG := busy*m.PBGActive + (1-busy)*m.PBGPowerdown
	perDIMMBG *= (1 - m.BGFreqFrac) + m.BGFreqFrac*fr
	bg := perDIMMBG * float64(m.DIMMs)

	act := m.EActivate * u.ActRate
	rw := m.ERW * (u.ReadRate + u.WriteRate)
	pll := (m.PLLMin + m.PLLFreq*fr*vr*vr + m.RegUtil*util) * float64(m.DIMMs)
	mc := (m.MCMin + m.MCSpan*util) * vr * vr * fr

	return Breakdown{Background: bg, Activate: act, ReadWrite: rw, PLLReg: pll, MC: mc}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
