package power

import "coscale/internal/trace"

// CoreOp is one core's operating point for power evaluation.
type CoreOp struct {
	Volts float64
	Hz    float64
	IPS   float64
	Mix   trace.InstrMix
}

// System composes the component models into the Eq. 3 full-system power.
// CPUScale and MemScale multiply the respective component powers (the
// Figure 12-13 CPU:Mem ratio knobs); Rest is the fixed
// P_NonCoreL2OrMem term.
type System struct {
	Core CoreModel
	L2   L2Model
	Mem  MemModel

	CPUScale float64 // multiplier on core power (default 1)
	MemScale float64 // multiplier on memory power (default 1)
	Rest     float64 // fixed rest-of-system power, W
}

// Split is a full-system power reading.
type Split struct {
	CPU   float64 // all cores
	L2    float64
	Mem   float64
	Rest  float64
	Total float64
}

// Total evaluates Eq. 3: fixed rest-of-system power, L2 power from its
// access rate, memory power at usage u, and the sum of per-core powers.
func (s System) Total(cores []CoreOp, l2AccessRate float64, u MemUsage) Split {
	var cpu float64
	for _, c := range cores {
		cpu += s.Core.Power(c.Volts, c.Hz, c.IPS, c.Mix)
	}
	return s.TotalFromCPU(cpu, l2AccessRate, u)
}

// TotalFromCPU is Total with the per-core power sum already accumulated by
// the caller — in ascending core order, matching Total's own loop, so a
// caller summing identical per-core terms (e.g. from a memoized CoreTable)
// gets a bit-identical Split. The search hot path uses it to skip the
// per-core model evaluation (see DESIGN.md §10).
//
//hot:path
func (s System) TotalFromCPU(cpu, l2AccessRate float64, u MemUsage) Split {
	cpuScale, memScale := s.CPUScale, s.MemScale
	if cpuScale <= 0 {
		cpuScale = 1
	}
	if memScale <= 0 {
		memScale = 1
	}
	cpu *= cpuScale
	l2 := s.L2.Power(l2AccessRate) * cpuScale // L2 shares the CPU budget in the 60/30/10 split
	mem := s.Mem.Power(u).Total() * memScale
	out := Split{CPU: cpu, L2: l2, Mem: mem, Rest: s.Rest}
	out.Total = out.CPU + out.L2 + out.Mem + out.Rest
	return out
}

// Reference operating point used for calibration: all cores at maximum
// frequency committing 0.8 IPC of a floating-point-heavy mix; memory at
// maximum frequency with moderate-high traffic.
const (
	refIPC      = 0.8
	refUtilBus  = 0.45
	refBusyFrac = 0.9
)

func refMix() trace.InstrMix {
	return trace.InstrMix{ALU: 0.26, FPU: 0.30, Branch: 0.10, LoadStore: 0.32}
}

// DefaultSystem returns the calibrated default system: at the reference
// operating point the split is exactly cpuFrac:memFrac:restFrac of total
// power, with the paper's defaults cpuFrac=0.6, memFrac=0.3, restFrac=0.1.
// Use CalibratedSystem to choose other splits (Figures 11-13).
func DefaultSystem(nCores int) System {
	return CalibratedSystem(nCores, 0.6, 0.3, 0.1)
}

// CalibratedSystem builds a System whose CPU (cores+L2), memory and
// rest-of-system powers stand in the ratio cpuFrac:memFrac:restFrac at the
// reference operating point, holding the CPU-side absolute power at its
// default-model value. Fractions must be positive and are normalized to
// sum to 1.
func CalibratedSystem(nCores int, cpuFrac, memFrac, restFrac float64) System {
	total := cpuFrac + memFrac + restFrac
	cpuFrac, memFrac, restFrac = cpuFrac/total, memFrac/total, restFrac/total

	s := System{Core: DefaultCoreModel(), L2: DefaultL2Model(), Mem: DefaultMemModel(),
		CPUScale: 1, MemScale: 1}

	// Evaluate raw component powers at the reference point.
	cores := make([]CoreOp, nCores)
	for i := range cores {
		cores[i] = CoreOp{Volts: s.Core.VNom, Hz: s.Core.FNom, IPS: refIPC * s.Core.FNom, Mix: refMix()}
	}
	// Reference memory traffic consistent with refUtilBus on the default
	// geometry: util = rate/chan * SBus -> rate = util * 4 chan * f/4.
	refRate := refUtilBus * 4 * s.Mem.FMax / 4
	refUsage := MemUsage{BusHz: s.Mem.FMax, MCVolts: s.Mem.VNomMC,
		ReadRate: refRate * 0.75, WriteRate: refRate * 0.25, ActRate: refRate,
		UtilBus: refUtilBus, BusyFrac: refBusyFrac}

	rawCPU := 0.0
	for _, c := range cores {
		rawCPU += s.Core.Power(c.Volts, c.Hz, c.IPS, c.Mix)
	}
	rawCPU += s.L2.Power(refRate) // L2 access rate ≈ memory rate at reference
	rawMem := s.Mem.Power(refUsage).Total()

	// Hold CPU absolute power; scale memory and rest to meet the split.
	targetTotal := rawCPU / cpuFrac
	s.MemScale = targetTotal * memFrac / rawMem
	s.Rest = targetTotal * restFrac
	return s
}

// SER computes the system energy ratio of Eq. 2: predicted epoch time×power
// at a candidate setting over time×power at the baseline (maximum
// frequencies).
func SER(tCandidate, pCandidate, tBase, pBase float64) float64 {
	if tBase <= 0 || pBase <= 0 {
		return 1
	}
	return (tCandidate * pCandidate) / (tBase * pBase)
}
