package perf

import (
	"math"
	"testing"
	"testing/quick"

	"coscale/internal/memsys"
)

func computeCore() CoreStats {
	return CoreStats{CPIBase: 1.1, Alpha: 0.003, StallL2: 7.5e-9, Beta: 0.0003,
		MemPerInstr: 0.0004, MLP: 1}
}

func memoryCore() CoreStats {
	return CoreStats{CPIBase: 1.4, Alpha: 0.03, StallL2: 7.5e-9, Beta: 0.015,
		MemPerInstr: 0.02, MLP: 1}
}

func TestTPIComponents(t *testing.T) {
	t.Parallel()
	c := CoreStats{CPIBase: 2, Alpha: 0.01, StallL2: 10e-9, Beta: 0.001, MLP: 1}
	got := c.TPI(2e9, 100e-9)
	want := 2/2e9 + 0.01*10e-9 + 0.001*100e-9
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("TPI = %g, want %g", got, want)
	}
}

func TestTPIMLPDividesMemStall(t *testing.T) {
	t.Parallel()
	c := memoryCore()
	inOrder := c.TPI(4e9, 100e-9)
	c.MLP = 4
	ooo := c.TPI(4e9, 100e-9)
	if ooo >= inOrder {
		t.Error("MLP did not reduce TPI")
	}
	memComponent := c.Beta * 100e-9
	if math.Abs((inOrder-ooo)-memComponent*0.75) > 1e-15 {
		t.Errorf("MLP=4 should remove 3/4 of the memory stall")
	}
	// MLP below 1 is treated as 1.
	c.MLP = 0.2
	if c.TPI(4e9, 100e-9) != inOrder {
		t.Error("MLP<1 not clamped to 1")
	}
}

func TestTPIZeroFrequency(t *testing.T) {
	t.Parallel()
	c := computeCore()
	if !math.IsInf(c.TPI(0, 50e-9), 1) {
		t.Error("TPI at 0 Hz should be +Inf")
	}
}

func TestSolveConverges(t *testing.T) {
	t.Parallel()
	sv := NewSolver(memsys.DefaultParams())
	cores := make([]CoreStats, 16)
	for i := range cores {
		cores[i] = memoryCore()
	}
	res := sv.SolveUniform(cores, 4e9, 800e6)
	if res.Iterations >= sv.MaxIter {
		t.Errorf("solver did not converge in %d iterations", res.Iterations)
	}
	for i, tpi := range res.TPI {
		if tpi <= 0 || math.IsNaN(tpi) {
			t.Fatalf("core %d TPI = %g", i, tpi)
		}
	}
	if res.MemRate <= 0 {
		t.Error("memory rate should be positive")
	}
	// Self-consistency: recomputing TPI from the final latency matches.
	for i, c := range cores {
		want := c.TPI(4e9, res.Mem.Latency)
		if math.Abs(res.TPI[i]-want)/want > 1e-6 {
			t.Errorf("core %d TPI inconsistent with final latency", i)
		}
	}
}

func TestSolveMemoryCouplingSlowsEveryone(t *testing.T) {
	t.Parallel()
	// 15 compute cores + 1 memory hog: adding the hog must raise the
	// compute cores' TPI via shared-queue contention.
	sv := NewSolver(memsys.DefaultParams())
	quiet := make([]CoreStats, 16)
	for i := range quiet {
		quiet[i] = computeCore()
	}
	base := sv.SolveUniform(quiet, 4e9, 206e6)

	noisy := make([]CoreStats, 16)
	copy(noisy, quiet)
	for i := 8; i < 16; i++ {
		noisy[i] = memoryCore()
	}
	loaded := sv.SolveUniform(noisy, 4e9, 206e6)
	if loaded.TPI[0] <= base.TPI[0] {
		t.Errorf("contention did not slow the compute core: %g <= %g", loaded.TPI[0], base.TPI[0])
	}
}

func TestSolveMemoryFrequencyMattersMoreWhenMemoryBound(t *testing.T) {
	t.Parallel()
	sv := NewSolver(memsys.DefaultParams())
	mk := func(c CoreStats) []CoreStats {
		out := make([]CoreStats, 16)
		for i := range out {
			out[i] = c
		}
		return out
	}
	slowdown := func(cores []CoreStats) float64 {
		hi := sv.SolveUniform(cores, 4e9, 800e6)
		lo := sv.SolveUniform(cores, 4e9, 206e6)
		return lo.TPI[0] / hi.TPI[0]
	}
	ilp := slowdown(mk(computeCore()))
	mem := slowdown(mk(memoryCore()))
	if mem < ilp*1.5 {
		t.Errorf("memory-bound slowdown %.3f not well above compute-bound %.3f", mem, ilp)
	}
	if ilp > 1.05 {
		t.Errorf("compute-bound workload slowed %.3fx by memory DVFS; should be nearly free", ilp)
	}
}

func TestSolveCoreFrequencyMattersMoreWhenComputeBound(t *testing.T) {
	t.Parallel()
	sv := NewSolver(memsys.DefaultParams())
	mk := func(c CoreStats) []CoreStats {
		out := make([]CoreStats, 16)
		for i := range out {
			out[i] = c
		}
		return out
	}
	slowdown := func(cores []CoreStats) float64 {
		hi := sv.SolveUniform(cores, 4e9, 800e6)
		lo := sv.SolveUniform(cores, 2.2e9, 800e6)
		return lo.TPI[0] / hi.TPI[0]
	}
	ilp := slowdown(mk(computeCore()))
	mem := slowdown(mk(memoryCore()))
	if ilp <= mem {
		t.Errorf("core scaling should hurt ILP (%.3f) more than MEM (%.3f)", ilp, mem)
	}
}

func TestSolveStableUnderSaturation(t *testing.T) {
	t.Parallel()
	sv := NewSolver(memsys.DefaultParams())
	cores := make([]CoreStats, 16)
	for i := range cores {
		c := memoryCore()
		c.MemPerInstr = 0.2 // absurd traffic
		cores[i] = c
	}
	res := sv.SolveUniform(cores, 4e9, 206e6)
	for _, tpi := range res.TPI {
		if math.IsNaN(tpi) || math.IsInf(tpi, 0) || tpi <= 0 {
			t.Fatalf("saturated solve produced TPI %g", tpi)
		}
	}
	if res.Mem.UtilBus > 0.971 {
		t.Errorf("bus utilization %g exceeds clamp", res.Mem.UtilBus)
	}
}

func TestSolveMismatchedLengthsPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Solve with mismatched lengths did not panic")
		}
	}()
	NewSolver(memsys.DefaultParams()).Solve(make([]CoreStats, 2), make([]float64, 3), 800e6)
}

func TestSolveEmpty(t *testing.T) {
	t.Parallel()
	res := NewSolver(memsys.DefaultParams()).Solve(nil, nil, 800e6)
	if res.MemRate != 0 || len(res.TPI) != 0 {
		t.Errorf("empty solve = %+v", res)
	}
}

// Property: TPI is monotonically non-increasing in core frequency and
// non-increasing in memory frequency (ground truth must never reward
// slowing down).
func TestSolveMonotonicity(t *testing.T) {
	t.Parallel()
	sv := NewSolver(memsys.DefaultParams())
	f := func(betaRaw, trafficRaw uint8) bool {
		c := CoreStats{
			CPIBase:     1.2,
			Alpha:       0.01,
			StallL2:     7.5e-9,
			Beta:        float64(betaRaw) / 255.0 * 0.02,
			MemPerInstr: float64(trafficRaw) / 255.0 * 0.03,
			MLP:         1,
		}
		cores := []CoreStats{c, c, c, c}
		// TPI must not decrease as the core clock drops...
		prev := 0.0
		for _, hz := range []float64{4e9, 3e9, 2.2e9} {
			r := sv.SolveUniform(cores, hz, 800e6)
			if r.TPI[0] < prev*(1-1e-6) {
				return false
			}
			prev = r.TPI[0]
		}
		// ...nor as the memory clock drops.
		prev = 0.0
		for _, mhz := range []float64{800e6, 500e6, 206e6} {
			r := sv.SolveUniform(cores, 4e9, mhz)
			if r.TPI[0] < prev*(1-1e-6) {
				return false
			}
			prev = r.TPI[0]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlackAccounting(t *testing.T) {
	t.Parallel()
	s := NewSlack(0.10)
	// Epoch 1: ran exactly at max speed -> gained the full 10% allowance.
	s.Record(5e-3, 5e-3)
	if got := s.Available(); math.Abs(got-0.5e-3) > 1e-12 {
		t.Errorf("Available() = %g, want 5e-4", got)
	}
	if got := s.Degradation(); got != 0 {
		t.Errorf("Degradation() = %g, want 0", got)
	}
	// Epoch 2: ran 20% slow -> slack shrinks by 0.5ms.
	s.Record(5e-3, 6e-3)
	if got := s.Available(); math.Abs(got-0.0) > 1e-12 {
		t.Errorf("Available() after overspend = %g, want 0", got)
	}
	if got := s.Degradation(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Degradation() = %g, want 0.1", got)
	}
	// Allowance for a 5ms epoch with zero accumulated slack.
	if got := s.Allowance(5e-3); math.Abs(got-5.5e-3) > 1e-12 {
		t.Errorf("Allowance() = %g, want 5.5e-3", got)
	}
	s.Reset()
	if s.Available() != 0 || s.Degradation() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSlackGoesNegative(t *testing.T) {
	t.Parallel()
	s := NewSlack(0.05)
	s.Record(1e-3, 2e-3) // 100% slowdown on a 5% bound
	if s.Available() >= 0 {
		t.Error("slack should be negative after bound violation")
	}
	if s.Allowance(1e-3) >= 1e-3*1.05 {
		t.Error("negative slack must shrink the next allowance")
	}
}
