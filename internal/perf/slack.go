package perf

// Slack implements the paper's program-slack accounting (§3 "Performance
// management"):
//
//	Slack = T_MaxFreq·(1+γ) − T_Actual
//
// accumulated epoch by epoch. A controller may slow a program down in the
// next epoch only as far as the accumulated slack plus the new epoch's
// allowance permits.
type Slack struct {
	// Gamma is the maximum allowed slowdown (e.g. 0.10 for 10%).
	Gamma float64

	accumulated float64 // seconds of remaining headroom
	tMax        float64 // estimated total time at maximum frequencies
	tActual     float64 // actual elapsed time
}

// NewSlack returns a tracker for the given performance bound.
func NewSlack(gamma float64) *Slack {
	return &Slack{Gamma: gamma}
}

// Record accounts one epoch: tMaxEpoch is the (estimated) duration this
// epoch's work would have taken at maximum frequencies; tActualEpoch is the
// wall-clock duration it actually took.
func (s *Slack) Record(tMaxEpoch, tActualEpoch float64) {
	s.tMax += tMaxEpoch
	s.tActual += tActualEpoch
	s.accumulated += tMaxEpoch*(1+s.Gamma) - tActualEpoch
}

// Available returns the accumulated slack in seconds (negative when the
// program is behind its bound).
func (s *Slack) Available() float64 { return s.accumulated }

// Allowance returns the time budget for the next epoch whose work would take
// tMaxEpoch at maximum frequencies: the epoch's own allowance plus any
// accumulated slack (or minus any deficit).
func (s *Slack) Allowance(tMaxEpoch float64) float64 {
	return tMaxEpoch*(1+s.Gamma) + s.accumulated
}

// Degradation returns the achieved slowdown so far relative to the
// estimated maximum-frequency execution: T_Actual/T_Max − 1.
func (s *Slack) Degradation() float64 {
	if s.tMax <= 0 {
		return 0
	}
	return s.tActual/s.tMax - 1
}

// Reset clears all accumulated state, keeping the bound. Used when a
// program context-switches (the paper keeps slack per software thread).
func (s *Slack) Reset() { s.accumulated, s.tMax, s.tActual = 0, 0, 0 }
