// Package perf implements the paper's performance model (§3.3, Eq. 1):
//
//	E[CPI] = (E[TPI_CPU] + α·E[TPI_L2] + β·E[TPI_Mem]) · F_CPU
//
// expressed here in time-per-instruction (TPI, seconds) form, together with
// the joint fixed-point solver that couples every core's instruction rate to
// the shared memory system's queueing delays. The same solver serves as the
// fast backend's ground truth (fed with true trace statistics) and as the
// controllers' online prediction model (fed with counter-derived
// statistics); see DESIGN.md §4.
package perf

import (
	"math"

	"coscale/internal/memsys"
)

// CoreStats is the per-core, per-instruction characterization the model
// needs — exactly the quantities derivable from the paper's performance
// counters during a profiling window.
type CoreStats struct {
	// CPIBase is core cycles per instruction spent computing (including
	// L1 hits): (Cycles − StallL2 − StallMem) / TIC.
	CPIBase float64
	// Alpha is the fraction of instructions that access the L2 and stall
	// (TMS/TIC); StallL2 is the average pipeline stall per such
	// instruction, in seconds (frequency-independent: the L2 domain does
	// not scale).
	Alpha   float64
	StallL2 float64
	// Beta is the fraction of instructions that miss the L2 and stall
	// (TLS/TIC).
	Beta float64
	// MemPerInstr is the memory traffic generated per instruction
	// (demand misses + writebacks + prefetch fills), in 64 B requests.
	MemPerInstr float64
	// MLP is the effective memory-level parallelism: the ratio of memory
	// latency to observed per-miss pipeline stall (1 for in-order cores
	// with a single outstanding miss).
	MLP float64
}

// TPI returns the core's time per instruction in seconds at core frequency
// coreHz when the average memory latency is memLatency seconds.
func (s CoreStats) TPI(coreHz, memLatency float64) float64 {
	if coreHz <= 0 {
		return math.Inf(1)
	}
	mlp := s.MLP
	if mlp < 1 {
		mlp = 1
	}
	return s.CPIBase/coreHz + s.Alpha*s.StallL2 + s.Beta*memLatency/mlp
}

// Result is the solved steady state of the full system at one frequency
// combination.
type Result struct {
	TPI        []float64   // seconds per instruction, per core
	IPS        []float64   // instructions per second, per core
	MemRate    float64     // aggregate memory requests per second
	Mem        memsys.Load // memory-system state at that rate
	Iterations int         // fixed-point iterations used
}

// Solver couples the per-core model to the memory queueing model. A Solver
// carries scratch buffers for the fixed-point iteration, so concurrent calls
// on one Solver are not safe; give each goroutine its own.
type Solver struct {
	Mem memsys.Params
	// Tol is the convergence tolerance on relative TPI change
	// (default 1e-9); MaxIter bounds iterations (default 60).
	Tol     float64
	MaxIter int

	// Per-solve constants hoisted out of the fixed-point loop: for core i,
	// fixed[i] = CPIBase/coreHz + Alpha*StallL2 (the latency-independent TPI
	// terms), beta[i] and mpi[i] mirror the CoreStats fields, and mlpn[i] is
	// MLP clamped to >= 1, with 0 as the sentinel for coreHz <= 0 (infinite
	// TPI).
	fixed []float64
	beta  []float64
	mlpn  []float64
	mpi   []float64
}

// NewSolver returns a Solver over the given memory parameters with default
// convergence settings.
func NewSolver(mem memsys.Params) *Solver {
	return &Solver{Mem: mem, Tol: 1e-9, MaxIter: 60}
}

// Solve computes the joint steady state: every core's TPI depends on memory
// latency, which depends on the aggregate request rate, which depends on
// every core's instruction rate. The map is a damped fixed-point iteration;
// it converges because higher latency lowers instruction rates, which lowers
// load (a monotone negative feedback).
//
// coreHz[i] is core i's frequency; busHz is the memory bus frequency.
func (sv *Solver) Solve(cores []CoreStats, coreHz []float64, busHz float64) Result {
	var res Result
	sv.SolveInto(&res, cores, coreHz, busHz)
	return res
}

// SolveInto is Solve writing into res, reusing res.TPI/res.IPS when their
// capacities suffice — the allocation-free form the simulation and search
// hot paths use (see DESIGN.md §7). The result is bit-identical to Solve's.
//
//hot:path
func (sv *Solver) SolveInto(res *Result, cores []CoreStats, coreHz []float64, busHz float64) {
	if len(cores) != len(coreHz) {
		//lint:ignore nopanic caller bug, not an input error: slices are built pairwise by the engine
		panic("perf: cores and coreHz length mismatch")
	}
	tol := sv.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	maxIter := sv.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}

	n := len(cores)

	// Hoist everything constant across iterations: the memory service times
	// at busHz, and each core's latency-independent TPI terms. The remaining
	// per-iteration arithmetic — fixed + (Beta*latency)/mlp — performs the
	// same operations on the same values as CoreStats.TPI, so the fixed
	// point reached is bit-identical.
	sv.fixed = GrowFloats(sv.fixed, n)
	sv.beta = GrowFloats(sv.beta, n)
	sv.mlpn = GrowFloats(sv.mlpn, n)
	sv.mpi = GrowFloats(sv.mpi, n)
	allMLP1 := true
	for i, c := range cores {
		sv.beta[i] = c.Beta
		sv.mpi[i] = c.MemPerInstr
		if coreHz[i] <= 0 {
			sv.mlpn[i] = 0 // the infinite-TPI sentinel
			allMLP1 = false
			continue
		}
		mlp := c.MLP
		if mlp < 1 {
			mlp = 1
		}
		if mlp != 1 { //lint:ignore floateq exact specialization dispatch: x/1.0 == x in IEEE 754, so the MLP==1 fast path is bitwise-equal by construction
			allMLP1 = false
		}
		sv.mlpn[i] = mlp
		sv.fixed[i] = c.CPIBase/coreHz[i] + c.Alpha*c.StallL2
	}
	model := sv.Mem.ModelAt(busHz)
	sv.iterate(res, model, sv.fixed, sv.beta, sv.mlpn, sv.mpi, allMLP1)
}

// iterate runs the damped fixed-point iteration over prepared per-core
// constant arrays. It is the single solver core shared by SolveInto (direct
// prologue) and SolveTable (memoized table gather), which is what makes the
// two entry points bit-identical by construction.
//
// The loop is written for speed — it is the dominant cost of every search
// step at large core counts — but every transformation relative to the
// naive form is exact:
//
//   - iteration 0 never reads the previous TPI (the original zero-filled
//     res.TPI forced maxRel = 1 there, and the loop cannot break before
//     iteration 1 anyway), so it runs as a separate screen-free pass and
//     res.TPI/res.IPS need not be zeroed between solves;
//   - when every core has MLP == 1 the division by mlp is skipped — IEEE 754
//     guarantees x/1.0 == x bitwise;
//   - the convergence test replaces the per-core division rel = |Δ|/prev
//     with two multiply-compares against tol·(1∓1e-12)·prev: strictly inside
//     the guard band the exact quotient provably compares the same way
//     (rounding error is ~2⁻⁵², four orders below the band), and on the
//     band the original division decides. The flag it computes is exactly
//     "maxRel < tol": any prev ≤ 0 core pinned maxRel to at least 1, which
//     blocks convergence iff !(1 < tol) (hoisted as oneBlocksConv).
//
//hot:path
func (sv *Solver) iterate(res *Result, model memsys.LoadModel, fixed, beta, mlpn, mpi []float64, allMLP1 bool) {
	tol := sv.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	maxIter := sv.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}
	n := len(fixed)
	res.TPI = GrowFloats(res.TPI, n)
	res.IPS = GrowFloats(res.IPS, n)
	tpis := res.TPI[:n]
	ips := res.IPS[:n]
	beta = beta[:n]
	mlpn = mlpn[:n]
	mpi = mpi[:n]

	// Iteration 0: compute the unloaded-latency point; no convergence screen.
	load := model.Evaluate(0)
	lat := load.Latency
	rate := 0.0
	if allMLP1 {
		for i := 0; i < n; i++ {
			t := fixed[i] + beta[i]*lat
			tpis[i] = t
			// No +Inf screen needed: for t = +Inf, 1/t is exactly +0.0,
			// the same value the screened branch would leave in v.
			v := 0.0
			if t > 0 {
				v = 1 / t
			}
			ips[i] = v
			rate += v * mpi[i]
		}
	} else {
		for i := 0; i < n; i++ {
			var t float64
			if m := mlpn[i]; m > 0 {
				t = fixed[i] + beta[i]*lat/m
			} else {
				t = math.Inf(1)
			}
			tpis[i] = t
			// No +Inf screen needed: for t = +Inf, 1/t is exactly +0.0,
			// the same value the screened branch would leave in v.
			v := 0.0
			if t > 0 {
				v = 1 / t
			}
			ips[i] = v
			rate += v * mpi[i]
		}
	}
	res.MemRate = rate
	load = model.Evaluate(rate)

	oneBlocksConv := !(1 < tol)
	tolLo := tol * (1 - 1e-12)
	tolHi := tol * (1 + 1e-12)
	iter := 1
	for ; iter < maxIter; iter++ {
		rate = 0.0
		conv := true
		lat = load.Latency
		if allMLP1 {
			for i := 0; i < n; i++ {
				prev := tpis[i]
				t := fixed[i] + beta[i]*lat
				tpis[i] = t
				if conv {
					if prev > 0 {
						d := t - prev
						if d < 0 {
							d = -d
						}
						if !(d < tolLo*prev) {
							if d > tolHi*prev || d/prev >= tol {
								conv = false
							}
						}
					} else if oneBlocksConv {
						conv = false
					}
				}
				v := 0.0
				if t > 0 { // t = +Inf yields exactly +0.0, no screen needed
					v = 1 / t
				}
				ips[i] = v
				rate += v * mpi[i]
			}
		} else {
			for i := 0; i < n; i++ {
				prev := tpis[i]
				var t float64
				if m := mlpn[i]; m > 0 {
					t = fixed[i] + beta[i]*lat/m
				} else {
					t = math.Inf(1)
				}
				tpis[i] = t
				if conv {
					if prev > 0 {
						d := t - prev
						if d < 0 {
							d = -d
						}
						if !(d < tolLo*prev) {
							if d > tolHi*prev || d/prev >= tol {
								conv = false
							}
						}
					} else if oneBlocksConv {
						conv = false
					}
				}
				v := 0.0
				if t > 0 { // t = +Inf yields exactly +0.0, no screen needed
					v = 1 / t
				}
				ips[i] = v
				rate += v * mpi[i]
			}
		}
		// Damp the rate to avoid oscillation near saturation.
		rate = 0.5*rate + 0.5*res.MemRate
		res.MemRate = rate
		load = model.Evaluate(rate)
		if conv {
			break
		}
	}
	res.Mem = load
	res.Iterations = iter + 1
}

// ResizeFloats returns s resized to length n, reusing its backing array when
// the capacity suffices (elements are zeroed) and allocating otherwise. It
// is the shared growth helper behind the hot paths' scratch buffers.
func ResizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// GrowFloats returns s resized to length n, reusing its backing array when
// the capacity suffices and allocating otherwise — like ResizeFloats but
// WITHOUT zeroing. For buffers every element of which is written before it
// is read (the solver's working arrays), the clear is pure overhead.
func GrowFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

// ResizeInts is ResizeFloats for int slices.
func ResizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// StepTable memoizes, per candidate core-frequency step, every core's
// latency-independent TPI term fixed[i] = CPIBase/Hz(step) + Alpha·StallL2,
// together with the epoch-constant per-core arrays the fixed-point iteration
// reads (beta, clamped MLP, memory traffic per instruction). During one
// decision the search evaluates dozens of operating points over the same
// statistics; the table turns each evaluation's O(cores) prologue into an
// incremental gather that touches only the cores whose step changed since
// the previous evaluation — zero of them on a memory-frequency move.
//
// Columns are built lazily on first use and their backing arrays are reused
// across epochs, so the steady state allocates nothing. Column storage is
// struct-of-arrays: every step's column lives in one flat backing array at
// stride n, so a marginal scan walking cores [lo, hi) at one step reads a
// single contiguous run of float64 lanes and adjacent columns prefetch
// linearly. A StepTable is not safe for concurrent mutation; after Prebuild,
// TPIAt/TPIPairAt/FixedCol are pure reads and safe to share across scanning
// goroutines until the next Reset.
type StepTable struct {
	stats []CoreStats // per-core statistics (aliases the caller's epoch buffer)
	hz    []float64   // candidate core frequency per ladder step

	cols  []float64 // flat [step*n + core] CPIBase/hz + Alpha*StallL2
	built []bool    // column s (cols[s*n : (s+1)*n]) is valid

	beta    []float64
	mlpn    []float64 // MLP clamped to >= 1
	mpi     []float64
	allMLP1 bool

	fixed []float64 // working row: FixedCol(cur[i])[i]
	cur   []int     // step the working row reflects per core; -1 = unset
}

// Reset re-points the table at a new epoch's statistics and candidate
// frequencies, invalidating every memoized column while reusing all backing
// arrays. stats is retained (not copied) and must stay unchanged until the
// next Reset; every hz must be positive (a frequency ladder guarantees it).
//
//hot:path
func (t *StepTable) Reset(stats []CoreStats, stepHz []float64) {
	n := len(stats)
	t.stats = stats
	t.hz = stepHz
	steps := len(stepHz)
	if cap(t.cols) < steps*n {
		t.cols = make([]float64, steps*n) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	t.cols = t.cols[:steps*n]
	if cap(t.built) < steps {
		t.built = make([]bool, steps) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	t.built = t.built[:steps]
	for s := range t.built {
		t.built[s] = false
	}
	t.beta = GrowFloats(t.beta, n)
	t.mlpn = GrowFloats(t.mlpn, n)
	t.mpi = GrowFloats(t.mpi, n)
	t.fixed = GrowFloats(t.fixed, n)
	if cap(t.cur) < n {
		t.cur = make([]int, n) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	t.cur = t.cur[:n]
	allMLP1 := true
	for i, c := range stats {
		t.beta[i] = c.Beta
		t.mpi[i] = c.MemPerInstr
		mlp := c.MLP
		if mlp < 1 {
			mlp = 1
		}
		if mlp != 1 { //lint:ignore floateq exact specialization dispatch, see Solver.iterate
			allMLP1 = false
		}
		t.mlpn[i] = mlp
		t.cur[i] = -1
	}
	t.allMLP1 = allMLP1
}

// FixedCol returns the memoized latency-independent TPI column for ladder
// step s, building it on first use after a Reset. The returned slice is a
// view into the table's flat column store, valid until the next Reset.
//
//hot:path
func (t *StepTable) FixedCol(s int) []float64 {
	if !t.built[s] {
		t.buildCol(s)
	}
	n := len(t.stats)
	return t.cols[s*n : s*n+n]
}

// buildCol fills one column. Runs at most Steps() times per epoch (cold
// relative to the per-evaluation paths) into the flat column store.
func (t *StepTable) buildCol(s int) {
	n := len(t.stats)
	col := t.cols[s*n : s*n+n]
	hz := t.hz[s]
	for i, c := range t.stats {
		col[i] = c.CPIBase/hz + c.Alpha*c.StallL2
	}
	t.built[s] = true
}

// Prebuild materializes every column, so subsequent TPIAt/TPIPairAt/FixedCol
// calls are pure reads. Sharded marginal scans call it before fanning out —
// the lazy first-use build is a data race when shards touch one unbuilt
// column concurrently. Column contents are a pure function of (stats, hz),
// so build order — eager or lazy — cannot change a single bit of them.
//
//hot:path
func (t *StepTable) Prebuild() {
	for s := range t.built {
		if !t.built[s] {
			t.buildCol(s)
		}
	}
}

// TPIAt predicts core i's TPI at ladder step s under memory latency lat —
// bit-identical to stats[i].TPI(hz[s], lat): the memoized column holds the
// identical first two terms, and the third is the same expression on the
// same values.
//
//hot:path
func (t *StepTable) TPIAt(i, s int, lat float64) float64 {
	return t.FixedCol(s)[i] + t.beta[i]*lat/t.mlpn[i]
}

// TPIPairAt returns (TPIAt(i, s, lat), TPIAt(i, s+1, lat)) computing the
// shared latency term beta·lat/mlp once — the same operations on the same
// values produce the same bits, so each component is bit-identical to its
// separate TPIAt call. Marginal scoring reads exactly this adjacent-step
// pair per core, and the pair call also hoists one column bounds check.
//
//hot:path
func (t *StepTable) TPIPairAt(i, s int, lat float64) (cur, next float64) {
	blat := t.beta[i] * lat / t.mlpn[i]
	return t.FixedCol(s)[i] + blat, t.FixedCol(s + 1)[i] + blat
}

// gather updates the working fixed row to the given step vector, touching
// only the cores whose step changed since the previous gather.
//
//hot:path
func (t *StepTable) gather(steps []int) {
	fixed := t.fixed
	cur := t.cur
	for i, s := range steps {
		if cur[i] == s {
			continue
		}
		cur[i] = s
		fixed[i] = t.FixedCol(s)[i]
	}
}

// SolveTable is SolveInto drawing its per-core constants from a memoized
// StepTable instead of recomputing them: the result is bit-identical to
// SolveInto(res, tbl.stats, hzOf(steps), busHz) when model was built from
// the same memory parameters at busHz (memsys.Params.ModelAt is a pure
// function of its inputs). The search hot path pairs it with a
// memsys.ModelCache so a candidate evaluation performs no per-core model
// preparation at all.
//
//hot:path
func (sv *Solver) SolveTable(res *Result, tbl *StepTable, steps []int, model memsys.LoadModel) {
	if len(steps) != len(tbl.stats) {
		//lint:ignore nopanic caller bug, not an input error: the step vector and the table are built pairwise by the evaluator
		panic("perf: steps and table length mismatch")
	}
	tbl.gather(steps)
	sv.iterate(res, model, tbl.fixed, tbl.beta, tbl.mlpn, tbl.mpi, tbl.allMLP1)
}

// SolveUniform is a convenience wrapper for configurations where all cores
// share one frequency.
func (sv *Solver) SolveUniform(cores []CoreStats, coreHz, busHz float64) Result {
	//hot:alloc-ok per-epoch reference solve: one small slice per epoch, not per search evaluation
	hz := make([]float64, len(cores))
	for i := range hz {
		hz[i] = coreHz
	}
	return sv.Solve(cores, hz, busHz)
}
