// Package perf implements the paper's performance model (§3.3, Eq. 1):
//
//	E[CPI] = (E[TPI_CPU] + α·E[TPI_L2] + β·E[TPI_Mem]) · F_CPU
//
// expressed here in time-per-instruction (TPI, seconds) form, together with
// the joint fixed-point solver that couples every core's instruction rate to
// the shared memory system's queueing delays. The same solver serves as the
// fast backend's ground truth (fed with true trace statistics) and as the
// controllers' online prediction model (fed with counter-derived
// statistics); see DESIGN.md §4.
package perf

import (
	"math"

	"coscale/internal/memsys"
)

// CoreStats is the per-core, per-instruction characterization the model
// needs — exactly the quantities derivable from the paper's performance
// counters during a profiling window.
type CoreStats struct {
	// CPIBase is core cycles per instruction spent computing (including
	// L1 hits): (Cycles − StallL2 − StallMem) / TIC.
	CPIBase float64
	// Alpha is the fraction of instructions that access the L2 and stall
	// (TMS/TIC); StallL2 is the average pipeline stall per such
	// instruction, in seconds (frequency-independent: the L2 domain does
	// not scale).
	Alpha   float64
	StallL2 float64
	// Beta is the fraction of instructions that miss the L2 and stall
	// (TLS/TIC).
	Beta float64
	// MemPerInstr is the memory traffic generated per instruction
	// (demand misses + writebacks + prefetch fills), in 64 B requests.
	MemPerInstr float64
	// MLP is the effective memory-level parallelism: the ratio of memory
	// latency to observed per-miss pipeline stall (1 for in-order cores
	// with a single outstanding miss).
	MLP float64
}

// TPI returns the core's time per instruction in seconds at core frequency
// coreHz when the average memory latency is memLatency seconds.
func (s CoreStats) TPI(coreHz, memLatency float64) float64 {
	if coreHz <= 0 {
		return math.Inf(1)
	}
	mlp := s.MLP
	if mlp < 1 {
		mlp = 1
	}
	return s.CPIBase/coreHz + s.Alpha*s.StallL2 + s.Beta*memLatency/mlp
}

// Result is the solved steady state of the full system at one frequency
// combination.
type Result struct {
	TPI        []float64   // seconds per instruction, per core
	IPS        []float64   // instructions per second, per core
	MemRate    float64     // aggregate memory requests per second
	Mem        memsys.Load // memory-system state at that rate
	Iterations int         // fixed-point iterations used
}

// Solver couples the per-core model to the memory queueing model. A Solver
// carries scratch buffers for the fixed-point iteration, so concurrent calls
// on one Solver are not safe; give each goroutine its own.
type Solver struct {
	Mem memsys.Params
	// Tol is the convergence tolerance on relative TPI change
	// (default 1e-9); MaxIter bounds iterations (default 60).
	Tol     float64
	MaxIter int

	// Per-solve constants hoisted out of the fixed-point loop: for core i,
	// fixed[i] = CPIBase/coreHz + Alpha*StallL2 (the latency-independent TPI
	// terms), beta[i] and mpi[i] mirror the CoreStats fields, and mlpn[i] is
	// MLP clamped to >= 1, with 0 as the sentinel for coreHz <= 0 (infinite
	// TPI).
	fixed []float64
	beta  []float64
	mlpn  []float64
	mpi   []float64
}

// NewSolver returns a Solver over the given memory parameters with default
// convergence settings.
func NewSolver(mem memsys.Params) *Solver {
	return &Solver{Mem: mem, Tol: 1e-9, MaxIter: 60}
}

// Solve computes the joint steady state: every core's TPI depends on memory
// latency, which depends on the aggregate request rate, which depends on
// every core's instruction rate. The map is a damped fixed-point iteration;
// it converges because higher latency lowers instruction rates, which lowers
// load (a monotone negative feedback).
//
// coreHz[i] is core i's frequency; busHz is the memory bus frequency.
func (sv *Solver) Solve(cores []CoreStats, coreHz []float64, busHz float64) Result {
	var res Result
	sv.SolveInto(&res, cores, coreHz, busHz)
	return res
}

// SolveInto is Solve writing into res, reusing res.TPI/res.IPS when their
// capacities suffice — the allocation-free form the simulation and search
// hot paths use (see DESIGN.md §7). The result is bit-identical to Solve's.
//
//hot:path
func (sv *Solver) SolveInto(res *Result, cores []CoreStats, coreHz []float64, busHz float64) {
	if len(cores) != len(coreHz) {
		//lint:ignore nopanic caller bug, not an input error: slices are built pairwise by the engine
		panic("perf: cores and coreHz length mismatch")
	}
	tol := sv.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	maxIter := sv.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}

	n := len(cores)
	res.TPI = ResizeFloats(res.TPI, n)
	res.IPS = ResizeFloats(res.IPS, n)
	res.MemRate = 0

	// Hoist everything constant across iterations: the memory service times
	// at busHz, and each core's latency-independent TPI terms. The remaining
	// per-iteration arithmetic — fixed + (Beta*latency)/mlp — performs the
	// same operations on the same values as CoreStats.TPI, so the fixed
	// point reached is bit-identical.
	sv.fixed = ResizeFloats(sv.fixed, n)
	sv.beta = ResizeFloats(sv.beta, n)
	sv.mlpn = ResizeFloats(sv.mlpn, n)
	sv.mpi = ResizeFloats(sv.mpi, n)
	for i, c := range cores {
		sv.beta[i] = c.Beta
		sv.mpi[i] = c.MemPerInstr
		if coreHz[i] <= 0 {
			continue // mlpn[i] stays 0: the infinite-TPI sentinel
		}
		mlp := c.MLP
		if mlp < 1 {
			mlp = 1
		}
		sv.mlpn[i] = mlp
		sv.fixed[i] = c.CPIBase/coreHz[i] + c.Alpha*c.StallL2
	}
	model := sv.Mem.ModelAt(busHz)

	// Start from the unloaded latency.
	load := model.Evaluate(0)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		rate := 0.0
		maxRel := 0.0
		lat := load.Latency
		for i := range sv.fixed {
			var tpi float64
			if m := sv.mlpn[i]; m > 0 {
				tpi = sv.fixed[i] + sv.beta[i]*lat/m
			} else {
				tpi = math.Inf(1)
			}
			if prev := res.TPI[i]; prev > 0 {
				rel := math.Abs(tpi-prev) / prev
				if rel > maxRel {
					maxRel = rel
				}
			} else {
				maxRel = 1
			}
			res.TPI[i] = tpi
			if tpi > 0 && !math.IsInf(tpi, 1) {
				res.IPS[i] = 1 / tpi
			} else {
				res.IPS[i] = 0
			}
			rate += res.IPS[i] * sv.mpi[i]
		}
		// Damp the rate to avoid oscillation near saturation.
		if iter > 0 {
			rate = 0.5*rate + 0.5*res.MemRate
		}
		res.MemRate = rate
		load = model.Evaluate(rate)
		if iter > 0 && maxRel < tol {
			break
		}
	}
	res.Mem = load
	res.Iterations = iter + 1
}

// ResizeFloats returns s resized to length n, reusing its backing array when
// the capacity suffices (elements are zeroed) and allocating otherwise. It
// is the shared growth helper behind the hot paths' scratch buffers.
func ResizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ResizeInts is ResizeFloats for int slices.
func ResizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// SolveUniform is a convenience wrapper for configurations where all cores
// share one frequency.
func (sv *Solver) SolveUniform(cores []CoreStats, coreHz, busHz float64) Result {
	hz := make([]float64, len(cores))
	for i := range hz {
		hz[i] = coreHz
	}
	return sv.Solve(cores, hz, busHz)
}
