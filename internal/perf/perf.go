// Package perf implements the paper's performance model (§3.3, Eq. 1):
//
//	E[CPI] = (E[TPI_CPU] + α·E[TPI_L2] + β·E[TPI_Mem]) · F_CPU
//
// expressed here in time-per-instruction (TPI, seconds) form, together with
// the joint fixed-point solver that couples every core's instruction rate to
// the shared memory system's queueing delays. The same solver serves as the
// fast backend's ground truth (fed with true trace statistics) and as the
// controllers' online prediction model (fed with counter-derived
// statistics); see DESIGN.md §4.
package perf

import (
	"math"

	"coscale/internal/memsys"
)

// CoreStats is the per-core, per-instruction characterization the model
// needs — exactly the quantities derivable from the paper's performance
// counters during a profiling window.
type CoreStats struct {
	// CPIBase is core cycles per instruction spent computing (including
	// L1 hits): (Cycles − StallL2 − StallMem) / TIC.
	CPIBase float64
	// Alpha is the fraction of instructions that access the L2 and stall
	// (TMS/TIC); StallL2 is the average pipeline stall per such
	// instruction, in seconds (frequency-independent: the L2 domain does
	// not scale).
	Alpha   float64
	StallL2 float64
	// Beta is the fraction of instructions that miss the L2 and stall
	// (TLS/TIC).
	Beta float64
	// MemPerInstr is the memory traffic generated per instruction
	// (demand misses + writebacks + prefetch fills), in 64 B requests.
	MemPerInstr float64
	// MLP is the effective memory-level parallelism: the ratio of memory
	// latency to observed per-miss pipeline stall (1 for in-order cores
	// with a single outstanding miss).
	MLP float64
}

// TPI returns the core's time per instruction in seconds at core frequency
// coreHz when the average memory latency is memLatency seconds.
func (s CoreStats) TPI(coreHz, memLatency float64) float64 {
	if coreHz <= 0 {
		return math.Inf(1)
	}
	mlp := s.MLP
	if mlp < 1 {
		mlp = 1
	}
	return s.CPIBase/coreHz + s.Alpha*s.StallL2 + s.Beta*memLatency/mlp
}

// Result is the solved steady state of the full system at one frequency
// combination.
type Result struct {
	TPI        []float64   // seconds per instruction, per core
	IPS        []float64   // instructions per second, per core
	MemRate    float64     // aggregate memory requests per second
	Mem        memsys.Load // memory-system state at that rate
	Iterations int         // fixed-point iterations used
}

// Solver couples the per-core model to the memory queueing model.
type Solver struct {
	Mem memsys.Params
	// Tol is the convergence tolerance on relative TPI change
	// (default 1e-9); MaxIter bounds iterations (default 60).
	Tol     float64
	MaxIter int
}

// NewSolver returns a Solver over the given memory parameters with default
// convergence settings.
func NewSolver(mem memsys.Params) *Solver {
	return &Solver{Mem: mem, Tol: 1e-9, MaxIter: 60}
}

// Solve computes the joint steady state: every core's TPI depends on memory
// latency, which depends on the aggregate request rate, which depends on
// every core's instruction rate. The map is a damped fixed-point iteration;
// it converges because higher latency lowers instruction rates, which lowers
// load (a monotone negative feedback).
//
// coreHz[i] is core i's frequency; busHz is the memory bus frequency.
func (sv *Solver) Solve(cores []CoreStats, coreHz []float64, busHz float64) Result {
	if len(cores) != len(coreHz) {
		//lint:ignore nopanic caller bug, not an input error: slices are built pairwise by the engine
		panic("perf: cores and coreHz length mismatch")
	}
	tol := sv.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	maxIter := sv.MaxIter
	if maxIter <= 0 {
		maxIter = 60
	}

	res := Result{
		TPI: make([]float64, len(cores)),
		IPS: make([]float64, len(cores)),
	}
	// Start from the unloaded latency.
	load := sv.Mem.Evaluate(busHz, 0)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		rate := 0.0
		maxRel := 0.0
		for i, c := range cores {
			tpi := c.TPI(coreHz[i], load.Latency)
			if prev := res.TPI[i]; prev > 0 {
				rel := math.Abs(tpi-prev) / prev
				if rel > maxRel {
					maxRel = rel
				}
			} else {
				maxRel = 1
			}
			res.TPI[i] = tpi
			if tpi > 0 && !math.IsInf(tpi, 1) {
				res.IPS[i] = 1 / tpi
			} else {
				res.IPS[i] = 0
			}
			rate += res.IPS[i] * c.MemPerInstr
		}
		// Damp the rate to avoid oscillation near saturation.
		if iter > 0 {
			rate = 0.5*rate + 0.5*res.MemRate
		}
		res.MemRate = rate
		load = sv.Mem.Evaluate(busHz, rate)
		if iter > 0 && maxRel < tol {
			break
		}
	}
	res.Mem = load
	res.Iterations = iter + 1
	return res
}

// SolveUniform is a convenience wrapper for configurations where all cores
// share one frequency.
func (sv *Solver) SolveUniform(cores []CoreStats, coreHz, busHz float64) Result {
	hz := make([]float64, len(cores))
	for i := range hz {
		hz[i] = coreHz
	}
	return sv.Solve(cores, hz, busHz)
}
