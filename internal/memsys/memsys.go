// Package memsys provides the analytic memory-system performance model used
// both as the fast backend's ground truth and as the controllers' online
// model (the paper's E[TPI_Mem] = ξbank·(S_Bank + ξbus·S_Bus) decomposition,
// §3.3). It models the paper's memory subsystem: 4 DDR3 channels, each with
// two dual-rank DIMMs (32 banks per channel), closed-page row-buffer
// management and bank interleaving.
//
// The DRAM core timings (tRCD, tCL, tRP) are fixed in nanoseconds — they are
// properties of the DRAM array, not the interface clock — while the data
// burst and memory-controller pipeline scale with the bus/MC frequency.
// Queueing delays follow M/M/1-style response-time inflation on bank and
// bus utilization, which is what gives memory DVFS its characteristic
// behaviour: cheap at low traffic, increasingly expensive as the bus
// saturates.
package memsys

import "math"

// Params describes the memory subsystem geometry and timing (Table 2).
type Params struct {
	Channels        int     // independent DDR3 channels
	BanksPerChannel int     // banks across all ranks on a channel
	TRCDNs          float64 // row-to-column delay, ns
	TCLNs           float64 // CAS latency, ns
	TRPNs           float64 // row precharge, ns
	BurstCycles     float64 // bus cycles per 64 B transfer (BL8 on DDR = 4)
	MCCycles        float64 // controller pipeline cycles, at the MC clock (2x bus)

	// MaxUtil caps modelled utilization; beyond it the queueing formulas
	// are extrapolated linearly to keep fixed-point solvers stable.
	MaxUtil float64
}

// DefaultParams returns the Table 2 memory configuration.
func DefaultParams() Params {
	return Params{
		Channels:        4,
		BanksPerChannel: 32, // 2 DIMMs x 2 ranks x 8 banks
		TRCDNs:          15,
		TCLNs:           15,
		TRPNs:           15,
		BurstCycles:     4,
		MCCycles:        6,
		MaxUtil:         0.97,
	}
}

// SBus returns the data-burst (transfer) time in seconds at bus frequency
// busHz.
func (p Params) SBus(busHz float64) float64 {
	return p.BurstCycles / busHz
}

// SBank returns the unloaded bank access time in seconds at bus frequency
// busHz: activate + CAS (fixed DRAM-core nanoseconds) plus the controller
// pipeline at the MC clock (double the bus clock).
func (p Params) SBank(busHz float64) float64 {
	return (p.TRCDNs+p.TCLNs)*1e-9 + p.MCCycles/(2*busHz)
}

// BankOccupancy returns the time one request occupies a bank under
// closed-page management: activate, CAS, transfer, precharge.
func (p Params) BankOccupancy(busHz float64) float64 {
	return (p.TRCDNs+p.TCLNs+p.TRPNs)*1e-9 + p.SBus(busHz)
}

// Load is the modelled state of the memory system at one operating point.
type Load struct {
	Latency  float64 // average seconds from request arrival to data return
	XiBus    float64 // bus response inflation (>= 1); paper's ξ_bus
	XiBank   float64 // bank response inflation (>= 1); paper's ξ_bank
	UtilBus  float64 // data-bus utilization in [0, ~1)
	UtilBank float64 // average per-bank utilization
}

// Evaluate models the memory system at bus frequency busHz with an aggregate
// request arrival rate of reqPerSec (reads + writebacks + prefetch fills
// across all channels). Requests interleave evenly across channels and
// banks.
func (p Params) Evaluate(busHz, reqPerSec float64) Load {
	return p.ModelAt(busHz).Evaluate(reqPerSec)
}

// LoadModel is Params with the bus-frequency-dependent service times
// precomputed, for callers that evaluate many request rates at one busHz
// (the solver's fixed-point loop). Evaluate performs the same arithmetic on
// the same values as Params.Evaluate, so results are bit-identical.
type LoadModel struct {
	invalid  bool // busHz <= 0
	channels float64
	banks    float64
	maxUtil  float64
	sBus     float64
	sBank    float64
	bankOcc  float64
}

// ModelAt precomputes the service-time constants at one bus frequency.
func (p Params) ModelAt(busHz float64) LoadModel {
	if busHz <= 0 {
		return LoadModel{invalid: true}
	}
	return LoadModel{
		channels: float64(p.Channels),
		banks:    float64(p.BanksPerChannel),
		maxUtil:  p.MaxUtil,
		sBus:     p.SBus(busHz),
		sBank:    p.SBank(busHz),
		bankOcc:  p.BankOccupancy(busHz),
	}
}

// Evaluate computes the queueing state at an aggregate request rate.
//
//hot:path
func (m LoadModel) Evaluate(reqPerSec float64) Load {
	if m.invalid {
		return Load{Latency: math.Inf(1), XiBus: 1, XiBank: 1}
	}
	perChan := reqPerSec / m.channels

	uBus := clampUtil(perChan*m.sBus, m.maxUtil)
	uBank := clampUtil(perChan*m.bankOcc/m.banks, m.maxUtil)

	xiBus := 1 / (1 - uBus)
	xiBank := 1 / (1 - uBank)

	return Load{
		Latency:  xiBank * (m.sBank + xiBus*m.sBus),
		XiBus:    xiBus,
		XiBank:   xiBank,
		UtilBus:  uBus,
		UtilBank: uBank,
	}
}

// PeakBandwidth returns the request service capacity (64 B requests per
// second) of the whole memory system at bus frequency busHz, limited by the
// data bus.
func (p Params) PeakBandwidth(busHz float64) float64 {
	return float64(p.Channels) * busHz / p.BurstCycles
}

func clampUtil(u, max float64) float64 {
	if u < 0 {
		return 0
	}
	if u > max {
		return max
	}
	return u
}

// ModelCache memoizes ModelAt over a ladder of candidate bus frequencies, so
// per-epoch search paths can evaluate many operating points without
// re-deriving the per-frequency service-time constants. ModelAt is a pure
// function of (Params, busHz), so a cached model is bit-identical to a fresh
// one. Models are built lazily on first use; backing arrays are reused
// across Resets, so the steady state allocates nothing. Not safe for
// concurrent use.
type ModelCache struct {
	p      Params
	hz     []float64
	models []LoadModel
	built  []bool
}

// Reset re-points the cache at memory parameters p and the candidate bus
// frequencies hz (index = ladder step), invalidating every memoized model.
//
//hot:path
func (c *ModelCache) Reset(p Params, hz []float64) {
	c.p = p
	c.hz = hz
	steps := len(hz)
	if cap(c.models) < steps {
		c.models = make([]LoadModel, steps) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	c.models = c.models[:steps]
	if cap(c.built) < steps {
		c.built = make([]bool, steps) //hot:alloc-ok capacity miss: runs once until the ladder-sized scratch is warm
	}
	c.built = c.built[:steps]
	for s := range c.built {
		c.built[s] = false
	}
}

// Prebuild materializes every step's model, so subsequent At calls are pure
// reads. A cache meant to be shared across goroutines (the per-platform
// table cache) must be prebuilt: the lazy first-use build in At is a data
// race under concurrent readers. ModelAt is a pure function of (Params, hz),
// so eager and lazy builds produce identical models.
func (c *ModelCache) Prebuild() {
	for s := range c.built {
		if !c.built[s] {
			c.models[s] = c.p.ModelAt(c.hz[s])
			c.built[s] = true
		}
	}
}

// At returns the memoized model for ladder step s, building it on first use.
//
//hot:path
func (c *ModelCache) At(s int) LoadModel {
	if !c.built[s] {
		c.models[s] = c.p.ModelAt(c.hz[s])
		c.built[s] = true
	}
	return c.models[s]
}
