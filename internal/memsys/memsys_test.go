package memsys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnloadedLatency(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	l := p.Evaluate(800e6, 0)
	// At 800 MHz: SBank = 30ns + 6/(1.6GHz) = 33.75ns; SBus = 4/800MHz = 5ns.
	want := 38.75e-9
	if math.Abs(l.Latency-want) > 1e-12 {
		t.Errorf("unloaded latency = %g, want %g", l.Latency, want)
	}
	if l.XiBus != 1 || l.XiBank != 1 {
		t.Errorf("unloaded xi = (%g, %g), want (1,1)", l.XiBus, l.XiBank)
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	prev := 0.0
	for _, rate := range []float64{0, 1e8, 3e8, 5e8, 6e8} {
		l := p.Evaluate(800e6, rate)
		if l.Latency <= prev {
			t.Errorf("latency not increasing at rate %g: %g <= %g", rate, l.Latency, prev)
		}
		prev = l.Latency
	}
}

func TestLatencyIncreasesAsFrequencyDrops(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	rate := 2e8 // 200M requests/s across 4 channels
	prev := 0.0
	for _, hz := range []float64{800e6, 600e6, 400e6, 206e6} {
		l := p.Evaluate(hz, rate)
		if l.Latency <= prev {
			t.Errorf("latency at %g Hz = %g, want > %g", hz, l.Latency, prev)
		}
		prev = l.Latency
	}
}

func TestFrequencySensitivityGrowsWithLoad(t *testing.T) {
	t.Parallel()
	// The latency penalty of scaling 800->200 MHz must be much larger for
	// a loaded system than an idle one: this is what makes memory DVFS
	// cheap for ILP workloads and expensive for MEM workloads.
	p := DefaultParams()
	idle := p.Evaluate(206e6, 0).Latency / p.Evaluate(800e6, 0).Latency
	loaded := p.Evaluate(206e6, 1.8e8).Latency / p.Evaluate(800e6, 1.8e8).Latency
	if loaded < idle*1.5 {
		t.Errorf("loaded ratio %.2f not sufficiently above idle ratio %.2f", loaded, idle)
	}
}

func TestUtilizationClamped(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	l := p.Evaluate(206e6, 1e12) // absurd load
	if l.UtilBus > p.MaxUtil || l.UtilBank > p.MaxUtil {
		t.Errorf("utilization exceeded MaxUtil: %+v", l)
	}
	if math.IsInf(l.Latency, 1) || math.IsNaN(l.Latency) {
		t.Errorf("latency not finite under saturation: %g", l.Latency)
	}
}

func TestZeroFrequency(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	l := p.Evaluate(0, 1e8)
	if !math.IsInf(l.Latency, 1) {
		t.Errorf("zero frequency latency = %g, want +Inf", l.Latency)
	}
}

func TestPeakBandwidth(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// 4 channels x 800 MHz / 4 cycles = 800M requests/s = 51.2 GB/s.
	if got := p.PeakBandwidth(800e6); got != 8e8 {
		t.Errorf("PeakBandwidth(800MHz) = %g, want 8e8", got)
	}
	if got := p.PeakBandwidth(200e6); got != 2e8 {
		t.Errorf("PeakBandwidth(200MHz) = %g, want 2e8", got)
	}
}

func TestServiceTimeComponents(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// SBus doubles when frequency halves.
	if r := p.SBus(400e6) / p.SBus(800e6); math.Abs(r-2) > 1e-9 {
		t.Errorf("SBus ratio = %g, want 2", r)
	}
	// SBank scales sub-linearly: only the MC pipeline portion scales.
	r := p.SBank(400e6) / p.SBank(800e6)
	if r <= 1 || r >= 2 {
		t.Errorf("SBank ratio = %g, want in (1,2)", r)
	}
	// Bank occupancy includes precharge.
	if p.BankOccupancy(800e6) <= p.SBank(800e6) {
		t.Error("BankOccupancy should exceed SBank")
	}
}

// Property: latency is finite, >= the unloaded service floor, and xi >= 1
// for any reasonable operating point.
func TestEvaluateProperties(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	f := func(hzRaw, rateRaw uint16) bool {
		hz := 200e6 + float64(hzRaw)/65535.0*600e6
		rate := float64(rateRaw) / 65535.0 * 1e9
		l := p.Evaluate(hz, rate)
		floor := p.SBank(hz) + p.SBus(hz)
		return l.Latency >= floor-1e-15 && !math.IsNaN(l.Latency) &&
			l.XiBus >= 1 && l.XiBank >= 1 && l.UtilBus >= 0 && l.UtilBank >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
