package trace

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds produced identical first values")
	}
}

func TestRandFloatRange(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", f)
		}
	}
	if NewRand(1).Intn(0) != 0 {
		t.Error("Intn(0) != 0")
	}
}

func TestGeneratorGapMatchesAPKI(t *testing.T) {
	p := MustLookup("swim") // L2APKI 40 -> mean gap 25 instructions
	g := NewGenerator(p, 0, 1_000_000, 1)
	var instr, accesses uint64
	for accesses = 0; accesses < 20000; accesses++ {
		a := g.Next()
		instr += a.Gap
	}
	apki := 1000 * float64(accesses) / float64(instr)
	// swim's phases modulate APKI (mean multiplier 1.0), so the long-run
	// average should land near the profile value.
	if math.Abs(apki-p.L2APKI)/p.L2APKI > 0.15 {
		t.Errorf("generated APKI %.1f, profile %.1f", apki, p.L2APKI)
	}
}

func TestGeneratorAddressesWithinFootprint(t *testing.T) {
	p := MustLookup("milc")
	g := NewGenerator(p, 3, 1_000_000, 1)
	base := uint64(3) * GeneratorRegionBytes
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Addr < base || a.Addr >= base+g.Footprint() {
			t.Fatalf("address %#x outside region [%#x, %#x)", a.Addr, base, base+g.Footprint())
		}
		if a.Addr%64 != 0 {
			t.Fatalf("address %#x not block aligned", a.Addr)
		}
	}
}

func TestGeneratorSequentialLocality(t *testing.T) {
	// swim (RowLocality 0.8) must produce many sequential-block pairs;
	// twolf (0.45) far fewer.
	seq := func(name string) float64 {
		g := NewGenerator(MustLookup(name), 0, 1_000_000, 5)
		prev := uint64(0)
		hits, n := 0, 20000
		for i := 0; i < n; i++ {
			a := g.Next()
			if prev != 0 && a.Addr == prev+64 {
				hits++
			}
			prev = a.Addr
		}
		return float64(hits) / float64(n)
	}
	if s, tw := seq("swim"), seq("twolf"); s <= tw {
		t.Errorf("swim sequentiality %.2f should exceed twolf %.2f", s, tw)
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	p := MustLookup("gcc")
	a := NewGenerator(p, 1, 1000, 7)
	b := NewGenerator(p, 1, 1000, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewGenerator(p, 2, 1000, 7) // different core
	same := true
	for i := 0; i < 10; i++ {
		if a.Next().Gap != c.Next().Gap {
			same = false
		}
	}
	if same {
		t.Error("different cores produced identical gap streams")
	}
}

func TestGeneratorPhaseModulation(t *testing.T) {
	// milc: phase 1 (first 45%) has 0.5x memory intensity; final phase
	// 1.55x. Gaps must shrink accordingly.
	p := MustLookup("milc")
	budget := uint64(100000)
	g := NewGenerator(p, 0, budget, 3)
	var early, late float64
	var earlyN, lateN int
	for g.Done() < budget {
		frac := float64(g.Done()) / float64(budget)
		a := g.Next()
		if frac < 0.4 {
			early += float64(a.Gap)
			earlyN++
		} else if frac > 0.65 && frac < 0.95 {
			late += float64(a.Gap)
			lateN++
		}
	}
	if earlyN == 0 || lateN == 0 {
		t.Fatal("phases not sampled")
	}
	if early/float64(earlyN) <= late/float64(lateN) {
		t.Errorf("early gaps (%.1f) should exceed late gaps (%.1f)",
			early/float64(earlyN), late/float64(lateN))
	}
}

func TestGeneratorFootprintBounds(t *testing.T) {
	for _, n := range Names() {
		g := NewGenerator(MustLookup(n), 0, 1000, 1)
		fp := g.Footprint()
		if fp < 256*1024 || fp > 64*1024*1024 {
			t.Errorf("%s: footprint %d outside [256KB, 64MB]", n, fp)
		}
	}
}
