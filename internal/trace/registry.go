package trace

// The application registry. Each entry is a synthetic stand-in for the SPEC
// 2000/2006 program of the same name, calibrated (jointly with the shared-LLC
// contention model in internal/cache) so that the 16 Table 1 mixes reproduce
// the paper's per-mix MPKI. Miss-rate-curve steepness (MRC.K) is what lets
// the same program look memory-bound in a MEM mix (small cache share) and
// moderate in a MIX mix (large share) — the reconciliation for programs like
// swim that appear in both MEM1/MEM4 (MPKI 15-18) and MIX4 (MPKI 2.35).
//
// Instruction mixes, MLP and prefetcher parameters are set per behavioural
// class so that the OoO (Fig. 17-18) and prefetching (Fig. 16) studies land
// near the paper's class-level aggregates.

func fpMix(ls float64) InstrMix  { return InstrMix{ALU: 0.26, FPU: 0.30, Branch: 0.10, LoadStore: ls} }
func intMix(ls float64) InstrMix { return InstrMix{ALU: 0.40, FPU: 0.02, Branch: 0.18, LoadStore: ls} }

var registry = map[string]*AppProfile{}

func register(p *AppProfile) {
	if err := p.Validate(); err != nil {
		//lint:ignore nopanic init-time registry validation fails fast at process start
		panic(err)
	}
	if _, dup := registry[p.Name]; dup {
		//lint:ignore nopanic init-time registry validation fails fast at process start
		panic("trace: duplicate profile " + p.Name)
	}
	registry[p.Name] = p
}

func init() {
	// --- ILP class: compute-intensive SPEC 2000 integer/FP codes. Small
	// working sets: miss rate is share-independent (K=0).
	register(&AppProfile{Name: "vortex", Class: ILP, CPIBase: 1.15, L2APKI: 3.0,
		MRC: MRC{A: 0.34, Min: 0.05}, DirtyFrac: 0.09, Mix: intMix(0.28),
		MLP: 1.2, PrefetchCoverage: 0.25, PrefetchAccuracy: 0.95, RowLocality: 0.55})
	register(&AppProfile{Name: "gcc", Class: ILP, CPIBase: 1.25, L2APKI: 4.0,
		MRC: MRC{A: 0.52, Min: 0.05}, DirtyFrac: 0.04, Mix: intMix(0.30),
		MLP: 1.3, PrefetchCoverage: 0.28, PrefetchAccuracy: 0.90, RowLocality: 0.50,
		Phases: []Phase{{Until: 0.5, MemMult: 1.25, CPIMult: 1.05}, {Until: 1.0, MemMult: 0.75, CPIMult: 0.95}}})
	register(&AppProfile{Name: "sixtrack", Class: ILP, CPIBase: 1.05, L2APKI: 2.5,
		MRC: MRC{A: 0.42, Min: 0.05}, DirtyFrac: 0.36, Mix: fpMix(0.26),
		MLP: 1.3, PrefetchCoverage: 0.30, PrefetchAccuracy: 0.98, RowLocality: 0.70})
	register(&AppProfile{Name: "mesa", Class: ILP, CPIBase: 1.10, L2APKI: 2.0,
		MRC: MRC{A: 0.20, Min: 0.03}, DirtyFrac: 0.20, Mix: fpMix(0.28),
		MLP: 1.2, PrefetchCoverage: 0.25, PrefetchAccuracy: 0.95, RowLocality: 0.60})
	register(&AppProfile{Name: "perlbmk", Class: ILP, CPIBase: 1.20, L2APKI: 3.0,
		MRC: MRC{A: 0.30, Min: 0.05}, DirtyFrac: 0.17, Mix: intMix(0.30),
		MLP: 1.2, PrefetchCoverage: 0.25, PrefetchAccuracy: 0.92, RowLocality: 0.50})
	register(&AppProfile{Name: "crafty", Class: ILP, CPIBase: 1.15, L2APKI: 2.0,
		MRC: MRC{A: 0.16, Min: 0.03}, DirtyFrac: 0.25, Mix: intMix(0.26),
		MLP: 1.1, PrefetchCoverage: 0.22, PrefetchAccuracy: 0.90, RowLocality: 0.45})
	register(&AppProfile{Name: "gzip", Class: ILP, CPIBase: 1.10, L2APKI: 3.0,
		MRC: MRC{A: 0.12, Min: 0.02}, DirtyFrac: 0.17, Mix: intMix(0.32),
		MLP: 1.2, PrefetchCoverage: 0.30, PrefetchAccuracy: 0.95, RowLocality: 0.65})
	register(&AppProfile{Name: "eon", Class: ILP, CPIBase: 1.05, L2APKI: 1.5,
		MRC: MRC{A: 0.06, Min: 0.01}, DirtyFrac: 0.17, Mix: fpMix(0.30),
		MLP: 1.1, PrefetchCoverage: 0.20, PrefetchAccuracy: 0.92, RowLocality: 0.55})

	// --- MID class: compute-memory balanced.
	register(&AppProfile{Name: "ammp", Class: MID, CPIBase: 1.30, L2APKI: 8.0,
		MRC: MRC{A: 2.2, K: 0.12, Min: 0.8}, DirtyFrac: 0.59, Mix: fpMix(0.30),
		MLP: 2.2, PrefetchCoverage: 0.35, PrefetchAccuracy: 0.78, RowLocality: 0.55})
	register(&AppProfile{Name: "gap", Class: MID, CPIBase: 1.25, L2APKI: 6.0,
		MRC: MRC{A: 1.4, K: 0.10, Min: 0.5}, DirtyFrac: 0.61, Mix: intMix(0.28),
		MLP: 2.0, PrefetchCoverage: 0.35, PrefetchAccuracy: 0.75, RowLocality: 0.55})
	register(&AppProfile{Name: "wupwise", Class: MID, CPIBase: 1.20, L2APKI: 7.0,
		MRC: MRC{A: 1.5, K: 0.10, Min: 0.5}, DirtyFrac: 0.27, Mix: fpMix(0.30),
		MLP: 2.5, PrefetchCoverage: 0.40, PrefetchAccuracy: 0.82, RowLocality: 0.65})
	register(&AppProfile{Name: "vpr", Class: MID, CPIBase: 1.35, L2APKI: 8.0,
		MRC: MRC{A: 1.94, K: 0.12, Min: 0.7}, DirtyFrac: 0.21, Mix: intMix(0.30),
		MLP: 1.8, PrefetchCoverage: 0.32, PrefetchAccuracy: 0.72, RowLocality: 0.50,
		Phases: []Phase{{Until: 0.6, MemMult: 0.85, CPIMult: 1.0}, {Until: 1.0, MemMult: 1.22, CPIMult: 1.0}}})
	register(&AppProfile{Name: "apsi", Class: MID, CPIBase: 1.25, L2APKI: 5.0,
		MRC: MRC{A: 0.15, Min: 0.05}, DirtyFrac: 0.60, Mix: fpMix(0.28),
		MLP: 2.0, PrefetchCoverage: 0.35, PrefetchAccuracy: 0.80, RowLocality: 0.60})
	register(&AppProfile{Name: "bzip2", Class: MID, CPIBase: 1.20, L2APKI: 6.0,
		MRC: MRC{A: 0.10, Min: 0.03}, DirtyFrac: 0.67, Mix: intMix(0.30),
		MLP: 1.8, PrefetchCoverage: 0.35, PrefetchAccuracy: 0.80, RowLocality: 0.60})
	register(&AppProfile{Name: "astar", Class: MID, CPIBase: 1.40, L2APKI: 9.0,
		MRC: MRC{A: 2.8, K: 0.12, Min: 1.0}, DirtyFrac: 0.54, Mix: intMix(0.30),
		MLP: 1.8, PrefetchCoverage: 0.30, PrefetchAccuracy: 0.70, RowLocality: 0.45,
		Phases: []Phase{{Until: 0.4, MemMult: 1.2, CPIMult: 1.0}, {Until: 1.0, MemMult: 0.87, CPIMult: 1.0}}})
	register(&AppProfile{Name: "parser", Class: MID, CPIBase: 1.30, L2APKI: 8.0,
		MRC: MRC{A: 2.28, K: 0.12, Min: 0.8}, DirtyFrac: 0.57, Mix: intMix(0.28),
		MLP: 1.9, PrefetchCoverage: 0.32, PrefetchAccuracy: 0.74, RowLocality: 0.50})
	register(&AppProfile{Name: "twolf", Class: MID, CPIBase: 1.35, L2APKI: 7.0,
		MRC: MRC{A: 2.4, K: 0.12, Min: 0.9}, DirtyFrac: 0.19, Mix: intMix(0.28),
		MLP: 1.8, PrefetchCoverage: 0.30, PrefetchAccuracy: 0.70, RowLocality: 0.45})
	register(&AppProfile{Name: "facerec", Class: MID, CPIBase: 1.25, L2APKI: 9.0,
		MRC: MRC{A: 2.96, K: 0.12, Min: 1.0}, DirtyFrac: 0.11, Mix: fpMix(0.30),
		MLP: 2.4, PrefetchCoverage: 0.40, PrefetchAccuracy: 0.82, RowLocality: 0.65,
		Phases: []Phase{{Until: 0.35, MemMult: 0.88, CPIMult: 1.0}, {Until: 0.55, MemMult: 1.60, CPIMult: 1.0}, {Until: 1.0, MemMult: 0.84, CPIMult: 1.0}}})

	// --- MEM class: memory-intensive. Steep miss-rate curves: these
	// programs are capacity-starved at the ~1 MB shares they get in MEM
	// mixes but settle down at the ~3 MB shares they get in MIX mixes.
	register(&AppProfile{Name: "swim", Class: MEM, CPIBase: 1.40, L2APKI: 40,
		MRC: MRC{A: 12.8, K: 1.05, Min: 2.0}, DirtyFrac: 0.30, Mix: fpMix(0.34),
		MLP: 6.0, PrefetchCoverage: 0.70, PrefetchAccuracy: 0.72, RowLocality: 0.80,
		Phases: []Phase{{Until: 0.3, MemMult: 1.2, CPIMult: 1.0}, {Until: 1.0, MemMult: 0.914, CPIMult: 1.0}}})
	register(&AppProfile{Name: "applu", Class: MEM, CPIBase: 1.35, L2APKI: 35,
		MRC: MRC{A: 32.5, K: 1.2, Min: 2.5}, DirtyFrac: 0.95, Mix: fpMix(0.34),
		MLP: 5.0, PrefetchCoverage: 0.65, PrefetchAccuracy: 0.70, RowLocality: 0.80})
	register(&AppProfile{Name: "galgel", Class: MEM, CPIBase: 1.30, L2APKI: 28,
		MRC: MRC{A: 4.07, K: 1.0, Min: 1.0}, DirtyFrac: 0.10, Mix: fpMix(0.32),
		MLP: 4.0, PrefetchCoverage: 0.60, PrefetchAccuracy: 0.65, RowLocality: 0.70})
	register(&AppProfile{Name: "equake", Class: MEM, CPIBase: 1.45, L2APKI: 30,
		MRC: MRC{A: 23.5, K: 1.2, Min: 2.0}, DirtyFrac: 0.05, Mix: fpMix(0.34),
		MLP: 4.5, PrefetchCoverage: 0.60, PrefetchAccuracy: 0.60, RowLocality: 0.70,
		Phases: []Phase{{Until: 0.5, MemMult: 0.85, CPIMult: 1.0}, {Until: 1.0, MemMult: 1.15, CPIMult: 1.0}}})
	register(&AppProfile{Name: "fma3d", Class: MEM, CPIBase: 1.35, L2APKI: 20,
		MRC: MRC{A: 3.5, K: 0.8, Min: 1.0}, DirtyFrac: 0.80, Mix: fpMix(0.32),
		MLP: 3.0, PrefetchCoverage: 0.50, PrefetchAccuracy: 0.60, RowLocality: 0.60})
	register(&AppProfile{Name: "mgrid", Class: MEM, CPIBase: 1.30, L2APKI: 22,
		MRC: MRC{A: 4.5, K: 0.8, Min: 1.2}, DirtyFrac: 0.80, Mix: fpMix(0.34),
		MLP: 4.0, PrefetchCoverage: 0.60, PrefetchAccuracy: 0.72, RowLocality: 0.80})
	register(&AppProfile{Name: "art", Class: MEM, CPIBase: 1.40, L2APKI: 33,
		MRC: MRC{A: 12.1, K: 1.2, Min: 1.5}, DirtyFrac: 0.13, Mix: fpMix(0.34),
		MLP: 4.0, PrefetchCoverage: 0.55, PrefetchAccuracy: 0.55, RowLocality: 0.55})
	register(&AppProfile{Name: "milc", Class: MEM, CPIBase: 1.35, L2APKI: 30,
		MRC: MRC{A: 14.0, K: 1.0, Min: 1.2}, DirtyFrac: 0.10, Mix: fpMix(0.34),
		MLP: 4.0, PrefetchCoverage: 0.55, PrefetchAccuracy: 0.60, RowLocality: 0.60,
		// The three milc phases of Figure 7: low memory traffic, a brief
		// middle phase, then strongly memory-bound. Means stay at 1.0 so
		// the Table 1 whole-run MPKI is preserved.
		Phases: []Phase{{Until: 0.45, MemMult: 0.50, CPIMult: 1.0}, {Until: 0.60, MemMult: 1.00, CPIMult: 1.0}, {Until: 1.0, MemMult: 1.55, CPIMult: 0.97}}})
	register(&AppProfile{Name: "sphinx3", Class: MEM, CPIBase: 1.30, L2APKI: 25,
		MRC: MRC{A: 9.7, K: 1.0, Min: 1.2}, DirtyFrac: 0.05, Mix: fpMix(0.32),
		MLP: 3.5, PrefetchCoverage: 0.60, PrefetchAccuracy: 0.65, RowLocality: 0.60})
	register(&AppProfile{Name: "lucas", Class: MEM, CPIBase: 1.30, L2APKI: 24,
		MRC: MRC{A: 8.0, K: 1.0, Min: 1.0}, DirtyFrac: 0.05, Mix: fpMix(0.32),
		MLP: 3.0, PrefetchCoverage: 0.60, PrefetchAccuracy: 0.70, RowLocality: 0.75})

	// --- SPEC 2006 integer apps that appear only in MIX mixes.
	register(&AppProfile{Name: "hmmer", Class: MIX, CPIBase: 1.15, L2APKI: 5.0,
		MRC: MRC{A: 1.0, K: 0.10, Min: 0.3}, DirtyFrac: 0.63, Mix: intMix(0.30),
		MLP: 1.5, PrefetchCoverage: 0.30, PrefetchAccuracy: 0.85, RowLocality: 0.60})
	register(&AppProfile{Name: "sjeng", Class: MIX, CPIBase: 1.20, L2APKI: 4.0,
		MRC: MRC{A: 0.8, K: 0.10, Min: 0.2}, DirtyFrac: 0.30, Mix: intMix(0.26),
		MLP: 1.4, PrefetchCoverage: 0.25, PrefetchAccuracy: 0.80, RowLocality: 0.45})
	register(&AppProfile{Name: "gobmk", Class: MIX, CPIBase: 1.25, L2APKI: 5.0,
		MRC: MRC{A: 0.6, K: 0.10, Min: 0.2}, DirtyFrac: 0.40, Mix: intMix(0.28),
		MLP: 1.4, PrefetchCoverage: 0.25, PrefetchAccuracy: 0.80, RowLocality: 0.45})
}
