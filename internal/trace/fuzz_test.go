package trace

import (
	"math"
	"testing"
)

// FuzzProfileValidate checks the contract between Validate and the sampling
// accessors: any profile that Validate accepts must yield finite,
// non-negative statistics from At and MPKIAt at every point of execution and
// every cache share, including the degenerate share s = 0.
func FuzzProfileValidate(f *testing.F) {
	// Seed with a registered profile's parameters and a few hostile corners.
	p := MustLookup("swim")
	f.Add(p.CPIBase, p.L2APKI, p.MRC.A, p.MRC.K, p.MRC.Min, p.DirtyFrac,
		p.Mix.ALU, p.Mix.FPU, p.Mix.Branch, p.Mix.LoadStore,
		p.MLP, p.PrefetchCoverage, p.PrefetchAccuracy, p.RowLocality,
		0.5, 1.5, 0.8)
	f.Add(1.0, 0.0, 0.0, 200.0, 0.0, 0.0, 0.25, 0.25, 0.25, 0.25,
		1.0, 0.0, 0.0, 0.0, 0.3, 0.0, 1.0)
	f.Add(math.NaN(), math.Inf(1), -1.0, math.NaN(), 1e308, 2.0,
		-0.5, 1.5, math.NaN(), 0.0, 0.5, -1.0, 2.0, math.Inf(-1),
		math.NaN(), math.Inf(1), math.NaN())
	f.Fuzz(func(t *testing.T, cpi, l2apki, mrcA, mrcK, mrcMin, dirty,
		alu, fpu, branch, loadStore, mlp, pcov, pacc, rowLoc,
		until, memMult, cpiMult float64) {
		prof := &AppProfile{
			Name:             "fuzz",
			CPIBase:          cpi,
			L2APKI:           l2apki,
			MRC:              MRC{A: mrcA, K: mrcK, Min: mrcMin},
			DirtyFrac:        dirty,
			Mix:              InstrMix{ALU: alu, FPU: fpu, Branch: branch, LoadStore: loadStore},
			MLP:              mlp,
			PrefetchCoverage: pcov,
			PrefetchAccuracy: pacc,
			RowLocality:      rowLoc,
		}
		if until > 0 && until < 1 {
			prof.Phases = []Phase{
				{Until: until, MemMult: memMult, CPIMult: cpiMult},
				{Until: 1, MemMult: 1, CPIMult: 1},
			}
		}
		if prof.Validate() != nil {
			return
		}
		for _, frac := range []float64{0, 0.3, 0.99, 1} {
			st := prof.At(frac)
			for _, v := range []float64{st.CPIBase, st.L2APKI, st.MemMult, st.DirtyFrac, st.MLP} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("At(%v) produced invalid stat %v from validated profile", frac, v)
				}
			}
			if st.CPIBase <= 0 {
				t.Fatalf("At(%v) produced non-positive CPIBase %v", frac, st.CPIBase)
			}
			for _, s := range []float64{0, 0.5, 4, 64} {
				m := prof.MPKIAt(frac, s)
				if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
					t.Fatalf("MPKIAt(%v, %v) = %v from validated profile", frac, s, m)
				}
			}
		}
	})
}

// FuzzLookup checks that registry lookups never panic and that every
// successful lookup returns a profile that carries the requested name and
// passes its own validation.
func FuzzLookup(f *testing.F) {
	for _, n := range Names() {
		f.Add(n)
	}
	f.Add("")
	f.Add("swim\x00")
	f.Fuzz(func(t *testing.T, name string) {
		p, err := Lookup(name)
		if err != nil {
			if p != nil {
				t.Fatalf("Lookup(%q) returned both a profile and an error", name)
			}
			return
		}
		if p.Name != name {
			t.Fatalf("Lookup(%q) returned profile named %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("registered profile %q fails validation: %v", name, err)
		}
	})
}
