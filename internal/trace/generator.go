package trace

// Generator expands an AppProfile into a deterministic address-level stream
// of L2 accesses — the detailed backend's equivalent of the paper's
// M5-collected traces (L1 cache misses and writebacks). Randomness comes
// from a splitmix64 PRNG seeded per (profile, core, seed), so runs are
// bit-reproducible.

import "coscale/internal/approx"

// Rand is a splitmix64 PRNG: tiny, fast and deterministic.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n).
func (r *Rand) Intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// MemAccess is one L2 access in the stream.
type MemAccess struct {
	// Gap is the number of committed instructions since the previous
	// access (the instructions execute at the profile's CPIBase).
	Gap uint64
	// Addr is the block-aligned physical address.
	Addr uint64
	// Write marks a store (dirties the L2 line on hit/allocate).
	Write bool
}

// Generator produces a profile's access stream.
type Generator struct {
	prof *AppProfile
	rng  *Rand

	base      uint64 // this core's private address region
	footBlk   uint64 // footprint in blocks
	blockSize uint64

	budget uint64 // instructions per full pass (for phase positioning)
	done   uint64 // instructions emitted so far
	last   uint64 // previous address, for sequential runs
}

// GeneratorRegionBytes spaces per-core address regions far apart so streams
// never alias.
const GeneratorRegionBytes = 1 << 33 // 8 GB per core

// NewGenerator builds the deterministic stream for profile p on the given
// core. budget is the instruction count of one full execution (phases are
// positioned against it); seed varies whole experiments.
func NewGenerator(p *AppProfile, core int, budget, seed uint64) *Generator {
	footMB := p.MRC.A * 1.5
	if approx.Zero(p.MRC.K, 0) {
		footMB = 0.5 // small working set: fits comfortably in a fair share
	}
	if footMB < 0.25 {
		footMB = 0.25
	}
	if footMB > 64 {
		footMB = 64
	}
	return &Generator{
		prof:      p,
		rng:       NewRand(seed*1099511628211 + uint64(core)*2654435761 + 1),
		base:      uint64(core) * GeneratorRegionBytes,
		footBlk:   uint64(footMB * 1024 * 1024 / 64),
		blockSize: 64,
		budget:    budget,
	}
}

// Footprint returns the stream's working-set size in bytes.
func (g *Generator) Footprint() uint64 { return g.footBlk * g.blockSize }

// Done returns the instructions emitted so far.
func (g *Generator) Done() uint64 { return g.done }

// Next returns the next access. The stream is infinite; callers stop at
// their instruction budget.
func (g *Generator) Next() MemAccess {
	frac := 0.0
	if g.budget > 0 {
		frac = float64(g.done%g.budget) / float64(g.budget)
	}
	st := g.prof.At(frac)

	apki := st.L2APKI
	if apki < 0.01 {
		apki = 0.01
	}
	// Geometric-ish gap around the mean 1000/APKI, in [mean/2, 3*mean/2).
	mean := 1000.0 / apki
	gap := uint64(mean/2 + g.rng.Float64()*mean)
	if gap == 0 {
		gap = 1
	}
	g.done += gap

	// Address: continue the sequential run with probability RowLocality,
	// else jump uniformly within the footprint.
	var blk uint64
	if g.last != 0 && g.rng.Float64() < g.prof.RowLocality {
		blk = (g.last-g.base)/g.blockSize + 1
		if blk >= g.footBlk {
			blk = 0
		}
	} else {
		blk = g.rng.Intn(g.footBlk)
	}
	addr := g.base + blk*g.blockSize
	g.last = addr

	return MemAccess{
		Gap:   gap,
		Addr:  addr,
		Write: g.rng.Float64() < g.prof.DirtyFrac*0.5, // stores are a subset of accesses
	}
}
