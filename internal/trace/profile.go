// Package trace provides the synthetic application substrate that stands in
// for the paper's M5-collected SPEC 2000/2006 traces (see DESIGN.md §1).
//
// Each SPEC program named in Table 1 is described by an AppProfile: a
// phase-annotated statistical profile (base CPI, L1-miss/L2-access rate,
// shared-cache miss-rate curve, writeback ratio, instruction mix, intrinsic
// memory-level parallelism, prefetcher friendliness). Profiles are consumed
// two ways:
//
//   - The fast epoch backend samples per-epoch statistics directly from the
//     profile (Stats/At).
//   - The detailed backend expands a profile into an address-level
//     instruction stream (Generator, see generator.go) that is replayed
//     through the cycle-level cache and DRAM simulators.
//
// The miss-rate curves are tuned so that the 16 workload mixes reproduce
// Table 1's per-mix MPKI under the shared-LLC contention model in
// internal/cache; they are calibrated stand-ins, not microarchitectural
// models of the real SPEC programs.
package trace

import (
	"fmt"
	"math"
	"sort"

	"coscale/internal/approx"
)

// Class labels the behavioural class a program belongs to (Table 1 grouping).
type Class int

// Behavioural classes.
const (
	ILP Class = iota // compute-intensive
	MID              // compute-memory balanced
	MEM              // memory-intensive
	MIX              // extra SPEC 2006 apps that appear only in MIX-class mixes
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case ILP:
		return "ILP"
	case MID:
		return "MID"
	case MEM:
		return "MEM"
	case MIX:
		return "MIX"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// MRC is a shared-cache miss-rate curve: LLC misses per kilo-instruction as
// a function of the cache share (in MB) the program's copy holds. The curve
// is the power law mpki(s) = A * s^-K, clamped below by Min and above by the
// program's L2 access rate (a program cannot miss more often than it
// accesses).
type MRC struct {
	A   float64 // MPKI at a 1 MB share
	K   float64 // steepness; 0 means share-independent
	Min float64 // floor (capacity-insensitive compulsory misses)
}

// MPKI evaluates the curve at a cache share of s MB, clamped to
// [Min, maxAPKI].
func (m MRC) MPKI(s, maxAPKI float64) float64 {
	if s <= 0 {
		return maxAPKI
	}
	// Skip the power law when A is zero: the curve is identically zero,
	// and 0 × Pow(s, -K) would be 0 × +Inf = NaN for steep K and small s.
	v := m.A
	if !approx.Zero(m.K, 0) && v > 0 {
		v = m.A * math.Pow(s, -m.K)
	}
	if v < m.Min {
		v = m.Min
	}
	if v > maxAPKI {
		v = maxAPKI
	}
	return v
}

// InstrMix is the committed-instruction class breakdown feeding the four
// Core Activity Counters. Fractions must sum to <= 1; the remainder is
// treated as simple integer/move work counted with ALU energy.
type InstrMix struct {
	ALU       float64
	FPU       float64
	Branch    float64
	LoadStore float64
}

// Sum returns the total of the four fractions.
func (m InstrMix) Sum() float64 { return m.ALU + m.FPU + m.Branch + m.LoadStore }

// Phase describes one execution phase. Phases partition the program's
// instruction stream: a phase is active for instruction fractions in
// [previous Until, Until). Multipliers scale the profile's mean memory
// intensity and base CPI during the phase.
type Phase struct {
	Until   float64 // end of phase as fraction of total instructions, (0,1]
	MemMult float64 // multiplier on L2APKI and MPKI
	CPIMult float64 // multiplier on CPIBase
}

// AppProfile is the statistical description of one application.
type AppProfile struct {
	Name  string
	Class Class

	// CPIBase is core cycles per instruction spent computing (including
	// L1 hits), independent of clock frequency in cycle terms.
	CPIBase float64

	// L2APKI is L2 accesses (L1 load/store misses) per kilo-instruction.
	L2APKI float64

	// MRC gives LLC misses per kilo-instruction versus cache share.
	MRC MRC

	// DirtyFrac is the fraction of LLC misses whose evicted victim is
	// dirty, i.e. WPKI = DirtyFrac * MPKI.
	DirtyFrac float64

	// Mix is the committed instruction class breakdown.
	Mix InstrMix

	// MLP is the program's intrinsic memory-level parallelism when run on
	// the 128-instruction-window OoO configuration (≥1; 1 = no overlap).
	MLP float64

	// PrefetchCoverage is the fraction of demand LLC misses a next-line
	// prefetcher eliminates; PrefetchAccuracy is useful/issued prefetches.
	PrefetchCoverage float64
	PrefetchAccuracy float64

	// Phases modulate intensity over the run. Empty means one flat phase.
	Phases []Phase

	// RowLocality is the probability that consecutive memory accesses
	// fall in the same DRAM row (used by the detailed address generator).
	RowLocality float64
}

// Stats is the profile as seen at one instant of execution: the phase
// multipliers applied to the profile means. All rates are per-instruction or
// per-kilo-instruction; MPKI still depends on the cache share via MRCAt.
type Stats struct {
	CPIBase   float64
	L2APKI    float64
	MemMult   float64 // phase multiplier also applied to the MRC
	DirtyFrac float64
	Mix       InstrMix
	MLP       float64
}

// At returns the profile statistics in effect at the given instruction
// fraction frac in [0,1].
func (p *AppProfile) At(frac float64) Stats {
	mem, cpi := 1.0, 1.0
	if len(p.Phases) > 0 {
		ph := p.Phases[len(p.Phases)-1] // frac >= last boundary stays in final phase
		for _, q := range p.Phases {
			if frac < q.Until {
				ph = q
				break
			}
		}
		mem, cpi = ph.MemMult, ph.CPIMult
	}
	return Stats{
		CPIBase:   p.CPIBase * cpi,
		L2APKI:    p.L2APKI * mem,
		MemMult:   mem,
		DirtyFrac: p.DirtyFrac,
		Mix:       p.Mix,
		MLP:       p.MLP,
	}
}

// MPKIAt evaluates the miss-rate curve at cache share s MB for the phase in
// effect at instruction fraction frac.
func (p *AppProfile) MPKIAt(frac, s float64) float64 {
	st := p.At(frac)
	return p.MRC.MPKI(s, p.L2APKI) * st.MemMult
}

// Validate checks structural invariants of the profile.
func (p *AppProfile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile with empty name")
	}
	// Reject non-finite parameters up front: NaN slips through every
	// ordered comparison below (NaN <= 0, NaN < 1, ... are all false), so
	// without this check a NaN-poisoned profile would validate and then
	// spread through the whole performance model. The magnitude cap bounds
	// the rates and multipliers far above any physical value while keeping
	// their products (e.g. L2APKI x phase MemMult) safely finite.
	const maxParam = 1e6
	for _, v := range []float64{
		p.CPIBase, p.L2APKI, p.MRC.A, p.MRC.K, p.MRC.Min, p.DirtyFrac,
		p.Mix.ALU, p.Mix.FPU, p.Mix.Branch, p.Mix.LoadStore,
		p.MLP, p.PrefetchCoverage, p.PrefetchAccuracy, p.RowLocality,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: %s: non-finite profile parameter", p.Name)
		}
		if v > maxParam {
			return fmt.Errorf("trace: %s: profile parameter %g implausibly large", p.Name, v)
		}
	}
	if p.CPIBase <= 0 {
		return fmt.Errorf("trace: %s: CPIBase must be positive", p.Name)
	}
	if p.L2APKI < 0 || p.MRC.A < 0 || p.MRC.Min < 0 {
		return fmt.Errorf("trace: %s: negative rate", p.Name)
	}
	if p.MRC.K < 0 {
		return fmt.Errorf("trace: %s: MRC steepness %.3f < 0 (miss rate cannot grow with cache share)", p.Name, p.MRC.K)
	}
	if p.Mix.ALU < 0 || p.Mix.FPU < 0 || p.Mix.Branch < 0 || p.Mix.LoadStore < 0 {
		return fmt.Errorf("trace: %s: negative instruction-mix fraction", p.Name)
	}
	if p.MRC.A > p.L2APKI*1.001 && approx.Zero(p.MRC.K, 0) {
		return fmt.Errorf("trace: %s: constant MPKI %.3f exceeds L2APKI %.3f", p.Name, p.MRC.A, p.L2APKI)
	}
	if p.DirtyFrac < 0 || p.DirtyFrac > 1 {
		return fmt.Errorf("trace: %s: DirtyFrac %.3f outside [0,1]", p.Name, p.DirtyFrac)
	}
	if s := p.Mix.Sum(); s < 0 || s > 1.0001 {
		return fmt.Errorf("trace: %s: instruction mix sums to %.3f", p.Name, s)
	}
	if p.MLP < 1 {
		return fmt.Errorf("trace: %s: MLP %.3f < 1", p.Name, p.MLP)
	}
	if p.PrefetchCoverage < 0 || p.PrefetchCoverage > 1 || p.PrefetchAccuracy < 0 || p.PrefetchAccuracy > 1 {
		return fmt.Errorf("trace: %s: prefetch parameters outside [0,1]", p.Name)
	}
	if p.PrefetchCoverage > 0 && approx.Zero(p.PrefetchAccuracy, 0) {
		return fmt.Errorf("trace: %s: nonzero coverage with zero accuracy", p.Name)
	}
	prev := 0.0
	for i, ph := range p.Phases {
		if math.IsNaN(ph.Until) || math.IsNaN(ph.MemMult) || math.IsInf(ph.MemMult, 0) ||
			math.IsNaN(ph.CPIMult) || math.IsInf(ph.CPIMult, 0) {
			return fmt.Errorf("trace: %s: phase %d has a non-finite parameter", p.Name, i)
		}
		if ph.MemMult > maxParam || ph.CPIMult > maxParam {
			return fmt.Errorf("trace: %s: phase %d multiplier implausibly large", p.Name, i)
		}
		if ph.Until <= prev || ph.Until > 1.0001 {
			return fmt.Errorf("trace: %s: phase %d boundary %.3f not increasing in (0,1]", p.Name, i, ph.Until)
		}
		if ph.MemMult < 0 || ph.CPIMult <= 0 {
			return fmt.Errorf("trace: %s: phase %d has invalid multipliers", p.Name, i)
		}
		prev = ph.Until
	}
	if len(p.Phases) > 0 && math.Abs(prev-1.0) > 1e-9 {
		return fmt.Errorf("trace: %s: last phase ends at %.3f, want 1.0", p.Name, prev)
	}
	if p.RowLocality < 0 || p.RowLocality > 1 {
		return fmt.Errorf("trace: %s: RowLocality outside [0,1]", p.Name)
	}
	return nil
}

// Lookup returns the registered profile for a SPEC program name.
func Lookup(name string) (*AppProfile, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown application %q", name)
	}
	return p, nil
}

// MustLookup is Lookup for statically known names; it panics on failure.
func MustLookup(name string) *AppProfile {
	p, err := Lookup(name)
	if err != nil {
		//lint:ignore nopanic Must* variant for statically known names; Lookup is the error path
		panic(err)
	}
	return p
}

// Names returns all registered application names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	//lint:ignore determinism keys are sorted before return
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
