package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryComplete(t *testing.T) {
	// All 27 applications named in Table 1 must be registered.
	wanted := []string{
		"vortex", "gcc", "sixtrack", "mesa", "perlbmk", "crafty", "gzip", "eon",
		"ammp", "gap", "wupwise", "vpr", "apsi", "bzip2", "astar", "parser", "twolf", "facerec",
		"swim", "applu", "galgel", "equake", "fma3d", "mgrid", "art", "milc", "sphinx3", "lucas",
		"hmmer", "sjeng", "gobmk",
	}
	for _, n := range wanted {
		if _, err := Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	if len(Names()) != len(wanted) {
		t.Errorf("registry has %d apps, want %d", len(Names()), len(wanted))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("notaspec"); err == nil {
		t.Error("Lookup(notaspec) succeeded, want error")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup(unknown) did not panic")
		}
	}()
	MustLookup("notaspec")
}

func TestAllProfilesValid(t *testing.T) {
	for _, n := range Names() {
		if err := MustLookup(n).Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestMRCMonotonic(t *testing.T) {
	// Miss rate must be non-increasing in cache share for every app.
	for _, n := range Names() {
		p := MustLookup(n)
		prev := math.Inf(1)
		for s := 0.25; s <= 16; s += 0.25 {
			v := p.MRC.MPKI(s, p.L2APKI)
			if v > prev+1e-12 {
				t.Errorf("%s: MPKI increases at share %.2f MB", n, s)
			}
			if v < 0 {
				t.Errorf("%s: negative MPKI at share %.2f MB", n, s)
			}
			if v > p.L2APKI {
				t.Errorf("%s: MPKI %.2f exceeds L2APKI %.2f", n, v, p.L2APKI)
			}
			prev = v
		}
	}
}

func TestMRCClamps(t *testing.T) {
	m := MRC{A: 100, K: 1, Min: 2}
	if got := m.MPKI(0, 50); got != 50 {
		t.Errorf("MPKI(0) = %g, want clamp to max 50", got)
	}
	if got := m.MPKI(1000, 50); got != 2 {
		t.Errorf("MPKI(1000) = %g, want floor 2", got)
	}
	if got := m.MPKI(1, 50); got != 50 {
		t.Errorf("MPKI(1) = %g, want 50 (A above max)", got)
	}
	flat := MRC{A: 3}
	if got := flat.MPKI(0.1, 50); got != 3 {
		t.Errorf("flat MPKI = %g, want 3", got)
	}
}

func TestPhaseSelection(t *testing.T) {
	milc := MustLookup("milc")
	early := milc.At(0.1)
	mid := milc.At(0.5)
	late := milc.At(0.9)
	if !(early.L2APKI < mid.L2APKI && mid.L2APKI < late.L2APKI) {
		t.Errorf("milc phases not increasing in memory intensity: %.2f %.2f %.2f",
			early.L2APKI, mid.L2APKI, late.L2APKI)
	}
	// Exactly at a boundary, the next phase applies.
	atBoundary := milc.At(0.45)
	if atBoundary.MemMult != 1.0 {
		t.Errorf("At(0.45).MemMult = %g, want middle phase 1.0", atBoundary.MemMult)
	}
	// Past 1.0 stays in final phase.
	if got := milc.At(1.5); got.MemMult != 1.55 {
		t.Errorf("At(1.5).MemMult = %g, want final phase 1.55", got.MemMult)
	}
}

func TestFlatProfilePhases(t *testing.T) {
	p := MustLookup("vortex") // no phases
	for _, f := range []float64{0, 0.3, 0.99} {
		st := p.At(f)
		if st.L2APKI != p.L2APKI || st.CPIBase != p.CPIBase {
			t.Errorf("flat profile changed at frac %.2f", f)
		}
	}
}

// TestPhaseMeansNearUnity checks that phase multipliers average to ~1 over
// the run so Table 1 whole-run statistics are preserved.
func TestPhaseMeansNearUnity(t *testing.T) {
	for _, n := range Names() {
		p := MustLookup(n)
		if len(p.Phases) == 0 {
			continue
		}
		mean, prev := 0.0, 0.0
		for _, ph := range p.Phases {
			mean += (ph.Until - prev) * ph.MemMult
			prev = ph.Until
		}
		if math.Abs(mean-1.0) > 0.06 {
			t.Errorf("%s: mean phase MemMult = %.3f, want ~1.0", n, mean)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := func() *AppProfile {
		return &AppProfile{Name: "x", CPIBase: 1, L2APKI: 10, MRC: MRC{A: 2}, MLP: 1,
			PrefetchAccuracy: 0.5, Mix: InstrMix{ALU: 0.5}}
	}
	cases := []struct {
		name   string
		mutate func(*AppProfile)
	}{
		{"empty name", func(p *AppProfile) { p.Name = "" }},
		{"zero CPI", func(p *AppProfile) { p.CPIBase = 0 }},
		{"negative APKI", func(p *AppProfile) { p.L2APKI = -1 }},
		{"dirty > 1", func(p *AppProfile) { p.DirtyFrac = 1.5 }},
		{"mix > 1", func(p *AppProfile) { p.Mix = InstrMix{ALU: 0.9, FPU: 0.9} }},
		{"MLP < 1", func(p *AppProfile) { p.MLP = 0.5 }},
		{"coverage w/o accuracy", func(p *AppProfile) { p.PrefetchCoverage = 0.5; p.PrefetchAccuracy = 0 }},
		{"phase not increasing", func(p *AppProfile) {
			p.Phases = []Phase{{Until: 0.5, MemMult: 1, CPIMult: 1}, {Until: 0.4, MemMult: 1, CPIMult: 1}}
		}},
		{"phases not ending at 1", func(p *AppProfile) {
			p.Phases = []Phase{{Until: 0.5, MemMult: 1, CPIMult: 1}}
		}},
		{"bad row locality", func(p *AppProfile) { p.RowLocality = 2 }},
		{"constant MPKI above APKI", func(p *AppProfile) { p.MRC = MRC{A: 50} }},
	}
	for _, c := range cases {
		p := good()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", c.name)
		}
	}
	if err := good().Validate(); err != nil {
		t.Errorf("baseline profile invalid: %v", err)
	}
}

// Property: At(frac) never returns negative rates for any registered app.
func TestAtProperty(t *testing.T) {
	apps := Names()
	f := func(fracRaw uint16, appIdx uint8) bool {
		frac := float64(fracRaw) / 65535.0
		p := MustLookup(apps[int(appIdx)%len(apps)])
		st := p.At(frac)
		return st.CPIBase > 0 && st.L2APKI >= 0 && st.MLP >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if ILP.String() != "ILP" || MID.String() != "MID" || MEM.String() != "MEM" || MIX.String() != "MIX" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class formatting wrong")
	}
}
