package trace

import "math"

// Sampler memoizes AppProfile.At for one profile: the fast backend samples
// every core's profile several times per epoch (once per ground-truth
// sub-interval, at instruction fractions that creep forward slowly), and the
// phase in effect changes only at phase boundaries. The sampler caches the
// Stats of the phase last hit together with that phase's fraction interval;
// as long as subsequent fractions stay inside the interval, the phase-table
// scan and Stats assembly are skipped entirely. Results are bit-identical to
// calling At/MPKIAt directly — the cached Stats is the same value At would
// rebuild.
//
// A Sampler is single-goroutine state; each engine owns one per application
// (see DESIGN.md §7).
type Sampler struct {
	p     *AppProfile
	valid bool
	lo    float64 // cached phase covers fractions in [lo, hi)
	hi    float64
	stats Stats
}

// Reset points the sampler at a profile and invalidates the cache.
func (s *Sampler) Reset(p *AppProfile) {
	s.p = p
	s.valid = false
}

// Profile returns the profile the sampler reads.
func (s *Sampler) Profile() *AppProfile { return s.p }

// At returns the profile statistics in effect at instruction fraction frac,
// memoizing the containing phase. Equivalent to s.Profile().At(frac).
//
//hot:path
func (s *Sampler) At(frac float64) Stats {
	if s.valid && frac >= s.lo && frac < s.hi {
		return s.stats
	}
	p := s.p
	lo, hi := 0.0, math.Inf(1)
	if len(p.Phases) > 0 {
		// Mirror AppProfile.At exactly: fractions at or past the last
		// boundary stay in the final phase.
		idx := len(p.Phases) - 1
		for i, q := range p.Phases {
			if frac < q.Until {
				idx = i
				break
			}
		}
		if idx > 0 {
			lo = p.Phases[idx-1].Until
		}
		if idx < len(p.Phases)-1 {
			hi = p.Phases[idx].Until
		} else {
			hi = math.Inf(1) // final phase also covers frac >= last Until
		}
	}
	s.stats = p.At(frac)
	s.lo, s.hi = lo, hi
	s.valid = true
	return s.stats
}

// MPKI evaluates the miss-rate curve at cache share sh MB for the phase in
// effect at fraction frac. Equivalent to s.Profile().MPKIAt(frac, sh) but
// reuses the memoized phase multiplier.
//
//hot:path
func (s *Sampler) MPKI(frac, sh float64) float64 {
	st := s.At(frac)
	return s.p.MRC.MPKI(sh, s.p.L2APKI) * st.MemMult
}
