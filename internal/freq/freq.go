// Package freq models the voltage/frequency ladders and DVFS domains of the
// simulated server: per-core ladders (2.2-4.0 GHz, 10 steps by default, with
// voltage scaling proportionally over 0.65-1.2 V as in Intel Sandybridge) and
// the memory-subsystem ladder (bus/DRAM 200-800 MHz in 66 MHz steps; the
// memory controller always runs at double the bus frequency and shares the
// core voltage range).
//
// Throughout the package a "step" is an index into a Ladder, with step 0
// being the HIGHEST frequency. This matches the paper's search, which starts
// at maximum frequency and considers one-step reductions.
package freq

import (
	"errors"
	"fmt"
	"math"
)

// Hz helpers. Frequencies are plain float64 Hz; these constants keep literal
// configuration readable.
const (
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// Point is a single voltage/frequency operating point.
type Point struct {
	Hz    float64 // operating frequency in Hz
	Volts float64 // supply voltage in V
}

// Ladder is an ordered list of operating points, highest frequency first.
// A Ladder is immutable after construction.
type Ladder struct {
	points []Point
}

var (
	// ErrEmptyLadder is returned when constructing a ladder with no points.
	ErrEmptyLadder = errors.New("freq: ladder must have at least one point")
	// ErrBadRange is returned for non-positive or inverted ranges.
	ErrBadRange = errors.New("freq: invalid frequency or voltage range")
)

// NewLadder builds a ladder with n equally spaced frequencies spanning
// [minHz, maxHz] and voltage scaling linearly with frequency over
// [minV, maxV] (max voltage at max frequency). Points are ordered highest
// frequency first. n == 1 yields a single point at (maxHz, maxV).
func NewLadder(minHz, maxHz, minV, maxV float64, n int) (*Ladder, error) {
	if n < 1 {
		return nil, ErrEmptyLadder
	}
	if minHz <= 0 || maxHz < minHz || minV <= 0 || maxV < minV ||
		!finite(minHz, maxHz, minV, maxV) {
		return nil, ErrBadRange
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1) // 0 at top, 1 at bottom
		}
		// The interpolation is exact for practical ranges, but with extreme
		// ranges (minHz subnormal, maxHz near overflow) the subtraction can
		// round below the mathematical floor — clamp so every point stays
		// within the requested range.
		hz := maxHz - frac*(maxHz-minHz)
		if hz < minHz {
			hz = minHz
		}
		v := maxV - frac*(maxV-minV)
		if v < minV {
			v = minV
		}
		pts[i] = Point{Hz: hz, Volts: v}
	}
	return &Ladder{points: pts}, nil
}

// NewLadderSteps builds a ladder from maxHz downward in fixed decrements of
// stepHz until the next point would fall below minHz. Voltage scales linearly
// with frequency over [minV, maxV].
func NewLadderSteps(minHz, maxHz, stepHz, minV, maxV float64, maxSteps int) (*Ladder, error) {
	if minHz <= 0 || maxHz < minHz || stepHz <= 0 || minV <= 0 || maxV < minV ||
		!finite(minHz, maxHz, stepHz, minV, maxV) {
		return nil, ErrBadRange
	}
	var pts []Point
	for hz := maxHz; hz >= minHz-1e-3 && (maxSteps <= 0 || len(pts) < maxSteps); hz -= stepHz {
		frac := 0.0
		if maxHz > minHz {
			// The loop tolerance admits hz slightly below minHz, and a range
			// much narrower than the tolerance would then extrapolate frac
			// far past 1 (driving voltage negative) — clamp to the voltage
			// range instead.
			frac = (maxHz - hz) / (maxHz - minHz)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
		}
		// Even with frac clamped, maxV - frac*(maxV-minV) can round a hair
		// below minV at frac == 1 — clamp the voltage itself.
		v := maxV - frac*(maxV-minV)
		if v < minV {
			v = minV
		}
		pts = append(pts, Point{Hz: hz, Volts: v})
	}
	if len(pts) == 0 {
		return nil, ErrEmptyLadder
	}
	return &Ladder{points: pts}, nil
}

// finite reports whether every argument is a finite float (the ordered
// comparisons in the constructors are all false for NaN, so NaN ranges would
// otherwise slip through and poison every operating point).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Steps returns the number of operating points.
func (l *Ladder) Steps() int { return len(l.points) }

// Point returns the operating point at the given step (0 = highest frequency).
// It panics if step is out of range; callers index with validated steps.
func (l *Ladder) Point(step int) Point {
	if step < 0 || step >= len(l.points) {
		//lint:ignore nopanic documented contract: callers index with validated steps (see Clamp)
		panic(fmt.Sprintf("freq: step %d out of range [0,%d)", step, len(l.points)))
	}
	return l.points[step]
}

// Hz returns the frequency at step.
func (l *Ladder) Hz(step int) float64 { return l.Point(step).Hz }

// Volts returns the voltage at step.
func (l *Ladder) Volts(step int) float64 { return l.Point(step).Volts }

// MaxHz returns the highest frequency on the ladder.
func (l *Ladder) MaxHz() float64 { return l.points[0].Hz }

// MinHz returns the lowest frequency on the ladder.
func (l *Ladder) MinHz() float64 { return l.points[len(l.points)-1].Hz }

// Bottom reports whether step is the lowest-frequency point.
func (l *Ladder) Bottom(step int) bool { return step == len(l.points)-1 }

// Clamp returns step clamped to the valid range.
func (l *Ladder) Clamp(step int) int {
	if step < 0 {
		return 0
	}
	if step >= len(l.points) {
		return len(l.points) - 1
	}
	return step
}

// Nearest returns the step whose frequency is closest to hz.
func (l *Ladder) Nearest(hz float64) int {
	best, bestDiff := 0, -1.0
	for i, p := range l.points {
		d := p.Hz - hz
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// Points returns a copy of the ladder's operating points, highest first.
func (l *Ladder) Points() []Point {
	out := make([]Point, len(l.points))
	copy(out, l.points)
	return out
}

// String renders the ladder compactly, e.g. "10 steps 4.00GHz..2.20GHz".
func (l *Ladder) String() string {
	return fmt.Sprintf("%d steps %.2fGHz..%.2fGHz", len(l.points), l.MaxHz()/GHz, l.MinHz()/GHz)
}

// Default ladder parameters from the paper's evaluation (Table 2 and §4.1).
const (
	DefaultCoreMaxHz  = 4.0 * GHz
	DefaultCoreMinHz  = 2.2 * GHz
	DefaultCoreSteps  = 10
	DefaultCoreMaxV   = 1.2
	DefaultCoreMinV   = 0.65
	DefaultMemMaxHz   = 800 * MHz
	DefaultMemMinHz   = 200 * MHz
	DefaultMemStepHz  = 66 * MHz
	DefaultMemSteps   = 10 // 800,734,668,...,206 MHz
	HalfRangeCoreMinV = 0.95
)

// DefaultCoreLadder returns the paper's per-core ladder: 10 equally spaced
// frequencies in 2.2-4.0 GHz with voltage 0.65-1.2 V.
func DefaultCoreLadder() *Ladder {
	l, err := NewLadder(DefaultCoreMinHz, DefaultCoreMaxHz, DefaultCoreMinV, DefaultCoreMaxV, DefaultCoreSteps)
	if err != nil {
		//lint:ignore nopanic static paper parameters; cannot fail
		panic(err)
	}
	return l
}

// CoreLadderN returns a core ladder with n equally spaced frequencies over
// the default range (used by the Figure 15 frequency-granularity study).
func CoreLadderN(n int) (*Ladder, error) {
	return NewLadder(DefaultCoreMinHz, DefaultCoreMaxHz, DefaultCoreMinV, DefaultCoreMaxV, n)
}

// HalfVoltageCoreLadder returns the Figure 14 variant: same frequencies but
// voltage confined to 0.95-1.2 V.
func HalfVoltageCoreLadder() *Ladder {
	l, err := NewLadder(DefaultCoreMinHz, DefaultCoreMaxHz, HalfRangeCoreMinV, DefaultCoreMaxV, DefaultCoreSteps)
	if err != nil {
		//lint:ignore nopanic static paper parameters; cannot fail
		panic(err)
	}
	return l
}

// DefaultMemLadder returns the paper's memory-bus ladder: 800 MHz down to
// 200 MHz in 66 MHz steps (10 points). The DRAM devices lock to this clock;
// the memory controller runs at double this frequency with the core voltage
// range.
func DefaultMemLadder() *Ladder {
	l, err := NewLadderSteps(DefaultMemMinHz, DefaultMemMaxHz, DefaultMemStepHz, DefaultCoreMinV, DefaultCoreMaxV, DefaultMemSteps)
	if err != nil {
		//lint:ignore nopanic static paper parameters; cannot fail
		panic(err)
	}
	return l
}

// MemLadderN returns a memory ladder with n equally spaced frequencies over
// the default bus range (Figure 15).
func MemLadderN(n int) (*Ladder, error) {
	return NewLadder(DefaultMemMinHz, DefaultMemMaxHz, DefaultCoreMinV, DefaultCoreMaxV, n)
}
