package freq

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultCoreLadder(t *testing.T) {
	t.Parallel()
	l := DefaultCoreLadder()
	if got := l.Steps(); got != 10 {
		t.Fatalf("Steps() = %d, want 10", got)
	}
	if got := l.MaxHz(); got != 4.0*GHz {
		t.Errorf("MaxHz() = %g, want 4 GHz", got)
	}
	if got := l.MinHz(); math.Abs(got-2.2*GHz) > 1 {
		t.Errorf("MinHz() = %g, want 2.2 GHz", got)
	}
	if got := l.Volts(0); got != 1.2 {
		t.Errorf("Volts(0) = %g, want 1.2", got)
	}
	if got := l.Volts(9); math.Abs(got-0.65) > 1e-9 {
		t.Errorf("Volts(9) = %g, want 0.65", got)
	}
	// Equal spacing: 1.8 GHz / 9 = 200 MHz per step.
	for i := 1; i < l.Steps(); i++ {
		d := l.Hz(i-1) - l.Hz(i)
		if math.Abs(d-200*MHz) > 1 {
			t.Errorf("step %d spacing = %g, want 200 MHz", i, d)
		}
	}
}

func TestDefaultMemLadder(t *testing.T) {
	t.Parallel()
	l := DefaultMemLadder()
	if got := l.Steps(); got != 10 {
		t.Fatalf("Steps() = %d, want 10", got)
	}
	if got := l.MaxHz(); got != 800*MHz {
		t.Errorf("MaxHz() = %g, want 800 MHz", got)
	}
	// 800 - 9*66 = 206 MHz bottom step.
	if got := l.MinHz(); math.Abs(got-206*MHz) > 1 {
		t.Errorf("MinHz() = %g, want 206 MHz", got)
	}
	for i := 1; i < l.Steps(); i++ {
		d := l.Hz(i-1) - l.Hz(i)
		if math.Abs(d-66*MHz) > 1 {
			t.Errorf("step %d spacing = %g, want 66 MHz", i, d)
		}
	}
}

func TestLadderMonotonic(t *testing.T) {
	t.Parallel()
	for _, l := range []*Ladder{DefaultCoreLadder(), DefaultMemLadder(), HalfVoltageCoreLadder()} {
		for i := 1; i < l.Steps(); i++ {
			if l.Hz(i) >= l.Hz(i-1) {
				t.Errorf("%v: Hz not strictly decreasing at step %d", l, i)
			}
			if l.Volts(i) > l.Volts(i-1) {
				t.Errorf("%v: Volts increasing at step %d", l, i)
			}
		}
	}
}

func TestHalfVoltageCoreLadder(t *testing.T) {
	t.Parallel()
	l := HalfVoltageCoreLadder()
	if got := l.Volts(l.Steps() - 1); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("bottom voltage = %g, want 0.95", got)
	}
	full := DefaultCoreLadder()
	for i := 0; i < l.Steps(); i++ {
		if l.Hz(i) != full.Hz(i) {
			t.Errorf("frequency at step %d differs from full-range ladder", i)
		}
	}
}

func TestCoreLadderN(t *testing.T) {
	t.Parallel()
	for _, n := range []int{4, 7, 10} {
		l, err := CoreLadderN(n)
		if err != nil {
			t.Fatalf("CoreLadderN(%d): %v", n, err)
		}
		if l.Steps() != n {
			t.Errorf("CoreLadderN(%d).Steps() = %d", n, l.Steps())
		}
		if l.MaxHz() != 4.0*GHz || math.Abs(l.MinHz()-2.2*GHz) > 1 {
			t.Errorf("CoreLadderN(%d) range = [%g,%g]", n, l.MinHz(), l.MaxHz())
		}
	}
}

func TestNewLadderErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name                     string
		minHz, maxHz, minV, maxV float64
		n                        int
	}{
		{"zero points", 1, 2, 1, 2, 0},
		{"negative min", -1, 2, 1, 2, 3},
		{"inverted hz", 3, 2, 1, 2, 3},
		{"inverted volts", 1, 2, 3, 2, 3},
		{"zero voltage", 1, 2, 0, 2, 3},
	}
	for _, c := range cases {
		if _, err := NewLadder(c.minHz, c.maxHz, c.minV, c.maxV, c.n); err == nil {
			t.Errorf("%s: NewLadder succeeded, want error", c.name)
		}
	}
	if _, err := NewLadderSteps(100, 50, 10, 1, 2, 0); err == nil {
		t.Error("NewLadderSteps with inverted range succeeded, want error")
	}
}

func TestSinglePointLadder(t *testing.T) {
	t.Parallel()
	l, err := NewLadder(2*GHz, 2*GHz, 1.0, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Steps() != 1 || l.Hz(0) != 2*GHz || l.Volts(0) != 1.0 {
		t.Errorf("single-point ladder = %+v", l.Points())
	}
	if !l.Bottom(0) {
		t.Error("Bottom(0) = false for single-point ladder")
	}
}

func TestClampAndNearest(t *testing.T) {
	t.Parallel()
	l := DefaultCoreLadder()
	if got := l.Clamp(-3); got != 0 {
		t.Errorf("Clamp(-3) = %d", got)
	}
	if got := l.Clamp(99); got != 9 {
		t.Errorf("Clamp(99) = %d", got)
	}
	if got := l.Clamp(4); got != 4 {
		t.Errorf("Clamp(4) = %d", got)
	}
	if got := l.Nearest(4 * GHz); got != 0 {
		t.Errorf("Nearest(4GHz) = %d", got)
	}
	if got := l.Nearest(0); got != 9 {
		t.Errorf("Nearest(0) = %d", got)
	}
	if got := l.Nearest(3.05 * GHz); l.Hz(got) != 3.0*GHz {
		t.Errorf("Nearest(3.05GHz) -> %g Hz", l.Hz(got))
	}
}

func TestPointPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Point(99) did not panic")
		}
	}()
	DefaultCoreLadder().Point(99)
}

func TestPointsIsCopy(t *testing.T) {
	t.Parallel()
	l := DefaultCoreLadder()
	pts := l.Points()
	pts[0].Hz = 1
	if l.Hz(0) == 1 {
		t.Error("mutating Points() result affected ladder")
	}
}

func TestMemTransitionTime(t *testing.T) {
	t.Parallel()
	// At 800 MHz: 512 cycles = 640 ns, +28 ns = 668 ns.
	got := MemTransitionTime(800 * MHz)
	want := 668 * time.Nanosecond
	if d := got - want; d < -time.Nanosecond || d > time.Nanosecond {
		t.Errorf("MemTransitionTime(800MHz) = %v, want %v", got, want)
	}
	// Slower bus -> longer transition.
	if MemTransitionTime(200*MHz) <= MemTransitionTime(800*MHz) {
		t.Error("transition not monotonic in frequency")
	}
	if MemTransitionTime(0) != MemTransitionFixed {
		t.Error("zero frequency should return fixed cost only")
	}
}

// Property: for any valid ladder, voltage is a non-increasing function of
// step and frequency is strictly decreasing, and Nearest inverts Hz.
func TestLadderProperties(t *testing.T) {
	t.Parallel()
	f := func(nRaw uint8, spanRaw uint16) bool {
		n := int(nRaw%20) + 1
		span := 0.1 + float64(spanRaw)/1000.0 // GHz of span
		l, err := NewLadder(1*GHz, (1+span)*GHz, 0.7, 1.1, n)
		if err != nil {
			return false
		}
		for s := 0; s < l.Steps(); s++ {
			if l.Nearest(l.Hz(s)) != s {
				return false
			}
			if s > 0 && l.Hz(s) >= l.Hz(s-1) {
				return false
			}
		}
		return l.Steps() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
