package freq

import "time"

// Transition costs (§3 "Overall operation" and §4.1). A core DVFS transition
// takes a few tens of microseconds during which that core does not execute
// instructions. A memory-subsystem transition halts all memory accesses while
// PLLs/DLLs resynchronize: 512 memory cycles plus 28 ns for the DRAM state
// round-trip through fast-exit precharge powerdown.
const (
	// DefaultCoreTransition is the per-core voltage/frequency switch time.
	DefaultCoreTransition = 30 * time.Microsecond
	// MemTransitionCycles is the DLL re-lock time in memory bus cycles
	// (tDLLK is approximately 500 cycles; the paper charges 512).
	MemTransitionCycles = 512
	// MemTransitionFixed is the additional fixed cost of entering and
	// exiting fast-exit precharge powerdown.
	MemTransitionFixed = 28 * time.Nanosecond
)

// MemTransitionTime returns the wall-clock stall for a memory-subsystem
// frequency change when the bus runs at newHz after the change. Cycles are
// charged at the new (slower of the two would also be defensible) frequency;
// the difference is nanoseconds and irrelevant at 5 ms epochs.
func MemTransitionTime(newHz float64) time.Duration {
	if newHz <= 0 {
		return MemTransitionFixed
	}
	secs := float64(MemTransitionCycles) / newHz
	return time.Duration(secs*1e9)*time.Nanosecond + MemTransitionFixed
}
