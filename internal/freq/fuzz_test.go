package freq

import (
	"math"
	"testing"
)

// checkLadder asserts the structural invariants every constructed ladder must
// satisfy regardless of how hostile the input range was: at least one point,
// finite positive frequencies and voltages, frequencies non-increasing from
// step 0, and self-consistent accessors.
func checkLadder(t *testing.T, l *Ladder) {
	t.Helper()
	n := l.Steps()
	if n < 1 {
		t.Fatalf("ladder with %d steps", n)
	}
	prev := math.Inf(1)
	for i := 0; i < n; i++ {
		p := l.Point(i)
		if math.IsNaN(p.Hz) || math.IsInf(p.Hz, 0) || p.Hz <= 0 {
			t.Fatalf("step %d: non-finite or non-positive frequency %v", i, p.Hz)
		}
		if math.IsNaN(p.Volts) || math.IsInf(p.Volts, 0) || p.Volts <= 0 {
			t.Fatalf("step %d: non-finite or non-positive voltage %v", i, p.Volts)
		}
		if p.Hz > prev {
			t.Fatalf("step %d: frequency %v above previous step's %v", i, p.Hz, prev)
		}
		prev = p.Hz
		if got := l.Hz(l.Nearest(p.Hz)); got != p.Hz {
			t.Fatalf("Nearest(%v) resolved to frequency %v", p.Hz, got)
		}
	}
	if l.MaxHz() != l.Hz(0) || l.MinHz() != l.Hz(n-1) {
		t.Fatalf("MaxHz/MinHz disagree with endpoint steps")
	}
	if got := l.Clamp(-3); got != 0 {
		t.Fatalf("Clamp(-3) = %d, want 0", got)
	}
	if got := l.Clamp(n + 3); got != n-1 {
		t.Fatalf("Clamp(%d) = %d, want %d", n+3, got, n-1)
	}
}

func FuzzNewLadder(f *testing.F) {
	f.Add(DefaultCoreMinHz, DefaultCoreMaxHz, DefaultCoreMinV, DefaultCoreMaxV, DefaultCoreSteps)
	f.Add(1.0, 1.0, 1.0, 1.0, 1)
	f.Add(math.SmallestNonzeroFloat64, math.MaxFloat64, math.SmallestNonzeroFloat64, math.MaxFloat64, 16)
	f.Add(0.0, -1.0, math.NaN(), math.Inf(1), 10)
	f.Fuzz(func(t *testing.T, minHz, maxHz, minV, maxV float64, n int) {
		if n > 4096 {
			n %= 4096
		}
		l, err := NewLadder(minHz, maxHz, minV, maxV, n)
		if err != nil {
			return
		}
		if l.Steps() != n {
			t.Fatalf("asked for %d steps, got %d", n, l.Steps())
		}
		checkLadder(t, l)
		if l.MaxHz() > maxHz || l.MinHz() < minHz {
			t.Fatalf("ladder [%v,%v] escapes requested range [%v,%v]",
				l.MinHz(), l.MaxHz(), minHz, maxHz)
		}
	})
}

func FuzzNewLadderSteps(f *testing.F) {
	f.Add(DefaultMemMinHz, DefaultMemMaxHz, DefaultMemStepHz, DefaultCoreMinV, DefaultCoreMaxV, DefaultMemSteps)
	f.Add(1.0, 2.0, 0.5, 0.5, 1.0, 0)
	f.Add(1.0, 1.0, 1e-9, 1.0, 1.0, 3)
	f.Add(math.NaN(), math.Inf(1), -1.0, 0.0, math.MaxFloat64, 10)
	f.Fuzz(func(t *testing.T, minHz, maxHz, stepHz, minV, maxV float64, maxSteps int) {
		// Always bound the loop: a subnormal stepHz with no cap would walk
		// the [minHz, maxHz] range in astronomically many iterations.
		if maxSteps < 0 {
			maxSteps = -maxSteps
		}
		maxSteps = 1 + maxSteps%4096
		l, err := NewLadderSteps(minHz, maxHz, stepHz, minV, maxV, maxSteps)
		if err != nil {
			return
		}
		if l.Steps() > maxSteps {
			t.Fatalf("%d steps exceeds cap %d", l.Steps(), maxSteps)
		}
		checkLadder(t, l)
		if l.MaxHz() != maxHz {
			t.Fatalf("top step %v, want maxHz %v", l.MaxHz(), maxHz)
		}
		if l.MinHz() < minHz-1e-3 {
			t.Fatalf("bottom step %v below minHz %v minus tolerance", l.MinHz(), minHz)
		}
		for i := 0; i < l.Steps(); i++ {
			if v := l.Volts(i); v < minV || v > maxV {
				t.Fatalf("step %d voltage %v outside [%v,%v]", i, v, minV, maxV)
			}
		}
	})
}
