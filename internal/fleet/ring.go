package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent hash ring mapping canonical request hashes to worker
// IDs. Each worker owns VirtualNodes points placed by sha256 over
// "id#vnode"; a job routes to the first eligible worker at or after the
// point of its own hash. Routing is therefore a pure function of the
// (worker set, job hash, eligibility) triple: two coordinators with the
// same joined workers route identically, which keeps retries after a
// coordinator restart on the same workers — and their warm caches.
//
// Ring is not goroutine-safe; the coordinator guards it with its own lock.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by point
}

type ringPoint struct {
	point  uint64
	worker string
}

// NewRing builds an empty ring with the given virtual-node count per worker
// (0 selects 64, enough for a few-percent spread at small fleets).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes}
}

// pointFor hashes one virtual node of a worker onto the ring.
func pointFor(worker string, vnode int) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(vnode))
	sum := sha256.Sum256(append([]byte(worker+"#"), b[:]...))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a worker's virtual nodes (idempotent).
func (r *Ring) Add(worker string) {
	for _, p := range r.points {
		if p.worker == worker {
			return
		}
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{point: pointFor(worker, v), worker: worker})
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.point != b.point {
			return a.point < b.point
		}
		return a.worker < b.worker // total order even on (astronomically unlikely) collisions
	})
}

// Remove deletes a worker's virtual nodes.
func (r *Ring) Remove(worker string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the first worker at or clockwise from the hash's ring
// point for which eligible returns true (a nil predicate accepts every
// worker). It reports ok=false when no worker is eligible. hash is the
// canonical hex request hash; its leading bytes, already uniform, place the
// job on the ring.
func (r *Ring) Lookup(hash string, eligible func(worker string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	point := hashPoint(hash)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= point })
	seen := map[string]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		if eligible == nil || eligible(p.worker) {
			return p.worker, true
		}
	}
	return "", false
}

// hashPoint maps a canonical hex hash onto the ring by re-hashing it: the
// request hash is already sha256, but re-hashing keeps the placement
// independent of the hex encoding and of any future hash-format change.
func hashPoint(hash string) uint64 {
	sum := sha256.Sum256([]byte(hash))
	return binary.BigEndian.Uint64(sum[:8])
}

// Workers returns the distinct workers on the ring, sorted.
func (r *Ring) Workers() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	sort.Strings(out)
	return out
}
