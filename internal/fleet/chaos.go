package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Endpoint identifies a worker for transport purposes: the stable ID (the
// chaos event key — addresses change across runs, IDs do not) and the
// dialable address.
type Endpoint struct {
	ID   string
	Addr string
}

// Transport executes a leased job on a worker. HTTPTransport is the
// production implementation; ChaosTransport wraps any Transport with
// deterministic network-fault injection; tests may supply in-process fakes.
type Transport interface {
	Execute(ctx context.Context, worker Endpoint, job JobSpec) (JobResult, error)
}

// Chaos injection outcomes for one transport operation.
const (
	ChaosNone    = "none"
	ChaosRefuse  = "refuse"  // connection refused before the request is sent
	ChaosDrop    = "drop"    // request delivered, response discarded
	ChaosCut     = "cut"     // response cut mid-stream after partial delivery
	ChaosLatency = "latency" // response delayed by a deterministic spike
)

// ErrChaos marks injected transport failures, so tests and retry
// accounting can distinguish planned faults from real ones.
var ErrChaos = errors.New("fleet: injected chaos")

// ChaosPlan derives every injection decision as a pure splitmix64 function
// of (Seed, operation, key, attempt) — the network-layer sibling of
// internal/fault's seeded counter/actuation faults. Because no decision
// depends on shared mutable state, the plan is bit-replayable: the same
// seed yields the same fault for the same event no matter how goroutines
// interleave, which is what lets the chaos end-to-end test assert
// Float64bits-identical results under worker loss.
//
// Probabilities are in [0, 1] and evaluated in the fixed order refuse →
// drop → cut → latency; the first match wins.
type ChaosPlan struct {
	Seed uint64

	RefuseProb  float64 // connection refused (request never reaches the worker)
	DropProb    float64 // response dropped whole (worker executed; result lost)
	CutProb     float64 // response cut mid-stream (partial bytes, then error)
	LatencyProb float64 // response delayed by [LatencyMin, LatencyMax)

	LatencyMin time.Duration
	LatencyMax time.Duration

	HeartbeatLossProb float64 // per-heartbeat drop probability
}

// draw returns the uniform fraction for one event.
func (p ChaosPlan) draw(op, key string, n uint64) float64 {
	return seededFrac(p.Seed, hashKey(op, key, n))
}

// Execute decides the fault injected for attempt n of a job on a worker.
func (p ChaosPlan) Execute(worker, jobHash string, attempt int) string {
	key := worker + "|" + jobHash
	f := p.draw("execute", key, uint64(attempt))
	switch {
	case f < p.RefuseProb:
		return ChaosRefuse
	case f < p.RefuseProb+p.DropProb:
		return ChaosDrop
	case f < p.RefuseProb+p.DropProb+p.CutProb:
		return ChaosCut
	case f < p.RefuseProb+p.DropProb+p.CutProb+p.LatencyProb:
		return ChaosLatency
	}
	return ChaosNone
}

// Latency returns the deterministic latency spike for the event.
func (p ChaosPlan) Latency(worker, jobHash string, attempt int) time.Duration {
	span := p.LatencyMax - p.LatencyMin
	if span <= 0 {
		return p.LatencyMin
	}
	f := p.draw("latency", worker+"|"+jobHash, uint64(attempt))
	return p.LatencyMin + time.Duration(f*float64(span))
}

// DropHeartbeat decides whether heartbeat seq from a worker is lost.
func (p ChaosPlan) DropHeartbeat(worker string, seq int) bool {
	return p.draw("heartbeat", worker, uint64(seq)) < p.HeartbeatLossProb
}

// ChaosEvent is one injected fault, for replay assertions and telemetry.
type ChaosEvent struct {
	Op      string // "execute" | "heartbeat"
	Worker  string
	Key     string // job hash for execute events
	Attempt int
	Fault   string
}

// ChaosTransport wraps a Transport with a ChaosPlan and records every
// injected fault. The event log is a set keyed by deterministic event
// identity — arrival order is scheduler-dependent, so Events returns it
// canonically sorted.
type ChaosTransport struct {
	Inner Transport
	Plan  ChaosPlan
	// Sleep, when non-nil, replaces the real latency-spike sleep (tests).
	Sleep func(ctx context.Context, d time.Duration)

	mu     sync.Mutex
	events []ChaosEvent
}

// record appends one injected-fault event.
func (c *ChaosTransport) record(ev ChaosEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns the injected faults sorted into canonical order.
func (c *ChaosTransport) Events() []ChaosEvent {
	c.mu.Lock()
	out := append([]ChaosEvent(nil), c.events...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Attempt < b.Attempt
	})
	return out
}

// Execute applies the planned fault for this (worker, job, attempt) event
// around the inner transport.
func (c *ChaosTransport) Execute(ctx context.Context, worker Endpoint, job JobSpec) (JobResult, error) {
	fault := c.Plan.Execute(worker.ID, job.Hash, job.Attempt)
	if fault != ChaosNone {
		c.record(ChaosEvent{Op: "execute", Worker: worker.ID, Key: job.Hash, Attempt: job.Attempt, Fault: fault})
	}
	switch fault {
	case ChaosRefuse:
		return JobResult{}, fmt.Errorf("%w: connection refused (worker %s, attempt %d)", ErrChaos, worker.ID, job.Attempt)
	case ChaosLatency:
		c.sleep(ctx, c.Plan.Latency(worker.ID, job.Hash, job.Attempt))
	}
	res, err := c.Inner.Execute(ctx, worker, job)
	if err != nil {
		return res, err
	}
	switch fault {
	case ChaosDrop:
		return JobResult{}, fmt.Errorf("%w: response dropped (worker %s, attempt %d)", ErrChaos, worker.ID, job.Attempt)
	case ChaosCut:
		return JobResult{}, fmt.Errorf("%w: response cut mid-stream after %d bytes (worker %s, attempt %d)",
			ErrChaos, len(res.Result)/2, worker.ID, job.Attempt)
	}
	return res, nil
}

// DropBeat returns an Agent heartbeat-loss hook bound to this transport's
// plan, recording each dropped beat as a chaos event.
func (c *ChaosTransport) DropBeat(worker string) func(seq int) bool {
	return func(seq int) bool {
		if !c.Plan.DropHeartbeat(worker, seq) {
			return false
		}
		c.record(ChaosEvent{Op: "heartbeat", Worker: worker, Attempt: seq, Fault: ChaosDrop})
		return true
	}
}

func (c *ChaosTransport) sleep(ctx context.Context, d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
