package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coscale/internal/experiments"
	"coscale/internal/server"
	"coscale/internal/sim"
)

// quietLog discards worker/coordinator chatter in tests.
func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

// testWorker is one real coscale-serve instance behind an httptest listener.
type testWorker struct {
	id  string
	srv *server.Server
	ts  *httptest.Server
}

func startWorker(t *testing.T, id string) *testWorker {
	t.Helper()
	s := server.New(server.Config{Workers: 2, QueueDepth: 64, CacheSize: 64, WorkerID: id, Logger: quietLog()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testWorker{id: id, srv: s, ts: ts}
}

// e2eInstr keeps per-cell simulations fast while still multi-epoch.
const e2eInstr = 2_000_000

// refOutcome computes the single-node reference for one sweep cell through
// experiments.Runner — the same engine the figure generators use — with the
// mutations the serving layer applies for a default-normalized cell.
func refOutcome(t *testing.T, r *experiments.Runner, workloadName, policy string) *experiments.Outcome {
	t.Helper()
	o, err := r.Execute(workloadName, experiments.PolicyName(policy), func(c *sim.Config) {
		c.Gamma = server.DefaultBound
	}, "fleet-ref")
	if err != nil {
		t.Fatalf("reference %s/%s: %v", workloadName, policy, err)
	}
	return o
}

// bitsEq compares float64s for bit identity.
func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// checkCellBits asserts a fleet cell result is Float64bits-identical to the
// single-node runner outcome.
func checkCellBits(t *testing.T, cell CellStatus, o *experiments.Outcome) {
	t.Helper()
	var got server.SimulateResult
	if err := json.Unmarshal(cell.Result, &got); err != nil {
		t.Fatalf("cell %d result unmarshal: %v", cell.Index, err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"full_savings", got.FullSavings, o.FullSavings()},
		{"cpu_savings", got.CPUSavings, o.CPUSavings()},
		{"mem_savings", got.MemSavings, o.MemSavings()},
		{"avg_degradation", got.AvgDegradation, o.AvgDegradation()},
		{"worst_degradation", got.WorstDegradation, o.WorstDegradation()},
		{"wall_time", got.WallTime, o.Run.WallTime},
		{"energy_total", got.Energy.Total, o.Run.Energy.Total()},
		{"baseline_wall_time", got.Baseline.WallTime, o.Base.WallTime},
	}
	for _, c := range checks {
		if !bitsEq(c.got, c.want) {
			t.Errorf("cell %s/%s %s = %x, want %x (not bit-identical to single-node runner)",
				cell.Workload, cell.Policy, c.name, math.Float64bits(c.got), math.Float64bits(c.want))
		}
	}
	wantDeg := o.Degradations()
	if len(got.Degradations) != len(wantDeg) {
		t.Fatalf("cell %s/%s degradations len %d, want %d", cell.Workload, cell.Policy, len(got.Degradations), len(wantDeg))
	}
	for i := range wantDeg {
		if !bitsEq(got.Degradations[i], wantDeg[i]) {
			t.Errorf("cell %s/%s degradation[%d] not bit-identical", cell.Workload, cell.Policy, i)
		}
	}
	if got.Epochs != o.Run.Epochs {
		t.Errorf("cell %s/%s epochs = %d, want %d", cell.Workload, cell.Policy, got.Epochs, o.Run.Epochs)
	}
}

// auditJournal checks the attempt accounting after a completed sweep: every
// job has exactly one committing done record, lease attempts count up from 1
// without gaps, and nothing exceeds the attempt cap — i.e. no job was lost
// and none double-committed.
func auditJournal(t *testing.T, path string, wantJobs, maxAttempts int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _, err := scanJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	leases := map[string]int{}
	dones := map[string]int{}
	failed := map[string]int{}
	jobs := map[string]bool{}
	for _, rec := range recs {
		switch rec.Type {
		case "job":
			jobs[rec.Job] = true
		case "lease":
			if rec.Attempt != leases[rec.Job]+1 {
				t.Errorf("job %s lease attempt %d follows %d (gap or replay)", rec.Job, rec.Attempt, leases[rec.Job])
			}
			leases[rec.Job] = rec.Attempt
			if rec.Attempt > maxAttempts {
				t.Errorf("job %s leased attempt %d beyond cap %d", rec.Job, rec.Attempt, maxAttempts)
			}
		case "done":
			dones[rec.Job]++
		case "failed":
			failed[rec.Job]++
		}
	}
	if len(jobs) != wantJobs {
		t.Fatalf("journal has %d job records, want %d", len(jobs), wantJobs)
	}
	for job := range jobs {
		if dones[job] != 1 {
			t.Errorf("job %s has %d done records, want exactly 1 (lost or double-committed)", job, dones[job])
		}
		if failed[job] != 0 {
			t.Errorf("job %s failed terminally", job)
		}
		if leases[job] == 0 {
			t.Errorf("job %s was never leased", job)
		}
	}
}

// TestFleetChaosE2E is the acceptance scenario: three live workers, a seeded
// chaos plan injecting refusals, response drops, mid-stream cuts, latency
// spikes and heartbeat loss, and a deliberate kill of one worker mid-sweep.
// The sweep must complete with results Float64bits-identical to the
// single-node experiments runner, the journal must account every attempt
// with exactly one commit per job, and the injected fault log must replay
// bit-identically from the seed.
func TestFleetChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end test")
	}
	workers := []*testWorker{startWorker(t, "w1"), startWorker(t, "w2"), startWorker(t, "w3")}

	plan := ChaosPlan{
		Seed:              42,
		RefuseProb:        0.12,
		DropProb:          0.08,
		CutProb:           0.08,
		LatencyProb:       0.15,
		LatencyMin:        time.Millisecond,
		LatencyMax:        5 * time.Millisecond,
		HeartbeatLossProb: 0.15,
	}
	chaos := &ChaosTransport{
		Inner: &HTTPTransport{Client: &Client{Retries: 1, BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond}},
		Plan:  plan,
	}

	journal := filepath.Join(t.TempDir(), "fleet.journal")
	coord, err := New(Config{
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		SchedTick:         5 * time.Millisecond,
		JobTimeout:        30 * time.Second,
		// The retry budget must outlive dead detection: a killed worker's
		// cells burn real refusals until it goes suspect (150ms), so eight
		// attempts spread over ~900ms of backoff leave a wide margin.
		MaxAttempts: 8,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		JournalPath: journal,
		Transport:   chaos,
		Logger:      quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// Real agents heartbeat each worker in, with seeded heartbeat loss.
	agentCtx, stopAgents := context.WithCancel(context.Background())
	defer stopAgents()
	agentCancel := map[string]context.CancelFunc{}
	for _, w := range workers {
		w := w
		wctx, cancel := context.WithCancel(agentCtx)
		agentCancel[w.id] = cancel
		a := &Agent{
			ID: w.id, Addr: w.ts.URL, Coordinator: cts.URL,
			Ready: w.srv.Ready, DropBeat: chaos.DropBeat(w.id),
			Interval: 20 * time.Millisecond, Logger: quietLog(),
		}
		//lint:ignore dettaint test harness goroutine
		go a.Run(wctx)
	}
	waitFor(t, 10*time.Second, "fleet ready", func() bool { return coord.Ready().Ready })

	// The full default sweep — all 16 workloads × the 6 practical policies —
	// keeps the fleet busy long enough that the kill below lands mid-flight.
	req := server.SweepRequest{Instructions: e2eInstr}
	body, _ := json.Marshal(req)
	resp, err := http.Post(cts.URL+"/v1/fleet/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const wantCells = 96 // 16 workloads × 6 practical policies
	if resp.StatusCode != http.StatusAccepted || st.Total != wantCells {
		t.Fatalf("submit: status %d, total %d, want %d", resp.StatusCode, st.Total, wantCells)
	}

	// The ring is a pure function of the worker set, so the primary owner of
	// each cell is known in advance; kill the busiest worker mid-sweep.
	ring := NewRing(0)
	for _, w := range workers {
		ring.Add(w.id)
	}
	owned := map[string]int{}
	for _, c := range st.Cells {
		owner, _ := ring.Lookup(c.Hash, nil)
		owned[owner]++
	}
	victim := workers[0].id
	for _, w := range workers {
		if owned[w.id] > owned[victim] {
			victim = w.id
		}
	}
	if owned[victim] == 0 {
		t.Fatalf("ring assigned nothing to any worker: %v", owned)
	}

	// Kill the victim once the sweep is demonstrably mid-flight: at least
	// one cell committed, and not all of them.
	waitFor(t, 60*time.Second, "first commit", func() bool {
		cur, _ := coord.Status(st.ID)
		return cur.Done >= 1
	})
	agentCancel[victim]() // heartbeats stop
	for _, w := range workers {
		if w.id == victim {
			w.ts.Close() // connections refused from here on
		}
	}
	t.Logf("killed worker %s (owned %d of %d cells)", victim, owned[victim], st.Total)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := coord.WaitSweep(ctx, st.ID)
	if err != nil {
		t.Fatalf("sweep did not complete: %v (status %+v)", err, final)
	}
	if final.State != "done" || final.Done != wantCells || final.Failed != 0 {
		t.Fatalf("final: state %s, %d/%d done, %d failed — jobs were lost",
			final.State, final.Done, wantCells, final.Failed)
	}

	// Bit-identity against the single-node runner, cell by cell.
	runner := experiments.NewRunner(e2eInstr)
	for _, cell := range final.Cells {
		if len(cell.Result) == 0 {
			t.Fatalf("cell %d done with no result", cell.Index)
		}
		checkCellBits(t, cell, refOutcome(t, runner, cell.Workload, cell.Policy))
	}

	// Journal attempt accounting: nothing lost, nothing double-committed.
	auditJournal(t, journal, wantCells, 8)

	// Chaos actually happened, and the event log replays from the seed.
	events := chaos.Events()
	var execFaults, beatDrops int
	replay := ChaosPlan{Seed: plan.Seed, RefuseProb: plan.RefuseProb, DropProb: plan.DropProb,
		CutProb: plan.CutProb, LatencyProb: plan.LatencyProb,
		LatencyMin: plan.LatencyMin, LatencyMax: plan.LatencyMax, HeartbeatLossProb: plan.HeartbeatLossProb}
	for _, ev := range events {
		switch ev.Op {
		case "execute":
			execFaults++
			if got := replay.Execute(ev.Worker, ev.Key, ev.Attempt); got != ev.Fault {
				t.Errorf("event %+v does not replay from seed: fresh plan says %q", ev, got)
			}
		case "heartbeat":
			beatDrops++
			if !replay.DropHeartbeat(ev.Worker, ev.Attempt) {
				t.Errorf("heartbeat drop %+v does not replay from seed", ev)
			}
		}
	}
	if execFaults == 0 {
		t.Error("chaos injected no transport faults — scenario is vacuous")
	}
	if beatDrops == 0 {
		t.Error("chaos dropped no heartbeats — scenario is vacuous")
	}
	t.Logf("chaos: %d transport faults, %d dropped heartbeats, victim=%s", execFaults, beatDrops, victim)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorRestartRecovers crashes the coordinator mid-sweep and
// proves the journal brings the successor back without losing commits or
// recomputing finished cells: done results survive byte-for-byte, leased
// jobs replay to pending, and the total number of simulations actually
// executed across the fleet equals the number of distinct cells.
func TestCoordinatorRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end test")
	}
	w1, w2 := startWorker(t, "w1"), startWorker(t, "w2")
	journal := filepath.Join(t.TempDir(), "fleet.journal")
	cfg := Config{
		// Registration-only liveness: generous TTLs stand in for agents.
		HeartbeatInterval: time.Second,
		SuspectAfter:      time.Hour,
		DeadAfter:         2 * time.Hour,
		SchedTick:         5 * time.Millisecond,
		JobTimeout:        30 * time.Second,
		MaxAttempts:       4,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		// A cap higher than the cell count keeps routing purely
		// ring-primary (no overflow onto the fallback worker), which is
		// what makes the executed-exactly-once assertion below exact.
		MaxInflightPerWorker: 32,
		JournalPath:          journal,
		Transport:            &HTTPTransport{},
		Logger:               quietLog(),
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1.register(w1.id, w1.ts.URL)
	c1.register(w2.id, w2.ts.URL)

	// 4 workloads × the 6 practical policies = 24 cells, enough that the
	// coordinator goes down with work still outstanding.
	st, err := c1.Submit(server.SweepRequest{
		Workloads:    []string{"MEM1", "MID1", "MIX1", "ILP1"},
		Instructions: e2eInstr,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, "first commit before crash", func() bool {
		cur, _ := c1.Status(st.ID)
		return cur.Done >= 1
	})
	mid, _ := c1.Status(st.ID)
	if err := c1.Close(); err != nil { // the "crash": in-flight leases simply stop
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer c2.Close()
	rec, ok := c2.Status(st.ID)
	if !ok {
		t.Fatal("sweep lost across restart")
	}
	if rec.Done < mid.Done {
		t.Fatalf("commits lost across restart: %d < %d", rec.Done, mid.Done)
	}
	if rec.Leased != 0 {
		t.Fatalf("replay left %d jobs leased; they must return to pending", rec.Leased)
	}
	for i, cell := range rec.Cells {
		if mid.Cells[i].State == JobDone && !bytes.Equal(cell.Result, mid.Cells[i].Result) {
			t.Fatalf("cell %d result changed across restart", i)
		}
	}

	c2.register(w1.id, w1.ts.URL)
	c2.register(w2.id, w2.ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := c2.WaitSweep(ctx, st.ID)
	if err != nil {
		t.Fatalf("sweep did not finish after restart: %v (%+v)", err, final)
	}
	if final.State != "done" || final.Done != 24 {
		t.Fatalf("final: state %s, %d/24 done", final.State, final.Done)
	}
	// The no-recompute guarantee: the ring routes each cell to the same
	// worker before and after the restart, and re-leased cells hit that
	// worker's cache (or attach to the still-running job), so the fleet
	// executed each distinct cell exactly once.
	if n := w1.srv.ExecutedJobs() + w2.srv.ExecutedJobs(); n != 24 {
		t.Fatalf("fleet executed %d simulations for 24 cells — finished scenarios were recomputed", n)
	}
	auditJournal(t, journal, 24, 4)
}

// TestSubmitShedsWithoutWorkers verifies the explicit degraded mode: a
// fleet with zero live workers refuses new sweeps with 503 and a jittered
// Retry-After instead of accepting work it cannot progress.
func TestSubmitShedsWithoutWorkers(t *testing.T) {
	c, err := New(Config{Transport: okTransport{}, Logger: quietLog(),
		RetryAfterSeconds: 1, RetryAfterJitterSeconds: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		resp, err := http.Post(ts.URL+"/v1/fleet/sweeps", "application/json",
			bytes.NewReader([]byte(`{"workloads":["MEM1"],"policies":["CoScale"]}`)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit with no workers: status %d, want 503", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatal("503 without Retry-After")
		}
		if ra != "1" && ra != "2" && ra != "3" && ra != "4" {
			t.Fatalf("Retry-After %q outside jitter window [1,4]", ra)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Retry-After never varied (%v) — jitter is not spreading the stampede", seen)
	}
	// Readiness mirrors the degraded mode.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers: status %d, want 503", resp.StatusCode)
	}
}
