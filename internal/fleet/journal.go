package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"coscale/internal/server"
)

// record is one journal line. Type discriminates; the remaining fields are
// a union, omitted when empty, so every record is a single self-describing
// JSON object on its own line.
//
// Record types:
//
//	sweep  — a sweep was admitted (Sweep + Req; its job records follow)
//	job    — one cell of a sweep (Job, Sweep, Index, Hash, Cell)
//	lease  — attempt N of a job was dispatched to a worker
//	fail   — attempt N failed (transport error, timeout, worker death)
//	done   — a job committed its result (fsynced before acknowledgment)
//	failed — a job exhausted its attempt cap
type record struct {
	Type    string                  `json:"t"`
	Sweep   string                  `json:"sweep,omitempty"`
	Job     string                  `json:"job,omitempty"`
	Index   int                     `json:"index,omitempty"`
	Hash    string                  `json:"hash,omitempty"`
	Worker  string                  `json:"worker,omitempty"`
	Attempt int                     `json:"attempt,omitempty"`
	Err     string                  `json:"err,omitempty"`
	Req     *server.SweepRequest    `json:"req,omitempty"`
	Cell    *server.SimulateRequest `json:"cell,omitempty"`
	Result  json.RawMessage         `json:"result,omitempty"`
}

// journal is the append-only JSON-lines file behind the Store. A nil
// journal (no path configured) is a valid no-op: the store is then purely
// in-memory and a coordinator restart starts empty.
type journal struct {
	f *os.File
}

// openJournal opens (creating if needed) the journal at path and recovers
// its committed prefix: every whole, parseable line is returned in order; a
// torn final line — a crash mid-write — is discarded and truncated away so
// the next append starts on a record boundary. A malformed line that is
// *not* the final one is corruption, not a torn write, and is an error.
func openJournal(path string) (*journal, []record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, keep, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fleet: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, recs, nil
}

// scanJournal parses the journal, returning the recovered records and the
// byte offset of the end of the last committed record.
func scanJournal(r io.Reader) (recs []record, keep int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		whole := rerr == nil // a line without trailing newline is torn by definition
		if len(bytes.TrimSpace(line)) > 0 {
			var rec record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if whole {
					// More records may follow this one; only then do we peek.
					if _, perr := br.Peek(1); perr == nil {
						return nil, 0, fmt.Errorf("fleet: journal corrupt at offset %d: %w", keep, jerr)
					}
				}
				// Torn tail: a crash interrupted the final append. Drop it.
				return recs, keep, nil
			}
			recs = append(recs, rec)
		}
		keep += int64(len(line))
		if rerr != nil {
			if rerr == io.EOF {
				return recs, keep, nil
			}
			return nil, 0, rerr
		}
	}
}

// append writes records and, when sync is set, fsyncs before returning —
// the commit barrier: a "done" record acknowledged to a client survives a
// coordinator crash. A nil journal accepts and drops everything.
func (j *journal) append(sync bool, recs ...record) error {
	if j == nil {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return err
	}
	if sync {
		return j.f.Sync()
	}
	return nil
}

// close releases the file. A nil journal is a no-op.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
