package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coscale/internal/server"
)

// normSweep returns a small normalized sweep request for store tests.
func normSweep(t *testing.T, workloads, policies []string) server.SweepRequest {
	t.Helper()
	n, err := server.SweepRequest{Workloads: workloads, Policies: policies}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestJournalTornTailRecovery is the crash-recovery scenario: a journal
// truncated mid-record (a torn write) reopens cleanly, recovers every
// committed job, and discards the torn tail so the next append starts on a
// record boundary.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")

	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	req := normSweep(t, []string{"MEM1", "MIX1"}, []string{"CoScale"})
	id, total, err := st.AddSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("AddSweep total = %d, want 2", total)
	}
	job0 := fmtJobID(id, 0)
	if _, err := st.Lease(job0, "w1"); err != nil {
		t.Fatal(err)
	}
	if committed, err := st.Done(job0, json.RawMessage(`{"ok":1}`)); err != nil || !committed {
		t.Fatalf("Done = (%v, %v), want committed", committed, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: the file ends in half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"t":"done","job":"` + fmtJobID(id, 1) + `","result":{"ok"`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer st2.Close()
	stat, ok := st2.Status(id)
	if !ok {
		t.Fatalf("sweep %s lost in replay", id)
	}
	if stat.Done != 1 || stat.Pending != 1 {
		t.Fatalf("replayed status = %+v, want 1 done / 1 pending", stat)
	}
	if got := string(stat.Cells[0].Result); got != `{"ok":1}` {
		t.Fatalf("committed result lost: %q", got)
	}
	// The torn job's uncommitted record must be gone, not half-applied.
	if stat.Cells[1].State != JobPending {
		t.Fatalf("torn-tail cell state = %q, want pending", stat.Cells[1].State)
	}

	// The tail was physically truncated, and the journal appends cleanly
	// after recovery.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)-len(torn) {
		t.Fatalf("journal length = %d, want %d (torn tail truncated)", len(after), len(before)-len(torn))
	}
	if _, err := st2.Lease(fmtJobID(id, 1), "w2"); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestJournalMidFileCorruption distinguishes corruption from a torn tail: a
// malformed line with committed records after it is an error, not something
// to silently drop.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	lines := `{"t":"sweep","sweep":"s0","req":{}}` + "\n" +
		`this is not json` + "\n" +
		`{"t":"job","job":"s0/0","sweep":"s0","hash":"h","cell":{"workload":"MEM1"}}` + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenStore(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("OpenStore = %v, want mid-file corruption error", err)
	}
}

// TestStoreRestartReplay verifies the replay semantics a coordinator restart
// relies on: done results survive verbatim, leased-at-crash jobs return to
// pending with their attempt count intact, and the sweep sequence resumes
// past recovered sweeps.
func TestStoreRestartReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	req := normSweep(t, []string{"MEM1", "MIX1"}, []string{"CoScale"})
	id, _, err := st.AddSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Lease(fmtJobID(id, 0), "w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Done(fmtJobID(id, 0), json.RawMessage(`{"r":0}`)); err != nil {
		t.Fatal(err)
	}
	// Job 1 is mid-lease on attempt 2 at "crash" time.
	if _, err := st.Lease(fmtJobID(id, 1), "w2"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fail(fmtJobID(id, 1), 1, "cut", 4, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Lease(fmtJobID(id, 1), "w1"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stat, _ := st2.Status(id)
	if stat.Done != 1 || string(stat.Cells[0].Result) != `{"r":0}` {
		t.Fatalf("done cell not recovered: %+v", stat.Cells[0])
	}
	c1 := stat.Cells[1]
	if c1.State != JobPending || c1.Attempts != 2 {
		t.Fatalf("leased-at-crash cell = state %q attempts %d, want pending/2", c1.State, c1.Attempts)
	}
	// New sweeps continue the sequence instead of colliding with s0.
	id2, _, err := st2.AddSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("sweep sequence reused %q after replay", id2)
	}
}
