package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientHonorsRetryAfter verifies the shared client retries 503s and
// waits out the server's Retry-After hint with the deterministic ±20%
// jitter, instead of its own exponential schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var waits []time.Duration
	c := &Client{
		Retries: 3,
		Seed:    1,
		sleep: func(ctx context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.DoJSON(context.Background(), "GET", ts.URL, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || calls.Load() != 3 {
		t.Fatalf("ok=%v calls=%d, want success on 3rd call", out.OK, calls.Load())
	}
	if len(waits) != 2 {
		t.Fatalf("slept %d times, want 2", len(waits))
	}
	for i, d := range waits {
		lo, hi := 1600*time.Millisecond, 2400*time.Millisecond // 2s ± 20%
		if d < lo || d >= hi {
			t.Fatalf("wait %d = %v outside jittered Retry-After window [%v, %v)", i, d, lo, hi)
		}
	}
	if waits[0] == waits[1] {
		t.Fatalf("jitter is attempt-keyed; identical waits %v look unjittered", waits[0])
	}

	// Determinism: the same seed re-derives the same waits.
	calls.Store(0)
	var waits2 []time.Duration
	c2 := &Client{Retries: 3, Seed: 1, sleep: func(ctx context.Context, d time.Duration) error {
		waits2 = append(waits2, d)
		return nil
	}}
	if err := c2.DoJSON(context.Background(), "GET", ts.URL, nil, &out); err != nil {
		t.Fatal(err)
	}
	if len(waits2) != 2 || waits2[0] != waits[0] || waits2[1] != waits[1] {
		t.Fatalf("retry jitter not deterministic: %v vs %v", waits, waits2)
	}
}

// TestClientNonRetryable verifies a 400 returns immediately as StatusError.
func TestClientNonRetryable(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := &Client{Retries: 3, sleep: func(context.Context, time.Duration) error { return nil }}
	err := c.DoJSON(context.Background(), "GET", ts.URL, nil, nil)
	if err == nil || calls.Load() != 1 {
		t.Fatalf("err=%v calls=%d, want immediate StatusError after 1 call", err, calls.Load())
	}
}

// TestClientExhaustsRetries verifies the attempt cap: retries+1 calls, then
// the last error surfaces.
func TestClientExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{Retries: 2, sleep: func(context.Context, time.Duration) error { return nil }}
	err := c.DoJSON(context.Background(), "GET", ts.URL, nil, nil)
	if err == nil || calls.Load() != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3 calls", err, calls.Load())
	}
}
