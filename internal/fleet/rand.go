package fleet

import (
	"hash/fnv"

	"coscale/internal/fault"
)

// hashKey folds an operation name, a string key, and a numeric
// discriminator into the 64-bit input of the splitmix64 finalizer. Every
// randomized decision in this package — backoff jitter, client retry
// jitter, chaos injections — draws through it, so a decision is a pure
// function of (seed, op, key, n): identical across runs and unaffected by
// goroutine interleaving, which is what makes chaos runs bit-replayable.
func hashKey(op, key string, n uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(op))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	var b [8]byte
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// jitterFrac maps a key to a uniform fraction in [0, 1).
func jitterFrac(k uint64) float64 { return fault.MixFloat64(k) }

// seededFrac is jitterFrac under an explicit seed.
func seededFrac(seed, k uint64) float64 { return fault.MixFloat64(seed ^ k) }
