package fleet

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coscale/internal/server"
)

// assignedSum totals the published budget slices across every registered
// worker (dead workers hold a zero slice, so summing all of them is the
// conservation invariant's left-hand side).
func assignedSum(c *Coordinator) float64 {
	sum := 0.0
	for _, w := range c.Workers() {
		sum += w.BudgetWatts
	}
	return sum
}

// checkConserved asserts the fleet invariant at one instant: the sum of
// published worker slices never exceeds the global budget. The coordinator's
// Nextafter guard makes this exact in float arithmetic — no tolerance.
func checkConserved(t *testing.T, c *Coordinator, when string) {
	t.Helper()
	if sum, budget := assignedSum(c), c.Budget(); sum > budget {
		t.Fatalf("%s: assigned %.17g W exceeds global budget %.17g W", when, sum, budget)
	}
}

// waitConserved polls cond like waitFor, but additionally re-checks budget
// conservation on every poll tick — the "every epoch" half of the chaos
// assertion: the invariant must hold mid-transition, not just at rest.
func waitConserved(t *testing.T, c *Coordinator, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		checkConserved(t, c, "while waiting for "+what)
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBudgetRebalanceUnit pins the coordinator's equal-split allocator
// deterministically (fake clock, direct calls): register/heartbeat publish
// slices, drain transitions and reaped deaths move budget to survivors, a
// join mid-cap redistributes, and the published sum never exceeds the
// budget even when the division is inexact.
func TestBudgetRebalanceUnit(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c, err := New(Config{
		HeartbeatInterval: time.Second,
		SuspectAfter:      100 * time.Minute,
		DeadAfter:         2 * time.Hour,
		SchedTick:         time.Minute, // background reap effectively off; reap is driven directly
		PowerBudgetWatts:  300,
		Transport:         okTransport{},
		Logger:            quietLog(),
		Clock:             clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A sole worker takes the whole budget; each join splits it further.
	if got := c.register("a", "http://a"); got != 300 {
		t.Fatalf("sole worker assigned %g W, want 300", got)
	}
	c.register("b", "http://b")
	c.register("c", "http://c")
	asg, fleetB, ok := c.heartbeat("a", "", server.ReadyState{Ready: true})
	if !ok || asg != 100 || fleetB != 300 {
		t.Fatalf("heartbeat after 3-way split: (%g, %g, %v), want (100, 300, true)", asg, fleetB, ok)
	}
	checkConserved(t, c, "3-way split")

	// An inexact division (100/3) must still conserve: the one-ulp
	// Nextafter guard keeps 3*share <= budget.
	if err := c.SetBudget(100); err != nil {
		t.Fatal(err)
	}
	checkConserved(t, c, "inexact split")
	ws := c.Workers()
	for _, w := range ws[1:] {
		if math.Float64bits(w.BudgetWatts) != math.Float64bits(ws[0].BudgetWatts) {
			t.Fatalf("unequal slices under equal split: %v", ws)
		}
	}

	// A draining worker gives up its slice to the survivors.
	if _, _, ok := c.heartbeat("b", "", server.ReadyState{Ready: true, Draining: true}); !ok {
		t.Fatal("draining heartbeat rejected")
	}
	for _, w := range c.Workers() {
		want := 50.0
		if w.ID == "b" {
			want = 0
		}
		if w.BudgetWatts != want {
			t.Fatalf("after drain, worker %s holds %g W, want %g", w.ID, w.BudgetWatts, want)
		}
	}
	checkConserved(t, c, "drain transition")

	// Leave mid-rebalance: advance so only the silent (draining) worker
	// crosses DeadAfter, then reap. Its zero slice stays zero; survivors
	// keep 50 each under the 100 W cap.
	advance(90 * time.Minute)
	c.heartbeat("a", "", server.ReadyState{Ready: true})
	c.heartbeat("c", "", server.ReadyState{Ready: true})
	advance(90 * time.Minute) // b silent 3h > DeadAfter; a, c silent 90m
	c.reap(clock())
	for _, w := range c.Workers() {
		if w.ID == "b" {
			if w.Health != WorkerDead || w.BudgetWatts != 0 {
				t.Fatalf("reaped worker b: health %s, %g W, want dead with 0 W", w.Health, w.BudgetWatts)
			}
		} else if w.Health != WorkerLive || w.BudgetWatts != 50 {
			t.Fatalf("survivor %s: health %s, %g W, want live with 50 W", w.ID, w.Health, w.BudgetWatts)
		}
	}
	checkConserved(t, c, "reaped death")

	// Join mid-cap: a fresh worker triggers an immediate three-way
	// redistribution of the still-reduced budget.
	c.register("d", "http://d")
	live := 0
	for _, w := range c.Workers() {
		if w.ID == "b" {
			continue
		}
		live++
		if 3*w.BudgetWatts > 100 {
			t.Fatalf("post-join slice %g W over-allocates the 100 W budget", w.BudgetWatts)
		}
	}
	if live != 3 {
		t.Fatalf("want 3 live workers after join, got %d", live)
	}
	checkConserved(t, c, "join mid-cap")

	// Removing the cap zeroes every slice; bad budgets are rejected.
	if err := c.SetBudget(0); err != nil {
		t.Fatal(err)
	}
	if sum := assignedSum(c); sum != 0 {
		t.Fatalf("uncapped fleet still assigns %g W", sum)
	}
	if err := c.SetBudget(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := c.SetBudget(math.NaN()); err == nil {
		t.Fatal("NaN budget accepted")
	}
}

// TestBudgetChaosE2E drives the cap-event scenario over real HTTP with real
// agents: a capped fleet steps its budget down 300 -> 240 -> 180 W while a
// seeded ChaosTransport kills one worker's heartbeats mid-event. The
// coordinator must reap the victim, move its slice to the survivors, keep
// the published sum at or under the global cap on every observation, and
// propagate each worker's slice into coscale-serve's power-cap gauges.
func TestBudgetChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end test")
	}
	workers := []*testWorker{startWorker(t, "w1"), startWorker(t, "w2"), startWorker(t, "w3")}

	chaos := &ChaosTransport{
		Inner: okTransport{},
		Plan:  ChaosPlan{Seed: 99, HeartbeatLossProb: 1}, // every gated beat drops
	}
	coord, err := New(Config{
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		SchedTick:         5 * time.Millisecond,
		PowerBudgetWatts:  300,
		Transport:         chaos,
		Logger:            quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// The victim's heartbeats route through the seeded chaos plan once the
	// kill switch flips; until then they pass. OnBudget feeds each worker's
	// slice straight into its serving metrics, the production wiring.
	var killed atomic.Bool
	victimDrop := chaos.DropBeat("w2")
	agentCtx, stopAgents := context.WithCancel(context.Background())
	defer stopAgents()
	for _, w := range workers {
		w := w
		a := &Agent{
			ID: w.id, Addr: w.ts.URL, Coordinator: cts.URL,
			Ready: w.srv.Ready, OnBudget: w.srv.SetPowerCap,
			Interval: 20 * time.Millisecond, Logger: quietLog(),
		}
		if w.id == "w2" {
			a.DropBeat = func(seq int) bool { return killed.Load() && victimDrop(seq) }
		}
		//lint:ignore dettaint test harness goroutine
		go a.Run(agentCtx)
	}

	capEq := func(w *testWorker, wantAsg, wantFleet float64) bool {
		asg, fb := w.srv.PowerCap()
		return math.Float64bits(asg) == math.Float64bits(wantAsg) &&
			math.Float64bits(fb) == math.Float64bits(wantFleet)
	}
	allCap := func(wantAsg, wantFleet float64, skip string) func() bool {
		return func() bool {
			for _, w := range workers {
				if w.id == skip {
					continue
				}
				if !capEq(w, wantAsg, wantFleet) {
					return false
				}
			}
			return true
		}
	}

	// Steady state: 300 W over three workers, 100 W each, end to end.
	waitConserved(t, coord, 10*time.Second, "steady 3-way split", allCap(100, 300, ""))

	// Cap event 1 — step to 80%: every worker observes its new slice
	// within a heartbeat interval.
	if err := coord.SetBudget(240); err != nil {
		t.Fatal(err)
	}
	waitConserved(t, coord, 10*time.Second, "80% step", allCap(80, 240, ""))

	// Cap event 2 — dip to 60% — and the victim dies mid-event: its
	// chaos-dropped heartbeats silence it, the coordinator reaps it, and
	// its slice moves to the survivors without ever over-allocating.
	killed.Store(true)
	if err := coord.SetBudget(180); err != nil {
		t.Fatal(err)
	}
	waitConserved(t, coord, 10*time.Second, "victim reaped", func() bool {
		for _, w := range coord.Workers() {
			if w.ID == "w2" {
				return w.Health == WorkerDead && w.BudgetWatts == 0
			}
		}
		return false
	})
	waitConserved(t, coord, 10*time.Second, "survivors absorb the dip", allCap(90, 180, "w2"))

	// Join mid-cap: a fourth worker enrolls under the reduced budget and
	// the split becomes three-way again, 60 W each.
	w4 := startWorker(t, "w4")
	workers = append(workers, w4)
	a4 := &Agent{
		ID: w4.id, Addr: w4.ts.URL, Coordinator: cts.URL,
		Ready: w4.srv.Ready, OnBudget: w4.srv.SetPowerCap,
		Interval: 20 * time.Millisecond, Logger: quietLog(),
	}
	//lint:ignore dettaint test harness goroutine
	go a4.Run(agentCtx)
	waitConserved(t, coord, 10*time.Second, "join mid-cap", allCap(60, 180, "w2"))

	// The coordinator's /metrics exports the power-cap trio, consistent
	// with the state just asserted.
	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(mb)
	for _, want := range []string{
		fmt.Sprintf("coscale_powercap_budget_watts %g\n", 180.0),
		fmt.Sprintf("coscale_powercap_assigned_watts %g\n", 180.0),
		"coscale_powercap_rebalances_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "coscale_powercap_rebalances_total 0\n") {
		t.Error("/metrics reports zero rebalances after four budget transitions")
	}

	// The kill actually went through the seeded chaos plan.
	drops := 0
	for _, ev := range chaos.Events() {
		if ev.Op == "heartbeat" && ev.Worker == "w2" {
			drops++
		}
	}
	if drops == 0 {
		t.Error("chaos plan recorded no dropped heartbeats for the victim")
	}
}
