package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

// planForTest exercises every fault class.
func planForTest(seed uint64) ChaosPlan {
	return ChaosPlan{
		Seed:              seed,
		RefuseProb:        0.15,
		DropProb:          0.10,
		CutProb:           0.10,
		LatencyProb:       0.20,
		LatencyMin:        time.Millisecond,
		LatencyMax:        5 * time.Millisecond,
		HeartbeatLossProb: 0.20,
	}
}

// TestChaosPlanBitReplayable is the determinism contract: every injection
// decision is a pure function of (seed, event key), so the same seed
// reproduces the same fault sequence over any probe grid — and a different
// seed does not.
func TestChaosPlanBitReplayable(t *testing.T) {
	grid := func(p ChaosPlan) []string {
		var out []string
		for _, w := range []string{"w1", "w2", "w3"} {
			for i := 0; i < 20; i++ {
				for attempt := 1; attempt <= 4; attempt++ {
					out = append(out, p.Execute(w, fakeHash(i), attempt))
				}
				out = append(out, p.Latency(w, fakeHash(i), 1).String())
			}
			for seq := 1; seq <= 50; seq++ {
				if p.DropHeartbeat(w, seq) {
					out = append(out, "hb")
				}
			}
		}
		return out
	}
	a, b := grid(planForTest(42)), grid(planForTest(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if reflect.DeepEqual(a, grid(planForTest(43))) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	// The probe plan must actually exercise every class, or the replay
	// assertion is vacuous.
	seen := map[string]bool{}
	for _, f := range a {
		seen[f] = true
	}
	for _, want := range []string{ChaosRefuse, ChaosDrop, ChaosCut, "hb"} {
		if !seen[want] {
			t.Fatalf("probe grid never produced %q (faults seen: %v)", want, seen)
		}
	}
}

// okTransport commits every job instantly.
type okTransport struct{}

func (okTransport) Execute(ctx context.Context, w Endpoint, job JobSpec) (JobResult, error) {
	return JobResult{ID: job.ID, Hash: job.Hash, WorkerID: w.ID, Result: json.RawMessage(`{"ok":1}`)}, nil
}

// TestChaosTransportInjection verifies fault semantics end to end: refusals
// fail before the inner transport, drops and cuts fail after it, successes
// pass through, every injected fault is ErrChaos, and the recorded event log
// replays against a fresh plan with the same seed.
func TestChaosTransportInjection(t *testing.T) {
	ct := &ChaosTransport{
		Inner: okTransport{},
		Plan:  planForTest(7),
		Sleep: func(context.Context, time.Duration) {},
	}
	ctx := context.Background()
	workers := []Endpoint{{ID: "w1"}, {ID: "w2"}, {ID: "w3"}}
	var okCount, failCount int
	for i := 0; i < 30; i++ {
		for _, w := range workers {
			res, err := ct.Execute(ctx, w, JobSpec{ID: "j", Hash: fakeHash(i), Attempt: 1})
			if err != nil {
				if !errors.Is(err, ErrChaos) {
					t.Fatalf("injected failure not ErrChaos: %v", err)
				}
				failCount++
			} else {
				if string(res.Result) != `{"ok":1}` {
					t.Fatalf("clean result corrupted: %s", res.Result)
				}
				okCount++
			}
		}
	}
	if okCount == 0 || failCount == 0 {
		t.Fatalf("want a mix of clean and injected outcomes, got ok=%d fail=%d", okCount, failCount)
	}

	events := ct.Events()
	if len(events) == 0 {
		t.Fatal("no chaos events recorded")
	}
	replay := planForTest(7)
	for _, ev := range events {
		if ev.Op != "execute" {
			continue
		}
		if got := replay.Execute(ev.Worker, ev.Key, ev.Attempt); got != ev.Fault {
			t.Fatalf("event %+v does not replay: fresh plan says %q", ev, got)
		}
	}
	// Events() is canonically sorted, so two runs compare byte-for-byte.
	ct2 := &ChaosTransport{Inner: okTransport{}, Plan: planForTest(7), Sleep: func(context.Context, time.Duration) {}}
	for i := 0; i < 30; i++ {
		for _, w := range workers {
			_, _ = ct2.Execute(ctx, w, JobSpec{ID: "j", Hash: fakeHash(i), Attempt: 1})
		}
	}
	if !reflect.DeepEqual(events, ct2.Events()) {
		t.Fatal("same seed, same operations: event logs differ")
	}
}

// TestDropBeat verifies the agent-side heartbeat-loss hook records into the
// same replayable event log.
func TestDropBeat(t *testing.T) {
	ct := &ChaosTransport{Plan: planForTest(7)}
	hook := ct.DropBeat("w1")
	dropped := 0
	for seq := 1; seq <= 100; seq++ {
		if hook(seq) != ct.Plan.DropHeartbeat("w1", seq) {
			t.Fatalf("hook disagrees with plan at seq %d", seq)
		}
		if ct.Plan.DropHeartbeat("w1", seq) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("plan dropped no heartbeats in 100 — probe is vacuous")
	}
	events := ct.Events()
	if len(events) != dropped {
		t.Fatalf("recorded %d heartbeat events, want %d", len(events), dropped)
	}
	for _, ev := range events {
		if ev.Op != "heartbeat" || ev.Worker != "w1" || ev.Fault != ChaosDrop {
			t.Fatalf("bad heartbeat event %+v", ev)
		}
	}
}
