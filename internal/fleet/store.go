package fleet

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"coscale/internal/server"
)

// Store is the crash-safe job store: an in-memory sweep/job table mirrored
// into the append-only journal. Every state transition is journaled before
// it takes effect in memory; "done" commits are fsynced, so an acknowledged
// result is never lost and — because replay restores Done state — never
// recomputed after a coordinator restart. A Store opened with an empty path
// is purely in-memory (tests, journal-less quickstarts).
//
// All mutable job state lives behind the store's lock; accessors hand out
// value snapshots (JobRef, SweepStatus), never shared pointers, so the
// coordinator's scheduler and dispatch goroutines cannot race the table.
type Store struct {
	mu      sync.Mutex
	j       *journal
	sweeps  map[string]*Sweep
	jobs    map[string]*Job
	order   []string // sweep IDs, admission order
	nextSeq int      // next sweep sequence number
}

// JobRef is a value snapshot of one job, safe to use outside the lock.
type JobRef struct {
	ID       string
	SweepID  string
	Index    int
	Hash     string
	Cell     server.SimulateRequest
	Attempts int
	Worker   string
}

// OpenStore opens (or creates) the store at path, replaying any existing
// journal. Jobs that were leased at crash time replay back to pending —
// their attempt already counted — so the scheduler redispatches them with
// the appropriate backoff; done jobs keep their committed results.
func OpenStore(path string) (*Store, error) {
	s := &Store{sweeps: map[string]*Sweep{}, jobs: map[string]*Job{}}
	if path == "" {
		return s, nil
	}
	j, recs, err := openJournal(path)
	if err != nil {
		return nil, err
	}
	s.j = j
	for i, rec := range recs {
		if err := s.applyLocked(rec); err != nil {
			j.close()
			return nil, fmt.Errorf("fleet: journal replay record %d: %w", i, err)
		}
	}
	// Leased-at-crash jobs have no terminal record: schedule them again.
	for _, id := range s.order {
		for _, job := range s.sweeps[id].Jobs {
			if job.State == JobLeased {
				job.State = JobPending
				job.Worker = ""
			}
		}
	}
	return s, nil
}

// Close releases the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.close()
}

// applyLocked folds one journal record into the in-memory table. It is the
// single interpretation of the journal format, shared between replay and
// live appends (live paths mutate through it after journaling).
func (s *Store) applyLocked(rec record) error {
	switch rec.Type {
	case "sweep":
		if rec.Req == nil {
			return fmt.Errorf("sweep record %q missing request", rec.Sweep)
		}
		sw := &Sweep{ID: rec.Sweep, Req: *rec.Req}
		s.sweeps[sw.ID] = sw
		s.order = append(s.order, sw.ID)
		if n, err := sweepSeq(sw.ID); err == nil && n >= s.nextSeq {
			s.nextSeq = n + 1
		}
	case "job":
		sw, ok := s.sweeps[rec.Sweep]
		if !ok {
			return fmt.Errorf("job %q references unknown sweep %q", rec.Job, rec.Sweep)
		}
		if rec.Cell == nil {
			return fmt.Errorf("job record %q missing cell", rec.Job)
		}
		job := &Job{
			ID: rec.Job, SweepID: rec.Sweep, Index: rec.Index,
			Hash: rec.Hash, Cell: *rec.Cell, State: JobPending,
		}
		s.jobs[job.ID] = job
		sw.Jobs = append(sw.Jobs, job)
	case "lease":
		job, err := s.jobLocked(rec.Job)
		if err != nil {
			return err
		}
		job.State = JobLeased
		job.Worker = rec.Worker
		job.Attempts = rec.Attempt
	case "fail":
		job, err := s.jobLocked(rec.Job)
		if err != nil {
			return err
		}
		job.State = JobPending
		job.Worker = ""
		job.Err = rec.Err
	case "done":
		job, err := s.jobLocked(rec.Job)
		if err != nil {
			return err
		}
		job.State = JobDone
		job.Worker = ""
		job.Err = ""
		job.Result = rec.Result
	case "failed":
		job, err := s.jobLocked(rec.Job)
		if err != nil {
			return err
		}
		job.State = JobFailed
		job.Worker = ""
		job.Err = rec.Err
	default:
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
	return nil
}

func (s *Store) jobLocked(id string) (*Job, error) {
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("unknown job %q", id)
	}
	return job, nil
}

// sweepSeq parses the numeric sequence out of a sweep ID ("s12" → 12).
func sweepSeq(id string) (int, error) {
	return strconv.Atoi(strings.TrimPrefix(id, "s"))
}

func refOf(job *Job) JobRef {
	return JobRef{
		ID: job.ID, SweepID: job.SweepID, Index: job.Index,
		Hash: job.Hash, Cell: job.Cell, Attempts: job.Attempts, Worker: job.Worker,
	}
}

// AddSweep admits a normalized sweep: one job per cell, hashed with the
// canonical simulate hash, journaled (with fsync — admission is a promise)
// before becoming visible. It returns the new sweep's ID and job count.
func (s *Store) AddSweep(req server.SweepRequest) (string, int, error) {
	cells := req.Cells()
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("s%d", s.nextSeq)
	recs := make([]record, 0, len(cells)+1)
	reqCopy := req
	recs = append(recs, record{Type: "sweep", Sweep: id, Req: &reqCopy})
	for i := range cells {
		hash, err := cells[i].Hash()
		if err != nil {
			return "", 0, err
		}
		cell := cells[i]
		recs = append(recs, record{
			Type: "job", Sweep: id, Job: fmtJobID(id, i), Index: i,
			Hash: hash, Cell: &cell,
		})
	}
	if err := s.j.append(true, recs...); err != nil {
		return "", 0, err
	}
	for _, rec := range recs {
		if err := s.applyLocked(rec); err != nil {
			return "", 0, err
		}
	}
	return id, len(cells), nil
}

// Lease transitions a pending job to leased on worker, journaling the
// attempt, and returns the attempt number (1-based).
func (s *Store) Lease(jobID, worker string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, err := s.jobLocked(jobID)
	if err != nil {
		return 0, err
	}
	if job.State != JobPending {
		return 0, fmt.Errorf("job %q is %s, not pending", jobID, job.State)
	}
	rec := record{Type: "lease", Job: jobID, Worker: worker, Attempt: job.Attempts + 1}
	if err := s.j.append(false, rec); err != nil {
		return 0, err
	}
	if err := s.applyLocked(rec); err != nil {
		return 0, err
	}
	return job.Attempts, nil
}

// Fail records a failed attempt. Unless the attempt cap is reached the job
// returns to pending, not dispatchable before notBefore (the backoff); at
// the cap it fails terminally. A stale failure — the lease was already
// reclaimed and re-attempted, or the job committed — is ignored so it
// cannot clobber newer state. Reports whether the job failed terminally.
func (s *Store) Fail(jobID string, attempt int, cause string, maxAttempts int, notBefore time.Time) (terminal bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, err := s.jobLocked(jobID)
	if err != nil {
		return false, err
	}
	if job.State != JobLeased || job.Attempts != attempt {
		return false, nil
	}
	rec := record{Type: "fail", Job: jobID, Attempt: attempt, Err: cause}
	if job.Attempts >= maxAttempts {
		rec.Type = "failed"
	}
	if err := s.j.append(rec.Type == "failed", rec); err != nil {
		return false, err
	}
	if err := s.applyLocked(rec); err != nil {
		return false, err
	}
	job.NotBefore = notBefore
	return rec.Type == "failed", nil
}

// Done commits a job's result: journaled with fsync before the in-memory
// table (and therefore any client) sees it. Committing an already-terminal
// job is a no-op — a late duplicate response from a retried attempt whose
// first response was cut cannot double-commit. Reports whether this call
// committed.
func (s *Store) Done(jobID string, result json.RawMessage) (committed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, err := s.jobLocked(jobID)
	if err != nil {
		return false, err
	}
	if job.State == JobDone || job.State == JobFailed {
		return false, nil
	}
	rec := record{Type: "done", Job: jobID, Attempt: job.Attempts, Result: result}
	if err := s.j.append(true, rec); err != nil {
		return false, err
	}
	if err := s.applyLocked(rec); err != nil {
		return false, err
	}
	return true, nil
}

// Dispatchable returns snapshots of the pending jobs whose backoff has
// elapsed at now, in deterministic (sweep admission, cell index) order.
func (s *Store) Dispatchable(now time.Time) []JobRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobRef
	for _, id := range s.order {
		for _, job := range s.sweeps[id].Jobs {
			if job.State == JobPending && !now.Before(job.NotBefore) {
				out = append(out, refOf(job))
			}
		}
	}
	return out
}

// LeasedTo returns snapshots of the jobs currently leased to worker, in
// (sweep admission, cell index) order.
func (s *Store) LeasedTo(worker string) []JobRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobRef
	for _, id := range s.order {
		for _, job := range s.sweeps[id].Jobs {
			if job.State == JobLeased && job.Worker == worker {
				out = append(out, refOf(job))
			}
		}
	}
	return out
}

// CellStatus is the externally visible state of one sweep cell.
type CellStatus struct {
	Index    int             `json:"index"`
	Workload string          `json:"workload"`
	Policy   string          `json:"policy"`
	Hash     string          `json:"hash"`
	State    string          `json:"state"`
	Attempts int             `json:"attempts"`
	Worker   string          `json:"worker,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// SweepStatus is the externally visible state of a sweep: aggregate
// progress plus per-cell rows in cell order. Partial results are first-class:
// done cells carry their results while the remainder retries.
type SweepStatus struct {
	ID      string       `json:"id"`
	State   string       `json:"state"` // running | done | failed
	Total   int          `json:"total"`
	Done    int          `json:"done"`
	Failed  int          `json:"failed"`
	Leased  int          `json:"leased"`
	Pending int          `json:"pending"`
	Cells   []CellStatus `json:"cells"`
}

// Status snapshots a sweep for rendering.
func (s *Store) Status(id string) (SweepStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	st := SweepStatus{ID: id, State: sw.State(), Total: len(sw.Jobs)}
	for _, job := range sw.Jobs {
		switch job.State {
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobLeased:
			st.Leased++
		default:
			st.Pending++
		}
		st.Cells = append(st.Cells, CellStatus{
			Index: job.Index, Workload: job.Cell.Workload, Policy: job.Cell.Policy,
			Hash: job.Hash, State: job.State, Attempts: job.Attempts,
			Worker: job.Worker, Error: job.Err, Result: job.Result,
		})
	}
	return st, true
}

// SweepIDs returns every sweep ID in admission order.
func (s *Store) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}
