package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coscale/internal/fault"
	"coscale/internal/server"
)

// Config shapes a Coordinator. The zero value selects the documented
// defaults; negative RetryAfterJitterSeconds disables the shed jitter.
type Config struct {
	// HeartbeatInterval is the cadence workers are told to heartbeat at
	// (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence after which a worker stops receiving new
	// leases (default 3× HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a worker is declared dead and
	// its leases are reclaimed (default 6× HeartbeatInterval).
	DeadAfter time.Duration
	// SchedTick is the scheduler pass interval (default 25ms).
	SchedTick time.Duration
	// JobTimeout bounds one dispatch attempt end to end (default 60s).
	JobTimeout time.Duration
	// MaxAttempts caps lease attempts per job before it fails terminally
	// (default 4).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the per-job retry backoff
	// (defaults 250ms, 8s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxInflightPerWorker bounds concurrently leased jobs per worker
	// (default 4, matching the worker's own pool).
	MaxInflightPerWorker int
	// VirtualNodes per worker on the ring (0 selects the ring default).
	VirtualNodes int
	// RetryAfterSeconds is the base Retry-After hint when shedding
	// (default 1); RetryAfterJitterSeconds spreads it into
	// [base, base+jitter] (default 2; negative disables).
	RetryAfterSeconds       int
	RetryAfterJitterSeconds int
	// PowerBudgetWatts is the fleet's global power budget, split across
	// live workers and republished through join/heartbeat responses
	// (0 = uncapped). Adjustable at runtime via SetBudget.
	PowerBudgetWatts float64
	// JournalPath is the crash-safe job journal ("" = in-memory only).
	JournalPath string
	// Transport executes leases (default HTTPTransport).
	Transport Transport
	// Logger receives coordinator events (default log.Default).
	Logger *log.Logger
	// Clock is the time source, replaceable by tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6 * c.HeartbeatInterval
	}
	if c.SchedTick <= 0 {
		c.SchedTick = 25 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.MaxInflightPerWorker <= 0 {
		c.MaxInflightPerWorker = 4
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.RetryAfterJitterSeconds == 0 {
		c.RetryAfterJitterSeconds = 2
	}
	if c.Transport == nil {
		c.Transport = &HTTPTransport{}
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Clock == nil {
		//lint:ignore determinism the wall clock enters the fleet here once; tests inject a fake Clock
		c.Clock = time.Now
	}
	return c
}

// workerState is the coordinator's bookkeeping for one registered worker.
// Health is derived, not stored: silence past SuspectAfter makes a worker
// suspect (no new leases), past DeadAfter makes it dead (leases reclaimed,
// removed from the ring until it rejoins).
type workerState struct {
	id         string
	addr       string
	lastBeat   time.Time
	draining   bool
	queueDepth int
	inflight   int
	dead       bool
	budgetW    float64 // assigned slice of the fleet power budget
}

// Worker health states.
const (
	WorkerLive    = "live"
	WorkerSuspect = "suspect"
	WorkerDead    = "dead"
)

func (w *workerState) health(now time.Time, cfg Config) string {
	switch {
	case w.dead:
		return WorkerDead
	case now.Sub(w.lastBeat) > cfg.SuspectAfter:
		return WorkerSuspect
	}
	return WorkerLive
}

// fleetMetrics aggregates the coordinator counters exposed at /metrics.
type fleetMetrics struct {
	dispatched atomic.Int64 // leases handed to the transport
	committed  atomic.Int64 // results committed to the journal
	duplicates atomic.Int64 // late results for already-terminal jobs
	retried    atomic.Int64 // failed attempts returned to pending
	failed     atomic.Int64 // jobs failed terminally at the attempt cap
	reclaimed  atomic.Int64 // leases reclaimed from dead workers
	shed       atomic.Int64 // sweeps refused for want of live workers
	heartbeats atomic.Int64 // heartbeats accepted
	rebalances atomic.Int64 // power-budget reassignments that changed a slice
}

// Coordinator owns the fleet: worker membership and health, the consistent
// hash ring, the crash-safe job store, and the scheduler that turns pending
// jobs into leases on live workers. One scheduler goroutine makes every
// routing decision in deterministic (sweep, cell) × sorted-worker order;
// dispatch goroutines only execute the decisions and report back through
// the store's guarded transitions.
type Coordinator struct {
	cfg   Config
	store *Store
	tr    Transport

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*workerState
	budgetW float64       // fleet power budget (0 = uncapped), guarded by mu
	update  chan struct{} // closed and replaced on every state change

	retrySeq atomic.Int64
	started  time.Time
	m        fleetMetrics
}

// New opens the journal (replaying any previous run), starts the scheduler,
// and returns the running coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	st, err := OpenStore(cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		store:   st,
		tr:      cfg.Transport,
		baseCtx: ctx,
		cancel:  cancel,
		ring:    NewRing(cfg.VirtualNodes),
		workers: map[string]*workerState{},
		budgetW: cfg.PowerBudgetWatts,
		update:  make(chan struct{}),
	}
	c.started = c.now()
	c.wg.Add(1)
	//lint:ignore dettaint single scheduler goroutine; all routing decisions are made inside it in deterministic order
	go c.run()
	return c, nil
}

// Close stops the scheduler, waits out in-flight dispatches (their contexts
// are cancelled), and releases the journal.
func (c *Coordinator) Close() error {
	c.cancel()
	c.wg.Wait()
	return c.store.Close()
}

func (c *Coordinator) now() time.Time { return c.cfg.Clock() }

func (c *Coordinator) logf(format string, args ...any) {
	c.cfg.Logger.Printf("fleet: "+format, args...)
}

// bump wakes every status waiter: the broadcast channel is closed and
// replaced under the lock.
func (c *Coordinator) bump() {
	c.mu.Lock()
	close(c.update)
	c.update = make(chan struct{})
	c.mu.Unlock()
}

// updated returns the channel closed at the next state change.
func (c *Coordinator) updated() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.update
}

// workerIDsLocked returns the registered worker IDs sorted, so scheduler
// iteration order is deterministic.
func (c *Coordinator) workerIDsLocked() []string {
	ids := make([]string, 0, len(c.workers))
	//lint:ignore determinism keys are sorted before use
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// run is the scheduler loop: each tick reaps dead workers (reclaiming their
// leases) and dispatches pending jobs whose backoff has elapsed.
func (c *Coordinator) run() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SchedTick)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			now := c.now()
			c.reap(now)
			c.dispatch(now)
		}
	}
}

// reap transitions silent workers to dead and reclaims their leases: each
// leased job fails its current attempt and returns to pending with backoff,
// to be rebalanced onto the survivors by the next dispatch pass.
func (c *Coordinator) reap(now time.Time) {
	c.mu.Lock()
	var newlyDead []string
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		if !w.dead && now.Sub(w.lastBeat) > c.cfg.DeadAfter {
			w.dead = true
			c.ring.Remove(id)
			newlyDead = append(newlyDead, id)
		}
	}
	if len(newlyDead) > 0 {
		c.rebalanceLocked() // dead workers' budget slices move to survivors
	}
	c.mu.Unlock()
	for _, id := range newlyDead {
		c.logf("worker %s: no heartbeat for %v, declared dead", id, c.cfg.DeadAfter)
		for _, job := range c.store.LeasedTo(id) {
			nb := now.Add(Backoff(job.Hash, job.Attempts, c.cfg.BackoffBase, c.cfg.BackoffMax))
			terminal, err := c.store.Fail(job.ID, job.Attempts, "worker "+id+" dead", c.cfg.MaxAttempts, nb)
			if err != nil {
				c.logf("reclaim %s: %v", job.ID, err)
				continue
			}
			c.m.reclaimed.Add(1)
			if terminal {
				c.m.failed.Add(1)
				c.logf("job %s: failed terminally after %d attempts (worker %s dead)", job.ID, job.Attempts, id)
			} else {
				c.m.retried.Add(1)
				c.logf("job %s: lease on dead worker %s reclaimed (attempt %d)", job.ID, id, job.Attempts)
			}
		}
		c.bump()
	}
}

// dispatch routes every dispatchable job to the first eligible worker
// clockwise from its hash point — live, not draining, with a free inflight
// slot — reserving the slot under the lock, then leases and launches the
// transport call. Jobs with no eligible worker stay pending for a later
// tick.
func (c *Coordinator) dispatch(now time.Time) {
	refs := c.store.Dispatchable(now)
	if len(refs) == 0 {
		return
	}
	type assignment struct {
		job JobRef
		ep  Endpoint
	}
	var assigns []assignment
	c.mu.Lock()
	for _, job := range refs {
		id, ok := c.ring.Lookup(job.Hash, func(wid string) bool {
			w := c.workers[wid]
			return w != nil && w.health(now, c.cfg) == WorkerLive && !w.draining &&
				w.inflight < c.cfg.MaxInflightPerWorker
		})
		if !ok {
			continue
		}
		w := c.workers[id]
		w.inflight++
		assigns = append(assigns, assignment{job, Endpoint{ID: id, Addr: w.addr}})
	}
	c.mu.Unlock()
	for _, a := range assigns {
		attempt, err := c.store.Lease(a.job.ID, a.ep.ID)
		if err != nil {
			c.release(a.ep.ID) // lost a race with a concurrent commit
			continue
		}
		c.m.dispatched.Add(1)
		c.wg.Add(1)
		//lint:ignore dettaint dispatch goroutines only execute scheduler decisions; results commit through the store's guarded, order-independent transitions
		go c.execute(a.job, attempt, a.ep)
	}
}

// release returns a worker's inflight slot.
func (c *Coordinator) release(workerID string) {
	c.mu.Lock()
	if w := c.workers[workerID]; w != nil && w.inflight > 0 {
		w.inflight--
	}
	c.mu.Unlock()
}

// execute runs one lease attempt to its terminal store transition: a result
// commits (idempotently — a duplicate from an earlier attempt whose response
// was lost cannot double-commit), a failure returns the job to pending with
// backoff or fails it terminally at the attempt cap.
func (c *Coordinator) execute(job JobRef, attempt int, ep Endpoint) {
	defer c.wg.Done()
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.JobTimeout)
	res, err := c.tr.Execute(ctx, ep, JobSpec{ID: job.ID, Hash: job.Hash, Attempt: attempt, Simulate: job.Cell})
	cancel()
	c.release(ep.ID)
	if err != nil {
		nb := c.now().Add(Backoff(job.Hash, attempt, c.cfg.BackoffBase, c.cfg.BackoffMax))
		terminal, ferr := c.store.Fail(job.ID, attempt, err.Error(), c.cfg.MaxAttempts, nb)
		if ferr != nil {
			c.logf("fail %s: %v", job.ID, ferr)
			return
		}
		if terminal {
			c.m.failed.Add(1)
			c.logf("job %s: failed terminally after %d attempts: %v", job.ID, attempt, err)
		} else {
			c.m.retried.Add(1)
			c.logf("job %s: attempt %d on %s failed, will retry: %v", job.ID, attempt, ep.ID, err)
		}
		c.bump()
		return
	}
	committed, derr := c.store.Done(job.ID, res.Result)
	if derr != nil {
		c.logf("commit %s: %v", job.ID, derr)
		return
	}
	if committed {
		c.m.committed.Add(1)
	} else {
		c.m.duplicates.Add(1)
	}
	c.bump()
}

// register adds a worker (or revives a dead one) and puts it on the ring.
func (c *Coordinator) register(id, addr string) (assigned float64) {
	now := c.now()
	c.mu.Lock()
	w := c.workers[id]
	if w == nil {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.addr = addr
	w.lastBeat = now
	w.dead = false
	w.draining = false
	c.ring.Add(id)
	c.rebalanceLocked()
	assigned = w.budgetW
	c.mu.Unlock()
	c.logf("worker %s joined at %s", id, addr)
	c.bump()
	return assigned
}

// heartbeat refreshes a worker's lease on membership. It reports false for
// unknown or already-dead workers — the 404 tells the agent to rejoin, which
// is how a worker recovers from a coordinator restart or its own death
// verdict.
func (c *Coordinator) heartbeat(id, addr string, rs server.ReadyState) (assigned, fleetBudget float64, ok bool) {
	now := c.now()
	c.mu.Lock()
	w := c.workers[id]
	if w == nil || w.dead {
		c.mu.Unlock()
		return 0, 0, false
	}
	if addr != "" {
		w.addr = addr
	}
	w.lastBeat = now
	draining := rs.Draining || !rs.Ready
	if draining != w.draining {
		w.draining = draining
		c.rebalanceLocked() // a drain transition moves budget between workers
	}
	w.queueDepth = rs.QueueDepth
	assigned, fleetBudget = w.budgetW, c.budgetW
	c.mu.Unlock()
	c.m.heartbeats.Add(1)
	return assigned, fleetBudget, true
}

// liveWorkers counts workers currently eligible for new leases.
func (c *Coordinator) liveWorkers(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		if w.health(now, c.cfg) == WorkerLive && !w.draining {
			n++
		}
	}
	return n
}

// rebalanceLocked recomputes every worker's slice of the fleet power
// budget: an equal split over non-dead, non-draining workers (the
// degenerate water-filling — the coordinator holds no per-node
// power/performance frontiers; internal/fastcap is the frontier-aware
// allocator driving the same SetCap hook). The one-ulp Nextafter guard
// makes the conservation invariant exact: the sum of published slices
// never exceeds the budget, in float arithmetic, at any fleet size.
// Callers hold c.mu.
func (c *Coordinator) rebalanceLocked() {
	ids := c.workerIDsLocked()
	n := 0
	for _, id := range ids {
		w := c.workers[id]
		if !w.dead && !w.draining {
			n++
		}
	}
	share := 0.0
	if c.budgetW > 0 && n > 0 {
		share = c.budgetW / float64(n)
		if share*float64(n) > c.budgetW {
			share = math.Nextafter(share, 0)
		}
	}
	changed := false
	for _, id := range ids {
		w := c.workers[id]
		s := share
		if w.dead || w.draining {
			s = 0
		}
		if math.Float64bits(s) != math.Float64bits(w.budgetW) {
			w.budgetW = s
			changed = true
		}
	}
	if changed {
		c.m.rebalances.Add(1)
	}
}

// SetBudget replaces the fleet's global power budget at runtime (0 removes
// the cap) and rebalances worker slices immediately; workers observe their
// new slice on their next heartbeat.
func (c *Coordinator) SetBudget(watts float64) error {
	if watts < 0 || math.IsNaN(watts) {
		return fmt.Errorf("fleet: power budget %g W must be non-negative", watts)
	}
	c.mu.Lock()
	c.budgetW = watts
	c.rebalanceLocked()
	c.mu.Unlock()
	c.bump()
	return nil
}

// Budget returns the current fleet power budget (0 = uncapped).
func (c *Coordinator) Budget() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetW
}

// Submit admits a sweep, shedding with an error when no live worker exists
// to make progress on it (the HTTP layer maps this to 503/Retry-After).
func (c *Coordinator) Submit(req server.SweepRequest) (SweepStatus, error) {
	n, err := req.Normalized()
	if err != nil {
		return SweepStatus{}, errorf(http.StatusBadRequest, "invalid sweep: %v", err)
	}
	if c.liveWorkers(c.now()) == 0 {
		c.m.shed.Add(1)
		return SweepStatus{}, &apiError{
			status:     http.StatusServiceUnavailable,
			msg:        "no live workers: fleet cannot make progress, retry shortly",
			retryAfter: c.retryAfterSeconds(),
		}
	}
	id, total, err := c.store.AddSweep(n)
	if err != nil {
		return SweepStatus{}, err
	}
	c.logf("sweep %s admitted: %d cells", id, total)
	c.bump()
	st, _ := c.store.Status(id)
	return st, nil
}

// Status snapshots one sweep.
func (c *Coordinator) Status(id string) (SweepStatus, bool) { return c.store.Status(id) }

// WaitSweep blocks until the sweep is terminal (done or failed) or the
// context ends, returning the last observed status either way.
func (c *Coordinator) WaitSweep(ctx context.Context, id string) (SweepStatus, error) {
	for {
		ch := c.updated() // subscribe before reading to not miss a wakeup
		st, ok := c.store.Status(id)
		if !ok {
			return SweepStatus{}, fmt.Errorf("unknown sweep %q", id)
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ch:
		}
	}
}

// retryAfterSeconds jitters the shed hint into [base, base+jitter] with the
// same deterministic splitmix64 scramble the worker uses, so synchronized
// rejected clients spread out instead of returning as one stampede.
func (c *Coordinator) retryAfterSeconds() int {
	if c.cfg.RetryAfterJitterSeconds <= 0 {
		return c.cfg.RetryAfterSeconds
	}
	n := uint64(c.retrySeq.Add(1))
	return c.cfg.RetryAfterSeconds + int(fault.Mix64(n)%uint64(c.cfg.RetryAfterJitterSeconds+1))
}

// WorkerInfo is the externally visible state of one registered worker.
type WorkerInfo struct {
	ID          string  `json:"id"`
	Addr        string  `json:"addr"`
	Health      string  `json:"health"`
	Draining    bool    `json:"draining,omitempty"`
	QueueDepth  int     `json:"queue_depth"`
	Inflight    int     `json:"inflight"`
	BudgetWatts float64 `json:"budget_watts,omitempty"`
}

// Workers snapshots the registered workers in sorted ID order.
func (c *Coordinator) Workers() []WorkerInfo {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		out = append(out, WorkerInfo{
			ID: w.id, Addr: w.addr, Health: w.health(now, c.cfg),
			Draining: w.draining, QueueDepth: w.queueDepth, Inflight: w.inflight,
			BudgetWatts: w.budgetW,
		})
	}
	return out
}

// --- HTTP API ---

// apiError mirrors the serving layer's error convention: handlers return
// errors, wrap renders them as one JSON object with the mapped status.
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

func wrap(h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		err := h(w, r)
		if err == nil {
			return
		}
		status := http.StatusInternalServerError
		if ae, ok := err.(*apiError); ok {
			status = ae.status
			if ae.retryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", ae.retryAfter))
			}
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeJSON strictly decodes the request body (unknown fields are errors).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errorf(http.StatusBadRequest, "invalid request body: %v", err)
	}
	if dec.More() {
		return errorf(http.StatusBadRequest, "trailing data after request body")
	}
	return nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", wrap(c.handleHealth))
	mux.HandleFunc("GET /readyz", wrap(c.handleReady))
	mux.HandleFunc("GET /metrics", wrap(c.handleMetrics))
	mux.HandleFunc("POST /v1/fleet/sweeps", wrap(c.handleSubmit))
	mux.HandleFunc("GET /v1/fleet/sweeps", wrap(c.handleSweeps))
	mux.HandleFunc("GET /v1/fleet/sweeps/{id}", wrap(c.handleSweep))
	mux.HandleFunc("POST /v1/fleet/workers/join", wrap(c.handleJoin))
	mux.HandleFunc("POST /v1/fleet/workers/{id}/heartbeat", wrap(c.handleHeartbeat))
	mux.HandleFunc("GET /v1/fleet/workers", wrap(c.handleWorkers))
	return mux
}

// handleHealth is liveness only: the process is up.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	return nil
}

// FleetReady is the coordinator readiness snapshot: ready means at least
// one live, non-draining worker can take leases.
type FleetReady struct {
	Ready          bool `json:"ready"`
	WorkersLive    int  `json:"workers_live"`
	WorkersSuspect int  `json:"workers_suspect"`
	WorkersDead    int  `json:"workers_dead"`
}

// Ready reports the fleet's readiness.
func (c *Coordinator) Ready() FleetReady {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var fr FleetReady
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		switch w.health(now, c.cfg) {
		case WorkerDead:
			fr.WorkersDead++
		case WorkerSuspect:
			fr.WorkersSuspect++
		default:
			fr.WorkersLive++
			if !w.draining {
				fr.Ready = true
			}
		}
	}
	return fr
}

func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) error {
	fr := c.Ready()
	status := http.StatusOK
	if !fr.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, fr)
	return nil
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fr := c.Ready()
	fmt.Fprintf(w, "coscale_fleet_workers_live %d\n", fr.WorkersLive)
	fmt.Fprintf(w, "coscale_fleet_workers_suspect %d\n", fr.WorkersSuspect)
	fmt.Fprintf(w, "coscale_fleet_workers_dead %d\n", fr.WorkersDead)
	fmt.Fprintf(w, "coscale_fleet_leases_dispatched_total %d\n", c.m.dispatched.Load())
	fmt.Fprintf(w, "coscale_fleet_jobs_committed_total %d\n", c.m.committed.Load())
	fmt.Fprintf(w, "coscale_fleet_duplicate_results_total %d\n", c.m.duplicates.Load())
	fmt.Fprintf(w, "coscale_fleet_attempts_retried_total %d\n", c.m.retried.Load())
	fmt.Fprintf(w, "coscale_fleet_jobs_failed_total %d\n", c.m.failed.Load())
	fmt.Fprintf(w, "coscale_fleet_leases_reclaimed_total %d\n", c.m.reclaimed.Load())
	fmt.Fprintf(w, "coscale_fleet_sweeps_shed_total %d\n", c.m.shed.Load())
	fmt.Fprintf(w, "coscale_fleet_heartbeats_total %d\n", c.m.heartbeats.Load())
	fmt.Fprintf(w, "coscale_fleet_uptime_seconds %g\n", c.now().Sub(c.started).Seconds())
	c.mu.Lock()
	budget, assigned := c.budgetW, 0.0
	for _, id := range c.workerIDsLocked() {
		assigned += c.workers[id].budgetW
	}
	c.mu.Unlock()
	fmt.Fprintf(w, "coscale_powercap_budget_watts %g\n", budget)
	fmt.Fprintf(w, "coscale_powercap_assigned_watts %g\n", assigned)
	fmt.Fprintf(w, "coscale_powercap_rebalances_total %d\n", c.m.rebalances.Load())
	return nil
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) error {
	var req server.SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	st, err := c.Submit(req)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusAccepted, st)
	return nil
}

func (c *Coordinator) handleSweeps(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": c.store.SweepIDs()})
	return nil
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if v := r.URL.Query().Get("wait"); v == "1" || v == "true" {
		st, err := c.WaitSweep(r.Context(), id)
		if err != nil && st.ID == "" {
			return errorf(http.StatusNotFound, "unknown sweep %q", id)
		}
		writeJSON(w, http.StatusOK, st)
		return nil
	}
	st, ok := c.store.Status(id)
	if !ok {
		return errorf(http.StatusNotFound, "unknown sweep %q", id)
	}
	writeJSON(w, http.StatusOK, st)
	return nil
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) error {
	var req JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.ID == "" || req.Addr == "" {
		return errorf(http.StatusBadRequest, "join requires id and addr")
	}
	assigned := c.register(req.ID, req.Addr)
	writeJSON(w, http.StatusOK, JoinResponse{
		HeartbeatMillis:    c.cfg.HeartbeatInterval.Milliseconds(),
		SuspectAfterMillis: c.cfg.SuspectAfter.Milliseconds(),
		DeadAfterMillis:    c.cfg.DeadAfter.Milliseconds(),
		BudgetWatts:        assigned,
		FleetBudgetWatts:   c.Budget(),
	})
	return nil
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var req HeartbeatRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	assigned, fleetBudget, ok := c.heartbeat(id, req.Addr, req.Ready)
	if !ok {
		return errorf(http.StatusNotFound, "unknown worker %q: rejoin", id)
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{
		Status:           "ok",
		BudgetWatts:      assigned,
		FleetBudgetWatts: fleetBudget,
	})
	return nil
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	return nil
}
