package fleet

import (
	"context"
	"errors"
	"log"
	"net/http"
	"net/url"
	"time"

	"coscale/internal/server"
)

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// JoinResponse tells the worker the fleet's heartbeat contract: how often
// to beat, and after how much silence it will be suspected and declared
// dead.
type JoinResponse struct {
	HeartbeatMillis    int64 `json:"heartbeat_ms"`
	SuspectAfterMillis int64 `json:"suspect_after_ms"`
	DeadAfterMillis    int64 `json:"dead_after_ms"`
	// BudgetWatts is this worker's assigned slice of the fleet power
	// budget; FleetBudgetWatts is the global budget it came from (both 0
	// when the fleet is uncapped).
	BudgetWatts      float64 `json:"budget_watts,omitempty"`
	FleetBudgetWatts float64 `json:"fleet_budget_watts,omitempty"`
}

// HeartbeatRequest renews a worker's membership lease, carrying its
// readiness snapshot so the coordinator stops routing to a draining or
// saturated worker before lease timeouts would reveal it.
type HeartbeatRequest struct {
	Addr  string            `json:"addr,omitempty"`
	Ready server.ReadyState `json:"ready"`
}

// HeartbeatResponse acknowledges a heartbeat and republishes the worker's
// current slice of the fleet power budget, so budget changes propagate to
// every worker within one heartbeat interval.
type HeartbeatResponse struct {
	Status           string  `json:"status"`
	BudgetWatts      float64 `json:"budget_watts,omitempty"`
	FleetBudgetWatts float64 `json:"fleet_budget_watts,omitempty"`
}

// Agent runs inside a worker process (coscale-serve's -join flag): it
// registers with the coordinator and heartbeats the worker's readiness
// until its context ends. A heartbeat rejected with 404 — the coordinator
// restarted, or already declared this worker dead — triggers a rejoin, so
// membership self-heals in both directions.
type Agent struct {
	// ID is the stable worker identity (the ring and chaos key).
	ID string
	// Addr is the worker's advertised base URL.
	Addr string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Client is the HTTP client (nil selects a zero-value Client).
	Client *Client
	// Ready supplies the readiness payload (nil reports always-ready).
	Ready func() server.ReadyState
	// Interval overrides the coordinator-assigned heartbeat cadence.
	Interval time.Duration
	// DropBeat, when non-nil, suppresses sending heartbeat seq when it
	// returns true — the chaos hook for heartbeat loss (see
	// ChaosTransport.DropBeat).
	DropBeat func(seq int) bool
	// OnBudget, when non-nil, receives the worker's assigned power budget
	// slice and the fleet-wide budget after the join and after every
	// acknowledged heartbeat (coscale-serve points this at
	// Server.SetPowerCap).
	OnBudget func(assigned, fleetBudget float64)
	// Logger receives agent events (default log.Default).
	Logger *log.Logger
}

func (a *Agent) client() *Client {
	if a.Client != nil {
		return a.Client
	}
	return &Client{}
}

func (a *Agent) logf(format string, args ...any) {
	l := a.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf("fleet agent %s: "+format, append([]any{a.ID}, args...)...)
}

func (a *Agent) ready() server.ReadyState {
	if a.Ready != nil {
		return a.Ready()
	}
	return server.ReadyState{Ready: true}
}

// Run joins the fleet and heartbeats until ctx ends. It returns ctx.Err()
// on shutdown; transient coordinator failures are retried, not returned.
func (a *Agent) Run(ctx context.Context) error {
	interval, err := a.join(ctx)
	if err != nil {
		return err
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	seq := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			seq++
			if a.DropBeat != nil && a.DropBeat(seq) {
				continue // heartbeat lost in the network
			}
			var hb HeartbeatResponse
			err := a.client().DoJSON(ctx, "POST",
				a.Coordinator+"/v1/fleet/workers/"+url.PathEscape(a.ID)+"/heartbeat",
				HeartbeatRequest{Addr: a.Addr, Ready: a.ready()}, &hb)
			if err == nil {
				if a.OnBudget != nil {
					a.OnBudget(hb.BudgetWatts, hb.FleetBudgetWatts)
				}
				continue
			}
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				a.logf("membership lost (%v), rejoining", err)
				if _, jerr := a.join(ctx); jerr != nil {
					return jerr
				}
				continue
			}
			a.logf("heartbeat %d: %v", seq, err)
		}
	}
}

// join registers with the coordinator, retrying until it succeeds or ctx
// ends, and returns the heartbeat interval to use.
func (a *Agent) join(ctx context.Context) (time.Duration, error) {
	var resp JoinResponse
	for {
		err := a.client().DoJSON(ctx, "POST", a.Coordinator+"/v1/fleet/workers/join",
			JoinRequest{ID: a.ID, Addr: a.Addr}, &resp)
		if err == nil {
			break
		}
		a.logf("join: %v (retrying)", err)
		t := time.NewTimer(500 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	interval := a.Interval
	if interval <= 0 && resp.HeartbeatMillis > 0 {
		interval = time.Duration(resp.HeartbeatMillis) * time.Millisecond
	}
	if interval <= 0 {
		interval = time.Second
	}
	if a.OnBudget != nil {
		a.OnBudget(resp.BudgetWatts, resp.FleetBudgetWatts)
	}
	a.logf("joined %s (heartbeat every %v)", a.Coordinator, interval)
	return interval, nil
}
