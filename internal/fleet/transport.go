package fleet

import (
	"context"
	"fmt"

	"coscale/internal/server"
)

// HTTPTransport executes leased jobs over HTTP: one POST to the worker's
// /v1/lease/execute endpoint per attempt, through the shared retry/timeout
// Client. The worker runs the cell through its normal admission path (result
// cache, in-flight dedup), so a retried lease whose earlier response was
// lost is a cache hit, not a second simulation.
type HTTPTransport struct {
	// Client is the fleet HTTP client (nil selects a zero-value Client).
	Client *Client
}

func (t *HTTPTransport) client() *Client {
	if t.Client != nil {
		return t.Client
	}
	return &Client{}
}

// Execute runs one leased cell on the worker. Any outcome other than a
// "done" job with a result and the routed hash is an error, so the
// coordinator's retry machinery treats worker-side failures, hash drift and
// truncated answers uniformly as failed attempts.
func (t *HTTPTransport) Execute(ctx context.Context, worker Endpoint, job JobSpec) (JobResult, error) {
	req := server.LeaseExecuteRequest{JobID: job.ID, Attempt: job.Attempt, Hash: job.Hash, Simulate: job.Simulate}
	var resp server.LeaseExecuteResponse
	if err := t.client().DoJSON(ctx, "POST", worker.Addr+"/v1/lease/execute", req, &resp); err != nil {
		return JobResult{}, fmt.Errorf("worker %s: %w", worker.ID, err)
	}
	if resp.State != "done" {
		return JobResult{}, fmt.Errorf("worker %s reported job %s %s: %s", worker.ID, job.ID, resp.State, resp.Error)
	}
	if resp.Hash != job.Hash {
		return JobResult{}, fmt.Errorf("worker %s answered hash %.12s for job %s routed by %.12s",
			worker.ID, resp.Hash, job.ID, job.Hash)
	}
	if len(resp.Result) == 0 {
		return JobResult{}, fmt.Errorf("worker %s reported job %s done with no result", worker.ID, job.ID)
	}
	return JobResult{ID: job.ID, Hash: resp.Hash, WorkerID: resp.WorkerID, CacheHit: resp.CacheHit, Result: resp.Result}, nil
}
