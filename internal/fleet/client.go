package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the fleet's shared retry/timeout HTTP client: JSON in, JSON
// out, with bounded retries on transport errors and retryable statuses
// (429, 502, 503, 504). A Retry-After header — the server jitters its own
// value, see internal/server — is honored in preference to the local
// exponential backoff, with a deterministic ±20% jitter keyed by (URL,
// attempt) so many clients told "1s" do not return as one synchronized
// stampede. The zero value is usable.
type Client struct {
	// HTTP is the underlying client (default: http.DefaultClient with
	// PerTryTimeout applied per attempt via context).
	HTTP *http.Client
	// Retries bounds re-attempts after the first try (default 2).
	Retries int
	// PerTryTimeout bounds each individual attempt (default 30s; the
	// caller's context bounds the whole call).
	PerTryTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential backoff used when
	// the server sent no Retry-After hint (defaults 100ms, 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed keys the deterministic retry jitter (0 is a valid seed).
	Seed uint64
	// sleep is the wait primitive, replaceable by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 2
}

func (c *Client) perTryTimeout() time.Duration {
	if c.PerTryTimeout > 0 {
		return c.PerTryTimeout
	}
	return 30 * time.Second
}

func (c *Client) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 100 * time.Millisecond
}

func (c *Client) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 2 * time.Second
}

// StatusError is a non-2xx response that exhausted the client's retries
// (or is not retryable).
type StatusError struct {
	Status int
	Body   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http status %d: %s", e.Status, e.Body)
}

// retryable statuses: backpressure and transient upstream failures.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// DoJSON POSTs (or GETs, for a nil body) JSON to url and decodes the
// 2xx response into out (skipped when out is nil). Retries burn the
// caller's context; the first terminal answer wins.
func (c *Client) DoJSON(ctx context.Context, method, url string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		retryAfter, err := c.try(ctx, method, url, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && !retryableStatus(se.Status) {
			return err
		}
		if attempt >= c.retries() {
			return err
		}
		if err := c.wait(ctx, url, attempt+1, retryAfter); err != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
	}
}

// try performs one attempt, returning any Retry-After hint alongside the
// error.
func (c *Client) try(ctx context.Context, method, url string, body []byte, out any) (time.Duration, error) {
	tryCtx, cancel := context.WithTimeout(ctx, c.perTryTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tryCtx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return parseRetryAfter(resp.Header.Get("Retry-After")), &StatusError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return 0, err
	}
	return 0, json.NewDecoder(resp.Body).Decode(out)
}

// wait sleeps out one retry delay: the server's Retry-After hint when
// present, else exponential backoff — both with deterministic ±20% jitter
// keyed by (seed, url, attempt) to break retry-storm synchronization.
func (c *Client) wait(ctx context.Context, url string, attempt int, retryAfter time.Duration) error {
	var d time.Duration
	if retryAfter > 0 {
		d = retryAfter
	} else {
		d = c.backoffBase() << uint(attempt-1)
		if d > c.backoffMax() || d <= 0 {
			d = c.backoffMax()
		}
	}
	// Spread into [0.8d, 1.2d).
	f := 0.8 + 0.4*seededFrac(c.Seed, hashKey("client-retry", url, uint64(attempt)))
	d = time.Duration(float64(d) * f)
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// parseRetryAfter reads an integer-seconds Retry-After value (the only
// form this system emits; HTTP dates are ignored).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
