package fleet

import (
	"encoding/json"
	"testing"
	"time"
)

// TestLeaseStateMachine walks one job through the full lease lifecycle in an
// in-memory store: pending → leased → (fail, backoff) → pending → leased →
// done, with the stale-attempt guard and terminal idempotence on the way.
func TestLeaseStateMachine(t *testing.T) {
	st, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	req := normSweep(t, []string{"MEM1"}, []string{"CoScale"})
	id, total, err := st.AddSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("total = %d, want 1", total)
	}
	job := fmtJobID(id, 0)
	t0 := time.Unix(1000, 0)

	attempt, err := st.Lease(job, "w1")
	if err != nil || attempt != 1 {
		t.Fatalf("Lease = (%d, %v), want attempt 1", attempt, err)
	}
	if _, err := st.Lease(job, "w2"); err == nil {
		t.Fatal("double lease succeeded")
	}
	// A leased job is not dispatchable.
	if refs := st.Dispatchable(t0); len(refs) != 0 {
		t.Fatalf("leased job dispatchable: %v", refs)
	}

	// A stale failure (wrong attempt) is ignored.
	if terminal, err := st.Fail(job, 7, "stale", 4, t0); err != nil || terminal {
		t.Fatalf("stale Fail = (%v, %v), want ignored", terminal, err)
	}
	if got := st.LeasedTo("w1"); len(got) != 1 {
		t.Fatalf("stale fail released the lease: %v", got)
	}

	// A real failure returns the job to pending, gated by backoff.
	nb := t0.Add(100 * time.Millisecond)
	if terminal, err := st.Fail(job, 1, "refused", 4, nb); err != nil || terminal {
		t.Fatalf("Fail = (%v, %v), want non-terminal", terminal, err)
	}
	if refs := st.Dispatchable(t0); len(refs) != 0 {
		t.Fatalf("job dispatchable before backoff elapsed: %v", refs)
	}
	refs := st.Dispatchable(nb)
	if len(refs) != 1 || refs[0].Attempts != 1 {
		t.Fatalf("Dispatchable after backoff = %+v, want 1 ref with attempts=1", refs)
	}

	if attempt, err = st.Lease(job, "w2"); err != nil || attempt != 2 {
		t.Fatalf("re-lease = (%d, %v), want attempt 2", attempt, err)
	}
	committed, err := st.Done(job, json.RawMessage(`{"x":1}`))
	if err != nil || !committed {
		t.Fatalf("Done = (%v, %v), want committed", committed, err)
	}
	// Terminal idempotence: a late duplicate cannot double-commit, a late
	// failure cannot clobber the result.
	if committed, _ := st.Done(job, json.RawMessage(`{"x":2}`)); committed {
		t.Fatal("duplicate Done committed")
	}
	if terminal, err := st.Fail(job, 2, "late", 4, nb); err != nil || terminal {
		t.Fatalf("post-done Fail = (%v, %v), want ignored", terminal, err)
	}
	stat, _ := st.Status(id)
	if stat.State != "done" || string(stat.Cells[0].Result) != `{"x":1}` {
		t.Fatalf("final status = %+v", stat)
	}
}

// TestAttemptCap fails a job terminally once its attempts are exhausted.
func TestAttemptCap(t *testing.T) {
	st, _ := OpenStore("")
	id, _, err := st.AddSweep(normSweep(t, []string{"MEM1"}, []string{"CoScale"}))
	if err != nil {
		t.Fatal(err)
	}
	job := fmtJobID(id, 0)
	now := time.Unix(0, 0)
	const maxAttempts = 3
	for n := 1; n <= maxAttempts; n++ {
		if _, err := st.Lease(job, "w1"); err != nil {
			t.Fatalf("lease %d: %v", n, err)
		}
		terminal, err := st.Fail(job, n, "boom", maxAttempts, now)
		if err != nil {
			t.Fatalf("fail %d: %v", n, err)
		}
		if want := n == maxAttempts; terminal != want {
			t.Fatalf("fail %d terminal = %v, want %v", n, terminal, want)
		}
	}
	stat, _ := st.Status(id)
	if stat.State != "failed" || stat.Cells[0].Error != "boom" || stat.Cells[0].Attempts != maxAttempts {
		t.Fatalf("capped status = %+v", stat)
	}
	if refs := st.Dispatchable(now.Add(time.Hour)); len(refs) != 0 {
		t.Fatalf("terminally failed job dispatchable: %v", refs)
	}
}

// TestBackoffDeterministic pins the backoff law: pure in (hash, attempt),
// exponential with jitter, capped.
func TestBackoffDeterministic(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	for n := 1; n <= 10; n++ {
		a := Backoff("deadbeef", n, base, max)
		b := Backoff("deadbeef", n, base, max)
		if a != b {
			t.Fatalf("Backoff not deterministic at n=%d: %v vs %v", n, a, b)
		}
		if a > max {
			t.Fatalf("Backoff(%d) = %v exceeds cap %v", n, a, max)
		}
		floor := base << uint(n-1)
		if floor < max && a < floor {
			t.Fatalf("Backoff(%d) = %v below exponential floor %v", n, a, floor)
		}
	}
	if Backoff("aa", 3, base, max) == Backoff("bb", 3, base, max) {
		t.Fatal("different hashes produced identical jitter (suspicious)")
	}
}
