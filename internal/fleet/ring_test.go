package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func fakeHash(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("cell-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingDeterministicAndStable verifies the two properties routing relies
// on: two independently built rings with the same worker set route every
// hash identically, and removing one worker only moves the hashes that
// worker owned.
func TestRingDeterministicAndStable(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		// Insertion order must not matter.
		for _, w := range []string{"w2", "w1", "w3"} {
			r.Add(w)
		}
		return r
	}
	a, b := build(), build()
	const n = 200
	owners := make([]string, n)
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		wa, ok := a.Lookup(fakeHash(i), nil)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		wb, _ := b.Lookup(fakeHash(i), nil)
		if wa != wb {
			t.Fatalf("hash %d routed to %s on ring a but %s on ring b", i, wa, wb)
		}
		owners[i] = wa
		counts[wa]++
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if counts[w] == 0 {
			t.Fatalf("worker %s owns no hashes (spread %v)", w, counts)
		}
	}

	// Kill w2: only its hashes move; survivors keep theirs.
	a.Remove("w2")
	for i := 0; i < n; i++ {
		w, ok := a.Lookup(fakeHash(i), nil)
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if owners[i] != "w2" && w != owners[i] {
			t.Fatalf("hash %d moved from %s to %s though its owner survived", i, owners[i], w)
		}
		if owners[i] == "w2" && w == "w2" {
			t.Fatalf("hash %d still routed to removed worker", i)
		}
	}
}

// TestRingEligibility walks clockwise past ineligible workers and reports
// failure when nobody qualifies.
func TestRingEligibility(t *testing.T) {
	r := NewRing(8)
	r.Add("w1")
	r.Add("w2")
	h := fakeHash(0)
	primary, _ := r.Lookup(h, nil)
	other, ok := r.Lookup(h, func(w string) bool { return w != primary })
	if !ok || other == primary {
		t.Fatalf("fallback lookup = (%s, %v), want the other worker", other, ok)
	}
	if _, ok := r.Lookup(h, func(string) bool { return false }); ok {
		t.Fatal("lookup with no eligible workers reported ok")
	}
	if _, ok := NewRing(0).Lookup(h, nil); ok {
		t.Fatal("lookup on empty ring reported ok")
	}
}
