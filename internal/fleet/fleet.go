// Package fleet promotes the single-process serving daemon to a
// fault-tolerant fleet: a coordinator (cmd/coscale-fleet) registers
// coscale-serve workers by heartbeat TTL lease, shards sweep cells across
// them by consistent hashing over the existing canonical sha256 request
// hash, and hands out work as leases that are reclaimed and retried — with
// exponential backoff, deterministic jitter and a per-job attempt cap —
// when a worker dies, times out, or returns a transport error.
//
// Jobs and their committed results flow through a crash-safe append-only
// JSON-lines journal (fsync on commit, torn-tail recovery on replay), so a
// coordinator restart resumes in-flight sweeps without recomputing finished
// scenarios. Degraded modes are explicit: zero live workers sheds new
// sweeps with 503/Retry-After, a shrunken fleet rebalances outstanding
// leases onto the survivors, and partial sweep results are queryable while
// the remainder retries.
//
// The PR-3 fault philosophy extends to the network: ChaosPlan derives every
// injection decision (connection refusal, response drop, latency spike,
// mid-stream cut, heartbeat loss) as a pure splitmix64 function of
// (seed, event key), so a chaos run is bit-replayable regardless of
// goroutine interleaving. See DESIGN.md §12.
package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"coscale/internal/server"
)

// JobSpec is one unit of leased work: a single sweep cell, executed on a
// worker via POST /v1/lease/execute. Hash is the canonical simulate hash of
// the cell — the routing key on the ring and the worker-side dedup/cache
// key, so a retried job that already executed anywhere is served from cache
// rather than recomputed.
type JobSpec struct {
	ID       string                 `json:"id"`
	Hash     string                 `json:"hash"`
	Attempt  int                    `json:"attempt"`
	Simulate server.SimulateRequest `json:"simulate"`
}

// JobResult is a worker's committed answer to a JobSpec.
type JobResult struct {
	ID       string          `json:"id"`
	Hash     string          `json:"hash"`
	WorkerID string          `json:"worker_id,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Result   json.RawMessage `json:"result"`
}

// Job states, the lease state machine: pending → leased → done, with
// leased → pending on a failed attempt (until the attempt cap) and
// pending/leased → failed at the cap.
const (
	JobPending = "pending"
	JobLeased  = "leased"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is the coordinator's record of one sweep cell. The journal is the
// source of truth for Attempts, State and Result; scheduling fields
// (NotBefore, Worker) are reconstructed in memory.
type Job struct {
	ID      string
	SweepID string
	Index   int // cell index within the sweep, the response row order
	Hash    string
	Cell    server.SimulateRequest

	State     string
	Attempts  int       // lease records written so far
	Worker    string    // current lessee while leased
	NotBefore time.Time // earliest next dispatch (backoff), in-memory only
	Result    json.RawMessage
	Err       string
}

// Sweep groups the jobs of one submitted sweep request.
type Sweep struct {
	ID   string
	Req  server.SweepRequest
	Jobs []*Job // cell order
}

// done/failed/pending tallies for status rendering.
func (s *Sweep) counts() (done, failed, leased int) {
	for _, j := range s.Jobs {
		switch j.State {
		case JobDone:
			done++
		case JobFailed:
			failed++
		case JobLeased:
			leased++
		}
	}
	return
}

// State reports the sweep's aggregate state: "done" when every cell
// committed, "failed" when any cell exhausted its attempts, else "running".
func (s *Sweep) State() string {
	done, failed, _ := s.counts()
	switch {
	case failed > 0:
		return "failed"
	case done == len(s.Jobs):
		return "done"
	}
	return "running"
}

// Backoff returns the delay before attempt n (1-based: the delay scheduled
// after the n-th attempt failed) of the job identified by hash:
// exponential from base with a deterministic jitter in [0, base) drawn by
// splitmix64 from (hash, n), capped at max. A pure function, so replay and
// the lint's determinism discipline hold by construction.
func Backoff(hash string, n int, base, max time.Duration) time.Duration {
	if n < 1 {
		n = 1
	}
	d := base << uint(n-1)
	if d > max || d <= 0 { // <=0: shift overflow
		d = max
	}
	j := time.Duration(jitterFrac(hashKey("backoff", hash, uint64(n))) * float64(base))
	if d+j > max {
		return max
	}
	return d + j
}

// fmtJobID builds the canonical job ID for a sweep cell.
func fmtJobID(sweepID string, index int) string {
	return fmt.Sprintf("%s/%d", sweepID, index)
}
