package policy

import (
	"math"
	"strconv"
	"sync/atomic"

	"coscale/internal/cache"
	"coscale/internal/memsys"
)

// PlatformTables are the observation-independent, platform-derived columns
// candidate evaluation reads on every decision: the step-indexed Hz/Volts
// tables of both frequency ladders and the per-step memory queueing models.
// They depend only on a Config's ladders and memory parameters — never on an
// epoch's observation — so one build serves every evaluator on an identical
// platform. All fields are written once by BuildPlatformTables (the model
// cache eagerly, via Prebuild) and read-only afterwards, which is what makes
// a shared instance safe under coscale-serve's concurrent workers.
//
// The per-epoch prediction tables proper (perf.StepTable, power.CoreTable)
// stay per-evaluator: their columns are functions of the epoch's counter
// statistics and instruction mixes, not of the platform.
type PlatformTables struct {
	CoreHz []float64 // CoreLadder Hz per step
	CoreV  []float64 // CoreLadder Volts per step
	MemHz  []float64 // MemLadder Hz per step
	MemV   []float64 // MemLadder Volts per step

	Models memsys.ModelCache // per-step memory queueing models, prebuilt
}

// BuildPlatformTables derives the platform tables from cfg's ladders and
// memory parameters. cfg must be validated.
func BuildPlatformTables(cfg Config) *PlatformTables {
	cl, ml := cfg.CoreLadder, cfg.MemLadder
	cs, ms := cl.Steps(), ml.Steps()
	// One build per distinct platform, shared across evaluators and cached
	// process-wide — allocation here is construction, not steady state.
	p := &PlatformTables{
		CoreHz: make([]float64, cs), //hot:alloc-ok one build per platform, memoized by TableCache
		CoreV:  make([]float64, cs), //hot:alloc-ok one build per platform, memoized by TableCache
		MemHz:  make([]float64, ms), //hot:alloc-ok one build per platform, memoized by TableCache
		MemV:   make([]float64, ms), //hot:alloc-ok one build per platform, memoized by TableCache
	}
	for s := 0; s < cs; s++ {
		pt := cl.Point(s)
		p.CoreHz[s] = pt.Hz
		p.CoreV[s] = pt.Volts
	}
	for s := 0; s < ms; s++ {
		pt := ml.Point(s)
		p.MemHz[s] = pt.Hz
		p.MemV[s] = pt.Volts
	}
	p.Models.Reset(cfg.Mem, p.MemHz)
	p.Models.Prebuild()
	return p
}

// TableCache memoizes PlatformTables per platform, so a process running many
// evaluators over identical platforms — coscale-serve's worker pool, a
// batched DecideAll over sibling engines — builds each platform's tables
// once instead of once per evaluator. Keys are canonical value strings of
// the ladder points and memory parameters (not pointer identities), so two
// configs that describe the same platform share one build even when their
// ladders were constructed separately. Concurrent Gets deduplicate
// singleflight-style. The zero value is ready to use.
type TableCache struct {
	flight cache.Flight[string, *PlatformTables]

	builds atomic.Int64 // platform builds actually executed
	hits   atomic.Int64 // Gets served from an existing build
}

// Get returns the shared tables for cfg's platform, building them at most
// once per distinct platform across all goroutines.
func (tc *TableCache) Get(cfg Config) *PlatformTables {
	built := false
	p, _ := tc.flight.Do(platformKey(cfg), func() (*PlatformTables, error) {
		built = true
		tc.builds.Add(1)
		return BuildPlatformTables(cfg), nil
	})
	if !built {
		tc.hits.Add(1)
	}
	return p
}

// Stats reports how many platform builds the cache executed and how many
// Gets it served from an existing build (the /metrics counters).
func (tc *TableCache) Stats() (builds, hits int64) {
	return tc.builds.Load(), tc.hits.Load()
}

// platformKey renders the platform-defining inputs — every ladder point and
// the memory parameters — as a canonical string. Floats are keyed by their
// exact bit patterns: two platforms share tables only when every derived
// value would be bit-identical.
func platformKey(cfg Config) string {
	// Keyed lookups run only when an evaluator's platform actually changed
	// (ensurePlatform's identity guard skips them per-decision), so the key
	// buffer is off the steady-state path.
	buf := make([]byte, 0, 512) //hot:alloc-ok runs only on evaluator platform change, not per decision
	appendF := func(v float64) {
		buf = strconv.AppendUint(buf, math.Float64bits(v), 16)
		buf = append(buf, ';')
	}
	cl, ml := cfg.CoreLadder, cfg.MemLadder
	buf = append(buf, 'c')
	for s := 0; s < cl.Steps(); s++ {
		pt := cl.Point(s)
		appendF(pt.Hz)
		appendF(pt.Volts)
	}
	buf = append(buf, 'm')
	for s := 0; s < ml.Steps(); s++ {
		pt := ml.Point(s)
		appendF(pt.Hz)
		appendF(pt.Volts)
	}
	buf = append(buf, 'p')
	buf = strconv.AppendInt(buf, int64(cfg.Mem.Channels), 10)
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(cfg.Mem.BanksPerChannel), 10)
	buf = append(buf, ';')
	appendF(cfg.Mem.TRCDNs)
	appendF(cfg.Mem.TCLNs)
	appendF(cfg.Mem.TRPNs)
	appendF(cfg.Mem.BurstCycles)
	appendF(cfg.Mem.MCCycles)
	appendF(cfg.Mem.MaxUtil)
	return string(buf)
}
