package policy

import (
	"math"
	"testing"
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// must unwraps a constructor's (value, error) pair for test setup; a
// non-nil error is a broken fixture, reported by panicking (Go forbids
// f(t, g()) with a multi-valued g, so the helper cannot also take t).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func testCfg(n int) Config {
	return Config{
		NCores:     n,
		CoreLadder: freq.DefaultCoreLadder(),
		MemLadder:  freq.DefaultMemLadder(),
		Mem:        memsys.DefaultParams(),
		Power:      power.DefaultSystem(n),
		Gamma:      0.10,
		EpochLen:   5 * time.Millisecond,
	}
}

// synthObs builds a self-consistent observation for n identical cores.
func synthObs(cfg Config, stats perf.CoreStats) Observation {
	sv := perf.NewSolver(cfg.Mem)
	all := make([]perf.CoreStats, cfg.NCores)
	for i := range all {
		all[i] = stats
	}
	res := sv.SolveUniform(all, cfg.CoreLadder.MaxHz(), cfg.MemLadder.MaxHz())
	obs := Observation{
		Window:     300e-6,
		CoreSteps:  ZeroSteps(cfg.NCores),
		MemStep:    0,
		Cores:      make([]CoreObs, cfg.NCores),
		MemRate:    res.MemRate,
		MemLatency: res.Mem.Latency,
		UtilBus:    res.Mem.UtilBus,
		BusyFrac:   math.Min(1, res.Mem.UtilBank*8),
	}
	for i := range obs.Cores {
		obs.Cores[i] = CoreObs{
			Instructions: uint64(300e-6 / res.TPI[i]),
			Stats:        stats,
			L2PerInstr:   stats.Alpha,
			Mix:          trace.InstrMix{ALU: 0.3, FPU: 0.2, Branch: 0.1, LoadStore: 0.3},
			IPS:          1 / res.TPI[i],
		}
	}
	return obs
}

func computeStats() perf.CoreStats {
	return perf.CoreStats{CPIBase: 1.1, Alpha: 0.003, StallL2: 7.5e-9, Beta: 0.0003,
		MemPerInstr: 0.0005, MLP: 1}
}

func memoryStats() perf.CoreStats {
	return perf.CoreStats{CPIBase: 1.4, Alpha: 0.03, StallL2: 7.5e-9, Beta: 0.017,
		MemPerInstr: 0.022, MLP: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg(16).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg(16)
	bad.NCores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = testCfg(16)
	bad.CoreLadder = nil
	if bad.Validate() == nil {
		t.Error("nil ladder accepted")
	}
	bad = testCfg(16)
	bad.Gamma = -1
	if bad.Validate() == nil {
		t.Error("negative gamma accepted")
	}
	bad = testCfg(16)
	bad.EpochLen = 0
	if bad.Validate() == nil {
		t.Error("zero epoch accepted")
	}
}

func TestEvaluatorBaseline(t *testing.T) {
	cfg := testCfg(4)
	ev := NewEvaluator(cfg, synthObs(cfg, memoryStats()))
	b := ev.Baseline()
	if b.SER != 1 || b.MaxSlow != 1 {
		t.Errorf("baseline SER=%g MaxSlow=%g, want 1,1", b.SER, b.MaxSlow)
	}
	for _, s := range b.Slowdown {
		if s != 1 {
			t.Errorf("baseline slowdown %g, want 1", s)
		}
	}
}

func TestEvaluatorSlowdownMonotonic(t *testing.T) {
	cfg := testCfg(4)
	ev := NewEvaluator(cfg, synthObs(cfg, memoryStats()))
	prev := 0.0
	for s := 0; s < cfg.CoreLadder.Steps(); s++ {
		steps := []int{s, s, s, s}
		e := ev.Evaluate(steps, 0)
		if e.MaxSlow < prev {
			t.Errorf("slowdown decreased at step %d", s)
		}
		prev = e.MaxSlow
	}
}

func TestEvaluatorPowerDropsWithFrequency(t *testing.T) {
	cfg := testCfg(4)
	ev := NewEvaluator(cfg, synthObs(cfg, computeStats()))
	high := ev.Evaluate(ZeroSteps(4), 0)
	low := ev.Evaluate([]int{9, 9, 9, 9}, 9)
	if low.Power.Total >= high.Power.Total {
		t.Errorf("power did not drop: %g >= %g", low.Power.Total, high.Power.Total)
	}
}

func TestEvaluatorSERBalance(t *testing.T) {
	// For a compute-bound workload, scaling memory to minimum should give
	// SER < 1 (saves energy at ~zero slowdown), while scaling cores to
	// minimum should give SER well above the memory-only option.
	cfg := testCfg(4)
	ev := NewEvaluator(cfg, synthObs(cfg, computeStats()))
	memOnly := ev.Evaluate(ZeroSteps(4), 9)
	coreOnly := ev.Evaluate([]int{9, 9, 9, 9}, 0)
	if memOnly.SER >= 1 {
		t.Errorf("memory-only SER %g should be < 1 for compute workload", memOnly.SER)
	}
	if memOnly.MaxSlow > 1.04 {
		t.Errorf("memory-only slowdown %g should be tiny for compute workload", memOnly.MaxSlow)
	}
	if coreOnly.MaxSlow < 1.5 {
		t.Errorf("core-to-min slowdown %g should be large for compute workload", coreOnly.MaxSlow)
	}
}

func TestMaxSlowdowns(t *testing.T) {
	limits := MaxSlowdowns([]float64{0, 2.5e-3, -2.5e-3, 10e-3}, 5e-3, 0.10)
	if math.Abs(limits[0]-1.10) > 1e-9 {
		t.Errorf("zero slack limit = %g, want 1.10", limits[0])
	}
	// Positive slack: can slow down more. 5ms*1.1/(5-2.5)ms = 2.2.
	if math.Abs(limits[1]-2.2) > 1e-9 {
		t.Errorf("positive slack limit = %g, want 2.2", limits[1])
	}
	// Negative slack: must run faster than the bound; 5*1.1/7.5 = 0.733,
	// clamped to 1 (max frequency is the fastest we can go).
	if limits[2] != 1 {
		t.Errorf("negative slack limit = %g, want clamp to 1", limits[2])
	}
	// Slack >= epoch: unconstrained.
	if !math.IsInf(limits[3], 1) {
		t.Errorf("huge slack limit = %g, want +Inf", limits[3])
	}
}

func TestConfigLimitsAppliesReserve(t *testing.T) {
	cfg := testCfg(4)
	cfg.Reserve = 1e-3
	with := cfg.Limits([]float64{0})
	cfg.Reserve = 0
	without := cfg.Limits([]float64{0})
	if with[0] >= without[0] {
		t.Errorf("reserve did not tighten the limit: %g >= %g", with[0], without[0])
	}
}

func TestWithinBound(t *testing.T) {
	e := Eval{Slowdown: []float64{1.05, 1.10}}
	if !WithinBound(e, []float64{1.10, 1.10}) {
		t.Error("within-bound eval rejected")
	}
	if WithinBound(e, []float64{1.04, 1.10}) {
		t.Error("violating eval accepted")
	}
}

func TestDecisionClone(t *testing.T) {
	d := Decision{CoreSteps: []int{1, 2, 3}, MemStep: 4}
	c := d.Clone()
	c.CoreSteps[0] = 9
	if d.CoreSteps[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMemScaleLeavesCoresAlone(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewMemScale(cfg))
	if p.Name() != "MemScale" {
		t.Errorf("Name() = %s", p.Name())
	}
	obs := synthObs(cfg, computeStats())
	d := p.Decide(obs)
	for i, s := range d.CoreSteps {
		if s != 0 {
			t.Errorf("MemScale moved core %d to step %d", i, s)
		}
	}
	if d.MemStep == 0 {
		t.Error("MemScale did not scale memory for a compute-bound workload")
	}
}

func TestMemScaleKeepsMemoryHighUnderTraffic(t *testing.T) {
	cfg := testCfg(16)
	p := must(NewMemScale(cfg))
	d := p.Decide(synthObs(cfg, memoryStats()))
	if d.MemStep > 3 {
		t.Errorf("MemScale scaled a memory-bound workload to step %d", d.MemStep)
	}
}

func TestCPUOnlyLeavesMemoryAlone(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewCPUOnly(cfg))
	if p.Name() != "CPUOnly" {
		t.Errorf("Name() = %s", p.Name())
	}
	obs := synthObs(cfg, memoryStats())
	d := p.Decide(obs)
	if d.MemStep != obs.MemStep {
		t.Error("CPUOnly changed the memory step")
	}
	moved := false
	for _, s := range d.CoreSteps {
		if s > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("CPUOnly did not scale any core for a memory-bound workload")
	}
}

func TestCPUOnlyRespectsBoundPrediction(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewCPUOnly(cfg))
	obs := synthObs(cfg, computeStats())
	d := p.Decide(obs)
	ev := NewEvaluator(cfg, obs)
	e := ev.Evaluate(d.CoreSteps, d.MemStep)
	if e.MaxSlow > 1.10+1e-6 {
		t.Errorf("CPUOnly predicted slowdown %g exceeds bound", e.MaxSlow)
	}
}

func TestUncoordinatedDoubleSpends(t *testing.T) {
	// Both managers consume a full γ against their own references, so the
	// joint predicted slowdown should exceed 1+γ for a balanced workload.
	cfg := testCfg(8)
	p := must(NewUncoordinated(cfg))
	if p.Name() != "Uncoordinated" {
		t.Errorf("Name() = %s", p.Name())
	}
	stats := perf.CoreStats{CPIBase: 1.3, Alpha: 0.008, StallL2: 7.5e-9, Beta: 0.002,
		MemPerInstr: 0.004, MLP: 1}
	obs := synthObs(cfg, stats)
	d := p.Decide(obs)
	ev := NewEvaluator(cfg, obs)
	e := ev.Evaluate(d.CoreSteps, d.MemStep)
	if e.MaxSlow <= 1.10 {
		t.Errorf("Uncoordinated joint slowdown %g should exceed the 1.10 bound", e.MaxSlow)
	}
	p.Observe(obs) // must be a no-op; just exercise it
}

func TestSemiCoordinatedSharedSlackHolds(t *testing.T) {
	cfg := testCfg(8)
	p := must(NewSemiCoordinated(cfg))
	stats := perf.CoreStats{CPIBase: 1.3, Alpha: 0.008, StallL2: 7.5e-9, Beta: 0.002,
		MemPerInstr: 0.004, MLP: 1}
	obs := synthObs(cfg, stats)
	// First decision may overshoot (that is the pathology)...
	d1 := p.Decide(obs)
	ev := NewEvaluator(cfg, obs)
	e1 := ev.Evaluate(d1.CoreSteps, d1.MemStep)
	// ...but after observing a slow epoch, the shared slack must force a
	// faster choice.
	slowEpoch := obs
	slowEpoch.Window = cfg.EpochLen.Seconds() * 1.25 // ran 25% slow
	for i := range slowEpoch.Cores {
		slowEpoch.Cores[i].Instructions = uint64(float64(slowEpoch.Cores[i].Instructions) * 16)
	}
	p.Observe(slowEpoch)
	d2 := p.Decide(obs)
	e2 := ev.Evaluate(d2.CoreSteps, d2.MemStep)
	if e2.MaxSlow >= e1.MaxSlow {
		t.Errorf("after overshoot, Semi should choose faster settings: %g >= %g", e2.MaxSlow, e1.MaxSlow)
	}
}

func TestSemiOutOfPhaseAlternates(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewSemiCoordinated(cfg))
	p.OutOfPhase = true
	if p.Name() != "Semi-coordinated-OoP" {
		t.Errorf("Name() = %s", p.Name())
	}
	obs := synthObs(cfg, computeStats())
	d1 := p.Decide(obs) // epoch 1: CPU manager only
	if d1.MemStep != obs.MemStep {
		t.Error("epoch 1 should not move memory")
	}
	d2 := p.Decide(obs) // epoch 2: memory manager only
	for i := range d2.CoreSteps {
		if d2.CoreSteps[i] != obs.CoreSteps[i] {
			t.Error("epoch 2 should not move cores")
		}
	}
}

func TestOfflineWantsOracle(t *testing.T) {
	cfg := testCfg(4)
	p := must(NewOffline(cfg))
	if !p.WantsOracle() {
		t.Error("Offline must want oracle observations")
	}
	if p.Name() != "Offline" {
		t.Errorf("Name() = %s", p.Name())
	}
}

func TestOfflineBeatsOrMatchesSingleKnob(t *testing.T) {
	cfg := testCfg(8)
	stats := perf.CoreStats{CPIBase: 1.3, Alpha: 0.01, StallL2: 7.5e-9, Beta: 0.003,
		MemPerInstr: 0.006, MLP: 1}
	obs := synthObs(cfg, stats)
	ev := NewEvaluator(cfg, obs)

	off := must(NewOffline(cfg)).Decide(obs)
	offEval := ev.Evaluate(off.CoreSteps, off.MemStep)
	if offEval.MaxSlow > 1.10+1e-6 {
		t.Fatalf("Offline predicted slowdown %g violates bound", offEval.MaxSlow)
	}

	mem := must(NewMemScale(cfg)).Decide(obs)
	memEval := ev.Evaluate(mem.CoreSteps, mem.MemStep)
	cpu := must(NewCPUOnly(cfg)).Decide(obs)
	cpuEval := ev.Evaluate(cpu.CoreSteps, cpu.MemStep)

	if offEval.SER > memEval.SER+1e-9 || offEval.SER > cpuEval.SER+1e-9 {
		t.Errorf("Offline SER %.4f worse than MemScale %.4f or CPUOnly %.4f",
			offEval.SER, memEval.SER, cpuEval.SER)
	}
}

func TestTMaxForEpoch(t *testing.T) {
	cfg := testCfg(4)
	obs := synthObs(cfg, computeStats())
	obs.Window = 5e-3
	for i := range obs.Cores {
		obs.Cores[i].Instructions = uint64(float64(obs.Cores[i].Instructions) * (5e-3 / 300e-6))
	}
	tMax := TMaxForEpoch(cfg, obs, ZeroSteps(4), 0)
	for i, tm := range tMax {
		if tm <= 0 {
			t.Errorf("tMax[%d] = %g", i, tm)
		}
		// At max frequencies tMax should be close to the window (the
		// observation was generated at max settings).
		if tm > 6e-3 || tm < 3e-3 {
			t.Errorf("tMax[%d] = %g, want near 5ms", i, tm)
		}
	}
}

func TestSlackBookReserve(t *testing.T) {
	b := NewSlackBook(2, 0.10, 1e-3)
	ids := []int{0, 1}
	b.RecordEpochFor(ids, []float64{5e-3, 5e-3}, 5e-3)
	// Slack = 5ms*1.1 - (5ms + 1ms reserve) = -0.5ms.
	for i, s := range b.AvailableFor(ids) {
		if math.Abs(s-(-0.5e-3)) > 1e-12 {
			t.Errorf("slack[%d] = %g, want -5e-4", i, s)
		}
	}
}

func TestSlackBookFollowsThreads(t *testing.T) {
	// A thread's slack must travel with it across cores: record a deficit
	// for thread 7 on core 0, then read it back from core 1.
	b := NewSlackBook(2, 0.10, 0)
	b.RecordEpochFor([]int{7, 8}, []float64{5e-3, 5e-3}, 7e-3) // both 40% slow
	moved := b.AvailableFor([]int{8, 7})                       // threads swapped cores
	if moved[0] != moved[1] {
		t.Fatalf("symmetric history should give equal slack: %v", moved)
	}
	if moved[0] >= 0 {
		t.Errorf("deficit lost in migration: %g", moved[0])
	}
	// A brand-new thread starts with zero slack.
	if got := b.AvailableFor([]int{99})[0]; got != 0 {
		t.Errorf("new thread slack = %g, want 0", got)
	}
}

func TestObservationCoreThreadsDefault(t *testing.T) {
	obs := Observation{Cores: make([]CoreObs, 3)}
	if got := obs.CoreThreads(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("identity mapping wrong: %v", got)
	}
	obs.ThreadIDs = []int{5, 4, 3}
	if got := obs.CoreThreads(); got[0] != 5 || got[2] != 3 {
		t.Errorf("explicit mapping ignored: %v", got)
	}
}
