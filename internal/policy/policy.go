// Package policy defines the controller interface shared by CoScale and the
// five comparison policies of §3.2, the counter-derived Observation the OS
// hands a controller each epoch, and the candidate-evaluation machinery
// (joint performance prediction, power prediction, SER) all controllers are
// built from.
//
// The policies themselves live here (MemScale, CPUOnly, Uncoordinated,
// Semi-coordinated, Offline) and in internal/core (CoScale, the paper's
// contribution).
package policy

import (
	"fmt"
	"math"
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// Config is the static system description every controller shares.
type Config struct {
	NCores     int
	CoreLadder *freq.Ladder
	MemLadder  *freq.Ladder
	Mem        memsys.Params
	Power      power.System

	// Gamma is the allowed per-program slowdown (0.10 = 10%).
	Gamma float64
	// EpochLen is the control period (5 ms in the paper).
	EpochLen time.Duration
	// Reserve is slack withheld each epoch (seconds) to cover the
	// unmodelled DVFS transition dead time, keeping the bound from being
	// grazed by overheads the performance model does not see. Defaults
	// (via sim.Config) to roughly one core plus one memory transition.
	Reserve float64
}

// Limits computes the per-core slowdown limits for the next epoch from
// accumulated slack, after withholding the transition reserve.
func (c Config) Limits(slack []float64) []float64 {
	adj := make([]float64, len(slack))
	for i, s := range slack {
		adj[i] = s - c.Reserve
	}
	return MaxSlowdowns(adj, c.EpochLen.Seconds(), c.Gamma)
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.NCores <= 0 {
		return fmt.Errorf("policy: NCores must be positive")
	}
	if c.CoreLadder == nil || c.MemLadder == nil {
		return fmt.Errorf("policy: ladders must be set")
	}
	if c.Gamma < 0 {
		return fmt.Errorf("policy: negative Gamma")
	}
	if c.EpochLen <= 0 {
		return fmt.Errorf("policy: EpochLen must be positive")
	}
	return nil
}

// CoreObs is one core's counter-derived profile for a window.
type CoreObs struct {
	Instructions uint64
	// Stats are the per-instruction model inputs derived from the
	// counters (CPIBase in cycles; Alpha/Beta fractions; StallL2 in
	// seconds; MemPerInstr in 64 B requests; MLP dimensionless).
	Stats perf.CoreStats
	// L2PerInstr is L2 accesses per instruction (TLA/TIC), for L2 power.
	L2PerInstr float64
	// Mix is the activity-counter instruction breakdown for core power.
	Mix trace.InstrMix
	// IPS is the measured instruction rate over the window.
	IPS float64
}

// Observation is what a controller sees after a profiling window: per-core
// profiles plus memory-subsystem aggregates, all derived from the §3.3
// performance counters, and the settings that were in effect.
type Observation struct {
	Window    float64 // seconds of wall time profiled
	CoreSteps []int   // settings in effect while profiling
	MemStep   int

	// ThreadIDs identifies the software thread scheduled on each core
	// during the window, for per-thread slack accounting (§3.3). Nil
	// means thread i runs on core i.
	ThreadIDs []int

	Cores []CoreObs

	MemRate    float64 // aggregate memory requests/s observed
	MemLatency float64 // average request latency observed, seconds
	UtilBus    float64 // observed bus utilization
	BusyFrac   float64 // observed fraction of time ranks were busy (not powered down)
}

// CoreThreads returns the thread-on-core mapping, defaulting to identity.
func (o Observation) CoreThreads() []int {
	if o.ThreadIDs != nil {
		return o.ThreadIDs
	}
	return identity(len(o.Cores))
}

// Decision is a controller's chosen frequency combination.
type Decision struct {
	CoreSteps []int
	MemStep   int
}

// Clone returns a deep copy of the decision.
func (d Decision) Clone() Decision {
	out := Decision{CoreSteps: make([]int, len(d.CoreSteps)), MemStep: d.MemStep}
	copy(out.CoreSteps, d.CoreSteps)
	return out
}

// Policy is an epoch-granularity DVFS controller.
type Policy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Decide chooses the next epoch's frequencies from a profiling-window
	// observation.
	Decide(obs Observation) Decision
	// Observe delivers the whole-epoch observation after the epoch runs,
	// for slack accounting.
	Observe(epoch Observation)
}

// OraclePolicy is implemented by policies (Offline) that must be fed the
// true characteristics of the upcoming epoch rather than the profiling
// window.
type OraclePolicy interface {
	Policy
	// WantsOracle reports that Decide expects oracle observations.
	WantsOracle() bool
}

// Evaluator predicts performance, power and SER for candidate frequency
// combinations against a fixed observation. It is rebuilt once per decision.
type Evaluator struct {
	Cfg    Config
	Solver *perf.Solver

	stats      []perf.CoreStats
	obs        Observation
	busyPerReq float64 // measured rank-busy time per request, for power prediction

	baseline Eval // all components at maximum frequency
}

// Eval is the predicted outcome of one frequency combination.
type Eval struct {
	TPI      []float64 // predicted seconds/instruction per core
	Slowdown []float64 // TPI ratio vs the all-max baseline (>= ~1)
	MaxSlow  float64   // worst per-core slowdown (the Eq. 2 time factor)
	Power    power.Split
	SER      float64
	MemLoad  memsys.Load
}

// NewEvaluator builds an evaluator for obs using the counter-derived
// per-core statistics.
func NewEvaluator(cfg Config, obs Observation) *Evaluator {
	ev := &Evaluator{Cfg: cfg, Solver: perf.NewSolver(cfg.Mem), obs: obs}
	// Controller-side predictions need far less precision than ground
	// truth; a looser fixed-point tolerance keeps the §3.1 search cheap.
	ev.Solver.Tol = 1e-6
	ev.Solver.MaxIter = 25
	ev.stats = make([]perf.CoreStats, len(obs.Cores))
	for i, c := range obs.Cores {
		ev.stats[i] = c.Stats
	}
	if obs.MemRate > 0 {
		ev.busyPerReq = obs.BusyFrac / obs.MemRate
	}
	maxSteps := make([]int, len(obs.Cores))
	ev.baseline = ev.evaluate(maxSteps, 0)
	ev.baseline.SER = 1
	return ev
}

// Baseline returns the all-max evaluation (the SER denominator).
func (ev *Evaluator) Baseline() Eval { return ev.baseline }

// Stats returns the counter-derived per-core statistics in use.
func (ev *Evaluator) Stats() []perf.CoreStats { return ev.stats }

// ObsCore returns core i's observation.
func (ev *Evaluator) ObsCore(i int) CoreObs { return ev.obs.Cores[i] }

// Obs returns the observation the evaluator was built from.
func (ev *Evaluator) Obs() Observation { return ev.obs }

// Evaluate predicts the outcome of running with the given per-core and
// memory steps.
func (ev *Evaluator) Evaluate(coreSteps []int, memStep int) Eval {
	e := ev.evaluate(coreSteps, memStep)
	if ev.baseline.MaxSlow > 0 {
		e.SER = power.SER(e.MaxSlow, e.Power.Total, ev.baseline.MaxSlow, ev.baseline.Power.Total)
	}
	return e
}

// EvaluateFixedLatency predicts per-core TPI with the memory system pinned
// at a fixed latency (the Uncoordinated/Semi-coordinated CPU managers'
// assumption that "memory behaviour will stay the same"). Power is still
// evaluated fully.
func (ev *Evaluator) EvaluateFixedLatency(coreSteps []int, memStep int, latency float64) Eval {
	hz := ev.coreHz(coreSteps)
	e := Eval{TPI: make([]float64, len(ev.stats)), Slowdown: make([]float64, len(ev.stats))}
	for i, s := range ev.stats {
		e.TPI[i] = s.TPI(hz[i], latency)
	}
	e.MemLoad = memsys.Load{Latency: latency, XiBus: 1, XiBank: 1, UtilBus: ev.obs.UtilBus}
	ev.finish(&e, hz, memStep, e.memRate(ev.stats))
	return e
}

func (e *Eval) memRate(stats []perf.CoreStats) float64 {
	rate := 0.0
	for i, tpi := range e.TPI {
		if tpi > 0 && !math.IsInf(tpi, 0) {
			rate += stats[i].MemPerInstr / tpi
		}
	}
	return rate
}

func (ev *Evaluator) coreHz(coreSteps []int) []float64 {
	hz := make([]float64, len(coreSteps))
	for i, s := range coreSteps {
		hz[i] = ev.Cfg.CoreLadder.Hz(s)
	}
	return hz
}

func (ev *Evaluator) evaluate(coreSteps []int, memStep int) Eval {
	hz := ev.coreHz(coreSteps)
	busHz := ev.Cfg.MemLadder.Hz(memStep)
	res := ev.Solver.Solve(ev.stats, hz, busHz)
	e := Eval{TPI: res.TPI, Slowdown: make([]float64, len(res.TPI)), MemLoad: res.Mem}
	ev.finish(&e, hz, memStep, res.MemRate)
	return e
}

// finish fills slowdowns and predicted power for an Eval whose TPI and
// MemLoad are already set.
func (ev *Evaluator) finish(e *Eval, hz []float64, memStep int, memRate float64) {
	for i := range e.Slowdown {
		if len(ev.baseline.TPI) == len(e.TPI) && ev.baseline.TPI[i] > 0 {
			e.Slowdown[i] = e.TPI[i] / ev.baseline.TPI[i]
		} else {
			e.Slowdown[i] = 1
		}
		if e.Slowdown[i] > e.MaxSlow {
			e.MaxSlow = e.Slowdown[i]
		}
	}
	if e.MaxSlow <= 0 {
		e.MaxSlow = 1
	}

	cores := make([]power.CoreOp, len(e.TPI))
	l2Rate := 0.0
	for i, tpi := range e.TPI {
		ips := 0.0
		if tpi > 0 && !math.IsInf(tpi, 0) {
			ips = 1 / tpi
		}
		cores[i] = power.CoreOp{
			Volts: ev.Cfg.CoreLadder.Volts(stepOf(hz[i], ev.Cfg.CoreLadder)),
			Hz:    hz[i],
			IPS:   ips,
			Mix:   ev.obs.Cores[i].Mix,
		}
		l2Rate += ips * ev.obs.Cores[i].L2PerInstr
	}
	busHz := ev.Cfg.MemLadder.Hz(memStep)
	busy := ev.busyPerReq * memRate
	if busy > 1 {
		busy = 1
	}
	// Split traffic into reads and writes in the observed proportion; the
	// energy model treats them symmetrically anyway.
	u := power.MemUsage{
		BusHz:     busHz,
		MCVolts:   ev.Cfg.MemLadder.Volts(memStep),
		ReadRate:  memRate * 0.8,
		WriteRate: memRate * 0.2,
		ActRate:   memRate,
		UtilBus:   e.MemLoad.UtilBus,
		BusyFrac:  busy,
	}
	e.Power = ev.Cfg.Power.Total(cores, l2Rate, u)
}

func stepOf(hz float64, l *freq.Ladder) int { return l.Nearest(hz) }

// MaxSlowdowns converts per-core accumulated slack into the maximum
// per-core slowdown permitted next epoch (§3 performance management): core i
// may run at slowdown r if E ≤ E·(1+γ)/r + slack_i, i.e.
// r ≤ E·(1+γ)/(E − slack_i). A slack at or above the epoch length leaves the
// core unconstrained this epoch (returned as +Inf).
func MaxSlowdowns(slacks []float64, epoch, gamma float64) []float64 {
	out := make([]float64, len(slacks))
	for i, s := range slacks {
		if s >= epoch {
			out[i] = math.Inf(1)
			continue
		}
		r := epoch * (1 + gamma) / (epoch - s)
		if r < 1 {
			r = 1 // never force above-baseline speed; max frequency is the best we can do
		}
		out[i] = r
	}
	return out
}

// WithinBound reports whether an evaluation satisfies every core's slowdown
// limit.
func WithinBound(e Eval, limits []float64) bool {
	for i, s := range e.Slowdown {
		if s > limits[i]*(1+1e-12) {
			return false
		}
	}
	return true
}
