// Package policy defines the controller interface shared by CoScale and the
// five comparison policies of §3.2, the counter-derived Observation the OS
// hands a controller each epoch, and the candidate-evaluation machinery
// (joint performance prediction, power prediction, SER) all controllers are
// built from.
//
// The policies themselves live here (MemScale, CPUOnly, Uncoordinated,
// Semi-coordinated, Offline) and in internal/core (CoScale, the paper's
// contribution).
package policy

import (
	"fmt"
	"math"
	"time"

	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/power"
	"coscale/internal/trace"
)

// Config is the static system description every controller shares.
type Config struct {
	NCores     int
	CoreLadder *freq.Ladder
	MemLadder  *freq.Ladder
	Mem        memsys.Params
	Power      power.System

	// Gamma is the allowed per-program slowdown (0.10 = 10%).
	Gamma float64
	// EpochLen is the control period (5 ms in the paper).
	EpochLen time.Duration
	// Reserve is slack withheld each epoch (seconds) to cover the
	// unmodelled DVFS transition dead time, keeping the bound from being
	// grazed by overheads the performance model does not see. Defaults
	// (via sim.Config) to roughly one core plus one memory transition.
	Reserve float64

	// Tables, when set, is a shared per-platform table cache: evaluators
	// on the table path fetch their platform-derived columns (ladder
	// Hz/Volts tables, per-step memory queueing models) from it instead of
	// rebuilding them, so sibling controllers over one platform — a sweep
	// job's cells, a batched DecideAll — build those tables once per
	// process. Nil keeps the private per-evaluator build; results are
	// bit-identical either way.
	Tables *TableCache
}

// Limits computes the per-core slowdown limits for the next epoch from
// accumulated slack, after withholding the transition reserve.
func (c Config) Limits(slack []float64) []float64 {
	return c.LimitsInto(nil, slack)
}

// LimitsInto is Limits writing into dst, reusing dst's backing array when
// its capacity suffices (dst may alias slack). The allocation-free form
// used by CoScale's decision hot path (see DESIGN.md §7).
//
//hot:path
func (c Config) LimitsInto(dst, slack []float64) []float64 {
	if cap(dst) < len(slack) {
		dst = make([]float64, len(slack)) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	dst = dst[:len(slack)]
	for i, s := range slack {
		dst[i] = s - c.Reserve
	}
	return MaxSlowdownsInto(dst, dst, c.EpochLen.Seconds(), c.Gamma)
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	if c.NCores <= 0 {
		return fmt.Errorf("policy: NCores must be positive")
	}
	if c.CoreLadder == nil || c.MemLadder == nil {
		return fmt.Errorf("policy: ladders must be set")
	}
	if c.Gamma < 0 {
		return fmt.Errorf("policy: negative Gamma")
	}
	if c.EpochLen <= 0 {
		return fmt.Errorf("policy: EpochLen must be positive")
	}
	return nil
}

// CoreObs is one core's counter-derived profile for a window.
type CoreObs struct {
	Instructions uint64
	// Stats are the per-instruction model inputs derived from the
	// counters (CPIBase in cycles; Alpha/Beta fractions; StallL2 in
	// seconds; MemPerInstr in 64 B requests; MLP dimensionless).
	Stats perf.CoreStats
	// L2PerInstr is L2 accesses per instruction (TLA/TIC), for L2 power.
	L2PerInstr float64
	// Mix is the activity-counter instruction breakdown for core power.
	Mix trace.InstrMix
	// IPS is the measured instruction rate over the window.
	IPS float64
}

// Observation is what a controller sees after a profiling window: per-core
// profiles plus memory-subsystem aggregates, all derived from the §3.3
// performance counters, and the settings that were in effect.
//
// The simulation engine reuses an observation's backing slices between
// epochs (DESIGN.md §7): CoreSteps, ThreadIDs and Cores are valid only for
// the duration of the Decide/Observe call. A policy that retains any of
// them must copy (see Clone).
type Observation struct {
	Window    float64 // seconds of wall time profiled
	CoreSteps []int   // settings in effect while profiling
	MemStep   int

	// ThreadIDs identifies the software thread scheduled on each core
	// during the window, for per-thread slack accounting (§3.3). Nil
	// means thread i runs on core i.
	ThreadIDs []int

	Cores []CoreObs

	MemRate    float64 // aggregate memory requests/s observed
	MemLatency float64 // average request latency observed, seconds
	UtilBus    float64 // observed bus utilization
	BusyFrac   float64 // observed fraction of time ranks were busy (not powered down)
}

// Clone returns a deep copy whose slices do not alias the engine's reusable
// observation buffers, for callers that retain observations across epochs.
func (o Observation) Clone() Observation {
	o.CoreSteps = append([]int(nil), o.CoreSteps...)
	o.ThreadIDs = append([]int(nil), o.ThreadIDs...)
	o.Cores = append([]CoreObs(nil), o.Cores...)
	return o
}

// CoreThreads returns the thread-on-core mapping, defaulting to identity.
func (o Observation) CoreThreads() []int {
	if o.ThreadIDs != nil {
		return o.ThreadIDs
	}
	return identity(len(o.Cores))
}

// Decision is a controller's chosen frequency combination.
type Decision struct {
	CoreSteps []int
	MemStep   int
}

// Clone returns a deep copy of the decision.
func (d Decision) Clone() Decision {
	out := Decision{CoreSteps: make([]int, len(d.CoreSteps)), MemStep: d.MemStep}
	copy(out.CoreSteps, d.CoreSteps)
	return out
}

// Policy is an epoch-granularity DVFS controller.
type Policy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Decide chooses the next epoch's frequencies from a profiling-window
	// observation.
	Decide(obs Observation) Decision
	// Observe delivers the whole-epoch observation after the epoch runs,
	// for slack accounting.
	Observe(epoch Observation)
}

// OraclePolicy is implemented by policies (Offline) that must be fed the
// true characteristics of the upcoming epoch rather than the profiling
// window.
type OraclePolicy interface {
	Policy
	// WantsOracle reports that Decide expects oracle observations.
	WantsOracle() bool
}

// Evaluator predicts performance, power and SER for candidate frequency
// combinations against a fixed observation. It is re-pointed at a fresh
// observation once per decision — either rebuilt with NewEvaluator or, on
// hot paths, recycled in place with Reset so its work arrays are reused
// (DESIGN.md §7).
type Evaluator struct {
	Cfg    Config
	Solver *perf.Solver

	// UseTables switches candidate evaluation onto the memoized per-epoch
	// prediction tables (DESIGN.md §10): bit-identical results, but each
	// evaluation's O(cores) model preparation collapses to an incremental
	// gather of the cores whose step changed. Set before the first Reset
	// (CoScale sets it unless core.Options.DisableTables asks otherwise).
	UseTables bool

	stats      []perf.CoreStats
	obs        Observation
	busyPerReq float64 // measured rank-busy time per request, for power prediction

	baseline Eval // all components at maximum frequency

	// Steady-state scratch reused across Evaluate calls.
	solveRes perf.Result
	hz       []float64
	cores    []power.CoreOp
	maxSteps []int
	tmaxEval Eval

	// Memoized per-epoch prediction tables (active when UseTables is set)
	// plus the platform-derived columns they are built over. plat is
	// fetched from Cfg.Tables when set (shared per-platform build) and
	// built privately otherwise; platCore/platMem/platMemP remember the
	// platform it reflects so per-decision Resets skip the rebuild.
	tbl      perf.StepTable
	ptbl     power.CoreTable
	mixes    []trace.InstrMix
	l2pi     []float64 // L2PerInstr per core
	plat     *PlatformTables
	platCore *freq.Ladder
	platMem  *freq.Ladder
	platMemP memsys.Params
}

// Eval is the predicted outcome of one frequency combination.
type Eval struct {
	TPI      []float64 // predicted seconds/instruction per core
	Slowdown []float64 // TPI ratio vs the all-max baseline (>= ~1)
	MaxSlow  float64   // worst per-core slowdown (the Eq. 2 time factor)
	Power    power.Split
	SER      float64
	MemLoad  memsys.Load
}

// NewEvaluator builds an evaluator for obs using the counter-derived
// per-core statistics.
func NewEvaluator(cfg Config, obs Observation) *Evaluator {
	ev := &Evaluator{}
	ev.Reset(cfg, obs)
	return ev
}

// Reset re-points the evaluator at a new observation, recomputing the
// statistics and the all-max baseline while reusing every work array. A
// reset evaluator is indistinguishable from a freshly constructed one.
//
//hot:path
func (ev *Evaluator) Reset(cfg Config, obs Observation) {
	ev.Cfg = cfg
	if ev.Solver == nil {
		ev.Solver = perf.NewSolver(cfg.Mem)
	} else {
		ev.Solver.Mem = cfg.Mem
	}
	// Controller-side predictions need far less precision than ground
	// truth; a looser fixed-point tolerance keeps the §3.1 search cheap.
	ev.Solver.Tol = 1e-6
	ev.Solver.MaxIter = 25
	ev.obs = obs
	n := len(obs.Cores)
	ev.stats = resizeStats(ev.stats, n)
	for i := range obs.Cores {
		ev.stats[i] = obs.Cores[i].Stats
	}
	ev.busyPerReq = 0
	if obs.MemRate > 0 {
		ev.busyPerReq = obs.BusyFrac / obs.MemRate
	}
	ev.maxSteps = perf.ResizeInts(ev.maxSteps, n)
	if ev.UseTables {
		ev.resetTables()
	}
	// Clear the stale baseline so finish() sees no reference to divide by
	// (slowdowns come out exactly 1, as for a brand-new evaluator).
	ev.baseline.TPI = ev.baseline.TPI[:0]
	ev.evaluateInto(&ev.baseline, ev.maxSteps, 0)
	ev.baseline.SER = 1
}

// resetTables re-points the memoized prediction tables at the new epoch:
// the per-core instruction mixes and L2 rates the power path needs, the
// platform-derived ladder/model columns (fetched or rebuilt only when the
// platform changed), and the two per-epoch component tables themselves.
// Every per-epoch column is invalidated; backing arrays are reused.
//
//hot:path
func (ev *Evaluator) resetTables() {
	n := len(ev.obs.Cores)
	ev.mixes = resizeMixes(ev.mixes, n)
	ev.l2pi = perf.GrowFloats(ev.l2pi, n)
	for i := range ev.obs.Cores {
		ev.mixes[i] = ev.obs.Cores[i].Mix
		ev.l2pi[i] = ev.obs.Cores[i].L2PerInstr
	}
	ev.ensurePlatform()
	ev.tbl.Reset(ev.stats, ev.plat.CoreHz)
	ev.ptbl.Reset(ev.Cfg.Power.Core, ev.plat.CoreHz, ev.plat.CoreV, ev.mixes)
}

// ensurePlatform points ev.plat at the tables for Cfg's platform, fetching
// from the shared Cfg.Tables cache when one is wired in and building
// privately otherwise. The platform is re-derived only when it actually
// changed (ladder identity plus memory parameters), so the per-decision
// Reset does no ladder work at all in steady state — and shared-cache mode
// does it once per process per platform.
//
//hot:path
func (ev *Evaluator) ensurePlatform() {
	cfg := &ev.Cfg
	if ev.plat != nil && ev.platCore == cfg.CoreLadder && ev.platMem == cfg.MemLadder &&
		ev.platMemP == cfg.Mem {
		return
	}
	if cfg.Tables != nil {
		ev.plat = cfg.Tables.Get(ev.Cfg)
	} else {
		ev.plat = BuildPlatformTables(ev.Cfg)
	}
	ev.platCore, ev.platMem, ev.platMemP = cfg.CoreLadder, cfg.MemLadder, cfg.Mem
}

// Baseline returns the all-max evaluation (the SER denominator).
func (ev *Evaluator) Baseline() Eval { return ev.baseline }

// BaselineTPI returns the all-max baseline's per-core TPI directly, sparing
// hot-path callers the Eval struct copy a Baseline() call would make.
//
//hot:path
func (ev *Evaluator) BaselineTPI() []float64 { return ev.baseline.TPI }

// Stats returns the counter-derived per-core statistics in use.
func (ev *Evaluator) Stats() []perf.CoreStats { return ev.stats }

// ObsCore returns core i's observation.
func (ev *Evaluator) ObsCore(i int) CoreObs { return ev.obs.Cores[i] }

// Obs returns the observation the evaluator was built from.
func (ev *Evaluator) Obs() Observation { return ev.obs }

// Evaluate predicts the outcome of running with the given per-core and
// memory steps.
func (ev *Evaluator) Evaluate(coreSteps []int, memStep int) Eval {
	var e Eval
	ev.EvaluateInto(&e, coreSteps, memStep)
	return e
}

// EvaluateBaselineInto copies the all-max evaluation into dst, reusing dst's
// buffers. It is bit-identical to EvaluateInto(dst, ZeroSteps(n), 0) — Reset
// already solved that operating point, every slowdown there is exactly 1
// (IEEE x/x for finite positive x), and SER against the baseline itself is
// exactly 1 — but skips the redundant fixed-point solve. The search hot path
// uses it to seed its "current point" Eval (see DESIGN.md §7).
//
//hot:path
func (ev *Evaluator) EvaluateBaselineInto(dst *Eval) {
	n := len(ev.baseline.TPI)
	dst.TPI = perf.ResizeFloats(dst.TPI, n)
	copy(dst.TPI, ev.baseline.TPI)
	dst.Slowdown = perf.ResizeFloats(dst.Slowdown, n)
	for i := range dst.Slowdown {
		dst.Slowdown[i] = 1
	}
	dst.MaxSlow = 1
	dst.Power = ev.baseline.Power
	dst.SER = 1
	dst.MemLoad = ev.baseline.MemLoad
}

// EvaluateInto is Evaluate writing into dst, reusing dst's TPI/Slowdown
// buffers. dst must not be the evaluator's own baseline. The search hot path
// calls this with per-controller scratch Evals (see DESIGN.md §7).
//
//hot:path
func (ev *Evaluator) EvaluateInto(dst *Eval, coreSteps []int, memStep int) {
	ev.evaluateInto(dst, coreSteps, memStep)
	if ev.baseline.MaxSlow > 0 {
		dst.SER = power.SER(dst.MaxSlow, dst.Power.Total, ev.baseline.MaxSlow, ev.baseline.Power.Total)
	}
}

// EvaluateFixedLatency predicts per-core TPI with the memory system pinned
// at a fixed latency (the Uncoordinated/Semi-coordinated CPU managers'
// assumption that "memory behaviour will stay the same"). Power is still
// evaluated fully.
func (ev *Evaluator) EvaluateFixedLatency(coreSteps []int, memStep int, latency float64) Eval {
	hz := ev.coreHz(coreSteps)
	//hot:alloc-ok result escapes: the returned Eval owns its TPI/Slowdown slices
	e := Eval{TPI: make([]float64, len(ev.stats)), Slowdown: make([]float64, len(ev.stats))}
	for i, s := range ev.stats {
		e.TPI[i] = s.TPI(hz[i], latency)
	}
	e.MemLoad = memsys.Load{Latency: latency, XiBus: 1, XiBank: 1, UtilBus: ev.obs.UtilBus}
	ev.finish(&e, coreSteps, hz, memStep, e.memRate(ev.stats))
	return e
}

func (e *Eval) memRate(stats []perf.CoreStats) float64 {
	rate := 0.0
	for i, tpi := range e.TPI {
		if tpi > 0 && !math.IsInf(tpi, 0) {
			rate += stats[i].MemPerInstr / tpi
		}
	}
	return rate
}

// coreHz fills the evaluator's frequency scratch; the returned slice is
// valid until the next coreHz call.
//
//hot:path
func (ev *Evaluator) coreHz(coreSteps []int) []float64 {
	ev.hz = perf.ResizeFloats(ev.hz, len(coreSteps))
	for i, s := range coreSteps {
		ev.hz[i] = ev.Cfg.CoreLadder.Hz(s)
	}
	return ev.hz
}

// evaluateInto runs the joint model and fills dst completely (the solver's
// TPI is copied, not aliased: Evals from one decision — current, candidate,
// baseline — are alive simultaneously and must own their buffers).
//
//hot:path
func (ev *Evaluator) evaluateInto(dst *Eval, coreSteps []int, memStep int) {
	if ev.UseTables {
		ev.evaluateTablesInto(dst, coreSteps, memStep)
		return
	}
	hz := ev.coreHz(coreSteps)
	busHz := ev.Cfg.MemLadder.Hz(memStep)
	ev.Solver.SolveInto(&ev.solveRes, ev.stats, hz, busHz)
	n := len(ev.solveRes.TPI)
	dst.TPI = perf.ResizeFloats(dst.TPI, n)
	copy(dst.TPI, ev.solveRes.TPI)
	dst.Slowdown = perf.ResizeFloats(dst.Slowdown, n)
	dst.MaxSlow = 0
	dst.SER = 0
	dst.MemLoad = ev.solveRes.Mem
	ev.finish(dst, coreSteps, hz, memStep, ev.solveRes.MemRate)
}

// evaluateTablesInto is evaluateInto on the memoized-table path: the solver
// gathers its per-core constants incrementally from the StepTable, the
// memory queueing model comes from the ModelCache, and finishTables sums
// per-core power from the CoreTable. Bit-identity with the direct path is
// argued term by term in DESIGN.md §10 and enforced by the property test in
// table_test.go.
//
//hot:path
func (ev *Evaluator) evaluateTablesInto(dst *Eval, coreSteps []int, memStep int) {
	ev.Solver.SolveTable(&ev.solveRes, &ev.tbl, coreSteps, ev.plat.Models.At(memStep))
	n := len(ev.solveRes.TPI)
	dst.TPI = perf.GrowFloats(dst.TPI, n)
	copy(dst.TPI, ev.solveRes.TPI)
	dst.Slowdown = perf.GrowFloats(dst.Slowdown, n)
	dst.MaxSlow = 0
	dst.SER = 0
	dst.MemLoad = ev.solveRes.Mem
	ev.finishTables(dst, coreSteps, memStep, ev.solveRes.MemRate)
}

// finishTables is finish on the memoized-table path. The per-core power sum
// reuses the solver's already-computed instruction rates (the same
// 1/TPI-or-zero finish would rederive) and accumulates CoreTable terms in
// ascending core order — the exact order System.Total sums — before handing
// the sum to TotalFromCPU.
//
//hot:path
func (ev *Evaluator) finishTables(e *Eval, coreSteps []int, memStep int, memRate float64) {
	base := ev.baseline.TPI
	sameLen := len(base) == len(e.TPI)
	maxSlow := 0.0
	n := len(coreSteps)
	tpi, slow := e.TPI[:n], e.Slowdown[:n]
	ips, l2pi := ev.solveRes.IPS[:n], ev.l2pi[:n]
	cpu := 0.0
	l2Rate := 0.0
	// One fused pass: slowdown/max and the power sums accumulate
	// independently, so interleaving them changes no per-accumulator
	// operation order (bit-identical to two passes).
	for i, s := range coreSteps {
		sl := 1.0
		if sameLen && base[i] > 0 {
			sl = tpi[i] / base[i]
		}
		slow[i] = sl
		if sl > maxSlow {
			maxSlow = sl
		}
		v := ips[i]
		cpu += ev.ptbl.PowerAt(s, i, v)
		l2Rate += v * l2pi[i]
	}
	if maxSlow <= 0 {
		maxSlow = 1
	}
	e.MaxSlow = maxSlow
	busy := ev.busyPerReq * memRate
	if busy > 1 {
		busy = 1
	}
	// Split traffic into reads and writes in the observed proportion; the
	// energy model treats them symmetrically anyway.
	u := power.MemUsage{
		BusHz:     ev.plat.MemHz[memStep],
		MCVolts:   ev.plat.MemV[memStep],
		ReadRate:  memRate * 0.8,
		WriteRate: memRate * 0.2,
		ActRate:   memRate,
		UtilBus:   e.MemLoad.UtilBus,
		BusyFrac:  busy,
	}
	e.Power = ev.Cfg.Power.TotalFromCPU(cpu, l2Rate, u)
}

// Tables exposes the memoized per-epoch prediction tables so callers on the
// marginal-scoring hot path can query them through inlinable methods:
// StepTable.TPIAt(i, s, lat) is bit-identical to
// Stats()[i].TPI(Cfg.CoreLadder.Hz(s), lat), and CoreTable.PowerAt(s, i, ips)
// to Cfg.Power.Core.Power(Volts(s), Hz(s), ips, mix_i) (DESIGN.md §10).
// Valid only when UseTables is set, between a Reset and the next.
func (ev *Evaluator) Tables() (*perf.StepTable, *power.CoreTable) {
	return &ev.tbl, &ev.ptbl
}

// TMaxInto computes each core's maximum allowed epoch time at the given
// operating point — Instructions·TPI, the slack-bookkeeping reference —
// writing into dst. The allocation-free form of the TMaxForEpoch helper.
//
//hot:path
func (ev *Evaluator) TMaxInto(dst []float64, coreSteps []int, memStep int) []float64 {
	ev.EvaluateInto(&ev.tmaxEval, coreSteps, memStep)
	if cap(dst) < len(ev.obs.Cores) {
		dst = make([]float64, len(ev.obs.Cores)) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	dst = dst[:len(ev.obs.Cores)]
	for i, c := range ev.obs.Cores {
		dst[i] = float64(c.Instructions) * ev.tmaxEval.TPI[i]
	}
	return dst
}

// finish fills slowdowns and predicted power for an Eval whose TPI and
// MemLoad are already set. coreSteps and hz describe the same operating
// point (hz[i] = CoreLadder.Hz(coreSteps[i])); taking both spares the
// nearest-frequency ladder scan the voltage lookup would otherwise need.
//
//hot:path
func (ev *Evaluator) finish(e *Eval, coreSteps []int, hz []float64, memStep int, memRate float64) {
	for i := range e.Slowdown {
		if len(ev.baseline.TPI) == len(e.TPI) && ev.baseline.TPI[i] > 0 {
			e.Slowdown[i] = e.TPI[i] / ev.baseline.TPI[i]
		} else {
			e.Slowdown[i] = 1
		}
		if e.Slowdown[i] > e.MaxSlow {
			e.MaxSlow = e.Slowdown[i]
		}
	}
	if e.MaxSlow <= 0 {
		e.MaxSlow = 1
	}

	cores := resizeCoreOps(ev.cores, len(e.TPI))
	ev.cores = cores
	l2Rate := 0.0
	for i, tpi := range e.TPI {
		ips := 0.0
		if tpi > 0 && !math.IsInf(tpi, 0) {
			ips = 1 / tpi
		}
		cores[i] = power.CoreOp{
			Volts: ev.Cfg.CoreLadder.Volts(coreSteps[i]),
			Hz:    hz[i],
			IPS:   ips,
			Mix:   ev.obs.Cores[i].Mix,
		}
		l2Rate += ips * ev.obs.Cores[i].L2PerInstr
	}
	busHz := ev.Cfg.MemLadder.Hz(memStep)
	busy := ev.busyPerReq * memRate
	if busy > 1 {
		busy = 1
	}
	// Split traffic into reads and writes in the observed proportion; the
	// energy model treats them symmetrically anyway.
	u := power.MemUsage{
		BusHz:     busHz,
		MCVolts:   ev.Cfg.MemLadder.Volts(memStep),
		ReadRate:  memRate * 0.8,
		WriteRate: memRate * 0.2,
		ActRate:   memRate,
		UtilBus:   e.MemLoad.UtilBus,
		BusyFrac:  busy,
	}
	e.Power = ev.Cfg.Power.Total(cores, l2Rate, u)
}

// MaxSlowdowns converts per-core accumulated slack into the maximum
// per-core slowdown permitted next epoch (§3 performance management): core i
// may run at slowdown r if E ≤ E·(1+γ)/r + slack_i, i.e.
// r ≤ E·(1+γ)/(E − slack_i). A slack at or above the epoch length leaves the
// core unconstrained this epoch (returned as +Inf).
func MaxSlowdowns(slacks []float64, epoch, gamma float64) []float64 {
	return MaxSlowdownsInto(nil, slacks, epoch, gamma)
}

// MaxSlowdownsInto is MaxSlowdowns writing into dst, reusing dst's backing
// array when its capacity suffices (dst may alias slacks).
//
//hot:path
func MaxSlowdownsInto(dst, slacks []float64, epoch, gamma float64) []float64 {
	if cap(dst) < len(slacks) {
		dst = make([]float64, len(slacks)) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	dst = dst[:len(slacks)]
	for i, s := range slacks {
		if s >= epoch {
			dst[i] = math.Inf(1)
			continue
		}
		r := epoch * (1 + gamma) / (epoch - s)
		if r < 1 {
			r = 1 // never force above-baseline speed; max frequency is the best we can do
		}
		dst[i] = r
	}
	return dst
}

// resizeStats and resizeCoreOps reuse scratch backing arrays without
// zeroing: every element is fully overwritten before it is read.
func resizeStats(s []perf.CoreStats, n int) []perf.CoreStats {
	if cap(s) < n {
		return make([]perf.CoreStats, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

func resizeCoreOps(s []power.CoreOp, n int) []power.CoreOp {
	if cap(s) < n {
		return make([]power.CoreOp, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

func resizeMixes(s []trace.InstrMix, n int) []trace.InstrMix {
	if cap(s) < n {
		return make([]trace.InstrMix, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

// WithinBoundScaled is WithinBound against limits whose (1+1e-12) epsilon
// scaling has already been applied (see ScaleLimits) — the hot-path form
// that hoists the per-element multiply out of repeated feasibility checks.
//
//hot:path
func WithinBoundScaled(e Eval, scaled []float64) bool {
	for i, s := range e.Slowdown {
		if s > scaled[i] {
			return false
		}
	}
	return true
}

// ScaleLimits fills dst with limits[i]·(1+1e-12), the epsilon-padded bounds
// WithinBound compares against, so a caller checking many candidates against
// one limit vector multiplies once instead of per check. dst is reused when
// its capacity suffices.
//
//hot:path
func ScaleLimits(dst, limits []float64) []float64 {
	if cap(dst) < len(limits) {
		dst = make([]float64, len(limits)) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	dst = dst[:len(limits)]
	for i, l := range limits {
		dst[i] = l * (1 + 1e-12)
	}
	return dst
}

// WithinBound reports whether an evaluation satisfies every core's slowdown
// limit.
func WithinBound(e Eval, limits []float64) bool {
	for i, s := range e.Slowdown {
		if s > limits[i]*(1+1e-12) {
			return false
		}
	}
	return true
}
