package policy

// SemiCoordinated increases coordination slightly over Uncoordinated (§3.2
// alternative 4): the CPU and memory managers share one slack estimate —
// each is aware of the past CPI degradation produced by the other, so the
// performance bound holds — but each still tries to consume the entire
// remaining slack independently every epoch. Because neither accounts for
// the other's simultaneous move, the pair over-corrects in both directions,
// producing the oscillations and local minima of Figures 1, 4 and 7(c).
type SemiCoordinated struct {
	cfg   Config
	slack *SlackBook

	// OutOfPhase makes the managers act on alternate epochs (the §4.2.2
	// half-epoch phase-shift variant: less oscillation, earlier local
	// minima).
	OutOfPhase bool

	epoch int
}

// NewSemiCoordinated returns the semi-coordinated policy, or the
// configuration's validation error.
func NewSemiCoordinated(cfg Config) (*SemiCoordinated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SemiCoordinated{cfg: cfg, slack: NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve)}, nil
}

// Name implements Policy.
func (p *SemiCoordinated) Name() string {
	if p.OutOfPhase {
		return "Semi-coordinated-OoP"
	}
	return "Semi-coordinated"
}

// Decide implements Policy.
func (p *SemiCoordinated) Decide(obs Observation) Decision {
	p.epoch++
	ev := NewEvaluator(p.cfg, obs)
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))
	base := ev.Baseline().TPI

	// Both managers measure degradation against the shared all-max
	// reference (that is the coordination), but each plans as if the
	// other component keeps its current frequency.
	coreSteps := coreSearch(ev, obs.MemStep, obs.MemLatency, base, limits)
	memStep := memSearch(ev, obs.CoreSteps, base, limits)

	if p.OutOfPhase {
		if p.epoch%2 == 1 {
			memStep = obs.MemStep // memory manager sits this epoch out
		} else {
			coreSteps = append([]int(nil), obs.CoreSteps...)
		}
	}
	return Decision{CoreSteps: coreSteps, MemStep: memStep}
}

// Observe implements Policy: shared slack bookkeeping against the joint
// all-max reference.
func (p *SemiCoordinated) Observe(epoch Observation) {
	p.slack.RecordEpochFor(epoch.CoreThreads(), TMaxForEpoch(p.cfg, epoch, ZeroSteps(p.cfg.NCores), 0), epoch.Window)
}
