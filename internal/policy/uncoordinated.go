package policy

// Uncoordinated applies both MemScale-style memory DVFS and CPUOnly-style
// core DVFS through two fully independent managers (§3.2 alternative 3).
//
// Each manager believes it alone influences the slack: in determining its
// budget, the CPU manager assumes the memory subsystem will stay at its
// previous-epoch frequency AND that no CPI degradation has accumulated (its
// reference is "cores at max, memory as-is", refreshed every epoch with no
// carry-over); the memory manager makes the mirror-image assumptions. Both
// then consume an entire γ allowance, so the combined slowdown can approach
// 2γ — the bound violations Figure 9 shows.
type Uncoordinated struct {
	cfg Config
}

// NewUncoordinated returns the uncoordinated two-manager policy, or the
// configuration's validation error.
func NewUncoordinated(cfg Config) (*Uncoordinated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Uncoordinated{cfg: cfg}, nil
}

// Name implements Policy.
func (p *Uncoordinated) Name() string { return "Uncoordinated" }

// Decide implements Policy.
func (p *Uncoordinated) Decide(obs Observation) Decision {
	ev := NewEvaluator(p.cfg, obs)
	n := p.cfg.NCores

	// CPU manager: reference is cores-at-max with memory at its current
	// frequency; fresh per-epoch allowance of γ per core.
	cpuRef := ev.Evaluate(ZeroSteps(n), obs.MemStep)
	limits := uniformLimits(n, 1+p.cfg.Gamma)
	coreSteps := coreSearch(ev, obs.MemStep, cpuRef.MemLoad.Latency, cpuRef.TPI, limits)

	// Memory manager: reference is memory-at-max with cores at their
	// current frequencies; same fresh allowance.
	memRef := ev.Evaluate(obs.CoreSteps, 0)
	memStep := memSearch(ev, obs.CoreSteps, memRef.TPI, limits)

	// Both managers' decisions take effect simultaneously.
	return Decision{CoreSteps: coreSteps, MemStep: memStep}
}

// Observe implements Policy: the managers deliberately keep no cross-epoch
// slack state ("assumes it has accumulated no CPI degradation").
func (p *Uncoordinated) Observe(Observation) {}

func uniformLimits(n int, v float64) []float64 {
	//hot:alloc-ok result escapes: callers keep the returned limit vector
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
