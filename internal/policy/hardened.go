package policy

import (
	"fmt"
	"math"

	"coscale/internal/approx"
	"coscale/internal/perf"
)

// HardenedOptions tunes the Hardened watchdog. The zero value selects the
// defaults listed on each field; see DESIGN.md §8 for how they were chosen.
type HardenedOptions struct {
	// SanityTol is the allowed relative error in the counter-identity check
	// for the profiling window (default 0.02). The per-core counter stats
	// algebraically reconstruct the cycle counter, so a clean constant-
	// frequency window passes with error near zero; the margin covers the
	// engine's MLP/CPIBase clamps.
	SanityTol float64
	// EpochTolExtra is the additional tolerance for whole-epoch windows
	// (default 0.12): the first profiling fraction of an epoch runs at the
	// previous epoch's frequencies while the observation reports the new
	// ones, which skews the identity by up to profile/epoch × the ladder's
	// max/min frequency ratio.
	EpochTolExtra float64
	// TripAfter is how many consecutive suspicious windows trip the
	// watchdog into failsafe (default 2).
	TripAfter int
	// BackoffMin and BackoffMax bound the failsafe hold, in epochs
	// (defaults 4 and 256). Each trip doubles the next hold up to
	// BackoffMax; sustained clean operation halves it back toward
	// BackoffMin.
	BackoffMin int
	BackoffMax int
	// ReTrustAfter is how many consecutive clean windows halve the backoff
	// (default 8).
	ReTrustAfter int
	// DeficitEpochs sets the persistent-bound-violation trigger: the
	// watchdog trips when any thread falls behind its (1+γ) bound by more
	// than DeficitEpochs × γ × EpochLen seconds of accumulated deficit
	// (default 4). Transient model drift is orders of magnitude smaller.
	DeficitEpochs float64
}

// withDefaults fills zero fields with the documented defaults.
func (o HardenedOptions) withDefaults() HardenedOptions {
	if approx.Zero(o.SanityTol, 0) {
		o.SanityTol = 0.02
	}
	if approx.Zero(o.EpochTolExtra, 0) {
		o.EpochTolExtra = 0.12
	}
	if o.TripAfter == 0 {
		o.TripAfter = 2
	}
	if o.BackoffMin == 0 {
		o.BackoffMin = 4
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 256
	}
	if o.ReTrustAfter == 0 {
		o.ReTrustAfter = 8
	}
	if approx.Zero(o.DeficitEpochs, 0) {
		o.DeficitEpochs = 4
	}
	return o
}

// validate rejects self-contradictory options.
func (o HardenedOptions) validate() error {
	if o.SanityTol < 0 || o.EpochTolExtra < 0 {
		return fmt.Errorf("policy: Hardened tolerances must be non-negative")
	}
	if o.TripAfter < 1 {
		return fmt.Errorf("policy: Hardened TripAfter must be at least 1")
	}
	if o.BackoffMin < 1 || o.BackoffMax < o.BackoffMin {
		return fmt.Errorf("policy: Hardened backoff range [%d, %d] is invalid", o.BackoffMin, o.BackoffMax)
	}
	if o.ReTrustAfter < 1 {
		return fmt.Errorf("policy: Hardened ReTrustAfter must be at least 1")
	}
	if o.DeficitEpochs < 0 {
		return fmt.Errorf("policy: Hardened DeficitEpochs must be non-negative")
	}
	return nil
}

// HardenedStats counts watchdog events, for tests and experiment telemetry.
type HardenedStats struct {
	Trips          int // times the watchdog entered a failsafe hold
	InsaneWindows  int // observations failing the counter-identity check
	Mismatches     int // observations whose settings differ from the last request
	FailsafeEpochs int // epochs spent pinned at maximum frequencies
}

// Hardened wraps an inner controller with a graceful-degradation watchdog
// (DESIGN.md §8). Every observation is checked two ways before the inner
// policy sees it:
//
//   - counter sanity: the per-core stats the engine derives are an exact
//     algebraic factoring of the cycle counter, so the watchdog can
//     reconstruct the expected cycle count (window × frequency) from them;
//     a reading that does not reconstruct — biased, noisy, dropped or stale
//     counters — is implausible and rejected;
//   - actuation echo: the settings reported in effect must equal the last
//     decision this policy returned; a mismatch means the actuator lagged,
//     dropped, froze or clamped the request.
//
// A suspicious window yields one conservative maximum-frequency epoch;
// TripAfter consecutive suspicious windows trip a failsafe hold at maximum
// frequencies for an exponentially backed-off number of epochs
// (BackoffMin → BackoffMax, halved again after sustained clean operation).
// Rejected epochs are withheld from the inner policy so faulty readings
// never poison its slack accounting; independently, the watchdog accrues
// each thread's deficit against its (1+γ) bound and trips on persistent
// violation even when individual windows look plausible.
//
// The failsafe rides the same actuation path as any decision, so it cannot
// out-muscle a permanently stuck actuator; what it guarantees is that the
// controller stops *spending slack it cannot verify*.
type Hardened struct {
	cfg   Config
	inner Policy
	opts  HardenedOptions
	stats HardenedStats

	// Echo state: the decision most recently returned to the engine.
	lastReq []int
	lastMem int
	haveReq bool

	badStreak    int
	cleanStreak  int
	backoff      int // next failsafe hold, epochs
	failsafeLeft int // remaining epochs in the current hold

	// deficit accumulates, per software thread, seconds behind the (1+γ)
	// bound (clamped at zero: headroom is not banked against violations).
	deficit []float64

	zeros []int // owned all-max step vector backing failsafe decisions

	// deficitEv and tmax are the persistent evaluator and scratch behind
	// recordDeficit's per-epoch all-max reference estimate, so the watchdog
	// adds no steady-state allocations to the epoch loop.
	deficitEv *Evaluator
	tmax      []float64
}

// Harden wraps inner with a watchdog using default options.
func Harden(cfg Config, inner Policy) (*Hardened, error) {
	return HardenWithOptions(cfg, inner, HardenedOptions{})
}

// HardenWithOptions wraps inner with a watchdog using explicit options.
// Oracle policies are rejected: their decisions are fed ground truth rather
// than the counters the watchdog vets, so hardening them is meaningless.
func HardenWithOptions(cfg Config, inner Policy, opts HardenedOptions) (*Hardened, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("policy: Harden requires an inner policy")
	}
	if op, ok := inner.(OraclePolicy); ok && op.WantsOracle() {
		return nil, fmt.Errorf("policy: cannot harden %s: oracle observations bypass the counters the watchdog checks", inner.Name())
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Hardened{
		cfg:     cfg,
		inner:   inner,
		opts:    opts,
		lastReq: make([]int, cfg.NCores),
		backoff: opts.BackoffMin,
		deficit: make([]float64, cfg.NCores),
		zeros:   make([]int, cfg.NCores),
	}, nil
}

// Name identifies the wrapper by its inner policy.
func (h *Hardened) Name() string { return h.inner.Name() + "-Hardened" }

// Inner returns the wrapped policy.
func (h *Hardened) Inner() Policy { return h.inner }

// Stats returns the watchdog event counts so far.
func (h *Hardened) Stats() HardenedStats { return h.stats }

// Decide vets the profiling window and either delegates to the inner policy
// or pins the system at maximum frequencies (see the type comment).
func (h *Hardened) Decide(obs Observation) Decision {
	sane := h.obsSane(obs, h.opts.SanityTol)
	match := h.actuationMatches(obs)
	h.note(sane, match)

	if h.failsafeLeft > 0 {
		h.failsafeLeft--
		h.stats.FailsafeEpochs++
		return h.remember(h.failsafe(len(obs.Cores)))
	}
	if h.badStreak >= h.opts.TripAfter {
		h.trip()
		h.failsafeLeft--
		h.stats.FailsafeEpochs++
		return h.remember(h.failsafe(len(obs.Cores)))
	}
	if !sane || !match {
		// An isolated suspicious window: spend one conservative epoch
		// without committing to a hold.
		return h.remember(h.failsafe(len(obs.Cores)))
	}
	return h.remember(h.inner.Decide(obs))
}

// Observe vets the whole-epoch observation; plausible epochs feed the inner
// policy's slack accounting and the watchdog's own bound-deficit tracker,
// implausible ones are withheld entirely.
func (h *Hardened) Observe(epoch Observation) {
	if !h.obsSane(epoch, h.opts.SanityTol+h.opts.EpochTolExtra) {
		h.stats.InsaneWindows++
		h.badStreak++
		h.cleanStreak = 0
		return
	}
	h.inner.Observe(epoch)
	h.recordDeficit(epoch)
}

// note updates the trust streaks from one vetted window.
func (h *Hardened) note(sane, match bool) {
	if sane && match {
		h.badStreak = 0
		h.cleanStreak++
		if h.cleanStreak >= h.opts.ReTrustAfter {
			h.cleanStreak = 0
			h.backoff /= 2
			if h.backoff < h.opts.BackoffMin {
				h.backoff = h.opts.BackoffMin
			}
		}
		return
	}
	h.badStreak++
	h.cleanStreak = 0
	if !sane {
		h.stats.InsaneWindows++
	}
	if !match {
		h.stats.Mismatches++
	}
}

// trip enters a failsafe hold and doubles the next one (up to BackoffMax).
func (h *Hardened) trip() {
	h.stats.Trips++
	h.failsafeLeft = h.backoff
	h.backoff *= 2
	if h.backoff > h.opts.BackoffMax {
		h.backoff = h.opts.BackoffMax
	}
	h.badStreak = 0
	for i := range h.deficit {
		h.deficit[i] = 0
	}
}

// failsafe is the maximum-frequency decision (step 0 everywhere). Its slice
// aliases the wrapper's owned scratch, which is never written after
// construction.
func (h *Hardened) failsafe(n int) Decision {
	if n > len(h.zeros) {
		h.zeros = make([]int, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return Decision{CoreSteps: h.zeros[:n], MemStep: 0}
}

// remember records the decision's settings (clamped as the engine will clamp
// them) so the next observation's settings can be echo-checked against it.
func (h *Hardened) remember(d Decision) Decision {
	h.lastReq = perf.ResizeInts(h.lastReq, len(d.CoreSteps))
	for i, s := range d.CoreSteps {
		h.lastReq[i] = h.cfg.CoreLadder.Clamp(s)
	}
	h.lastMem = h.cfg.MemLadder.Clamp(d.MemStep)
	h.haveReq = true
	return d
}

// actuationMatches reports whether the settings in effect during the window
// equal the last request (vacuously true before the first decision).
func (h *Hardened) actuationMatches(obs Observation) bool {
	if !h.haveReq {
		return true
	}
	if len(obs.CoreSteps) != len(h.lastReq) || obs.MemStep != h.lastMem {
		return false
	}
	for i, s := range obs.CoreSteps {
		if s != h.lastReq[i] {
			return false
		}
	}
	return true
}

// obsSane checks the counter identity: the engine derives CPIBase, Alpha,
// StallL2, Beta and MLP by factoring the cycle counter over the window, so
//
//	TIC·CPIBase + TIC·Alpha·StallL2·hz + TIC·Beta·(MemLatency/MLP)·hz
//
// reconstructs that counter, which in turn must equal window × hz (the
// cycle counter runs for the whole window). Perturbed counters break the
// factoring: a uniform bias survives every per-instruction ratio but scales
// TIC itself; independent noise, dropouts and stale readings skew the
// ratios. A core reporting zero instructions over a nonempty window is
// implausible outright.
func (h *Hardened) obsSane(obs Observation, tol float64) bool {
	if !(obs.Window > 0) || len(obs.CoreSteps) < len(obs.Cores) {
		return false
	}
	if !finiteNonNeg(obs.MemLatency) || !finiteNonNeg(obs.MemRate) {
		return false
	}
	for i := range obs.Cores {
		c := &obs.Cores[i]
		if c.Instructions == 0 {
			return false
		}
		s := c.Stats
		if !finiteNonNeg(s.CPIBase) || !finiteNonNeg(s.Alpha) || !finiteNonNeg(s.Beta) ||
			!finiteNonNeg(s.StallL2) || !finiteNonNeg(s.MemPerInstr) || !(s.MLP >= 1) {
			return false
		}
		hz := h.cfg.CoreLadder.Hz(obs.CoreSteps[i])
		tic := float64(c.Instructions)
		cyclesEst := tic * (s.CPIBase + s.Alpha*s.StallL2*hz + s.Beta*(obs.MemLatency/s.MLP)*hz)
		want := obs.Window * hz
		if cyclesEst < want*(1-tol) || cyclesEst > want*(1+tol) {
			return false
		}
	}
	return true
}

// recordDeficit accrues each thread's shortfall against its (1+γ) bound and
// trips the watchdog on persistent violation. tMax is estimated from the
// same (vetted) observation the inner policy received.
func (h *Hardened) recordDeficit(epoch Observation) {
	if h.opts.DeficitEpochs <= 0 {
		return
	}
	if n := len(epoch.Cores); n > len(h.zeros) {
		h.zeros = make([]int, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	if h.deficitEv == nil {
		h.deficitEv = &Evaluator{UseTables: true}
	}
	h.deficitEv.Reset(h.cfg, epoch)
	h.tmax = h.deficitEv.TMaxInto(h.tmax, h.zeros[:len(epoch.Cores)], 0)
	tMax := h.tmax
	threads := epoch.CoreThreads()
	limit := h.opts.DeficitEpochs * h.cfg.Gamma * h.cfg.EpochLen.Seconds()
	violated := false
	for i, id := range threads {
		if id >= len(h.deficit) {
			//hot:alloc-ok capacity miss: deficit table grows once per new thread id
			grown := make([]float64, id+1)
			copy(grown, h.deficit)
			h.deficit = grown
		}
		d := h.deficit[id] + epoch.Window - (1+h.cfg.Gamma)*tMax[i]
		if d < 0 {
			d = 0 // headroom is not banked against future violations
		}
		h.deficit[id] = d
		if d > limit {
			violated = true
		}
	}
	if violated && h.failsafeLeft == 0 {
		h.trip()
	}
}

// finiteNonNeg reports v is a finite, non-negative float.
func finiteNonNeg(v float64) bool {
	return v >= 0 && !math.IsInf(v, 0)
}
