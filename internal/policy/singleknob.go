package policy

import (
	"math"
	"sort"
)

// This file implements the two single-knob policies of §3.2 — "MemScale"
// (memory-subsystem DVFS only) and "CPUOnly" (per-core DVFS only) — plus the
// exact single-knob searches they and the Uncoordinated/Semi-coordinated
// managers are built from. Both policies assume the unmanaged component
// behaves in the next epoch exactly as in the profiling phase.

// memSearch exhaustively evaluates memory steps with cores pinned at
// coreSteps, returning the step with the lowest SER whose predicted
// slowdowns (measured against refTPI) stay within limits. Returns the
// current step when nothing better is feasible.
func memSearch(ev *Evaluator, coreSteps []int, refTPI, limits []float64) int {
	bestStep, bestSER := 0, math.Inf(1)
	for m := 0; m < ev.Cfg.MemLadder.Steps(); m++ {
		e := ev.Evaluate(coreSteps, m)
		if !withinRef(e, refTPI, limits) {
			continue
		}
		ser := serAgainst(ev, e)
		if ser < bestSER {
			bestSER, bestStep = ser, m
		}
	}
	return bestStep
}

// coreSearch performs the exact CPU-only search: because each core's CPI is
// independent of the others' frequencies once memory latency is held fixed,
// searching "all possible combinations of core frequencies" (§3.2) reduces
// to sweeping the worst-allowed slowdown D over every per-core step
// boundary and letting each core pick its lowest frequency within D. The
// returned steps minimize predicted SER within limits.
func coreSearch(ev *Evaluator, memStep int, latency float64, refTPI, limits []float64) []int {
	n := len(refTPI)
	ladder := ev.Cfg.CoreLadder
	stats := ev.Stats()

	// slow[i][s]: predicted slowdown of core i at step s under fixed
	// memory latency.
	//hot:alloc-ok per-decision table: the CPU-only manager sweeps the full ladder once per epoch
	slow := make([][]float64, n)
	var candidates []float64
	for i := 0; i < n; i++ {
		//hot:alloc-ok per-decision table: the CPU-only manager sweeps the full ladder once per epoch
		slow[i] = make([]float64, ladder.Steps())
		for s := 0; s < ladder.Steps(); s++ {
			sd := stats[i].TPI(ladder.Hz(s), latency) / refTPI[i]
			slow[i][s] = sd
			if sd <= limits[i]*(1+1e-12) {
				candidates = append(candidates, sd)
			}
		}
	}
	candidates = append(candidates, 1)
	sort.Float64s(candidates)

	best := ZeroSteps(n)
	bestSER := math.Inf(1)
	prev := math.NaN()
	for _, d := range candidates {
		//lint:ignore floateq exact dedup of sorted candidates; a tolerance would merge distinct settings
		if d == prev {
			continue
		}
		prev = d
		steps := assembleSteps(slow, limits, d)
		e := ev.EvaluateFixedLatency(steps, memStep, latency)
		if !withinRef(e, refTPI, limits) {
			continue
		}
		if ser := serAgainst(ev, e); ser < bestSER {
			bestSER, best = ser, steps
		}
	}
	return best
}

// assembleSteps picks, for each core, the lowest frequency whose slowdown
// stays within min(d, limits[i]).
func assembleSteps(slow [][]float64, limits []float64, d float64) []int {
	//hot:alloc-ok result escapes: the returned steps become Decision.CoreSteps
	steps := make([]int, len(slow))
	for i := range slow {
		lim := limits[i]
		if d < lim {
			lim = d
		}
		pick := 0
		for s := len(slow[i]) - 1; s >= 0; s-- {
			if slow[i][s] <= lim*(1+1e-12) {
				pick = s
				break
			}
		}
		steps[i] = pick
	}
	return steps
}

// withinRef checks per-core TPI against limits relative to refTPI (which may
// differ from the evaluator's all-max baseline for the Uncoordinated
// managers).
func withinRef(e Eval, refTPI, limits []float64) bool {
	for i, tpi := range e.TPI {
		if refTPI[i] <= 0 {
			continue
		}
		if tpi/refTPI[i] > limits[i]*(1+1e-12) {
			return false
		}
	}
	return true
}

// serAgainst computes the SER of e against the evaluator's all-max baseline.
func serAgainst(ev *Evaluator, e Eval) float64 {
	b := ev.Baseline()
	t := 0.0
	for i, tpi := range e.TPI {
		if b.TPI[i] > 0 {
			if r := tpi / b.TPI[i]; r > t {
				t = r
			}
		}
	}
	if t <= 0 {
		t = 1
	}
	return t * e.Power.Total / b.Power.Total
}

// MemScale is the memory-only DVFS policy (§3.2 alternative 1).
type MemScale struct {
	cfg   Config
	slack *SlackBook
}

// NewMemScale returns the MemScale policy, or the configuration's
// validation error.
func NewMemScale(cfg Config) (*MemScale, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MemScale{cfg: cfg, slack: NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve)}, nil
}

// Name implements Policy.
func (p *MemScale) Name() string { return "MemScale" }

// Decide implements Policy: exhaustive search over memory frequencies with
// the cores untouched (they stay at maximum frequency).
func (p *MemScale) Decide(obs Observation) Decision {
	ev := NewEvaluator(p.cfg, obs)
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))
	m := memSearch(ev, obs.CoreSteps, ev.Baseline().TPI, limits)
	return Decision{CoreSteps: append([]int(nil), obs.CoreSteps...), MemStep: m}
}

// Observe implements Policy.
func (p *MemScale) Observe(epoch Observation) {
	p.slack.RecordEpochFor(epoch.CoreThreads(), TMaxForEpoch(p.cfg, epoch, ZeroSteps(p.cfg.NCores), 0), epoch.Window)
}

// CPUOnly is the CPU-only DVFS policy (§3.2 alternative 2).
type CPUOnly struct {
	cfg   Config
	slack *SlackBook
}

// NewCPUOnly returns the CPUOnly policy, or the configuration's validation
// error.
func NewCPUOnly(cfg Config) (*CPUOnly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CPUOnly{cfg: cfg, slack: NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve)}, nil
}

// Name implements Policy.
func (p *CPUOnly) Name() string { return "CPUOnly" }

// Decide implements Policy: the exact all-combinations core search with
// memory pinned at maximum frequency.
func (p *CPUOnly) Decide(obs Observation) Decision {
	ev := NewEvaluator(p.cfg, obs)
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))
	steps := coreSearch(ev, obs.MemStep, obs.MemLatency, ev.Baseline().TPI, limits)
	return Decision{CoreSteps: steps, MemStep: obs.MemStep}
}

// Observe implements Policy.
func (p *CPUOnly) Observe(epoch Observation) {
	p.slack.RecordEpochFor(epoch.CoreThreads(), TMaxForEpoch(p.cfg, epoch, ZeroSteps(p.cfg.NCores), 0), epoch.Window)
}
