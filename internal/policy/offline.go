package policy

import (
	"math"
	"sort"
)

// Offline is the idealized upper bound of §3.2 (alternative 5): it is fed a
// perfect trace of each upcoming epoch (the engine passes oracle
// observations instead of profiling-window ones) and searches all core and
// memory frequency settings. The nominally exponential M·C^N space is
// searched exactly by exploiting the model's per-core separability: for
// each memory frequency, sweeping the worst-allowed slowdown over every
// per-core step boundary enumerates every Pareto-relevant combination (see
// DESIGN.md §4); a short fixed-point on the shared memory latency accounts
// for the traffic coupling. Offline remains epoch-by-epoch greedy, so it is
// an upper bound for CoScale, not a true oracle.
type Offline struct {
	cfg   Config
	slack *SlackBook
}

// NewOffline returns the Offline policy, or the configuration's validation
// error.
func NewOffline(cfg Config) (*Offline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Offline{cfg: cfg, slack: NewSlackBook(cfg.NCores, cfg.Gamma, cfg.Reserve)}, nil
}

// Name implements Policy.
func (p *Offline) Name() string { return "Offline" }

// WantsOracle implements OraclePolicy.
func (p *Offline) WantsOracle() bool { return true }

// Decide implements Policy. obs must be an oracle observation of the
// upcoming epoch.
func (p *Offline) Decide(obs Observation) Decision {
	ev := NewEvaluator(p.cfg, obs)
	limits := p.cfg.Limits(p.slack.AvailableFor(obs.CoreThreads()))
	base := ev.Baseline()

	best := Decision{CoreSteps: ZeroSteps(p.cfg.NCores), MemStep: 0}
	bestSER := base.SER

	for m := 0; m < p.cfg.MemLadder.Steps(); m++ {
		steps, e, ok := p.bestForMem(ev, m, limits)
		if !ok {
			continue
		}
		if e.SER < bestSER {
			bestSER = e.SER
			best = Decision{CoreSteps: steps, MemStep: m}
		}
	}
	return best
}

// bestForMem finds the best core assignment for one memory step, iterating
// the shared-latency fixed point twice and verifying the winner with the
// full joint model.
func (p *Offline) bestForMem(ev *Evaluator, m int, limits []float64) ([]int, Eval, bool) {
	base := ev.Baseline().TPI
	latency := ev.Evaluate(ZeroSteps(p.cfg.NCores), m).MemLoad.Latency

	var bestSteps []int
	var bestEval Eval
	found := false
	for round := 0; round < 2; round++ {
		steps, ok := p.dSweep(ev, m, latency, base, limits)
		if !ok {
			break
		}
		e := ev.Evaluate(steps, m) // joint verification
		if !WithinBound(e, limits) {
			// The fixed-latency estimate was optimistic; tighten by
			// raising the latency estimate and retrying once.
			latency = e.MemLoad.Latency
			continue
		}
		if !found || e.SER < bestEval.SER {
			bestSteps, bestEval, found = steps, e, true
		}
		latency = e.MemLoad.Latency
	}
	return bestSteps, bestEval, found
}

// dSweep returns the SER-minimizing core steps for a fixed memory step and
// latency estimate.
func (p *Offline) dSweep(ev *Evaluator, m int, latency float64, refTPI, limits []float64) ([]int, bool) {
	n := p.cfg.NCores
	ladder := p.cfg.CoreLadder
	stats := ev.Stats()

	//hot:alloc-ok offline oracle baseline: full-ladder sweep dominates; clarity over scratch reuse
	slow := make([][]float64, n)
	var cands []float64
	for i := 0; i < n; i++ {
		//hot:alloc-ok offline oracle baseline: full-ladder sweep dominates; clarity over scratch reuse
		slow[i] = make([]float64, ladder.Steps())
		for s := 0; s < ladder.Steps(); s++ {
			sd := stats[i].TPI(ladder.Hz(s), latency) / refTPI[i]
			slow[i][s] = sd
			if sd <= limits[i]*(1+1e-12) {
				cands = append(cands, sd)
			}
		}
	}
	cands = append(cands, 1)
	sort.Float64s(cands)

	var best []int
	bestSER := math.Inf(1)
	prev := math.NaN()
	for _, d := range cands {
		//lint:ignore floateq exact dedup of sorted candidates; a tolerance would merge distinct settings
		if d == prev {
			continue
		}
		prev = d
		steps := assembleSteps(slow, limits, d)
		e := ev.EvaluateFixedLatency(steps, m, latency)
		if !withinRef(e, refTPI, limits) {
			continue
		}
		if ser := serAgainst(ev, e); ser < bestSER {
			bestSER, best = ser, steps
		}
	}
	return best, best != nil
}

// Observe implements Policy.
func (p *Offline) Observe(epoch Observation) {
	p.slack.RecordEpochFor(epoch.CoreThreads(), TMaxForEpoch(p.cfg, epoch, ZeroSteps(p.cfg.NCores), 0), epoch.Window)
}
