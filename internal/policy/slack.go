package policy

import "coscale/internal/perf"

// SlackBook tracks per-program slack across epochs, keyed by *software
// thread* rather than core (§3.3: "To deal with context switching, CoScale
// can maintain the performance slack independently for each software
// thread"). When the OS migrates a thread, its slack follows it; controllers
// pass the thread currently on each core via Observation.ThreadIDs.
//
// All coordinated policies share this bookkeeping; the Uncoordinated policy
// deliberately deviates from it (see uncoordinated.go).
type SlackBook struct {
	// Reserve pads each epoch's recorded wall time (seconds), persistently
	// withholding headroom for transition dead time and model drift so
	// the measured bound is never grazed.
	Reserve float64

	gamma    float64
	byThread map[int]*perf.Slack
}

// NewSlackBook creates a tracker at bound gamma, withholding reserve seconds
// of slack per epoch. n is advisory (initial capacity); threads are created
// on first reference.
func NewSlackBook(n int, gamma, reserve float64) *SlackBook {
	return &SlackBook{
		Reserve:  reserve,
		gamma:    gamma,
		byThread: make(map[int]*perf.Slack, n),
	}
}

// Reset forgets every thread's accumulated slack, returning the book to its
// freshly constructed state (Reserve and gamma are kept). Benchmarks and
// repeated bit-identical runs use it to rewind a controller without
// reallocating its bookkeeping.
func (b *SlackBook) Reset() {
	clear(b.byThread)
}

// Thread returns (creating if needed) the tracker for one software thread.
func (b *SlackBook) Thread(id int) *perf.Slack {
	s, ok := b.byThread[id]
	if !ok {
		s = perf.NewSlack(b.gamma)
		b.byThread[id] = s
	}
	return s
}

// AvailableFor returns accumulated slack in seconds for the threads
// currently scheduled on each core (threads[i] = thread on core i).
func (b *SlackBook) AvailableFor(threads []int) []float64 {
	return b.AvailableInto(nil, threads)
}

// AvailableInto is AvailableFor writing into dst, reusing dst's backing
// array when its capacity suffices. The allocation-free form used by
// CoScale's decision hot path (see DESIGN.md §7).
//
//hot:path
func (b *SlackBook) AvailableInto(dst []float64, threads []int) []float64 {
	if cap(dst) < len(threads) {
		dst = make([]float64, len(threads)) //hot:alloc-ok capacity miss: runs once until the caller's scratch is warm
	}
	dst = dst[:len(threads)]
	for i, id := range threads {
		dst[i] = b.Thread(id).Available()
	}
	return dst
}

// RecordEpochFor accounts one finished epoch for the scheduled threads:
// actual is the epoch wall time; tMax[i] is the estimated time the
// instructions committed on core i would have taken at the reference
// (maximum) frequencies.
func (b *SlackBook) RecordEpochFor(threads []int, tMax []float64, actual float64) {
	for i, id := range threads {
		b.Thread(id).Record(tMax[i], actual+b.Reserve)
	}
}

// identity returns [0, 1, ..., n).
func identity(n int) []int {
	//hot:alloc-ok result escapes: callers keep the returned mapping
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TMaxForEpoch estimates, for each core, how long the instructions it
// committed during the observed epoch would have taken at the reference
// steps (coreSteps/memStep — pass all zeros for the all-max reference).
// This is the "estimating what performance would have been achieved had the
// cores and the memory subsystem operated at maximum frequency" step of §3.
func TMaxForEpoch(cfg Config, epoch Observation, coreSteps []int, memStep int) []float64 {
	ev := NewEvaluator(cfg, epoch)
	return ev.TMaxInto(nil, coreSteps, memStep)
}

// ZeroSteps returns an all-zero (maximum frequency) step vector of length n.
//
//lint:ignore hotprop result escapes: callers keep the returned step vector
func ZeroSteps(n int) []int { return make([]int, n) }
