package policy

import (
	"sync"
	"testing"

	"coscale/internal/freq"
)

// distinctPlatforms returns n configs describing n genuinely different
// platforms (memory timing varies), each validated.
func distinctPlatforms(t *testing.T, n int) []Config {
	t.Helper()
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = testCfg(4)
		cfgs[i].Mem.TCLNs += float64(i) // part of platformKey and the identity guard
		if err := cfgs[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return cfgs
}

// TestTableCacheConcurrentMixedPlatforms hammers one TableCache from many
// goroutines over interleaved distinct platforms — the coscale-serve worker
// pool shape — and checks the singleflight accounting: exactly one build per
// distinct platform, every other Get a hit, and all Gets for one platform
// returning the same shared instance. Run under -race this also proves the
// flight's publication of the built tables is properly synchronized.
func TestTableCacheConcurrentMixedPlatforms(t *testing.T) {
	const goroutines = 8
	const getsEach = 25
	cfgs := distinctPlatforms(t, 5)

	var tc TableCache
	got := make([][]*PlatformTables, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < getsEach; k++ {
				got[g] = append(got[g], tc.Get(cfgs[(g+k)%len(cfgs)]))
			}
		}(g)
	}
	wg.Wait()

	builds, hits := tc.Stats()
	if want := int64(len(cfgs)); builds != want {
		t.Errorf("builds = %d, want exactly %d (one per distinct platform)", builds, want)
	}
	if want := int64(goroutines*getsEach) - builds; hits != want {
		t.Errorf("hits = %d, want %d (every non-building Get)", hits, want)
	}
	for g := range got {
		for k, p := range got[g] {
			if q := tc.Get(cfgs[(g+k)%len(cfgs)]); p != q {
				t.Fatalf("goroutine %d get %d returned a private build", g, k)
			}
		}
	}
}

// TestTableCacheValueKeyed checks that the cache keys on platform values,
// not ladder pointer identity: two configs with separately constructed but
// identical ladders share one build.
func TestTableCacheValueKeyed(t *testing.T) {
	a, b := testCfg(4), testCfg(4)
	b.CoreLadder = freq.DefaultCoreLadder()
	if a.CoreLadder == b.CoreLadder {
		t.Fatal("fixture: ladders must be distinct pointers")
	}
	var tc TableCache
	if tc.Get(a) != tc.Get(b) {
		t.Error("identical platforms behind distinct ladder pointers got separate builds")
	}
	if builds, _ := tc.Stats(); builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
}

// TestEvaluatorPlatformIdentityGuard checks ensurePlatform's fast path: a
// steady-state Reset with a pointer-identical platform must not touch the
// shared cache at all — no build, not even a keyed hit — while swapping to
// an equal-value ladder behind a new pointer goes through the cache once
// and comes back a hit, never a rebuild.
func TestEvaluatorPlatformIdentityGuard(t *testing.T) {
	cfg := testCfg(4)
	var tc TableCache
	cfg.Tables = &tc
	obs := synthObs(cfg, memoryStats())

	ev := &Evaluator{UseTables: true}
	ev.Reset(cfg, obs)
	if builds, hits := tc.Stats(); builds != 1 || hits != 0 {
		t.Fatalf("first reset: builds %d hits %d, want 1 and 0", builds, hits)
	}
	for i := 0; i < 10; i++ {
		ev.Reset(cfg, obs)
	}
	if builds, hits := tc.Stats(); builds != 1 || hits != 0 {
		t.Errorf("pointer-identical resets touched the cache: builds %d hits %d, want 1 and 0",
			builds, hits)
	}

	clone := cfg
	clone.CoreLadder = freq.DefaultCoreLadder()
	ev.Reset(clone, obs)
	if builds, hits := tc.Stats(); builds != 1 || hits != 1 {
		t.Errorf("equal-value ladder swap: builds %d hits %d, want 1 and 1", builds, hits)
	}
}
