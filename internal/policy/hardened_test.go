package policy

import (
	"math"
	"testing"

	"coscale/internal/perf"
	"coscale/internal/trace"
)

// stubPolicy is a scriptable inner policy recording what the watchdog lets
// through.
type stubPolicy struct {
	decision Decision
	decides  int
	observes int
}

func (s *stubPolicy) Name() string                    { return "Stub" }
func (s *stubPolicy) Decide(obs Observation) Decision { s.decides++; return s.decision }
func (s *stubPolicy) Observe(epoch Observation)       { s.observes++ }

// hardObs builds an observation that satisfies the watchdog's counter
// identity exactly: uniform cores at one ladder point, instruction counts
// derived from the solved TPI so the reconstructed cycle count equals
// window × hz.
func hardObs(cfg Config, stats perf.CoreStats, window float64, coreStep, memStep int) Observation {
	sv := perf.NewSolver(cfg.Mem)
	all := make([]perf.CoreStats, cfg.NCores)
	for i := range all {
		all[i] = stats
	}
	res := sv.SolveUniform(all, cfg.CoreLadder.Hz(coreStep), cfg.MemLadder.Hz(memStep))
	steps := make([]int, cfg.NCores)
	for i := range steps {
		steps[i] = coreStep
	}
	obs := Observation{
		Window:     window,
		CoreSteps:  steps,
		MemStep:    memStep,
		Cores:      make([]CoreObs, cfg.NCores),
		MemRate:    res.MemRate,
		MemLatency: res.Mem.Latency,
		UtilBus:    res.Mem.UtilBus,
		BusyFrac:   math.Min(1, res.Mem.UtilBank*8),
	}
	for i := range obs.Cores {
		obs.Cores[i] = CoreObs{
			Instructions: uint64(window / res.TPI[i]),
			Stats:        stats,
			L2PerInstr:   stats.Alpha,
			Mix:          trace.InstrMix{ALU: 0.3, FPU: 0.2, Branch: 0.1, LoadStore: 0.3},
			IPS:          1 / res.TPI[i],
		}
	}
	return obs
}

// biasInstr scales every instruction count uniformly — the signature of a
// uniformly biased counter bank (ratios survive, the identity does not).
func biasInstr(obs Observation, f float64) Observation {
	obs = obs.Clone()
	for i := range obs.Cores {
		obs.Cores[i].Instructions = uint64(float64(obs.Cores[i].Instructions) * f)
	}
	return obs
}

// testOpts keeps the holds short so tests stay readable.
func testOpts() HardenedOptions {
	return HardenedOptions{TripAfter: 2, BackoffMin: 2, BackoffMax: 8, ReTrustAfter: 4}
}

func isFailsafe(d Decision) bool {
	if d.MemStep != 0 {
		return false
	}
	for _, s := range d.CoreSteps {
		if s != 0 {
			return false
		}
	}
	return true
}

func TestHardenRejectsBadInputs(t *testing.T) {
	cfg := testCfg(4)
	if _, err := Harden(cfg, nil); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := Harden(Config{}, &stubPolicy{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Harden(cfg, must(NewOffline(cfg))); err == nil {
		t.Error("oracle policy accepted: the watchdog cannot vet oracle observations")
	}
	if _, err := HardenWithOptions(cfg, &stubPolicy{}, HardenedOptions{TripAfter: -1}); err == nil {
		t.Error("negative TripAfter accepted")
	}
	if _, err := HardenWithOptions(cfg, &stubPolicy{}, HardenedOptions{BackoffMin: 10, BackoffMax: 5}); err == nil {
		t.Error("inverted backoff range accepted")
	}
}

func TestHardenedName(t *testing.T) {
	h := must(Harden(testCfg(4), &stubPolicy{}))
	if h.Name() != "Stub-Hardened" {
		t.Errorf("name %q", h.Name())
	}
	if h.Inner().Name() != "Stub" {
		t.Errorf("inner %q", h.Inner().Name())
	}
}

// TestHardenedTransparentWhenClean: on self-consistent observations whose
// settings echo the last request, the watchdog is invisible — every window
// reaches the inner policy and its decisions pass through untouched.
func TestHardenedTransparentWhenClean(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	obs := hardObs(cfg, computeStats(), 300e-6, 0, 0)
	epoch := hardObs(cfg, computeStats(), 5e-3, 0, 0)
	for i := 0; i < 20; i++ {
		d := h.Decide(obs)
		if !isFailsafe(d) { // the stub requests all-max, same as failsafe; shape check only
			t.Fatalf("epoch %d: decision %+v not passed through", i, d)
		}
		h.Observe(epoch)
	}
	if inner.decides != 20 || inner.observes != 20 {
		t.Errorf("inner saw %d/%d windows, want 20/20", inner.decides, inner.observes)
	}
	if st := h.Stats(); st != (HardenedStats{}) {
		t.Errorf("clean run tripped the watchdog: %+v", st)
	}
}

// TestHardenedTripsOnBiasedCounters: uniformly biased counters break the
// cycle identity; after TripAfter consecutive bad windows the watchdog holds
// max frequency for BackoffMin epochs, then re-trusts, and a relapse doubles
// the hold.
func TestHardenedTripsOnBiasedCounters(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	clean := hardObs(cfg, computeStats(), 300e-6, 0, 0)
	bad := biasInstr(clean, 1.2)

	// Two bad windows: one conservative epoch, then a trip.
	h.Decide(bad)
	if st := h.Stats(); st.Trips != 0 || st.InsaneWindows != 1 {
		t.Fatalf("after one bad window: %+v", st)
	}
	if inner.decides != 0 {
		t.Fatal("bad window reached the inner policy")
	}
	h.Decide(bad)
	if st := h.Stats(); st.Trips != 1 {
		t.Fatalf("no trip after %d bad windows: %+v", 2, st)
	}

	// The hold lasts BackoffMin epochs (the trip epoch included) even though
	// the readings turn clean.
	h.Decide(clean) // second (and last) hold epoch
	if inner.decides != 0 {
		t.Fatal("inner consulted during failsafe hold")
	}
	if !isFailsafe(h.Decide(clean)) {
		// hold expired, clean streak resumes: inner is consulted again
	}
	if inner.decides != 1 {
		t.Fatalf("inner not re-trusted after hold expiry (decides=%d)", inner.decides)
	}
	if st := h.Stats(); st.FailsafeEpochs != 2 {
		t.Errorf("failsafe epochs %d, want 2 (BackoffMin)", st.FailsafeEpochs)
	}

	// Relapse: the next hold is doubled.
	h.Decide(bad)
	h.Decide(bad)
	if st := h.Stats(); st.Trips != 2 {
		t.Fatalf("no second trip: %+v", st)
	}
	held := 1 // the trip epoch
	for isFailsafe(h.Decide(clean)) && inner.decides == 1 {
		held++
		if held > 100 {
			t.Fatal("hold never expired")
		}
	}
	if held != 4 {
		t.Errorf("second hold lasted %d epochs, want 4 (doubled backoff)", held)
	}
}

// TestHardenedReTrustHalvesBackoff: sustained clean operation halves the
// backoff again, so an isolated late trip gets a short hold.
func TestHardenedReTrustHalvesBackoff(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	clean := hardObs(cfg, computeStats(), 300e-6, 0, 0)
	bad := biasInstr(clean, 1.2)

	// Drive the backoff to 8 (two trips).
	for i := 0; i < 2; i++ {
		h.Decide(bad)
		h.Decide(bad)
		for isFailsafe(h.Decide(clean)) {
			if inner.decides > 0 {
				break
			}
		}
		inner.decides = 0
	}
	// 2 × ReTrustAfter clean windows halve 8 → 4 → 2.
	for i := 0; i < 8; i++ {
		h.Decide(clean)
	}
	h.Decide(bad)
	h.Decide(bad) // trip 3
	held := 1
	before := inner.decides
	for isFailsafe(h.Decide(clean)) && inner.decides == before {
		held++
		if held > 100 {
			t.Fatal("hold never expired")
		}
	}
	if held != 2 {
		t.Errorf("post-re-trust hold lasted %d epochs, want 2 (halved back to BackoffMin)", held)
	}
}

// TestHardenedDetectsActuationMismatch: when the observed settings differ
// from the last request, the watchdog goes conservative instead of letting
// the inner policy reason from a state it never asked for.
func TestHardenedDetectsActuationMismatch(t *testing.T) {
	cfg := testCfg(4)
	req := Decision{CoreSteps: []int{1, 1, 1, 1}, MemStep: 1}
	inner := &stubPolicy{decision: req}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	obs := hardObs(cfg, computeStats(), 300e-6, 0, 0)

	d := h.Decide(obs) // no prior request: echo check vacuous, inner consulted
	if isFailsafe(d) || inner.decides != 1 {
		t.Fatalf("first decision %+v (decides=%d)", d, inner.decides)
	}
	// The "engine" failed to apply step 1: the next window still reports 0.
	if !isFailsafe(h.Decide(obs)) {
		t.Error("mismatched actuation not met with a conservative epoch")
	}
	if st := h.Stats(); st.Mismatches == 0 {
		t.Errorf("mismatch not counted: %+v", st)
	}
	if inner.decides != 1 {
		t.Error("inner consulted on a mismatched window")
	}
}

// TestHardenedObserveWithholdsInsaneEpochs: implausible whole-epoch readings
// never reach the inner policy's slack accounting.
func TestHardenedObserveWithholdsInsaneEpochs(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	epoch := hardObs(cfg, computeStats(), 5e-3, 0, 0)

	h.Observe(biasInstr(epoch, 1.3))
	if inner.observes != 0 {
		t.Error("insane epoch delivered to inner policy")
	}
	if st := h.Stats(); st.InsaneWindows != 1 {
		t.Errorf("insane epoch not counted: %+v", st)
	}
	h.Observe(epoch)
	if inner.observes != 1 {
		t.Error("sane epoch withheld from inner policy")
	}
}

// TestHardenedEpochToleranceAllowsTransitionSkew: a whole-epoch window whose
// identity is off by less than EpochTolExtra (the profiling fraction ran at
// the previous frequencies) is accepted, while the same skew fails the
// tighter Decide-time check.
func TestHardenedEpochToleranceAllowsTransitionSkew(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	epoch := biasInstr(hardObs(cfg, computeStats(), 5e-3, 0, 0), 1.08)
	h.Observe(epoch)
	if inner.observes != 1 {
		t.Error("transition-skewed epoch rejected by the epoch-tolerance check")
	}
	h.Decide(hardObs(cfg, computeStats(), 300e-6, 0, 0))
	if inner.decides != 1 {
		t.Error("clean profiling window rejected")
	}
	h.Decide(biasInstr(hardObs(cfg, computeStats(), 300e-6, 0, 0), 1.08))
	if inner.decides != 1 {
		t.Error("skewed profiling window accepted by the tight Decide-time check")
	}
}

// TestHardenedDeficitTrips: epochs that individually look plausible but
// persistently violate the (1+γ) bound — the system pinned at minimum
// frequency — trip the watchdog through the deficit tracker.
func TestHardenedDeficitTrips(t *testing.T) {
	cfg := testCfg(4)
	inner := &stubPolicy{decision: Decision{CoreSteps: ZeroSteps(cfg.NCores)}}
	h := must(HardenWithOptions(cfg, inner, testOpts()))
	bottom := cfg.CoreLadder.Steps() - 1
	slow := hardObs(cfg, computeStats(), 5e-3, bottom, 0)
	for i := 0; i < 50 && h.Stats().Trips == 0; i++ {
		h.Observe(slow)
	}
	if h.Stats().Trips == 0 {
		t.Fatal("persistent bound violation never tripped the deficit watchdog")
	}
	if !isFailsafe(h.Decide(hardObs(cfg, computeStats(), 300e-6, 0, 0))) {
		t.Error("deficit trip did not force a failsafe decision")
	}
}
