// Package counters defines the hardware performance counters CoScale reads
// during each epoch's profiling phase (§3.3 "Performance counters").
//
// Per core, CoScale needs five instruction counters (TIC, TMS, TLA, TLM,
// TLS) and four Core Activity Counters (committed ALU, FPU, branch and
// load/store instructions) for the power model. Per memory channel it reuses
// MemScale's seven queuing/row-buffer counters plus two power counters
// (active-vs-idle cycles and page open/close events).
//
// Counters are free-running uint64s. A profiling window is expressed as the
// difference of two snapshots (Sample = end - start), mirroring how an OS
// driver reads MSR-style counters.
package counters

// Core holds the free-running per-core counters.
type Core struct {
	Cycles uint64 // core clock cycles elapsed (at the core's own frequency)
	TIC    uint64 // Total Instructions Committed
	TMS    uint64 // Total L1 Miss Stall cycles source events: instructions that accessed L2 and stalled
	TLA    uint64 // Total L2 Accesses
	TLM    uint64 // Total L2 Misses
	TLS    uint64 // Total L2 Miss Stalls: instructions that missed L2 and stalled the pipeline

	// Core Activity Counters (CAC) for the power model: committed
	// instruction counts by class.
	ALUOps     uint64
	FPUOps     uint64
	Branches   uint64
	LoadStores uint64

	// StallCyclesL2 and StallCyclesMem accumulate the cycles the pipeline
	// spent stalled on L2 hits and L2 misses respectively. They let the
	// model derive E[TPI_L2] and E[TPI_Mem] directly.
	StallCyclesL2  uint64
	StallCyclesMem uint64

	// L2Writebacks counts dirty evictions attributable to this core's
	// misses; PrefetchFills counts prefetcher-initiated memory requests on
	// this core's behalf. Both feed the per-core traffic estimate.
	L2Writebacks  uint64
	PrefetchFills uint64
}

// Sub returns the counter deltas c - start. All fields must be monotonically
// non-decreasing between the two snapshots.
func (c Core) Sub(start Core) Core {
	return Core{
		Cycles:         c.Cycles - start.Cycles,
		TIC:            c.TIC - start.TIC,
		TMS:            c.TMS - start.TMS,
		TLA:            c.TLA - start.TLA,
		TLM:            c.TLM - start.TLM,
		TLS:            c.TLS - start.TLS,
		ALUOps:         c.ALUOps - start.ALUOps,
		FPUOps:         c.FPUOps - start.FPUOps,
		Branches:       c.Branches - start.Branches,
		LoadStores:     c.LoadStores - start.LoadStores,
		StallCyclesL2:  c.StallCyclesL2 - start.StallCyclesL2,
		StallCyclesMem: c.StallCyclesMem - start.StallCyclesMem,
		L2Writebacks:   c.L2Writebacks - start.L2Writebacks,
		PrefetchFills:  c.PrefetchFills - start.PrefetchFills,
	}
}

// Add accumulates d into c.
func (c *Core) Add(d Core) {
	c.Cycles += d.Cycles
	c.TIC += d.TIC
	c.TMS += d.TMS
	c.TLA += d.TLA
	c.TLM += d.TLM
	c.TLS += d.TLS
	c.ALUOps += d.ALUOps
	c.FPUOps += d.FPUOps
	c.Branches += d.Branches
	c.LoadStores += d.LoadStores
	c.StallCyclesL2 += d.StallCyclesL2
	c.StallCyclesMem += d.StallCyclesMem
	c.L2Writebacks += d.L2Writebacks
	c.PrefetchFills += d.PrefetchFills
}

// Alpha returns the fraction of committed instructions that accessed the L2
// and stalled the pipeline (α in Eq. 1): TMS / TIC.
func (c Core) Alpha() float64 {
	if c.TIC == 0 {
		return 0
	}
	return float64(c.TMS) / float64(c.TIC)
}

// Beta returns the fraction of committed instructions that missed the L2 and
// stalled the pipeline (β in Eq. 1): TLS / TIC.
func (c Core) Beta() float64 {
	if c.TIC == 0 {
		return 0
	}
	return float64(c.TLS) / float64(c.TIC)
}

// CPI returns overall cycles per instruction over the sampled window.
func (c Core) CPI() float64 {
	if c.TIC == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.TIC)
}

// MPKI returns L2 (last-level) misses per kilo-instruction.
func (c Core) MPKI() float64 {
	if c.TIC == 0 {
		return 0
	}
	return 1000 * float64(c.TLM) / float64(c.TIC)
}

// Channel holds the free-running per-memory-channel counters: MemScale's
// seven queuing/row-buffer statistics and the two counters used by the
// memory power model.
type Channel struct {
	BusCycles uint64 // memory bus clock cycles elapsed

	Reads      uint64 // read (cache-miss) requests serviced
	Writes     uint64 // writeback requests serviced
	Prefetches uint64 // prefetch fills serviced (counted within Reads as traffic)

	// Queueing statistics: occupancy integrals (sum over cycles of queue
	// length) from which average waiters-per-request are derived.
	ReadQueueOccupancy uint64 // Σ read-queue length, per bus cycle
	BankOccupancy      uint64 // Σ requests holding or waiting for banks, per bus cycle
	BusBusyCycles      uint64 // cycles the data bus transferred data
	LatencyCycles      uint64 // Σ per-request residency (arrival to data return), bus cycles

	// Row-buffer behaviour (closed-page policy keeps these equal to the
	// access count, but the counters exist for open-page configurations).
	RowHits   uint64
	RowMisses uint64

	// Power-model counters.
	ActiveCycles uint64 // cycles with at least one bank active
	IdleCycles   uint64 // cycles with all banks precharged/idle
	PageOpens    uint64 // ACT commands issued
	PageCloses   uint64 // PRE (or auto-precharge) events
}

// Sub returns the counter deltas c - start.
func (c Channel) Sub(start Channel) Channel {
	return Channel{
		BusCycles:          c.BusCycles - start.BusCycles,
		Reads:              c.Reads - start.Reads,
		Writes:             c.Writes - start.Writes,
		Prefetches:         c.Prefetches - start.Prefetches,
		ReadQueueOccupancy: c.ReadQueueOccupancy - start.ReadQueueOccupancy,
		BankOccupancy:      c.BankOccupancy - start.BankOccupancy,
		BusBusyCycles:      c.BusBusyCycles - start.BusBusyCycles,
		LatencyCycles:      c.LatencyCycles - start.LatencyCycles,
		RowHits:            c.RowHits - start.RowHits,
		RowMisses:          c.RowMisses - start.RowMisses,
		ActiveCycles:       c.ActiveCycles - start.ActiveCycles,
		IdleCycles:         c.IdleCycles - start.IdleCycles,
		PageOpens:          c.PageOpens - start.PageOpens,
		PageCloses:         c.PageCloses - start.PageCloses,
	}
}

// Add accumulates d into c.
func (c *Channel) Add(d Channel) {
	c.BusCycles += d.BusCycles
	c.Reads += d.Reads
	c.Writes += d.Writes
	c.Prefetches += d.Prefetches
	c.ReadQueueOccupancy += d.ReadQueueOccupancy
	c.BankOccupancy += d.BankOccupancy
	c.BusBusyCycles += d.BusBusyCycles
	c.LatencyCycles += d.LatencyCycles
	c.RowHits += d.RowHits
	c.RowMisses += d.RowMisses
	c.ActiveCycles += d.ActiveCycles
	c.IdleCycles += d.IdleCycles
	c.PageOpens += d.PageOpens
	c.PageCloses += d.PageCloses
}

// Accesses returns the total serviced requests (reads + writes).
func (c Channel) Accesses() uint64 { return c.Reads + c.Writes }

// BusUtilization returns the fraction of bus cycles spent transferring data.
func (c Channel) BusUtilization() float64 {
	if c.BusCycles == 0 {
		return 0
	}
	return float64(c.BusBusyCycles) / float64(c.BusCycles)
}

// XiBus returns the average number of requests waiting for the data bus per
// serviced request (ξ_bus in the TPI_Mem decomposition).
func (c Channel) XiBus() float64 {
	if c.Accesses() == 0 || c.BusCycles == 0 {
		return 0
	}
	return float64(c.ReadQueueOccupancy) / float64(c.BusCycles) // time-average queue length
}

// AvgLatencySeconds returns the average request latency over the window
// given the bus frequency in effect, derived from the residency integral.
func (c Channel) AvgLatencySeconds(busHz float64) float64 {
	if c.Accesses() == 0 || busHz <= 0 {
		return 0
	}
	return float64(c.LatencyCycles) / busHz / float64(c.Accesses())
}

// XiBank returns the time-average number of requests holding or waiting for
// banks (ξ_bank).
func (c Channel) XiBank() float64 {
	if c.BusCycles == 0 {
		return 0
	}
	return float64(c.BankOccupancy) / float64(c.BusCycles)
}

// System bundles a full snapshot: one Core set per core and one Channel set
// per memory channel.
type System struct {
	Cores    []Core
	Channels []Channel
}

// NewSystem allocates zeroed counters for nCores cores and nChannels memory
// channels.
func NewSystem(nCores, nChannels int) *System {
	return &System{
		Cores:    make([]Core, nCores),
		Channels: make([]Channel, nChannels),
	}
}

// Snapshot returns a deep copy of the current counter state.
func (s *System) Snapshot() System {
	out := System{
		Cores:    make([]Core, len(s.Cores)),
		Channels: make([]Channel, len(s.Channels)),
	}
	copy(out.Cores, s.Cores)
	copy(out.Channels, s.Channels)
	return out
}

// SnapshotInto deep-copies the current counter state into dst, reusing
// dst's slices when their capacities suffice. The allocation-free form of
// Snapshot used by the per-epoch hot path (see DESIGN.md §7).
//
//hot:path
func (s *System) SnapshotInto(dst *System) {
	dst.Cores = resizeCores(dst.Cores, len(s.Cores))
	dst.Channels = resizeChannels(dst.Channels, len(s.Channels))
	copy(dst.Cores, s.Cores)
	copy(dst.Channels, s.Channels)
}

// SubInto writes the element-wise deltas s - start into dst, reusing dst's
// slices. The allocation-free form of Sub.
//
//hot:path
func (s *System) SubInto(dst *System, start *System) {
	dst.Cores = resizeCores(dst.Cores, len(s.Cores))
	dst.Channels = resizeChannels(dst.Channels, len(s.Channels))
	for i := range s.Cores {
		dst.Cores[i] = s.Cores[i].Sub(start.Cores[i])
	}
	for i := range s.Channels {
		dst.Channels[i] = s.Channels[i].Sub(start.Channels[i])
	}
}

func resizeCores(s []Core, n int) []Core {
	if cap(s) < n {
		return make([]Core, n) //hot:alloc-ok capacity miss: amortized to zero once the snapshot shape is warm
	}
	return s[:n]
}

func resizeChannels(s []Channel, n int) []Channel {
	if cap(s) < n {
		return make([]Channel, n) //hot:alloc-ok capacity miss: amortized to zero once the snapshot shape is warm
	}
	return s[:n]
}

// Sub returns the element-wise deltas s - start. The two snapshots must have
// identical shapes.
func (s System) Sub(start System) System {
	out := System{
		Cores:    make([]Core, len(s.Cores)),
		Channels: make([]Channel, len(s.Channels)),
	}
	for i := range s.Cores {
		out.Cores[i] = s.Cores[i].Sub(start.Cores[i])
	}
	for i := range s.Channels {
		out.Channels[i] = s.Channels[i].Sub(start.Channels[i])
	}
	return out
}
