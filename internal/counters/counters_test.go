package counters

import (
	"testing"
	"testing/quick"
)

func TestCoreSubAndRatios(t *testing.T) {
	start := Core{Cycles: 100, TIC: 50, TMS: 5, TLA: 6, TLM: 2, TLS: 2}
	end := Core{Cycles: 1100, TIC: 1050, TMS: 105, TLA: 126, TLM: 22, TLS: 22}
	d := end.Sub(start)
	if d.Cycles != 1000 || d.TIC != 1000 {
		t.Fatalf("Sub deltas = %+v", d)
	}
	if got := d.Alpha(); got != 0.1 {
		t.Errorf("Alpha() = %g, want 0.1", got)
	}
	if got := d.Beta(); got != 0.02 {
		t.Errorf("Beta() = %g, want 0.02", got)
	}
	if got := d.CPI(); got != 1.0 {
		t.Errorf("CPI() = %g, want 1", got)
	}
	if got := d.MPKI(); got != 20 {
		t.Errorf("MPKI() = %g, want 20", got)
	}
}

func TestZeroInstructionWindow(t *testing.T) {
	var c Core
	if c.Alpha() != 0 || c.Beta() != 0 || c.CPI() != 0 || c.MPKI() != 0 {
		t.Error("zero-instruction window should yield zero ratios")
	}
	var ch Channel
	if ch.BusUtilization() != 0 || ch.XiBus() != 0 || ch.XiBank() != 0 {
		t.Error("zero-cycle channel window should yield zero ratios")
	}
}

func TestCoreAddSubRoundTrip(t *testing.T) {
	f := func(a, b Core) bool {
		sum := a
		sum.Add(b)
		return sum.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelAddSubRoundTrip(t *testing.T) {
	f := func(a, b Channel) bool {
		sum := a
		sum.Add(b)
		return sum.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelRatios(t *testing.T) {
	c := Channel{
		BusCycles:          1000,
		Reads:              80,
		Writes:             20,
		ReadQueueOccupancy: 500,
		BankOccupancy:      1500,
		BusBusyCycles:      400,
	}
	if got := c.Accesses(); got != 100 {
		t.Errorf("Accesses() = %d", got)
	}
	if got := c.BusUtilization(); got != 0.4 {
		t.Errorf("BusUtilization() = %g", got)
	}
	if got := c.XiBus(); got != 0.5 {
		t.Errorf("XiBus() = %g", got)
	}
	if got := c.XiBank(); got != 1.5 {
		t.Errorf("XiBank() = %g", got)
	}
}

func TestSystemSnapshotIsolation(t *testing.T) {
	s := NewSystem(4, 2)
	s.Cores[0].TIC = 10
	snap := s.Snapshot()
	s.Cores[0].TIC = 99
	s.Channels[1].Reads = 7
	if snap.Cores[0].TIC != 10 {
		t.Error("snapshot shares storage with live counters")
	}
	if snap.Channels[1].Reads != 0 {
		t.Error("snapshot channel shares storage with live counters")
	}
	d := s.Snapshot().Sub(snap)
	if d.Cores[0].TIC != 89 || d.Channels[1].Reads != 7 {
		t.Errorf("System.Sub deltas wrong: %+v", d)
	}
}

func TestNewSystemShape(t *testing.T) {
	s := NewSystem(16, 4)
	if len(s.Cores) != 16 || len(s.Channels) != 4 {
		t.Fatalf("NewSystem shape = %d cores, %d channels", len(s.Cores), len(s.Channels))
	}
}
