// Package cpu provides the trace-driven core model of the detailed backend:
// in-order, single-issue cores with one outstanding LLC miss (Table 2),
// optionally extended with a bounded miss window that emulates the paper's
// 128-instruction OoO memory-level-parallelism study, and an optional
// next-line prefetcher. Cores drive the cycle-level shared L2
// (internal/cache) and DDR3 memory system (internal/dram).
package cpu

import (
	"fmt"

	"coscale/internal/cache"
	"coscale/internal/dram"
	"coscale/internal/trace"
)

// Core is one trace-driven core.
type Core struct {
	ID  int
	Hz  float64
	Gen *trace.Generator

	// MissWindow is the number of outstanding demand misses allowed
	// (1 = in-order; the OoO study uses the profile's MLP).
	MissWindow int

	cpiBase float64

	credit      float64 // accumulated core cycles to spend
	gapCycles   float64 // cycles left executing until the next access
	l2Cycles    float64 // cycles left stalled on an L2 hit
	outstanding int     // demand misses in flight
	pending     *trace.MemAccess

	// statistics
	Instructions uint64
	Cycles       float64
	L2Hits       uint64
	L2Misses     uint64
	MemStallCyc  float64
}

// System couples cores, the shared L2 and the memory system, advancing them
// on the memory bus clock.
type System struct {
	Cores    []*Core
	L2       *cache.L2
	Mem      *dram.Memory
	Prefetch bool

	// L2HitTime is the shared-cache hit latency in seconds (fixed
	// domain).
	L2HitTime float64

	wbPending [][]dram.Request // per-core writebacks awaiting queue space
	pfPending []dram.Request

	// BusCyclesRun counts total bus cycles simulated.
	BusCyclesRun int64
}

// NewSystem wires cores to a cache and memory system.
func NewSystem(cores []*Core, l2 *cache.L2, mem *dram.Memory) *System {
	return &System{
		Cores:     cores,
		L2:        l2,
		Mem:       mem,
		L2HitTime: cache.DefaultHitTime,
		wbPending: make([][]dram.Request, len(cores)),
	}
}

// NewCore builds a core over a profile stream.
func NewCore(id int, hz float64, p *trace.AppProfile, budget, seed uint64, ooo bool) *Core {
	window := 1
	if ooo {
		window = int(p.MLP + 0.5)
		if window < 1 {
			window = 1
		}
	}
	return &Core{
		ID:         id,
		Hz:         hz,
		Gen:        trace.NewGenerator(p, id, budget, seed),
		MissWindow: window,
		cpiBase:    p.CPIBase,
	}
}

// Run advances the whole system by busCycles memory-bus cycles.
func (s *System) Run(busCycles int) error {
	busHz := s.Mem.BusHz()
	for c := 0; c < busCycles; c++ {
		// Retry deferred writebacks and prefetches.
		s.drainPending()

		// One bus cycle of core execution.
		dt := 1.0 / busHz
		for _, core := range s.Cores {
			core.credit += core.Hz * dt
			if err := s.execute(core); err != nil {
				return err
			}
		}

		// One memory cycle; deliver completions.
		for _, done := range s.Mem.Tick(1) {
			s.complete(done)
		}
		s.BusCyclesRun++
	}
	return nil
}

func (s *System) drainPending() {
	for i := range s.wbPending {
		for len(s.wbPending[i]) > 0 {
			if !s.Mem.Enqueue(s.wbPending[i][0]) {
				break
			}
			s.wbPending[i] = s.wbPending[i][1:]
		}
	}
	for len(s.pfPending) > 0 {
		if !s.Mem.Enqueue(s.pfPending[0]) {
			break
		}
		s.pfPending = s.pfPending[1:]
	}
}

// execute spends a core's accumulated cycle credit.
func (s *System) execute(core *Core) error {
	for core.credit > 0 {
		switch {
		case core.outstanding >= core.MissWindow:
			// Blocked on memory: burn the credit as stall time.
			core.MemStallCyc += core.credit
			core.Cycles += core.credit
			core.credit = 0

		case core.l2Cycles > 0:
			// Stalled on an L2 hit.
			spend := min(core.credit, core.l2Cycles)
			core.l2Cycles -= spend
			core.credit -= spend
			core.Cycles += spend

		case core.gapCycles > 0:
			spend := min(core.credit, core.gapCycles)
			core.gapCycles -= spend
			core.credit -= spend
			core.Cycles += spend

		default:
			// Fetch the next trace record and perform its access.
			if core.pending == nil {
				a := core.Gen.Next()
				core.pending = &a
				core.Instructions += a.Gap
				core.gapCycles = float64(a.Gap) * core.cpiBase
				continue
			}
			a := *core.pending
			core.pending = nil
			if err := s.access(core, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// access performs one L2 access, issuing DRAM traffic on a miss.
func (s *System) access(core *Core, a trace.MemAccess) error {
	res := s.L2.Access(a.Addr, a.Write, core.ID)
	if res.Writeback {
		s.queueWriteback(core.ID, res.WbAddr)
	}
	if res.Hit {
		core.L2Hits++
		core.l2Cycles = s.L2HitTime * core.Hz
		return nil
	}
	core.L2Misses++
	req := dram.Request{Addr: a.Addr, Core: core.ID}
	if !s.Mem.Enqueue(req) {
		// Read queue full: stall as if outstanding until space frees.
		// Model by treating it as an in-flight miss retried next cycle.
		core.pending = &a
		core.L2Misses-- // will retry; avoid double count
		s.L2.Misses[core.ID]--
		core.MemStallCyc += core.credit
		core.Cycles += core.credit
		core.credit = 0
		return nil
	}
	core.outstanding++
	if s.Prefetch {
		next := a.Addr + 64
		s.pfPending = append(s.pfPending, dram.Request{Addr: next, Core: core.ID, Prefetch: true})
	}
	return nil
}

func (s *System) queueWriteback(core int, addr uint64) {
	req := dram.Request{Addr: addr, Write: true, Core: core}
	if !s.Mem.Enqueue(req) {
		s.wbPending[core] = append(s.wbPending[core], req)
	}
}

// complete routes a DRAM completion back to its core or the cache.
func (s *System) complete(done dram.Completion) {
	if done.Req.Write {
		return
	}
	if done.Req.Prefetch {
		if res := s.L2.Fill(done.Req.Addr, done.Req.Core); res.Writeback {
			s.queueWriteback(done.Req.Core, res.WbAddr)
		}
		return
	}
	core := s.Cores[done.Req.Core]
	if core.outstanding > 0 {
		core.outstanding--
	}
}

// CPI returns a core's achieved cycles per instruction.
func (c *Core) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.Cycles / float64(c.Instructions)
}

// TPI returns a core's achieved seconds per instruction.
func (c *Core) TPI() float64 {
	if c.Hz <= 0 {
		return 0
	}
	return c.CPI() / c.Hz
}

// MPKI returns a core's demand misses per kilo-instruction.
func (c *Core) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.L2Misses) / float64(c.Instructions)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Validate checks the system wiring.
func (s *System) Validate() error {
	if len(s.Cores) == 0 || s.L2 == nil || s.Mem == nil {
		return fmt.Errorf("cpu: system requires cores, cache and memory")
	}
	return nil
}
