package cpu

import (
	"testing"

	"coscale/internal/cache"
	"coscale/internal/dram"
	"coscale/internal/trace"
)

func smallL2(t *testing.T, cores int) *cache.L2 {
	t.Helper()
	l2, err := cache.NewL2(1<<20, 16, 64, cores) // 1 MB for fast warm-up
	if err != nil {
		t.Fatal(err)
	}
	return l2
}

func mkSystem(t *testing.T, apps []string, hz float64, ooo, prefetch bool) *System {
	t.Helper()
	mem, err := dram.New(dram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l2 := smallL2(t, len(apps))
	cores := make([]*Core, len(apps))
	for i, name := range apps {
		cores[i] = NewCore(i, hz, trace.MustLookup(name), 1_000_000, 42, ooo)
	}
	s := NewSystem(cores, l2, mem)
	s.Prefetch = prefetch
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	s := &System{}
	if s.Validate() == nil {
		t.Error("empty system validated")
	}
}

func TestCoresMakeProgress(t *testing.T) {
	s := mkSystem(t, []string{"gzip", "swim", "ammp", "milc"}, 4e9, false, false)
	if err := s.Run(200_000); err != nil { // 250 µs at 800 MHz
		t.Fatal(err)
	}
	for _, c := range s.Cores {
		if c.Instructions == 0 {
			t.Errorf("core %d retired nothing", c.ID)
		}
		if c.CPI() < 1.0 {
			t.Errorf("core %d CPI %.2f below 1 (single-issue in-order)", c.ID, c.CPI())
		}
	}
}

func TestMemoryBoundAppRunsSlower(t *testing.T) {
	s := mkSystem(t, []string{"gzip", "swim"}, 4e9, false, false)
	if err := s.Run(400_000); err != nil {
		t.Fatal(err)
	}
	gzip, swim := s.Cores[0], s.Cores[1]
	if swim.CPI() <= gzip.CPI() {
		t.Errorf("swim CPI %.2f should exceed gzip CPI %.2f", swim.CPI(), gzip.CPI())
	}
	if swim.MPKI() <= gzip.MPKI() {
		t.Errorf("swim MPKI %.2f should exceed gzip MPKI %.2f", swim.MPKI(), gzip.MPKI())
	}
}

func TestLowerCoreFrequencyRaisesTPI(t *testing.T) {
	fast := mkSystem(t, []string{"gzip"}, 4e9, false, false)
	slow := mkSystem(t, []string{"gzip"}, 2.2e9, false, false)
	if err := fast.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if err := slow.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if slow.Cores[0].TPI() <= fast.Cores[0].TPI() {
		t.Errorf("TPI at 2.2 GHz (%.3g) should exceed 4 GHz (%.3g)",
			slow.Cores[0].TPI(), fast.Cores[0].TPI())
	}
}

func TestOoOWindowReducesMemStall(t *testing.T) {
	inorder := mkSystem(t, []string{"swim", "swim", "swim", "swim"}, 4e9, false, false)
	ooo := mkSystem(t, []string{"swim", "swim", "swim", "swim"}, 4e9, true, false)
	if err := inorder.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if err := ooo.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if ooo.Cores[0].MissWindow <= 1 {
		t.Fatal("OoO core did not get a miss window")
	}
	if ooo.Cores[0].CPI() >= inorder.Cores[0].CPI() {
		t.Errorf("OoO CPI %.2f should beat in-order %.2f", ooo.Cores[0].CPI(), inorder.Cores[0].CPI())
	}
}

func TestPrefetchReducesDemandMisses(t *testing.T) {
	base := mkSystem(t, []string{"swim"}, 4e9, false, false)
	pref := mkSystem(t, []string{"swim"}, 4e9, false, true)
	if err := base.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if err := pref.Run(400_000); err != nil {
		t.Fatal(err)
	}
	// swim's stream is 80% sequential, so next-line prefetching must cut
	// the demand miss rate.
	if pref.Cores[0].MPKI() >= base.Cores[0].MPKI() {
		t.Errorf("prefetch MPKI %.2f should be below base %.2f",
			pref.Cores[0].MPKI(), base.Cores[0].MPKI())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := mkSystem(t, []string{"milc", "gcc"}, 4e9, false, false)
	b := mkSystem(t, []string{"milc", "gcc"}, 4e9, false, false)
	if err := a.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(100_000); err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i].Instructions != b.Cores[i].Instructions || a.Cores[i].Cycles != b.Cores[i].Cycles {
			t.Errorf("core %d diverged across identical runs", i)
		}
	}
}

func TestSharedCacheContention(t *testing.T) {
	// gzip alone vs gzip sharing the L2 with three copies of swim: the
	// co-runners must raise gzip's miss rate.
	alone := mkSystem(t, []string{"gzip"}, 4e9, false, false)
	shared := mkSystem(t, []string{"gzip", "swim", "swim", "swim"}, 4e9, false, false)
	if err := alone.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if err := shared.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if shared.Cores[0].MPKI() < alone.Cores[0].MPKI() {
		t.Errorf("contention should not reduce gzip MPKI: %.3f vs %.3f",
			shared.Cores[0].MPKI(), alone.Cores[0].MPKI())
	}
}
