package cache

import "fmt"

// L2 is the cycle-level shared last-level cache: physically indexed,
// set-associative, LRU replacement, writeback with write-allocate. It is the
// detailed counterpart of the analytic ShareModel; contention between cores
// emerges naturally from shared sets.
type L2 struct {
	ways      int
	sets      int
	blockBits uint
	lines     []line // sets*ways, LRU-ordered within each set (index 0 = MRU)

	// per-core statistics
	Accesses   []uint64
	Misses     []uint64
	Writebacks []uint64
}

type line struct {
	tag   uint64
	core  int
	valid bool
	dirty bool
}

// NewL2 builds a cache of sizeBytes with the given associativity and block
// size; all three must be powers of two and consistent.
func NewL2(sizeBytes, ways, blockBytes, cores int) (*L2, error) {
	if sizeBytes <= 0 || ways <= 0 || blockBytes <= 0 || cores <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry")
	}
	if sizeBytes%(ways*blockBytes) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*block", sizeBytes)
	}
	sets := sizeBytes / (ways * blockBytes)
	if sets&(sets-1) != 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: sets (%d) and block size must be powers of two", sets)
	}
	bits := uint(0)
	for 1<<bits < blockBytes {
		bits++
	}
	return &L2{
		ways:       ways,
		sets:       sets,
		blockBits:  bits,
		lines:      make([]line, sets*ways),
		Accesses:   make([]uint64, cores),
		Misses:     make([]uint64, cores),
		Writebacks: make([]uint64, cores),
	}, nil
}

// Result reports one access.
type Result struct {
	Hit       bool
	Writeback bool   // a dirty victim was evicted
	WbAddr    uint64 // its block address
}

// Access performs a load (write=false) or store (write=true) by core.
// Misses allocate; LRU victims that are dirty produce a writeback.
func (c *L2) Access(addr uint64, write bool, core int) Result {
	c.Accesses[core]++
	tag := addr >> c.blockBits
	set := int(tag % uint64(c.sets))
	base := set * c.ways

	// Hit: move to MRU.
	for w := 0; w < c.ways; w++ {
		l := c.lines[base+w]
		if l.valid && l.tag == tag {
			if write {
				l.dirty = true
			}
			copy(c.lines[base+1:base+w+1], c.lines[base:base+w])
			c.lines[base] = l
			return Result{Hit: true}
		}
	}

	// Miss: evict LRU (last way).
	c.Misses[core]++
	victim := c.lines[base+c.ways-1]
	res := Result{}
	if victim.valid && victim.dirty {
		res.Writeback = true
		res.WbAddr = victim.tag << c.blockBits
		c.Writebacks[victim.core]++
	}
	copy(c.lines[base+1:], c.lines[base:base+c.ways-1])
	c.lines[base] = line{tag: tag, core: core, valid: true, dirty: write}
	return res
}

// Fill inserts a block without counting an access (prefetch fills).
func (c *L2) Fill(addr uint64, core int) Result {
	tag := addr >> c.blockBits
	set := int(tag % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if l := c.lines[base+w]; l.valid && l.tag == tag {
			return Result{Hit: true} // already present
		}
	}
	victim := c.lines[base+c.ways-1]
	res := Result{}
	if victim.valid && victim.dirty {
		res.Writeback = true
		res.WbAddr = victim.tag << c.blockBits
		c.Writebacks[victim.core]++
	}
	copy(c.lines[base+1:], c.lines[base:base+c.ways-1])
	c.lines[base] = line{tag: tag, core: core, valid: true}
	return res
}

// MPKI returns core's misses per kilo-instruction given its committed
// instruction count.
func (c *L2) MPKI(core int, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(c.Misses[core]) / float64(instructions)
}
