package cache

import "sync"

// Flight memoizes function results per key with singleflight deduplication:
// the first caller to claim a key runs fn while concurrent and later callers
// block on (and share) the same result. Results — including errors — are
// retained until Forget, which suits deterministic simulations: a retry
// would produce the same bits, so there is no reason to recompute.
//
// This generalizes the experiments runner's baseline/outcome caches (PR 2)
// so the serving layer can reuse the same discipline keyed by request hash.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized result for key, invoking fn at most once per key
// (until Forget). Concurrent callers with the same key block until the
// executing call finishes and then share its result.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[K]*flightCall[V]{}
	}
	c, ok := f.calls[key]
	if !ok {
		c = &flightCall[V]{}
		f.calls[key] = c
	}
	f.mu.Unlock()
	c.once.Do(func() { c.val, c.err = fn() })
	return c.val, c.err
}

// Forget drops the memoized slot for key so the next Do runs fn again.
// Callers already blocked on the slot still receive its result; use this to
// avoid caching non-deterministic failures such as context cancellation.
func (f *Flight[K, V]) Forget(key K) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
}

// Len returns the number of memoized (or in-flight) keys.
func (f *Flight[K, V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
