package cache

import (
	"testing"
	"testing/quick"
)

func mustL2(t *testing.T) *L2 {
	t.Helper()
	l2, err := NewL2(64*1024, 4, 64, 2) // 64 KB, 4-way: small for fast evictions
	if err != nil {
		t.Fatal(err)
	}
	return l2
}

func TestNewL2Validation(t *testing.T) {
	if _, err := NewL2(0, 4, 64, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewL2(100, 4, 64, 1); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := NewL2(3*64*4, 4, 64, 1); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewL2(16<<20, 16, 64, 16); err != nil {
		t.Errorf("Table 2 geometry rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	l2 := mustL2(t)
	if r := l2.Access(0x1000, false, 0); r.Hit {
		t.Error("cold access hit")
	}
	if r := l2.Access(0x1000, false, 0); !r.Hit {
		t.Error("second access missed")
	}
	if l2.Accesses[0] != 2 || l2.Misses[0] != 1 {
		t.Errorf("stats = %d/%d", l2.Accesses[0], l2.Misses[0])
	}
}

func TestLRUEviction(t *testing.T) {
	l2 := mustL2(t)
	// 4 ways: fill a set with 4 blocks, touch the first, add a fifth; the
	// second block (LRU) must be evicted, the first retained.
	setStride := uint64(64 * 256) // 64KB/(4*64) = 256 sets
	for i := uint64(0); i < 4; i++ {
		l2.Access(i*setStride, false, 0)
	}
	l2.Access(0, false, 0)           // block 0 -> MRU
	l2.Access(4*setStride, false, 0) // evicts block 1
	if r := l2.Access(0, false, 0); !r.Hit {
		t.Error("MRU block evicted")
	}
	if r := l2.Access(setStride, false, 0); r.Hit {
		t.Error("LRU block survived")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	l2 := mustL2(t)
	setStride := uint64(64 * 256)
	l2.Access(0, true, 0) // dirty
	for i := uint64(1); i <= 4; i++ {
		r := l2.Access(i*setStride, false, 1)
		if i < 4 {
			if r.Writeback {
				t.Error("clean eviction produced writeback")
			}
			continue
		}
		if !r.Writeback || r.WbAddr != 0 {
			t.Errorf("dirty eviction: %+v", r)
		}
	}
	if l2.Writebacks[0] != 1 {
		t.Errorf("writeback charged to %v", l2.Writebacks)
	}
}

func TestWriteHitDirties(t *testing.T) {
	l2 := mustL2(t)
	l2.Access(0, false, 0) // clean allocate
	l2.Access(0, true, 0)  // dirty on hit
	setStride := uint64(64 * 256)
	var wb bool
	for i := uint64(1); i <= 4; i++ {
		if r := l2.Access(i*setStride, false, 0); r.Writeback {
			wb = true
		}
	}
	if !wb {
		t.Error("write-hit did not dirty the line")
	}
}

func TestFillDoesNotCountAccess(t *testing.T) {
	l2 := mustL2(t)
	l2.Fill(0x2000, 0)
	if l2.Accesses[0] != 0 || l2.Misses[0] != 0 {
		t.Error("Fill counted as access")
	}
	if r := l2.Access(0x2000, false, 0); !r.Hit {
		t.Error("filled block not present")
	}
	// Fill of a present block is a no-op.
	if r := l2.Fill(0x2000, 0); !r.Hit {
		t.Error("re-fill did not report present")
	}
}

func TestMPKI(t *testing.T) {
	l2 := mustL2(t)
	l2.Access(0, false, 0)
	l2.Access(64*256, false, 0)
	if got := l2.MPKI(0, 1000); got != 2 {
		t.Errorf("MPKI = %g, want 2", got)
	}
	if got := l2.MPKI(0, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %g", got)
	}
}

// Property: hit rate of a working set that fits is 100% after one pass.
func TestResidentSetAlwaysHits(t *testing.T) {
	f := func(blocks uint8) bool {
		l2, err := NewL2(64*1024, 4, 64, 1)
		if err != nil {
			return false
		}
		n := uint64(blocks%64) + 1 // fits easily in 1024 blocks
		for i := uint64(0); i < n; i++ {
			l2.Access(i*64, false, 0)
		}
		for i := uint64(0); i < n; i++ {
			if !l2.Access(i*64, false, 0).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShareModelProportional(t *testing.T) {
	m := NewShareModel(16)
	shares := m.Shares([]float64{1, 3})
	if shares[0] != 4 || shares[1] != 12 {
		t.Errorf("shares = %v", shares)
	}
	equal := m.Shares([]float64{0, 0})
	if equal[0] != 8 || equal[1] != 8 {
		t.Errorf("zero-weight shares = %v", equal)
	}
	if got := m.Shares(nil); len(got) != 0 {
		t.Errorf("empty shares = %v", got)
	}
	neg := m.Shares([]float64{-1, 1})
	if neg[0] != 0 || neg[1] != 16 {
		t.Errorf("negative weight shares = %v", neg)
	}
}

func TestNewShareModelDefault(t *testing.T) {
	if m := NewShareModel(0); m.SizeMB != DefaultSizeMB {
		t.Errorf("default size = %g", m.SizeMB)
	}
}
