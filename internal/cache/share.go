// Package cache models the shared 16 MB L2 (last-level) cache: an analytic
// capacity-sharing model used by the fast epoch backend (this file) and a
// cycle-level set-associative simulator used by the detailed backend
// (detailed.go).
package cache

// Default LLC geometry from Table 2.
const (
	DefaultSizeMB    = 16
	DefaultWays      = 16
	DefaultBlockSize = 64
	// DefaultHitCycles is the shared-L2 hit latency in CPU cycles at the
	// nominal 4 GHz clock. The L2 sits in a fixed voltage/frequency
	// domain, so its latency in seconds is constant: 30 cycles / 4 GHz.
	DefaultHitCycles = 30
	DefaultHitTime   = 7.5e-9 // seconds
)

// ShareModel apportions LLC capacity among competing cores. Under LRU, a
// core's steady-state share of capacity is approximately proportional to its
// access rate; since co-scheduled cores retire instructions at broadly
// similar rates, we use accesses-per-instruction (L2APKI) as the weight.
// This is the standard linear-partition approximation for shared-LRU caches.
type ShareModel struct {
	SizeMB float64
}

// NewShareModel returns a share model for an LLC of the given capacity.
func NewShareModel(sizeMB float64) *ShareModel {
	if sizeMB <= 0 {
		sizeMB = DefaultSizeMB
	}
	return &ShareModel{SizeMB: sizeMB}
}

// Shares returns each core's LLC share in MB given the cores' current L2
// access weights (accesses per kilo-instruction, phase-adjusted). A zero
// total weight yields equal shares.
func (m *ShareModel) Shares(weights []float64) []float64 {
	return m.SharesInto(make([]float64, len(weights)), weights)
}

// SharesInto is Shares writing into out, which must have len(weights)
// elements. It never allocates; the simulation hot path calls it with a
// per-engine scratch slice every sub-interval (see DESIGN.md §7).
//
//hot:path
func (m *ShareModel) SharesInto(out, weights []float64) []float64 {
	if len(weights) == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		equal := m.SizeMB / float64(len(weights))
		for i := range out {
			out[i] = equal
		}
		return out
	}
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		out[i] = m.SizeMB * w / total
	}
	return out
}
