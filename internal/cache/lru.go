package cache

import "sync"

// LRU is a fixed-capacity least-recently-used cache, safe for concurrent
// use. It is the serving layer's result cache (DESIGN.md §9): keys are
// canonicalized request hashes, values completed responses. A capacity of
// zero or less disables eviction (the cache grows without bound, which is
// what the experiments runner wants for its per-process memoization).
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*lruEntry[K, V]
	// head is the most recently used entry, tail the least. Both are nil
	// when the cache is empty.
	head, tail   *lruEntry[K, V]
	hits, misses uint64
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// NewLRU returns an LRU holding at most capacity entries (<= 0 = unbounded).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{capacity: capacity, entries: map[K]*lruEntry[K, V]{}}
}

// Get returns the cached value for key, marking it most recently used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	l.moveToFront(e)
	return e.val, true
}

// Add inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (l *LRU[K, V]) Add(key K, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[key]; ok {
		e.val = val
		l.moveToFront(e)
		return
	}
	e := &lruEntry[K, V]{key: key, val: val}
	l.entries[key] = e
	l.pushFront(e)
	if l.capacity > 0 && len(l.entries) > l.capacity {
		l.evict(l.tail)
	}
}

// Remove drops key if present.
func (l *LRU[K, V]) Remove(key K) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[key]; ok {
		l.evict(e)
	}
}

// Len returns the current number of entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Stats returns the cumulative hit and miss counts of Get.
func (l *LRU[K, V]) Stats() (hits, misses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}

// moveToFront, pushFront and evict maintain the recency list; all require
// l.mu to be held.
func (l *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

func (l *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *LRU[K, V]) evict(e *lruEntry[K, V]) {
	l.unlink(e)
	delete(l.entries, e.key)
}
