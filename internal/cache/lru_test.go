package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	l.Add("a", 1)
	l.Add("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; adding "c" must evict it.
	l.Add("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("b survived eviction at capacity")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Errorf("a evicted out of LRU order (got %v, %v)", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Errorf("Get(c) = %v, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	hits, misses := l.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("Stats = %d hits, %d misses; want 3, 2", hits, misses)
	}
}

func TestLRURefreshAndRemove(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Add("a", 1)
	l.Add("a", 10) // refresh must not duplicate
	if l.Len() != 1 {
		t.Fatalf("Len after refresh = %d, want 1", l.Len())
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Errorf("refreshed value = %d, want 10", v)
	}
	l.Remove("a")
	if _, ok := l.Get("a"); ok {
		t.Error("Get after Remove succeeded")
	}
	l.Remove("a") // removing a missing key is a no-op
}

func TestLRUUnbounded(t *testing.T) {
	l := NewLRU[int, int](0)
	for i := 0; i < 100; i++ {
		l.Add(i, i)
	}
	if l.Len() != 100 {
		t.Errorf("unbounded cache evicted: Len = %d, want 100", l.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU[int, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % 32
				l.Add(k, k)
				if v, ok := l.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Len(); n > 16 {
		t.Errorf("cache exceeded capacity: %d", n)
	}
}

func TestFlightDedup(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	vals := make([]int, 16)
	for g := range vals {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := f.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[g] = v
		}(g)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	for g, v := range vals {
		if v != 42 {
			t.Errorf("caller %d got %d", g, v)
		}
	}
}

func TestFlightErrorMemoizedUntilForget(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	calls := 0
	fn := func() (int, error) { calls++; return 0, boom }
	if _, err := f.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Do("k", fn); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("error not memoized: calls=%d err=%v", calls, err)
	}
	f.Forget("k")
	if v, err := f.Do("k", func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("after Forget: %v, %v", v, err)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
}
